GO ?= go

.PHONY: check build vet test race bench bench-obs bench-routes examples clean

## check: everything CI runs — build, vet, tests, the race pass, then the
## routing throughput snapshot (BENCH_routes.json) so perf regressions on
## the routed-message hot path are visible per commit
check: build vet test race bench-routes

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: the concurrent subsystems (streaming engine, async runtime,
## routing tables, metrics registry/tracer) under the race detector
race:
	$(GO) test -race ./internal/stream ./internal/sim ./internal/topology ./internal/obs ./cmd/elink-serve .

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

## bench-obs: replay the Tao stream through the engine bare and
## instrumented, print the overhead, and dump the full metrics registry
bench-obs:
	$(GO) run ./cmd/elink-experiments -only obs -obs-out BENCH_obs.json

## bench-routes: routed-message throughput (shared routing tables vs
## per-message BFS; sync and async runtimes) dumped to BENCH_routes.json
bench-routes:
	$(GO) run ./cmd/elink-experiments -only routes -routes-out BENCH_routes.json

## examples: compile every example without running them
examples:
	$(GO) build -o /dev/null ./examples/...

clean:
	$(GO) clean ./...
