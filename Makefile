GO ?= go

.PHONY: check build vet test race bench bench-obs examples clean

## check: everything CI runs — build, vet, tests, then the race pass
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: the concurrent subsystems (streaming engine, async runtime,
## metrics registry/tracer) under the race detector
race:
	$(GO) test -race ./internal/stream ./internal/sim ./internal/obs ./cmd/elink-serve .

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

## bench-obs: replay the Tao stream through the engine bare and
## instrumented, print the overhead, and dump the full metrics registry
bench-obs:
	$(GO) run ./cmd/elink-experiments -only obs -obs-out BENCH_obs.json

## examples: compile every example without running them
examples:
	$(GO) build -o /dev/null ./examples/...

clean:
	$(GO) clean ./...
