GO ?= go

.PHONY: check build vet lint fmt test race bench bench-obs bench-routes bench-parallel bench-persist bench-eigen-sparse bench-eigen-diff bench-spans bench-diff bench-clean examples clean

## check: everything CI runs — build, vet, the invariant analyzers,
## gofmt cleanliness, tests, the race pass, then the routing,
## parallel-layer and durability benches plus the gated sparse-eigensolver
## bench (bench-eigen-diff regenerates BENCH_eigen_sparse.new.json and
## fails on any tracked latency/iteration regression against the
## committed snapshot; bench-persist writes a *.new.json scratch file —
## gate it with bench-diff)
check: build vet lint fmt test race bench-routes bench-parallel bench-persist bench-eigen-diff

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## lint: the repo's invariant analyzers (internal/lint via
## cmd/elink-lint): explicit-seed randomness, wall-clock-free
## deterministic packages, goroutine discipline, order-insensitive map
## iteration, HELP-described metrics, panic-free persist decode. A
## deliberate violation is excused in place — and counted in the
## summary — with:  //elink:allow <rule> — <reason>
lint:
	$(GO) run ./cmd/elink-lint

## fmt: fail if any tracked Go file is not gofmt-clean
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

## race: the concurrent subsystems (streaming engine, async runtime,
## routing tables, metrics registry/tracer, parallel execution layer and
## the kernels/figures running on it) under the race detector
race:
	$(GO) test -race ./internal/stream ./internal/sim ./internal/topology ./internal/obs ./internal/par ./internal/linalg ./internal/experiments ./cmd/elink-serve .

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

## bench-obs: replay the Tao stream through the engine bare and
## instrumented, print the overhead, and dump the full metrics registry
bench-obs:
	$(GO) run ./cmd/elink-experiments -only obs -obs-out BENCH_obs.json

## bench-routes: routed-message throughput (shared routing tables vs
## per-message BFS; sync and async runtimes) dumped to BENCH_routes.json
bench-routes:
	$(GO) run ./cmd/elink-experiments -only routes -routes-out BENCH_routes.json

## bench-parallel: serial-vs-parallel Jacobi eigensolver wall times at the
## spectral baseline's sizes plus the -j 1 vs -j N figure harness, dumped
## to BENCH_parallel.json (speedups depend on the host's GOMAXPROCS,
## which the dump records)
bench-parallel:
	$(GO) run ./cmd/elink-experiments -only parbench -par-out BENCH_parallel.json

## bench-persist: snapshot encode / restore decode latency and snapshot
## size on bootstrapped engines at 500/2500/10000 nodes, dumped to the
## BENCH_persist.new.json scratch file (gitignored). Compare against the
## committed BENCH_persist.json with bench-diff; promote an accepted run
## with  cp BENCH_persist.new.json BENCH_persist.json
bench-persist:
	$(GO) run ./cmd/elink-experiments -only persistbench -persist-out BENCH_persist.new.json

## bench-eigen-sparse: the sparse spectral engine — LOBPCG bottom-k
## ladder on grid Laplacians up to n=20000, the legacy subspace-iteration
## comparison arm, the sparsification pre-pass, and the end-to-end
## spectral baseline on a 10k-node grid — dumped to the
## BENCH_eigen_sparse.new.json scratch file (gitignored). Compare against
## the committed BENCH_eigen_sparse.json with bench-eigen-diff; promote
## an accepted run with  cp BENCH_eigen_sparse.new.json BENCH_eigen_sparse.json
bench-eigen-sparse:
	$(GO) run ./cmd/elink-experiments -only eigensparse -paper -eigen-sparse-out BENCH_eigen_sparse.new.json

## bench-eigen-diff: regenerate the sparse-eigensolver benchmark and gate
## it against the committed BENCH_eigen_sparse.json snapshot
bench-eigen-diff:
	$(MAKE) bench-diff BENCH_OLD=BENCH_eigen_sparse.json BENCH_NEW=BENCH_eigen_sparse.new.json \
		BENCH_REGEN='$(GO) run ./cmd/elink-experiments -only eigensparse -paper -eigen-sparse-out BENCH_eigen_sparse.new.json'

## bench-spans: replay the Tao stream bare and span-traced, print the
## per-phase p50/p95/max latency attribution table with the measured
## tracing overhead, and dump both to BENCH_spans.json
bench-spans:
	$(GO) run ./cmd/elink-experiments -only spans -spans-out BENCH_spans.json

## bench-diff: regenerate the durability benchmark into BENCH_NEW
## (bench-persist's scratch file by default) and gate it against the
## committed BENCH_persist.json snapshot — any tracked latency/size
## metric more than BENCH_TOL percent worse fails the target. Override
## the variables to diff other snapshots, e.g.
##   make bench-diff BENCH_OLD=BENCH_routes.json BENCH_NEW=new.json BENCH_REGEN=
BENCH_OLD ?= BENCH_persist.json
BENCH_NEW ?= BENCH_persist.new.json
BENCH_TOL ?= 25
BENCH_REGEN ?= $(GO) run ./cmd/elink-experiments -only persistbench -persist-out $(BENCH_NEW)
bench-diff:
	$(BENCH_REGEN)
	$(GO) run ./cmd/elink-benchdiff -tol $(BENCH_TOL) $(BENCH_OLD) $(BENCH_NEW)

## bench-clean: sweep the gitignored *.new.json scratch files the gated
## bench targets leave behind (committed BENCH_*.json baselines are
## untouched)
bench-clean:
	rm -f BENCH_*.new.json

## examples: compile every example without running them
examples:
	$(GO) build -o /dev/null ./examples/...

clean:
	$(GO) clean ./...
