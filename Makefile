GO ?= go

.PHONY: check build vet test race bench examples clean

## check: everything CI runs — build, vet, tests, then the race pass
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: the concurrent subsystems (streaming engine, async runtime)
## under the race detector
race:
	$(GO) test -race ./internal/stream ./internal/sim ./cmd/elink-serve .

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

## examples: compile every example without running them
examples:
	$(GO) build -o /dev/null ./examples/...

clean:
	$(GO) clean ./...
