module elink

go 1.22
