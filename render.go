package elink

import (
	"strings"
)

// RenderGridClusters draws a grid network's clustering as an ASCII map,
// one letter per cluster (wrapping after 26 and continuing with lower
// case, then digits). It is meant for grids built with NewGrid, where
// node ids are laid out row-major; other topologies render in id order,
// cols wide.
func RenderGridClusters(g *Graph, c *Clustering, cols int) string {
	if cols <= 0 {
		cols = 1
	}
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
	var b strings.Builder
	for u := 0; u < g.N(); u++ {
		if u > 0 && u%cols == 0 {
			b.WriteByte('\n')
		}
		b.WriteByte(alphabet[c.ClusterOf(NodeID(u))%len(alphabet)])
	}
	return b.String()
}
