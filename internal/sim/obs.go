package sim

import (
	"elink/internal/obs"
	"elink/internal/topology"
)

// netObs is the event-driven executor's observability sink: it mirrors
// the per-kind transmission counters into a metrics registry and folds
// the event stream into per-round trace events (round number, messages
// sent by kind, nodes active). With UnitDelay one simulated time unit is
// one synchronous round, so the trace directly measures the quantity
// Theorems 2 and 3 bound.
type netObs struct {
	reg   *obs.Registry
	tr    *obs.Tracer
	scope string

	dropped *obs.Counter
	kinds   map[string]*obs.Counter // cached sim_messages_total handles

	round      int
	roundMsgs  map[string]int64
	roundTotal int64
	activeMark []bool
	activeList []topology.NodeID
}

// Instrument mirrors the network's message accounting into reg (family
// sim_messages_total{scope,kind}, sim_dropped_total{scope}) and, when tr
// is non-nil, records one trace event per simulated round. scope labels
// the run ("elink", "forest", ...). Both sinks are optional; passing two
// nils is a no-op. Call before Run/Start.
func (n *Network) Instrument(reg *obs.Registry, tr *obs.Tracer, scope string) {
	if reg == nil && tr == nil {
		return
	}
	o := &netObs{reg: reg, tr: tr, scope: scope}
	if reg != nil {
		reg.Help("sim_messages_total", "Radio transmissions by run scope and message kind.")
		reg.Help("sim_dropped_total", "Transmissions lost to injected faults, by run scope.")
		o.dropped = reg.Counter("sim_dropped_total", "scope", scope)
		o.kinds = make(map[string]*obs.Counter)
	}
	if tr != nil {
		o.roundMsgs = make(map[string]int64)
		o.activeMark = make([]bool, n.Graph.N())
	}
	n.obs = o
}

// count mirrors one charge of cost transmissions of the given kind.
func (o *netObs) count(kind string, cost int64) {
	if o.kinds != nil {
		ctr := o.kinds[kind]
		if ctr == nil {
			ctr = o.reg.Counter("sim_messages_total", "scope", o.scope, "kind", kind)
			o.kinds[kind] = ctr
		}
		ctr.Add(cost)
	}
	if o.roundMsgs != nil {
		o.roundMsgs[kind] += cost
		o.roundTotal += cost
	}
}

// droppedInc counts one fault-injected loss (nil-safe: the loss path
// calls it unconditionally).
func (o *netObs) droppedInc() {
	if o == nil {
		return
	}
	o.dropped.Inc()
}

// tick advances the round clock to simulated time t, flushing the
// accumulated round event when a round boundary is crossed.
func (o *netObs) tick(t float64) {
	if o.tr == nil {
		return
	}
	if r := int(t); r > o.round {
		o.flush()
		o.round = r
	}
}

// markActive notes that node u handled an event in the current round.
func (o *netObs) markActive(u topology.NodeID) {
	if o.tr == nil {
		return
	}
	if !o.activeMark[u] {
		o.activeMark[u] = true
		o.activeList = append(o.activeList, u)
	}
}

// flush emits the current round's trace event if anything happened, then
// resets the accumulators for the next round.
func (o *netObs) flush() {
	if o.tr == nil || (o.roundTotal == 0 && len(o.activeList) == 0) {
		return
	}
	msgs := make(map[string]int64, len(o.roundMsgs))
	for k, v := range o.roundMsgs {
		msgs[k] = v
		delete(o.roundMsgs, k)
	}
	o.tr.Record(obs.Event{
		Scope:  o.scope,
		Kind:   "round",
		Round:  o.round,
		Time:   float64(o.round),
		Active: len(o.activeList),
		Msgs:   msgs,
	})
	o.roundTotal = 0
	for _, u := range o.activeList {
		o.activeMark[u] = false
	}
	o.activeList = o.activeList[:0]
}
