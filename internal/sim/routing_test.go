package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"elink/internal/topology"
)

// reportProtocol is a small deterministic protocol whose accounting is
// independent of message interleaving: every node greets each neighbour
// once and routes one report to the sink, so the sync and async runtimes
// must produce identical counters.
type reportProtocol struct {
	sink topology.NodeID
}

func (p reportProtocol) Init(ctx Context) {
	for _, nb := range ctx.Neighbors() {
		ctx.Send(nb, "hello", nil)
	}
	ctx.Route(p.sink, "report", nil)
}
func (reportProtocol) OnMessage(Context, Message) {}
func (reportProtocol) OnTimer(Context, string)    {}

// TestSyncAsyncAccountingParity pins AsyncNetwork's accounting — total
// and per-kind counts plus the per-sender TxPerNode attribution — to the
// event-driven Network's on the same protocol. The async runtime used to
// have no per-sender attribution at all, silently diverging from the
// energy model.
func TestSyncAsyncAccountingParity(t *testing.T) {
	g := topology.NewGrid(4, 5)
	proto := func(topology.NodeID) Protocol { return reportProtocol{sink: 0} }

	net := NewNetwork(g, nil, 1)
	net.SetAll(proto)
	net.Run()

	an := NewAsyncNetwork(g, 1)
	an.SetAll(proto)
	an.Run()

	if s, a := net.TotalMessages(), an.TotalMessages(); s != a {
		t.Errorf("TotalMessages: sync %d, async %d", s, a)
	}
	sb, ab := net.MessageBreakdown(), an.MessageBreakdown()
	for kind, sc := range sb {
		if ab[kind] != sc {
			t.Errorf("Messages(%q): sync %d, async %d", kind, sc, ab[kind])
		}
	}
	if len(ab) != len(sb) {
		t.Errorf("breakdown kinds: sync %v, async %v", sb, ab)
	}
	stx, atx := net.TxPerNode(), an.TxPerNode()
	for u := range stx {
		if stx[u] != atx[u] {
			t.Errorf("TxPerNode[%d]: sync %d, async %d", u, stx[u], atx[u])
		}
	}
}

// TestAsyncRoutePerNodeAttribution checks every hop of an async routed
// message is charged to the node that forwards it, not just counted in
// the per-kind totals.
func TestAsyncRoutePerNodeAttribution(t *testing.T) {
	g := topology.NewGrid(1, 5) // path 0-1-2-3-4
	an := NewAsyncNetwork(g, 1)
	an.SetProtocol(0, protoFunc{init: func(ctx Context) { ctx.Route(4, "far", nil) }})
	for u := 1; u < 5; u++ {
		an.SetProtocol(topology.NodeID(u), protoFunc{})
	}
	an.Run()
	want := []int64{1, 1, 1, 1, 0} // every node but the sink forwards once
	for u, w := range want {
		if tx := an.TxPerNode()[u]; tx != w {
			t.Errorf("TxPerNode[%d] = %d, want %d", u, tx, w)
		}
	}
}

// TestUniformDelayValidation checks inverted and negative bounds are
// rejected before they can schedule events in the past.
func TestUniformDelayValidation(t *testing.T) {
	cases := []struct {
		delay UniformDelay
		bad   bool
	}{
		{UniformDelay{Min: 2, Max: 1}, true},
		{UniformDelay{Min: -1, Max: 1}, true},
		{UniformDelay{Min: 0.5, Max: 1.5}, false},
		{UniformDelay{Min: 1, Max: 1}, false},
	}
	for _, c := range cases {
		err := ValidateDelay(c.delay)
		if c.bad && err == nil {
			t.Errorf("ValidateDelay(%+v) accepted invalid bounds", c.delay)
		}
		if !c.bad && err != nil {
			t.Errorf("ValidateDelay(%+v) = %v, want nil", c.delay, err)
		}
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewNetwork accepted UniformDelay{Min:2, Max:1}")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "inverted") {
			t.Fatalf("panic message %q does not explain the inverted bounds", msg)
		}
	}()
	NewNetwork(topology.NewGrid(1, 2), UniformDelay{Min: 2, Max: 1}, 1)
}

// routingProtocol routes a burst of messages to destinations drawn from
// a fixed set, the hot path the shared routing tables serve.
type routingProtocol struct {
	dests []topology.NodeID
	burst int
}

func (p routingProtocol) Init(ctx Context) {
	for i := 0; i < p.burst; i++ {
		ctx.Route(p.dests[(int(ctx.ID())+i)%len(p.dests)], "data", nil)
	}
}
func (routingProtocol) OnMessage(Context, Message) {}
func (routingProtocol) OnTimer(Context, string)    {}

// TestAsyncConcurrentRouting hammers the shared routing tables from every
// node goroutine at once (run under -race): all nodes route bursts to
// overlapping destinations while tables are still being built.
func TestAsyncConcurrentRouting(t *testing.T) {
	g := topology.NewGrid(8, 8)
	rng := rand.New(rand.NewSource(5))
	dests := make([]topology.NodeID, 16)
	for i := range dests {
		dests[i] = topology.NodeID(rng.Intn(g.N()))
	}
	an := NewAsyncNetwork(g, 1)
	an.SetAll(func(topology.NodeID) Protocol { return routingProtocol{dests: dests, burst: 8} })
	an.Run()

	// The same workload on the deterministic runtime must agree exactly.
	net := NewNetwork(g, nil, 1)
	net.SetAll(func(topology.NodeID) Protocol { return routingProtocol{dests: dests, burst: 8} })
	net.Run()
	if s, a := net.Messages("data"), an.Messages("data"); s != a {
		t.Errorf("routed cost: sync %d, async %d", s, a)
	}
	stx, atx := net.TxPerNode(), an.TxPerNode()
	for u := range stx {
		if stx[u] != atx[u] {
			t.Errorf("TxPerNode[%d]: sync %d, async %d", u, stx[u], atx[u])
		}
	}
}
