// Package sim is a deterministic discrete-event simulator for in-network
// sensor protocols, plus a goroutine-based asynchronous runtime.
//
// A Protocol is the per-node state machine (message handler + timers). The
// event-driven Network delivers single-hop messages between communication-
// graph neighbours and routed multi-hop messages along shortest hop paths,
// charging one message per radio hop, exactly the accounting the paper's
// experiments use (§8.2). Per-kind message counters let each experiment
// decompose its cost into expand/ack/phase traffic and so on.
//
// The paper's synchronous setting corresponds to the default unit hop
// delay; the asynchronous setting is modelled either by a randomized hop
// delay (still deterministic given the seed) or by the AsyncNetwork
// runtime in async.go, which runs one goroutine per node with channels as
// links.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"elink/internal/detrand"
	"elink/internal/topology"
)

// Message is a protocol message as seen by the receiving node.
type Message struct {
	From, To topology.NodeID
	Kind     string
	Payload  any
	Hops     int // radio hops the message travelled (1 for neighbour sends)
}

// Context is the interface a protocol uses to interact with the network
// while handling an event.
type Context interface {
	// ID returns the node this handler runs on.
	ID() topology.NodeID
	// Now returns the current simulated time.
	Now() float64
	// Neighbors lists the node's communication-graph neighbours.
	Neighbors() []topology.NodeID
	// Send transmits a single-hop message. The destination must be a
	// neighbour or the node itself (self-sends are free and immediate,
	// used when one physical node plays several protocol roles).
	Send(to topology.NodeID, kind string, payload any)
	// Route transmits a message along the shortest hop path to an
	// arbitrary node, charging one message per hop.
	Route(to topology.NodeID, kind string, payload any)
	// SetTimer schedules OnTimer(key) after delay time units.
	SetTimer(delay float64, key string)
	// Rand returns the network's deterministic random source.
	Rand() *rand.Rand
}

// Protocol is a per-node state machine.
type Protocol interface {
	// Init runs once when the network starts.
	Init(ctx Context)
	// OnMessage handles a delivered message.
	OnMessage(ctx Context, msg Message)
	// OnTimer handles a timer set with SetTimer.
	OnTimer(ctx Context, key string)
}

// DelayModel produces the per-hop delivery delay.
type DelayModel interface {
	HopDelay(rng *rand.Rand, from, to topology.NodeID) float64
}

// UnitDelay is the synchronous model: every hop takes one time unit.
type UnitDelay struct{}

// HopDelay implements DelayModel.
func (UnitDelay) HopDelay(*rand.Rand, topology.NodeID, topology.NodeID) float64 { return 1 }

// UniformDelay models an asynchronous network: each hop takes a delay
// drawn uniformly from [Min, Max].
type UniformDelay struct {
	Min, Max float64
}

// HopDelay implements DelayModel.
func (d UniformDelay) HopDelay(rng *rand.Rand, _, _ topology.NodeID) float64 {
	return d.Min + rng.Float64()*(d.Max-d.Min)
}

// Validate rejects bounds that would schedule deliveries in the past and
// corrupt the event clock: a negative Min or an inverted Min > Max.
func (d UniformDelay) Validate() error {
	if d.Min < 0 {
		return fmt.Errorf("sim: UniformDelay.Min %v is negative; hop delays must be >= 0", d.Min)
	}
	if d.Max < d.Min {
		return fmt.Errorf("sim: UniformDelay bounds inverted (Min %v > Max %v)", d.Min, d.Max)
	}
	return nil
}

// ValidateDelay checks a delay model's parameters when it exposes a
// Validate method (UniformDelay does); other models validate nothing.
func ValidateDelay(d DelayModel) error {
	if v, ok := d.(interface{ Validate() error }); ok {
		return v.Validate()
	}
	return nil
}

type eventKind uint8

const (
	evMessage eventKind = iota
	evTimer
)

type event struct {
	time float64
	seq  int64 // tie-break for determinism
	kind eventKind
	node topology.NodeID
	msg  Message
	key  string
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() (event, bool) {
	if len(h) == 0 {
		return event{}, false
	}
	return h[0], true
}

// Network is the deterministic discrete-event executor.
type Network struct {
	Graph *topology.Graph

	routes    *topology.Routes // shared shortest-hop tables (no per-call BFS)
	protocols []Protocol
	delay     DelayModel
	rng       *rand.Rand

	pq  eventHeap
	now float64
	seq int64

	counts    map[string]int64
	perNode   []int64 // transmissions attributed to each sender
	delivered int64
	dropped   int64
	loss      float64
	trace     func(at float64, msg Message)
	obs       *netObs // optional metrics/trace sink (see Instrument)

	// MaxEvents guards against protocol bugs that never quiesce.
	MaxEvents int64
}

// NewNetwork builds an executor over g. delay defaults to UnitDelay when
// nil. The seed makes randomized delay models reproducible. Invalid delay
// parameters (e.g. an inverted UniformDelay) panic here, before any event
// can be scheduled in the past; library entry points validate the same
// bounds and return an error instead (elink.Config).
func NewNetwork(g *topology.Graph, delay DelayModel, seed int64) *Network {
	if delay == nil {
		delay = UnitDelay{}
	}
	if err := ValidateDelay(delay); err != nil {
		panic(err.Error())
	}
	return &Network{
		Graph:     g,
		routes:    g.Routes(),
		protocols: make([]Protocol, g.N()),
		delay:     delay,
		rng:       detrand.New(seed),
		counts:    make(map[string]int64),
		perNode:   make([]int64, g.N()),
		MaxEvents: int64(g.N())*100000 + 1000000,
	}
}

// SetProtocol installs the state machine for node u.
func (n *Network) SetProtocol(u topology.NodeID, p Protocol) { n.protocols[u] = p }

// SetAll installs a protocol per node from a factory.
func (n *Network) SetAll(factory func(u topology.NodeID) Protocol) {
	for u := range n.protocols {
		n.protocols[u] = factory(topology.NodeID(u))
	}
}

// Now returns the current simulated time.
func (n *Network) Now() float64 { return n.now }

// Messages returns the number of radio transmissions of the given kind.
func (n *Network) Messages(kind string) int64 { return n.counts[kind] }

// TotalMessages returns all radio transmissions across kinds.
func (n *Network) TotalMessages() int64 {
	var t int64
	for _, c := range n.counts {
		t += c
	}
	return t
}

// MessageBreakdown returns a copy of the per-kind transmission counters.
func (n *Network) MessageBreakdown() map[string]int64 {
	out := make(map[string]int64, len(n.counts))
	for k, v := range n.counts {
		out[k] = v
	}
	return out
}

// Kinds returns the message kinds observed so far, sorted.
func (n *Network) Kinds() []string {
	ks := make([]string, 0, len(n.counts))
	for k := range n.counts {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// ResetCounters zeroes the message accounting — per-kind counts, the
// per-sender attribution behind TxPerNode, delivery and drop totals —
// without touching protocol state or pending events; experiments use it
// to separate phases.
func (n *Network) ResetCounters() {
	n.counts = make(map[string]int64)
	for i := range n.perNode {
		n.perNode[i] = 0
	}
	n.delivered = 0
	n.dropped = 0
}

// SetLoss makes every radio hop fail independently with probability p
// (fault injection; transmissions are still charged — the radio energy is
// spent whether or not the frame arrives). Self-sends never fail.
func (n *Network) SetLoss(p float64) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("sim: loss probability %v out of [0,1)", p))
	}
	n.loss = p
}

// Dropped returns how many transmissions were lost to injected faults.
func (n *Network) Dropped() int64 { return n.dropped }

// TxPerNode returns, for every node, how many radio transmissions it has
// performed (each hop is attributed to its sender). Energy models divide
// a battery budget by these to estimate per-node lifetime: clustering's
// §1 motivation is exactly that it spreads this load instead of
// funnelling it through the base station's neighbours.
func (n *Network) TxPerNode() []int64 {
	out := make([]int64, len(n.perNode))
	copy(out, n.perNode)
	return out
}

// SetTrace installs a callback invoked on every message delivery (after
// any loss filtering, before the handler runs). Useful for debugging
// protocols and asserting on traffic in tests.
func (n *Network) SetTrace(fn func(at float64, msg Message)) { n.trace = fn }

// Run starts every protocol and processes events until the queue drains,
// returning the final simulated time. It panics if MaxEvents is exceeded
// (a protocol that never terminates is a bug worth failing loudly on).
func (n *Network) Run() float64 {
	n.Start()
	return n.Drain()
}

// Start invokes Init on every installed protocol without processing
// events, so callers can interleave injections with Drain.
func (n *Network) Start() {
	for u, p := range n.protocols {
		if p != nil {
			p.Init(&nodeCtx{net: n, id: topology.NodeID(u)})
		}
	}
}

// Drain processes queued events until none remain.
func (n *Network) Drain() float64 {
	var processed int64
	for len(n.pq) > 0 {
		e := heap.Pop(&n.pq).(event)
		processed++
		if processed > n.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded %d events; protocol likely does not terminate", n.MaxEvents))
		}
		n.dispatch(e)
	}
	if n.obs != nil {
		n.obs.flush() // the final, possibly partial round
	}
	return n.now
}

// StepUntil processes events with time <= t, leaving later events queued.
// Like Drain it flushes the instrumented trailing round, so traces stay
// complete for networks driven purely via Inject/StepUntil; a round that
// straddles the t boundary therefore emits one partial event per step.
func (n *Network) StepUntil(t float64) {
	for {
		e, ok := n.pq.Peek()
		if !ok || e.time > t {
			break
		}
		heap.Pop(&n.pq)
		n.dispatch(e)
	}
	if n.obs != nil {
		n.obs.flush()
	}
}

// dispatch runs one event's handler, keeping the clock, the delivery
// accounting and the optional observability sink in step.
func (n *Network) dispatch(e event) {
	n.now = e.time
	if n.obs != nil {
		n.obs.tick(e.time)
	}
	p := n.protocols[e.node]
	if p == nil {
		return
	}
	if n.obs != nil {
		n.obs.markActive(e.node)
	}
	ctx := &nodeCtx{net: n, id: e.node}
	switch e.kind {
	case evMessage:
		n.delivered++
		if n.trace != nil {
			n.trace(n.now, e.msg)
		}
		p.OnMessage(ctx, e.msg)
	case evTimer:
		p.OnTimer(ctx, e.key)
	}
}

// Inject delivers a message to node u at the current time without
// charging any radio cost; experiments use it to pose queries "at" a node.
func (n *Network) Inject(u topology.NodeID, kind string, payload any) {
	n.push(event{time: n.now, kind: evMessage, node: u,
		msg: Message{From: u, To: u, Kind: kind, Payload: payload}})
}

func (n *Network) push(e event) {
	e.seq = n.seq
	n.seq++
	heap.Push(&n.pq, e)
}

// nodeCtx implements Context for one handler invocation.
type nodeCtx struct {
	net *Network
	id  topology.NodeID
}

func (c *nodeCtx) ID() topology.NodeID          { return c.id }
func (c *nodeCtx) Now() float64                 { return c.net.now }
func (c *nodeCtx) Neighbors() []topology.NodeID { return c.net.Graph.Neighbors(c.id) }
func (c *nodeCtx) Rand() *rand.Rand             { return c.net.rng }

func (c *nodeCtx) Send(to topology.NodeID, kind string, payload any) {
	n := c.net
	if to == c.id {
		// A node talking to itself (e.g. it is both cluster root and
		// quadtree leader) costs nothing.
		n.push(event{time: n.now, kind: evMessage, node: to,
			msg: Message{From: c.id, To: to, Kind: kind, Payload: payload}})
		return
	}
	if !n.Graph.HasEdge(c.id, to) {
		panic(fmt.Sprintf("sim: Send from %d to non-neighbour %d (use Route)", c.id, to))
	}
	n.counts[kind]++
	n.perNode[c.id]++
	if n.obs != nil {
		n.obs.count(kind, 1)
	}
	if n.loss > 0 && n.rng.Float64() < n.loss {
		n.dropped++
		n.obs.droppedInc()
		return
	}
	d := n.delay.HopDelay(n.rng, c.id, to)
	n.push(event{time: n.now + d, kind: evMessage, node: to,
		msg: Message{From: c.id, To: to, Kind: kind, Payload: payload, Hops: 1}})
}

func (c *nodeCtx) Route(to topology.NodeID, kind string, payload any) {
	n := c.net
	if to == c.id {
		n.push(event{time: n.now, kind: evMessage, node: to,
			msg: Message{From: c.id, To: to, Kind: kind, Payload: payload}})
		return
	}
	// One table lookup, then an O(path) parent-chain walk: no BFS, no
	// neighbour scans, no path allocation on the per-message hot path.
	rt := n.routes.Table(to)
	hops := rt.Dist(c.id)
	if hops < 0 {
		panic(fmt.Sprintf("sim: Route from %d to unreachable %d", c.id, to))
	}
	var delay float64
	for cur := c.id; cur != to; {
		next := rt.Next(cur)
		n.counts[kind]++
		n.perNode[cur]++
		if n.obs != nil {
			n.obs.count(kind, 1)
		}
		if n.loss > 0 && n.rng.Float64() < n.loss {
			// The frame dies mid-route: hops up to here were paid for.
			n.dropped++
			n.obs.droppedInc()
			return
		}
		delay += n.delay.HopDelay(n.rng, cur, next)
		cur = next
	}
	n.push(event{time: n.now + delay, kind: evMessage, node: to,
		msg: Message{From: c.id, To: to, Kind: kind, Payload: payload, Hops: hops}})
}

func (c *nodeCtx) SetTimer(delay float64, key string) {
	n := c.net
	n.push(event{time: n.now + delay, kind: evTimer, node: c.id, key: key})
}
