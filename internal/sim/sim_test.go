package sim

import (
	"sync"
	"testing"

	"elink/internal/topology"
)

// floodProtocol floods a token from node 0 and records when each node
// first hears it.
type floodProtocol struct {
	heard   map[topology.NodeID]float64
	mu      *sync.Mutex
	started map[topology.NodeID]bool
}

func newFlood() *floodProtocol {
	return &floodProtocol{
		heard:   make(map[topology.NodeID]float64),
		mu:      &sync.Mutex{},
		started: make(map[topology.NodeID]bool),
	}
}

func (f *floodProtocol) Init(ctx Context) {
	f.mu.Lock()
	f.started[ctx.ID()] = true
	f.mu.Unlock()
	if ctx.ID() == 0 {
		f.hear(ctx)
	}
}

func (f *floodProtocol) OnMessage(ctx Context, msg Message) {
	if msg.Kind == "flood" {
		f.hear(ctx)
	}
}

func (f *floodProtocol) OnTimer(Context, string) {}

func (f *floodProtocol) hear(ctx Context) {
	f.mu.Lock()
	_, seen := f.heard[ctx.ID()]
	if !seen {
		f.heard[ctx.ID()] = ctx.Now()
	}
	f.mu.Unlock()
	if seen {
		return
	}
	for _, nb := range ctx.Neighbors() {
		ctx.Send(nb, "flood", nil)
	}
}

func TestFloodReachesEveryoneAtHopTime(t *testing.T) {
	g := topology.NewGrid(4, 5)
	net := NewNetwork(g, nil, 1)
	f := newFlood()
	net.SetAll(func(topology.NodeID) Protocol { return f })
	end := net.Run()

	for u := 0; u < g.N(); u++ {
		at, ok := f.heard[topology.NodeID(u)]
		if !ok {
			t.Fatalf("node %d never heard the flood", u)
		}
		if want := float64(g.HopDistance(0, topology.NodeID(u))); at != want {
			t.Errorf("node %d heard at t=%v, want %v (unit hop delay)", u, at, want)
		}
	}
	// Flood sends deg(u) messages per node => total = sum of degrees = 2E.
	if got, want := net.Messages("flood"), int64(2*g.Edges()); got != want {
		t.Errorf("flood messages = %d, want %d", got, want)
	}
	if end != net.Now() {
		t.Error("Run should return final time")
	}
}

func TestSendToNonNeighborPanics(t *testing.T) {
	g := topology.NewGrid(1, 3) // 0-1-2
	net := NewNetwork(g, nil, 1)
	net.SetProtocol(0, protoFunc{init: func(ctx Context) { ctx.Send(2, "x", nil) }})
	defer func() {
		if recover() == nil {
			t.Error("Send to non-neighbour should panic")
		}
	}()
	net.Run()
}

func TestRouteChargesHops(t *testing.T) {
	g := topology.NewGrid(1, 5) // path, 0..4
	net := NewNetwork(g, nil, 1)
	var arrived Message
	net.SetProtocol(0, protoFunc{init: func(ctx Context) { ctx.Route(4, "hello", "payload") }})
	net.SetProtocol(4, protoFunc{onMsg: func(ctx Context, m Message) { arrived = m }})
	end := net.Run()
	if net.Messages("hello") != 4 {
		t.Errorf("routed message cost = %d, want 4 hops", net.Messages("hello"))
	}
	if arrived.Hops != 4 || arrived.Payload != "payload" || arrived.From != 0 {
		t.Errorf("arrived = %+v", arrived)
	}
	if end != 4 {
		t.Errorf("delivery time = %v, want 4", end)
	}
}

func TestSelfSendIsFree(t *testing.T) {
	g := topology.NewGrid(1, 2)
	net := NewNetwork(g, nil, 1)
	got := 0
	net.SetProtocol(0, protoFunc{
		init:  func(ctx Context) { ctx.Send(0, "self", nil); ctx.Route(0, "self", nil) },
		onMsg: func(ctx Context, m Message) { got++ },
	})
	net.Run()
	if got != 2 {
		t.Errorf("self messages delivered = %d, want 2", got)
	}
	if net.TotalMessages() != 0 {
		t.Errorf("self sends cost = %d, want 0", net.TotalMessages())
	}
}

func TestTimersFireInOrder(t *testing.T) {
	g := topology.NewGrid(1, 1)
	net := NewNetwork(g, nil, 1)
	var fired []string
	net.SetProtocol(0, protoFunc{
		init: func(ctx Context) {
			ctx.SetTimer(5, "b")
			ctx.SetTimer(2, "a")
			ctx.SetTimer(9, "c")
		},
		onTimer: func(ctx Context, key string) { fired = append(fired, key) },
	})
	end := net.Run()
	if len(fired) != 3 || fired[0] != "a" || fired[1] != "b" || fired[2] != "c" {
		t.Errorf("timer order = %v, want [a b c]", fired)
	}
	if end != 9 {
		t.Errorf("final time = %v, want 9", end)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() (float64, int64) {
		g := topology.NewGrid(5, 5)
		net := NewNetwork(g, UniformDelay{Min: 0.5, Max: 1.5}, 99)
		f := newFlood()
		net.SetAll(func(topology.NodeID) Protocol { return f })
		return net.Run(), net.TotalMessages()
	}
	t1, m1 := run()
	t2, m2 := run()
	if t1 != t2 || m1 != m2 {
		t.Errorf("same seed produced different runs: (%v,%d) vs (%v,%d)", t1, m1, t2, m2)
	}
}

func TestUniformDelayWithinBounds(t *testing.T) {
	g := topology.NewGrid(1, 2)
	net := NewNetwork(g, UniformDelay{Min: 2, Max: 3}, 7)
	var at float64
	net.SetProtocol(0, protoFunc{init: func(ctx Context) { ctx.Send(1, "x", nil) }})
	net.SetProtocol(1, protoFunc{onMsg: func(ctx Context, m Message) { at = ctx.Now() }})
	net.Run()
	if at < 2 || at > 3 {
		t.Errorf("delivery at %v, want within [2,3]", at)
	}
}

func TestResetCounters(t *testing.T) {
	g := topology.NewGrid(1, 4)
	net := NewNetwork(g, nil, 1)
	net.SetLoss(0.5)
	net.SetProtocol(0, protoFunc{init: func(ctx Context) {
		for i := 0; i < 20; i++ {
			ctx.Send(1, "x", nil)
			ctx.Route(3, "far", nil)
		}
	}})
	for u := 1; u < 4; u++ {
		net.SetProtocol(topology.NodeID(u), protoFunc{})
	}
	net.Run()
	if net.TotalMessages() == 0 {
		t.Fatal("expected messages")
	}
	if net.Dropped() == 0 {
		t.Fatal("expected drops at 50% loss")
	}
	if maxTx(net.TxPerNode()) == 0 {
		t.Fatal("expected per-node attribution")
	}
	net.ResetCounters()
	if net.TotalMessages() != 0 {
		t.Error("ResetCounters did not zero the counts")
	}
	if net.Dropped() != 0 {
		t.Error("ResetCounters did not zero Dropped")
	}
	for u, tx := range net.TxPerNode() {
		if tx != 0 {
			t.Errorf("ResetCounters left TxPerNode[%d] = %d; energy metrics would mix phases", u, tx)
		}
	}
}

func maxTx(tx []int64) int64 {
	var m int64
	for _, v := range tx {
		if v > m {
			m = v
		}
	}
	return m
}

func TestInjectAndStepUntil(t *testing.T) {
	g := topology.NewGrid(1, 3)
	net := NewNetwork(g, nil, 1)
	var got []string
	net.SetAll(func(u topology.NodeID) Protocol {
		return protoFunc{onMsg: func(ctx Context, m Message) {
			got = append(got, m.Kind)
			if m.Kind == "q" && ctx.ID() != 2 {
				ctx.Send(ctx.ID()+1, "q", nil)
			}
		}}
	})
	net.Start()
	net.Inject(0, "q", nil)
	net.StepUntil(1) // only injection (t=0) and first hop (t=1) processed
	if len(got) != 2 {
		t.Fatalf("after StepUntil(1): %v", got)
	}
	net.Drain()
	if len(got) != 3 {
		t.Fatalf("after Drain: %v", got)
	}
	if net.Messages("q") != 2 {
		t.Errorf("q cost = %d, want 2 (injection is free)", net.Messages("q"))
	}
}

func TestKindsSorted(t *testing.T) {
	g := topology.NewGrid(1, 2)
	net := NewNetwork(g, nil, 1)
	net.SetProtocol(0, protoFunc{init: func(ctx Context) {
		ctx.Send(1, "zeta", nil)
		ctx.Send(1, "alpha", nil)
	}})
	net.SetProtocol(1, protoFunc{})
	net.Run()
	ks := net.Kinds()
	if len(ks) != 2 || ks[0] != "alpha" || ks[1] != "zeta" {
		t.Errorf("Kinds = %v", ks)
	}
}

func TestMaxEventsGuard(t *testing.T) {
	g := topology.NewGrid(1, 2)
	net := NewNetwork(g, nil, 1)
	net.MaxEvents = 100
	// Ping-pong forever.
	net.SetAll(func(u topology.NodeID) Protocol {
		return protoFunc{
			init:  func(ctx Context) { ctx.Send(1-ctx.ID(), "ping", nil) },
			onMsg: func(ctx Context, m Message) { ctx.Send(m.From, "ping", nil) },
		}
	})
	defer func() {
		if recover() == nil {
			t.Error("runaway protocol should trip MaxEvents")
		}
	}()
	net.Run()
}

// protoFunc adapts closures to the Protocol interface.
type protoFunc struct {
	init    func(Context)
	onMsg   func(Context, Message)
	onTimer func(Context, string)
}

func (p protoFunc) Init(ctx Context) {
	if p.init != nil {
		p.init(ctx)
	}
}
func (p protoFunc) OnMessage(ctx Context, m Message) {
	if p.onMsg != nil {
		p.onMsg(ctx, m)
	}
}
func (p protoFunc) OnTimer(ctx Context, key string) {
	if p.onTimer != nil {
		p.onTimer(ctx, key)
	}
}

func TestAsyncFloodReachesEveryone(t *testing.T) {
	g := topology.NewGrid(4, 5)
	an := NewAsyncNetwork(g, 1)
	f := newFlood()
	an.SetAll(func(topology.NodeID) Protocol { return f })
	an.Run()

	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.heard) != g.N() {
		t.Fatalf("only %d/%d nodes heard the flood", len(f.heard), g.N())
	}
	if got, want := an.Messages("flood"), int64(2*g.Edges()); got != want {
		t.Errorf("flood messages = %d, want %d", got, want)
	}
}

func TestAsyncInitRunsBeforeMessages(t *testing.T) {
	g := topology.NewGrid(1, 2)
	an := NewAsyncNetwork(g, 1)
	var mu sync.Mutex
	initBeforeMsg := true
	inited := map[topology.NodeID]bool{}
	an.SetAll(func(u topology.NodeID) Protocol {
		return protoFunc{
			init: func(ctx Context) {
				mu.Lock()
				inited[ctx.ID()] = true
				mu.Unlock()
				if ctx.ID() == 0 {
					ctx.Send(1, "hi", nil)
				}
			},
			onMsg: func(ctx Context, m Message) {
				mu.Lock()
				if !inited[ctx.ID()] {
					initBeforeMsg = false
				}
				mu.Unlock()
			},
		}
	})
	an.Run()
	if !initBeforeMsg {
		t.Error("a node handled a message before its Init")
	}
}

func TestAsyncTimersFireAfterQuiescence(t *testing.T) {
	g := topology.NewGrid(1, 3)
	an := NewAsyncNetwork(g, 1)
	var mu sync.Mutex
	var order []string
	an.SetProtocol(0, protoFunc{
		init: func(ctx Context) {
			ctx.SetTimer(10, "late")
			ctx.Send(1, "msg", nil)
		},
		onTimer: func(ctx Context, key string) {
			mu.Lock()
			order = append(order, "timer")
			mu.Unlock()
		},
	})
	an.SetProtocol(1, protoFunc{onMsg: func(ctx Context, m Message) {
		mu.Lock()
		order = append(order, "msg")
		mu.Unlock()
		if m.Kind == "msg" {
			ctx.Send(2, "relay", nil)
		}
	}})
	an.SetProtocol(2, protoFunc{onMsg: func(ctx Context, m Message) {
		mu.Lock()
		order = append(order, "relay")
		mu.Unlock()
	}})
	end := an.Run()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[2] != "timer" {
		t.Errorf("order = %v, want timer last", order)
	}
	if end != 10 {
		t.Errorf("virtual end time = %v, want 10", end)
	}
}

func TestAsyncRouteChargesHops(t *testing.T) {
	g := topology.NewGrid(1, 4)
	an := NewAsyncNetwork(g, 1)
	done := make(chan Message, 1)
	an.SetProtocol(0, protoFunc{init: func(ctx Context) { ctx.Route(3, "far", nil) }})
	an.SetProtocol(3, protoFunc{onMsg: func(ctx Context, m Message) { done <- m }})
	an.Run()
	m := <-done
	if m.Hops != 3 {
		t.Errorf("hops = %d, want 3", m.Hops)
	}
	if an.Messages("far") != 3 {
		t.Errorf("cost = %d, want 3", an.Messages("far"))
	}
}

func TestAsyncManyNodesTerminate(t *testing.T) {
	// A broadcast-echo storm on a larger graph must still quiesce.
	g := topology.NewGrid(10, 10)
	an := NewAsyncNetwork(g, 3)
	f := newFlood()
	an.SetAll(func(topology.NodeID) Protocol { return f })
	an.Run()
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.heard) != 100 {
		t.Errorf("heard = %d, want 100", len(f.heard))
	}
}

func TestLossDropsButStillCharges(t *testing.T) {
	g := topology.NewGrid(1, 2)
	net := NewNetwork(g, nil, 3)
	net.SetLoss(0.5)
	received := 0
	net.SetProtocol(0, protoFunc{init: func(ctx Context) {
		for i := 0; i < 200; i++ {
			ctx.Send(1, "x", nil)
		}
	}})
	net.SetProtocol(1, protoFunc{onMsg: func(Context, Message) { received++ }})
	net.Run()
	if net.Messages("x") != 200 {
		t.Errorf("charged = %d, want all 200 (radio energy is spent)", net.Messages("x"))
	}
	if net.Dropped() == 0 || received == 200 {
		t.Errorf("dropped = %d received = %d; loss had no effect", net.Dropped(), received)
	}
	if net.Dropped()+int64(received) != 200 {
		t.Errorf("dropped %d + received %d != 200", net.Dropped(), received)
	}
	// Roughly half should survive.
	if received < 60 || received > 140 {
		t.Errorf("received = %d, want near 100 at 50%% loss", received)
	}
}

func TestLossOnRoutedPath(t *testing.T) {
	g := topology.NewGrid(1, 6)
	net := NewNetwork(g, nil, 9)
	net.SetLoss(0.3)
	delivered := 0
	net.SetProtocol(0, protoFunc{init: func(ctx Context) {
		for i := 0; i < 100; i++ {
			ctx.Route(5, "far", nil)
		}
	}})
	net.SetProtocol(5, protoFunc{onMsg: func(Context, Message) { delivered++ }})
	net.Run()
	// Survival over 5 hops ≈ 0.7^5 ≈ 17%.
	if delivered < 3 || delivered > 45 {
		t.Errorf("delivered = %d, want near 17 over a 5-hop lossy path", delivered)
	}
	// Partial paths are still charged: cost strictly between the
	// delivered-only floor and the loss-free total.
	if net.Messages("far") >= 500 || net.Messages("far") <= int64(delivered*5) {
		t.Errorf("charged = %d; expected partial-path charging", net.Messages("far"))
	}
}

func TestSetLossValidation(t *testing.T) {
	net := NewNetwork(topology.NewGrid(1, 2), nil, 1)
	for _, p := range []float64{-0.1, 1.0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetLoss(%v) did not panic", p)
				}
			}()
			net.SetLoss(p)
		}()
	}
}

func TestTraceSeesDeliveries(t *testing.T) {
	g := topology.NewGrid(1, 3)
	net := NewNetwork(g, nil, 1)
	var traced []string
	net.SetTrace(func(at float64, m Message) {
		traced = append(traced, m.Kind)
	})
	net.SetAll(func(u topology.NodeID) Protocol {
		return protoFunc{init: func(ctx Context) {
			if ctx.ID() == 0 {
				ctx.Send(1, "hop", nil)
			}
		}, onMsg: func(ctx Context, m Message) {
			if ctx.ID() == 1 {
				ctx.Send(2, "relay", nil)
			}
		}}
	})
	net.Run()
	if len(traced) != 2 || traced[0] != "hop" || traced[1] != "relay" {
		t.Errorf("trace = %v", traced)
	}
}

func TestTxPerNodeAttribution(t *testing.T) {
	g := topology.NewGrid(1, 4) // 0-1-2-3
	net := NewNetwork(g, nil, 1)
	net.SetProtocol(0, protoFunc{init: func(ctx Context) {
		ctx.Send(1, "a", nil)  // 0 transmits once
		ctx.Route(3, "b", nil) // 0, 1, 2 each transmit once
	}})
	for u := 1; u < 4; u++ {
		net.SetProtocol(topology.NodeID(u), protoFunc{})
	}
	net.Run()
	tx := net.TxPerNode()
	want := []int64{2, 1, 1, 0}
	for u := range want {
		if tx[u] != want[u] {
			t.Errorf("tx[%d] = %d, want %d", u, tx[u], want[u])
		}
	}
}
