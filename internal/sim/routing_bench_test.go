package sim

import (
	"fmt"
	"testing"

	"elink/internal/topology"
)

// bfsShortestPath is the pre-cache implementation: a full O(N+E) BFS per
// routed message plus the smallest-id walk. It is kept here as the
// benchmark baseline BenchmarkRouting compares the shared routing tables
// against.
func bfsShortestPath(g *topology.Graph, u, v topology.NodeID) []topology.NodeID {
	d := make([]int, g.N())
	for i := range d {
		d[i] = -1
	}
	d[v] = 0
	queue := []topology.NodeID{v}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, w := range g.Adj[x] {
			if d[w] < 0 {
				d[w] = d[x] + 1
				queue = append(queue, w)
			}
		}
	}
	if d[u] < 0 {
		return nil
	}
	path := []topology.NodeID{u}
	for cur := u; cur != v; {
		var next topology.NodeID = -1
		for _, w := range g.Adj[cur] {
			if d[w] == d[cur]-1 {
				next = w
				break
			}
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// uncachedRoute replays Network.Route's accounting over a freshly
// BFS-computed path — the executor's behaviour before the routing-table
// cache.
func uncachedRoute(n *Network, src, dst topology.NodeID, kind string) {
	path := bfsShortestPath(n.Graph, src, dst)
	var delay float64
	for i := 0; i+1 < len(path); i++ {
		n.counts[kind]++
		n.perNode[path[i]]++
		delay += n.delay.HopDelay(n.rng, path[i], path[i+1])
	}
	n.push(event{time: n.now + delay, kind: evMessage, node: dst,
		msg: Message{From: src, To: dst, Kind: kind, Payload: nil, Hops: len(path) - 1}})
}

func benchDests(g *topology.Graph, k int) []topology.NodeID {
	dests := make([]topology.NodeID, k)
	for i := range dests {
		dests[i] = topology.NodeID((i * g.N()) / k)
	}
	return dests
}

// BenchmarkRouting measures routed-message throughput on grid (the
// paper's Tao layout) topologies: the shared routing tables ("cached")
// against one BFS per message ("bfs", the implementation this cache
// replaced), plus the async runtime end to end. Destinations rotate over
// a fixed leader-like set, the pattern clustering protocols produce.
func BenchmarkRouting(b *testing.B) {
	topologies := []struct {
		name string
		g    *topology.Graph
	}{
		{"tao-6x9", topology.NewGrid(6, 9)},
		{"grid-32x32", topology.NewGrid(32, 32)},
		{"grid-45x45", topology.NewGrid(45, 45)},
	}
	for _, tc := range topologies {
		srcs := benchDests(tc.g, 64)
		dests := benchDests(tc.g, 8)
		b.Run(fmt.Sprintf("%s/cached", tc.name), func(b *testing.B) {
			n := NewNetwork(tc.g, nil, 1)
			ctx := &nodeCtx{net: n}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx.id = srcs[i%len(srcs)]
				ctx.Route(dests[i%len(dests)], "bench", nil)
				n.pq = n.pq[:0] // drop the delivery event; routing cost only
			}
		})
		b.Run(fmt.Sprintf("%s/bfs", tc.name), func(b *testing.B) {
			n := NewNetwork(tc.g, nil, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				uncachedRoute(n, srcs[i%len(srcs)], dests[i%len(dests)], "bench")
				n.pq = n.pq[:0]
			}
		})
	}

	// Async runtime end to end: every node routes a burst to shared
	// destinations, so this includes mailbox and goroutine costs; one op
	// is one routed message.
	g := topology.NewGrid(32, 32)
	dests := benchDests(g, 8)
	const burst = 4
	b.Run("grid-32x32/async", func(b *testing.B) {
		msgs := g.N() * burst
		b.ResetTimer()
		for i := 0; i < b.N; i += msgs {
			an := NewAsyncNetwork(g, 1)
			an.SetAll(func(topology.NodeID) Protocol { return routingProtocol{dests: dests, burst: burst} })
			an.Run()
		}
	})
}
