package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"elink/internal/detrand"
	"elink/internal/topology"
)

// AsyncNetwork runs one goroutine per sensor node with mailboxes as radio
// links. Message interleaving is whatever the Go scheduler produces, so it
// exercises protocols under genuine asynchrony — the setting the explicit
// signalling technique (paper §5) is designed for. Message accounting
// matches the event-driven Network.
//
// Timers are conservative: a timer only fires when the network is
// quiescent (no message queued or being handled), at which point the
// virtual clock jumps to the timer's deadline. This corresponds to
// time-outs chosen large enough to dominate any in-flight traffic, which
// is how the paper's implicit technique assumes its budgets are set.
type AsyncNetwork struct {
	Graph *topology.Graph

	protocols []Protocol
	boxes     []*mailbox
	rngs      []*rand.Rand

	pending atomic.Int64 // queued + in-flight handler executions
	quiet   chan struct{}

	mu      sync.Mutex
	counts  map[string]int64
	perNode []int64          // per-sender transmissions; atomic access
	routes  *topology.Routes // shared shortest-hop tables; lookups run lock-free

	clockBits atomic.Uint64 // virtual time as float bits

	timerMu sync.Mutex
	timers  asyncTimerHeap
	tseq    int64
}

type asyncEvent struct {
	msg     Message
	isTimer bool
	key     string
}

// mailbox is an unbounded FIFO so cyclic sends can never deadlock.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []asyncEvent
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) push(e asyncEvent) {
	m.mu.Lock()
	m.queue = append(m.queue, e)
	m.mu.Unlock()
	m.cond.Signal()
}

func (m *mailbox) pop() (asyncEvent, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return asyncEvent{}, false
	}
	e := m.queue[0]
	m.queue = m.queue[1:]
	return e, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

type asyncTimer struct {
	at   float64
	seq  int64
	node topology.NodeID
	key  string
}

type asyncTimerHeap []asyncTimer

func (h asyncTimerHeap) Len() int { return len(h) }
func (h asyncTimerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h asyncTimerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *asyncTimerHeap) Push(x any)   { *h = append(*h, x.(asyncTimer)) }
func (h *asyncTimerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}

// NewAsyncNetwork builds the goroutine runtime over g.
func NewAsyncNetwork(g *topology.Graph, seed int64) *AsyncNetwork {
	n := g.N()
	an := &AsyncNetwork{
		Graph:     g,
		protocols: make([]Protocol, n),
		boxes:     make([]*mailbox, n),
		rngs:      make([]*rand.Rand, n),
		counts:    make(map[string]int64),
		perNode:   make([]int64, n),
		routes:    g.Routes(),
		quiet:     make(chan struct{}, 1),
	}
	for i := 0; i < n; i++ {
		an.boxes[i] = newMailbox()
		an.rngs[i] = detrand.New(seed + int64(i)*7919)
	}
	return an
}

// SetProtocol installs the state machine for node u.
func (an *AsyncNetwork) SetProtocol(u topology.NodeID, p Protocol) { an.protocols[u] = p }

// SetAll installs a protocol per node from a factory.
func (an *AsyncNetwork) SetAll(factory func(u topology.NodeID) Protocol) {
	for u := range an.protocols {
		an.protocols[u] = factory(topology.NodeID(u))
	}
}

// Messages returns the transmissions of the given kind so far.
func (an *AsyncNetwork) Messages(kind string) int64 {
	an.mu.Lock()
	defer an.mu.Unlock()
	return an.counts[kind]
}

// TotalMessages returns all transmissions across kinds.
func (an *AsyncNetwork) TotalMessages() int64 {
	an.mu.Lock()
	defer an.mu.Unlock()
	var t int64
	for _, c := range an.counts {
		t += c
	}
	return t
}

// MessageBreakdown returns a copy of the per-kind counters.
func (an *AsyncNetwork) MessageBreakdown() map[string]int64 {
	an.mu.Lock()
	defer an.mu.Unlock()
	out := make(map[string]int64, len(an.counts))
	for k, v := range an.counts {
		out[k] = v
	}
	return out
}

// TxPerNode returns, for every node, how many radio transmissions it has
// performed, matching the event-driven Network's attribution exactly:
// each hop of a routed message is charged to the node that forwards it.
func (an *AsyncNetwork) TxPerNode() []int64 {
	out := make([]int64, len(an.perNode))
	for i := range an.perNode {
		out[i] = atomic.LoadInt64(&an.perNode[i])
	}
	return out
}

func (an *AsyncNetwork) now() float64 {
	return math.Float64frombits(an.clockBits.Load())
}

// Run starts all node goroutines, initializes every protocol, and blocks
// until the network quiesces with no pending timers. It returns the final
// virtual time (advanced only by timer deadlines).
func (an *AsyncNetwork) Run() float64 {
	// Queue every Init before any goroutine starts: mailboxes are FIFO, so
	// each node is guaranteed to run Init before any message a faster
	// neighbour sends it. Init counts as pending work so quiescence cannot
	// be observed before every protocol has started.
	for u, p := range an.protocols {
		if p == nil {
			continue
		}
		an.pending.Add(1)
		an.boxes[u].push(asyncEvent{isTimer: true, key: initKey})
	}

	var wg sync.WaitGroup
	for u := range an.protocols {
		if an.protocols[u] == nil {
			continue
		}
		wg.Add(1)
		go an.nodeLoop(topology.NodeID(u), &wg) //elink:allow godiscipline — the async runtime models free-running sensor nodes; par's fork-join layout cannot express them
	}

	for {
		an.awaitQuiescence()
		if !an.fireNextTimers() {
			break
		}
	}

	for _, b := range an.boxes {
		b.close()
	}
	wg.Wait()
	return an.now()
}

const initKey = "\x00init"

func (an *AsyncNetwork) nodeLoop(u topology.NodeID, wg *sync.WaitGroup) {
	defer wg.Done()
	p := an.protocols[u]
	ctx := &asyncCtx{net: an, id: u}
	for {
		e, ok := an.boxes[u].pop()
		if !ok {
			return
		}
		if e.isTimer {
			if e.key == initKey {
				p.Init(ctx)
			} else {
				p.OnTimer(ctx, e.key)
			}
		} else {
			p.OnMessage(ctx, e.msg)
		}
		if an.pending.Add(-1) == 0 {
			select {
			case an.quiet <- struct{}{}:
			default:
			}
		}
	}
}

// awaitQuiescence blocks until no message is queued or being handled.
// pending is incremented before any enqueue and decremented only after the
// handler (including all sends it performs) returns, so observing zero is
// a stable property.
func (an *AsyncNetwork) awaitQuiescence() {
	for an.pending.Load() != 0 {
		<-an.quiet
	}
}

// fireNextTimers pops the earliest timer deadline, advances the virtual
// clock and dispatches every timer with that deadline. It reports whether
// any timer fired.
func (an *AsyncNetwork) fireNextTimers() bool {
	an.timerMu.Lock()
	defer an.timerMu.Unlock()
	if len(an.timers) == 0 {
		return false
	}
	at := an.timers[0].at
	an.clockBits.Store(math.Float64bits(at))
	for len(an.timers) > 0 && an.timers[0].at == at {
		t := heap.Pop(&an.timers).(asyncTimer)
		an.pending.Add(1)
		an.boxes[t.node].push(asyncEvent{isTimer: true, key: t.key})
	}
	return true
}

type asyncCtx struct {
	net *AsyncNetwork
	id  topology.NodeID
}

func (c *asyncCtx) ID() topology.NodeID          { return c.id }
func (c *asyncCtx) Now() float64                 { return c.net.now() }
func (c *asyncCtx) Neighbors() []topology.NodeID { return c.net.Graph.Neighbors(c.id) }
func (c *asyncCtx) Rand() *rand.Rand             { return c.net.rngs[c.id] }

func (c *asyncCtx) Send(to topology.NodeID, kind string, payload any) {
	an := c.net
	if to != c.id {
		if !an.Graph.HasEdge(c.id, to) {
			panic(fmt.Sprintf("sim: async Send from %d to non-neighbour %d", c.id, to))
		}
		an.mu.Lock()
		an.counts[kind]++
		an.mu.Unlock()
		atomic.AddInt64(&an.perNode[c.id], 1)
	}
	an.pending.Add(1)
	an.boxes[to].push(asyncEvent{msg: Message{From: c.id, To: to, Kind: kind, Payload: payload, Hops: hopCost(c.id, to)}})
}

func (c *asyncCtx) Route(to topology.NodeID, kind string, payload any) {
	an := c.net
	hops := 0
	if to != c.id {
		// The routing lookup runs outside the accounting mutex: tables
		// are concurrency-safe and built at most once per destination, so
		// goroutines no longer serialize a BFS under the global lock.
		rt := an.routes.Table(to)
		hops = rt.Dist(c.id)
		if hops < 0 {
			panic(fmt.Sprintf("sim: async Route from %d to unreachable %d", c.id, to))
		}
		an.mu.Lock()
		an.counts[kind] += int64(hops)
		an.mu.Unlock()
		// Per-hop sender attribution, identical to Network.Route's.
		for cur := c.id; cur != to; cur = rt.Next(cur) {
			atomic.AddInt64(&an.perNode[cur], 1)
		}
	}
	an.pending.Add(1)
	an.boxes[to].push(asyncEvent{msg: Message{From: c.id, To: to, Kind: kind, Payload: payload, Hops: hops}})
}

func (c *asyncCtx) SetTimer(delay float64, key string) {
	an := c.net
	an.timerMu.Lock()
	heap.Push(&an.timers, asyncTimer{at: an.now() + delay, seq: an.tseq, node: c.id, key: key})
	an.tseq++
	an.timerMu.Unlock()
}

func hopCost(from, to topology.NodeID) int {
	if from == to {
		return 0
	}
	return 1
}
