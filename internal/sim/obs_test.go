package sim

import (
	"testing"

	"elink/internal/obs"
	"elink/internal/topology"
)

// pingPong relays a token along a path for `hops` total sends.
type pingPong struct{ budget *int }

func (p *pingPong) Init(ctx Context) {
	if ctx.ID() == 0 {
		ctx.Send(ctx.Neighbors()[0], "token", nil)
		*p.budget--
	}
}

func (p *pingPong) OnMessage(ctx Context, msg Message) {
	if *p.budget <= 0 {
		return
	}
	*p.budget--
	ctx.Send(msg.From, "token", nil)
}

func (p *pingPong) OnTimer(Context, string) {}

// TestInstrumentMirrorsCounters checks that the registry sees exactly
// the transmissions the network's own accounting charges, and that the
// tracer records per-round events whose message totals add back up.
func TestInstrumentMirrorsCounters(t *testing.T) {
	g := topology.NewGrid(1, 2)
	net := NewNetwork(g, nil, 1)
	reg := obs.NewRegistry()
	tr := obs.NewTracer(128)
	net.Instrument(reg, tr, "test")

	budget := 6
	net.SetAll(func(topology.NodeID) Protocol { return &pingPong{budget: &budget} })
	net.Run()

	want := net.Messages("token")
	if want == 0 {
		t.Fatal("protocol sent nothing")
	}
	if got := reg.Counter("sim_messages_total", "scope", "test", "kind", "token").Value(); got != want {
		t.Errorf("registry counter = %d, want %d", got, want)
	}

	events := tr.Last(0)
	if len(events) == 0 {
		t.Fatal("no trace events recorded")
	}
	var traced int64
	lastRound := -1
	for _, e := range events {
		if e.Kind != "round" {
			continue
		}
		if e.Round <= lastRound {
			t.Errorf("rounds not strictly increasing: %d after %d", e.Round, lastRound)
		}
		lastRound = e.Round
		// Round 0 may carry Init-time sends before any event has been
		// dispatched, so it can have messages but no active handler.
		if e.Active <= 0 && len(e.Msgs) == 0 {
			t.Errorf("round %d recorded neither activity nor messages", e.Round)
		}
		traced += e.Msgs["token"]
	}
	if traced != want {
		t.Errorf("per-round message sum = %d, want %d", traced, want)
	}
}

// TestStepUntilFlushesTrailingRound pins that a network driven purely
// via Inject/StepUntil (never Drain) still records the trailing round's
// trace event, so per-round message sums match the network's accounting.
func TestStepUntilFlushesTrailingRound(t *testing.T) {
	g := topology.NewGrid(1, 3)
	net := NewNetwork(g, nil, 1)
	reg := obs.NewRegistry()
	tr := obs.NewTracer(128)
	net.Instrument(reg, tr, "test")
	net.SetAll(func(u topology.NodeID) Protocol {
		return protoFunc{onMsg: func(ctx Context, m Message) {
			if ctx.ID() != 2 {
				ctx.Send(ctx.ID()+1, m.Kind, nil)
			}
		}}
	})
	net.Start()
	net.Inject(0, "q", nil)
	net.StepUntil(1) // injection (t=0) and first hop (t=1); t=2 stays queued

	var traced int64
	for _, e := range tr.Last(0) {
		if e.Kind == "round" {
			traced += e.Msgs["q"]
		}
	}
	if want := net.Messages("q"); traced != want {
		t.Errorf("per-round message sum after StepUntil = %d, want %d", traced, want)
	}
}

// TestInstrumentNoSinksIsNoOp pins that Instrument(nil, nil, ...) leaves
// the network un-instrumented (zero overhead on the hot path).
func TestInstrumentNoSinksIsNoOp(t *testing.T) {
	g := topology.NewGrid(1, 2)
	net := NewNetwork(g, nil, 1)
	net.Instrument(nil, nil, "test")
	if net.obs != nil {
		t.Error("nil sinks should not install an observer")
	}
}
