package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one directory of non-test Go files, parsed and fully
// type-checked. Analyzers receive it through Pass.
type Package struct {
	Dir        string // absolute directory
	ImportPath string // module path + relative dir
	Name       string // package clause name
	Files      []*ast.File
	Filenames  []string // parallel to Files, absolute
	Types      *types.Package
	Info       *types.Info
}

// loader walks a module root, parses every package and type-checks them
// in dependency order. Module-internal imports resolve to the loader's
// own checked packages; everything else (the standard library) falls
// back to the source importer so the tool works without compiled export
// data and without module dependencies.
type loader struct {
	fset    *token.FileSet
	root    string
	modpath string
	pkgs    map[string]*Package // by import path
	std     types.Importer
	checked map[string]bool
	stack   []string // for cycle reporting
}

// LoadModule parses and type-checks every package of the module rooted
// at root (the directory containing go.mod). Test files (_test.go) and
// testdata/vendor directories are skipped: the contracts the analyzers
// enforce protect production determinism, and tests legitimately poke at
// clocks and goroutines. Packages come back sorted by import path.
func LoadModule(fset *token.FileSet, root string) ([]*Package, string, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, "", err
	}
	modpath, err := modulePath(filepath.Join(absRoot, "go.mod"))
	if err != nil {
		return nil, "", err
	}
	ld := &loader{
		fset:    fset,
		root:    absRoot,
		modpath: modpath,
		pkgs:    make(map[string]*Package),
		std:     importer.ForCompiler(fset, "source", nil),
		checked: make(map[string]bool),
	}
	if err := ld.parseTree(); err != nil {
		return nil, "", err
	}
	paths := make([]string, 0, len(ld.pkgs))
	for p := range ld.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := ld.check(p); err != nil {
			return nil, "", err
		}
	}
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		out = append(out, ld.pkgs[p])
	}
	return out, modpath, nil
}

// modulePath extracts the module path from a go.mod without pulling in
// any module-file parser dependency.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			mod := strings.TrimSpace(rest)
			mod = strings.Trim(mod, `"`)
			if mod != "" {
				return mod, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// parseTree walks the module and parses every package directory.
func (ld *loader) parseTree() error {
	return filepath.WalkDir(ld.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != ld.root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		return ld.parseDir(path)
	})
}

// parseDir parses the non-test Go files of one directory into a Package
// (no-op for directories without Go files).
func (ld *loader) parseDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") ||
			strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		full := filepath.Join(dir, n)
		f, err := parser.ParseFile(ld.fset, full, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
		names = append(names, full)
	}
	if len(files) == 0 {
		return nil
	}
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil {
		return err
	}
	ip := ld.modpath
	if rel != "." {
		ip = ld.modpath + "/" + filepath.ToSlash(rel)
	}
	ld.pkgs[ip] = &Package{
		Dir:        dir,
		ImportPath: ip,
		Name:       files[0].Name.Name,
		Files:      files,
		Filenames:  names,
	}
	return nil
}

// check type-checks the package at path, first checking its
// module-internal dependencies (depth-first; import cycles are reported,
// not looped on).
func (ld *loader) check(path string) error {
	if ld.checked[path] {
		return nil
	}
	for _, on := range ld.stack {
		if on == path {
			return fmt.Errorf("lint: import cycle through %s", path)
		}
	}
	pkg := ld.pkgs[path]
	if pkg == nil {
		return fmt.Errorf("lint: unknown module package %s", path)
	}
	ld.stack = append(ld.stack, path)
	defer func() { ld.stack = ld.stack[:len(ld.stack)-1] }()
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if ip == ld.modpath || strings.HasPrefix(ip, ld.modpath+"/") {
				if err := ld.check(ip); err != nil {
					return err
				}
			}
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: ld,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, ld.fset, pkg.Files, info)
	if len(typeErrs) > 0 {
		return fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	ld.checked[path] = true
	return nil
}

// Import implements types.Importer: module-internal paths resolve to the
// loader's own packages, everything else goes to the source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == ld.modpath || strings.HasPrefix(path, ld.modpath+"/") {
		if err := ld.check(path); err != nil {
			return nil, err
		}
		return ld.pkgs[path].Types, nil
	}
	return ld.std.Import(path)
}
