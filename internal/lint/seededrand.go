package lint

import (
	"go/ast"
	"go/types"
)

// SeededRand enforces the randomness policy from rand.go: math/rand's
// global source is never used (every draw would be invisible,
// unseedable shared state that breaks run-to-run reproducibility), and
// generators are constructed only at the internal/detrand construction
// point so every *rand.Rand in the tree demonstrably descends from an
// explicitly threaded seed.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "math/rand global source forbidden; rand.New/NewSource only in internal/detrand",
	Run:  runSeededRand,
}

// Package-level math/rand functions that draw from (or reseed) the
// hidden global source. Calling any of them anywhere in the module is a
// violation — there is no allowlist.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"UintN": true, "Uint": true, "Uint32N": true, "Uint64N": true,
}

// Construction entry points, allowed only in RandConstructionPkgs.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

func runSeededRand(p *Pass) {
	allowedConstruction := contains(p.Cfg.RandConstructionPkgs, p.Pkg.ImportPath)
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			if imp.Name != nil && imp.Name.Name == "." && isRandPath(imp.Path.Value) {
				p.Reportf(imp.Pos(), "dot-import of math/rand hides the global source; import it qualified")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !isMathRandQualifier(p.Pkg, sel.X) {
				return true
			}
			name := sel.Sel.Name
			switch {
			case globalRandFuncs[name]:
				p.Reportf(call.Pos(), "rand.%s draws from math/rand's global source; thread an explicit seed and use detrand.New", name)
			case randConstructors[name] && !allowedConstruction:
				p.Reportf(call.Pos(), "rand.%s outside the construction point; build seeded generators with detrand.New", name)
			}
			return true
		})
	}
}

func isRandPath(quoted string) bool {
	return quoted == `"math/rand"` || quoted == `"math/rand/v2"`
}

// isMathRandQualifier reports whether e is an identifier naming the
// math/rand (or math/rand/v2) import of this file.
func isMathRandQualifier(pkg *Package, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	path := pn.Imported().Path()
	return path == "math/rand" || path == "math/rand/v2"
}
