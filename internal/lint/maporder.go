package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder keeps Go's randomized map iteration order out of
// deterministic state. Figures are pinned bitwise-identical across
// worker counts and reruns, and a single `for k := range m` feeding an
// ordered output — or a float accumulation, where addition order changes
// the low bits — breaks that silently and only sometimes. A map range in
// a deterministic package must either be one of the provably
// order-insensitive shapes below or iterate a sorted key slice; anything
// else needs an //elink:allow with a reason.
//
// Allowed shapes (the loop body as a whole must consist of them):
//
//   - k/v collection for later sorting:  keys = append(keys, k)
//   - integer accumulation:              n++  /  n += len(v)   (ints
//     only — float addition is order-sensitive in the last ulp)
//   - keyed writes:                      other[k] = expr   (call-free
//     expr; each key writes its own slot, so order cannot matter)
//   - keyed deletes:                     delete(other, k)
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map ranges in deterministic packages must be order-insensitive or iterate sorted keys",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	if !contains(p.Cfg.DeterministicPkgs, p.Pkg.ImportPath) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Pkg.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if mapRangeAllowed(p, rs) {
				return true
			}
			p.Reportf(rs.Pos(), "map iteration order reaches deterministic state; collect the keys, sort them, and range the slice (or annotate the order-insensitive intent)")
			return true
		})
	}
}

// mapRangeAllowed reports whether every statement of the loop body is
// one of the order-insensitive shapes.
func mapRangeAllowed(p *Pass, rs *ast.RangeStmt) bool {
	key := identOf(rs.Key)
	val := identOf(rs.Value)
	for _, st := range rs.Body.List {
		if !orderInsensitiveStmt(p, st, key, val) {
			return false
		}
	}
	return true
}

// identOf returns the declared ident of a range variable (nil for `_`
// or absent).
func identOf(e ast.Expr) *ast.Ident {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return id
}

func orderInsensitiveStmt(p *Pass, st ast.Stmt, key, val *ast.Ident) bool {
	switch s := st.(type) {
	case *ast.IncDecStmt:
		return isIntegerExpr(p, s.X)
	case *ast.ExprStmt:
		// delete(other, k)
		call, ok := s.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "delete" {
			return false
		}
		if _, isBuiltin := p.Pkg.Info.Uses[fn].(*types.Builtin); !isBuiltin {
			return false
		}
		return usesOnlyRangeVar(call.Args[1], key, val)
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		switch s.Tok.String() {
		case "+=", "-=":
			return isIntegerExpr(p, s.Lhs[0])
		case "=":
		default:
			return false
		}
		// keys = append(keys, k)
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" || len(call.Args) < 2 || call.Ellipsis.IsValid() {
				return false
			}
			if _, isBuiltin := p.Pkg.Info.Uses[fn].(*types.Builtin); !isBuiltin {
				return false
			}
			if !sameSimpleExpr(s.Lhs[0], call.Args[0]) {
				return false
			}
			for _, a := range call.Args[1:] {
				if !usesOnlyRangeVar(a, key, val) {
					return false
				}
			}
			return true
		}
		// other[k] = call-free expr
		if ix, ok := s.Lhs[0].(*ast.IndexExpr); ok {
			return usesOnlyRangeVar(ix.Index, key, val) && callFree(s.Rhs[0])
		}
		return false
	default:
		return false
	}
}

// usesOnlyRangeVar accepts exactly the key or value ident of the range —
// any derived expression (even topology.NodeID(k)) falls back to the
// sorted-keys requirement.
func usesOnlyRangeVar(e ast.Expr, key, val *ast.Ident) bool {
	if id, ok := e.(*ast.Ident); ok {
		return (key != nil && id.Name == key.Name) || (val != nil && id.Name == val.Name)
	}
	return false
}

func isIntegerExpr(p *Pass, e ast.Expr) bool {
	t := p.Pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// callFree reports whether e contains no function calls (conversions
// included — a conversion cannot observe iteration order, but telling a
// conversion from a call syntactically is not worth the subtlety).
func callFree(e ast.Expr) bool {
	free := true
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			free = false
			return false
		}
		return true
	})
	return free
}

// sameSimpleExpr compares two expressions limited to identifiers and
// selector chains — enough to check `x = append(x, ...)` self-append.
func sameSimpleExpr(a, b ast.Expr) bool {
	switch av := a.(type) {
	case *ast.Ident:
		bv, ok := b.(*ast.Ident)
		return ok && av.Name == bv.Name
	case *ast.SelectorExpr:
		bv, ok := b.(*ast.SelectorExpr)
		return ok && av.Sel.Name == bv.Sel.Name && sameSimpleExpr(av.X, bv.X)
	default:
		return false
	}
}
