package lint

import "go/ast"

// GoDiscipline confines bare go statements to the sanctioned concurrency
// layers. Everything else runs its parallelism through internal/par,
// whose fixed-grain chunk layouts and index-ordered joins are what make
// "bitwise identical at any worker count" (PR 4) a provable property —
// an ad-hoc goroutine in a figure path reintroduces scheduling
// nondeterminism that no golden test can pin down. Deliberate runtimes
// outside the allowlist (the async sensor-node loops in sim, the
// experiment runner's output pipeline) carry //elink:allow annotations.
var GoDiscipline = &Analyzer{
	Name: "godiscipline",
	Doc:  "bare go statements only in internal/par, internal/obs and cmd/elink-serve",
	Run:  runGoDiscipline,
}

func runGoDiscipline(p *Pass) {
	if contains(p.Cfg.GoroutinePkgs, p.Pkg.ImportPath) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(), "bare go statement outside the concurrency layers; use par.For/par.Chunks/par.Pool or move the code under internal/par")
			}
			return true
		})
	}
}
