// Package bad lets map iteration order leak into deterministic state.
package bad

// Sum accumulates floats in map order; addition order changes the last
// ulp, so two runs can disagree bitwise.
func Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

// Emit appends a derived value, so the output slice order follows the
// map's randomized iteration.
func Emit(m map[int]int, out []int) []int {
	for k, v := range m {
		out = append(out, k*v)
	}
	return out
}

// First publishes whichever key the runtime happens to visit first.
func First(m map[int]bool) int {
	for k := range m {
		if m[k] {
			return k
		}
	}
	return -1
}
