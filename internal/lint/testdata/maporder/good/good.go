// Package good iterates maps only in order-insensitive shapes or over
// sorted keys.
package good

import "sort"

// Keys is the canonical sorted-keys idiom: the in-loop append collects
// keys for sorting, so iteration order cannot matter.
func Keys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Count accumulates integers; integer addition commutes exactly.
func Count(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		n += len(vs)
	}
	return n
}

// Invert writes each key's own slot; no slot is visited twice, so order
// cannot matter.
func Invert(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// Prune deletes by key from another map.
func Prune(m map[string]bool, other map[string]int) {
	for k := range m {
		delete(other, k)
	}
}
