// Package good describes every metric it registers, including through a
// named constant.
package good

import "fixture/obs"

const histName = "request_latency_seconds"

// Register pairs every registration with a non-empty HELP in-package.
func Register(reg *obs.Registry) {
	reg.Help("documented_total", "Things counted by the fixture.")
	reg.Counter("documented_total", "kind", "fixture")
	reg.Help(histName, "Latency of fixture requests.")
	reg.Histogram(histName, []float64{0.1, 1})
}
