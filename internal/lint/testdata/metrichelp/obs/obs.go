// Package obs is a stub of internal/obs with the Registry surface the
// metrichelp rule matches on (methods of a Registry type in a package
// named obs).
package obs

// Registry mirrors the real registry's registration surface.
type Registry struct{}

// Counter stands in for the real handle lookup.
func (r *Registry) Counter(name string, labels ...string) *Counter { return nil }

// Gauge stands in for the real handle lookup.
func (r *Registry) Gauge(name string, labels ...string) *Gauge { return nil }

// GaugeFunc stands in for the real callback registration.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {}

// Histogram stands in for the real handle lookup.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram { return nil }

// Help stands in for the real HELP declaration.
func (r *Registry) Help(name, text string) {}

// Counter is an inert handle.
type Counter struct{}

// Gauge is an inert handle.
type Gauge struct{}

// Histogram is an inert handle.
type Histogram struct{}
