// Package bad registers metrics that scrape undocumented.
package bad

import "fixture/obs"

// Register forgets HELP lines three different ways.
func Register(reg *obs.Registry) {
	reg.Counter("undocumented_total")
	reg.Help("blank_gauge", "")
	reg.Gauge("blank_gauge")
	reg.Histogram(dynamicName(), nil)
}

func dynamicName() string { return "who_knows_seconds" }
