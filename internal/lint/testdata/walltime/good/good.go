// Package good manipulates time values without reading the clock.
package good

import "time"

// Format renders a timestamp someone else measured; no clock is read.
func Format(t time.Time) string { return t.Format(time.RFC3339) }

// Round works in simulated rounds, the only clock deterministic code sees.
func Round(r int) int { return r + 1 }
