// Package bad reads the wall clock from a deterministic package.
package bad

import "time"

// Stamp makes results depend on when the run happened.
func Stamp() time.Time { return time.Now() }

// Wait stalls a deterministic pipeline on real time.
func Wait(d time.Duration) {
	time.Sleep(d)
	_ = time.Since(time.Time{})
}
