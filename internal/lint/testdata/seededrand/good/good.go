// Package good draws only through an explicitly seeded generator.
package good

import "math/rand"

// Draw consumes a seeded generator built at the construction point;
// methods on *rand.Rand are fine anywhere.
func Draw(r *rand.Rand) int { return r.Intn(10) }
