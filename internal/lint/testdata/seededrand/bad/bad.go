// Package bad violates the explicit-seed randomness policy.
package bad

import "math/rand"

// Draw leans on the hidden global source and builds an ad-hoc generator.
func Draw() int {
	x := rand.Intn(10)
	_ = rand.Float64()
	rand.Shuffle(3, func(i, j int) {})
	r := rand.New(rand.NewSource(1))
	return x + r.Intn(3)
}
