// Package construct stands in for internal/detrand: the one place the
// seededrand rule lets generators be built.
package construct

import "math/rand"

// New is the fixture's construction point.
func New(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
