// Package allowed stands in for internal/par: a sanctioned concurrency
// layer that may launch goroutines directly.
package allowed

import "sync"

// Fan runs fn n times concurrently.
func Fan(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}
