// Package good does its work serially and leaves parallelism to the
// sanctioned layers.
package good

// Run executes the work inline.
func Run(work func()) { work() }
