// Package bad launches ad-hoc goroutines outside the concurrency layers.
package bad

// Fire forgets the discipline and forks directly.
func Fire(work func()) {
	go work()
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
