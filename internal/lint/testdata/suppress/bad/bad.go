// Package bad exercises the suppression syntax: a used annotation, an
// unused one, a malformed one and a typo'd rule name.
package bad

import "time"

// Stamp is a deliberate wall-clock read, excused in place.
func Stamp() time.Time {
	return time.Now() //elink:allow walltime — fixture: deliberate wall-clock read
}

// Above-the-line placement also counts.
//
//elink:allow walltime — fixture: annotation on the line above
func Later() time.Time { return time.Now() }

//elink:allow godiscipline — fixture: nothing here launches a goroutine anymore
func idle() {}

//elink:allow walltime
func malformed() {}

//elink:allow wallclock — the rule is called walltime
func typo() {}
