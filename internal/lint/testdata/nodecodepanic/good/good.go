// Package good returns errors for hostile bytes; a local function named
// panic is not the builtin and must not trip the rule.
package good

import "errors"

// Decode reports truncation as an error the recovery loop can handle.
func Decode(b []byte) (byte, error) {
	if len(b) == 0 {
		return 0, errors.New("empty frame")
	}
	return b[0], nil
}

// report shadows the builtin's name locally.
func report(msg string) {}

// Note logs through the shadowing function.
func Note() {
	panic := report
	panic("not the builtin")
}
