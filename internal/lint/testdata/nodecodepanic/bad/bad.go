// Package bad panics on hostile bytes from inside a no-panic package.
package bad

// Decode crashes the recovery path instead of returning an error.
func Decode(b []byte) byte {
	if len(b) == 0 {
		panic("empty frame")
	}
	return b[0]
}
