// Package lint is a small analyzer framework over the standard library's
// go/ast, go/parser and go/types — no module dependencies — that
// enforces the repository's cross-cutting contracts at lint time instead
// of leaving them to golden tests after the fact:
//
//   - seededrand: randomness flows from explicit seeds through
//     internal/detrand; math/rand's global source is never touched.
//   - walltime: the deterministic packages (linalg, cluster, update,
//     sim, query, stream) never read the wall clock.
//   - godiscipline: goroutines are launched only inside the sanctioned
//     concurrency layers (internal/par, internal/obs, cmd/elink-serve).
//   - maporder: map iteration order never leaks into deterministic
//     state, so figures stay bitwise identical at any worker count.
//   - metrichelp: every obs metric registration has a non-empty HELP
//     description in the same package.
//   - nodecodepanic: internal/persist never panics — decode and I/O
//     paths return errors, even on hostile bytes.
//
// Deliberate violations are annotated in place with
//
//	//elink:allow <rule> — <reason>
//
// on the offending line or the line above it. Suppressions are counted
// and reported in the driver's summary so they stay visible, and an
// annotation that stops matching any finding is itself a finding — dead
// suppressions cannot accumulate.
package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
)

// Analyzer is one named rule. Run inspects a single type-checked package
// and reports findings through the pass.
type Analyzer struct {
	Name string
	Doc  string // one-line contract statement, shown by -help
	Run  func(*Pass)
}

// Pass hands one package to one analyzer.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	Cfg  *Config

	rule string
	out  *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Diagnostic{
		Pos:  p.Fset.Position(pos),
		Rule: p.rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, position-accurate to the offending token.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// Config scopes the rules to package sets by import path, so the same
// analyzers run against the real module and against fixture modules in
// tests. DefaultConfig pins the production contracts.
type Config struct {
	// DeterministicPkgs must produce bitwise-identical outputs for
	// identical inputs and seeds; walltime and maporder apply here.
	DeterministicPkgs []string
	// GoroutinePkgs may launch goroutines with bare go statements;
	// godiscipline flags everything else.
	GoroutinePkgs []string
	// RandConstructionPkgs may call rand.New/rand.NewSource; seededrand
	// flags construction anywhere else.
	RandConstructionPkgs []string
	// NoPanicPkgs must return errors instead of panicking (decode and
	// I/O paths); nodecodepanic applies here.
	NoPanicPkgs []string
}

// DefaultConfig is the contract map for module elink.
func DefaultConfig() *Config {
	return &Config{
		DeterministicPkgs: []string{
			"elink/internal/linalg",
			"elink/internal/cluster",
			"elink/internal/update",
			"elink/internal/sim",
			"elink/internal/query",
			"elink/internal/stream",
		},
		GoroutinePkgs: []string{
			"elink/internal/par",
			"elink/internal/obs",
			"elink/cmd/elink-serve",
		},
		RandConstructionPkgs: []string{
			"elink/internal/detrand",
		},
		NoPanicPkgs: []string{
			"elink/internal/persist",
		},
	}
}

func contains(set []string, path string) bool {
	for _, s := range set {
		if s == path {
			return true
		}
	}
	return false
}

// Analyzers returns the full rule set in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		SeededRand,
		WallTime,
		GoDiscipline,
		MapOrder,
		MetricHelp,
		NoDecodePanic,
	}
}

// Result is one multichecker run: the surviving findings plus the
// suppression ledger.
type Result struct {
	Diags       []Diagnostic   // unsuppressed findings, sorted by position
	Suppressed  map[string]int // rule -> suppressed finding count
	Packages    int
	suppression []*suppression
}

// SuppressionTotal sums the suppression ledger.
func (r *Result) SuppressionTotal() int {
	n := 0
	for _, c := range r.Suppressed {
		n += c
	}
	return n
}

// Run loads the module rooted at root and applies the analyzers under
// cfg. Findings carrying a matching //elink:allow annotation are moved
// to the suppression ledger; unused and malformed annotations become
// findings themselves.
func Run(root string, cfg *Config, analyzers []*Analyzer) (*Result, error) {
	fset := token.NewFileSet()
	pkgs, _, err := LoadModule(fset, root)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	var sups []*suppression
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{Fset: fset, Pkg: pkg, Cfg: cfg, rule: a.Name, out: &diags})
		}
		s, bad := collectSuppressions(fset, pkg)
		sups = append(sups, s...)
		diags = append(diags, bad...)
	}
	res := &Result{
		Suppressed:  make(map[string]int),
		Packages:    len(pkgs),
		suppression: sups,
	}
	res.Diags = applySuppressions(diags, sups, res.Suppressed)
	res.Diags = append(res.Diags, unusedSuppressions(sups, analyzers)...)
	sort.Slice(res.Diags, func(i, j int) bool {
		a, b := res.Diags[i], res.Diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return res, nil
}

// Render formats d with its filename relative to root (falling back to
// the absolute path outside it).
func Render(d Diagnostic, root string) string {
	name := d.Pos.Filename
	if rel, err := filepath.Rel(root, name); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		name = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d:%d: [%s] %s", name, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}
