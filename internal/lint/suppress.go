package lint

import (
	"go/token"
	"strings"
)

// Suppression syntax — exactly one form, kept greppable:
//
//	//elink:allow <rule> — <reason>
//
// The annotation suppresses findings of <rule> on its own line (trailing
// comment) or on the line directly below (comment above the statement).
// The reason is mandatory; an em dash or a double hyphen separates it
// from the rule name. ASCII "--" is accepted so the syntax can be typed
// on any keyboard.
const allowPrefix = "//elink:allow"

type suppression struct {
	pos    token.Position
	rule   string
	reason string
	used   int
}

// collectSuppressions scans a package's comments for //elink:allow
// annotations. Malformed annotations (missing rule or missing reason)
// come back as findings — a suppression that doesn't parse must not
// silently suppress nothing.
func collectSuppressions(fset *token.FileSet, pkg *Package) ([]*suppression, []Diagnostic) {
	var sups []*suppression
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				rule, reason, ok := splitAllow(rest)
				if !ok {
					bad = append(bad, Diagnostic{
						Pos:  pos,
						Rule: "suppression",
						Msg:  `malformed annotation; want //elink:allow <rule> — <reason>`,
					})
					continue
				}
				sups = append(sups, &suppression{pos: pos, rule: rule, reason: reason})
			}
		}
	}
	return sups, bad
}

// splitAllow parses " <rule> — <reason>" (or "-- <reason>").
func splitAllow(rest string) (rule, reason string, ok bool) {
	rest = strings.TrimSpace(rest)
	var sep string
	switch {
	case strings.Contains(rest, "—"):
		sep = "—"
	case strings.Contains(rest, "--"):
		sep = "--"
	default:
		return "", "", false
	}
	rulePart, reasonPart, _ := strings.Cut(rest, sep)
	rule = strings.TrimSpace(rulePart)
	reason = strings.TrimSpace(reasonPart)
	if rule == "" || strings.ContainsAny(rule, " \t") || reason == "" {
		return "", "", false
	}
	return rule, reason, true
}

// applySuppressions filters diags through the annotations, crediting
// each match to the ledger. A suppression covers findings of its rule in
// the same file on its own line or the next line.
func applySuppressions(diags []Diagnostic, sups []*suppression, ledger map[string]int) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if s := matching(sups, d); s != nil {
			s.used++
			ledger[d.Rule]++
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func matching(sups []*suppression, d Diagnostic) *suppression {
	for _, s := range sups {
		if s.rule != d.Rule || s.pos.Filename != d.Pos.Filename {
			continue
		}
		if s.pos.Line == d.Pos.Line || s.pos.Line == d.Pos.Line-1 {
			return s
		}
	}
	return nil
}

// unusedSuppressions reports annotations that matched nothing, but only
// for rules that actually ran — a filtered -rules invocation must not
// flag the other rules' annotations as dead.
func unusedSuppressions(sups []*suppression, analyzers []*Analyzer) []Diagnostic {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, s := range sups {
		if s.used > 0 {
			continue
		}
		if !known[s.rule] {
			out = append(out, Diagnostic{
				Pos:  s.pos,
				Rule: "suppression",
				Msg:  "unknown rule " + s.rule + " in suppression",
			})
			continue
		}
		if !ran[s.rule] {
			continue
		}
		out = append(out, Diagnostic{
			Pos:  s.pos,
			Rule: "suppression",
			Msg:  "unused suppression for rule " + s.rule + "; the finding it excused is gone — delete the annotation",
		})
	}
	return out
}
