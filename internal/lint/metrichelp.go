package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// MetricHelp keeps /metrics self-describing: every counter, gauge and
// histogram registered on an obs.Registry must have a non-empty HELP
// description established by a reg.Help call in the same package as the
// registration. The obs registry deliberately splits Help from the
// hot-path handle lookups, which means nothing at runtime fails when a
// HELP line is forgotten — the family silently scrapes undocumented,
// which is exactly the kind of contract only a static pass can hold.
var MetricHelp = &Analyzer{
	Name: "metrichelp",
	Doc:  "every obs metric registration needs a non-empty reg.Help in the same package",
	Run:  runMetricHelp,
}

var registryRegistrations = map[string]bool{
	"Counter": true, "Gauge": true, "GaugeFunc": true, "Histogram": true,
}

func runMetricHelp(p *Pass) {
	described := make(map[string]bool)       // metric name -> has non-empty HELP
	registered := make(map[string]token.Pos) // metric name -> earliest registration
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isRegistryMethod(p.Pkg, sel) {
				return true
			}
			switch sel.Sel.Name {
			case "Help":
				if len(call.Args) != 2 {
					return true
				}
				name, nameConst := constString(p.Pkg, call.Args[0])
				text, textConst := constString(p.Pkg, call.Args[1])
				if textConst && text == "" {
					p.Reportf(call.Args[1].Pos(), "empty HELP text for metric %q", name)
					return true
				}
				if nameConst {
					described[name] = true
				}
			case "Counter", "Gauge", "GaugeFunc", "Histogram":
				if len(call.Args) < 1 {
					return true
				}
				name, ok := constString(p.Pkg, call.Args[0])
				if !ok {
					p.Reportf(call.Args[0].Pos(), "metric name is not a constant string; HELP coverage cannot be checked")
					return true
				}
				if pos, seen := registered[name]; !seen || call.Pos() < pos {
					registered[name] = call.Pos()
				}
			}
			return true
		})
	}
	names := make([]string, 0, len(registered))
	for name := range registered {
		if !described[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		p.Reportf(registered[name], "metric %q registered without a HELP description; add reg.Help(%q, ...) in this package", name, name)
	}
}

// isRegistryMethod reports whether sel selects one of the Registry
// methods of a package named obs (the real internal/obs, or a fixture
// stub in tests).
func isRegistryMethod(pkg *Package, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Help" && !registryRegistrations[sel.Sel.Name] {
		return false
	}
	s := pkg.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "obs" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// constString evaluates e as a constant string (literal or named
// constant), reporting whether it is one.
func constString(pkg *Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
