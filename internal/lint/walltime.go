package lint

import (
	"go/ast"
	"go/types"
)

// WallTime keeps the wall clock out of the deterministic packages. The
// paper's reproducibility claim — identical inputs plus identical seeds
// reproduce identical clusterings and message counts — dies the moment a
// figure path branches on time.Now; simulated time is the only clock the
// deterministic core may observe. Timing for telemetry lives in the
// instrumented layers (obs, par, persist, the daemons), which are not in
// DeterministicPkgs; the few wall-clock reads inside stream that feed
// latency metrics carry //elink:allow annotations so they stay visible.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "no wall-clock reads (time.Now/Since/...) in deterministic packages",
	Run:  runWallTime,
}

var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true, "Sleep": true,
}

func runWallTime(p *Pass) {
	if !contains(p.Cfg.DeterministicPkgs, p.Pkg.ImportPath) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !wallClockFuncs[sel.Sel.Name] || !isTimeQualifier(p.Pkg, sel.X) {
				return true
			}
			p.Reportf(call.Pos(), "time.%s reads the wall clock in a deterministic package; use simulated rounds or move the timing to an instrumented layer", sel.Sel.Name)
			return true
		})
	}
}

func isTimeQualifier(pkg *Package, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "time"
}
