package lint

import (
	"go/ast"
	"go/types"
)

// NoDecodePanic enforces the internal/persist contract proven by its
// fuzz and corruption tests: hostile bytes — truncated WAL tails,
// bit-flipped snapshots, crafted length prefixes — surface as errors,
// never as panics, because recovery code runs exactly when the process
// is least able to afford a crash loop. The rule covers the whole
// package: persist is nothing but codec and I/O paths, so any reachable
// panic is a decode-path panic.
var NoDecodePanic = &Analyzer{
	Name: "nodecodepanic",
	Doc:  "no panic calls in internal/persist; decode and I/O paths return errors",
	Run:  runNoDecodePanic,
}

func runNoDecodePanic(p *Pass) {
	if !contains(p.Cfg.NoPanicPkgs, p.Pkg.ImportPath) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := p.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true // a local function shadowing the name
			}
			p.Reportf(call.Pos(), "panic in a no-panic package; decode and I/O paths must return errors (hostile bytes reach this code during recovery)")
			return true
		})
	}
}
