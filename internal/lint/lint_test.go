package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden diagnostic files from current analyzer output")

// fixtureConfig maps the contract package sets onto the fixture module
// layout shared by every testdata tree: bad/ and good/ are the checked
// packages, allowed/ and construct/ are the sanctioned ones.
func fixtureConfig() *Config {
	return &Config{
		DeterministicPkgs:    []string{"fixture/bad", "fixture/good"},
		GoroutinePkgs:        []string{"fixture/allowed"},
		RandConstructionPkgs: []string{"fixture/construct"},
		NoPanicPkgs:          []string{"fixture/bad", "fixture/good"},
	}
}

// TestFixtures runs each rule against its testdata tree and compares
// the rendered diagnostics with the committed golden file. Every bad
// package must produce findings (the non-zero-exit contract) and every
// good package must stay silent — the goldens pin both.
func TestFixtures(t *testing.T) {
	cases := []struct {
		name      string
		analyzers []*Analyzer
	}{
		{"seededrand", []*Analyzer{SeededRand}},
		{"walltime", []*Analyzer{WallTime}},
		{"godiscipline", []*Analyzer{GoDiscipline}},
		{"maporder", []*Analyzer{MapOrder}},
		{"metrichelp", []*Analyzer{MetricHelp}},
		{"nodecodepanic", []*Analyzer{NoDecodePanic}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runFixture(t, tc.name, tc.analyzers)
			if len(got.Diags) == 0 {
				t.Fatalf("bad fixture produced no findings; the multichecker would exit 0 on it")
			}
			for _, d := range got.Diags {
				if strings.Contains(d.Pos.Filename, string(filepath.Separator)+"good"+string(filepath.Separator)) {
					t.Errorf("finding in a good fixture package: %s", Render(d, fixtureRoot(t, tc.name)))
				}
			}
			compareGolden(t, tc.name, got)
		})
	}
}

// TestSuppressions pins the //elink:allow life cycle: a used annotation
// (same line and line-above placements) moves the finding to the
// ledger, while unused, malformed and typo'd annotations are findings.
func TestSuppressions(t *testing.T) {
	got := runFixture(t, "suppress", []*Analyzer{WallTime, GoDiscipline})
	if got.Suppressed["walltime"] != 2 {
		t.Errorf("walltime suppressions = %d, want 2 (trailing and line-above)", got.Suppressed["walltime"])
	}
	if got.SuppressionTotal() != 2 {
		t.Errorf("SuppressionTotal = %d, want 2", got.SuppressionTotal())
	}
	compareGolden(t, "suppress", got)
}

// TestSelfHost is the gate the whole PR rides on: the full multichecker
// over the real module must come back clean, so a contract violation
// anywhere in the tree fails `go test ./internal/lint` as well as
// `make lint`.
func TestSelfHost(t *testing.T) {
	root := filepath.Join("..", "..")
	res, err := Run(root, DefaultConfig(), Analyzers())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	absRoot, _ := filepath.Abs(root)
	for _, d := range res.Diags {
		t.Errorf("%s", Render(d, absRoot))
	}
	if len(res.Diags) > 0 {
		t.Fatalf("%d findings on the real module; the tree must self-host clean", len(res.Diags))
	}
	t.Logf("self-host: %d packages clean, %d suppressions", res.Packages, res.SuppressionTotal())
}

func fixtureRoot(t *testing.T, name string) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func runFixture(t *testing.T, name string, analyzers []*Analyzer) *Result {
	t.Helper()
	res, err := Run(filepath.Join("testdata", name), fixtureConfig(), analyzers)
	if err != nil {
		t.Fatalf("Run(%s): %v", name, err)
	}
	return res
}

func compareGolden(t *testing.T, name string, res *Result) {
	t.Helper()
	var b strings.Builder
	for _, d := range res.Diags {
		b.WriteString(Render(d, fixtureRoot(t, name)))
		b.WriteByte('\n')
	}
	got := b.String()
	goldenPath := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}
