package topology

import (
	"sync"
	"sync/atomic"
)

// DefaultRouteTables bounds the graph-attached routing cache: at most this
// many per-root tables are kept, evicting the least recently used. Each
// table costs ~16 bytes per node, so the default caps the cache at
// 256·16·N bytes (~10 MB on the paper's 2500-node deployments).
const DefaultRouteTables = 256

// Routes is a concurrency-safe shortest-hop routing table over an
// immutable graph. For each requested root it lazily runs one BFS,
// storing the hop-distance and deterministic-parent arrays; every later
// Dist/NextHop lookup is O(1) and Path is O(path length). Tables are
// kept under an LRU bound so very large deployments cannot accumulate
// O(N²) routing state.
//
// Determinism: Path(u, v) is byte-identical to Graph.ShortestPath's
// smallest-id tie-breaking — the parent of u in the table rooted at v is
// u's smallest-id neighbour one hop closer to v — so message counts and
// per-hop attribution are unchanged by routing through the cache.
//
// Concurrency: the table registry is guarded by an RWMutex held only for
// map access; BFS builds run outside it (at most once per root, via the
// table's sync.Once), so concurrent async nodes never serialize on a
// build and built tables are immutable shared state.
type Routes struct {
	g     *Graph
	max   int
	clock atomic.Uint64 // recency stamps for LRU eviction

	mu     sync.RWMutex
	tables map[NodeID]*RouteTable
}

// NewRoutes builds an empty routing cache over g holding at most
// maxTables per-root tables (maxTables <= 0 means DefaultRouteTables).
// The cache snapshots g's topology lazily: it must not be used across
// AddEdge calls (graphs in this repository are immutable once built; the
// graph-attached instance from Graph.Routes is dropped on AddEdge).
func NewRoutes(g *Graph, maxTables int) *Routes {
	if maxTables <= 0 {
		maxTables = DefaultRouteTables
	}
	return &Routes{g: g, max: maxTables, tables: make(map[NodeID]*RouteTable)}
}

// RouteTable is the BFS field of one root: hop distances from every node
// to the root and each node's deterministic next hop toward it. A built
// table is immutable, so holders may keep using it after eviction.
type RouteTable struct {
	g    *Graph
	root NodeID
	used atomic.Uint64
	once sync.Once

	dist   []int    // hops to root; -1 when unreachable
	parent []NodeID // next hop toward root; root at the root, -1 unreachable
}

func (t *RouteTable) build() {
	g, root := t.g, t.root
	dist := g.bfs(root)
	parent := make([]NodeID, g.N())
	for u := range parent {
		parent[u] = -1
	}
	parent[root] = root
	for u := range parent {
		d := dist[u]
		if d <= 0 {
			continue // root or unreachable
		}
		// Neighbour lists are sorted, so the first neighbour one hop
		// closer is the smallest id — ShortestPath's exact tie-break.
		for _, w := range g.Adj[u] {
			if dist[w] == d-1 {
				parent[u] = w
				break
			}
		}
	}
	t.dist, t.parent = dist, parent
}

// Root returns the table's BFS root (the routing destination it serves).
func (t *RouteTable) Root() NodeID { return t.root }

// Dist returns the hop distance from u to the root (-1 if unreachable).
func (t *RouteTable) Dist(u NodeID) int { return t.dist[u] }

// Next returns u's next hop toward the root: the smallest-id neighbour
// one hop closer. It returns the root at the root and -1 when u cannot
// reach it.
func (t *RouteTable) Next(u NodeID) NodeID { return t.parent[u] }

// Distances returns the full hop-distance array from the root. The
// caller must not modify it.
func (t *RouteTable) Distances() []int { return t.dist }

// Table returns the built routing table rooted at root, constructing it
// on first use. The BFS runs outside the registry lock; concurrent
// callers for the same root share one build.
func (r *Routes) Table(root NodeID) *RouteTable {
	r.mu.RLock()
	t := r.tables[root]
	r.mu.RUnlock()
	if t == nil {
		t = r.insert(root)
	}
	t.used.Store(r.clock.Add(1))
	t.once.Do(t.build)
	return t
}

// cached returns the table for root only if it already exists.
func (r *Routes) cached(root NodeID) *RouteTable {
	r.mu.RLock()
	t := r.tables[root]
	r.mu.RUnlock()
	if t != nil {
		t.used.Store(r.clock.Add(1))
		t.once.Do(t.build)
	}
	return t
}

// insert registers a table entry for root, evicting the least recently
// used entry when the bound is exceeded. Eviction only unlinks the table
// from the registry; existing holders keep a valid immutable table.
func (r *Routes) insert(root NodeID) *RouteTable {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t := r.tables[root]; t != nil {
		return t
	}
	t := &RouteTable{g: r.g, root: root}
	r.tables[root] = t
	for len(r.tables) > r.max {
		var victim NodeID = -1
		oldest := ^uint64(0)
		for id, cand := range r.tables {
			if id == root {
				continue
			}
			if u := cand.used.Load(); u < oldest {
				victim, oldest = id, u
			}
		}
		if victim < 0 {
			break
		}
		delete(r.tables, victim)
	}
	return t
}

// Cached returns how many per-root tables the registry currently holds.
func (r *Routes) Cached() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tables)
}

// Dist returns the shortest hop count between u and v (-1 when
// disconnected). It prefers whichever endpoint already has a table
// (distances are symmetric on an undirected graph) and otherwise builds
// the table rooted at v, the endpoint routed workloads repeat.
func (r *Routes) Dist(u, v NodeID) int {
	if u == v {
		return 0
	}
	if t := r.cached(v); t != nil {
		return t.Dist(u)
	}
	if t := r.cached(u); t != nil {
		return t.Dist(v)
	}
	return r.Table(v).Dist(u)
}

// Path returns the shortest hop path from u to v inclusive, or nil when
// disconnected, with ties broken toward smaller node ids — byte-identical
// to Graph.ShortestPath.
func (r *Routes) Path(u, v NodeID) []NodeID {
	t := r.Table(v)
	d := t.Dist(u)
	if d < 0 {
		return nil
	}
	path := make([]NodeID, 0, d+1)
	for cur := u; ; cur = t.Next(cur) {
		path = append(path, cur)
		if cur == v {
			return path
		}
	}
}

// NextHop returns u's first hop on the shortest path toward v (u itself
// when u == v, -1 when v is unreachable).
func (r *Routes) NextHop(u, v NodeID) NodeID {
	if u == v {
		return u
	}
	return r.Table(v).Next(u)
}

// Distances returns hop distances from root to every node (-1 when
// unreachable). The caller must not modify the returned slice.
func (r *Routes) Distances(root NodeID) []int {
	return r.Table(root).Distances()
}
