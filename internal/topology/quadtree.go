package topology

import (
	"math"
)

// QTCell is one occupied cell of the quadtree decomposition. The node
// closest to the cell centroid is elected leader (paper footnote 1);
// sentinel set S_l is the set of level-l cell leaders.
type QTCell struct {
	ID       int
	Level    int
	Parent   int   // cell id of the enclosing cell, -1 for the root
	Children []int // cell ids of occupied child cells
	Center   Point
	Leader   NodeID
	Nodes    []NodeID // nodes whose position falls in this cell
}

// Quadtree is the recursive spatial decomposition driving ELink's sentinel
// scheduling. Cells are subdivided until they hold at most one node, so
// every node leads some cell and Σ_l |S_l| covers the whole network.
type Quadtree struct {
	Cells   []QTCell
	ByLevel [][]int // cell ids per level
	Depth   int     // deepest level with an occupied cell
}

// maxQuadtreeDepth bounds subdivision when several nodes share a position.
const maxQuadtreeDepth = 32

// BuildQuadtree decomposes g's bounding square. The box is padded to a
// square so cells stay square at every level.
func BuildQuadtree(g *Graph) *Quadtree {
	min, max := g.BoundingBox()
	side := math.Max(max.X-min.X, max.Y-min.Y)
	if side == 0 {
		side = 1
	}
	side *= 1.0000001 // keep max-coordinate nodes strictly inside
	qt := &Quadtree{}
	all := make([]NodeID, g.N())
	for i := range all {
		all[i] = NodeID(i)
	}
	qt.subdivide(g, all, min.X, min.Y, side, 0, -1)
	for _, c := range qt.Cells {
		if c.Level > qt.Depth {
			qt.Depth = c.Level
		}
	}
	qt.ByLevel = make([][]int, qt.Depth+1)
	for _, c := range qt.Cells {
		qt.ByLevel[c.Level] = append(qt.ByLevel[c.Level], c.ID)
	}
	return qt
}

func (qt *Quadtree) subdivide(g *Graph, nodes []NodeID, x0, y0, side float64, level, parent int) int {
	center := Point{X: x0 + side/2, Y: y0 + side/2}
	id := len(qt.Cells)
	qt.Cells = append(qt.Cells, QTCell{
		ID:     id,
		Level:  level,
		Parent: parent,
		Center: center,
		Leader: electLeader(g, nodes, center),
		Nodes:  append([]NodeID(nil), nodes...),
	})
	if len(nodes) <= 1 || level >= maxQuadtreeDepth {
		return id
	}
	half := side / 2
	quads := [4][2]float64{
		{x0, y0}, {x0 + half, y0}, {x0, y0 + half}, {x0 + half, y0 + half},
	}
	for _, q := range quads {
		var sub []NodeID
		for _, u := range nodes {
			p := g.Pos[u]
			if p.X >= q[0] && p.X < q[0]+half && p.Y >= q[1] && p.Y < q[1]+half {
				sub = append(sub, u)
			}
		}
		if len(sub) == 0 {
			continue
		}
		child := qt.subdivide(g, sub, q[0], q[1], half, level+1, id)
		qt.Cells[id].Children = append(qt.Cells[id].Children, child)
	}
	return id
}

// electLeader picks the node closest to the centroid, breaking ties by id.
func electLeader(g *Graph, nodes []NodeID, center Point) NodeID {
	best := NodeID(-1)
	bestD := math.Inf(1)
	for _, u := range nodes {
		d := g.Pos[u].Dist(center)
		if d < bestD || (d == bestD && u < best) {
			best, bestD = u, d
		}
	}
	return best
}

// Sentinels returns the sentinel set S_l: the leaders of the occupied
// cells at the given level, deduplicated (a node leading several sibling
// cells — impossible — or appearing again because it already led a
// shallower cell is kept; ELink's clustered-guard makes repeats no-ops).
func (qt *Quadtree) Sentinels(level int) []NodeID {
	if level < 0 || level > qt.Depth {
		return nil
	}
	ids := qt.ByLevel[level]
	out := make([]NodeID, 0, len(ids))
	seen := make(map[NodeID]bool, len(ids))
	for _, cid := range ids {
		l := qt.Cells[cid].Leader
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

// SentinelLevel returns, for every node, the shallowest quadtree level at
// which it leads a cell. Subdivision down to singleton cells guarantees
// every node leads at least one cell.
func (qt *Quadtree) SentinelLevel() []int {
	n := 0
	for _, c := range qt.Cells {
		for _, u := range c.Nodes {
			if int(u) >= n {
				n = int(u) + 1
			}
		}
	}
	levels := make([]int, n)
	for i := range levels {
		levels[i] = -1
	}
	for _, c := range qt.Cells {
		if c.Leader >= 0 && (levels[c.Leader] < 0 || c.Level < levels[c.Leader]) {
			levels[c.Leader] = c.Level
		}
	}
	return levels
}

// CellOf returns the deepest cell at the given level containing node u,
// or -1 when the node lies outside every level-l cell (cannot happen for
// levels <= Depth on the cells that exist along u's path).
func (qt *Quadtree) CellOf(u NodeID, level int) int {
	cur := 0 // root
	if qt.Cells[0].Level == level {
		return 0
	}
	for {
		found := -1
		for _, ch := range qt.Cells[cur].Children {
			for _, v := range qt.Cells[ch].Nodes {
				if v == u {
					found = ch
					break
				}
			}
			if found >= 0 {
				break
			}
		}
		if found < 0 {
			return -1
		}
		if qt.Cells[found].Level == level {
			return found
		}
		cur = found
	}
}

// ImplicitSchedule computes the timer offsets of the implicit signalling
// technique (paper §4): kappa = (1+gamma)·sqrt(N/2), the expansion budget
// t_l = kappa·(1 + 1/2 + … + 1/2^l), and the start time of level l,
// start_l = Σ_{j<l} t_j. It returns start times and budgets indexed by
// level for levels 0..Depth.
func (qt *Quadtree) ImplicitSchedule(n int, gamma float64) (starts, budgets []float64) {
	kappa := (1 + gamma) * math.Sqrt(float64(n)/2)
	budgets = make([]float64, qt.Depth+1)
	starts = make([]float64, qt.Depth+1)
	sum := 0.0
	acc := 0.0
	for l := 0; l <= qt.Depth; l++ {
		sum += 1 / math.Pow(2, float64(l))
		budgets[l] = kappa * sum
		starts[l] = acc
		acc += budgets[l]
	}
	return starts, budgets
}
