package topology

import (
	"math/rand"
	"sync"
	"testing"
)

// refHopDistances is an independent reference BFS (not the Routes code
// under test) matching the documented semantics of HopDistances.
func refHopDistances(g *Graph, src NodeID) []int {
	d := make([]int, g.N())
	for i := range d {
		d[i] = -1
	}
	d[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Adj[u] {
			if d[v] < 0 {
				d[v] = d[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return d
}

// refShortestPath replicates the original Graph.ShortestPath walk:
// distances toward the destination, smallest-id tie-breaking.
func refShortestPath(g *Graph, u, v NodeID) []NodeID {
	d := refHopDistances(g, v)
	if d[u] < 0 {
		return nil
	}
	path := []NodeID{u}
	cur := u
	for cur != v {
		var next NodeID = -1
		for _, w := range g.Adj[cur] {
			if d[w] == d[cur]-1 {
				next = w
				break
			}
		}
		if next < 0 {
			return nil
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// randomGraph builds a random graph over n nodes with edge probability p.
// It is intentionally NOT stitched, so it can be disconnected.
func randomGraph(n int, p float64, rng *rand.Rand) *Graph {
	pos := make([]Point, n)
	for i := range pos {
		pos[i] = Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
	}
	g := NewGraph(pos)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return g
}

func pathsEqual(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRoutesMatchReference checks Routes.Dist/Path/NextHop against the
// reference BFS on random graphs, including disconnected ones, for every
// node pair — the exact-equivalence contract the simulator's accounting
// rests on.
func TestRoutesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []*Graph{
		NewGrid(5, 7),
		randomGraph(40, 0.08, rng), // sparse, usually disconnected
		randomGraph(30, 0.02, rng), // very sparse, many components
		randomGraph(25, 0.3, rng),  // dense
	}
	for gi, g := range cases {
		rts := NewRoutes(g, 0)
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				uu, vv := NodeID(u), NodeID(v)
				wantD := refHopDistances(g, uu)[vv]
				if got := rts.Dist(uu, vv); got != wantD {
					t.Fatalf("graph %d: Dist(%d,%d) = %d, want %d", gi, u, v, got, wantD)
				}
				wantP := refShortestPath(g, uu, vv)
				if got := rts.Path(uu, vv); !pathsEqual(got, wantP) {
					t.Fatalf("graph %d: Path(%d,%d) = %v, want %v", gi, u, v, got, wantP)
				}
				switch hop := rts.NextHop(uu, vv); {
				case u == v:
					if hop != uu {
						t.Fatalf("graph %d: NextHop(%d,%d) = %d, want %d", gi, u, v, hop, u)
					}
				case wantD < 0:
					if hop != -1 {
						t.Fatalf("graph %d: NextHop(%d,%d) = %d, want -1 (unreachable)", gi, u, v, hop)
					}
				default:
					if hop != wantP[1] {
						t.Fatalf("graph %d: NextHop(%d,%d) = %d, want %d", gi, u, v, hop, wantP[1])
					}
				}
			}
		}
	}
}

// TestGraphDelegatesToRoutes pins the Graph-level API to the same
// reference now that it is served by the shared routing tables.
func TestGraphDelegatesToRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(30, 0.1, rng)
	for u := 0; u < g.N(); u++ {
		wantD := refHopDistances(g, NodeID(u))
		gotD := g.HopDistances(NodeID(u))
		for v := range wantD {
			if gotD[v] != wantD[v] {
				t.Fatalf("HopDistances(%d)[%d] = %d, want %d", u, v, gotD[v], wantD[v])
			}
			if hd := g.HopDistance(NodeID(u), NodeID(v)); hd != wantD[v] {
				t.Fatalf("HopDistance(%d,%d) = %d, want %d", u, v, hd, wantD[v])
			}
			if p := g.ShortestPath(NodeID(u), NodeID(v)); !pathsEqual(p, refShortestPath(g, NodeID(u), NodeID(v))) {
				t.Fatalf("ShortestPath(%d,%d) = %v diverges from reference", u, v, p)
			}
		}
	}
}

// TestRoutesLRUBound checks the table registry never exceeds its bound
// and that lookups stay correct across evictions.
func TestRoutesLRUBound(t *testing.T) {
	g := NewGrid(6, 6)
	rts := NewRoutes(g, 3)
	for round := 0; round < 3; round++ {
		for root := 0; root < g.N(); root++ {
			d := rts.Distances(NodeID(root))
			want := refHopDistances(g, NodeID(root))
			for v := range want {
				if d[v] != want[v] {
					t.Fatalf("round %d: Distances(%d)[%d] = %d, want %d", round, root, v, d[v], want[v])
				}
			}
			if c := rts.Cached(); c > 3 {
				t.Fatalf("cache holds %d tables, bound is 3", c)
			}
		}
	}
	// A previously evicted root is rebuilt transparently.
	if d := rts.Dist(0, NodeID(g.N()-1)); d != 10 {
		t.Fatalf("corner-to-corner distance = %d, want 10", d)
	}
}

// TestRoutesAddEdgeInvalidates checks that topology edits drop the
// graph-attached routing tables instead of serving stale distances.
func TestRoutesAddEdgeInvalidates(t *testing.T) {
	g := NewGrid(1, 5) // a path: 0-1-2-3-4
	if d := g.HopDistance(0, 4); d != 4 {
		t.Fatalf("path distance = %d, want 4", d)
	}
	g.AddEdge(0, 4)
	if d := g.HopDistance(0, 4); d != 1 {
		t.Fatalf("distance after AddEdge = %d, want 1", d)
	}
}

// TestRoutesConcurrent hammers one Routes instance from many goroutines
// with a tight table bound, so builds, lookups and evictions interleave;
// run with -race. Every observed value must still match the reference.
func TestRoutesConcurrent(t *testing.T) {
	g := NewGrid(8, 8)
	rts := NewRoutes(g, 4) // tight bound forces eviction churn
	ref := make([][]int, g.N())
	for u := range ref {
		ref[u] = refHopDistances(g, NodeID(u))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				u := NodeID(rng.Intn(g.N()))
				v := NodeID(rng.Intn(g.N()))
				if d := rts.Dist(u, v); d != ref[v][u] {
					t.Errorf("concurrent Dist(%d,%d) = %d, want %d", u, v, d, ref[v][u])
					return
				}
				p := rts.Path(u, v)
				if len(p) != ref[v][u]+1 || p[0] != u || p[len(p)-1] != v {
					t.Errorf("concurrent Path(%d,%d) = %v (want %d hops)", u, v, p, ref[v][u])
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
}
