// Package topology models the physical layer of the sensor network: node
// positions, the communication graph, shortest-hop routing, spanning
// trees, and the quadtree decomposition that defines ELink's sentinel
// sets (paper §3.2).
package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// NodeID identifies a sensor node. IDs are dense in [0, N).
type NodeID int

// Point is a position on the deployment plane.
type Point struct {
	X, Y float64
}

// Dist returns the euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Graph is an undirected communication graph over positioned nodes.
// Topology is fixed after construction; the lazy routing cache is a
// concurrency-safe Routes instance, so a built Graph is safe for
// concurrent readers (the streaming engine serves queries while ingest
// computes routes, and async simulator nodes share one table set).
type Graph struct {
	Pos []Point
	Adj [][]NodeID // sorted neighbour lists

	routesMu sync.Mutex
	routes   *Routes // lazy shared routing tables (see Routes)
}

// NewGraph returns an edgeless graph over the given positions.
func NewGraph(pos []Point) *Graph {
	return &Graph{Pos: pos, Adj: make([][]NodeID, len(pos))}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.Pos) }

// AddEdge inserts the undirected edge {u, v}. Duplicate edges and self
// loops are ignored.
func (g *Graph) AddEdge(u, v NodeID) {
	if u == v {
		return
	}
	g.addDirected(u, v)
	g.addDirected(v, u)
	g.routesMu.Lock()
	g.routes = nil // routing tables are stale; rebuilt lazily on next use
	g.routesMu.Unlock()
}

func (g *Graph) addDirected(u, v NodeID) {
	adj := g.Adj[u]
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	if i < len(adj) && adj[i] == v {
		return
	}
	adj = append(adj, 0)
	copy(adj[i+1:], adj[i:])
	adj[i] = v
	g.Adj[u] = adj
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	adj := g.Adj[u]
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// Neighbors returns u's neighbour list. The caller must not modify it.
func (g *Graph) Neighbors(u NodeID) []NodeID { return g.Adj[u] }

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int {
	var deg int
	for _, a := range g.Adj {
		deg += len(a)
	}
	return deg / 2
}

// MaxDegree returns the largest node degree (the paper's constant d).
func (g *Graph) MaxDegree() int {
	var d int
	for _, a := range g.Adj {
		if len(a) > d {
			d = len(a)
		}
	}
	return d
}

// AvgDegree returns the mean node degree.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.Edges()) / float64(g.N())
}

// Routes returns the graph's shared routing-table cache, creating it on
// first use. Every subsystem routing over the same graph (both simulator
// runtimes, baselines, the index backbone, experiments) shares this one
// instance, so each BFS field is built at most once per source. AddEdge
// drops the instance; callers must not retain it across topology edits.
func (g *Graph) Routes() *Routes {
	g.routesMu.Lock()
	defer g.routesMu.Unlock()
	if g.routes == nil {
		g.routes = NewRoutes(g, 0)
	}
	return g.routes
}

// HopDistances returns BFS hop counts from src to every node
// (-1 when unreachable). Results are cached per source in the shared
// routing tables; the caller must not modify the returned slice.
func (g *Graph) HopDistances(src NodeID) []int {
	return g.Routes().Distances(src)
}

func (g *Graph) bfs(src NodeID) []int {
	d := make([]int, g.N())
	for i := range d {
		d[i] = -1
	}
	d[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Adj[u] {
			if d[v] < 0 {
				d[v] = d[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return d
}

// HopDistance returns the shortest hop count between u and v, or -1 when
// disconnected.
func (g *Graph) HopDistance(u, v NodeID) int {
	return g.Routes().Dist(u, v)
}

// ShortestPath returns a shortest hop path from u to v inclusive, or nil
// when disconnected. Ties are broken toward smaller node ids, making the
// route deterministic. Paths are served from the shared routing tables.
func (g *Graph) ShortestPath(u, v NodeID) []NodeID {
	return g.Routes().Path(u, v)
}

// Connected reports whether the whole graph is one component.
func (g *Graph) Connected() bool {
	if g.N() == 0 {
		return true
	}
	d := g.HopDistances(0)
	for _, v := range d {
		if v < 0 {
			return false
		}
	}
	return true
}

// ComponentsOf splits the given node subset into connected components of
// the sub-graph induced by the subset. Components are returned with node
// ids sorted and ordered by their smallest member.
func (g *Graph) ComponentsOf(subset []NodeID) [][]NodeID {
	in := make(map[NodeID]bool, len(subset))
	for _, u := range subset {
		in[u] = true
	}
	seen := make(map[NodeID]bool, len(subset))
	var comps [][]NodeID
	ordered := append([]NodeID(nil), subset...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, start := range ordered {
		if seen[start] {
			continue
		}
		comp := []NodeID{start}
		seen[start] = true
		for i := 0; i < len(comp); i++ {
			for _, v := range g.Adj[comp[i]] {
				if in[v] && !seen[v] {
					seen[v] = true
					comp = append(comp, v)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// BFSTree returns the BFS spanning-tree parent of every node rooted at
// root (parent[root] == root; -1 when unreachable).
func (g *Graph) BFSTree(root NodeID) []NodeID {
	parent := make([]NodeID, g.N())
	for i := range parent {
		parent[i] = -1
	}
	parent[root] = root
	queue := []NodeID{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Adj[u] {
			if parent[v] < 0 {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return parent
}

// BoundingBox returns the axis-aligned bounding box of all node positions.
func (g *Graph) BoundingBox() (min, max Point) {
	if g.N() == 0 {
		return Point{}, Point{}
	}
	min, max = g.Pos[0], g.Pos[0]
	for _, p := range g.Pos[1:] {
		min.X = math.Min(min.X, p.X)
		min.Y = math.Min(min.Y, p.Y)
		max.X = math.Max(max.X, p.X)
		max.Y = math.Max(max.Y, p.Y)
	}
	return min, max
}

// NewGrid builds a rows x cols grid network with unit spacing and
// 4-neighbour (von Neumann) connectivity, matching the paper's Tao layout.
func NewGrid(rows, cols int) *Graph {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("topology: invalid grid %dx%d", rows, cols))
	}
	pos := make([]Point, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pos[r*cols+c] = Point{X: float64(c), Y: float64(r)}
		}
	}
	g := NewGraph(pos)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := NodeID(r*cols + c)
			if c+1 < cols {
				g.AddEdge(id, id+1)
			}
			if r+1 < rows {
				g.AddEdge(id, NodeID((r+1)*cols+c))
			}
		}
	}
	return g
}

// NewRandomGeometric places n nodes uniformly at random on a side x side
// square and connects pairs within the given radio radius. When the
// result is disconnected it is stitched into one component by linking
// each stray component to its nearest node in the main component — the
// paper's experiments all assume a connected network.
func NewRandomGeometric(n int, side, radius float64, rng *rand.Rand) *Graph {
	pos := make([]Point, n)
	for i := range pos {
		pos[i] = Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	g := NewGraph(pos)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pos[i].Dist(pos[j]) <= radius {
				g.AddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	stitch(g)
	return g
}

// RandomGeometricForDegree chooses a radius that yields approximately the
// requested average degree (the paper's synthetic data uses ~4 neighbours
// per node) and builds the graph. For average degree d on a unit-density
// square, pi r^2 ≈ d, so r = sqrt(d/pi).
func RandomGeometricForDegree(n int, avgDegree float64, rng *rand.Rand) *Graph {
	side := math.Sqrt(float64(n)) // unit density, as in the paper (rho = 1)
	r := math.Sqrt(avgDegree / math.Pi)
	return NewRandomGeometric(n, side, r, rng)
}

// stitch connects a fragmented graph into a single component by adding,
// for each non-main component, an edge between its node closest to the
// main component and that nearest main-component node.
func stitch(g *Graph) {
	for {
		all := make([]NodeID, g.N())
		for i := range all {
			all[i] = NodeID(i)
		}
		comps := g.ComponentsOf(all)
		if len(comps) <= 1 {
			return
		}
		// Largest component is the main one.
		main := comps[0]
		for _, c := range comps[1:] {
			if len(c) > len(main) {
				main = c
			}
		}
		inMain := make(map[NodeID]bool, len(main))
		for _, u := range main {
			inMain[u] = true
		}
		for _, comp := range comps {
			if inMain[comp[0]] {
				continue
			}
			bu, bv, best := NodeID(-1), NodeID(-1), math.Inf(1)
			for _, u := range comp {
				for _, v := range main {
					if d := g.Pos[u].Dist(g.Pos[v]); d < best {
						bu, bv, best = u, v, d
					}
				}
			}
			g.AddEdge(bu, bv)
		}
	}
}
