package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGridShape(t *testing.T) {
	g := NewGrid(6, 9)
	if g.N() != 54 {
		t.Fatalf("N = %d, want 54", g.N())
	}
	// Interior node has 4 neighbours, corner has 2.
	if deg := len(g.Neighbors(NodeID(1*9 + 1))); deg != 4 {
		t.Errorf("interior degree = %d, want 4", deg)
	}
	if deg := len(g.Neighbors(0)); deg != 2 {
		t.Errorf("corner degree = %d, want 2", deg)
	}
	// Grid edge count: rows*(cols-1) + cols*(rows-1).
	want := 6*8 + 9*5
	if g.Edges() != want {
		t.Errorf("Edges = %d, want %d", g.Edges(), want)
	}
}

func TestAddEdgeDeduplicates(t *testing.T) {
	g := NewGraph([]Point{{0, 0}, {1, 0}})
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(0, 0)
	if g.Edges() != 1 {
		t.Errorf("Edges = %d, want 1", g.Edges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge should be symmetric")
	}
	if g.HasEdge(0, 0) {
		t.Error("self loop should be ignored")
	}
}

func TestHopDistancesOnGrid(t *testing.T) {
	g := NewGrid(4, 4)
	d := g.HopDistances(0)
	// Manhattan distance on a grid.
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if got := d[r*4+c]; got != r+c {
				t.Errorf("hop(0, (%d,%d)) = %d, want %d", r, c, got, r+c)
			}
		}
	}
}

func TestShortestPath(t *testing.T) {
	g := NewGrid(3, 3)
	path := g.ShortestPath(0, 8)
	if len(path) != 5 {
		t.Fatalf("path length = %d, want 5 (4 hops)", len(path))
	}
	if path[0] != 0 || path[len(path)-1] != 8 {
		t.Errorf("path endpoints wrong: %v", path)
	}
	for i := 0; i+1 < len(path); i++ {
		if !g.HasEdge(path[i], path[i+1]) {
			t.Errorf("path step %v-%v is not an edge", path[i], path[i+1])
		}
	}
	// Determinism.
	again := g.ShortestPath(0, 8)
	for i := range path {
		if path[i] != again[i] {
			t.Fatal("ShortestPath is not deterministic")
		}
	}
}

func TestShortestPathDisconnected(t *testing.T) {
	g := NewGraph([]Point{{0, 0}, {5, 5}})
	if p := g.ShortestPath(0, 1); p != nil {
		t.Errorf("path across disconnected graph = %v, want nil", p)
	}
	if d := g.HopDistance(0, 1); d != -1 {
		t.Errorf("HopDistance = %d, want -1", d)
	}
}

func TestComponentsOf(t *testing.T) {
	g := NewGrid(1, 6) // path 0-1-2-3-4-5
	comps := g.ComponentsOf([]NodeID{0, 1, 3, 4, 5})
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if len(comps[0]) != 2 || comps[0][0] != 0 || comps[0][1] != 1 {
		t.Errorf("first component = %v, want [0 1]", comps[0])
	}
	if len(comps[1]) != 3 || comps[1][0] != 3 {
		t.Errorf("second component = %v, want [3 4 5]", comps[1])
	}
}

func TestBFSTree(t *testing.T) {
	g := NewGrid(3, 3)
	parent := g.BFSTree(4) // center
	if parent[4] != 4 {
		t.Error("root should be its own parent")
	}
	count := 0
	for u := range parent {
		if parent[u] < 0 {
			t.Errorf("node %d unreachable", u)
		}
		if NodeID(u) != 4 {
			if !g.HasEdge(NodeID(u), parent[u]) {
				t.Errorf("tree edge %d-%v not in graph", u, parent[u])
			}
			count++
		}
	}
	if count != 8 {
		t.Errorf("tree edges = %d, want 8", count)
	}
}

func TestRandomGeometricConnectivityAndDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := RandomGeometricForDegree(200, 4, rng)
	if !g.Connected() {
		t.Fatal("graph should be stitched into one component")
	}
	if d := g.AvgDegree(); d < 2.5 || d > 7 {
		t.Errorf("average degree = %v, want near 4", d)
	}
}

func TestStitchRepairsFragments(t *testing.T) {
	// Tiny radius: initially isolated nodes, stitched into a tree.
	rng := rand.New(rand.NewSource(7))
	g := NewRandomGeometric(30, 100, 0.01, rng)
	if !g.Connected() {
		t.Fatal("stitching failed to connect the graph")
	}
}

func TestBoundingBox(t *testing.T) {
	g := NewGraph([]Point{{1, 5}, {-2, 3}, {4, -1}})
	min, max := g.BoundingBox()
	if min.X != -2 || min.Y != -1 || max.X != 4 || max.Y != 5 {
		t.Errorf("bbox = %v %v", min, max)
	}
}

// Property: hop distances satisfy the triangle inequality over hops and
// symmetry on random connected geometric graphs.
func TestHopDistanceMetricProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGeometricForDegree(40, 5, rng)
		for trial := 0; trial < 10; trial++ {
			u := NodeID(rng.Intn(g.N()))
			v := NodeID(rng.Intn(g.N()))
			w := NodeID(rng.Intn(g.N()))
			duv := g.HopDistance(u, v)
			dvu := g.HopDistance(v, u)
			duw := g.HopDistance(u, w)
			dwv := g.HopDistance(w, v)
			if duv != dvu {
				return false
			}
			if duv > duw+dwv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: ShortestPath length always equals HopDistance + 1.
func TestShortestPathLengthProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGeometricForDegree(35, 4, rng)
		u := NodeID(rng.Intn(g.N()))
		v := NodeID(rng.Intn(g.N()))
		p := g.ShortestPath(u, v)
		return len(p) == g.HopDistance(u, v)+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuadtreeGrid(t *testing.T) {
	g := NewGrid(4, 4)
	qt := BuildQuadtree(g)
	if qt.Cells[0].Level != 0 || len(qt.Cells[0].Nodes) != 16 {
		t.Fatal("root cell malformed")
	}
	if qt.Depth < 2 {
		t.Errorf("depth = %d, want >= 2 for 16 nodes", qt.Depth)
	}
	// Every node must appear in exactly one cell per level along its path,
	// and sentinel levels must cover all nodes.
	levels := qt.SentinelLevel()
	if len(levels) != 16 {
		t.Fatalf("SentinelLevel length = %d", len(levels))
	}
	for u, l := range levels {
		if l < 0 {
			t.Errorf("node %d never leads a cell", u)
		}
	}
}

func TestQuadtreeSentinelsDisjointCover(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomGeometricForDegree(60, 4, rng)
	qt := BuildQuadtree(g)
	// S_0 is a single node (the root leader).
	if s0 := qt.Sentinels(0); len(s0) != 1 {
		t.Fatalf("S_0 = %v, want exactly one sentinel", s0)
	}
	// Union over levels of "first time a node leads" covers all nodes.
	levels := qt.SentinelLevel()
	for u, l := range levels {
		if l < 0 {
			t.Errorf("node %d has no sentinel level", u)
		}
	}
	_ = g
}

func TestQuadtreeCellStructure(t *testing.T) {
	g := NewGrid(4, 4)
	qt := BuildQuadtree(g)
	for _, c := range qt.Cells {
		if c.Parent >= 0 {
			p := qt.Cells[c.Parent]
			if p.Level != c.Level-1 {
				t.Errorf("cell %d level %d has parent at level %d", c.ID, c.Level, p.Level)
			}
			// Child node sets are subsets of the parent's.
			in := map[NodeID]bool{}
			for _, u := range p.Nodes {
				in[u] = true
			}
			for _, u := range c.Nodes {
				if !in[u] {
					t.Errorf("cell %d contains node %d not in its parent", c.ID, u)
				}
			}
		}
		// Children partition the occupied nodes of the cell.
		if len(c.Children) > 0 {
			total := 0
			for _, ch := range c.Children {
				total += len(qt.Cells[ch].Nodes)
			}
			if total != len(c.Nodes) {
				t.Errorf("cell %d children hold %d nodes, cell holds %d", c.ID, total, len(c.Nodes))
			}
		}
		// Leader is a member of the cell.
		found := false
		for _, u := range c.Nodes {
			if u == c.Leader {
				found = true
			}
		}
		if !found {
			t.Errorf("cell %d leader %d not among its nodes", c.ID, c.Leader)
		}
	}
}

func TestCellOf(t *testing.T) {
	g := NewGrid(4, 4)
	qt := BuildQuadtree(g)
	for u := 0; u < g.N(); u++ {
		for l := 0; l <= qt.Depth; l++ {
			cid := qt.CellOf(NodeID(u), l)
			if cid < 0 {
				continue // node's path may stop before the max depth
			}
			c := qt.Cells[cid]
			if c.Level != l {
				t.Errorf("CellOf(%d, %d) returned cell at level %d", u, l, c.Level)
			}
			member := false
			for _, v := range c.Nodes {
				if v == NodeID(u) {
					member = true
				}
			}
			if !member {
				t.Errorf("CellOf(%d, %d) returned a cell not containing the node", u, l)
			}
		}
	}
}

func TestImplicitSchedule(t *testing.T) {
	g := NewGrid(8, 8)
	qt := BuildQuadtree(g)
	starts, budgets := qt.ImplicitSchedule(g.N(), 0.3)
	kappa := 1.3 * math.Sqrt(64.0/2)
	if math.Abs(budgets[0]-kappa) > 1e-9 {
		t.Errorf("t_0 = %v, want kappa = %v", budgets[0], kappa)
	}
	if starts[0] != 0 {
		t.Errorf("start_0 = %v, want 0", starts[0])
	}
	for l := 1; l < len(starts); l++ {
		if budgets[l] <= budgets[l-1] {
			t.Errorf("budgets must increase: t_%d=%v <= t_%d=%v", l, budgets[l], l-1, budgets[l-1])
		}
		if budgets[l] >= 2*kappa {
			t.Errorf("t_%d = %v must stay below 2*kappa = %v", l, budgets[l], 2*kappa)
		}
		want := starts[l-1] + budgets[l-1]
		if math.Abs(starts[l]-want) > 1e-9 {
			t.Errorf("start_%d = %v, want %v", l, starts[l], want)
		}
	}
}

func TestQuadtreeSingleNode(t *testing.T) {
	g := NewGraph([]Point{{0, 0}})
	qt := BuildQuadtree(g)
	if qt.Depth != 0 || len(qt.Cells) != 1 {
		t.Errorf("single-node quadtree: depth=%d cells=%d", qt.Depth, len(qt.Cells))
	}
	if qt.Cells[0].Leader != 0 {
		t.Error("single node must lead the root cell")
	}
}

// Property: every quadtree level's occupied cells partition the node set
// (each node appears in exactly one cell along its root-to-leaf path per
// level it reaches).
func TestQuadtreeLevelsPartitionProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGeometricForDegree(25+rng.Intn(50), 4, rng)
		qt := BuildQuadtree(g)
		for level := 0; level <= qt.Depth; level++ {
			counts := make(map[NodeID]int)
			for _, cid := range qt.ByLevel[level] {
				for _, u := range qt.Cells[cid].Nodes {
					counts[u]++
				}
			}
			for _, c := range counts {
				if c != 1 {
					return false
				}
			}
			// Every node either appears at this level or its path bottomed
			// out earlier (its singleton cell is above this level).
			for u := 0; u < g.N(); u++ {
				if counts[NodeID(u)] == 0 {
					// Must be in a leaf cell above this level.
					found := false
					for _, cell := range qt.Cells {
						if cell.Level < level && len(cell.Children) == 0 {
							for _, v := range cell.Nodes {
								if v == NodeID(u) {
									found = true
								}
							}
						}
					}
					if !found {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: sentinel start times are strictly increasing in level and
// budgets stay below 2*kappa (the geometric-series bound in Theorem 2).
func TestImplicitScheduleBoundsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGeometricForDegree(20+rng.Intn(100), 4, rng)
		qt := BuildQuadtree(g)
		gamma := 0.2 + rng.Float64()*0.2
		starts, budgets := qt.ImplicitSchedule(g.N(), gamma)
		kappa := (1 + gamma) * math.Sqrt(float64(g.N())/2)
		for l := 0; l < len(starts); l++ {
			if budgets[l] >= 2*kappa {
				return false
			}
			if l > 0 && (starts[l] <= starts[l-1] || budgets[l] <= budgets[l-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
