// Package par is the repository's shared deterministic parallel
// execution layer: a bounded fork-join API (For / Chunks / Err / Map)
// whose results are collected in index order, plus a persistent
// spin-assisted worker pool (Pool) for phase-structured kernels like the
// Jacobi eigensolver whose parallel regions are too fine-grained for
// per-call goroutine spawning.
//
// Determinism contract: every primitive here writes results into
// caller-owned, index-addressed slots, so as long as the task bodies are
// pure functions of their index (no shared mutable state, no hidden
// randomness), the observable output is bitwise identical for any worker
// count — including 1. Reductions that are sensitive to floating-point
// association (e.g. the eigensolver's off-diagonal norm) must use Chunks
// with a fixed grain and combine the per-chunk partials in chunk order;
// the chunk layout depends only on (n, grain), never on the worker
// count, which is what makes `-j 1` and `-j NumCPU` agree to the bit.
//
// The worker count resolves, in priority order: SetWorkers override,
// the ELINK_WORKERS environment variable, GOMAXPROCS. Everything runs
// inline when the count is 1, so un-parallel deployments pay only a
// function call.
package par

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// workerOverride holds the SetWorkers value (0 = unset, resolve from
// environment / GOMAXPROCS).
var workerOverride atomic.Int32

// SetWorkers overrides the resolved worker count for every subsequent
// call into this package. n <= 0 restores the automatic resolution
// (ELINK_WORKERS, then GOMAXPROCS). It is safe for concurrent use, but
// callers that need a consistent count across a whole computation should
// set it once up front (the experiments binary does, from its -j flag).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerOverride.Store(int32(n))
	if m := metrics(); m != nil {
		m.workers.Set(float64(Workers()))
	}
}

// Workers returns the worker count parallel primitives will use:
// SetWorkers override if set, else ELINK_WORKERS if parseable and
// positive, else GOMAXPROCS.
func Workers() int {
	if o := workerOverride.Load(); o > 0 {
		return int(o)
	}
	if env := os.Getenv("ELINK_WORKERS"); env != "" {
		if n, err := strconv.Atoi(env); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// panicValue wraps a recovered panic so it can be re-thrown on the
// calling goroutine with its origin attached.
type panicValue struct {
	val   any
	stack []byte
}

// Chunks runs body over [0, n) split into fixed chunks of size grain
// (the final chunk may be short), distributing chunks over the resolved
// workers. The chunk layout depends only on (n, grain) — never on the
// worker count — so order-sensitive reductions can sum per-chunk
// partials in chunk order and get a bitwise worker-count-independent
// result. Chunks are handed out in ascending order. A panic in any body
// is re-raised on the caller's goroutine after all workers stop.
func Chunks(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	nchunks := (n + grain - 1) / grain
	workers := Workers()
	if workers > nchunks {
		workers = nchunks
	}
	// Span attribution (InstrumentSpans): the batch is one root span,
	// each worker one child, so a slow batch shows which workers carried
	// it. Spans observe only — they never affect chunk order or results.
	root := spanTracer.Load().Start("par-batch")
	root.KeepIf(spanKeepMin)

	if workers <= 1 {
		start := time.Now()
		ws := root.Child(workerSpanName(0))
		for lo := 0; lo < n; lo += grain {
			hi := lo + grain
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
		ws.Finish()
		observeBatch(nchunks, start)
		root.Finish()
		return
	}

	start := time.Now()
	var next atomic.Int64
	var pan atomic.Pointer[panicValue]
	run := func(w int) {
		ws := root.Child(workerSpanName(w))
		defer ws.Finish()
		defer func() {
			if r := recover(); r != nil {
				pan.CompareAndSwap(nil, &panicValue{val: r, stack: stack()})
			}
		}()
		for {
			c := int(next.Add(1)) - 1
			if c >= nchunks || pan.Load() != nil {
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			run(w)
		}(w)
	}
	run(0)
	wg.Wait()
	observeBatch(nchunks, start)
	root.Finish()
	if p := pan.Load(); p != nil {
		panic(fmt.Sprintf("par: task panic: %v\n%s", p.val, p.stack))
	}
}

// For runs body(i) for every i in [0, n) on the resolved workers,
// chunking automatically. Bodies must write only to index-i state; under
// that contract the result is identical for any worker count.
func For(n int, body func(i int)) {
	grain := autoGrain(n)
	Chunks(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Err runs body(i) for every i in [0, n) in parallel and returns the
// error of the lowest index that failed (nil if none). After an error is
// recorded, chunks whose entire index range lies above the recorded
// index are skipped (early cancellation); indices below it still run, so
// the winning error is deterministic regardless of scheduling.
func Err(n int, body func(i int) error) error {
	if n <= 0 {
		return nil
	}
	var mu sync.Mutex
	errIdx := int64(n) // lowest failing index so far
	var firstErr error
	record := func(i int, err error) {
		mu.Lock()
		if int64(i) < errIdx {
			errIdx, firstErr = int64(i), err
		}
		mu.Unlock()
	}
	cancelled := func(lo int) bool {
		mu.Lock()
		c := errIdx
		mu.Unlock()
		return int64(lo) > c
	}
	grain := autoGrain(n)
	Chunks(n, grain, func(lo, hi int) {
		if cancelled(lo) {
			return
		}
		for i := lo; i < hi; i++ {
			if err := body(i); err != nil {
				record(i, err)
				return
			}
		}
	})
	return firstErr
}

// Map computes f(i) for every i in [0, n) in parallel and returns the
// results in index order.
func Map[T any](n int, f func(i int) T) []T {
	out := make([]T, n)
	For(n, func(i int) { out[i] = f(i) })
	return out
}

// MapErr is Map with an error per element; it returns the lowest-index
// error and, on success, the results in index order.
func MapErr[T any](n int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Err(n, func(i int) error {
		v, e := f(i)
		if e != nil {
			return e
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// autoGrain picks a chunk size that gives each worker a handful of
// chunks for load balance without drowning small loops in dispatch.
func autoGrain(n int) int {
	g := n / (4 * Workers())
	if g < 1 {
		g = 1
	}
	return g
}

func stack() []byte {
	buf := make([]byte, 8192)
	return buf[:runtime.Stack(buf, false)]
}
