package par

import (
	"testing"
	"time"

	"elink/internal/obs"
)

// TestChunksSpanAttribution: with a span tracer installed, fork-join
// batches record "par-batch" traces with one child per worker, and fast
// batches feed phase statistics without occupying trace slots.
func TestChunksSpanAttribution(t *testing.T) {
	tr := obs.NewSpanTracer(16, 4)
	InstrumentSpans(tr)
	defer InstrumentSpans(nil)

	SetWorkers(4)
	defer SetWorkers(0)

	// A slow batch (each chunk sleeps) must land in the trace ring.
	Chunks(8, 1, func(lo, hi int) { time.Sleep(2 * time.Millisecond) })
	// Fast batches only feed phase stats.
	for i := 0; i < 10; i++ {
		Chunks(8, 1, func(lo, hi int) {})
	}

	if got := tr.Total(); got != 11 {
		t.Fatalf("Total = %d, want 11 batches", got)
	}
	if got := tr.Len(); got != 1 {
		t.Fatalf("Len = %d, want only the slow batch retained", got)
	}
	trace := tr.Recent(0)[0]
	if trace.Name != "par-batch" {
		t.Fatalf("trace name = %q", trace.Name)
	}
	workers := 0
	for _, s := range trace.Spans {
		if s.Parent == 0 {
			workers++
		}
	}
	if workers != 4 {
		t.Fatalf("worker spans = %d, want 4", workers)
	}
	// Concurrent workers overlap the root; its self-time clamps at 0.
	for _, s := range trace.Spans {
		if s.Parent == -1 && s.SelfNs != 0 {
			t.Fatalf("root SelfNs = %d, want 0 (overlapped workers)", s.SelfNs)
		}
	}
	stats := tr.PhaseStats()
	byName := map[string]obs.PhaseStat{}
	for _, p := range stats {
		byName[p.Phase] = p
	}
	if byName["par-batch"].Count != 11 {
		t.Fatalf("par-batch phase count = %d, want 11 (dropped traces still attributed)", byName["par-batch"].Count)
	}
	if byName["par-worker-0"].Count == 0 {
		t.Fatalf("no worker phase rows: %+v", stats)
	}
}

// TestChunksSpanInline: the workers<=1 inline path still traces, with a
// single worker child.
func TestChunksSpanInline(t *testing.T) {
	tr := obs.NewSpanTracer(4, 2)
	InstrumentSpans(tr)
	defer InstrumentSpans(nil)
	SetWorkers(1)
	defer SetWorkers(0)

	Chunks(4, 2, func(lo, hi int) { time.Sleep(2 * time.Millisecond) })
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	trace := tr.Recent(0)[0]
	if len(trace.Spans) != 2 {
		t.Fatalf("spans = %+v, want root + one worker", trace.Spans)
	}
}

// TestSpanInstrumentationDeterminism: results are bitwise identical with
// and without span tracing (spans observe, never schedule).
func TestSpanInstrumentationDeterminism(t *testing.T) {
	run := func() []float64 {
		out := make([]float64, 256)
		Chunks(256, 16, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = float64(i) * 1.5
			}
		})
		return out
	}
	SetWorkers(4)
	defer SetWorkers(0)
	bare := run()
	InstrumentSpans(obs.NewSpanTracer(8, 2))
	defer InstrumentSpans(nil)
	spanned := run()
	for i := range bare {
		if bare[i] != spanned[i] {
			t.Fatalf("index %d: %v != %v", i, bare[i], spanned[i])
		}
	}
}
