package par

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// withWorkers runs f under a fixed worker override, restoring the
// automatic resolution afterwards.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	SetWorkers(n)
	defer SetWorkers(0)
	f()
}

func TestForMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		want := make([]int, n)
		for i := range want {
			want[i] = i * i
		}
		for _, workers := range []int{1, 2, 3, 8} {
			got := make([]int, n)
			withWorkers(t, workers, func() {
				For(n, func(i int) { got[i] = i * i })
			})
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d workers=%d: got[%d]=%d, want %d", n, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestChunksFixedLayout verifies the chunk layout depends only on
// (n, grain): every worker count must produce the same set of [lo, hi)
// ranges, which is the property order-sensitive reductions rely on.
func TestChunksFixedLayout(t *testing.T) {
	const n, grain = 1000, 64
	layout := func(workers int) map[string]bool {
		seen := make(map[string]bool)
		var mu sync.Mutex
		withWorkers(t, workers, func() {
			Chunks(n, grain, func(lo, hi int) {
				mu.Lock()
				seen[fmt.Sprintf("%d:%d", lo, hi)] = true
				mu.Unlock()
			})
		})
		return seen
	}
	want := layout(1)
	if len(want) != (n+grain-1)/grain {
		t.Fatalf("serial layout has %d chunks, want %d", len(want), (n+grain-1)/grain)
	}
	for _, workers := range []int{2, 4, 7} {
		got := layout(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d chunks, want %d", workers, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("workers=%d: missing chunk %s", workers, k)
			}
		}
	}
}

// TestErrLowestIndexWins checks the deterministic error contract: with
// several failing indices, the winner is always the lowest, regardless
// of worker count and scheduling.
func TestErrLowestIndexWins(t *testing.T) {
	const n = 500
	fail := map[int]bool{17: true, 130: true, 499: true}
	for _, workers := range []int{1, 2, 8} {
		withWorkers(t, workers, func() {
			for trial := 0; trial < 20; trial++ {
				err := Err(n, func(i int) error {
					if fail[i] {
						return fmt.Errorf("boom at %d", i)
					}
					return nil
				})
				if err == nil || err.Error() != "boom at 17" {
					t.Fatalf("workers=%d: got %v, want boom at 17", workers, err)
				}
			}
		})
	}
}

// TestErrCancellation checks that chunks entirely above a recorded error
// are skipped, but indices below it still run (they might hold an even
// lower error).
func TestErrCancellation(t *testing.T) {
	const n = 10000
	var ran atomic.Int64
	withWorkers(t, 4, func() {
		err := Err(n, func(i int) error {
			ran.Add(1)
			if i == 0 {
				return errors.New("first")
			}
			return nil
		})
		if err == nil || err.Error() != "first" {
			t.Fatalf("got %v, want first", err)
		}
	})
	if got := ran.Load(); got == n {
		t.Fatalf("no cancellation: all %d indices ran despite an error at index 0", n)
	}
}

func TestMapOrdered(t *testing.T) {
	withWorkers(t, 4, func() {
		got := Map(100, func(i int) int { return 2 * i })
		for i, v := range got {
			if v != 2*i {
				t.Fatalf("Map[%d]=%d, want %d", i, v, 2*i)
			}
		}
	})
}

func TestMapErr(t *testing.T) {
	withWorkers(t, 4, func() {
		got, err := MapErr(50, func(i int) (int, error) { return i + 1, nil })
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if got[49] != 50 {
			t.Fatalf("MapErr[49]=%d, want 50", got[49])
		}
		_, err = MapErr(50, func(i int) (int, error) {
			if i >= 10 {
				return 0, fmt.Errorf("bad %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "bad 10" {
			t.Fatalf("got %v, want bad 10", err)
		}
	})
}

func TestForPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		withWorkers(t, workers, func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if !strings.Contains(fmt.Sprint(r), "kaboom") {
					t.Fatalf("workers=%d: panic lost its value: %v", workers, r)
				}
			}()
			For(100, func(i int) {
				if i == 42 {
					panic("kaboom")
				}
			})
		})
	}
}

func TestPoolPanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	p.Run(func(w int) {}) // warm phase
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("pool panic did not propagate")
			}
			if !strings.Contains(fmt.Sprint(r), "phase-boom") {
				t.Fatalf("pool panic lost its value: %v", r)
			}
		}()
		p.Run(func(w int) {
			if w == 1 {
				panic("phase-boom")
			}
		})
	}()
	// The pool must stay usable after a panic drained.
	var hits atomic.Int32
	p.Run(func(w int) { hits.Add(1) })
	if hits.Load() != 4 {
		t.Fatalf("post-panic phase ran on %d workers, want 4", hits.Load())
	}
}

// TestPoolPhases checks the fork-join barrier: a phase must observe all
// writes of the previous phase.
func TestPoolPhases(t *testing.T) {
	const n, phases = 1024, 50
	p := NewPool(4)
	defer p.Close()
	data := make([]int, n)
	for phase := 0; phase < phases; phase++ {
		p.Run(func(w int) {
			lo, hi := Span(n, p.Workers(), w)
			for i := lo; i < hi; i++ {
				data[i]++
			}
		})
	}
	for i, v := range data {
		if v != phases {
			t.Fatalf("data[%d]=%d after %d phases, want %d", i, v, phases, phases)
		}
	}
}

// TestPoolHammer runs several pools concurrently (each driven by its own
// goroutine, as the contract requires) under load; with -race this is
// the memory-safety check for the spin handoff.
func TestPoolHammer(t *testing.T) {
	const pools, phases, n = 4, 200, 512
	var wg sync.WaitGroup
	for pi := 0; pi < pools; pi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := NewPool(3)
			defer p.Close()
			acc := make([]int64, n)
			for phase := 0; phase < phases; phase++ {
				p.Run(func(w int) {
					lo, hi := Span(n, p.Workers(), w)
					for i := lo; i < hi; i++ {
						acc[i] += int64(i)
					}
				})
			}
			for i, v := range acc {
				if v != int64(i)*phases {
					t.Errorf("pool: acc[%d]=%d, want %d", i, v, int64(i)*phases)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestForConcurrent drives For from many goroutines at once; chunk
// dispatch state is per-call, so calls must not interfere.
func TestForConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]int, 300)
			For(300, func(i int) { out[i] = i })
			for i, v := range out {
				if v != i {
					t.Errorf("out[%d]=%d", i, v)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestWorkersResolution(t *testing.T) {
	SetWorkers(0)
	t.Setenv("ELINK_WORKERS", "3")
	if got := Workers(); got != 3 {
		t.Fatalf("env resolution: got %d, want 3", got)
	}
	SetWorkers(7)
	if got := Workers(); got != 7 {
		t.Fatalf("override beats env: got %d, want 7", got)
	}
	SetWorkers(0)
	t.Setenv("ELINK_WORKERS", "not-a-number")
	if got := Workers(); got < 1 {
		t.Fatalf("fallback must be positive, got %d", got)
	}
}

func TestSpanCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 10, 997} {
		for _, workers := range []int{1, 2, 3, 16} {
			next := 0
			for w := 0; w < workers; w++ {
				lo, hi := Span(n, workers, w)
				if lo != next {
					t.Fatalf("n=%d workers=%d w=%d: lo=%d, want %d", n, workers, w, lo, next)
				}
				if hi < lo {
					t.Fatalf("n=%d workers=%d w=%d: hi=%d < lo=%d", n, workers, w, hi, lo)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d workers=%d: spans end at %d", n, workers, next)
			}
		}
	}
}
