package par

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// Pool is a persistent fork-join pool for phase-structured kernels whose
// parallel regions are microseconds long — far too fine for per-call
// goroutine spawning. The Jacobi eigensolver runs two phases per
// rotation (~n² rotations per sweep) on one Pool.
//
// Workers park in a spin loop (yielding to the scheduler on every miss,
// so a Pool is safe — merely slow — even at GOMAXPROCS=1) and are
// released by a single atomic epoch increment; the driver participates
// as the last worker, then spins until the others check in. Dispatch
// cost is therefore a couple of atomic operations per phase instead of
// channel handoffs.
//
// A Pool is driven by one goroutine at a time: Run and Close must not be
// called concurrently. Run bodies receive their worker index and the
// fixed worker count and must write disjoint state per worker; under
// that contract results are independent of scheduling. A panic in any
// body is re-raised on the driver's goroutine after the phase drains.
type Pool struct {
	workers int
	body    func(worker int)
	epoch   atomic.Uint32
	done    atomic.Int32
	pan     atomic.Pointer[panicValue]
	closed  bool
}

// NewPool starts a pool with the given worker count (0 resolves via
// Workers()). A pool with one worker runs every phase inline. Callers
// must Close pools with more than one worker to release their
// goroutines.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = Workers()
	}
	p := &Pool{workers: workers}
	for w := 0; w < workers-1; w++ {
		go p.spin(w)
	}
	if m := metrics(); m != nil {
		m.workers.Set(float64(Workers()))
	}
	return p
}

// Workers returns the pool's fixed worker count.
func (p *Pool) Workers() int { return p.workers }

// Run executes body(worker) on every worker (indices 0..Workers()-1; the
// calling goroutine takes the last index) and returns when all have
// finished. Bodies typically carve [0, n) by worker index with Span.
func (p *Pool) Run(body func(worker int)) {
	if p.closed {
		panic("par: Run on closed Pool")
	}
	if m := metrics(); m != nil {
		m.tasks.Add(int64(p.workers))
	}
	if p.workers == 1 {
		body(0)
		return
	}
	p.body = body
	p.done.Store(0)
	p.epoch.Add(1) // release: workers load epoch before reading body
	p.runGuarded(body, p.workers-1)
	for p.done.Load() != int32(p.workers-1) {
		runtime.Gosched()
	}
	if pan := p.pan.Swap(nil); pan != nil {
		panic(fmt.Sprintf("par: pool task panic: %v\n%s", pan.val, pan.stack))
	}
}

// Close releases the pool's worker goroutines. The pool cannot be used
// afterwards. Close is idempotent.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	if p.workers == 1 {
		return
	}
	p.body = nil
	p.done.Store(0)
	p.epoch.Add(1)
	for p.done.Load() != int32(p.workers-1) {
		runtime.Gosched()
	}
}

func (p *Pool) spin(worker int) {
	last := uint32(0)
	for {
		for p.epoch.Load() == last {
			runtime.Gosched()
		}
		last = p.epoch.Load()
		body := p.body
		if body == nil {
			p.done.Add(1)
			return
		}
		p.runGuarded(body, worker)
		p.done.Add(1)
	}
}

func (p *Pool) runGuarded(body func(int), worker int) {
	defer func() {
		if r := recover(); r != nil {
			p.pan.CompareAndSwap(nil, &panicValue{val: r, stack: stack()})
		}
	}()
	body(worker)
}

// Span carves [0, n) into Workers() contiguous ranges and returns the
// one owned by worker w. The layout depends on the worker count, which
// is fine for bodies with disjoint index-addressed writes (the results
// are identical regardless of who computes them); order-sensitive
// reductions must use fixed-grain strides instead (see Chunks).
func Span(n, workers, w int) (lo, hi int) {
	lo = w * n / workers
	hi = (w + 1) * n / workers
	return lo, hi
}
