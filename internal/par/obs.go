package par

import (
	"sync/atomic"
	"time"

	"elink/internal/obs"
)

// parMetrics bundles the live handles Instrument installs. A single
// atomic pointer keeps the uninstrumented hot path at one load + nil
// test, matching the obs package's opt-in philosophy.
type parMetrics struct {
	tasks   *obs.Counter
	workers *obs.Gauge
	latency *obs.Histogram
}

var instrumented atomic.Pointer[parMetrics]

func metrics() *parMetrics { return instrumented.Load() }

// Instrument exports the pool's utilization through the given registry:
//
//	par_tasks_total            tasks (chunks and pool phases) executed
//	par_workers                currently resolved worker count
//	par_batch_latency_seconds  wall-clock latency of fork-join batches
//
// Passing nil turns instrumentation off again. Handles are registered
// eagerly so /metrics shows the families (with zero values) before the
// first parallel call.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		instrumented.Store(nil)
		return
	}
	reg.Help("par_tasks_total", "Parallel tasks executed by the shared execution layer (chunks and pool phases).")
	reg.Help("par_workers", "Worker count the parallel execution layer resolves for new batches.")
	reg.Help("par_batch_latency_seconds", "Wall-clock latency of fork-join batches (For/Chunks/Err/Map).")
	m := &parMetrics{
		tasks:   reg.Counter("par_tasks_total"),
		workers: reg.Gauge("par_workers"),
		latency: reg.Histogram("par_batch_latency_seconds", obs.LatencyBuckets()),
	}
	m.workers.Set(float64(Workers()))
	instrumented.Store(m)
}

// observeBatch records one completed fork-join batch: the number of
// chunks it dispatched and its wall-clock latency.
func observeBatch(chunks int, start time.Time) {
	m := metrics()
	if m == nil {
		return
	}
	m.tasks.Add(int64(chunks))
	m.latency.Observe(time.Since(start).Seconds())
}
