package par

import (
	"strconv"
	"sync/atomic"
	"time"

	"elink/internal/obs"
)

// parMetrics bundles the live handles Instrument installs. A single
// atomic pointer keeps the uninstrumented hot path at one load + nil
// test, matching the obs package's opt-in philosophy.
type parMetrics struct {
	tasks   *obs.Counter
	workers *obs.Gauge
	latency *obs.Histogram
}

var instrumented atomic.Pointer[parMetrics]

func metrics() *parMetrics { return instrumented.Load() }

// spanTracer holds the InstrumentSpans tracer (nil = spans off); the
// hot path pays one atomic load.
var spanTracer atomic.Pointer[obs.SpanTracer]

// spanKeepMin is the wall-time threshold below which a batch's trace is
// dropped from the tracer's ring/top-K stores (phase attribution is
// recorded either way). Fork-join batches fire thousands of times a
// second; only the slow ones are worth a trace slot.
const spanKeepMin = time.Millisecond

// InstrumentSpans makes every subsequent fork-join batch emit a
// "par-batch" span trace with one child span per worker, attributing
// batch wall time to the workers that carried it. Traces faster than 1ms
// only feed the per-phase statistics, not the trace stores. Passing nil
// turns span tracing off. Spans never influence scheduling or results,
// so the package's determinism contract is unaffected.
func InstrumentSpans(t *obs.SpanTracer) {
	if t == nil {
		spanTracer.Store(nil)
		return
	}
	spanTracer.Store(t)
}

// workerSpanNames caps the distinct worker phase names ("par-worker-0"
// ... ) fed into the tracer; counts beyond the cap share one label so
// huge machines cannot blow the tracer's phase map.
var workerSpanNames = func() []string {
	out := make([]string, 64)
	for i := range out {
		out[i] = "par-worker-" + strconv.Itoa(i)
	}
	return out
}()

func workerSpanName(w int) string {
	if w < len(workerSpanNames) {
		return workerSpanNames[w]
	}
	return "par-worker-hi"
}

// Instrument exports the pool's utilization through the given registry:
//
//	par_tasks_total            tasks (chunks and pool phases) executed
//	par_workers                currently resolved worker count
//	par_batch_latency_seconds  wall-clock latency of fork-join batches
//
// Passing nil turns instrumentation off again. Handles are registered
// eagerly so /metrics shows the families (with zero values) before the
// first parallel call.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		instrumented.Store(nil)
		return
	}
	reg.Help("par_tasks_total", "Parallel tasks executed by the shared execution layer (chunks and pool phases).")
	reg.Help("par_workers", "Worker count the parallel execution layer resolves for new batches.")
	reg.Help("par_batch_latency_seconds", "Wall-clock latency of fork-join batches (For/Chunks/Err/Map).")
	m := &parMetrics{
		tasks:   reg.Counter("par_tasks_total"),
		workers: reg.Gauge("par_workers"),
		latency: reg.Histogram("par_batch_latency_seconds", obs.LatencyBuckets()),
	}
	m.workers.Set(float64(Workers()))
	instrumented.Store(m)
}

// observeBatch records one completed fork-join batch: the number of
// chunks it dispatched and its wall-clock latency.
func observeBatch(chunks int, start time.Time) {
	m := metrics()
	if m == nil {
		return
	}
	m.tasks.Add(int64(chunks))
	m.latency.Observe(time.Since(start).Seconds())
}
