package elink

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"elink/internal/cluster"
	"elink/internal/metric"
	"elink/internal/sim"
	"elink/internal/topology"
)

// smoothField builds a spatially correlated scalar feature per node so
// clusterings are non-trivial: feature = step function over x plus mild
// noise.
func smoothField(g *topology.Graph, rng *rand.Rand, plateaus int, jump float64) []metric.Feature {
	min, max := g.BoundingBox()
	span := max.X - min.X
	if span == 0 {
		span = 1
	}
	feats := make([]metric.Feature, g.N())
	for u := range feats {
		band := int((g.Pos[u].X - min.X) / span * float64(plateaus))
		if band >= plateaus {
			band = plateaus - 1
		}
		feats[u] = metric.Feature{float64(band)*jump + rng.Float64()*0.1}
	}
	return feats
}

func constFeats(n int, v float64) []metric.Feature {
	fs := make([]metric.Feature, n)
	for i := range fs {
		fs[i] = metric.Feature{v}
	}
	return fs
}

func mustRun(t *testing.T, g *topology.Graph, cfg Config) *cluster.Result {
	t.Helper()
	res, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func validateResult(t *testing.T, g *topology.Graph, res *cluster.Result, feats []metric.Feature, m metric.Metric, delta float64) {
	t.Helper()
	if err := res.Clustering.Validate(g, feats, m, delta, 1e-9); err != nil {
		t.Fatalf("invalid clustering: %v", err)
	}
}

func TestImplicitSingleClusterWhenUniform(t *testing.T) {
	g := topology.NewGrid(6, 6)
	feats := constFeats(g.N(), 5)
	res := mustRun(t, g, Config{Delta: 1, Metric: metric.Scalar{}, Features: feats, Mode: Implicit})
	if res.Clustering.NumClusters() != 1 {
		t.Errorf("NumClusters = %d, want 1 for identical features", res.Clustering.NumClusters())
	}
	validateResult(t, g, res, feats, metric.Scalar{}, 1)
	// Only the level-0 sentinel should have expanded: later sentinels are
	// clustered before their timers fire, so no extra expand storms.
	if res.Stats.Breakdown[KindExpand] > int64(2*g.Edges()+4*g.N()) {
		t.Errorf("expand messages = %d, suspiciously many for one cluster", res.Stats.Breakdown[KindExpand])
	}
}

func TestExplicitSingleClusterWhenUniform(t *testing.T) {
	g := topology.NewGrid(6, 6)
	feats := constFeats(g.N(), 5)
	res := mustRun(t, g, Config{Delta: 1, Metric: metric.Scalar{}, Features: feats, Mode: Explicit})
	if res.Clustering.NumClusters() != 1 {
		t.Errorf("NumClusters = %d, want 1", res.Clustering.NumClusters())
	}
	validateResult(t, g, res, feats, metric.Scalar{}, 1)
	// Explicit signalling must actually pay for its synchronization.
	if res.Stats.Breakdown[KindPhase1] == 0 || res.Stats.Breakdown[KindPhase2] == 0 {
		t.Errorf("explicit run should produce phase traffic, got %v", res.Stats.Breakdown)
	}
}

func TestSingletonsWhenDeltaZero(t *testing.T) {
	g := topology.NewGrid(4, 4)
	rng := rand.New(rand.NewSource(1))
	feats := make([]metric.Feature, g.N())
	for i := range feats {
		feats[i] = metric.Feature{float64(i) + rng.Float64()} // all distinct
	}
	for _, mode := range []Mode{Implicit, Explicit} {
		res := mustRun(t, g, Config{Delta: 0.0001, Metric: metric.Scalar{}, Features: feats, Mode: mode})
		if res.Clustering.NumClusters() != g.N() {
			t.Errorf("%v: NumClusters = %d, want %d singletons", mode, res.Clustering.NumClusters(), g.N())
		}
	}
}

func TestPlateausClusterSpatially(t *testing.T) {
	g := topology.NewGrid(6, 12)
	rng := rand.New(rand.NewSource(2))
	feats := smoothField(g, rng, 3, 10) // three bands, jumps of 10
	for _, mode := range []Mode{Implicit, Explicit} {
		res := mustRun(t, g, Config{Delta: 2, Metric: metric.Scalar{}, Features: feats, Mode: mode})
		validateResult(t, g, res, feats, metric.Scalar{}, 2)
		n := res.Clustering.NumClusters()
		if n < 3 || n > 8 {
			t.Errorf("%v: NumClusters = %d, want close to the 3 plateaus", mode, n)
		}
	}
}

func TestPaperFig5Example(t *testing.T) {
	// Fig 5: an 8-node network; sentinel D expands for δ = 6. Feature
	// distances of every node to D: A=2, B=1, C=4, E=2, F=1, G=2, H=5.
	// Layout (communication graph): A-B-C on top row, D-E in middle
	// (B-D, B-E edges), F-G-H on bottom (D-F, F-G, G-H, E-G edges).
	// After D's expansion: cluster {A,B,D,E,F,G}; C (4 > 3) and H (5 > 3)
	// stay out.
	pos := []topology.Point{
		{X: 0, Y: 2}, {X: 1, Y: 2}, {X: 2, Y: 2}, // A B C
		{X: 0.4, Y: 1}, {X: 1.6, Y: 1}, // D E
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, // F G H
	}
	g := topology.NewGraph(pos)
	edges := [][2]topology.NodeID{
		{0, 1}, {1, 2}, // A-B, B-C
		{1, 3}, {1, 4}, // B-D, B-E
		{3, 5}, {4, 6}, // D-F, E-G
		{5, 6}, {6, 7}, // F-G, G-H
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	// Scalar features realizing the stated distances to D (=0):
	// A=2, B=1, C=4, D=0, E=2, F=-1, G=-2, H=-5. The δ/2 rule admits
	// |f| <= 3.
	feats := []metric.Feature{{2}, {1}, {4}, {0}, {2}, {-1}, {-2}, {-5}}

	// Force D to expand first by making it the level-0 sentinel: run a
	// single-sentinel expansion via a tiny custom config. Here we rely on
	// the quadtree electing the node nearest the centre; with this layout
	// that is D or E. Rather than fight the quadtree, simulate the
	// described expansion directly with Implicit mode and check the
	// invariant the example illustrates: D's cluster contains exactly the
	// nodes within δ/2 of D that are reachable through admitted members.
	res := mustRun(t, g, Config{Delta: 6, Metric: metric.Scalar{}, Features: feats, Mode: Implicit})
	validateResult(t, g, res, feats, metric.Scalar{}, 6)

	// C and H can never share a cluster with D: d(C,D)=4 and d(H,D)=5
	// exceed δ/2, and via any root r admitted with both, |f_C - f_H| = 9 > 6
	// would violate δ-compactness anyway.
	ci := res.Clustering.ClusterOf(3) // D
	if res.Clustering.ClusterOf(2) == ci && res.Clustering.ClusterOf(7) == ci {
		t.Error("C and H cannot both be clustered with D under δ=6")
	}
}

func TestExplicitMatchesImplicitQualityOnGrid(t *testing.T) {
	g := topology.NewGrid(8, 8)
	rng := rand.New(rand.NewSource(5))
	feats := smoothField(g, rng, 4, 6)
	imp := mustRun(t, g, Config{Delta: 2, Metric: metric.Scalar{}, Features: feats, Mode: Implicit})
	exp := mustRun(t, g, Config{Delta: 2, Metric: metric.Scalar{}, Features: feats, Mode: Explicit})
	ni, ne := imp.Clustering.NumClusters(), exp.Clustering.NumClusters()
	// The paper reports identical clusters; our executors may order
	// expansions slightly differently, so allow a whisker of slack.
	if math.Abs(float64(ni-ne)) > float64(ni)/2+2 {
		t.Errorf("implicit %d clusters vs explicit %d: too far apart", ni, ne)
	}
	// Explicit pays extra synchronization cost.
	if exp.Stats.Messages <= imp.Stats.Messages {
		t.Errorf("explicit (%d msgs) should cost more than implicit (%d msgs)", exp.Stats.Messages, imp.Stats.Messages)
	}
}

func TestMessageComplexityLinear(t *testing.T) {
	// Theorem 2: O(N) messages. Check messages-per-node stays bounded as
	// N grows by a factor of 4.
	perNode := func(side int) float64 {
		g := topology.NewGrid(side, side)
		rng := rand.New(rand.NewSource(7))
		feats := smoothField(g, rng, 3, 8)
		res := mustRun(t, g, Config{Delta: 2, Metric: metric.Scalar{}, Features: feats, Mode: Implicit})
		return float64(res.Stats.Messages) / float64(g.N())
	}
	small, large := perNode(8), perNode(16)
	if large > small*2.5 {
		t.Errorf("messages per node grew from %.1f to %.1f; not O(N)", small, large)
	}
}

func TestTimeComplexitySubLinear(t *testing.T) {
	// Theorem 2: O(sqrt(N) log N) time. Doubling the side (4x nodes)
	// should roughly double the finish time, not quadruple it.
	finish := func(side int) float64 {
		g := topology.NewGrid(side, side)
		rng := rand.New(rand.NewSource(7))
		feats := smoothField(g, rng, 3, 8)
		res := mustRun(t, g, Config{Delta: 2, Metric: metric.Scalar{}, Features: feats, Mode: Implicit})
		return res.Stats.Time
	}
	t8, t16 := finish(8), finish(16)
	if t16 > 3.2*t8 {
		t.Errorf("time grew from %.1f to %.1f (ratio %.2f); want ~2x for 4x nodes", t8, t16, t16/t8)
	}
}

func TestSwitchBudgetRespected(t *testing.T) {
	g := topology.NewGrid(6, 6)
	rng := rand.New(rand.NewSource(9))
	feats := smoothField(g, rng, 3, 5)
	// MaxSwitches = -1 is not representable; 0 means default. Use 1 and
	// confirm runs stay valid; the budget bounds messages.
	res1 := mustRun(t, g, Config{Delta: 2, MaxSwitches: 1, Metric: metric.Scalar{}, Features: feats, Mode: Implicit})
	res8 := mustRun(t, g, Config{Delta: 2, MaxSwitches: 8, Metric: metric.Scalar{}, Features: feats, Mode: Implicit})
	validateResult(t, g, res1, feats, metric.Scalar{}, 2)
	validateResult(t, g, res8, feats, metric.Scalar{}, 2)
	if res8.Stats.Messages < res1.Stats.Messages {
		t.Errorf("a larger switch budget should not reduce messages: c=1 %d, c=8 %d",
			res1.Stats.Messages, res8.Stats.Messages)
	}
}

func TestUnorderedModeFasterButWorse(t *testing.T) {
	g := topology.NewGrid(10, 10)
	rng := rand.New(rand.NewSource(13))
	feats := smoothField(g, rng, 4, 6)
	ordered := mustRun(t, g, Config{Delta: 2, Metric: metric.Scalar{}, Features: feats, Mode: Implicit})
	unordered := mustRun(t, g, Config{Delta: 2, Metric: metric.Scalar{}, Features: feats, Mode: Unordered})
	validateResult(t, g, unordered, feats, metric.Scalar{}, 2)
	if unordered.Stats.Time >= ordered.Stats.Time {
		t.Errorf("unordered time %v should beat ordered %v", unordered.Stats.Time, ordered.Stats.Time)
	}
	if unordered.Clustering.NumClusters() < ordered.Clustering.NumClusters() {
		t.Errorf("unordered (%d clusters) should not beat ordered (%d): contention should hurt quality",
			unordered.Clustering.NumClusters(), ordered.Clustering.NumClusters())
	}
}

func TestRandomTopologiesAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := topology.RandomGeometricForDegree(80, 4, rng)
		feats := smoothField(g, rng, 3, 8)
		for _, mode := range []Mode{Implicit, Explicit, Unordered} {
			res, err := Run(g, Config{Delta: 2.5, Metric: metric.Scalar{}, Features: feats, Mode: mode, Seed: seed})
			if err != nil {
				t.Fatalf("seed %d mode %v: %v", seed, mode, err)
			}
			if err := res.Clustering.Validate(g, feats, metric.Scalar{}, 2.5, 1e-9); err != nil {
				t.Fatalf("seed %d mode %v: %v", seed, mode, err)
			}
		}
	}
}

func TestRejectsInvalidDelayBounds(t *testing.T) {
	g := topology.NewGrid(2, 2)
	feats := constFeats(g.N(), 0)
	for _, d := range []sim.UniformDelay{
		{Min: 2, Max: 1},  // inverted: would draw negative delays
		{Min: -1, Max: 1}, // negative: events scheduled in the past
	} {
		_, err := Run(g, Config{Delta: 1, Metric: metric.Scalar{}, Features: feats, Delay: d})
		if err == nil {
			t.Errorf("Run accepted invalid delay bounds %+v", d)
		} else if !strings.Contains(err.Error(), "UniformDelay") {
			t.Errorf("error %q does not name the delay bounds", err)
		}
	}
}

func TestExplicitWithAsyncDelaysStillValid(t *testing.T) {
	g := topology.NewGrid(7, 7)
	rng := rand.New(rand.NewSource(21))
	feats := smoothField(g, rng, 3, 8)
	res := mustRun(t, g, Config{
		Delta: 2, Metric: metric.Scalar{}, Features: feats, Mode: Explicit,
		Delay: sim.UniformDelay{Min: 0.1, Max: 2.5}, Seed: 4,
	})
	validateResult(t, g, res, feats, metric.Scalar{}, 2)
}

func TestRunAsyncGoroutineRuntime(t *testing.T) {
	g := topology.NewGrid(6, 6)
	rng := rand.New(rand.NewSource(31))
	feats := smoothField(g, rng, 3, 8)
	cfg := Config{Delta: 2, Metric: metric.Scalar{}, Features: feats, Mode: Explicit}
	res, err := RunAsync(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	validateResult(t, g, res, feats, metric.Scalar{}, 2)
	if res.Stats.Messages == 0 {
		t.Error("async run recorded no messages")
	}
}

func TestRunAsyncRejectsNonExplicit(t *testing.T) {
	g := topology.NewGrid(2, 2)
	feats := constFeats(4, 0)
	if _, err := RunAsync(g, Config{Delta: 1, Metric: metric.Scalar{}, Features: feats, Mode: Implicit}); err == nil {
		t.Error("RunAsync should reject implicit mode")
	}
}

func TestConfigValidation(t *testing.T) {
	g := topology.NewGrid(2, 2)
	if _, err := Run(g, Config{Delta: -1, Metric: metric.Scalar{}, Features: constFeats(4, 0)}); err == nil {
		t.Error("negative delta accepted")
	}
	if _, err := Run(g, Config{Delta: 1, Features: constFeats(4, 0)}); err == nil {
		t.Error("nil metric accepted")
	}
	if _, err := Run(g, Config{Delta: 1, Metric: metric.Scalar{}, Features: constFeats(3, 0)}); err == nil {
		t.Error("feature count mismatch accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	g := topology.NewGrid(8, 8)
	rng := rand.New(rand.NewSource(3))
	feats := smoothField(g, rng, 3, 8)
	cfg := Config{Delta: 2, Metric: metric.Scalar{}, Features: feats, Mode: Explicit, Seed: 11}
	a := mustRun(t, g, cfg)
	b := mustRun(t, g, cfg)
	if a.Clustering.NumClusters() != b.Clustering.NumClusters() || a.Stats.Messages != b.Stats.Messages {
		t.Error("event-driven runs with the same seed should be identical")
	}
	for u := range a.Clustering.Assign {
		if a.Clustering.Assign[u] != b.Clustering.Assign[u] {
			t.Fatalf("assignment differs at node %d", u)
		}
	}
}

func TestModeString(t *testing.T) {
	if Implicit.String() != "implicit" || Explicit.String() != "explicit" || Unordered.String() != "unordered" {
		t.Error("Mode.String mismatch")
	}
	if Mode(42).String() != "Mode(42)" {
		t.Error("unknown mode should format numerically")
	}
}

// Property over many seeds: every member lies within δ of its cluster's
// recorded root (within δ/2 of the protocol root by the expansion rule;
// components stranded by switches may re-root at an arbitrary member, in
// which case the triangle inequality still bounds the distance by δ).
func TestRootDeltaInvariant(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		g := topology.RandomGeometricForDegree(60, 4, rng)
		feats := smoothField(g, rng, 4, 4)
		delta := 2.0
		res, err := Run(g, Config{Delta: delta, Metric: metric.Scalar{}, Features: feats, Mode: Implicit, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		c := res.Clustering
		for ci, members := range c.Members {
			root := c.Roots[ci]
			for _, u := range members {
				if d := (metric.Scalar{}).Distance(feats[root], feats[u]); d > delta+1e-9 {
					t.Fatalf("seed %d: node %d at distance %v from root %d, exceeds δ=%v", seed, u, d, root, delta)
				}
			}
		}
	}
}

func TestImplicitSurvivesMessageLoss(t *testing.T) {
	// Fault injection: with lossy radios the implicit technique degrades
	// gracefully — every node still self-clusters on its own sentinel
	// timer, and the δ-invariant holds for whatever clusters form.
	g := topology.NewGrid(8, 8)
	rng := rand.New(rand.NewSource(41))
	feats := smoothField(g, rng, 3, 8)
	clean := mustRun(t, g, Config{Delta: 2, Metric: metric.Scalar{}, Features: feats, Mode: Implicit, Seed: 5})
	lossy := mustRun(t, g, Config{Delta: 2, Metric: metric.Scalar{}, Features: feats, Mode: Implicit, Seed: 5, Loss: 0.15})
	validateResult(t, g, lossy, feats, metric.Scalar{}, 2)
	if lossy.Clustering.NumClusters() < clean.Clustering.NumClusters() {
		t.Errorf("loss should not improve quality: lossy %d vs clean %d clusters",
			lossy.Clustering.NumClusters(), clean.Clustering.NumClusters())
	}
}

func TestExplicitFailsDetectablyUnderHeavyLoss(t *testing.T) {
	// The explicit technique depends on its synchronization wave; under
	// heavy loss it must fail loudly (unclustered nodes reported), never
	// hang and never return an invalid clustering.
	g := topology.NewGrid(8, 8)
	rng := rand.New(rand.NewSource(43))
	feats := smoothField(g, rng, 3, 8)
	res, err := Run(g, Config{Delta: 2, Metric: metric.Scalar{}, Features: feats, Mode: Explicit, Seed: 7, Loss: 0.4})
	if err == nil {
		// A lucky run may still complete; then it must be valid.
		validateResult(t, g, res, feats, metric.Scalar{}, 2)
		return
	}
	if !strings.Contains(err.Error(), "unclustered") {
		t.Errorf("err = %v, want an unclustered-node report", err)
	}
}

func TestImplicitWorksOnDisconnectedNetwork(t *testing.T) {
	// Two separate 2x2 grids; implicit mode clusters each component via
	// its own sentinels (explicit mode refuses, below).
	pos := []topology.Point{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1},
		{X: 10, Y: 0}, {X: 11, Y: 0}, {X: 10, Y: 1}, {X: 11, Y: 1},
	}
	g := topology.NewGraph(pos)
	for _, e := range [][2]topology.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {4, 5}, {4, 6}, {5, 7}, {6, 7}} {
		g.AddEdge(e[0], e[1])
	}
	feats := constFeats(8, 1)
	res := mustRun(t, g, Config{Delta: 1, Metric: metric.Scalar{}, Features: feats, Mode: Implicit})
	validateResult(t, g, res, feats, metric.Scalar{}, 1)
	if res.Clustering.NumClusters() != 2 {
		t.Errorf("NumClusters = %d, want one per component", res.Clustering.NumClusters())
	}
}

func TestExplicitRejectsDisconnectedNetwork(t *testing.T) {
	g := topology.NewGraph([]topology.Point{{X: 0, Y: 0}, {X: 9, Y: 9}})
	feats := constFeats(2, 0)
	if _, err := Run(g, Config{Delta: 1, Metric: metric.Scalar{}, Features: feats, Mode: Explicit}); err == nil {
		t.Error("explicit mode accepted a disconnected network")
	}
}

func TestPathGraphTopology(t *testing.T) {
	// A degenerate 1xN path stresses the quadtree (deep, skinny cells)
	// and the expansion chain.
	g := topology.NewGrid(1, 40)
	feats := make([]metric.Feature, 40)
	for i := range feats {
		feats[i] = metric.Feature{float64(i / 10)} // 4 plateaus
	}
	for _, mode := range []Mode{Implicit, Explicit} {
		res := mustRun(t, g, Config{Delta: 0.5, Metric: metric.Scalar{}, Features: feats, Mode: mode})
		validateResult(t, g, res, feats, metric.Scalar{}, 0.5)
		// Optimal is 4; same-level sentinel races may split a plateau.
		if n := res.Clustering.NumClusters(); n < 4 || n > 6 {
			t.Errorf("%v: NumClusters = %d, want close to the 4 plateaus", mode, n)
		}
	}
}

func TestStarTopology(t *testing.T) {
	// A hub with 20 leaves: the hub's feature decides who can join whom.
	n := 21
	pos := make([]topology.Point, n)
	pos[0] = topology.Point{X: 0, Y: 0}
	for i := 1; i < n; i++ {
		ang := float64(i) / float64(n-1) * 2 * math.Pi
		pos[i] = topology.Point{X: math.Cos(ang), Y: math.Sin(ang)}
	}
	g := topology.NewGraph(pos)
	for i := 1; i < n; i++ {
		g.AddEdge(0, topology.NodeID(i))
	}
	feats := make([]metric.Feature, n)
	feats[0] = metric.Feature{0}
	for i := 1; i < n; i++ {
		feats[i] = metric.Feature{float64(i % 2)} // alternating 0/1 leaves
	}
	for _, mode := range []Mode{Implicit, Explicit} {
		res := mustRun(t, g, Config{Delta: 0.5, Metric: metric.Scalar{}, Features: feats, Mode: mode, Seed: 3})
		validateResult(t, g, res, feats, metric.Scalar{}, 0.5)
		// Feature-1 leaves can never join the hub's cluster (d=1 > δ/2)
		// and are pairwise non-adjacent: they must all be singletons.
		ones := 0
		for ci, mem := range res.Clustering.Members {
			if feats[mem[0]][0] == 1 {
				ones++
				if len(mem) != 1 {
					t.Errorf("%v: cluster %d of feature-1 leaves has %d members, want singleton", mode, ci, len(mem))
				}
			}
		}
		if ones != 10 {
			t.Errorf("%v: feature-1 singletons = %d, want 10", mode, ones)
		}
	}
}

func TestLossConfigValidation(t *testing.T) {
	g := topology.NewGrid(2, 2)
	feats := constFeats(4, 0)
	for _, loss := range []float64{-0.1, 1.0, 1.5} {
		if _, err := Run(g, Config{Delta: 1, Metric: metric.Scalar{}, Features: feats, Loss: loss}); err == nil {
			t.Errorf("loss %v accepted", loss)
		}
	}
}

// Property: for arbitrary random geometric topologies, fields and deltas,
// the ELink result always passes full δ-clustering validation and the
// message count stays within the d(c+1)N-flavoured linear bound.
func TestELinkInvariantsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(60)
		g := topology.RandomGeometricForDegree(n, 3+rng.Float64()*3, rng)
		feats := make([]metric.Feature, g.N())
		for i := range feats {
			feats[i] = metric.Feature{rng.NormFloat64() * 3}
		}
		delta := 0.5 + rng.Float64()*4
		res, err := Run(g, Config{Delta: delta, Metric: metric.Scalar{}, Features: feats, Mode: Implicit, Seed: seed})
		if err != nil {
			return false
		}
		if err := res.Clustering.Validate(g, feats, metric.Scalar{}, delta, 1e-9); err != nil {
			return false
		}
		d := int64(g.MaxDegree())
		c := int64(4)
		bound := d * (c + 2) * int64(g.N())
		return res.Stats.Messages <= bound
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Conservation laws of the explicit protocol: every expand gets exactly
// one ack1-or-nack reply, and every join (ack1) eventually completes with
// exactly one ack2. These hold on any topology and any field.
func TestExplicitMessageConservationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := topology.RandomGeometricForDegree(25+rng.Intn(50), 4, rng)
		feats := make([]metric.Feature, g.N())
		for i := range feats {
			feats[i] = metric.Feature{rng.NormFloat64() * 2}
		}
		res, err := Run(g, Config{Delta: 1 + rng.Float64()*3, Metric: metric.Scalar{}, Features: feats, Mode: Explicit, Seed: seed})
		if err != nil {
			return false
		}
		b := res.Stats.Breakdown
		if b[KindExpand] != b[KindAck1]+b[KindNack] {
			return false
		}
		return b[KindAck2] == b[KindAck1]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAsyncConservationHoldsToo(t *testing.T) {
	g := topology.NewGrid(7, 7)
	rng := rand.New(rand.NewSource(8))
	feats := smoothField(g, rng, 3, 6)
	res, err := RunAsync(g, Config{Delta: 2, Metric: metric.Scalar{}, Features: feats, Mode: Explicit})
	if err != nil {
		t.Fatal(err)
	}
	b := res.Stats.Breakdown
	if b[KindExpand] != b[KindAck1]+b[KindNack] {
		t.Errorf("expand %d != ack1 %d + nack %d", b[KindExpand], b[KindAck1], b[KindNack])
	}
	if b[KindAck2] != b[KindAck1] {
		t.Errorf("ack2 %d != ack1 %d", b[KindAck2], b[KindAck1])
	}
}

func TestRunAsyncLargeGridUnderConcurrency(t *testing.T) {
	if testing.Short() {
		t.Skip("large async run")
	}
	g := topology.NewGrid(15, 15)
	rng := rand.New(rand.NewSource(61))
	feats := smoothField(g, rng, 4, 6)
	res, err := RunAsync(g, Config{Delta: 2, Metric: metric.Scalar{}, Features: feats, Mode: Explicit})
	if err != nil {
		t.Fatal(err)
	}
	validateResult(t, g, res, feats, metric.Scalar{}, 2)
	b := res.Stats.Breakdown
	if b[KindExpand] != b[KindAck1]+b[KindNack] || b[KindAck2] != b[KindAck1] {
		t.Errorf("conservation violated at scale: %v", b)
	}
}
