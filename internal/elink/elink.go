// Package elink implements the paper's core contribution: the ELink
// distributed δ-clustering algorithm (paper §3–§5).
//
// ELink grows clusters from sentinel nodes — the quadtree cell leaders —
// level by level. The single level-0 sentinel expands first; once its
// cluster is δ-compact the level-1 sentinels start, and so on, until every
// node is clustered. A sentinel elects itself cluster root and includes a
// neighbour j whenever d(F_root, F_j) ≤ δ/2; the triangle inequality then
// bounds every intra-cluster pair by δ. Nodes may switch clusters up to c
// times when the new root is a strict improvement (gain > φ) at the same
// sentinel level.
//
// Two signalling techniques order the sentinel levels:
//
//   - Implicit (§4, synchronous networks): every sentinel at level l
//     starts on a local timer at T = Σ_{j<l} t_j, where t_l is the
//     worst-case expansion budget derived from κ = (1+γ)√(N/2).
//   - Explicit (§5, asynchronous networks): a completion wave (ack1/ack2
//     up the cluster trees, phase1 up the quadtree, phase2 back down,
//     start to the next level) replaces the timers.
//
// Both run in O(√N log N) time and O(N) messages (Theorems 2 and 3).
package elink

import (
	"fmt"

	"elink/internal/cluster"
	"elink/internal/metric"
	"elink/internal/obs"
	"elink/internal/sim"
	"elink/internal/topology"
)

// Mode selects the signalling technique.
type Mode int

const (
	// Implicit is the timer-driven technique for synchronous networks.
	Implicit Mode = iota
	// Explicit is the synchronization-wave technique for asynchronous
	// networks.
	Explicit
	// Unordered is the ablation sketched at the end of §5: the level
	// schedule is compressed to one time unit per level, so sentinel sets
	// race each other. It finishes in O(√N) time but clusters worse.
	Unordered
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Implicit:
		return "implicit"
	case Explicit:
		return "explicit"
	case Unordered:
		return "unordered"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Message kinds emitted by the protocol, exported so experiments can
// decompose costs.
const (
	KindExpand = "expand"
	KindAck1   = "ack1"
	KindNack   = "nack"
	KindAck2   = "ack2"
	KindPhase1 = "phase1"
	KindPhase2 = "phase2"
	KindStart  = "start"
)

// Config parameterizes a clustering run.
type Config struct {
	// Delta is the dissimilarity threshold δ of Definition 1.
	Delta float64
	// Phi is the quality gain a clustered node must see before switching
	// clusters. Defaults to 0.1·Delta, the paper's experimental setting.
	Phi float64
	// MaxSwitches is the paper's constant c (default 4).
	MaxSwitches int
	// Gamma is the path stretch factor used by the implicit schedule
	// (default 0.3, the middle of the paper's 0.2–0.4 range).
	Gamma float64
	// Metric measures feature dissimilarity; it must be a true metric.
	Metric metric.Metric
	// Features holds one feature per node.
	Features []metric.Feature
	// Mode selects implicit, explicit or unordered signalling.
	Mode Mode
	// Delay overrides the hop delay model (nil = synchronous unit delay).
	Delay sim.DelayModel
	// Loss injects independent per-hop message loss with the given
	// probability (fault injection). Implicit mode degrades gracefully —
	// every node still self-clusters on its own timer, at reduced
	// quality. Explicit mode may fail to cluster some nodes when
	// synchronization messages are lost; Run then returns an error
	// instead of a partial clustering.
	Loss float64
	// Seed drives any randomized delay model and the loss process.
	Seed int64
	// Obs, when non-nil, receives live message counters for the run
	// (sim_messages_total{scope="elink",kind}) plus a completion summary:
	// elink_runs_total, elink_run_rounds / elink_run_messages histograms
	// and the elink_clusters gauge, all labelled by signalling mode.
	Obs *obs.Registry
	// Trace, when non-nil, receives one event per simulated round (round
	// number, messages by kind, nodes active) and a final "converged"
	// event — the raw data behind the O(√N log N) round claim.
	Trace *obs.Tracer
}

func (c *Config) withDefaults(n int) Config {
	out := *c
	if out.Phi == 0 {
		out.Phi = 0.1 * out.Delta
	}
	if out.MaxSwitches == 0 {
		out.MaxSwitches = 4
	}
	if out.Gamma == 0 {
		out.Gamma = 0.3
	}
	return out
}

func (c *Config) validate(g *topology.Graph) error {
	if c.Delta < 0 {
		return fmt.Errorf("elink: negative delta %v", c.Delta)
	}
	if c.Metric == nil {
		return fmt.Errorf("elink: nil metric")
	}
	if len(c.Features) != g.N() {
		return fmt.Errorf("elink: %d features for %d nodes", len(c.Features), g.N())
	}
	if c.Loss < 0 || c.Loss >= 1 {
		return fmt.Errorf("elink: loss %v out of [0,1)", c.Loss)
	}
	if c.Delay != nil {
		// Reject inverted/negative delay bounds here with an error; the
		// simulator would otherwise panic before scheduling events in
		// the past (sim.ValidateDelay).
		if err := sim.ValidateDelay(c.Delay); err != nil {
			return fmt.Errorf("elink: %w", err)
		}
	}
	if c.Mode == Explicit && !g.Connected() {
		// The synchronization wave routes between quadtree cell leaders;
		// a partitioned network cannot deliver it. (Implicit mode works
		// per component: every node self-clusters on its own timer.)
		return fmt.Errorf("elink: explicit signalling requires a connected network")
	}
	return nil
}

// Run executes ELink on g and returns the resulting δ-clustering together
// with its communication cost. The returned clustering is normalized so
// every cluster's induced subgraph is connected (see
// Clustering.SplitDisconnected).
func Run(g *topology.Graph, cfg Config) (*cluster.Result, error) {
	if err := cfg.validate(g); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(g.N())
	qt := topology.BuildQuadtree(g)
	sh := newShared(g, qt, cfg)

	net := sim.NewNetwork(g, cfg.Delay, cfg.Seed)
	net.Instrument(cfg.Obs, cfg.Trace, "elink")
	if cfg.Loss > 0 {
		net.SetLoss(cfg.Loss)
	}
	nodes := make([]*node, g.N())
	for u := range nodes {
		nodes[u] = newNode(topology.NodeID(u), sh)
		net.SetProtocol(topology.NodeID(u), nodes[u])
	}
	end := net.Run()

	res, err := assemble(g, nodes, cluster.Stats{
		Messages:  net.TotalMessages(),
		Breakdown: net.MessageBreakdown(),
		Time:      end,
	})
	if err != nil {
		return nil, err
	}
	observeRun(cfg, res, end)
	return res, nil
}

// observeRun publishes a completed run's summary into the configured
// observability sinks. With the synchronous unit-delay model the run's
// end time is its round count, the quantity Theorem 2/3 bound by
// O(√N log N).
func observeRun(cfg Config, res *cluster.Result, end float64) {
	mode := cfg.Mode.String()
	if cfg.Obs != nil {
		cfg.Obs.Help("elink_runs_total", "Completed ELink clustering runs by signalling mode.")
		cfg.Obs.Help("elink_run_rounds", "Rounds (simulated time) per ELink run.")
		cfg.Obs.Help("elink_run_messages", "Total radio transmissions per ELink run.")
		cfg.Obs.Help("elink_clusters", "Cluster count of the most recent ELink run.")
		cfg.Obs.Counter("elink_runs_total", "mode", mode).Inc()
		cfg.Obs.Histogram("elink_run_rounds", obs.RoundBuckets(), "mode", mode).Observe(end)
		cfg.Obs.Histogram("elink_run_messages", obs.MessageBuckets(), "mode", mode).Observe(float64(res.Stats.Messages))
		cfg.Obs.Gauge("elink_clusters", "mode", mode).Set(float64(res.Clustering.NumClusters()))
	}
	cfg.Trace.Record(obs.Event{
		Scope: "elink", Kind: "converged", Time: end,
		Fields: map[string]float64{
			"clusters": float64(res.Clustering.NumClusters()),
			"messages": float64(res.Stats.Messages),
			"rounds":   end,
		},
	})
}

// RunAsync executes the explicit-signalling protocol on the goroutine
// runtime (one goroutine per node, channels as links). The clustering it
// returns satisfies the same invariants as Run's, but the exact clusters
// depend on the scheduler's interleaving. The Obs/Trace sinks are not
// wired here: the goroutine runtime has no synchronous round structure
// to trace (use Run for instrumented experiments).
func RunAsync(g *topology.Graph, cfg Config) (*cluster.Result, error) {
	if err := cfg.validate(g); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(g.N())
	if cfg.Mode != Explicit {
		return nil, fmt.Errorf("elink: RunAsync requires Explicit mode (timers on the async runtime are conservative; use Run for %v)", cfg.Mode)
	}
	qt := topology.BuildQuadtree(g)
	sh := newShared(g, qt, cfg)

	net := sim.NewAsyncNetwork(g, cfg.Seed)
	nodes := make([]*node, g.N())
	for u := range nodes {
		nodes[u] = newNode(topology.NodeID(u), sh)
		net.SetProtocol(topology.NodeID(u), nodes[u])
	}
	end := net.Run()

	return assemble(g, nodes, cluster.Stats{
		Messages:  net.TotalMessages(),
		Breakdown: net.MessageBreakdown(),
		Time:      end,
	})
}

func assemble(g *topology.Graph, nodes []*node, stats cluster.Stats) (*cluster.Result, error) {
	rootOf := make([]topology.NodeID, g.N())
	for u, nd := range nodes {
		if !nd.clustered {
			return nil, fmt.Errorf("elink: node %d finished unclustered (lost synchronization messages under fault injection, or a protocol bug)", u)
		}
		rootOf[u] = nd.root
	}
	c := cluster.FromRoots(rootOf).SplitDisconnected(g)
	return &cluster.Result{Clustering: c, Stats: stats}, nil
}

// shared holds the immutable inputs every node reads.
type shared struct {
	g   *topology.Graph
	qt  *topology.Quadtree
	cfg Config

	// Implicit schedule.
	starts []float64

	// Explicit-mode cell bookkeeping, all derived from the quadtree.
	maxDepth []int // per cell: deepest occupied level in its subtree
}

func newShared(g *topology.Graph, qt *topology.Quadtree, cfg Config) *shared {
	sh := &shared{g: g, qt: qt, cfg: cfg}
	starts, _ := qt.ImplicitSchedule(g.N(), cfg.Gamma)
	sh.starts = starts
	sh.maxDepth = make([]int, len(qt.Cells))
	// Cells are created parent-before-children, so a reverse sweep
	// propagates subtree depths upward.
	for i := len(qt.Cells) - 1; i >= 0; i-- {
		c := &qt.Cells[i]
		sh.maxDepth[i] = c.Level
		for _, ch := range c.Children {
			if sh.maxDepth[ch] > sh.maxDepth[i] {
				sh.maxDepth[i] = sh.maxDepth[ch]
			}
		}
	}
	return sh
}

func (sh *shared) feature(u topology.NodeID) metric.Feature { return sh.cfg.Features[u] }

func (sh *shared) dist(a, b metric.Feature) float64 { return sh.cfg.Metric.Distance(a, b) }

// cellsLedBy returns the cells u leads, shallowest first.
func (sh *shared) cellsLedBy(u topology.NodeID) []int {
	var out []int
	for _, c := range sh.qt.Cells {
		if c.Leader == u {
			out = append(out, c.ID)
		}
	}
	return out
}

// expandPayload carries a cluster-expansion offer.
type expandPayload struct {
	Root     topology.NodeID
	RootFeat metric.Feature
	Level    int   // sentinel level of the cluster root (the paper's n)
	Epoch    int64 // the sender's expansion session, for ack routing
}

// replyPayload references the expansion session being acknowledged.
type replyPayload struct {
	Epoch int64
}

// phasePayload carries the synchronization round between cell leaders.
type phasePayload struct {
	Round  int
	ToCell int
}

// startPayload instructs a cell leader to run its ELink obligation.
type startPayload struct {
	ToCell int
}

// session tracks one expansion wave a node initiated: the expand batch it
// sent, the replies still outstanding, and the cluster-tree children it
// acquired. Completion (no pending replies, no live children) propagates
// an ack2 to the session's parent — or, for a sentinel's root session,
// reports the cluster's expansion as finished to the quadtree machinery.
type session struct {
	epoch       int64
	parent      topology.NodeID // cluster-tree parent; -1 for a root session
	parentEpoch int64
	pending     int // outstanding ack1/nack replies
	children    int
	done        bool
	cellID      int // obligation fulfilled by this root session; -1 otherwise
}

// node is the per-sensor protocol state machine.
type node struct {
	sh *shared
	id topology.NodeID

	// Cluster membership (the paper's ⟨r_i, F_{r_i}, p⟩ plus level m).
	clustered bool
	root      topology.NodeID
	rootFeat  metric.Feature
	parent    topology.NodeID
	level     int // m: sentinel level of the cluster that holds this node

	switches  int
	nextEpoch int64
	sessions  map[int64]*session

	// Session of the most recent join, so a later switch can be related
	// to the right obligations. (Sessions complete independently, so no
	// cleanup is needed on switch.)
	// Explicit-mode per-cell synchronization state, keyed by cell id.
	phase1Seen map[int]int // phase1 replies received for the active round
	obligated  map[int]bool
}

func newNode(id topology.NodeID, sh *shared) *node {
	return &node{
		sh:         sh,
		id:         id,
		root:       -1,
		parent:     -1,
		level:      -1,
		sessions:   make(map[int64]*session),
		phase1Seen: make(map[int]int),
		obligated:  make(map[int]bool),
	}
}

func (n *node) explicit() bool { return n.sh.cfg.Mode == Explicit }

// Init implements sim.Protocol.
func (n *node) Init(ctx sim.Context) {
	switch n.sh.cfg.Mode {
	case Implicit, Unordered:
		for _, cid := range n.sh.cellsLedBy(n.id) {
			l := n.sh.qt.Cells[cid].Level
			var at float64
			if n.sh.cfg.Mode == Implicit {
				at = n.sh.starts[l]
			} else {
				at = float64(l) // compressed schedule: one unit per level
			}
			ctx.SetTimer(at, fmt.Sprintf("elink:%d", l))
		}
	case Explicit:
		// Only the root-cell leader self-starts; everything else waits
		// for the synchronization wave.
		if n.sh.qt.Cells[0].Leader == n.id {
			n.runObligation(ctx, 0)
		}
	}
}

// OnTimer implements sim.Protocol (implicit signalling, Fig 17).
func (n *node) OnTimer(ctx sim.Context, key string) {
	var l int
	if _, err := fmt.Sscanf(key, "elink:%d", &l); err != nil {
		return
	}
	n.startCluster(ctx, l, -1)
}

// startCluster is the paper's ELink(i): if unclustered, become the root of
// a new cluster at sentinel level l and expand. cellID, when >= 0, is the
// explicit-mode obligation this start fulfils.
func (n *node) startCluster(ctx sim.Context, l int, cellID int) {
	if n.clustered {
		if cellID >= 0 {
			n.reportObligation(ctx, cellID)
		}
		return
	}
	n.clustered = true
	n.root = n.id
	n.rootFeat = n.sh.feature(n.id)
	n.parent = n.id
	n.level = l

	s := n.newSession(-1, 0, cellID)
	n.broadcastExpand(ctx, s, -1)
	n.maybeComplete(ctx, s)
}

func (n *node) newSession(parent topology.NodeID, parentEpoch int64, cellID int) *session {
	epoch := int64(n.id)<<32 | n.nextEpoch
	n.nextEpoch++
	s := &session{epoch: epoch, parent: parent, parentEpoch: parentEpoch, cellID: cellID}
	n.sessions[epoch] = s
	return s
}

// broadcastExpand offers the current cluster to every neighbour except
// the one the node just joined through.
func (n *node) broadcastExpand(ctx sim.Context, s *session, except topology.NodeID) {
	p := expandPayload{Root: n.root, RootFeat: n.rootFeat, Level: n.level, Epoch: s.epoch}
	for _, nb := range ctx.Neighbors() {
		if nb == except {
			continue
		}
		ctx.Send(nb, KindExpand, p)
		s.pending++
	}
}

// OnMessage implements sim.Protocol.
func (n *node) OnMessage(ctx sim.Context, msg sim.Message) {
	switch msg.Kind {
	case KindExpand:
		n.onExpand(ctx, msg)
	case KindAck1:
		p := msg.Payload.(replyPayload)
		if s := n.sessions[p.Epoch]; s != nil {
			s.pending--
			s.children++
			n.maybeComplete(ctx, s)
		}
	case KindNack:
		p := msg.Payload.(replyPayload)
		if s := n.sessions[p.Epoch]; s != nil {
			s.pending--
			n.maybeComplete(ctx, s)
		}
	case KindAck2:
		p := msg.Payload.(replyPayload)
		if s := n.sessions[p.Epoch]; s != nil {
			s.children--
			n.maybeComplete(ctx, s)
		}
	case KindPhase1:
		n.onPhase1(ctx, msg.Payload.(phasePayload))
	case KindPhase2:
		n.onPhase2(ctx, msg.Payload.(phasePayload))
	case KindStart:
		p := msg.Payload.(startPayload)
		n.runObligation(ctx, p.ToCell)
	}
}

// onExpand applies Fig 16's join/switch rule.
func (n *node) onExpand(ctx sim.Context, msg sim.Message) {
	p := msg.Payload.(expandPayload)
	dNew := n.sh.dist(p.RootFeat, n.sh.feature(n.id))

	join := false
	if dNew <= n.sh.cfg.Delta/2 {
		if !n.clustered {
			join = true
		} else if p.Root != n.root && p.Level == n.level && n.switches < n.sh.cfg.MaxSwitches {
			// Switch for a strict quality gain above φ (the paper's
			// prose), or — the convergent rendering of Fig 16's
			// permissive "< d_old + φ" guard — on a tie, toward the
			// smaller root id, so equal-feature regions grown by racing
			// same-level sentinels consolidate instead of fragmenting.
			// See DESIGN.md.
			dOld := n.sh.dist(n.rootFeat, n.sh.feature(n.id))
			if dNew < dOld-n.sh.cfg.Phi || (dNew <= dOld && p.Root < n.root) {
				join = true
			}
		}
	}
	if !join {
		if n.explicit() {
			ctx.Send(msg.From, KindNack, replyPayload{Epoch: p.Epoch})
		}
		return
	}

	if n.clustered {
		n.switches++
	}
	n.clustered = true
	n.root = p.Root
	n.rootFeat = p.RootFeat
	n.parent = msg.From
	n.level = p.Level

	var s *session
	if n.explicit() {
		ctx.Send(msg.From, KindAck1, replyPayload{Epoch: p.Epoch})
		s = n.newSession(msg.From, p.Epoch, -1)
	} else {
		s = n.newSession(-1, 0, -1)
	}
	n.broadcastExpand(ctx, s, msg.From)
	n.maybeComplete(ctx, s)
}

// maybeComplete fires a session's completion side effects once.
func (n *node) maybeComplete(ctx sim.Context, s *session) {
	if !n.explicit() || s.done || s.pending != 0 || s.children != 0 {
		return
	}
	s.done = true
	if s.parent >= 0 {
		ctx.Send(s.parent, KindAck2, replyPayload{Epoch: s.parentEpoch})
		return
	}
	if s.cellID >= 0 {
		n.reportObligation(ctx, s.cellID)
	}
}

// --- Explicit signalling: the quadtree synchronization wave (Fig 18) ---

// runObligation handles a start signal for the given cell: cluster if
// still unclustered, then report completion into the phase1 wave.
func (n *node) runObligation(ctx sim.Context, cellID int) {
	if n.obligated[cellID] {
		return
	}
	n.obligated[cellID] = true
	// startCluster reports the obligation immediately when the node is
	// already clustered, or on root-session completion otherwise.
	n.startCluster(ctx, n.sh.qt.Cells[cellID].Level, cellID)
}

// reportObligation announces that the given cell's sentinel has finished
// its round.
func (n *node) reportObligation(ctx sim.Context, cellID int) {
	c := &n.sh.qt.Cells[cellID]
	if c.Parent < 0 {
		// Root cell: its round has no phase1/phase2; go straight to
		// starting the next level.
		n.startNextLevel(ctx, cellID, c.Level)
		return
	}
	parent := &n.sh.qt.Cells[c.Parent]
	payload := phasePayload{Round: c.Level, ToCell: c.Parent}
	if parent.Leader == n.id {
		n.onPhase1(ctx, payload)
		return
	}
	ctx.Route(parent.Leader, KindPhase1, payload)
}

// onPhase1 aggregates completion reports at a cell and forwards them up
// once every participating child subtree has reported.
func (n *node) onPhase1(ctx sim.Context, p phasePayload) {
	c := &n.sh.qt.Cells[p.ToCell]
	n.phase1Seen[p.ToCell]++
	expected := 0
	for _, ch := range c.Children {
		if n.sh.maxDepth[ch] >= p.Round {
			expected++
		}
	}
	if n.phase1Seen[p.ToCell] < expected {
		return
	}
	n.phase1Seen[p.ToCell] = 0 // reset for the next round
	if c.Parent < 0 {
		// The root has heard from every sentinel in S_round: start the
		// downward phase2 wave.
		n.sendPhase2Down(ctx, p.ToCell, p.Round)
		return
	}
	parent := &n.sh.qt.Cells[c.Parent]
	payload := phasePayload{Round: p.Round, ToCell: c.Parent}
	if parent.Leader == n.id {
		n.onPhase1(ctx, payload)
		return
	}
	ctx.Route(parent.Leader, KindPhase1, payload)
}

// onPhase2 forwards the go-ahead wave down to the round's cells, which
// then start their children — the next sentinel level.
func (n *node) onPhase2(ctx sim.Context, p phasePayload) {
	c := &n.sh.qt.Cells[p.ToCell]
	if c.Level == p.Round {
		n.startNextLevel(ctx, p.ToCell, p.Round)
		return
	}
	n.sendPhase2Down(ctx, p.ToCell, p.Round)
}

func (n *node) sendPhase2Down(ctx sim.Context, cellID, round int) {
	c := &n.sh.qt.Cells[cellID]
	for _, ch := range c.Children {
		if n.sh.maxDepth[ch] < round {
			continue
		}
		child := &n.sh.qt.Cells[ch]
		payload := phasePayload{Round: round, ToCell: ch}
		if child.Leader == n.id {
			n.onPhase2(ctx, payload)
			continue
		}
		ctx.Route(child.Leader, KindPhase2, payload)
	}
}

// startNextLevel instructs the leaders of the cell's occupied children —
// sentinels in S_{level+1} — to begin their round.
func (n *node) startNextLevel(ctx sim.Context, cellID, level int) {
	c := &n.sh.qt.Cells[cellID]
	for _, ch := range c.Children {
		child := &n.sh.qt.Cells[ch]
		payload := startPayload{ToCell: ch}
		if child.Leader == n.id {
			n.runObligation(ctx, ch)
			continue
		}
		ctx.Route(child.Leader, KindStart, payload)
	}
}

// TxPerNode runs the same clustering as Run but returns the per-node
// transmission counts instead of the clustering — the input to energy and
// network-lifetime analyses (every hop is charged to its sender).
func TxPerNode(g *topology.Graph, cfg Config) ([]int64, error) {
	if err := cfg.validate(g); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(g.N())
	qt := topology.BuildQuadtree(g)
	sh := newShared(g, qt, cfg)

	net := sim.NewNetwork(g, cfg.Delay, cfg.Seed)
	net.Instrument(cfg.Obs, cfg.Trace, "elink")
	if cfg.Loss > 0 {
		net.SetLoss(cfg.Loss)
	}
	nodes := make([]*node, g.N())
	for u := range nodes {
		nodes[u] = newNode(topology.NodeID(u), sh)
		net.SetProtocol(topology.NodeID(u), nodes[u])
	}
	net.Run()
	for u, nd := range nodes {
		if !nd.clustered {
			return nil, fmt.Errorf("elink: node %d finished unclustered", u)
		}
	}
	return net.TxPerNode(), nil
}
