package elink

import (
	"math"
	"testing"

	"elink/internal/metric"
	"elink/internal/obs"
	"elink/internal/topology"
)

// tracedRounds runs ELink on a side x side grid with uniform features
// (everything merges into one cluster — the worst case for sentinel
// escalation) and reads the synchronous round count off the per-round
// trace events rather than any internal counter.
func tracedRounds(t *testing.T, side int) float64 {
	t.Helper()
	g := topology.NewGrid(side, side)
	feats := make([]metric.Feature, g.N())
	for u := range feats {
		feats[u] = metric.Feature{0}
	}
	tr := obs.NewTracer(1 << 16)
	res, err := Run(g, Config{
		Delta:    1,
		Metric:   metric.Scalar{},
		Features: feats,
		Trace:    tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clustering.NumClusters() != 1 {
		t.Fatalf("side %d: %d clusters, want 1", side, res.Clustering.NumClusters())
	}
	rounds := 0
	for _, e := range tr.Last(tr.Len()) {
		if e.Scope == "elink" && e.Kind == "round" && e.Round > rounds {
			rounds = e.Round
		}
	}
	if rounds == 0 {
		t.Fatalf("side %d: no round events traced", side)
	}
	return float64(rounds)
}

// TestRoundsGrowSqrtN pins ELink's Theorem 2 complexity end to end: the
// number of synchronous rounds grows like √N (times a log factor) in the
// network size. The log-log slope over a geometric ladder of grids must
// sit near 1/2 — well below linear, well above constant.
func TestRoundsGrowSqrtN(t *testing.T) {
	sides := []int{8, 16, 32}
	var xs, ys []float64
	for _, side := range sides {
		n := float64(side * side)
		r := tracedRounds(t, side)
		t.Logf("N=%4.0f rounds=%3.0f", n, r)
		xs = append(xs, math.Log(n))
		ys = append(ys, math.Log(r))
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] <= ys[i-1] {
			t.Fatalf("rounds not increasing across grid sizes: %v", ys)
		}
	}
	// Least-squares slope of log(rounds) against log(N).
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	k := float64(len(xs))
	slope := (k*sxy - sx*sy) / (k*sxx - sx*sx)
	// √N log N on this ladder fits a slope a bit above 0.5; linear growth
	// would be 1.0 and constant 0. Accept the √N band.
	if slope < 0.3 || slope > 0.8 {
		t.Errorf("log-log slope of rounds vs N = %.3f, want ~0.5 (√N growth)", slope)
	}
}
