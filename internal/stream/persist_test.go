package stream

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"elink/internal/metric"
	"elink/internal/persist"
	"elink/internal/topology"
)

// persistTestConfig is the shared configuration of the durability tests:
// a periodic policy with a short period so recovered runs cross at least
// one full re-clustering, which is where hidden nondeterminism would
// show first.
func persistTestConfig() Config {
	return Config{
		Order: 2, Delta: 1.0, Slack: 0.1, Metric: metric.Euclidean{},
		Seed: 42, Policy: PolicyPeriodic, Period: 7,
	}
}

// driftBatch builds batch b of a deterministic reading stream over g:
// four value plateaus with slow per-batch drift plus seeded noise, so
// clusters form, drift and occasionally fragment.
func driftBatch(g *topology.Graph, b int, rng *rand.Rand) []Reading {
	batch := make([]Reading, g.N())
	for u := range batch {
		base := float64(u%4) * 5
		batch[u] = Reading{
			Node:  topology.NodeID(u),
			Value: base + 0.3*float64(b) + 0.05*rng.Float64(),
		}
	}
	return batch
}

// engineFingerprint reduces the engine's externally visible state to a
// comparable value: counters (wall-clock stamp zeroed), the published
// clustering, the published features, and range+path query answers.
func engineFingerprint(t *testing.T, e *Engine) map[string]any {
	t.Helper()
	st := e.Stats()
	st.CollectedAt = time.Time{}
	st.QueryTime, st.MaxQueryTime = 0, 0 // wall-clock, legitimately differs
	fp := map[string]any{"stats": st, "seq": e.Seq()}
	snap := e.Snapshot()
	if snap == nil {
		return fp
	}
	fp["epoch"] = snap.Epoch
	fp["assign"] = append([]int(nil), snap.Clustering.Assign...)
	var feats []metric.Feature
	for _, f := range snap.Features {
		feats = append(feats, f.Clone())
	}
	fp["features"] = feats

	rr, err := e.RangeQuery(snap.Features[0], 1.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	fp["range"] = fmt.Sprintf("%v msgs=%d", rr.Matches, rr.Stats.Messages)
	pr, err := e.PathQuery(snap.Features[g0(snap)], 0.5, 0, topology.NodeID(len(snap.Features)-1))
	if err != nil {
		t.Fatal(err)
	}
	fp["path"] = fmt.Sprintf("found=%v %v msgs=%d", pr.Found, pr.Path, pr.Stats.Messages)
	return fp
}

// g0 picks a stable "danger" node for the path query.
func g0(s *Snapshot) int { return len(s.Features) / 2 }

// TestKillAndRestoreGolden is the crash-exactness contract end to end:
// run an engine with a WAL, snapshot at epoch E, keep ingesting, kill
// it; recover a second engine from snapshot + WAL tail; then feed both
// engines the same 20 batches and require bitwise-identical results —
// ingest results, stats, cluster assignments, features and query
// answers at every step.
func TestKillAndRestoreGolden(t *testing.T) {
	g := topology.NewGrid(4, 5)
	dir := t.TempDir()

	// Engine A: journaling from the first batch.
	a, err := New(g, persistTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	walA, err := persist.OpenWAL(filepath.Join(dir, "wal"), persist.WALOptions{Fsync: persist.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	a.AttachWAL(walA)

	rngA := rand.New(rand.NewSource(99))
	var snapBuf bytes.Buffer
	const snapAt, crashAt = 15, 23
	for b := 1; b <= crashAt; b++ {
		if _, err := a.Ingest(driftBatch(g, b, rngA)); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		if b == snapAt {
			info, err := a.SaveSnapshot(&snapBuf)
			if err != nil {
				t.Fatal(err)
			}
			if info.Seq != snapAt || info.Bytes != int64(snapBuf.Len()) {
				t.Fatalf("snapshot info %+v, want seq %d and %d bytes", info, snapAt, snapBuf.Len())
			}
		}
	}
	// "Crash": walA is abandoned without Close. FsyncAlways already
	// flushed every record.

	// Engine B: snapshot + WAL tail.
	b, err := New(g, persistTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(bytes.NewReader(snapBuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := b.Seq(); got != snapAt {
		t.Fatalf("restored seq = %d, want %d", got, snapAt)
	}
	walB, err := persist.OpenWAL(filepath.Join(dir, "wal"), persist.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := b.ReplayWAL(walB)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != crashAt-snapAt {
		t.Fatalf("replayed %d batches, want %d", replayed, crashAt-snapAt)
	}

	if fpA, fpB := engineFingerprint(t, a), engineFingerprint(t, b); !reflect.DeepEqual(fpA, fpB) {
		t.Fatalf("recovered state differs immediately:\n  a=%v\n  b=%v", fpA, fpB)
	}

	// The next 20 epochs must be identical batch by batch. The two rngs
	// are now at the same point only if driven identically, so clone the
	// stream by reseeding and fast-forwarding.
	rngB := rand.New(rand.NewSource(99))
	for b := 1; b <= crashAt; b++ {
		driftBatch(g, b, rngB)
	}
	for step := 1; step <= 20; step++ {
		batch := driftBatch(g, crashAt+step, rngA)
		batchB := driftBatch(g, crashAt+step, rngB)
		if !reflect.DeepEqual(batch, batchB) {
			t.Fatalf("step %d: the two input streams diverged (test bug)", step)
		}
		resA, errA := a.Ingest(batch)
		resB, errB := b.Ingest(batchB)
		if errA != nil || errB != nil {
			t.Fatalf("step %d: ingest errors %v / %v", step, errA, errB)
		}
		if !reflect.DeepEqual(resA, resB) {
			t.Fatalf("step %d: ingest results differ: %+v vs %+v", step, resA, resB)
		}
		if fpA, fpB := engineFingerprint(t, a), engineFingerprint(t, b); !reflect.DeepEqual(fpA, fpB) {
			t.Fatalf("step %d: engine states diverged:\n  a=%v\n  b=%v", step, fpA, fpB)
		}
	}
}

// TestSnapshotBeforeBootstrapRoundTrips covers the warming-up corner:
// snapshot mid-warmup, restore, and both engines bootstrap identically.
func TestSnapshotBeforeBootstrapRoundTrips(t *testing.T) {
	g := topology.NewGrid(2, 4)
	a, err := New(g, persistTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	if _, err := a.Ingest(driftBatch(g, 1, rng)); err != nil {
		t.Fatal(err)
	}
	if a.Ready() {
		t.Fatal("engine ready after one batch; warmup config changed?")
	}
	var buf bytes.Buffer
	if _, err := a.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	b, err := New(g, persistTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if b.Snapshot() != nil || b.Ready() {
		t.Fatal("restored warming engine claims to be ready")
	}

	rng2 := rand.New(rand.NewSource(7))
	driftBatch(g, 1, rng2)
	for step := 2; step <= 12; step++ {
		resA, errA := a.Ingest(driftBatch(g, step, rng))
		resB, errB := b.Ingest(driftBatch(g, step, rng2))
		if errA != nil || errB != nil {
			t.Fatalf("step %d: %v / %v", step, errA, errB)
		}
		if !reflect.DeepEqual(resA, resB) {
			t.Fatalf("step %d: results differ: %+v vs %+v", step, resA, resB)
		}
	}
	if !a.Ready() || !b.Ready() {
		t.Fatal("engines never bootstrapped")
	}
	if fpA, fpB := engineFingerprint(t, a), engineFingerprint(t, b); !reflect.DeepEqual(fpA, fpB) {
		t.Fatalf("states diverged:\n  a=%v\n  b=%v", fpA, fpB)
	}
}

// TestFeatureEngineSnapshotRoundTrips covers the Order-0 (feature-push)
// engine: no AR models in the snapshot, WAL carries feature records.
func TestFeatureEngineSnapshotRoundTrips(t *testing.T) {
	g := topology.NewGrid(1, 6)
	cfg := Config{Order: 0, Delta: 2, Slack: 0.1, Metric: metric.Euclidean{}, Seed: 3}
	dir := t.TempDir()

	a, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wal, err := persist.OpenWAL(dir, persist.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a.AttachWAL(wal)
	boot := []FeatureUpdate{
		{0, metric.Feature{0}}, {1, metric.Feature{0.1}}, {2, metric.Feature{0.2}},
		{3, metric.Feature{9}}, {4, metric.Feature{9.1}}, {5, metric.Feature{9.2}},
	}
	if _, err := a.IngestFeatures(boot); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := a.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := a.IngestFeatures([]FeatureUpdate{{2, metric.Feature{0.35}}}); err != nil {
		t.Fatal(err)
	}

	b, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	wal2, err := persist.OpenWAL(dir, persist.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := b.ReplayWAL(wal2); err != nil || n != 1 {
		t.Fatalf("replayed %d, %v; want the 1 post-snapshot batch", n, err)
	}
	if fpA, fpB := engineFingerprint(t, a), engineFingerprint(t, b); !reflect.DeepEqual(fpA, fpB) {
		t.Fatalf("states diverged:\n  a=%v\n  b=%v", fpA, fpB)
	}
}

func TestRestoreRejectsConfigMismatch(t *testing.T) {
	g := topology.NewGrid(2, 3)
	cfg := persistTestConfig()
	a, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := a.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func(*Config){
		"delta": func(c *Config) { c.Delta = 1.5 },
		"seed":  func(c *Config) { c.Seed = 1000 },
		"order": func(c *Config) { c.Order = 3 },
	} {
		other := cfg
		mutate(&other)
		b, err := New(g, other)
		if err != nil {
			t.Fatal(err)
		}
		err = b.Restore(bytes.NewReader(buf.Bytes()))
		if !errors.Is(err, ErrConfigMismatch) {
			t.Errorf("%s: restore = %v, want ErrConfigMismatch", name, err)
		}
	}
	// Different graph size, same knobs.
	b, err := New(topology.NewGrid(2, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrConfigMismatch) {
		t.Errorf("nodes: restore = %v, want ErrConfigMismatch", err)
	}
}

// TestIngestWALAppendFailureLatches pins the diverged contract: a WAL
// append failure leaves the batch applied in memory but must latch the
// engine read-only. The sequence number stays put — so a gap is never
// journaled across — and every further ingest (including a client retry
// of the failed batch, which would otherwise double-apply) is rejected
// with ErrWALDiverged before touching state.
func TestIngestWALAppendFailureLatches(t *testing.T) {
	g := topology.NewGrid(1, 6)
	cfg := Config{Order: 0, Delta: 2, Slack: 0.1, Metric: metric.Euclidean{}, Seed: 3}
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	walDir := filepath.Join(t.TempDir(), "wal")
	w, err := persist.OpenWAL(walDir, persist.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e.AttachWAL(w)
	if _, err := e.IngestFeatures([]FeatureUpdate{{0, metric.Feature{0.5}}}); err != nil {
		t.Fatal(err)
	}
	if got := e.Seq(); got != 1 {
		t.Fatalf("seq after batch 1 = %d, want 1", got)
	}
	if e.Diverged() != nil {
		t.Fatalf("Diverged() = %v before any failure", e.Diverged())
	}

	// Force the next append to fail: closing the WAL makes it rotate, and
	// rotation cannot create a segment once the directory is gone.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(walDir); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestFeatures([]FeatureUpdate{{1, metric.Feature{1.5}}}); !errors.Is(err, ErrWALDiverged) {
		t.Fatalf("ingest with failing WAL: err = %v, want ErrWALDiverged", err)
	}
	if got := e.Seq(); got != 1 {
		t.Errorf("seq advanced to %d across a failed journal append, want 1", got)
	}
	if e.Diverged() == nil {
		t.Error("Diverged() = nil after a failed journal append")
	}

	// The latch holds: further writes are rejected before they apply.
	before := e.readings
	if _, err := e.IngestFeatures([]FeatureUpdate{{2, metric.Feature{2.5}}}); !errors.Is(err, ErrWALDiverged) {
		t.Fatalf("ingest after divergence: err = %v, want ErrWALDiverged", err)
	}
	if e.readings != before {
		t.Errorf("a rejected batch was still applied (%d -> %d readings)", before, e.readings)
	}
}

// TestReplayWALGapFails pins the missing-segment safety check: if the
// journal starts past the engine's sequence, replay refuses rather than
// fabricating a state that never existed.
func TestReplayWALGapFails(t *testing.T) {
	g := topology.NewGrid(2, 3)
	dir := t.TempDir()
	wal, err := persist.OpenWAL(dir, persist.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec := &persist.BatchRecord{Seq: 5, Kind: persist.RecordReadings, Nodes: []int64{0}, Values: []float64{1}}
	if err := wal.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	e, err := New(g, persistTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	wal2, err := persist.OpenWAL(dir, persist.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ReplayWAL(wal2); err == nil {
		t.Fatal("replay across a sequence gap succeeded")
	}
}

// TestIngestRejectedBatchLeavesStateUntouched pins the upfront-
// validation refactor: a batch with one bad reading must not partially
// apply (the WAL-exactness invariant).
func TestIngestRejectedBatchLeavesStateUntouched(t *testing.T) {
	g := topology.NewGrid(2, 3)
	e, err := New(g, persistTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest([]Reading{{Node: 0, Value: 1}}); err != nil {
		t.Fatal(err)
	}
	before := e.Stats()
	seqBefore := e.Seq()

	bad := []Reading{{Node: 1, Value: 2}, {Node: 99, Value: 3}}
	if _, err := e.Ingest(bad); !errors.Is(err, ErrInvalidBatch) {
		t.Fatalf("bad batch error = %v, want ErrInvalidBatch", err)
	}
	after := e.Stats()
	before.CollectedAt, after.CollectedAt = time.Time{}, time.Time{}
	if !reflect.DeepEqual(before, after) {
		t.Errorf("rejected batch mutated stats: %+v -> %+v", before, after)
	}
	if e.Seq() != seqBefore {
		t.Errorf("rejected batch advanced seq %d -> %d", seqBefore, e.Seq())
	}

	badFeat := []FeatureUpdate{{Node: 0, Feature: metric.Feature{1}}, {Node: 1}}
	if _, err := e.IngestFeatures(badFeat); !errors.Is(err, ErrInvalidBatch) {
		t.Fatalf("bad feature batch error = %v, want ErrInvalidBatch", err)
	}
	if e.Seq() != seqBefore {
		t.Errorf("rejected feature batch advanced seq")
	}
}

// TestWALFilesOnDisk sanity-checks that journaling actually hits disk
// through the engine path (segments exist and carry the batch count).
func TestWALFilesOnDisk(t *testing.T) {
	g := topology.NewGrid(2, 3)
	dir := t.TempDir()
	e, err := New(g, persistTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	wal, err := persist.OpenWAL(dir, persist.WALOptions{Fsync: persist.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	e.AttachWAL(wal)
	rng := rand.New(rand.NewSource(1))
	for b := 1; b <= 3; b++ {
		if _, err := e.Ingest(driftBatch(g, b, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("WAL dir entries %v, err %v", ents, err)
	}
	wal2, err := persist.OpenWAL(dir, persist.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := wal2.Replay(0, func(*persist.BatchRecord) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("journal carries %d records, want 3", n)
	}
}
