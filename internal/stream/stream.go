// Package stream turns the batch clustering pipeline into a live,
// continuously maintained one.
//
// The batch entry points (elink.Run, index.Build, query.Range/Path) fit
// models, cluster once, answer queries and exit. Engine instead runs
// indefinitely: it ingests per-node reading batches, refits each node's
// AR model online with the recursive-least-squares state of internal/ar
// (Appendix A), screens the resulting feature drift through the slack-Δ
// maintenance protocol of internal/update (§6), keeps the internal/index
// M-tree consistent — incrementally where membership is stable, by
// rebuild where it is not — and serves internal/query range and path
// queries concurrently against an immutable snapshot.
//
// Concurrency model: single writer, lock-free readers. Ingest calls are
// serialized by the engine mutex; at the end of every ingested batch
// (an "epoch") the engine publishes a frozen Snapshot — clustering,
// M-tree index, features — through an atomic pointer. Queries load the
// pointer and run entirely against that immutable structure, so readers
// never block ingest and ingest never blocks readers. Before the next
// epoch mutates the index in place it clones the published copy
// (copy-on-write at epoch granularity, see index.Clone).
//
// Amortization is the point: a full ELink run costs O(N) messages every
// time, while the slack-Δ screens silence most updates for free and the
// index repair waves stop early, so maintaining the clustering across a
// stream is far cheaper than re-clustering per batch. The ReclusterPolicy
// knob controls when the engine still falls back to a full re-run.
package stream

import (
	"time"

	"elink/internal/cluster"
	"elink/internal/elink"
	"elink/internal/index"
	"elink/internal/metric"
	"elink/internal/obs"
	"elink/internal/topology"
	"elink/internal/update"
)

// ReclusterPolicy selects when the engine abandons incremental
// maintenance and re-runs ELink from scratch (the trade-off §6 motivates
// and the recluster-policy experiment quantifies).
type ReclusterPolicy int

const (
	// PolicyNever maintains forever; quality decays as fragmentation
	// accumulates but no full re-clustering cost is ever paid.
	PolicyNever ReclusterPolicy = iota
	// PolicyAdaptive re-clusters when the cluster count exceeds
	// FragmentationFactor times the count right after the last full run.
	PolicyAdaptive
	// PolicyPeriodic re-clusters every Period epochs.
	PolicyPeriodic
)

// String implements fmt.Stringer.
func (p ReclusterPolicy) String() string {
	switch p {
	case PolicyNever:
		return "never"
	case PolicyAdaptive:
		return "adaptive"
	case PolicyPeriodic:
		return "periodic"
	}
	return "unknown"
}

// Config parameterizes the streaming engine.
type Config struct {
	// Order is the AR model order fitted per node; features are the
	// Order RLS coefficients.
	Order int
	// Delta is the target δ of the maintained clustering.
	Delta float64
	// Slack is the maintenance Δ; clustering runs use the tightened
	// threshold δ − 2Δ so drift has room (must satisfy 0 ≤ 2Δ < δ).
	Slack float64
	// Metric measures feature dissimilarity.
	Metric metric.Metric
	// Mode selects the ELink signalling technique for (re-)clustering
	// runs.
	Mode elink.Mode
	// Seed drives every randomized component (ELink delay/loss processes)
	// so engine runs are reproducible end-to-end.
	Seed int64
	// Policy selects the re-cluster trigger (default PolicyAdaptive).
	Policy ReclusterPolicy
	// FragmentationFactor is PolicyAdaptive's threshold (default 1.5).
	FragmentationFactor float64
	// Period is PolicyPeriodic's epoch interval (default 20).
	Period int
	// WarmupObs is how many observations every node must have seen
	// before the engine bootstraps its first clustering (default
	// 4*Order, minimum Order+1).
	WarmupObs int
	// Obs, when non-nil, receives the engine's live metrics: per-epoch
	// gauges (engine_epoch, engine_clusters, engine_fragmentation,
	// engine_index_depth), ingest/maintenance counters, query-latency
	// histograms, and — through the same registry — the maintenance
	// protocol's screening counters and every full (re-)clustering run's
	// per-kind message counters. The registry is concurrency-safe; one
	// registry may serve many engines if their metrics should aggregate.
	Obs *obs.Registry
	// Trace, when non-nil, receives one structured event per published
	// epoch plus the per-round simulator events of every full
	// (re-)clustering run the policy triggers.
	Trace *obs.Tracer
	// Spans, when non-nil, receives one hierarchical span trace per
	// engine operation: every ingested epoch (children: validate, refit,
	// maintain, index/recluster, journal, publish), every query, and
	// every snapshot save/restore. Span timings never feed figure tables,
	// so attaching a tracer leaves golden determinism untouched.
	Spans *obs.SpanTracer
}

func (c Config) withDefaults() Config {
	if c.FragmentationFactor == 0 {
		c.FragmentationFactor = 1.5
	}
	if c.Period == 0 {
		c.Period = 20
	}
	if c.WarmupObs == 0 {
		c.WarmupObs = 4 * c.Order
	}
	if c.WarmupObs < c.Order+1 {
		c.WarmupObs = c.Order + 1
	}
	return c
}

// Reading is one raw measurement at one node.
type Reading struct {
	Node  topology.NodeID `json:"node"`
	Value float64         `json:"value"`
}

// FeatureUpdate is one already-fitted coefficient vector at one node,
// for deployments where nodes run their own RLS and ship drift directly
// (Engine.IngestFeatures).
type FeatureUpdate struct {
	Node    topology.NodeID `json:"node"`
	Feature metric.Feature  `json:"feature"`
}

// Snapshot is the immutable per-epoch view queries run against. All
// fields are frozen once published; the engine never mutates a snapshot
// it has handed out.
type Snapshot struct {
	// Epoch counts published snapshots (1 = the bootstrap clustering).
	Epoch int64
	// Clustering is the epoch's membership.
	Clustering *cluster.Clustering
	// Index is the M-tree + leader backbone over that membership, with
	// routing features current as of the epoch.
	Index *index.Index
	// Features aliases the index's owned feature vectors.
	Features []metric.Feature
}

// NumClusters returns the snapshot's cluster count.
func (s *Snapshot) NumClusters() int { return s.Clustering.NumClusters() }

// Validate checks the snapshot against the repo's clustering validators:
// every cluster connected, pairwise feature distances within the given
// bound, and the index covering-radius invariant exact. Maintained
// clusterings guarantee member-to-root distance ≤ δ (one slack lag), so
// pairwise compactness holds at 2δ, not δ; pass 2*Delta for maintained
// epochs and Delta right after a full (re-)clustering.
func (s *Snapshot) Validate(g *topology.Graph, m metric.Metric, pairwiseBound float64) error {
	if err := s.Clustering.Validate(g, s.Features, m, pairwiseBound, 1e-9); err != nil {
		return err
	}
	return s.Index.Validate()
}

// IngestResult summarizes what one batch did to the engine.
type IngestResult struct {
	// Epoch is the snapshot epoch after this batch (0 while warming up).
	Epoch int64 `json:"epoch"`
	// Ready reports whether the engine has bootstrapped a clustering.
	Ready bool `json:"ready"`
	// Readings is how many measurements the batch carried.
	Readings int `json:"readings"`
	// Updates is how many feature updates were pushed through the
	// maintenance protocol.
	Updates int `json:"updates"`
	// Detaches is how many nodes left their cluster this epoch.
	Detaches int `json:"detaches"`
	// Reclustered reports whether the policy triggered a full ELink run.
	Reclustered bool `json:"reclustered"`
	// NumClusters is the cluster count after the batch.
	NumClusters int `json:"clusters"`
}

// Stats exposes the engine's cumulative counters: messages by kind and
// phase, screening telemetry, re-cluster triggers and query latencies.
//
// Snapshot semantics: Stats is a point-in-time copy, not a live view.
// Engine.Stats assembles it in two phases — the ingest-side counters are
// copied under the engine lock, then the query-side counters under the
// separate query-telemetry lock — so the query counters can be slightly
// newer than the ingest counters when both paths are running. Within
// each group the values are mutually consistent. Epochs is the snapshot
// epoch the ingest-side counters correspond to (it matches
// Snapshot.Epoch taken at the same moment), and CollectedAt stamps when
// the copy was taken, so scrapes can be ordered and correlated with
// snapshots.
type Stats struct {
	// Epochs is the number of published snapshots; it equals the current
	// Snapshot.Epoch and increases monotonically, so two Stats values can
	// be ordered and diffed per epoch.
	Epochs int64 `json:"epochs"`
	// CollectedAt is the wall-clock time this copy was taken.
	CollectedAt time.Time `json:"collectedAt"`
	// Readings is the total measurements ingested.
	Readings int64 `json:"readings"`
	// Updates is the total feature updates through the maintainer.
	Updates int64 `json:"updates"`
	// NumClusters is the current cluster count (0 while warming up).
	NumClusters int `json:"clusters"`

	// Screening is the maintenance protocol's telemetry, accumulated
	// across maintainer generations.
	Screening update.Counters `json:"screening"`

	// Message costs by phase.
	BootstrapMsgs    int64 `json:"bootstrapMsgs"`    // initial ELink run + index build
	MaintenanceMsgs  int64 `json:"maintenanceMsgs"`  // slack-Δ protocol traffic
	IndexRepairMsgs  int64 `json:"indexRepairMsgs"`  // incremental Refresh waves
	IndexRebuildMsgs int64 `json:"indexRebuildMsgs"` // rebuilds after membership changes
	ReclusterMsgs    int64 `json:"reclusterMsgs"`    // policy-triggered re-runs + index

	// Reclusters counts policy-triggered full runs (the bootstrap is not
	// included); IndexRebuilds counts membership-driven index rebuilds.
	Reclusters    int64 `json:"reclusters"`
	IndexRebuilds int64 `json:"indexRebuilds"`

	// Breakdown decomposes every update-path message by protocol kind
	// (fetch/rootfeat/broadcast/probe/reroot, the ELink kinds, index and
	// backbone builds, plus "refresh" for repair waves).
	Breakdown map[string]int64 `json:"breakdown"`

	// Query-side counters.
	RangeQueries int64         `json:"rangeQueries"`
	PathQueries  int64         `json:"pathQueries"`
	QueryMsgs    int64         `json:"queryMsgs"`
	QueryTime    time.Duration `json:"queryTimeNs"`
	MaxQueryTime time.Duration `json:"maxQueryTimeNs"`

	// Phases is the per-phase latency attribution table (p50/p95/max
	// self-time per span phase), present only when Config.Spans is set.
	Phases []obs.PhaseStat `json:"phases,omitempty"`
}

// SteadyStateMsgs is the total streaming update cost after bootstrap:
// maintenance traffic, index repairs and rebuilds, and any policy-
// triggered re-clusterings. This is the number the amortization claim is
// about — it must undercut re-running ELink per batch.
func (s Stats) SteadyStateMsgs() int64 {
	return s.MaintenanceMsgs + s.IndexRepairMsgs + s.IndexRebuildMsgs + s.ReclusterMsgs
}

// TotalUpdateMsgs is SteadyStateMsgs plus the bootstrap cost.
func (s Stats) TotalUpdateMsgs() int64 { return s.BootstrapMsgs + s.SteadyStateMsgs() }

// addCounters accumulates b into a field by field.
func addCounters(a, b update.Counters) update.Counters {
	a.Updates += b.Updates
	a.ScreenedA1 += b.ScreenedA1
	a.ScreenedA2 += b.ScreenedA2
	a.ScreenedA3 += b.ScreenedA3
	a.RootFetches += b.RootFetches
	a.Detaches += b.Detaches
	a.Rejoins += b.Rejoins
	a.Singletons += b.Singletons
	a.RootDrifts += b.RootDrifts
	return a
}
