package stream

import (
	"errors"
	"fmt"
	"io"
	"time"

	"elink/internal/ar"
	"elink/internal/index"
	"elink/internal/metric"
	"elink/internal/obs"
	"elink/internal/persist"
	"elink/internal/topology"
	"elink/internal/update"
)

// ErrConfigMismatch is returned by Restore when the snapshot was taken
// by an engine with a different configuration. Replaying a journal
// against different δ/slack/seed/policy would silently diverge from the
// pre-crash trajectory instead of reproducing it, so the mismatch is an
// error, not a warning.
var ErrConfigMismatch = errors.New("stream: snapshot configuration does not match this engine")

// ErrWALDiverged tags the latched state after a journal append failure:
// a batch was applied in memory but never reached the WAL. The engine
// rejects every further ingest with it (queries keep working), because
// accepting more writes would let the in-memory history and the journal
// drift apart silently — and a client retry of the failed batch would
// double-apply it. The recovery is operational: snapshot (the snapshot
// captures the applied state) and restart.
var ErrWALDiverged = errors.New("stream: WAL diverged (a batch was applied but not journaled); ingest disabled until restart")

// Seq returns the engine's ingest sequence number: the count of
// successfully applied batches (warmup included).
func (e *Engine) Seq() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seq
}

// AttachWAL makes the engine journal every applied batch to w
// (journal-after-commit, under the ingest lock). Attach after Restore
// and ReplayWAL so recovery replays are not re-journaled. Passing nil
// detaches.
func (e *Engine) AttachWAL(w *persist.WAL) {
	e.mu.Lock()
	e.wal = w
	e.mu.Unlock()
}

// journalLocked appends one record for the batch the engine just
// applied; the record carries the sequence number the batch will commit
// as (the caller advances e.seq only after the append succeeds, so a
// failed append never leaves a gap for the next record to journal
// across). On failure the engine latches ErrWALDiverged — the batch is
// applied in memory but not durable, and every further ingest is
// rejected until the process restarts (typically after a snapshot, which
// captures the applied state). The append (and its fsync, when the
// policy triggers one) is traced under sp.
func (e *Engine) journalLocked(rec *persist.BatchRecord, sp *obs.Span) error {
	rec.Seq = e.seq + 1
	if err := e.wal.AppendSpanned(rec, sp); err != nil {
		e.walErr = fmt.Errorf("%w: batch %d: %v", ErrWALDiverged, rec.Seq, err)
		return e.walErr
	}
	return nil
}

// Diverged returns the latched journal-failure error, or nil while the
// engine and its WAL agree. Once non-nil it never clears; the HTTP
// daemon surfaces it through /healthz so an orchestrator restarts the
// process.
func (e *Engine) Diverged() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.walErr
}

// cfgState is the engine's configuration fingerprint as embedded in
// snapshots.
func (e *Engine) cfgState() persist.ConfigState {
	return persist.ConfigState{
		Nodes:               e.g.N(),
		Order:               e.cfg.Order,
		Delta:               e.cfg.Delta,
		Slack:               e.cfg.Slack,
		Seed:                e.cfg.Seed,
		Mode:                int(e.cfg.Mode),
		Policy:              int(e.cfg.Policy),
		FragmentationFactor: e.cfg.FragmentationFactor,
		Period:              e.cfg.Period,
		WarmupObs:           e.cfg.WarmupObs,
	}
}

// stateLocked assembles the engine's complete serializable state. Every
// slice is a deep copy, so the caller may encode it after releasing the
// engine lock.
func (e *Engine) stateLocked() *persist.EngineState {
	st := &persist.EngineState{
		Config:         e.cfgState(),
		Seq:            e.seq,
		Epoch:          e.epoch,
		SinceRecluster: int64(e.sinceRecluster),
		Ready:          e.ready,
		Warm:           e.warm,
		FeatCovered:    e.featCovered,
		Feats:          make([]metric.Feature, len(e.feats)),
		FeatSet:        append([]bool(nil), e.featSet...),
		Readings:       e.readings,
		Updates:        e.updates,
		Reclusters:     e.reclusters,
		Rebuilds:       e.rebuilds,
		RefreshMsgs:    e.refreshMsgs,
		Screening:      e.screening,
		MaintMsgs:      e.maintMsgs.Clone(),
		BootstrapStats: e.bootstrapStats.Clone(),
		ReclusterStats: e.reclusterStats.Clone(),
		RebuildStats:   e.rebuildStats.Clone(),
	}
	for u, f := range e.feats {
		st.Feats[u] = f.Clone()
	}
	if e.models != nil {
		st.Models = make([]ar.State, len(e.models))
		for u, m := range e.models {
			st.Models[u] = m.State()
		}
	}
	if e.ready {
		ms := e.maint.State()
		st.Maint = &ms
		is := e.idx.State()
		st.Index = &is
	}
	return st
}

// SaveSnapshot writes the engine's complete state to w in the
// internal/persist snapshot format. The engine lock is held only while
// the state is copied out, not while it is encoded and written, so
// ingest stalls for the copy, never for the I/O.
func (e *Engine) SaveSnapshot(w io.Writer) (persist.SnapshotInfo, error) {
	sp := e.cfg.Spans.Start("snapshot")
	defer sp.Finish()
	start := time.Now() //elink:allow walltime — snapshot latency telemetry; not part of the snapshot bytes
	cs := sp.Child("copy-state")
	e.mu.Lock()
	st := e.stateLocked()
	e.mu.Unlock()
	cs.Finish()
	n, err := persist.WriteSnapshotSpanned(w, st, sp)
	info := persist.SnapshotInfo{
		Bytes:    n,
		Seq:      st.Seq,
		Epoch:    st.Epoch,
		Duration: time.Since(start), //elink:allow walltime — snapshot latency telemetry; not part of the snapshot bytes
	}
	if err != nil {
		return info, fmt.Errorf("stream: write snapshot: %w", err)
	}
	e.eobs.snapshot(info)
	return info, nil
}

// Restore replaces the engine's state with a snapshot previously written
// by SaveSnapshot. The snapshot must come from an engine with the same
// configuration (ErrConfigMismatch otherwise). Query-side telemetry is
// not part of snapshots and is left untouched. After Restore, replay the
// WAL tail with ReplayWAL to reach the exact pre-crash state.
func (e *Engine) Restore(r io.Reader) error {
	sp := e.cfg.Spans.Start("restore")
	defer sp.Finish()
	start := time.Now() //elink:allow walltime — restore latency telemetry; recovered state comes from the snapshot bytes
	ds := sp.Child("decode")
	st, err := persist.ReadSnapshot(r)
	ds.Finish()
	if err != nil {
		return fmt.Errorf("stream: read snapshot: %w", err)
	}

	rb := sp.Child("rebuild")
	defer rb.Finish()
	e.mu.Lock()
	defer e.mu.Unlock()
	if got, want := st.Config, e.cfgState(); got != want {
		return fmt.Errorf("%w: snapshot %+v, engine %+v", ErrConfigMismatch, got, want)
	}
	if len(st.Feats) != e.g.N() || len(st.FeatSet) != e.g.N() {
		return fmt.Errorf("stream: snapshot has %d features / %d coverage flags for %d nodes",
			len(st.Feats), len(st.FeatSet), e.g.N())
	}

	// Rebuild the component state first so a corrupt snapshot is rejected
	// before anything is overwritten.
	var models []*ar.Model
	if e.cfg.Order >= 1 {
		if len(st.Models) != e.g.N() {
			return fmt.Errorf("stream: snapshot has %d models for %d nodes", len(st.Models), e.g.N())
		}
		models = make([]*ar.Model, len(st.Models))
		for u := range st.Models {
			m, err := ar.FromState(st.Models[u])
			if err != nil {
				return fmt.Errorf("stream: restore model %d: %w", u, err)
			}
			models[u] = m
		}
	}
	var maint *update.Maintainer
	var idx *index.Index
	if st.Ready {
		maint, err = update.FromState(e.g, update.Config{
			Delta: e.cfg.Delta, Slack: e.cfg.Slack, Metric: e.cfg.Metric,
			Obs: e.cfg.Obs,
		}, *st.Maint)
		if err != nil {
			return fmt.Errorf("stream: restore maintainer: %w", err)
		}
		idx, err = index.FromState(e.g, e.cfg.Metric, *st.Index)
		if err != nil {
			return fmt.Errorf("stream: restore index: %w", err)
		}
	}

	e.seq = st.Seq
	e.epoch = st.Epoch
	e.sinceRecluster = int(st.SinceRecluster)
	e.ready = st.Ready
	e.warm = st.Warm
	e.featCovered = st.FeatCovered
	e.models = models
	e.feats = make([]metric.Feature, e.g.N())
	for u, f := range st.Feats {
		e.feats[u] = f.Clone()
	}
	e.featSet = append([]bool(nil), st.FeatSet...)
	e.maint, e.idx = maint, idx
	e.readings = st.Readings
	e.updates = st.Updates
	e.reclusters = st.Reclusters
	e.rebuilds = st.Rebuilds
	e.refreshMsgs = st.RefreshMsgs
	e.screening = st.Screening
	e.maintMsgs = st.MaintMsgs.Clone()
	e.bootstrapStats = st.BootstrapStats.Clone()
	e.reclusterStats = st.ReclusterStats.Clone()
	e.rebuildStats = st.RebuildStats.Clone()

	if e.ready {
		// Publish the restored epoch directly — publish() would mint a new
		// epoch number, but this state IS epoch st.Epoch.
		e.idxPublished = true
		e.snap.Store(&Snapshot{
			Epoch:      e.epoch,
			Clustering: e.maint.Clustering(),
			Index:      e.idx,
			Features:   e.idx.Features,
		})
		e.eobs.publish(e.epoch, e.maint.NumClusters(), e.maint.Fragmentation(), e.idx.MaxDepth())
	} else {
		e.idxPublished = false
		e.snap.Store(nil)
	}
	e.eobs.restore(time.Since(start)) //elink:allow walltime — restore latency telemetry; recovered state comes from the snapshot bytes
	return nil
}

// ReplayWAL applies every journaled batch with a sequence number past
// the engine's current one — the recovery tail. Records are applied
// through the normal ingest path but never re-journaled. A gap in the
// sequence numbers (a missing segment) is an error: replaying across it
// would produce a state that never existed.
func (e *Engine) ReplayWAL(w *persist.WAL) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	replayed := 0
	err := w.Replay(e.seq, func(rec *persist.BatchRecord) error {
		if rec.Seq != e.seq+1 {
			return fmt.Errorf("stream: WAL gap: record seq %d after engine seq %d", rec.Seq, e.seq)
		}
		switch rec.Kind {
		case persist.RecordReadings:
			batch := make([]Reading, len(rec.Nodes))
			for i := range rec.Nodes {
				batch[i] = Reading{Node: topology.NodeID(rec.Nodes[i]), Value: rec.Values[i]}
			}
			if _, err := e.ingestLocked(batch, nil); err != nil {
				return fmt.Errorf("stream: replay batch %d: %w", rec.Seq, err)
			}
		case persist.RecordFeatures:
			batch := make([]FeatureUpdate, len(rec.Nodes))
			for i := range rec.Nodes {
				batch[i] = FeatureUpdate{Node: topology.NodeID(rec.Nodes[i]), Feature: metric.Feature(rec.Features[i])}
			}
			if _, err := e.ingestFeaturesLocked(batch, nil); err != nil {
				return fmt.Errorf("stream: replay batch %d: %w", rec.Seq, err)
			}
		default:
			return fmt.Errorf("stream: replay batch %d: unknown record kind %d", rec.Seq, rec.Kind)
		}
		e.seq = rec.Seq
		replayed++
		return nil
	})
	if replayed > 0 {
		e.eobs.replayed(int64(replayed))
	}
	return replayed, err
}
