package stream

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"elink/internal/ar"
	"elink/internal/metric"
	"elink/internal/obs"
	"elink/internal/persist"
	"elink/internal/topology"
)

// spanEngine builds an Order-1 engine with a span tracer attached and
// streams enough readings to bootstrap plus extra maintained epochs.
func spanEngine(t *testing.T, spans *obs.SpanTracer) *Engine {
	t.Helper()
	g := topology.NewGrid(4, 4)
	rng := rand.New(rand.NewSource(7))
	series := make([][]float64, g.N())
	for u := 0; u < g.N(); u++ {
		alpha := 0.2
		if g.Pos[u].X >= 2 {
			alpha = 0.8
		}
		series[u] = ar.Simulate([]float64{alpha}, 120, []float64{1}, ar.GaussianNoise(rng, 0.2))
	}
	e, err := New(g, Config{
		Order: 1, Delta: 0.3, Slack: 0.03, Metric: metric.Scalar{},
		WarmupObs: 60, Policy: PolicyAdaptive, Seed: 5, Spans: spans,
	})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 12; b++ {
		var batch []Reading
		for u := 0; u < g.N(); u++ {
			for k := 0; k < 10; k++ {
				batch = append(batch, Reading{Node: topology.NodeID(u), Value: series[u][b*10+k]})
			}
		}
		if _, err := e.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	}
	if !e.Ready() {
		t.Fatal("engine never bootstrapped")
	}
	return e
}

// TestEpochSpanAttribution drives the streaming pipeline with a span
// tracer attached and checks the acceptance property: an epoch's time is
// fully attributed — the self-times of the whole span tree telescope to
// the epoch wall time exactly (sequential pipeline), and the direct
// children (validate/refit/maintain/index/publish) account for at least
// 95% of the slowest epoch's wall time.
func TestEpochSpanAttribution(t *testing.T) {
	spans := obs.NewSpanTracer(64, 8)
	e := spanEngine(t, spans)

	traces := spans.Recent(0)
	if len(traces) == 0 {
		t.Fatal("no span traces recorded")
	}
	var epochs int
	for _, tr := range traces {
		if tr.Name != "epoch" {
			continue
		}
		epochs++
		var selfSum int64
		rootDur := int64(-1)
		for _, s := range tr.Spans {
			selfSum += s.SelfNs
			if s.Parent == -1 {
				rootDur = s.DurNs
			}
		}
		if rootDur != tr.WallNs {
			t.Fatalf("trace %d: root dur %d != wall %d", tr.Seq, rootDur, tr.WallNs)
		}
		// The engine pipeline is strictly sequential, so self-times
		// telescope to the wall time with zero residual.
		if selfSum != tr.WallNs {
			t.Fatalf("trace %d: sum(SelfNs)=%d, wall=%d", tr.Seq, selfSum, tr.WallNs)
		}
	}
	if epochs == 0 {
		t.Fatal("no epoch traces recorded")
	}

	// The slowest epoch (the bootstrap clustering) is long enough that
	// clock-read overhead is negligible; its direct children must cover
	// at least 95% of the wall time.
	slow := spans.Slowest()
	if len(slow) == 0 {
		t.Fatal("no slowest traces")
	}
	tr := slow[0]
	var childDur int64
	for _, s := range tr.Spans {
		if s.Parent == 0 {
			childDur += s.DurNs
		}
	}
	if childDur < tr.WallNs*95/100 {
		t.Fatalf("slowest epoch: children cover %d of %d ns (%.1f%%), want >= 95%%",
			childDur, tr.WallNs, 100*float64(childDur)/float64(tr.WallNs))
	}

	// Phase table reaches Stats and carries the pipeline phases.
	st := e.Stats()
	if len(st.Phases) == 0 {
		t.Fatal("Stats.Phases empty with spans attached")
	}
	want := map[string]bool{"epoch": false, "refit": false, "maintain": false, "publish": false, "bootstrap": false}
	for _, p := range st.Phases {
		if _, ok := want[p.Phase]; ok {
			want[p.Phase] = true
		}
	}
	for phase, seen := range want {
		if !seen {
			t.Fatalf("phase %q missing from attribution table: %+v", phase, st.Phases)
		}
	}
}

// TestSpansOffStatsEmpty: an engine without a tracer reports no phases
// and pays no tracing.
func TestSpansOffStatsEmpty(t *testing.T) {
	e := spanEngine(t, nil)
	if ph := e.Stats().Phases; ph != nil {
		t.Fatalf("Phases = %+v, want nil without a tracer", ph)
	}
}

// TestQuerySpans: range and path queries produce their own root traces
// with the query execution phases as children.
func TestQuerySpans(t *testing.T) {
	spans := obs.NewSpanTracer(256, 8)
	e := spanEngine(t, spans)

	if _, err := e.RangeQuery(metric.Feature{0.5}, 0.2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.PathQuery(metric.Feature{0.2}, 0.05, 0, topology.NodeID(e.Graph().N()-1)); err != nil {
		t.Fatal(err)
	}

	var rangeTr, pathTr bool
	for _, tr := range spans.Recent(0) {
		switch tr.Name {
		case "range-query":
			rangeTr = true
			names := map[string]bool{}
			for _, s := range tr.Spans {
				names[s.Name] = true
			}
			if !names["q-backbone"] || !names["q-clusters"] || !names["q-aggregate"] {
				t.Fatalf("range trace children = %v", names)
			}
		case "path-query":
			pathTr = true
			names := map[string]bool{}
			for _, s := range tr.Spans {
				names[s.Name] = true
			}
			if !names["q-classify"] {
				t.Fatalf("path trace children = %v", names)
			}
		}
	}
	if !rangeTr || !pathTr {
		t.Fatalf("missing query traces: range=%v path=%v", rangeTr, pathTr)
	}
}

// TestPersistSpans: snapshot save/restore and WAL-journaled epochs show
// up as traces with the durability phases as children.
func TestPersistSpans(t *testing.T) {
	spans := obs.NewSpanTracer(256, 8)
	e := spanEngine(t, spans)

	wal, err := persist.OpenWAL(t.TempDir(), persist.WALOptions{Fsync: persist.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	e.AttachWAL(wal)
	batch := []Reading{{Node: 0, Value: 0.4}, {Node: 1, Value: 0.6}}
	if _, err := e.Ingest(batch); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := e.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := e.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	found := map[string]map[string]bool{}
	for _, tr := range spans.Recent(0) {
		names := map[string]bool{}
		for _, s := range tr.Spans {
			names[s.Name] = true
		}
		found[tr.Name] = names
	}
	if names := found["snapshot"]; names == nil || !names["copy-state"] || !names["enc-models"] || !names["enc-index"] {
		t.Fatalf("snapshot trace children = %v", found["snapshot"])
	}
	if names := found["restore"]; names == nil || !names["decode"] || !names["rebuild"] {
		t.Fatalf("restore trace children = %v", found["restore"])
	}
	// The WAL-journaled epoch carries journal -> wal-append -> fsync.
	var journaled map[string]bool
	for _, tr := range spans.Recent(0) {
		if tr.Name != "epoch" {
			continue
		}
		names := map[string]bool{}
		for _, s := range tr.Spans {
			names[s.Name] = true
		}
		if names["journal"] {
			journaled = names
		}
	}
	if journaled == nil || !journaled["wal-append"] || !journaled["fsync"] {
		t.Fatalf("journaled epoch children = %v", journaled)
	}
}

// TestSpanDeterminism: the engine's observable trajectory is bitwise
// identical with and without a span tracer attached — spans read clocks
// but never feed state.
func TestSpanDeterminism(t *testing.T) {
	snap := func(spans *obs.SpanTracer) []byte {
		e := spanEngine(t, spans)
		var buf bytes.Buffer
		if _, err := e.SaveSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	bare := snap(nil)
	spanned := snap(obs.NewSpanTracer(64, 8))
	if !bytes.Equal(bare, spanned) {
		t.Fatal("engine snapshot differs with spans attached")
	}
	// And tracing through a parent span (the HTTP path) is equivalent.
	tr := obs.NewSpanTracer(8, 2)
	root := tr.Start("http")
	time.Sleep(time.Microsecond)
	root.Finish()
	if tr.Total() != 1 {
		t.Fatal("sanity: tracer records root traces")
	}
}
