package stream

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"elink/internal/ar"
	"elink/internal/cluster"
	"elink/internal/elink"
	"elink/internal/index"
	"elink/internal/metric"
	"elink/internal/obs"
	"elink/internal/persist"
	"elink/internal/query"
	"elink/internal/topology"
	"elink/internal/update"
)

// ErrNotReady is returned by queries and snapshot-dependent calls before
// every node's AR model has warmed up and the bootstrap clustering ran.
var ErrNotReady = errors.New("stream: engine has no clustering yet (models still warming up)")

// ErrInvalidBatch tags ingest errors caused by the batch payload itself —
// a node id outside the graph, an empty feature vector, or the wrong
// ingest call for the engine's configuration. Callers (e.g. the HTTP
// daemon) match it with errors.Is to map payload mistakes to 4xx
// statuses while treating every other ingest error as engine-internal.
var ErrInvalidBatch = errors.New("stream: invalid batch")

// Engine is the live streaming engine: single ingest writer, lock-free
// concurrent query readers against an atomically published Snapshot.
type Engine struct {
	g   *topology.Graph
	cfg Config

	// mu serializes the ingest/maintenance path and guards every field
	// below it. Queries never take it.
	mu sync.Mutex
	// seq counts successfully applied ingest batches (warmup included).
	// Snapshots record it and WAL records carry it, so recovery knows
	// exactly where the snapshot ends and the journal tail begins.
	seq int64
	// wal, when attached, journals every applied batch (journal-after-
	// commit: the record is appended only once the batch took effect).
	wal *persist.WAL
	// walErr latches the first journal append failure. Once set, every
	// further ingest is rejected with it (wrapping ErrWALDiverged): the
	// in-memory state holds a batch the journal lacks, so accepting more
	// writes would let the two histories drift apart silently.
	walErr      error
	models      []*ar.Model // nil when Order == 0 (feature-push deployments)
	feats       []metric.Feature
	warm        int    // nodes whose models have reached WarmupObs
	featSet     []bool // nodes covered by IngestFeatures before bootstrap
	featCovered int
	ready       bool

	maint *update.Maintainer
	idx   *index.Index
	// idxPublished marks idx as visible to readers via the current
	// snapshot; the next in-place mutation must clone first.
	idxPublished bool

	epoch          int64
	sinceRecluster int // epochs since the last full ELink run

	readings int64
	updates  int64
	// Accumulators over finished maintainer generations (a recluster
	// retires the current maintainer; its telemetry folds in here).
	screening      update.Counters
	maintMsgs      cluster.Stats
	bootstrapStats cluster.Stats
	reclusterStats cluster.Stats
	rebuildStats   cluster.Stats
	reclusters     int64
	rebuilds       int64
	refreshMsgs    int64

	// eobs caches metric handles (zero value = observability off).
	eobs engineObs

	snap atomic.Pointer[Snapshot]

	// qmu guards only the query-side telemetry, so recording a query
	// never contends with ingest.
	qmu          sync.Mutex
	rangeQ       int64
	pathQ        int64
	queryMsgs    int64
	queryTime    time.Duration
	maxQueryTime time.Duration
}

// New builds an engine over g. With Order >= 1 the engine starts cold:
// every node runs an untrained AR(Order) model fed by Ingest, and the
// first clustering is bootstrapped once all models have seen WarmupObs
// readings. With Order == 0 the engine skips local model fitting and
// accepts coefficient pushes via IngestFeatures only (nodes that refit
// their own models and ship drift directly).
func New(g *topology.Graph, cfg Config) (*Engine, error) {
	if g == nil || g.N() == 0 {
		return nil, errors.New("stream: nil or empty graph")
	}
	if cfg.Order < 0 {
		return nil, fmt.Errorf("stream: AR order must be >= 0, got %d", cfg.Order)
	}
	if cfg.Metric == nil {
		return nil, errors.New("stream: Metric is required")
	}
	if cfg.Delta <= 0 {
		return nil, fmt.Errorf("stream: Delta must be > 0, got %v", cfg.Delta)
	}
	if cfg.Slack < 0 || 2*cfg.Slack >= cfg.Delta {
		return nil, fmt.Errorf("stream: slack %v must satisfy 0 <= 2Δ < δ=%v", cfg.Slack, cfg.Delta)
	}
	cfg = cfg.withDefaults()
	e := &Engine{
		g:       g,
		cfg:     cfg,
		feats:   make([]metric.Feature, g.N()),
		featSet: make([]bool, g.N()),
		eobs:    newEngineObs(cfg.Obs, cfg.Trace),
	}
	if cfg.Order >= 1 {
		e.models = make([]*ar.Model, g.N())
		for u := range e.models {
			e.models[u] = ar.NewModel(cfg.Order)
		}
	}
	return e, nil
}

// Graph returns the engine's communication graph.
func (e *Engine) Graph() *topology.Graph { return e.g }

// Config returns the engine's configuration (defaults resolved).
func (e *Engine) Config() Config { return e.cfg }

// Ready reports whether the bootstrap clustering has run.
func (e *Engine) Ready() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ready
}

// Snapshot returns the current immutable epoch view, or nil before
// bootstrap. The returned structure is frozen; it stays valid and
// consistent while ingest continues.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// startSpan opens the engine-side span for one operation: a child of
// parent when the caller is already traced (an HTTP request span), else
// a new root from the configured tracer (nil when spans are off — every
// span method is nil-safe).
func (e *Engine) startSpan(name string, parent *obs.Span) *obs.Span {
	if parent != nil {
		return parent.Child(name)
	}
	return e.cfg.Spans.Start(name)
}

// Ingest consumes one batch of readings as a single epoch: models refit
// by RLS, drifted features stream through the slack-Δ protocol, the
// index is repaired or rebuilt, the re-cluster policy is applied, and a
// fresh snapshot is published. Ingest calls are serialized; concurrent
// queries keep running against the previous snapshot throughout.
func (e *Engine) Ingest(batch []Reading) (*IngestResult, error) {
	return e.IngestSpanned(batch, nil)
}

// IngestSpanned is Ingest with the epoch traced as an "epoch" span —
// a child of parent when non-nil, else a new root on Config.Spans. The
// pipeline phases (validate, refit, maintain, index/recluster, journal,
// publish) become child spans whose self-times sum to the epoch wall
// time.
func (e *Engine) IngestSpanned(batch []Reading, parent *obs.Span) (*IngestResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.walErr != nil {
		return nil, e.walErr
	}
	sp := e.startSpan("epoch", parent)
	defer sp.Finish()
	res, err := e.ingestLocked(batch, sp)
	if err != nil {
		sp.Label("error", err.Error())
		return nil, err
	}
	if e.wal != nil {
		nodes := make([]int64, len(batch))
		values := make([]float64, len(batch))
		for i, r := range batch {
			nodes[i], values[i] = int64(r.Node), r.Value
		}
		js := sp.Child("journal")
		err := e.journalLocked(&persist.BatchRecord{
			Kind: persist.RecordReadings, Nodes: nodes, Values: values,
		}, js)
		js.Finish()
		if err != nil {
			return res, err
		}
	}
	e.seq++
	sp.Label("epoch", strconv.FormatInt(e.epoch, 10))
	return res, nil
}

// ingestLocked validates the whole batch up front, then applies it, so a
// rejected batch leaves the engine untouched — the invariant the WAL
// relies on (an invalid batch is never journaled, a journaled batch
// replays without partial-application ambiguity).
func (e *Engine) ingestLocked(batch []Reading, sp *obs.Span) (*IngestResult, error) {
	if e.models == nil {
		return nil, fmt.Errorf("%w: engine configured with Order=0 ingests features only (use IngestFeatures)", ErrInvalidBatch)
	}
	vs := sp.Child("validate")
	var verr error
	for _, r := range batch {
		if int(r.Node) < 0 || int(r.Node) >= e.g.N() {
			verr = fmt.Errorf("%w: reading for node %d outside [0,%d)", ErrInvalidBatch, r.Node, e.g.N())
			break
		}
	}
	vs.Finish()
	if verr != nil {
		return nil, verr
	}

	rs := sp.Child("refit")
	res := &IngestResult{}
	touched := make(map[topology.NodeID]bool)
	for _, r := range batch {
		m := e.models[r.Node]
		before := m.Seen()
		if m.Observe(r.Value) {
			touched[r.Node] = true
		}
		if before < e.cfg.WarmupObs && m.Seen() >= e.cfg.WarmupObs {
			e.warm++
		}
		e.readings++
		res.Readings++
	}
	e.eobs.readings.Add(int64(res.Readings))

	if !e.ready {
		if e.warm < e.g.N() {
			rs.Finish()
			return res, nil // still warming up
		}
		for u := range e.models {
			e.feats[u] = metric.Feature(e.models[u].Snapshot())
		}
		rs.Finish()
		return res, e.finishBootstrap(res, sp)
	}

	nodes := sortedNodes(touched)
	for _, u := range nodes {
		e.feats[u] = metric.Feature(e.models[u].Snapshot())
	}
	rs.Finish()
	return res, e.applyEpoch(nodes, res, sp)
}

// IngestFeatures consumes one batch of already-fitted coefficient
// updates as a single epoch, for deployments where nodes refit their own
// models and ship drift directly. Before bootstrap the updates accumulate
// until every node has a feature; afterwards each batch flows through the
// same maintenance/index/policy path as Ingest.
func (e *Engine) IngestFeatures(batch []FeatureUpdate) (*IngestResult, error) {
	return e.IngestFeaturesSpanned(batch, nil)
}

// IngestFeaturesSpanned is IngestFeatures with the epoch traced (see
// IngestSpanned).
func (e *Engine) IngestFeaturesSpanned(batch []FeatureUpdate, parent *obs.Span) (*IngestResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.walErr != nil {
		return nil, e.walErr
	}
	sp := e.startSpan("epoch", parent)
	defer sp.Finish()
	res, err := e.ingestFeaturesLocked(batch, sp)
	if err != nil {
		sp.Label("error", err.Error())
		return nil, err
	}
	if e.wal != nil {
		nodes := make([]int64, len(batch))
		features := make([][]float64, len(batch))
		for i, up := range batch {
			nodes[i], features[i] = int64(up.Node), up.Feature
		}
		js := sp.Child("journal")
		err := e.journalLocked(&persist.BatchRecord{
			Kind: persist.RecordFeatures, Nodes: nodes, Features: features,
		}, js)
		js.Finish()
		if err != nil {
			return res, err
		}
	}
	e.seq++
	sp.Label("epoch", strconv.FormatInt(e.epoch, 10))
	return res, nil
}

// ingestFeaturesLocked validates the whole batch up front, then applies
// it (see ingestLocked for why).
func (e *Engine) ingestFeaturesLocked(batch []FeatureUpdate, sp *obs.Span) (*IngestResult, error) {
	vs := sp.Child("validate")
	var verr error
	for _, up := range batch {
		if int(up.Node) < 0 || int(up.Node) >= e.g.N() {
			verr = fmt.Errorf("%w: feature update for node %d outside [0,%d)", ErrInvalidBatch, up.Node, e.g.N())
			break
		}
		if len(up.Feature) == 0 {
			verr = fmt.Errorf("%w: empty feature for node %d", ErrInvalidBatch, up.Node)
			break
		}
	}
	vs.Finish()
	if verr != nil {
		return nil, verr
	}

	rs := sp.Child("refit")
	res := &IngestResult{}
	touched := make(map[topology.NodeID]bool)
	for _, up := range batch {
		e.feats[up.Node] = up.Feature.Clone()
		if !e.featSet[up.Node] {
			e.featSet[up.Node] = true
			e.featCovered++
		}
		touched[up.Node] = true
		res.Readings++
	}
	e.eobs.readings.Add(int64(res.Readings))

	if !e.ready {
		rs.Finish()
		if e.featCovered < e.g.N() {
			return res, nil // waiting for full feature coverage
		}
		return res, e.finishBootstrap(res, sp)
	}
	nodes := sortedNodes(touched)
	rs.Finish()
	return res, e.applyEpoch(nodes, res, sp)
}

func sortedNodes(set map[topology.NodeID]bool) []topology.NodeID {
	nodes := make([]topology.NodeID, 0, len(set))
	for u := range set {
		nodes = append(nodes, u)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

// applyEpoch streams the touched nodes' current features through the
// maintenance protocol, keeps the index consistent, applies the
// re-cluster policy and publishes the epoch's snapshot.
func (e *Engine) applyEpoch(nodes []topology.NodeID, res *IngestResult, sp *obs.Span) error {
	ms := sp.Child("maintain")
	before := e.maint.CountersSnapshot()
	for _, u := range nodes {
		e.maint.Update(u, e.feats[u])
		e.updates++
		res.Updates++
	}
	after := e.maint.CountersSnapshot()
	res.Detaches = after.Detaches - before.Detaches
	ms.Finish()

	e.sinceRecluster++
	switch {
	case e.cfg.Policy == PolicyPeriodic && e.sinceRecluster >= e.cfg.Period,
		e.cfg.Policy == PolicyAdaptive && e.maint.NeedsRecluster(e.cfg.FragmentationFactor):
		cs := sp.Child("recluster")
		err := e.recluster(cs)
		cs.Finish()
		if err != nil {
			return err
		}
		e.eobs.reclusters.Inc()
		res.Reclustered = true
	case res.Detaches > 0:
		// Membership changed: the M-tree topology is stale, rebuild it
		// over the maintained clustering.
		is := sp.Child("index")
		err := e.rebuildIndex()
		is.Finish()
		if err != nil {
			return err
		}
		e.eobs.rebuilds.Inc()
	case len(nodes) > 0:
		// Membership stable: repair routing features and covering radii
		// in place, one bounded wave per drifted node.
		is := sp.Child("index")
		e.cloneIndexIfPublished()
		for _, u := range nodes {
			msgs, err := e.idx.Refresh(u, e.feats[u])
			if err != nil {
				is.Finish()
				return err
			}
			e.refreshMsgs += msgs
			e.eobs.refresh.Add(msgs)
		}
		is.Finish()
	}

	ps := sp.Child("publish")
	e.publish()
	ps.Finish()
	res.Ready = true
	res.Epoch = e.epoch
	res.NumClusters = e.maint.NumClusters()
	return nil
}

// finishBootstrap runs the first full clustering over e.feats and fills
// the batch result.
func (e *Engine) finishBootstrap(res *IngestResult, sp *obs.Span) error {
	bs := sp.Child("bootstrap")
	r, idx, m, err := e.fullCluster(bs)
	bs.Finish()
	if err != nil {
		return err
	}
	e.bootstrapStats.Add(r.Stats)
	e.bootstrapStats.Add(idx.BuildStats)
	e.maint, e.idx = m, idx
	e.ready = true
	e.sinceRecluster = 0
	ps := sp.Child("publish")
	e.publish()
	ps.Finish()
	res.Ready = true
	res.Epoch = e.epoch
	res.NumClusters = e.maint.NumClusters()
	return nil
}

// recluster retires the current maintainer and re-runs ELink on the
// current features (the §6 fallback the policy knob gates).
func (e *Engine) recluster(sp *obs.Span) error {
	e.screening = addCounters(e.screening, e.maint.CountersSnapshot())
	e.maintMsgs.Add(e.maint.Stats())
	res, idx, m, err := e.fullCluster(sp)
	if err != nil {
		return err
	}
	e.reclusterStats.Add(res.Stats)
	e.reclusterStats.Add(idx.BuildStats)
	e.reclusters++
	e.maint, e.idx, e.idxPublished = m, idx, false
	e.sinceRecluster = 0
	return nil
}

// fullCluster runs ELink at δ − 2Δ on the current features and wraps the
// result with a fresh maintainer and index.
func (e *Engine) fullCluster(sp *obs.Span) (*cluster.Result, *index.Index, *update.Maintainer, error) {
	feats := make([]metric.Feature, len(e.feats))
	for u := range feats {
		feats[u] = e.feats[u].Clone()
	}
	rs := sp.Child("elink-run")
	res, err := elink.Run(e.g, elink.Config{
		Delta:    e.cfg.Delta - 2*e.cfg.Slack,
		Metric:   e.cfg.Metric,
		Features: feats,
		Mode:     e.cfg.Mode,
		Seed:     e.cfg.Seed,
		Obs:      e.cfg.Obs,
		Trace:    e.cfg.Trace,
	})
	rs.Finish()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("stream: clustering run: %w", err)
	}
	m, err := update.NewMaintainer(e.g, res.Clustering, feats, update.Config{
		Delta: e.cfg.Delta, Slack: e.cfg.Slack, Metric: e.cfg.Metric,
		Obs: e.cfg.Obs,
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("stream: maintainer: %w", err)
	}
	is := sp.Child("index-build")
	idx, err := index.Build(e.g, res.Clustering, feats, e.cfg.Metric)
	is.Finish()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("stream: index build: %w", err)
	}
	return res, idx, m, nil
}

// rebuildIndex rebuilds the M-tree over the maintained membership.
func (e *Engine) rebuildIndex() error {
	idx, err := index.Build(e.g, e.maint.Clustering(), e.feats, e.cfg.Metric)
	if err != nil {
		return fmt.Errorf("stream: index rebuild: %w", err)
	}
	e.rebuildStats.Add(idx.BuildStats)
	e.rebuilds++
	e.idx, e.idxPublished = idx, false
	return nil
}

// cloneIndexIfPublished implements the copy-on-write epoch swap: the
// published index stays frozen for readers while the writer mutates a
// private clone.
func (e *Engine) cloneIndexIfPublished() {
	if e.idxPublished {
		e.idx = e.idx.Clone()
		e.idxPublished = false
	}
}

// publish freezes the writer's state into a new snapshot and swaps it in
// for readers.
func (e *Engine) publish() {
	e.epoch++
	e.idxPublished = true
	e.snap.Store(&Snapshot{
		Epoch:      e.epoch,
		Clustering: e.maint.Clustering(),
		Index:      e.idx,
		Features:   e.idx.Features,
	})
	e.eobs.publish(e.epoch, e.maint.NumClusters(), e.maint.Fragmentation(), e.idx.MaxDepth())
}

// RangeQuery answers a §7.2 range query against the current snapshot.
// Safe for arbitrary concurrency with Ingest and other queries.
func (e *Engine) RangeQuery(q metric.Feature, r float64, initiator topology.NodeID) (*query.RangeResult, error) {
	return e.RangeQuerySpanned(q, r, initiator, nil)
}

// RangeQuerySpanned is RangeQuery traced as a "range-query" span (child
// of parent when non-nil, else a root on Config.Spans) with the query's
// execution phases as children.
func (e *Engine) RangeQuerySpanned(q metric.Feature, r float64, initiator topology.NodeID, parent *obs.Span) (*query.RangeResult, error) {
	s := e.snap.Load()
	if s == nil {
		return nil, ErrNotReady
	}
	if int(initiator) < 0 || int(initiator) >= e.g.N() {
		return nil, fmt.Errorf("stream: initiator %d outside [0,%d)", initiator, e.g.N())
	}
	sp := e.startSpan("range-query", parent)
	start := time.Now() //elink:allow walltime — query latency telemetry; never feeds deterministic figure state
	res := query.RangeSpanned(s.Index, q, r, initiator, sp)
	d := time.Since(start) //elink:allow walltime — query latency telemetry; never feeds deterministic figure state
	sp.Finish()
	e.recordQuery(&e.rangeQ, d, res.Stats.Messages)
	query.ObserveRange(e.cfg.Obs, res, d)
	return res, nil
}

// PathQuery answers a §7.3 path query against the current snapshot.
// Safe for arbitrary concurrency with Ingest and other queries.
func (e *Engine) PathQuery(danger metric.Feature, gamma float64, src, dst topology.NodeID) (*query.PathResult, error) {
	return e.PathQuerySpanned(danger, gamma, src, dst, nil)
}

// PathQuerySpanned is PathQuery traced as a "path-query" span (see
// RangeQuerySpanned).
func (e *Engine) PathQuerySpanned(danger metric.Feature, gamma float64, src, dst topology.NodeID, parent *obs.Span) (*query.PathResult, error) {
	s := e.snap.Load()
	if s == nil {
		return nil, ErrNotReady
	}
	if int(src) < 0 || int(src) >= e.g.N() || int(dst) < 0 || int(dst) >= e.g.N() {
		return nil, fmt.Errorf("stream: endpoints (%d,%d) outside [0,%d)", src, dst, e.g.N())
	}
	sp := e.startSpan("path-query", parent)
	start := time.Now() //elink:allow walltime — query latency telemetry; never feeds deterministic figure state
	res := query.PathSpanned(s.Index, danger, gamma, src, dst, sp)
	d := time.Since(start) //elink:allow walltime — query latency telemetry; never feeds deterministic figure state
	sp.Finish()
	e.recordQuery(&e.pathQ, d, res.Stats.Messages)
	query.ObservePath(e.cfg.Obs, res, d)
	return res, nil
}

func (e *Engine) recordQuery(counter *int64, d time.Duration, msgs int64) {
	e.qmu.Lock()
	*counter++
	e.queryMsgs += msgs
	e.queryTime += d
	if d > e.maxQueryTime {
		e.maxQueryTime = d
	}
	e.qmu.Unlock()
}

// Stats returns the engine's cumulative counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := Stats{
		Epochs:        e.epoch,
		CollectedAt:   time.Now(), //elink:allow walltime — Stats.CollectedAt is a scrape timestamp, not engine state
		Readings:      e.readings,
		Updates:       e.updates,
		Screening:     e.screening,
		BootstrapMsgs: e.bootstrapStats.Messages,
		ReclusterMsgs: e.reclusterStats.Messages,
		Reclusters:    e.reclusters,
		IndexRebuilds: e.rebuilds,
		Breakdown:     make(map[string]int64),
	}
	merge := func(cs cluster.Stats) {
		for k, v := range cs.Breakdown {
			s.Breakdown[k] += v
		}
	}
	merge(e.maintMsgs)
	merge(e.bootstrapStats)
	merge(e.reclusterStats)
	merge(e.rebuildStats)
	s.MaintenanceMsgs = e.maintMsgs.Messages
	s.IndexRebuildMsgs = e.rebuildStats.Messages
	s.IndexRepairMsgs = e.refreshMsgs
	if e.refreshMsgs > 0 {
		s.Breakdown["refresh"] = e.refreshMsgs
	}
	if e.maint != nil {
		cur := e.maint.Stats()
		merge(cur)
		s.MaintenanceMsgs += cur.Messages
		s.Screening = addCounters(s.Screening, e.maint.CountersSnapshot())
		s.NumClusters = e.maint.NumClusters()
	}
	e.mu.Unlock()

	e.qmu.Lock()
	s.RangeQueries = e.rangeQ
	s.PathQueries = e.pathQ
	s.QueryMsgs = e.queryMsgs
	s.QueryTime = e.queryTime
	s.MaxQueryTime = e.maxQueryTime
	e.qmu.Unlock()

	// Attribution table from the span tracer (nil-safe: empty when spans
	// are off). Read outside both engine locks — the tracer has its own.
	s.Phases = e.cfg.Spans.PhaseStats()
	return s
}
