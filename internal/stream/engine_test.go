package stream

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"elink/internal/ar"
	"elink/internal/data"
	"elink/internal/elink"
	"elink/internal/index"
	"elink/internal/metric"
	"elink/internal/query"
	"elink/internal/topology"
)

// featEngine builds an Order-0 engine and bootstraps it from the given
// features in one IngestFeatures batch.
func featEngine(t *testing.T, g *topology.Graph, feats []metric.Feature, cfg Config) *Engine {
	t.Helper()
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]FeatureUpdate, len(feats))
	for u := range feats {
		batch[u] = FeatureUpdate{Node: topology.NodeID(u), Feature: feats[u]}
	}
	res, err := e.IngestFeatures(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ready || res.Epoch != 1 {
		t.Fatalf("bootstrap batch: %+v, want ready at epoch 1", res)
	}
	return e
}

// twoClusterEngine is the stream-path analogue of update's
// twoClusterSetup: path graph 0-1-2-3-4-5, two tight feature groups.
func twoClusterEngine(t *testing.T, policy ReclusterPolicy) *Engine {
	t.Helper()
	g := topology.NewGrid(1, 6)
	feats := []metric.Feature{{0}, {0.1}, {0.2}, {10}, {10.1}, {10.2}}
	e := featEngine(t, g, feats, Config{
		Delta: 2, Slack: 0.1, Metric: metric.Scalar{}, Policy: policy, Seed: 1,
	})
	if n := e.Snapshot().NumClusters(); n != 2 {
		t.Fatalf("bootstrap produced %d clusters, want 2", n)
	}
	return e
}

// mustValidate checks the snapshot with the shared cluster validators.
// Fresh clusterings are pairwise δ−2Δ-compact; maintained epochs only
// guarantee member-to-root ≤ δ, so pairwise 2δ.
func mustValidate(t *testing.T, e *Engine, bound float64) {
	t.Helper()
	s := e.Snapshot()
	if s == nil {
		t.Fatal("no snapshot")
	}
	if err := s.Validate(e.Graph(), e.Config().Metric, bound); err != nil {
		t.Fatalf("epoch %d: %v", s.Epoch, err)
	}
}

func TestBootstrapFromReadings(t *testing.T) {
	g := topology.NewGrid(4, 4)
	rng := rand.New(rand.NewSource(3))
	// Two dynamics regimes: left half AR(1) alpha=0.2, right alpha=0.8.
	alpha := make([]float64, g.N())
	series := make([][]float64, g.N())
	for u := 0; u < g.N(); u++ {
		alpha[u] = 0.2
		if g.Pos[u].X >= 2 {
			alpha[u] = 0.8
		}
		series[u] = ar.Simulate([]float64{alpha[u]}, 120, []float64{1}, ar.GaussianNoise(rng, 0.2))
	}
	delta := 0.3
	e, err := New(g, Config{
		Order: 1, Delta: delta, Slack: 0.03, Metric: metric.Scalar{},
		WarmupObs: 60, Policy: PolicyAdaptive, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RangeQuery(metric.Feature{0.5}, 0.1, 0); !errors.Is(err, ErrNotReady) {
		t.Fatalf("query before warmup: err=%v, want ErrNotReady", err)
	}

	// Stream 12 batches of 10 readings per node; warmup crosses at 60.
	var ready bool
	for b := 0; b < 12; b++ {
		var batch []Reading
		for u := 0; u < g.N(); u++ {
			for k := 0; k < 10; k++ {
				batch = append(batch, Reading{Node: topology.NodeID(u), Value: series[u][b*10+k]})
			}
		}
		res, err := e.Ingest(batch)
		if err != nil {
			t.Fatal(err)
		}
		if b < 5 && (res.Ready || e.Snapshot() != nil) {
			t.Fatalf("batch %d: engine ready before warmup", b)
		}
		if res.Ready && !ready {
			ready = true
			// Right after a full run the clustering is δ−2Δ-compact.
			mustValidate(t, e, delta-2*0.03)
		} else if ready {
			mustValidate(t, e, 2*delta)
		}
	}
	if !ready || !e.Ready() {
		t.Fatal("engine never bootstrapped")
	}

	// The two dynamics regimes must have separated: alpha estimates
	// differ by ~0.6 > δ, so 0 and 15 cannot share a cluster.
	s := e.Snapshot()
	if s.Clustering.ClusterOf(0) == s.Clustering.ClusterOf(15) {
		t.Errorf("nodes with alpha 0.2 and 0.8 ended in the same cluster (feats %v vs %v)",
			s.Features[0], s.Features[15])
	}

	// Queries agree with central brute force on the same snapshot.
	got, err := e.RangeQuery(s.Features[0], 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := query.BruteForce(s.Features, metric.Scalar{}, s.Features[0], 0.1)
	if !reflect.DeepEqual(got.Matches, want) {
		t.Errorf("range matches %v, want %v", got.Matches, want)
	}

	st := e.Stats()
	if st.Readings != int64(12*10*g.N()) {
		t.Errorf("Readings = %d, want %d", st.Readings, 12*10*g.N())
	}
	// The pre-warmup query was rejected and must not be counted.
	if st.BootstrapMsgs == 0 || st.Epochs == 0 || st.RangeQueries != 1 {
		t.Errorf("stats = %+v, want bootstrap cost, epochs and 1 recorded range query", st)
	}
}

// TestAdjacentSimultaneousDrift pushes drift on the two boundary nodes of
// adjacent clusters in one epoch: one detaches and is adopted by the
// neighbouring cluster (detach-then-merge within a single epoch), the
// other absorbs a root update.
func TestAdjacentSimultaneousDrift(t *testing.T) {
	e := twoClusterEngine(t, PolicyNever)
	res, err := e.IngestFeatures([]FeatureUpdate{
		{Node: 2, Feature: metric.Feature{10.05}}, // jumps to the right regime
		{Node: 3, Feature: metric.Feature{10.3}},  // drifts inside its own
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detaches != 1 {
		t.Errorf("detaches = %d, want 1", res.Detaches)
	}
	if res.NumClusters != 2 {
		t.Errorf("clusters = %d, want 2 (detached node re-homed)", res.NumClusters)
	}
	s := e.Snapshot()
	if s.Clustering.ClusterOf(2) != s.Clustering.ClusterOf(3) {
		t.Error("node 2 was not adopted by the adjacent cluster")
	}
	if c := e.Stats().Screening; c.Rejoins != 1 {
		t.Errorf("screening = %+v, want one rejoin", c)
	}
	mustValidate(t, e, 2*2)
}

// TestClusterShrinksToSingleton empties a 3-node cluster down to a
// singleton in one epoch: the mid node detaches (stranding the far node),
// and every surviving fragment must stay a connected, compact cluster.
func TestClusterShrinksToSingleton(t *testing.T) {
	e := twoClusterEngine(t, PolicyNever)
	res, err := e.IngestFeatures([]FeatureUpdate{
		{Node: 1, Feature: metric.Feature{10.1}},
		{Node: 2, Feature: metric.Feature{10.2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 cannot rejoin through old-cluster neighbours => singleton;
	// node 2 is stranded from its root and splits off.
	if res.NumClusters != 4 {
		t.Errorf("clusters = %d, want 4 ({0} {1} {2} {3,4,5})", res.NumClusters)
	}
	s := e.Snapshot()
	for _, members := range s.Clustering.Members {
		if len(members) == 3 && members[0] == 0 {
			t.Error("left cluster did not shrink")
		}
	}
	if c := e.Stats().Screening; c.Singletons < 1 {
		t.Errorf("screening = %+v, want at least one singleton", c)
	}
	mustValidate(t, e, 2*2)
}

// TestAdaptiveReclusterHealsFragmentation runs the same shrink scenario
// under PolicyAdaptive: fragmentation (4 clusters from 2) crosses the 1.5
// factor and a full ELink run heals the clustering in the same epoch.
func TestAdaptiveReclusterHealsFragmentation(t *testing.T) {
	e := twoClusterEngine(t, PolicyAdaptive)
	res, err := e.IngestFeatures([]FeatureUpdate{
		{Node: 1, Feature: metric.Feature{10.1}},
		{Node: 2, Feature: metric.Feature{10.2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reclustered {
		t.Fatal("adaptive policy did not trigger a recluster")
	}
	if res.NumClusters != 2 {
		t.Errorf("clusters after recluster = %d, want 2 ({0} {1..5})", res.NumClusters)
	}
	st := e.Stats()
	if st.Reclusters != 1 || st.ReclusterMsgs == 0 {
		t.Errorf("stats = %+v, want one charged recluster", st)
	}
	// Fresh run: the tightened threshold holds pairwise.
	mustValidate(t, e, 2-2*0.1)
}

// TestPeriodicPolicy re-clusters on the configured epoch period.
func TestPeriodicPolicy(t *testing.T) {
	g := topology.NewGrid(1, 6)
	feats := []metric.Feature{{0}, {0.1}, {0.2}, {10}, {10.1}, {10.2}}
	e := featEngine(t, g, feats, Config{
		Delta: 2, Slack: 0.1, Metric: metric.Scalar{}, Policy: PolicyPeriodic, Period: 3, Seed: 1,
	})
	reclusters := 0
	for i := 0; i < 9; i++ {
		res, err := e.IngestFeatures([]FeatureUpdate{{Node: 0, Feature: metric.Feature{float64(i) * 0.01}}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Reclustered {
			reclusters++
		}
	}
	if reclusters != 3 {
		t.Errorf("periodic policy reclustered %d times over 9 epochs with period 3, want 3", reclusters)
	}
}

// TestSnapshotImmutableUnderIngest pins a snapshot, keeps ingesting, and
// checks the pinned epoch still answers identically and validates.
func TestSnapshotImmutableUnderIngest(t *testing.T) {
	e := twoClusterEngine(t, PolicyNever)
	pinned := e.Snapshot()
	q := metric.Feature{10.1}
	before := query.Range(pinned.Index, q, 0.15, 0)

	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		var batch []FeatureUpdate
		for u := 0; u < 6; u++ {
			f := pinned.Features[u].Clone()
			f[0] += rng.NormFloat64() * 0.5 * float64(i)
			batch = append(batch, FeatureUpdate{Node: topology.NodeID(u), Feature: f})
		}
		if _, err := e.IngestFeatures(batch); err != nil {
			t.Fatal(err)
		}
	}
	after := query.Range(pinned.Index, q, 0.15, 0)
	if !reflect.DeepEqual(before.Matches, after.Matches) || before.Stats.Messages != after.Stats.Messages {
		t.Errorf("pinned snapshot changed answers: %v/%d msgs vs %v/%d msgs",
			before.Matches, before.Stats.Messages, after.Matches, after.Stats.Messages)
	}
	if err := pinned.Validate(e.Graph(), metric.Scalar{}, 2*2); err != nil {
		t.Errorf("pinned snapshot no longer validates: %v", err)
	}
	if cur := e.Snapshot(); cur.Epoch != pinned.Epoch+20 {
		t.Errorf("current epoch %d, want %d", cur.Epoch, pinned.Epoch+20)
	}
}

// TestConcurrentIngestAndQueries is the engine's race acceptance test:
// concurrent query goroutines run against live snapshots while ingest
// applies >= 100 batches, and every post-epoch clustering validates.
func TestConcurrentIngestAndQueries(t *testing.T) {
	g := topology.NewGrid(6, 6)
	n := g.N()
	feats := make([]metric.Feature, n)
	for u := 0; u < n; u++ {
		v := 0.0
		if g.Pos[u].X >= 3 {
			v = 4
		}
		feats[u] = metric.Feature{v + float64(u%3)*0.1}
	}
	delta := 2.0
	e := featEngine(t, g, feats, Config{
		Delta: delta, Slack: 0.2, Metric: metric.Scalar{}, Policy: PolicyAdaptive, Seed: 2,
	})

	const batches = 120
	const readers = 6
	const queriesPerReader = 25
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + id)))
			for i := 0; i < queriesPerReader; i++ {
				s := e.Snapshot()
				qf := metric.Feature{rng.Float64() * 5}
				radius := 0.3 + rng.Float64()
				// Engine query for the serving path and its telemetry.
				if _, err := e.RangeQuery(qf, radius, topology.NodeID(rng.Intn(n))); err != nil {
					t.Error(err)
					return
				}
				// Snapshot-pinned query must agree with brute force over
				// the same frozen features.
				got := query.Range(s.Index, qf, radius, topology.NodeID(rng.Intn(n)))
				want := query.BruteForce(s.Features, metric.Scalar{}, qf, radius)
				if !reflect.DeepEqual(got.Matches, want) {
					t.Errorf("snapshot range mismatch: got %v want %v", got.Matches, want)
					return
				}
				danger := metric.Feature{rng.Float64() * 5}
				pr, err := e.PathQuery(danger, 0.3, topology.NodeID(rng.Intn(n)), topology.NodeID(rng.Intn(n)))
				if err != nil {
					t.Error(err)
					return
				}
				_ = pr
			}
		}(r)
	}

	// Keep ingesting until the readers have drained their query budgets,
	// with at least `batches` applied — so ingest and queries genuinely
	// overlap rather than the writer finishing before readers schedule.
	readersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(readersDone)
	}()
	rng := rand.New(rand.NewSource(77))
	cur := make([]float64, n)
	for u := range cur {
		cur[u] = feats[u][0]
	}
	applied := 0
	for {
		var batch []FeatureUpdate
		for u := 0; u < n; u++ {
			cur[u] += rng.NormFloat64() * 0.02
			batch = append(batch, FeatureUpdate{Node: topology.NodeID(u), Feature: metric.Feature{cur[u]}})
		}
		if _, err := e.IngestFeatures(batch); err != nil {
			t.Fatal(err)
		}
		mustValidate(t, e, 2*delta)
		applied++
		if applied >= batches {
			select {
			case <-readersDone:
			default:
				continue
			}
			break
		}
	}

	st := e.Stats()
	if st.Epochs != int64(applied)+1 {
		t.Errorf("epochs = %d, want %d", st.Epochs, applied+1)
	}
	if applied < batches {
		t.Errorf("applied %d batches, want >= %d", applied, batches)
	}
	if st.RangeQueries != readers*queriesPerReader || st.PathQueries != readers*queriesPerReader {
		t.Errorf("recorded %d range / %d path queries, want %d each",
			st.RangeQueries, st.PathQueries, readers*queriesPerReader)
	}
	if st.QueryMsgs == 0 || st.MaxQueryTime == 0 || st.QueryTime < st.MaxQueryTime {
		t.Errorf("query telemetry inconsistent: %+v", st)
	}
	if st.Updates != int64(applied*n) {
		t.Errorf("updates = %d, want %d", st.Updates, applied*n)
	}
	if st.Screening.Updates != applied*n {
		t.Errorf("screening.Updates = %d, want %d", st.Screening.Updates, applied*n)
	}
}

// TestAmortizationOnTaoReplay replays Tao-like days through the engine
// and checks the streaming update cost undercuts re-running full ELink
// clustering (plus index build) on every batch — the reason the engine
// exists.
func TestAmortizationOnTaoReplay(t *testing.T) {
	const days = 10
	const firstFit = 5
	const perDay = 144
	ds, err := data.Tao(data.TaoConfig{Days: days, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	featAt := make(map[int][]metric.Feature)
	for d := firstFit; d < days; d++ {
		feats := make([]metric.Feature, ds.Graph.N())
		for u := range feats {
			f, err := data.FitTaoModel(ds.Series[u][:(d+1)*perDay])
			if err != nil {
				t.Fatal(err)
			}
			feats[u] = f
		}
		featAt[d] = feats
	}

	delta := 0.12
	slack := 0.1 * delta
	e := featEngine(t, ds.Graph, featAt[firstFit], Config{
		Delta: delta, Slack: slack, Metric: ds.Metric, Policy: PolicyAdaptive, Seed: 7,
	})
	for d := firstFit + 1; d < days; d++ {
		batch := make([]FeatureUpdate, ds.Graph.N())
		for u := range batch {
			batch[u] = FeatureUpdate{Node: topology.NodeID(u), Feature: featAt[d][u]}
		}
		if _, err := e.IngestFeatures(batch); err != nil {
			t.Fatal(err)
		}
		mustValidate(t, e, 2*delta)
	}

	// The per-batch alternative: a fresh ELink run + index build per day.
	var full int64
	for d := firstFit + 1; d < days; d++ {
		res, err := elink.Run(ds.Graph, elink.Config{
			Delta: delta - 2*slack, Metric: ds.Metric, Features: featAt[d], Mode: elink.Implicit, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		idx, err := index.Build(ds.Graph, res.Clustering, featAt[d], ds.Metric)
		if err != nil {
			t.Fatal(err)
		}
		full += res.Stats.Messages + idx.BuildStats.Messages
	}

	st := e.Stats()
	streaming := st.SteadyStateMsgs()
	if streaming >= full {
		t.Errorf("streaming cost %d >= per-batch recluster cost %d: amortization does not pay (stats %+v)",
			streaming, full, st)
	}
	t.Logf("streaming=%d msgs vs per-batch full recluster=%d msgs over %d days (%.1fx saving)",
		streaming, full, days-firstFit-1, float64(full)/float64(streaming))
}

func TestConfigAndInputValidation(t *testing.T) {
	g := topology.NewGrid(2, 2)
	sc := metric.Scalar{}
	bad := []Config{
		{Order: -1, Delta: 1, Metric: sc},
		{Order: 1, Delta: 0, Metric: sc},
		{Order: 1, Delta: 1},
		{Order: 1, Delta: 1, Slack: 0.5, Metric: sc},  // 2Δ == δ
		{Order: 1, Delta: 1, Slack: -0.1, Metric: sc}, // negative slack
	}
	for i, cfg := range bad {
		if _, err := New(g, cfg); err == nil {
			t.Errorf("config %d (%+v) accepted", i, cfg)
		}
	}
	if _, err := New(nil, Config{Order: 1, Delta: 1, Metric: sc}); err == nil {
		t.Error("nil graph accepted")
	}

	e, err := New(g, Config{Order: 0, Delta: 1, Metric: sc})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest([]Reading{{Node: 0, Value: 1}}); err == nil {
		t.Error("Order-0 engine accepted raw readings")
	}
	if _, err := e.IngestFeatures([]FeatureUpdate{{Node: 99, Feature: metric.Feature{1}}}); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := e.IngestFeatures([]FeatureUpdate{{Node: 0}}); err == nil {
		t.Error("empty feature accepted")
	}

	e2, err := New(g, Config{Order: 2, Delta: 1, Metric: sc})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Ingest([]Reading{{Node: -1, Value: 1}}); err == nil {
		t.Error("negative node accepted")
	}
	if e2.Snapshot() != nil {
		t.Error("snapshot exists before bootstrap")
	}
}
