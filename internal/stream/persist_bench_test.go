package stream

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"elink/internal/metric"
	"elink/internal/topology"
)

// benchReadyEngine builds a bootstrapped feature-mode engine over a
// random geometric network; the one-off ELink bootstrap dominates at
// 10k nodes, so it stays outside every timed region.
func benchReadyEngine(b *testing.B, n int) (*Engine, *topology.Graph, Config) {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	g := topology.RandomGeometricForDegree(n, 4, rng)
	cfg := Config{Order: 0, Delta: 1.0, Slack: 0.1, Metric: metric.Euclidean{}, Seed: 1}
	e, err := New(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]FeatureUpdate, n)
	for u := 0; u < n; u++ {
		batch[u] = FeatureUpdate{Node: topology.NodeID(u), Feature: metric.Feature{float64(u%8) * 3, float64(u % 5)}}
	}
	if _, err := e.IngestFeatures(batch); err != nil {
		b.Fatal(err)
	}
	return e, g, cfg
}

// BenchmarkSnapshotRestore is the durability ladder: snapshot encode and
// restore decode latency at 500, 2500 and 10000 nodes. make bench-persist
// tracks the same ladder through the experiments harness as
// BENCH_persist.json.
func BenchmarkSnapshotRestore(b *testing.B) {
	for _, n := range []int{500, 2500, 10000} {
		b.Run(fmt.Sprintf("snapshot/n=%d", n), func(b *testing.B) {
			e, _, _ := benchReadyEngine(b, n)
			info, err := e.SaveSnapshot(io.Discard)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(info.Bytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.SaveSnapshot(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("restore/n=%d", n), func(b *testing.B) {
			e, g, cfg := benchReadyEngine(b, n)
			var buf bytes.Buffer
			if _, err := e.SaveSnapshot(&buf); err != nil {
				b.Fatal(err)
			}
			raw := buf.Bytes()
			b.SetBytes(int64(len(raw)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fresh, err := New(g, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := fresh.Restore(bytes.NewReader(raw)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
