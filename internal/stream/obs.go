package stream

import "elink/internal/obs"

// engineObs caches the engine's metric handles so the per-epoch hot path
// never re-resolves label sets. The zero value is the off state: every
// obs handle method is nil-receiver safe, so an un-instrumented engine
// pays one nil test per site and nothing else.
type engineObs struct {
	epoch    *obs.Gauge
	clusters *obs.Gauge
	frag     *obs.Gauge
	depth    *obs.Gauge

	readings   *obs.Counter
	reclusters *obs.Counter
	rebuilds   *obs.Counter
	refresh    *obs.Counter

	tracer *obs.Tracer
}

func newEngineObs(reg *obs.Registry, tr *obs.Tracer) engineObs {
	eo := engineObs{tracer: tr}
	if reg == nil {
		return eo
	}
	reg.Help("engine_epoch", "Current published snapshot epoch.")
	reg.Help("engine_clusters", "Cluster count of the published snapshot.")
	reg.Help("engine_fragmentation", "Cluster count relative to the last full clustering run.")
	reg.Help("engine_index_depth", "Deepest M-tree entry in the published index.")
	reg.Help("engine_readings_total", "Measurements and feature updates ingested.")
	reg.Help("engine_reclusters_total", "Policy-triggered full ELink re-runs (bootstrap excluded).")
	reg.Help("engine_index_rebuilds_total", "Membership-driven M-tree rebuilds.")
	reg.Help("engine_index_refresh_messages_total", "Messages spent on in-place index repair waves.")
	eo.epoch = reg.Gauge("engine_epoch")
	eo.clusters = reg.Gauge("engine_clusters")
	eo.frag = reg.Gauge("engine_fragmentation")
	eo.depth = reg.Gauge("engine_index_depth")
	eo.readings = reg.Counter("engine_readings_total")
	eo.reclusters = reg.Counter("engine_reclusters_total")
	eo.rebuilds = reg.Counter("engine_index_rebuilds_total")
	eo.refresh = reg.Counter("engine_index_refresh_messages_total")
	return eo
}

// publish records the per-epoch gauges and the epoch trace event. Called
// under the engine lock right after a snapshot swap.
func (eo *engineObs) publish(epoch int64, clusters int, frag float64, depth int) {
	eo.epoch.Set(float64(epoch))
	eo.clusters.Set(float64(clusters))
	eo.frag.Set(frag)
	eo.depth.Set(float64(depth))
	eo.tracer.Record(obs.Event{
		Scope: "engine",
		Kind:  "epoch",
		Epoch: epoch,
		Fields: map[string]float64{
			"clusters":      float64(clusters),
			"fragmentation": frag,
			"index_depth":   float64(depth),
		},
	})
}
