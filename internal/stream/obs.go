package stream

import (
	"time"

	"elink/internal/obs"
	"elink/internal/persist"
)

// engineObs caches the engine's metric handles so the per-epoch hot path
// never re-resolves label sets. The zero value is the off state: every
// obs handle method is nil-receiver safe, so an un-instrumented engine
// pays one nil test per site and nothing else.
type engineObs struct {
	epoch    *obs.Gauge
	clusters *obs.Gauge
	frag     *obs.Gauge
	depth    *obs.Gauge

	readings   *obs.Counter
	reclusters *obs.Counter
	rebuilds   *obs.Counter
	refresh    *obs.Counter

	snapTotal    *obs.Counter
	snapBytes    *obs.Counter
	snapSeconds  *obs.Histogram
	restTotal    *obs.Counter
	restSeconds  *obs.Histogram
	replayTotal  *obs.Counter
	snapLastSeq  *obs.Gauge
	snapLastSize *obs.Gauge

	tracer *obs.Tracer
}

func newEngineObs(reg *obs.Registry, tr *obs.Tracer) engineObs {
	eo := engineObs{tracer: tr}
	if reg == nil {
		return eo
	}
	reg.Help("engine_epoch", "Current published snapshot epoch.")
	reg.Help("engine_clusters", "Cluster count of the published snapshot.")
	reg.Help("engine_fragmentation", "Cluster count relative to the last full clustering run.")
	reg.Help("engine_index_depth", "Deepest M-tree entry in the published index.")
	reg.Help("engine_readings_total", "Measurements and feature updates ingested.")
	reg.Help("engine_reclusters_total", "Policy-triggered full ELink re-runs (bootstrap excluded).")
	reg.Help("engine_index_rebuilds_total", "Membership-driven M-tree rebuilds.")
	reg.Help("engine_index_refresh_messages_total", "Messages spent on in-place index repair waves.")
	eo.epoch = reg.Gauge("engine_epoch")
	eo.clusters = reg.Gauge("engine_clusters")
	eo.frag = reg.Gauge("engine_fragmentation")
	eo.depth = reg.Gauge("engine_index_depth")
	reg.Help("persist_snapshot_total", "Engine snapshots written.")
	reg.Help("persist_snapshot_bytes_total", "Snapshot bytes written.")
	reg.Help("persist_snapshot_seconds", "Snapshot capture+write latency.")
	reg.Help("persist_snapshot_last_seq", "Ingest sequence of the newest snapshot.")
	reg.Help("persist_snapshot_last_bytes", "Size of the newest snapshot.")
	reg.Help("persist_restore_total", "Snapshot restores applied.")
	reg.Help("persist_restore_seconds", "Snapshot restore latency.")
	reg.Help("persist_replayed_batches_total", "WAL batches replayed during recovery.")
	eo.readings = reg.Counter("engine_readings_total")
	eo.reclusters = reg.Counter("engine_reclusters_total")
	eo.rebuilds = reg.Counter("engine_index_rebuilds_total")
	eo.refresh = reg.Counter("engine_index_refresh_messages_total")
	durBuckets := []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}
	eo.snapTotal = reg.Counter("persist_snapshot_total")
	eo.snapBytes = reg.Counter("persist_snapshot_bytes_total")
	eo.snapSeconds = reg.Histogram("persist_snapshot_seconds", durBuckets)
	eo.snapLastSeq = reg.Gauge("persist_snapshot_last_seq")
	eo.snapLastSize = reg.Gauge("persist_snapshot_last_bytes")
	eo.restTotal = reg.Counter("persist_restore_total")
	eo.restSeconds = reg.Histogram("persist_restore_seconds", durBuckets)
	eo.replayTotal = reg.Counter("persist_replayed_batches_total")
	return eo
}

// publish records the per-epoch gauges and the epoch trace event. Called
// under the engine lock right after a snapshot swap.
func (eo *engineObs) publish(epoch int64, clusters int, frag float64, depth int) {
	eo.epoch.Set(float64(epoch))
	eo.clusters.Set(float64(clusters))
	eo.frag.Set(frag)
	eo.depth.Set(float64(depth))
	eo.tracer.Record(obs.Event{
		Scope: "engine",
		Kind:  "epoch",
		Epoch: epoch,
		Fields: map[string]float64{
			"clusters":      float64(clusters),
			"fragmentation": frag,
			"index_depth":   float64(depth),
		},
	})
}

// snapshot records one written snapshot.
func (eo *engineObs) snapshot(info persist.SnapshotInfo) {
	eo.snapTotal.Inc()
	eo.snapBytes.Add(info.Bytes)
	eo.snapSeconds.Observe(info.Duration.Seconds())
	eo.snapLastSeq.Set(float64(info.Seq))
	eo.snapLastSize.Set(float64(info.Bytes))
}

// restore records one applied snapshot restore.
func (eo *engineObs) restore(d time.Duration) {
	eo.restTotal.Inc()
	eo.restSeconds.Observe(d.Seconds())
}

// replayed records recovered WAL batches.
func (eo *engineObs) replayed(n int64) {
	eo.replayTotal.Add(n)
}
