package cluster

import (
	"elink/internal/metric"
	"elink/internal/topology"
)

// ReduceCliqueCover maps a clique-cover instance to a δ-clustering
// instance, following the paper's Theorem 1 reduction exactly: the
// communication graph becomes a complete graph over |V| nodes, δ = 1,
// and the feature distance is 1 for pairs joined by an edge of G and 2
// otherwise (a metric). A partition of G into c cliques then corresponds
// one-to-one with a δ-clustering into c clusters.
//
// edges lists G's undirected edges over vertex ids [0, n). The returned
// pieces plug straight into Optimal (or any clusterer).
func ReduceCliqueCover(n int, edges [][2]int) (*topology.Graph, []metric.Feature, metric.Metric, float64) {
	pos := make([]topology.Point, n)
	for i := range pos {
		pos[i] = topology.Point{X: float64(i), Y: 0}
	}
	cg := topology.NewGraph(pos)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			cg.AddEdge(topology.NodeID(u), topology.NodeID(v))
		}
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = 2
			}
		}
	}
	for _, e := range edges {
		d[e[0]][e[1]] = 1
		d[e[1]][e[0]] = 1
	}
	feats := make([]metric.Feature, n)
	for i := range feats {
		feats[i] = metric.Feature{float64(i)}
	}
	return cg, feats, metric.Matrix{D: d}, 1
}

// CliqueCoverNumber computes the minimum number of cliques partitioning
// the graph exactly (equivalently, the chromatic number of the
// complement), by the same subset DP as Optimal. Exponential; for tests
// of the Theorem 1 reduction only (n ≤ MaxOptimalNodes).
func CliqueCoverNumber(n int, edges [][2]int) int {
	adj := make([]uint32, n)
	for _, e := range edges {
		adj[e[0]] |= 1 << e[1]
		adj[e[1]] |= 1 << e[0]
	}
	full := uint32(1)<<n - 1
	isClique := make([]bool, full+1)
	isClique[0] = true
	for mask := uint32(1); mask <= full; mask++ {
		h := highestBit(mask)
		rest := mask &^ (1 << h)
		isClique[mask] = isClique[rest] && adj[h]&rest == rest
	}
	const inf = int32(1 << 30)
	dp := make([]int32, full+1)
	for i := range dp {
		dp[i] = inf
	}
	dp[0] = 0
	for mask := uint32(0); mask < full; mask++ {
		if dp[mask] == inf {
			continue
		}
		remaining := full &^ mask
		low := lowestBit(remaining)
		lowBit := uint32(1) << low
		cand := remaining &^ lowBit
		for sub := cand; ; sub = (sub - 1) & cand {
			s := sub | lowBit
			if isClique[s] && dp[mask]+1 < dp[mask|s] {
				dp[mask|s] = dp[mask] + 1
			}
			if sub == 0 {
				break
			}
		}
	}
	return int(dp[full])
}
