package cluster

import (
	"math/rand"
	"testing"

	"elink/internal/metric"
	"elink/internal/topology"
)

func TestOptimalTrivialCases(t *testing.T) {
	g := topology.NewGrid(1, 4)
	uniform := scalarFeats(1, 1, 1, 1)
	c, err := Optimal(g, uniform, metric.Scalar{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumClusters() != 1 {
		t.Errorf("uniform features: %d clusters, want 1", c.NumClusters())
	}

	distinct := scalarFeats(0, 10, 20, 30)
	c, err = Optimal(g, distinct, metric.Scalar{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumClusters() != 4 {
		t.Errorf("distinct features: %d clusters, want 4 singletons", c.NumClusters())
	}
}

func TestOptimalRespectsConnectivity(t *testing.T) {
	// Path 0-1-2 with features 0, 10, 0: the two feature-0 nodes cannot
	// share a cluster (node 1 separates them), so optimal is 3.
	g := topology.NewGrid(1, 3)
	feats := scalarFeats(0, 10, 0)
	c, err := Optimal(g, feats, metric.Scalar{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumClusters() != 3 {
		t.Errorf("NumClusters = %d, want 3 (connectivity separates the ends)", c.NumClusters())
	}
	if err := c.Validate(g, feats, metric.Scalar{}, 1, 1e-9); err != nil {
		t.Error(err)
	}
}

func TestOptimalBeatsGreedyWhenGreedyIsSuboptimal(t *testing.T) {
	// Path with features 0, 1, 2, 3 and δ = 2: a δ/2-ball around any
	// single seed covers at most a span of 2, but {0,1,2} or {1,2,3} are
	// legal clusters (pairwise ≤ 2), so the optimum is 2 clusters.
	g := topology.NewGrid(1, 4)
	feats := scalarFeats(0, 1, 2, 3)
	c, err := Optimal(g, feats, metric.Scalar{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumClusters() != 2 {
		t.Errorf("NumClusters = %d, want 2", c.NumClusters())
	}
	if err := c.Validate(g, feats, metric.Scalar{}, 2, 1e-9); err != nil {
		t.Error(err)
	}
}

func TestOptimalRejectsLargeInstances(t *testing.T) {
	g := topology.NewGrid(5, 5)
	feats := make([]metric.Feature, g.N())
	for i := range feats {
		feats[i] = metric.Feature{0}
	}
	if _, err := Optimal(g, feats, metric.Scalar{}, 1); err == nil {
		t.Error("accepted an instance above MaxOptimalNodes")
	}
}

// Optimal is a true lower bound: every other algorithm's clustering of
// the same instance has at least as many clusters.
func TestOptimalIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		g := topology.RandomGeometricForDegree(8+rng.Intn(6), 3, rng)
		feats := make([]metric.Feature, g.N())
		for i := range feats {
			feats[i] = metric.Feature{float64(rng.Intn(4))}
		}
		delta := 1.0 + rng.Float64()
		opt, err := Optimal(g, feats, metric.Scalar{}, delta)
		if err != nil {
			t.Fatal(err)
		}
		if err := opt.Validate(g, feats, metric.Scalar{}, delta, 1e-9); err != nil {
			t.Fatalf("trial %d: optimal clustering invalid: %v", trial, err)
		}
		// Any valid clustering found by greedy δ/2-ball covering of the
		// components must have >= opt clusters.
		greedy := greedyBallCover(g, feats, metric.Scalar{}, delta)
		if err := greedy.Validate(g, feats, metric.Scalar{}, delta, 1e-9); err != nil {
			t.Fatalf("trial %d: greedy invalid: %v", trial, err)
		}
		if greedy.NumClusters() < opt.NumClusters() {
			t.Fatalf("trial %d: greedy %d beat 'optimal' %d — the exact solver is wrong",
				trial, greedy.NumClusters(), opt.NumClusters())
		}
	}
}

// greedyBallCover grows clusters from the lowest unassigned node by
// breadth-first admission within δ/2 of the seed — an ELink-style
// single-threaded reference used only to sanity-check Optimal.
func greedyBallCover(g *topology.Graph, feats []metric.Feature, m metric.Metric, delta float64) *Clustering {
	n := g.N()
	labels := make([]int, n)
	assigned := make([]bool, n)
	next := 0
	for seed := 0; seed < n; seed++ {
		if assigned[seed] {
			continue
		}
		queue := []topology.NodeID{topology.NodeID(seed)}
		assigned[seed] = true
		labels[seed] = next
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(u) {
				if !assigned[v] && m.Distance(feats[seed], feats[v]) <= delta/2 {
					assigned[v] = true
					labels[v] = next
					queue = append(queue, v)
				}
			}
		}
		next++
	}
	return FromAssignment(labels)
}

func TestTheorem1Reduction(t *testing.T) {
	// Random small graphs: the clique cover number must equal the optimal
	// δ-clustering size of the reduced instance (the paper's Theorem 1
	// correspondence), checked with two independent exact solvers.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(6)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.45 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		cc := CliqueCoverNumber(n, edges)
		cg, feats, m, delta := ReduceCliqueCover(n, edges)
		opt, err := Optimal(cg, feats, m, delta)
		if err != nil {
			t.Fatal(err)
		}
		if opt.NumClusters() != cc {
			t.Fatalf("trial %d (n=%d, %d edges): clique cover %d != optimal δ-clustering %d",
				trial, n, len(edges), cc, opt.NumClusters())
		}
	}
}

func TestReductionDistanceIsMetric(t *testing.T) {
	_, feats, m, _ := ReduceCliqueCover(5, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	if err := metric.VerifyMetric(m, feats, 1e-12); err != nil {
		t.Errorf("the reduction's distance is not a metric: %v", err)
	}
}

func TestCliqueCoverKnownGraphs(t *testing.T) {
	// Triangle: one clique.
	if got := CliqueCoverNumber(3, [][2]int{{0, 1}, {1, 2}, {0, 2}}); got != 1 {
		t.Errorf("triangle cover = %d, want 1", got)
	}
	// Path of 4: two edges cover it.
	if got := CliqueCoverNumber(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}); got != 2 {
		t.Errorf("P4 cover = %d, want 2", got)
	}
	// Empty graph on 4 vertices: 4 singleton cliques.
	if got := CliqueCoverNumber(4, nil); got != 4 {
		t.Errorf("empty graph cover = %d, want 4", got)
	}
	// 5-cycle: cover number 3 (edges can cover at most 2 vertices each).
	if got := CliqueCoverNumber(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}); got != 3 {
		t.Errorf("C5 cover = %d, want 3", got)
	}
}
