// Package cluster defines δ-clusterings (paper Definition 1) and the
// validation and quality measures shared by every clustering algorithm in
// this repository.
//
// A δ-cluster is a set of nodes whose induced communication subgraph is
// connected and whose pairwise feature distances are all at most δ. A
// δ-clustering partitions the whole network into disjoint δ-clusters; the
// paper's quality measure is simply the number of clusters (fewer is
// better), which Validate and Quality make checkable and comparable here.
package cluster

import (
	"fmt"
	"sort"

	"elink/internal/metric"
	"elink/internal/topology"
)

// Clustering is a partition of the network's nodes.
type Clustering struct {
	// Assign maps every node to its cluster index in [0, len(Members)).
	Assign []int
	// Members lists each cluster's nodes, sorted by id.
	Members [][]topology.NodeID
	// Roots holds each cluster's representative (the cluster-tree root for
	// the distributed algorithms, or -1 when the algorithm has no notion
	// of a root).
	Roots []topology.NodeID
}

// NumClusters returns the number of clusters.
func (c *Clustering) NumClusters() int { return len(c.Members) }

// Size returns the number of clustered nodes.
func (c *Clustering) Size() int { return len(c.Assign) }

// ClusterOf returns the cluster index of node u.
func (c *Clustering) ClusterOf(u topology.NodeID) int { return c.Assign[u] }

// FromAssignment builds a Clustering from a per-node cluster label slice.
// Labels may be arbitrary ints; they are renumbered densely in order of
// first appearance by smallest node id. Every node must be labelled.
func FromAssignment(labels []int) *Clustering {
	c := &Clustering{Assign: make([]int, len(labels))}
	remap := make(map[int]int)
	for u, l := range labels {
		idx, ok := remap[l]
		if !ok {
			idx = len(c.Members)
			remap[l] = idx
			c.Members = append(c.Members, nil)
			c.Roots = append(c.Roots, -1)
		}
		c.Assign[u] = idx
		c.Members[idx] = append(c.Members[idx], topology.NodeID(u))
	}
	return c
}

// FromRoots builds a Clustering by grouping nodes that share a root and
// records each group's root as the cluster representative. rootOf[u] is
// the root node id claimed by u's protocol state; a node that is its own
// root is the cluster leader.
func FromRoots(rootOf []topology.NodeID) *Clustering {
	labels := make([]int, len(rootOf))
	for u, r := range rootOf {
		labels[u] = int(r)
	}
	c := FromAssignment(labels)
	for i, members := range c.Members {
		c.Roots[i] = rootOf[members[0]]
	}
	return c
}

// SplitDisconnected returns a clustering in which every cluster whose
// induced subgraph is disconnected has been split into its connected
// components. Cluster-switching in ELink can strand a subtree from its
// root; this normalization makes Definition 1's connectivity requirement
// hold exactly (δ-compactness is unaffected: any subset of a δ-compact
// set is δ-compact). Roots are preserved for components containing the
// original root; other components are rooted at their smallest member.
func (c *Clustering) SplitDisconnected(g *topology.Graph) *Clustering {
	out := &Clustering{Assign: make([]int, len(c.Assign))}
	for ci, members := range c.Members {
		comps := g.ComponentsOf(members)
		for _, comp := range comps {
			idx := len(out.Members)
			out.Members = append(out.Members, comp)
			root := comp[0]
			for _, u := range comp {
				if u == c.Roots[ci] {
					root = c.Roots[ci]
				}
				out.Assign[u] = idx
			}
			out.Roots = append(out.Roots, root)
		}
	}
	return out
}

// Validate checks that c is a legal δ-clustering of g: every node is in
// exactly one cluster, every cluster's induced subgraph is connected, and
// every intra-cluster feature distance is at most delta (plus eps of
// floating-point slack). It returns the first violation found.
func (c *Clustering) Validate(g *topology.Graph, feats []metric.Feature, m metric.Metric, delta, eps float64) error {
	if len(c.Assign) != g.N() {
		return fmt.Errorf("cluster: assignment covers %d nodes, graph has %d", len(c.Assign), g.N())
	}
	seen := make([]bool, g.N())
	for ci, members := range c.Members {
		if len(members) == 0 {
			return fmt.Errorf("cluster: cluster %d is empty", ci)
		}
		for _, u := range members {
			if seen[u] {
				return fmt.Errorf("cluster: node %d appears in two clusters", u)
			}
			seen[u] = true
			if c.Assign[u] != ci {
				return fmt.Errorf("cluster: node %d assigned to %d but listed in %d", u, c.Assign[u], ci)
			}
		}
		if comps := g.ComponentsOf(members); len(comps) != 1 {
			return fmt.Errorf("cluster: cluster %d induces %d components, want 1", ci, len(comps))
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if d := m.Distance(feats[members[i]], feats[members[j]]); d > delta+eps {
					return fmt.Errorf("cluster: δ-condition violated in cluster %d: d(F_%d,F_%d)=%v > δ=%v",
						ci, members[i], members[j], d, delta)
				}
			}
		}
	}
	for u, ok := range seen {
		if !ok {
			return fmt.Errorf("cluster: node %d is unclustered", u)
		}
	}
	return nil
}

// Quality summarizes a clustering for the experiment tables.
type Quality struct {
	NumClusters int
	// MaxDiameter is the largest intra-cluster pairwise feature distance.
	MaxDiameter float64
	// MeanSize is the average cluster population.
	MeanSize float64
	// LargestSize is the biggest cluster population.
	LargestSize int
}

// Measure computes Quality for c over the given features.
func (c *Clustering) Measure(feats []metric.Feature, m metric.Metric) Quality {
	q := Quality{NumClusters: c.NumClusters()}
	for _, members := range c.Members {
		if len(members) > q.LargestSize {
			q.LargestSize = len(members)
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if d := m.Distance(feats[members[i]], feats[members[j]]); d > q.MaxDiameter {
					q.MaxDiameter = d
				}
			}
		}
	}
	if c.NumClusters() > 0 {
		q.MeanSize = float64(len(c.Assign)) / float64(c.NumClusters())
	}
	return q
}

// Stats records the cost of producing a clustering (or answering a
// query): total radio transmissions, the per-kind decomposition, and the
// simulated completion time.
type Stats struct {
	Messages  int64
	Breakdown map[string]int64
	Time      float64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Messages += other.Messages
	if s.Breakdown == nil {
		s.Breakdown = make(map[string]int64)
	}
	for k, v := range other.Breakdown {
		s.Breakdown[k] += v
	}
	if other.Time > s.Time {
		s.Time = other.Time
	}
}

// Clone returns a deep copy of s (the Breakdown map is not shared).
func (s Stats) Clone() Stats {
	c := Stats{Messages: s.Messages, Time: s.Time}
	if s.Breakdown != nil {
		c.Breakdown = make(map[string]int64, len(s.Breakdown))
		for k, v := range s.Breakdown {
			c.Breakdown[k] = v
		}
	}
	return c
}

// String renders the stats compactly with kinds sorted for determinism.
func (s Stats) String() string {
	kinds := make([]string, 0, len(s.Breakdown))
	for k := range s.Breakdown {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := fmt.Sprintf("msgs=%d time=%.1f", s.Messages, s.Time)
	for _, k := range kinds {
		out += fmt.Sprintf(" %s=%d", k, s.Breakdown[k])
	}
	return out
}

// Result couples a clustering with the cost of computing it.
type Result struct {
	Clustering *Clustering
	Stats      Stats
}
