package cluster

import (
	"encoding/json"
	"fmt"

	"elink/internal/topology"
)

// clusteringJSON is the wire form: one record per cluster. The dense
// Assign index is reconstructed on load.
type clusteringJSON struct {
	Clusters []clusterRecord `json:"clusters"`
}

type clusterRecord struct {
	Root    topology.NodeID   `json:"root"`
	Members []topology.NodeID `json:"members"`
}

// MarshalJSON implements json.Marshaler.
func (c *Clustering) MarshalJSON() ([]byte, error) {
	out := clusteringJSON{Clusters: make([]clusterRecord, len(c.Members))}
	for ci, members := range c.Members {
		out.Clusters[ci] = clusterRecord{Root: c.Roots[ci], Members: members}
	}
	return json.Marshal(out)
}

// UnmarshalClustering parses a clustering serialized by MarshalJSON. n is
// the network size; the clusters must partition [0, n) exactly.
func UnmarshalClustering(data []byte, n int) (*Clustering, error) {
	var in clusteringJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	c := &Clustering{Assign: make([]int, n)}
	seen := make([]bool, n)
	for ci, rec := range in.Clusters {
		if len(rec.Members) == 0 {
			return nil, fmt.Errorf("cluster: cluster %d is empty", ci)
		}
		rootOK := false
		for _, u := range rec.Members {
			if u < 0 || int(u) >= n {
				return nil, fmt.Errorf("cluster: node %d out of range [0,%d)", u, n)
			}
			if seen[u] {
				return nil, fmt.Errorf("cluster: node %d appears twice", u)
			}
			seen[u] = true
			c.Assign[u] = ci
			if u == rec.Root {
				rootOK = true
			}
		}
		if !rootOK {
			return nil, fmt.Errorf("cluster: cluster %d root %d is not a member", ci, rec.Root)
		}
		c.Members = append(c.Members, append([]topology.NodeID(nil), rec.Members...))
		c.Roots = append(c.Roots, rec.Root)
	}
	for u, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("cluster: node %d missing from every cluster", u)
		}
	}
	return c, nil
}
