package cluster

import (
	"fmt"
	"math"

	"elink/internal/metric"
	"elink/internal/topology"
)

// MaxOptimalNodes bounds the exact solver: the subset-DP is O(3^n).
const MaxOptimalNodes = 16

// Optimal computes a minimum δ-clustering (Definition 1) exactly, by
// dynamic programming over node subsets: enumerate every subset whose
// induced subgraph is connected and δ-compact, then find the smallest
// exact cover. δ-clustering is NP-complete (paper Theorem 1), so this is
// exponential and restricted to n ≤ MaxOptimalNodes; its role is to be
// the ground-truth reference that the distributed algorithms' quality is
// measured against on small instances.
func Optimal(g *topology.Graph, feats []metric.Feature, m metric.Metric, delta float64) (*Clustering, error) {
	n := g.N()
	if n == 0 {
		return &Clustering{}, nil
	}
	if n > MaxOptimalNodes {
		return nil, fmt.Errorf("cluster: exact solver limited to %d nodes, got %d", MaxOptimalNodes, n)
	}
	if len(feats) != n {
		return nil, fmt.Errorf("cluster: %d features for %d nodes", len(feats), n)
	}

	// pairOK[u] = bitmask of nodes within δ of u (including u).
	pairOK := make([]uint32, n)
	for u := 0; u < n; u++ {
		pairOK[u] |= 1 << u
		for v := u + 1; v < n; v++ {
			if m.Distance(feats[u], feats[v]) <= delta+1e-12 {
				pairOK[u] |= 1 << v
				pairOK[v] |= 1 << u
			}
		}
	}
	adj := make([]uint32, n)
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(topology.NodeID(u)) {
			adj[u] |= 1 << v
		}
	}

	full := uint32(1)<<n - 1
	compact := make([]bool, full+1)
	connected := make([]bool, full+1)
	compact[0] = true
	for mask := uint32(1); mask <= full; mask++ {
		h := highestBit(mask)
		rest := mask &^ (1 << h)
		// δ-compact iff the rest is compact and h is within δ of all of it.
		compact[mask] = compact[rest] && pairOK[h]&rest == rest
		connected[mask] = maskConnected(mask, adj)
	}

	// dp[mask] = minimum clusters covering exactly the nodes of mask;
	// choice[mask] remembers the cluster containing mask's lowest node.
	const inf = math.MaxInt32
	dp := make([]int32, full+1)
	choice := make([]uint32, full+1)
	for i := range dp {
		dp[i] = inf
	}
	dp[0] = 0
	for mask := uint32(0); mask < full; mask++ {
		if dp[mask] == inf {
			continue
		}
		remaining := full &^ mask
		low := lowestBit(remaining)
		lowBit := uint32(1) << low
		// Enumerate the submasks of `remaining` that contain `low`.
		cand := remaining &^ lowBit
		for sub := cand; ; sub = (sub - 1) & cand {
			s := sub | lowBit
			if compact[s] && connected[s] && dp[mask]+1 < dp[mask|s] {
				dp[mask|s] = dp[mask] + 1
				choice[mask|s] = s
			}
			if sub == 0 {
				break
			}
		}
	}
	if dp[full] == inf {
		return nil, fmt.Errorf("cluster: no feasible δ-clustering (internal error: singletons are always feasible)")
	}

	// Reconstruct.
	labels := make([]int, n)
	mask := full
	next := 0
	for mask != 0 {
		s := choice[mask]
		for u := 0; u < n; u++ {
			if s&(1<<u) != 0 {
				labels[u] = next
			}
		}
		next++
		mask &^= s
	}
	return FromAssignment(labels), nil
}

func maskConnected(mask uint32, adj []uint32) bool {
	start := lowestBit(mask)
	seen := uint32(1) << start
	frontier := seen
	for frontier != 0 {
		var grow uint32
		f := frontier
		for f != 0 {
			u := lowestBit(f)
			f &^= 1 << u
			grow |= adj[u] & mask
		}
		frontier = grow &^ seen
		seen |= grow
	}
	return seen&mask == mask
}

func lowestBit(x uint32) int {
	for i := 0; i < 32; i++ {
		if x&(1<<i) != 0 {
			return i
		}
	}
	return -1
}

func highestBit(x uint32) int {
	for i := 31; i >= 0; i-- {
		if x&(1<<i) != 0 {
			return i
		}
	}
	return -1
}
