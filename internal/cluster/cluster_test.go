package cluster

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"elink/internal/metric"
	"elink/internal/topology"
)

func lineGraph(n int) *topology.Graph { return topology.NewGrid(1, n) }

func scalarFeats(vals ...float64) []metric.Feature {
	fs := make([]metric.Feature, len(vals))
	for i, v := range vals {
		fs[i] = metric.Feature{v}
	}
	return fs
}

func TestFromAssignmentRenumbers(t *testing.T) {
	c := FromAssignment([]int{7, 7, 3, 7, 3})
	if c.NumClusters() != 2 {
		t.Fatalf("NumClusters = %d, want 2", c.NumClusters())
	}
	if c.Assign[0] != 0 || c.Assign[2] != 1 {
		t.Errorf("Assign = %v, want labels renumbered in order of appearance", c.Assign)
	}
	if len(c.Members[0]) != 3 || len(c.Members[1]) != 2 {
		t.Errorf("Members = %v", c.Members)
	}
}

func TestFromRoots(t *testing.T) {
	c := FromRoots([]topology.NodeID{0, 0, 2, 2, 2})
	if c.NumClusters() != 2 {
		t.Fatalf("NumClusters = %d, want 2", c.NumClusters())
	}
	if c.Roots[0] != 0 || c.Roots[1] != 2 {
		t.Errorf("Roots = %v, want [0 2]", c.Roots)
	}
}

func TestValidateAcceptsLegalClustering(t *testing.T) {
	g := lineGraph(5)
	feats := scalarFeats(0, 1, 2, 10, 11)
	c := FromRoots([]topology.NodeID{0, 0, 0, 3, 3})
	if err := c.Validate(g, feats, metric.Scalar{}, 3, 1e-9); err != nil {
		t.Errorf("Validate rejected a legal clustering: %v", err)
	}
}

func TestValidateRejectsDeltaViolation(t *testing.T) {
	g := lineGraph(3)
	feats := scalarFeats(0, 5, 10)
	c := FromRoots([]topology.NodeID{0, 0, 0})
	err := c.Validate(g, feats, metric.Scalar{}, 3, 1e-9)
	if err == nil || !strings.Contains(err.Error(), "δ-condition") {
		t.Errorf("Validate = %v, want δ-condition violation", err)
	}
}

func TestValidateRejectsDisconnectedCluster(t *testing.T) {
	g := lineGraph(3)
	feats := scalarFeats(0, 0, 0)
	// Nodes 0 and 2 in one cluster, middle node elsewhere.
	c := FromRoots([]topology.NodeID{0, 1, 0})
	err := c.Validate(g, feats, metric.Scalar{}, 3, 1e-9)
	if err == nil || !strings.Contains(err.Error(), "components") {
		t.Errorf("Validate = %v, want connectivity violation", err)
	}
}

func TestValidateRejectsIncompleteCover(t *testing.T) {
	g := lineGraph(3)
	feats := scalarFeats(0, 0, 0)
	c := &Clustering{
		Assign:  []int{0, 0},
		Members: [][]topology.NodeID{{0, 1}},
		Roots:   []topology.NodeID{0},
	}
	if err := c.Validate(g, feats, metric.Scalar{}, 3, 1e-9); err == nil {
		t.Error("Validate accepted a clustering that does not cover the graph")
	}
}

func TestSplitDisconnected(t *testing.T) {
	g := lineGraph(5)
	// One "cluster" {0,1,3,4} broken in the middle, one singleton {2}.
	c := FromRoots([]topology.NodeID{0, 0, 2, 0, 0})
	split := c.SplitDisconnected(g)
	if split.NumClusters() != 3 {
		t.Fatalf("NumClusters after split = %d, want 3", split.NumClusters())
	}
	feats := scalarFeats(0, 0, 0, 0, 0)
	if err := split.Validate(g, feats, metric.Scalar{}, 1, 1e-9); err != nil {
		t.Errorf("split clustering invalid: %v", err)
	}
	// The component containing the original root keeps it.
	ci := split.ClusterOf(0)
	if split.Roots[ci] != 0 {
		t.Errorf("root of 0's component = %v, want 0", split.Roots[ci])
	}
}

func TestSplitDisconnectedNoopWhenConnected(t *testing.T) {
	g := lineGraph(4)
	c := FromRoots([]topology.NodeID{0, 0, 2, 2})
	split := c.SplitDisconnected(g)
	if split.NumClusters() != 2 {
		t.Errorf("NumClusters = %d, want unchanged 2", split.NumClusters())
	}
}

func TestMeasure(t *testing.T) {
	feats := scalarFeats(0, 2, 10, 11)
	c := FromRoots([]topology.NodeID{0, 0, 2, 2})
	q := c.Measure(feats, metric.Scalar{})
	if q.NumClusters != 2 {
		t.Errorf("NumClusters = %d", q.NumClusters)
	}
	if q.MaxDiameter != 2 {
		t.Errorf("MaxDiameter = %v, want 2", q.MaxDiameter)
	}
	if q.MeanSize != 2 || q.LargestSize != 2 {
		t.Errorf("sizes = %v/%v, want 2/2", q.MeanSize, q.LargestSize)
	}
}

func TestStatsAddAndString(t *testing.T) {
	a := Stats{Messages: 5, Breakdown: map[string]int64{"expand": 5}, Time: 3}
	b := Stats{Messages: 2, Breakdown: map[string]int64{"expand": 1, "ack": 1}, Time: 7}
	a.Add(b)
	if a.Messages != 7 || a.Breakdown["expand"] != 6 || a.Breakdown["ack"] != 1 || a.Time != 7 {
		t.Errorf("Add result = %+v", a)
	}
	s := a.String()
	if !strings.Contains(s, "msgs=7") || !strings.Contains(s, "ack=1") {
		t.Errorf("String = %q", s)
	}
}

// Property-ish: splitting any random labelled partition of a random graph
// always yields a clustering that passes connectivity validation.
func TestSplitAlwaysYieldsConnectedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		g := topology.RandomGeometricForDegree(40, 4, rng)
		labels := make([]int, g.N())
		k := 1 + rng.Intn(6)
		for i := range labels {
			labels[i] = rng.Intn(k)
		}
		c := FromAssignment(labels).SplitDisconnected(g)
		feats := make([]metric.Feature, g.N())
		for i := range feats {
			feats[i] = metric.Feature{0}
		}
		if err := c.Validate(g, feats, metric.Scalar{}, 1, 1e-9); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := FromRoots([]topology.NodeID{0, 0, 2, 2, 2})
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalClustering(data, 5)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumClusters() != 2 || back.Roots[0] != 0 || back.Roots[1] != 2 {
		t.Errorf("round trip lost structure: %+v", back)
	}
	for u := range c.Assign {
		if c.ClusterOf(topology.NodeID(u)) != back.ClusterOf(topology.NodeID(u)) {
			t.Fatalf("assignment differs at %d", u)
		}
	}
}

func TestUnmarshalRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		data string
		n    int
	}{
		{"not json", "{", 2},
		{"empty cluster", `{"clusters":[{"root":0,"members":[]}]}`, 1},
		{"out of range", `{"clusters":[{"root":0,"members":[0,5]}]}`, 2},
		{"duplicate node", `{"clusters":[{"root":0,"members":[0,0]}]}`, 1},
		{"root not member", `{"clusters":[{"root":1,"members":[0]}]}`, 1},
		{"missing node", `{"clusters":[{"root":0,"members":[0]}]}`, 2},
	}
	for _, c := range cases {
		if _, err := UnmarshalClustering([]byte(c.data), c.n); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
