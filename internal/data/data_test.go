package data

import (
	"math"
	"testing"

	"elink/internal/topology"
)

func TestTaoShape(t *testing.T) {
	ds, err := Tao(TaoConfig{Days: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Graph.N() != 54 {
		t.Errorf("N = %d, want 54 (6x9 grid)", ds.Graph.N())
	}
	if len(ds.Series) != 54 || len(ds.Series[0]) != 8*samplesPerDay {
		t.Errorf("series shape wrong: %d x %d", len(ds.Series), len(ds.Series[0]))
	}
	for u, f := range ds.Features {
		if len(f) != 4 {
			t.Fatalf("node %d feature has %d coefficients, want 4", u, len(f))
		}
		for _, c := range f {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				t.Fatalf("node %d feature contains %v", u, c)
			}
		}
	}
}

func TestTaoTemperatureRangePlausible(t *testing.T) {
	ds, err := Tao(TaoConfig{Days: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	min, max := math.Inf(1), math.Inf(-1)
	var sum float64
	var n int
	for _, s := range ds.Series {
		for _, v := range s {
			min = math.Min(min, v)
			max = math.Max(max, v)
			sum += v
			n++
		}
	}
	mean := sum / float64(n)
	// Paper: range (19.57, 32.79), mean 25.61.
	if min < 16.5 || max > 34 {
		t.Errorf("temperature range (%.2f, %.2f) outside tropical plausibility", min, max)
	}
	if mean < 23 || mean > 28 {
		t.Errorf("mean temperature %.2f, want near 25.6", mean)
	}
}

func TestTaoFeaturesSpatiallyCorrelated(t *testing.T) {
	// The whole point of the stand-in: same-zone nodes must be closer in
	// feature space than cross-zone nodes, on average.
	ds, err := Tao(TaoConfig{Days: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := ds.Metric
	var within, across float64
	var nw, na int
	for u := 0; u < ds.Graph.N(); u++ {
		for v := u + 1; v < ds.Graph.N(); v++ {
			zu := taoZone(ds.Graph.Pos[u].X / 8)
			zv := taoZone(ds.Graph.Pos[v].X / 8)
			d := m.Distance(ds.Features[u], ds.Features[v])
			if zu == zv {
				within += d
				nw++
			} else {
				across += d
				na++
			}
		}
	}
	within /= float64(nw)
	across /= float64(na)
	if across < 1.5*within {
		t.Errorf("cross-zone mean distance %.4f vs within-zone %.4f: not spatially correlated enough", across, within)
	}
}

func TestDailyMeans(t *testing.T) {
	series := make([]float64, 2*samplesPerDay)
	for i := range series {
		if i < samplesPerDay {
			series[i] = 2
		} else {
			series[i] = 4
		}
	}
	mu := DailyMeans(series)
	if len(mu) != 2 || mu[0] != 2 || mu[1] != 4 {
		t.Errorf("DailyMeans = %v, want [2 4]", mu)
	}
}

func TestFitTaoModelRejectsShortSeries(t *testing.T) {
	if _, err := FitTaoModel(make([]float64, 3*samplesPerDay)); err == nil {
		t.Error("FitTaoModel accepted fewer than 5 days")
	}
}

func TestDeathValleyShape(t *testing.T) {
	ds, err := DeathValley(DeathValleyConfig{Nodes: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Graph.N() != 300 {
		t.Errorf("N = %d, want 300", ds.Graph.N())
	}
	if !ds.Graph.Connected() {
		t.Error("terrain network must be connected")
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, f := range ds.Features {
		min = math.Min(min, f[0])
		max = math.Max(max, f[0])
	}
	if min < 175-1e-9 || max > 1996+1e-9 {
		t.Errorf("elevation range (%.1f, %.1f) outside (175, 1996)", min, max)
	}
	if max-min < 500 {
		t.Errorf("elevation span %.1f too flat to be interesting", max-min)
	}
}

func TestDeathValleyElevationSpatiallySmooth(t *testing.T) {
	ds, err := DeathValley(DeathValleyConfig{Nodes: 400, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Neighbouring sensors should differ far less than random pairs.
	var nbr, rnd float64
	var nn, nr int
	for u := 0; u < ds.Graph.N(); u++ {
		for _, v := range ds.Graph.Neighbors(topology.NodeID(u)) {
			nbr += math.Abs(ds.Features[u][0] - ds.Features[v][0])
			nn++
		}
		w := (u*7 + 13) % ds.Graph.N()
		rnd += math.Abs(ds.Features[u][0] - ds.Features[w][0])
		nr++
	}
	nbr /= float64(nn)
	rnd /= float64(nr)
	if rnd < 2*nbr {
		t.Errorf("random-pair elevation diff %.1f vs neighbour diff %.1f: terrain not spatially correlated", rnd, nbr)
	}
}

func TestDeathValleyTopologiesDiffer(t *testing.T) {
	a, err := DeathValley(DeathValleyConfig{Nodes: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeathValley(DeathValleyConfig{Nodes: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for u := 0; u < 100; u++ {
		if a.Graph.Pos[u] != b.Graph.Pos[u] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical topologies")
	}
}

func TestSyntheticRecoversAlpha(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{Nodes: 50, Readings: 4000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for u, f := range ds.Features {
		if f[0] < 0.3 || f[0] > 0.9 {
			t.Errorf("node %d recovered alpha = %.3f, want within (0.3, 0.9) for true U(0.4, 0.8)", u, f[0])
		}
	}
	if ds.Graph.AvgDegree() < 2.5 || ds.Graph.AvgDegree() > 7.5 {
		t.Errorf("average degree %.2f, want near 4", ds.Graph.AvgDegree())
	}
}

func TestSyntheticUncorrelated(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{Nodes: 120, Readings: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Neighbour feature distance should look like random-pair distance.
	var nbr, rnd float64
	var nn, nr int
	for u := 0; u < ds.Graph.N(); u++ {
		for _, v := range ds.Graph.Neighbors(topology.NodeID(u)) {
			nbr += math.Abs(ds.Features[u][0] - ds.Features[v][0])
			nn++
		}
		w := (u*11 + 29) % ds.Graph.N()
		if w != u {
			rnd += math.Abs(ds.Features[u][0] - ds.Features[w][0])
			nr++
		}
	}
	nbr /= float64(nn)
	rnd /= float64(nr)
	ratio := rnd / nbr
	if ratio < 0.6 || ratio > 1.6 {
		t.Errorf("random/neighbour distance ratio = %.2f, want near 1 for uncorrelated data", ratio)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Tao(TaoConfig{Days: 2}); err == nil {
		t.Error("Tao accepted too few days")
	}
	if _, err := DeathValley(DeathValleyConfig{Nodes: 2}); err == nil {
		t.Error("DeathValley accepted too few nodes")
	}
	if _, err := Synthetic(SyntheticConfig{Nodes: 1}); err == nil {
		t.Error("Synthetic accepted one node")
	}
}

func TestDatasetsDeterministicPerSeed(t *testing.T) {
	a, _ := Synthetic(SyntheticConfig{Nodes: 40, Readings: 500, Seed: 9})
	b, _ := Synthetic(SyntheticConfig{Nodes: 40, Readings: 500, Seed: 9})
	for u := range a.Features {
		if !a.Features[u].Equal(b.Features[u]) {
			t.Fatalf("node %d features differ across identical seeds", u)
		}
	}
}
