// Package data generates the three datasets of the paper's evaluation
// (§8.1). The real TAO buoy temperatures and the USGS Death Valley raster
// are not redistributable, so both are replaced by synthetic equivalents
// that preserve the property the experiments depend on — the spatial
// correlation structure of the per-node model coefficients. DESIGN.md
// documents each substitution.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"elink/internal/ar"
	"elink/internal/detrand"
	"elink/internal/metric"
	"elink/internal/par"
	"elink/internal/topology"
)

// Dataset bundles a generated network with its per-node data and fitted
// features, ready for the clustering and query algorithms.
type Dataset struct {
	// Name identifies the dataset in experiment output.
	Name string
	// Graph is the communication graph.
	Graph *topology.Graph
	// Series holds each node's raw time series (nil for static datasets).
	Series [][]float64
	// Features holds each node's fitted model coefficients.
	Features []metric.Feature
	// Metric is the feature dissimilarity the paper pairs with the
	// dataset.
	Metric metric.Metric
	// Deltas is the δ sweep the paper's figures use for this dataset.
	Deltas []float64
}

// TaoConfig shapes the Tao-like spatially correlated dynamic dataset.
type TaoConfig struct {
	// Rows, Cols give the buoy grid (paper: 6 x 9).
	Rows, Cols int
	// Days of 10-minute-resolution data (paper: one month).
	Days int
	// Seed drives the noise.
	Seed int64
}

func (c *TaoConfig) withDefaults() TaoConfig {
	out := *c
	if out.Rows == 0 {
		out.Rows = 6
	}
	if out.Cols == 0 {
		out.Cols = 9
	}
	if out.Days == 0 {
		out.Days = 30
	}
	return out
}

// samplesPerDay is the 10-minute sampling resolution of the TAO feed.
const samplesPerDay = 144

// Tao generates the sea-surface-temperature stand-in: a Rows x Cols buoy
// grid whose temperature field combines a mean around 25.6°C, a
// longitudinal warm-pool/cold-tongue gradient, a zone-dependent daily
// cycle and AR(1) noise. Each node fits the paper's mixed model
// x_t = α₁x_{t−1} + β₁μ_{T−1} + β₂μ_{T−2} + β₃μ_{T−3}; the feature is
// (α₁, β₁, β₂, β₃) compared under weights (0.5, 0.3, 0.2, 0.1).
func Tao(cfg TaoConfig) (*Dataset, error) {
	cfg = cfg.withDefaults()
	if cfg.Rows <= 0 || cfg.Cols <= 0 || cfg.Days < 5 {
		return nil, fmt.Errorf("data: invalid Tao config %+v (need at least 5 days)", cfg)
	}
	g := topology.NewGrid(cfg.Rows, cfg.Cols)
	rng := detrand.New(cfg.Seed)
	n := g.N()

	// Zone-coherent daily anomaly processes: every buoy in a zone sees
	// the same multi-day AR(2) anomaly (an ENSO-like shared forcing), so
	// the fitted daily-mean coefficients agree within the zone and differ
	// across zones. The AR noise keeps the regression well conditioned —
	// a deterministic oscillation would make the AR(3) fit rank-deficient
	// and its coefficients noise-driven.
	zoneDaily := make([][]float64, 3)
	for z := range zoneDaily {
		phi := [][2]float64{{1.55, -0.65}, {1.0, -0.45}, {0.35, -0.25}}[z]
		zoneAmp := []float64{0.9, 0.6, 1.1}[z]
		s := make([]float64, cfg.Days+3)
		for t := 2; t < len(s); t++ {
			s[t] = phi[0]*s[t-1] + phi[1]*s[t-2] + rng.NormFloat64()*0.3
		}
		// Rescale to the zone's anomaly amplitude.
		var rms float64
		for _, v := range s {
			rms += v * v
		}
		rms = math.Sqrt(rms / float64(len(s)))
		if rms == 0 {
			rms = 1
		}
		for t := range s {
			s[t] *= zoneAmp / rms
		}
		zoneDaily[z] = s
	}

	series := make([][]float64, n)
	steps := cfg.Days * samplesPerDay
	for u := 0; u < n; u++ {
		series[u] = taoSeries(g.Pos[u], cfg, steps, zoneDaily, rng)
	}

	// Series generation above consumes the shared rng in node order and
	// stays serial; the per-node least-squares fits are pure functions of
	// the series, so they fan out over the shared execution layer with
	// index-ordered collection (bit-identical for any worker count).
	feats := make([]metric.Feature, n)
	if err := par.Err(n, func(u int) error {
		f, err := FitTaoModel(series[u])
		if err != nil {
			return fmt.Errorf("data: fitting node %d: %w", u, err)
		}
		feats[u] = f
		return nil
	}); err != nil {
		return nil, err
	}
	return &Dataset{
		Name:     "tao",
		Graph:    g,
		Series:   series,
		Features: feats,
		Metric:   TaoMetric(),
		Deltas:   []float64{0.04, 0.06, 0.08, 0.12, 0.16, 0.2},
	}, nil
}

// TaoMetric returns the paper's weighted distance for Tao features.
func TaoMetric() metric.Metric {
	return metric.NewWeightedEuclidean(0.5, 0.3, 0.2, 0.1)
}

// taoZone maps a buoy's longitude fraction to one of three oceanic zones
// (warm pool / transition / cold tongue), which differ in mean, daily
// amplitude and persistence — that difference is what spatial clustering
// should recover.
func taoZone(fx float64) int {
	switch {
	case fx < 0.34:
		return 0
	case fx < 0.67:
		return 1
	default:
		return 2
	}
}

func taoSeries(p topology.Point, cfg TaoConfig, steps int, zoneDaily [][]float64, rng *rand.Rand) []float64 {
	fx := p.X / float64(cfg.Cols-1)
	fy := p.Y / math.Max(1, float64(cfg.Rows-1))
	zone := taoZone(fx)
	// Zone-dependent climate. Three ingredients make the fitted
	// coefficients cluster by zone the way the real TAO zones do:
	//
	//   - the zone-coherent daily anomaly (zoneDaily) drives the daily
	//     means, so the AR(3) on lagged daily means fits zone structure;
	//   - the intra-day persistence and daily-cycle amplitude differ per
	//     zone, separating the lag-1 coefficient;
	//   - white measurement noise (buoy thermistors are not smooth at
	//     10-minute resolution) keeps the lag-1 coefficient from
	//     absorbing the whole signal.
	base := []float64{29.5, 26.0, 23.2}[zone] + 0.1*math.Sin(fy*math.Pi)
	amp := []float64{0.5, 0.9, 1.4}[zone]
	persist := []float64{0.95, 0.5, 0.1}[zone]
	// Measurement variability differs by zone: the calm warm pool reads
	// smoothly while the upwelling cold tongue is turbulent. The
	// signal-to-noise ratio is what separates the fitted lag-1
	// coefficients across zones.
	white := []float64{0.03, 0.35, 0.7}[zone]
	daily := zoneDaily[zone]

	out := make([]float64, steps)
	noise := 0.0
	for t := 0; t < steps; t++ {
		day := t / samplesPerDay
		dayPhase := 2 * math.Pi * float64(t%samplesPerDay) / samplesPerDay
		noise = persist*noise + rng.NormFloat64()*0.06
		out[t] = base + daily[day+3] + amp*math.Sin(dayPhase) + noise + rng.NormFloat64()*white
	}
	return out
}

// FitTaoModel fits the paper's Tao model to one node's series and returns
// the feature (α₁, β₁, β₂, β₃).
func FitTaoModel(series []float64) (metric.Feature, error) {
	days := len(series) / samplesPerDay
	if days < 5 {
		return nil, fmt.Errorf("data: need >= 5 days of samples, got %d", days)
	}
	mu := DailyMeans(series)
	var rows [][]float64
	var y []float64
	for t := 3 * samplesPerDay; t < len(series); t++ {
		day := t / samplesPerDay
		rows = append(rows, []float64{series[t-1], mu[day-1], mu[day-2], mu[day-3]})
		y = append(y, series[t])
	}
	coef, err := ar.FitLS(rows, y)
	if err != nil {
		return nil, err
	}
	return metric.Feature(coef), nil
}

// DailyMeans returns the per-day mean of a 10-minute-resolution series.
func DailyMeans(series []float64) []float64 {
	days := len(series) / samplesPerDay
	mu := make([]float64, days)
	for d := 0; d < days; d++ {
		var s float64
		for t := d * samplesPerDay; t < (d+1)*samplesPerDay; t++ {
			s += series[t]
		}
		mu[d] = s / samplesPerDay
	}
	return mu
}

// DeathValleyConfig shapes the static elevation dataset.
type DeathValleyConfig struct {
	// Nodes scattered over the terrain (paper: 2500).
	Nodes int
	// Seed selects the topology and terrain.
	Seed int64
}

// DeathValley generates the elevation stand-in: a fractal (diamond-square)
// terrain with a valley floor carved through it, scaled to the paper's
// altitude range (175, 1996). Sensors are scattered uniformly; each
// node's feature is the terrain elevation at its position.
func DeathValley(cfg DeathValleyConfig) (*Dataset, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 2500
	}
	if cfg.Nodes < 4 {
		return nil, fmt.Errorf("data: DeathValley needs at least 4 nodes, got %d", cfg.Nodes)
	}
	rng := detrand.New(cfg.Seed)
	g := topology.RandomGeometricForDegree(cfg.Nodes, 5, rng)

	const gridSize = 129 // 2^7 + 1 for diamond-square
	terrain := diamondSquare(gridSize, rng)
	carveValley(terrain)
	rescale(terrain, 175, 1996)

	min, max := g.BoundingBox()
	feats := make([]metric.Feature, g.N())
	par.For(g.N(), func(u int) {
		fx := (g.Pos[u].X - min.X) / math.Max(1e-9, max.X-min.X)
		fy := (g.Pos[u].Y - min.Y) / math.Max(1e-9, max.Y-min.Y)
		feats[u] = metric.Feature{bilinear(terrain, fx, fy)}
	})
	return &Dataset{
		Name:     "deathvalley",
		Graph:    g,
		Features: feats,
		Metric:   metric.Scalar{},
		Deltas:   []float64{50, 100, 150, 200, 300, 400},
	}, nil
}

// diamondSquare generates a fractal heightmap on a size x size grid
// (size must be 2^k + 1).
func diamondSquare(size int, rng *rand.Rand) [][]float64 {
	h := make([][]float64, size)
	for i := range h {
		h[i] = make([]float64, size)
	}
	h[0][0] = rng.Float64()
	h[0][size-1] = rng.Float64()
	h[size-1][0] = rng.Float64()
	h[size-1][size-1] = rng.Float64()
	scale := 1.0
	for step := size - 1; step > 1; step /= 2 {
		half := step / 2
		// Diamond step.
		for y := half; y < size; y += step {
			for x := half; x < size; x += step {
				avg := (h[y-half][x-half] + h[y-half][x+half] + h[y+half][x-half] + h[y+half][x+half]) / 4
				h[y][x] = avg + (rng.Float64()-0.5)*scale
			}
		}
		// Square step.
		for y := 0; y < size; y += half {
			start := half
			if (y/half)%2 == 1 {
				start = 0
			}
			for x := start; x < size; x += step {
				var sum float64
				var cnt int
				if y >= half {
					sum += h[y-half][x]
					cnt++
				}
				if y+half < size {
					sum += h[y+half][x]
					cnt++
				}
				if x >= half {
					sum += h[y][x-half]
					cnt++
				}
				if x+half < size {
					sum += h[y][x+half]
					cnt++
				}
				h[y][x] = sum/float64(cnt) + (rng.Float64()-0.5)*scale
			}
		}
		scale *= 0.55
	}
	return h
}

// carveValley lowers a sinuous north-south band, mimicking the Death
// Valley basin between its ranges.
func carveValley(h [][]float64) {
	size := len(h)
	for y := 0; y < size; y++ {
		center := 0.5 + 0.15*math.Sin(3*math.Pi*float64(y)/float64(size))
		for x := 0; x < size; x++ {
			fx := float64(x) / float64(size-1)
			d := math.Abs(fx - center)
			h[y][x] -= 1.6 * math.Exp(-d*d/(2*0.12*0.12))
		}
	}
}

func rescale(h [][]float64, lo, hi float64) {
	min, max := math.Inf(1), math.Inf(-1)
	for _, row := range h {
		for _, v := range row {
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
	}
	span := max - min
	if span == 0 {
		span = 1
	}
	for y := range h {
		for x := range h[y] {
			h[y][x] = lo + (h[y][x]-min)/span*(hi-lo)
		}
	}
}

func bilinear(h [][]float64, fx, fy float64) float64 {
	size := len(h)
	x := fx * float64(size-1)
	y := fy * float64(size-1)
	x0, y0 := int(x), int(y)
	if x0 >= size-1 {
		x0 = size - 2
	}
	if y0 >= size-1 {
		y0 = size - 2
	}
	tx, ty := x-float64(x0), y-float64(y0)
	return h[y0][x0]*(1-tx)*(1-ty) + h[y0][x0+1]*tx*(1-ty) +
		h[y0+1][x0]*(1-tx)*ty + h[y0+1][x0+1]*tx*ty
}

// SyntheticConfig shapes the spatially uncorrelated dynamic dataset.
type SyntheticConfig struct {
	// Nodes in the random deployment (paper sweeps 100–800).
	Nodes int
	// Readings generated per node (paper: 100,000; tests use fewer).
	Readings int
	// Seed selects topology, coefficients and noise.
	Seed int64
}

// Synthetic generates the paper's uncorrelated dataset: nodes placed
// uniformly with ~4 radio neighbours each; node i's data follows
// x_t = α_i x_{t−1} + e_t with α_i ~ U(0.4, 0.8) and e_t ~ U(0, 1),
// independent of its neighbours. Features are the α̂_i recovered by
// recursive least squares from the generated readings.
func Synthetic(cfg SyntheticConfig) (*Dataset, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 400
	}
	if cfg.Readings == 0 {
		cfg.Readings = 5000
	}
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("data: Synthetic needs at least 2 nodes, got %d", cfg.Nodes)
	}
	rng := detrand.New(cfg.Seed)
	g := topology.RandomGeometricForDegree(cfg.Nodes, 4, rng)

	// Generation consumes the shared rng (α draw then innovations, node
	// by node) and must stay serial to keep the draw order — and thus
	// every series — identical to the historical single-core path.
	series := make([][]float64, g.N())
	for u := 0; u < g.N(); u++ {
		alpha := 0.4 + rng.Float64()*0.4
		series[u] = ar.Simulate([]float64{alpha}, cfg.Readings, []float64{1},
			ar.UniformNoise(rng, 0, 1))
	}
	// The RLS refits are pure per-node functions of the series, so they
	// fan out. The paper initializes every node with α₁ = 1 and updates
	// the model on every measurement. The U(0,1) innovations have a
	// non-zero mean, so the AR coefficient is fitted on deviations from
	// the series mean — otherwise every α̂ collapses toward 1 and the
	// features stop discriminating.
	feats := make([]metric.Feature, g.N())
	par.For(g.N(), func(u int) {
		var mean float64
		for _, v := range series[u] {
			mean += v
		}
		mean /= float64(len(series[u]))
		m := ar.NewModel(1)
		m.SetCoef([]float64{1})
		for _, v := range series[u] {
			m.Observe(v - mean)
		}
		feats[u] = metric.Feature{m.Coef[0]}
	})
	return &Dataset{
		Name:     "synthetic",
		Graph:    g,
		Series:   series,
		Features: feats,
		Metric:   metric.Scalar{},
		Deltas:   []float64{0.02, 0.05, 0.1, 0.15, 0.2},
	}, nil
}
