// Package viz renders networks, clusterings, and query answers as
// standalone SVG documents — the visual counterpart of the paper's
// figures 1 and 3–5. It is deliberately dependency-free: the SVG is
// assembled with fmt into a bytes.Buffer.
package viz

import (
	"fmt"
	"io"
	"math"

	"elink/internal/cluster"
	"elink/internal/topology"
)

// palette cycles through visually distinct fills for clusters.
var palette = []string{
	"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
	"#86bcb6", "#d37295", "#a0cbe8", "#ffbe7d", "#8cd17d",
}

// Options controls the rendering.
type Options struct {
	// Width is the SVG pixel width (height follows the bounding box's
	// aspect ratio). Default 640.
	Width int
	// NodeRadius in pixels. Default 6.
	NodeRadius float64
	// ShowEdges draws the communication graph in light grey.
	ShowEdges bool
	// ShowRoots rings each cluster root.
	ShowRoots bool
	// Highlight draws a thick outline around the given nodes (e.g. a
	// query answer or a safe path).
	Highlight []topology.NodeID
	// PathEdges draws straight segments between consecutive nodes (e.g.
	// a path query answer).
	PathEdges []topology.NodeID
	// Title is printed above the drawing.
	Title string
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Width == 0 {
		out.Width = 640
	}
	if out.NodeRadius == 0 {
		out.NodeRadius = 6
	}
	return out
}

// WriteSVG renders g, coloured by c (pass nil for an uncoloured network),
// to w. The drawing is a faithful plan view: node positions come straight
// from the topology.
func WriteSVG(w io.Writer, g *topology.Graph, c *cluster.Clustering, opts Options) error {
	opts = opts.withDefaults()
	min, max := g.BoundingBox()
	spanX := math.Max(max.X-min.X, 1e-9)
	spanY := math.Max(max.Y-min.Y, 1e-9)

	margin := 3 * opts.NodeRadius
	titlePad := 0.0
	if opts.Title != "" {
		titlePad = 24
	}
	innerW := float64(opts.Width) - 2*margin
	scale := innerW / spanX
	innerH := spanY * scale
	height := innerH + 2*margin + titlePad

	px := func(p topology.Point) (float64, float64) {
		// Flip Y so larger Y draws higher, the usual map convention.
		return margin + (p.X-min.X)*scale, titlePad + margin + (max.Y-p.Y)*scale
	}

	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	pr(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%.0f" viewBox="0 0 %d %.0f">`+"\n",
		opts.Width, height, opts.Width, height)
	pr(`<rect width="100%%" height="100%%" fill="white"/>` + "\n")
	if opts.Title != "" {
		pr(`<text x="%v" y="17" font-family="sans-serif" font-size="14" fill="#333">%s</text>`+"\n",
			margin, opts.Title)
	}

	if opts.ShowEdges {
		pr(`<g stroke="#dddddd" stroke-width="1">` + "\n")
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(topology.NodeID(u)) {
				if int(v) <= u {
					continue
				}
				x1, y1 := px(g.Pos[u])
				x2, y2 := px(g.Pos[v])
				pr(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/>`+"\n", x1, y1, x2, y2)
			}
		}
		pr("</g>\n")
	}

	if len(opts.PathEdges) > 1 {
		pr(`<g stroke="#222222" stroke-width="2.5" fill="none">` + "\n")
		for i := 0; i+1 < len(opts.PathEdges); i++ {
			x1, y1 := px(g.Pos[opts.PathEdges[i]])
			x2, y2 := px(g.Pos[opts.PathEdges[i+1]])
			pr(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/>`+"\n", x1, y1, x2, y2)
		}
		pr("</g>\n")
	}

	highlight := make(map[topology.NodeID]bool, len(opts.Highlight))
	for _, u := range opts.Highlight {
		highlight[u] = true
	}
	roots := make(map[topology.NodeID]bool)
	if c != nil && opts.ShowRoots {
		for _, r := range c.Roots {
			if r >= 0 {
				roots[r] = true
			}
		}
	}

	for u := 0; u < g.N(); u++ {
		x, y := px(g.Pos[u])
		fill := "#888888"
		if c != nil {
			fill = palette[c.ClusterOf(topology.NodeID(u))%len(palette)]
		}
		stroke, sw := "#555555", 0.5
		if highlight[topology.NodeID(u)] {
			stroke, sw = "#000000", 2.0
		}
		pr(`<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="%s" stroke-width="%.1f"/>`+"\n",
			x, y, opts.NodeRadius, fill, stroke, sw)
		if roots[topology.NodeID(u)] {
			pr(`<circle cx="%.1f" cy="%.1f" r="%.1f" fill="none" stroke="#000000" stroke-width="1.2"/>`+"\n",
				x, y, opts.NodeRadius+3)
		}
	}
	pr("</svg>\n")
	return err
}
