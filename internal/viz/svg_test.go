package viz

import (
	"strings"
	"testing"

	"elink/internal/cluster"
	"elink/internal/topology"
)

func TestWriteSVGBasics(t *testing.T) {
	g := topology.NewGrid(2, 3)
	c := cluster.FromRoots([]topology.NodeID{0, 0, 0, 3, 3, 3})
	var b strings.Builder
	err := WriteSVG(&b, g, c, Options{ShowEdges: true, ShowRoots: true, Title: "demo"})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a well-formed SVG envelope")
	}
	if got := strings.Count(out, "<circle"); got != 6+2 {
		t.Errorf("circles = %d, want 6 nodes + 2 root rings", got)
	}
	// 7 grid edges drawn once each.
	if got := strings.Count(out, "<line"); got != 7 {
		t.Errorf("lines = %d, want the 7 grid edges", got)
	}
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	// The two clusters use two distinct fills.
	if !strings.Contains(out, palette[0]) || !strings.Contains(out, palette[1]) {
		t.Error("cluster colours missing")
	}
}

func TestWriteSVGNilClustering(t *testing.T) {
	g := topology.NewGrid(1, 2)
	var b strings.Builder
	if err := WriteSVG(&b, g, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "#888888") {
		t.Error("uncoloured nodes should use the neutral fill")
	}
}

func TestWriteSVGHighlightAndPath(t *testing.T) {
	g := topology.NewGrid(1, 4)
	var b strings.Builder
	err := WriteSVG(&b, g, nil, Options{
		Highlight: []topology.NodeID{1, 2},
		PathEdges: []topology.NodeID{0, 1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if got := strings.Count(out, `stroke-width="2.0"`); got != 2 {
		t.Errorf("highlighted nodes = %d, want 2", got)
	}
	if got := strings.Count(out, `stroke-width="2.5"`); got != 1 {
		t.Errorf("path groups = %d, want 1", got)
	}
	if got := strings.Count(out, "<line"); got != 3 {
		t.Errorf("path segments = %d, want 3", got)
	}
}

func TestWriteSVGDegenerateGeometry(t *testing.T) {
	// All nodes at one point must not divide by zero.
	g := topology.NewGraph([]topology.Point{{X: 1, Y: 1}, {X: 1, Y: 1}})
	g.AddEdge(0, 1)
	var b strings.Builder
	if err := WriteSVG(&b, g, nil, Options{ShowEdges: true}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "NaN") {
		t.Error("degenerate geometry produced NaN coordinates")
	}
}
