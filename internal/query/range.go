// Package query answers range queries and path queries over the
// distributed index (paper §7.2–§7.3), and provides the TAG and BFS-flood
// baselines the paper compares against (§8.3).
//
// Message accounting follows §8.2: a query is routed from the initiator
// up its cluster tree, broadcast over the leader backbone, pruned per
// cluster (first by the root's covering bound, then by M-tree descent),
// and the results aggregate back along the same edges.
package query

import (
	"sort"

	"elink/internal/cluster"
	"elink/internal/index"
	"elink/internal/metric"
	"elink/internal/obs"
	"elink/internal/topology"
)

// Message kinds charged by the query algorithms.
const (
	KindQueryRoute = "qroute" // initiator to its cluster root and back
	KindBackbone   = "qbone"  // backbone broadcast + aggregation
	KindDescend    = "qtree"  // M-tree descent inside a cluster (answers ride the replies)
)

// RangeResult is the answer to a range query plus its cost and the
// pruning telemetry the experiments report.
type RangeResult struct {
	// Matches holds the node ids whose features are within the radius,
	// sorted ascending.
	Matches []topology.NodeID
	// Stats is the communication cost of answering the query.
	Stats cluster.Stats
	// ClustersExcluded / ClustersIncluded / ClustersSearched decompose
	// the per-cluster pruning decisions.
	ClustersExcluded int
	ClustersIncluded int
	ClustersSearched int
}

// Range answers "find all nodes whose feature is within radius r of q"
// starting from the given initiator node.
func Range(idx *index.Index, q metric.Feature, r float64, initiator topology.NodeID) *RangeResult {
	return RangeSpanned(idx, q, r, initiator, nil)
}

// RangeSpanned is Range with its phases — backbone flood, per-cluster
// prune/descend, answer aggregation — traced as children of sp (nil sp:
// no tracing; span methods are nil-safe).
func RangeSpanned(idx *index.Index, q metric.Feature, r float64, initiator topology.NodeID, sp *obs.Span) *RangeResult {
	res := &RangeResult{Stats: cluster.Stats{Breakdown: make(map[string]int64)}}
	charge := func(kind string, cost int64) {
		res.Stats.Breakdown[kind] += cost
		res.Stats.Messages += cost
	}

	// Initiator -> its cluster root, and the answer back at the end.
	charge(KindQueryRoute, 2*int64(idx.Depth(initiator)))

	// The query floods the backbone tree from the initiator's root (one
	// traversal of every edge in its component); the aggregation return
	// pass is charged afterwards, only on edges that carry answers —
	// roots whose clusters were pruned suppress their (empty) replies.
	bs := sp.Child("q-backbone")
	start := idx.Clusters[idx.ClusterOf[initiator]].Root
	for _, e := range backboneComponent(idx, start) {
		charge(KindBackbone, int64(e.Hops))
	}
	bs.Finish()

	cs := sp.Child("q-clusters")
	answered := make(map[topology.NodeID]bool)
	for ci := range idx.Clusters {
		root := idx.RootEntry(ci)
		dRoot := idx.Metric.Distance(q, idx.Features[root.ID])
		var matches []topology.NodeID
		switch {
		case dRoot > r+root.Radius:
			// No member can match (§7.2's exclusion, with the measured
			// covering radius in place of the a-priori δ/2 bound).
			res.ClustersExcluded++
			continue
		case dRoot <= r-root.Radius:
			// Every member matches; the root answers for the whole
			// cluster without descending.
			res.ClustersIncluded++
			matches = idx.Clusters[ci].Members
		default:
			res.ClustersSearched++
			matches = descend(idx, ci, root.ID, q, r, charge)
		}
		// Answers ride back on the descent replies (already charged); a
		// wholesale inclusion is answered by the root directly, which is
		// exactly the saving the δ-compactness pruning buys (§7.2).
		if len(matches) > 0 {
			answered[idx.Clusters[ci].Root] = true
		}
		res.Matches = append(res.Matches, matches...)
	}
	cs.Finish()
	// Aggregation return pass over the backbone: each edge on the path
	// from an answering root toward the initiator's root carries one
	// message.
	as := sp.Child("q-aggregate")
	charge(KindBackbone, backboneReturnCost(idx, start, answered))
	sort.Slice(res.Matches, func(i, j int) bool { return res.Matches[i] < res.Matches[j] })
	as.Finish()
	return res
}

// backboneReturnCost sums the hop weights of the backbone edges lying on
// a path from any answering cluster root to the initiator's root.
func backboneReturnCost(idx *index.Index, start topology.NodeID, answered map[topology.NodeID]bool) int64 {
	if len(answered) == 0 {
		return 0
	}
	// Root the backbone tree at start; an edge carries a reply iff its
	// far subtree contains an answering root.
	var cost int64
	var walk func(node, parent topology.NodeID) bool
	walk = func(node, parent topology.NodeID) bool {
		carries := answered[node]
		for _, e := range idx.BackboneAdj[node] {
			other := e.A
			if other == node {
				other = e.B
			}
			if other == parent {
				continue
			}
			if walk(other, node) {
				cost += int64(e.Hops)
				carries = true
			}
		}
		return carries
	}
	walk(start, -1)
	return cost
}

// descend runs the M-tree search below node u (which has already been
// reached; reaching a child costs one message down and its reply one up).
func descend(idx *index.Index, ci int, u topology.NodeID, q metric.Feature, r float64, charge func(string, int64)) []topology.NodeID {
	cl := idx.Clusters[ci]
	e := cl.Entries[u]
	var out []topology.NodeID
	du := idx.Metric.Distance(q, idx.Features[u])
	if du <= r {
		out = append(out, u)
	}
	for _, ch := range e.Children {
		che := cl.Entries[ch]
		dch := idx.Metric.Distance(idx.Features[u], idx.Features[ch])
		// Prune the child subtree from the parent's stored child info —
		// no message needed (§7.1's |d(q,F_i)-d(F_i,F_j)| > r+R_j rule).
		if abs(du-dch) > r+che.Radius {
			continue
		}
		// Include the whole child subtree without descending.
		if du+dch <= r-che.Radius {
			out = append(out, subtreeMembers(cl, ch)...)
			continue
		}
		charge(KindDescend, 2) // one hop down, the answer back up
		out = append(out, descend(idx, ci, ch, q, r, charge)...)
	}
	return out
}

func subtreeMembers(cl *index.ClusterIndex, u topology.NodeID) []topology.NodeID {
	out := []topology.NodeID{u}
	for _, ch := range cl.Entries[u].Children {
		out = append(out, subtreeMembers(cl, ch)...)
	}
	return out
}

// backboneComponent returns the backbone edges reachable from the given
// root (the whole backbone on a connected deployment).
func backboneComponent(idx *index.Index, start topology.NodeID) []index.BackboneEdge {
	seenRoot := map[topology.NodeID]bool{start: true}
	seenEdge := map[[2]topology.NodeID]bool{}
	var out []index.BackboneEdge
	queue := []topology.NodeID{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range idx.BackboneAdj[u] {
			key := [2]topology.NodeID{e.A, e.B}
			if seenEdge[key] {
				continue
			}
			seenEdge[key] = true
			out = append(out, e)
			other := e.A
			if other == u {
				other = e.B
			}
			if !seenRoot[other] {
				seenRoot[other] = true
				queue = append(queue, other)
			}
		}
	}
	return out
}

// BruteForce computes the exact answer set centrally; tests and the
// experiment harness use it to verify query correctness.
func BruteForce(feats []metric.Feature, m metric.Metric, q metric.Feature, r float64) []topology.NodeID {
	var out []topology.NodeID
	for u, f := range feats {
		if m.Distance(q, f) <= r {
			out = append(out, topology.NodeID(u))
		}
	}
	return out
}

// TAG models the baseline aggregation scheme [20]: the query is pushed
// down an overlay spanning tree covering the whole network and results
// aggregate back up, so every query costs exactly twice the tree's edges
// regardless of selectivity.
func TAG(g *topology.Graph) cluster.Stats {
	edges := int64(g.N() - 1)
	return cluster.Stats{
		Messages:  2 * edges,
		Breakdown: map[string]int64{"tag": 2 * edges},
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
