package query

import (
	"sort"

	"elink/internal/cluster"
	"elink/internal/index"
	"elink/internal/metric"
	"elink/internal/obs"
	"elink/internal/topology"
)

// Safety classifies a cluster (or subtree) against a danger feature.
type Safety int

const (
	// Unsafe: every node violates the safety margin.
	Unsafe Safety = iota
	// Safe: every node satisfies the margin.
	Safe
	// Mixed: the cluster straddles the margin and must be drilled.
	Mixed
)

// PathResult is the answer to a path query plus its cost.
type PathResult struct {
	// Path is a safe node path from source to destination inclusive, nil
	// when no safe path exists.
	Path []topology.NodeID
	// Found reports whether a safe path exists.
	Found bool
	// Stats is the communication cost.
	Stats cluster.Stats
	// ClustersSafe / ClustersUnsafe / ClustersMixed decompose the
	// cluster classification (§7.3).
	ClustersSafe, ClustersUnsafe, ClustersMixed int
}

// Path answers "return a path from src to dst on which every node's
// feature stays at least gamma away from the danger feature" (§7.3).
//
// Clusters are classified with the root index: safe when
// d(F_root, danger) > γ + R_root, unsafe when ≤ γ − R_root, and drilled
// down the M-tree otherwise (each drill step costs messages). The safe
// region is then searched cluster-by-cluster along the backbone, with the
// final hop-level path resolved inside the safe subgraph.
func Path(idx *index.Index, danger metric.Feature, gamma float64, src, dst topology.NodeID) *PathResult {
	return PathSpanned(idx, danger, gamma, src, dst, nil)
}

// PathSpanned is Path with its phases — cluster classification and the
// safe-subgraph search — traced as children of sp (nil sp: no tracing;
// span methods are nil-safe).
func PathSpanned(idx *index.Index, danger metric.Feature, gamma float64, src, dst topology.NodeID, sp *obs.Span) *PathResult {
	res := &PathResult{Stats: cluster.Stats{Breakdown: make(map[string]int64)}}
	charge := func(kind string, cost int64) {
		res.Stats.Breakdown[kind] += cost
		res.Stats.Messages += cost
	}

	// Classify clusters; collect the safe node set.
	cs := sp.Child("q-classify")
	safe := make([]bool, idx.Graph.N())
	for ci := range idx.Clusters {
		root := idx.RootEntry(ci)
		d := idx.Metric.Distance(idx.Features[root.ID], danger)
		switch {
		case d > gamma+root.Radius:
			res.ClustersSafe++
			for _, u := range idx.Clusters[ci].Members {
				safe[u] = true
			}
		case d <= gamma-root.Radius:
			res.ClustersUnsafe++
		default:
			res.ClustersMixed++
			classify(idx, ci, idx.Clusters[ci].Root, danger, gamma, safe, charge)
		}
	}

	cs.Finish()

	// The source routes the query to its cluster root; if the source
	// itself is unsafe there is no safe path.
	charge(KindQueryRoute, int64(idx.Depth(src)))
	if !safe[src] || !safe[dst] {
		return res
	}

	// Search the safe subgraph. The coordination travels over the safe
	// backbone (charged once per backbone edge between clusters that
	// contain safe nodes), and the answer is the hop path itself.
	ss := sp.Child("q-search")
	defer ss.Finish()
	for _, e := range backboneComponent(idx, idx.Clusters[idx.ClusterOf[src]].Root) {
		if clusterHasSafe(idx, e.A, safe) && clusterHasSafe(idx, e.B, safe) {
			charge(KindBackbone, int64(e.Hops))
		}
	}

	path := safeBFS(idx.Graph, safe, src, dst)
	if path == nil {
		return res
	}
	res.Path = path
	res.Found = true
	// Tracing the path back to the source costs its length (§7.3).
	charge(KindQueryRoute, int64(len(path)-1))
	return res
}

// classify drills a mixed subtree down the M-tree, stopping wherever the
// covering radius resolves a whole subtree. Each drill into a child costs
// one message down and one up.
func classify(idx *index.Index, ci int, u topology.NodeID, danger metric.Feature, gamma float64, safe []bool, charge func(string, int64)) {
	cl := idx.Clusters[ci]
	e := cl.Entries[u]
	if idx.Metric.Distance(idx.Features[u], danger) >= gamma {
		safe[u] = true
	}
	for _, ch := range e.Children {
		che := cl.Entries[ch]
		d := idx.Metric.Distance(idx.Features[ch], danger)
		switch {
		case d > gamma+che.Radius:
			for _, v := range subtreeMembers(cl, ch) {
				safe[v] = true
			}
		case d <= gamma-che.Radius:
			// Entire subtree unsafe.
		default:
			charge(KindDescend, 2)
			classify(idx, ci, ch, danger, gamma, safe, charge)
		}
	}
}

func clusterHasSafe(idx *index.Index, root topology.NodeID, safe []bool) bool {
	for _, u := range idx.Clusters[idx.ClusterOf[root]].Members {
		if safe[u] {
			return true
		}
	}
	return false
}

// safeBFS finds a shortest hop path between src and dst through safe
// nodes only.
func safeBFS(g *topology.Graph, safe []bool, src, dst topology.NodeID) []topology.NodeID {
	prev := make([]topology.NodeID, g.N())
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []topology.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			break
		}
		for _, v := range g.Neighbors(u) {
			if safe[v] && prev[v] < 0 {
				prev[v] = u
				queue = append(queue, v)
			}
		}
	}
	if prev[dst] < 0 {
		return nil
	}
	var rev []topology.NodeID
	for u := dst; ; u = prev[u] {
		rev = append(rev, u)
		if u == src {
			break
		}
	}
	out := make([]topology.NodeID, len(rev))
	for i, u := range rev {
		out[len(rev)-1-i] = u
	}
	return out
}

// BFSFlood is the path-query baseline: src floods the safe region (every
// safe node learns its own safety by evaluating the danger feature
// locally) until the destination is reached, then the path is traced
// back. The flood costs one message per edge incident to each reached
// safe node; the trace-back costs the path length.
func BFSFlood(g *topology.Graph, feats []metric.Feature, m metric.Metric, danger metric.Feature, gamma float64, src, dst topology.NodeID) *PathResult {
	res := &PathResult{Stats: cluster.Stats{Breakdown: make(map[string]int64)}}
	safe := make([]bool, g.N())
	for u := range safe {
		safe[u] = m.Distance(feats[u], danger) >= gamma
	}
	if !safe[src] || !safe[dst] {
		return res
	}
	// Flood: every reached safe node broadcasts once to all neighbours.
	var flood int64
	reached := make([]bool, g.N())
	reached[src] = true
	queue := []topology.NodeID{src}
	order := []topology.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		flood += int64(len(g.Neighbors(u)))
		for _, v := range g.Neighbors(u) {
			if safe[v] && !reached[v] {
				reached[v] = true
				queue = append(queue, v)
				order = append(order, v)
			}
		}
	}
	res.Stats.Breakdown["flood"] = flood
	res.Stats.Messages += flood

	path := safeBFS(g, safe, src, dst)
	if path == nil {
		return res
	}
	res.Path = path
	res.Found = true
	res.Stats.Breakdown["trace"] += int64(len(path) - 1)
	res.Stats.Messages += int64(len(path) - 1)
	return res
}

// VerifyPath checks that a returned path is a legal answer: consecutive
// nodes are graph neighbours and every node respects the safety margin.
func VerifyPath(g *topology.Graph, feats []metric.Feature, m metric.Metric, danger metric.Feature, gamma float64, path []topology.NodeID) bool {
	if len(path) == 0 {
		return false
	}
	for i, u := range path {
		if m.Distance(feats[u], danger) < gamma {
			return false
		}
		if i > 0 && !g.HasEdge(path[i-1], u) {
			return false
		}
	}
	return true
}

// SafeSet computes the ground-truth safe node set centrally, for tests.
func SafeSet(feats []metric.Feature, m metric.Metric, danger metric.Feature, gamma float64) []topology.NodeID {
	var out []topology.NodeID
	for u, f := range feats {
		if m.Distance(f, danger) >= gamma {
			out = append(out, topology.NodeID(u))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
