package query

import (
	"time"

	"elink/internal/obs"
)

// Observability families shared by both query kinds: latency histograms
// on the fixed LatencyBuckets layout, message and query counters, and
// the range query's pruning-decision breakdown. Both helpers are nil-
// safe on reg so call sites can thread an optional registry straight
// through.

func describeQueries(reg *obs.Registry) {
	reg.Help("queries_total", "Queries answered, by query type.")
	reg.Help("query_messages_total", "Radio transmissions spent answering queries, by query type.")
	reg.Help("query_latency_seconds", "Wall-clock latency answering a query against a snapshot.")
	reg.Help("query_range_clusters_total", "Per-cluster pruning decisions of range queries.")
	reg.Help("query_path_results_total", "Path queries answered, by whether a safe path was found.")
}

// ObserveRange records one completed range query: latency, message cost
// and the pruning decisions its cluster scan made.
func ObserveRange(reg *obs.Registry, res *RangeResult, d time.Duration) {
	if reg == nil {
		return
	}
	describeQueries(reg)
	reg.Counter("queries_total", "type", "range").Inc()
	reg.Counter("query_messages_total", "type", "range").Add(res.Stats.Messages)
	reg.Histogram("query_latency_seconds", obs.LatencyBuckets(), "type", "range").Observe(d.Seconds())
	reg.Counter("query_range_clusters_total", "decision", "excluded").Add(int64(res.ClustersExcluded))
	reg.Counter("query_range_clusters_total", "decision", "included").Add(int64(res.ClustersIncluded))
	reg.Counter("query_range_clusters_total", "decision", "searched").Add(int64(res.ClustersSearched))
}

// ObservePath records one completed path query: latency, message cost
// and whether a safe path was found.
func ObservePath(reg *obs.Registry, res *PathResult, d time.Duration) {
	if reg == nil {
		return
	}
	describeQueries(reg)
	reg.Counter("queries_total", "type", "path").Inc()
	reg.Counter("query_messages_total", "type", "path").Add(res.Stats.Messages)
	reg.Histogram("query_latency_seconds", obs.LatencyBuckets(), "type", "path").Observe(d.Seconds())
	found := "false"
	if res.Found {
		found = "true"
	}
	reg.Counter("query_path_results_total", "found", found).Inc()
}
