package query

import (
	"math/rand"
	"testing"

	"elink/internal/cluster"
	"elink/internal/index"
	"elink/internal/metric"
	"elink/internal/topology"
)

// randomClusteredIndex builds a random geometric network with a smooth
// field, clusters it by feature bands, and indexes it.
func randomClusteredIndex(t *testing.T, seed int64, n int) (*index.Index, []metric.Feature) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := topology.RandomGeometricForDegree(n, 4, rng)
	feats := make([]metric.Feature, g.N())
	labels := make([]int, g.N())
	min, max := g.BoundingBox()
	for u := 0; u < g.N(); u++ {
		fx := (g.Pos[u].X - min.X) / (max.X - min.X + 1e-9)
		band := int(fx * 4)
		labels[u] = band
		feats[u] = metric.Feature{float64(band)*5 + rng.Float64()}
	}
	c := cluster.FromAssignment(labels).SplitDisconnected(g)
	idx, err := index.Build(g, c, feats, metric.Scalar{})
	if err != nil {
		t.Fatal(err)
	}
	return idx, feats
}

func TestRangeMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		idx, feats := randomClusteredIndex(t, seed, 60)
		rng := rand.New(rand.NewSource(seed + 900))
		for trial := 0; trial < 10; trial++ {
			q := metric.Feature{rng.Float64() * 20}
			r := rng.Float64() * 6
			initiator := topology.NodeID(rng.Intn(len(feats)))
			got := Range(idx, q, r, initiator)
			want := BruteForce(feats, metric.Scalar{}, q, r)
			if len(got.Matches) != len(want) {
				t.Fatalf("seed %d trial %d: got %d matches, want %d", seed, trial, len(got.Matches), len(want))
			}
			for i := range want {
				if got.Matches[i] != want[i] {
					t.Fatalf("seed %d trial %d: match %d = %v, want %v", seed, trial, i, got.Matches[i], want[i])
				}
			}
		}
	}
}

func TestRangePrunesFarQueries(t *testing.T) {
	idx, _ := randomClusteredIndex(t, 3, 80)
	// A query far outside the feature range excludes every cluster.
	res := Range(idx, metric.Feature{1e6}, 0.5, 0)
	if len(res.Matches) != 0 {
		t.Error("far query should match nothing")
	}
	if res.ClustersExcluded != len(idx.Clusters) {
		t.Errorf("excluded %d of %d clusters", res.ClustersExcluded, len(idx.Clusters))
	}
	if res.Stats.Breakdown[KindDescend] != 0 {
		t.Error("no descent messages expected when everything is pruned")
	}
}

func TestRangeIncludesWholeClusters(t *testing.T) {
	idx, feats := randomClusteredIndex(t, 4, 80)
	// A huge radius covers everything.
	res := Range(idx, metric.Feature{10}, 1e6, 0)
	if len(res.Matches) != len(feats) {
		t.Errorf("matches = %d, want all %d", len(res.Matches), len(feats))
	}
	if res.ClustersIncluded != len(idx.Clusters) {
		t.Errorf("included %d of %d clusters without descending", res.ClustersIncluded, len(idx.Clusters))
	}
}

func TestRangeCostGrowsWithRadius(t *testing.T) {
	idx, _ := randomClusteredIndex(t, 5, 120)
	small := Range(idx, metric.Feature{7}, 0.5, 0)
	large := Range(idx, metric.Feature{7}, 4, 0)
	if small.Stats.Breakdown[KindDescend] > large.Stats.Breakdown[KindDescend] {
		t.Errorf("descent cost should not shrink with radius: %d vs %d",
			small.Stats.Breakdown[KindDescend], large.Stats.Breakdown[KindDescend])
	}
}

func TestRangeBeatsTAGOnSelectiveQueries(t *testing.T) {
	idx, _ := randomClusteredIndex(t, 6, 150)
	tag := TAG(idx.Graph)
	res := Range(idx, metric.Feature{2.5}, 0.8, 0)
	if res.Stats.Messages >= tag.Messages {
		t.Errorf("selective range query cost %d should beat TAG's fixed %d",
			res.Stats.Messages, tag.Messages)
	}
}

func TestTAGCostFixed(t *testing.T) {
	g := topology.NewGrid(5, 5)
	if got := TAG(g).Messages; got != 48 {
		t.Errorf("TAG cost = %d, want 2*(N-1) = 48", got)
	}
}

func TestPathFindsSafeRoute(t *testing.T) {
	// Grid with a dangerous column in the middle except one safe gap.
	g := topology.NewGrid(5, 7)
	feats := make([]metric.Feature, g.N())
	for u := 0; u < g.N(); u++ {
		col := u % 7
		row := u / 7
		if col == 3 && row != 2 {
			feats[u] = metric.Feature{0} // at the danger point
		} else {
			feats[u] = metric.Feature{10}
		}
	}
	labels := make([]int, g.N())
	for u := range labels {
		if feats[u][0] == 0 {
			labels[u] = 1
		}
	}
	c := cluster.FromAssignment(labels).SplitDisconnected(g)
	idx, err := index.Build(g, c, feats, metric.Scalar{})
	if err != nil {
		t.Fatal(err)
	}
	danger := metric.Feature{0}
	res := Path(idx, danger, 5, 0, topology.NodeID(g.N()-1))
	if !res.Found {
		t.Fatal("safe path exists through the gap but was not found")
	}
	if !VerifyPath(g, feats, metric.Scalar{}, danger, 5, res.Path) {
		t.Fatalf("returned path is not safe/connected: %v", res.Path)
	}
	if res.Path[0] != 0 || res.Path[len(res.Path)-1] != topology.NodeID(g.N()-1) {
		t.Errorf("path endpoints wrong: %v", res.Path)
	}
}

func TestPathReportsUnreachable(t *testing.T) {
	// Full dangerous wall: no safe path.
	g := topology.NewGrid(3, 5)
	feats := make([]metric.Feature, g.N())
	for u := 0; u < g.N(); u++ {
		if u%5 == 2 {
			feats[u] = metric.Feature{0}
		} else {
			feats[u] = metric.Feature{10}
		}
	}
	labels := make([]int, g.N())
	for u := range labels {
		if feats[u][0] == 0 {
			labels[u] = 1
		}
	}
	c := cluster.FromAssignment(labels).SplitDisconnected(g)
	idx, err := index.Build(g, c, feats, metric.Scalar{})
	if err != nil {
		t.Fatal(err)
	}
	res := Path(idx, metric.Feature{0}, 5, 0, topology.NodeID(g.N()-1))
	if res.Found {
		t.Errorf("no safe path exists, got %v", res.Path)
	}
}

func TestPathUnsafeSourceSuppressed(t *testing.T) {
	g := topology.NewGrid(1, 4)
	feats := []metric.Feature{{0}, {10}, {10}, {10}}
	c := cluster.FromAssignment([]int{0, 1, 1, 1}).SplitDisconnected(g)
	idx, err := index.Build(g, c, feats, metric.Scalar{})
	if err != nil {
		t.Fatal(err)
	}
	res := Path(idx, metric.Feature{0}, 5, 0, 3)
	if res.Found {
		t.Error("query from an unsafe source must be suppressed")
	}
	// Suppression is cheap: the query only reached the cluster root.
	if res.Stats.Messages > 4 {
		t.Errorf("suppressed query cost %d, want nearly free", res.Stats.Messages)
	}
}

func TestPathAgreesWithFloodOnExistence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		idx, feats := randomClusteredIndex(t, seed+40, 70)
		g := idx.Graph
		rng := rand.New(rand.NewSource(seed))
		danger := metric.Feature{rng.Float64() * 20}
		gamma := 1 + rng.Float64()*3
		src := topology.NodeID(rng.Intn(g.N()))
		dst := topology.NodeID(rng.Intn(g.N()))
		a := Path(idx, danger, gamma, src, dst)
		b := BFSFlood(g, feats, metric.Scalar{}, danger, gamma, src, dst)
		if a.Found != b.Found {
			t.Fatalf("seed %d: cluster search found=%v, flood found=%v", seed, a.Found, b.Found)
		}
		if a.Found {
			if !VerifyPath(g, feats, metric.Scalar{}, danger, gamma, a.Path) {
				t.Fatalf("seed %d: invalid path %v", seed, a.Path)
			}
			if len(a.Path) != len(b.Path) {
				t.Fatalf("seed %d: path lengths differ: %d vs %d (both BFS-shortest)", seed, len(a.Path), len(b.Path))
			}
		}
	}
}

func TestPathCheaperThanFlood(t *testing.T) {
	// On a large safe region, flooding pays per-node; the cluster search
	// pays classification + path only.
	idx, feats := randomClusteredIndex(t, 77, 200)
	g := idx.Graph
	danger := metric.Feature{-100} // everything is safe
	a := Path(idx, danger, 5, 0, topology.NodeID(g.N()-1))
	b := BFSFlood(g, feats, metric.Scalar{}, danger, 5, 0, topology.NodeID(g.N()-1))
	if !a.Found || !b.Found {
		t.Fatal("both searches should succeed when everything is safe")
	}
	if a.Stats.Messages >= b.Stats.Messages {
		t.Errorf("cluster path search cost %d should beat flooding %d", a.Stats.Messages, b.Stats.Messages)
	}
}

func TestSafeSetAndVerifyPath(t *testing.T) {
	feats := []metric.Feature{{0}, {3}, {6}}
	safe := SafeSet(feats, metric.Scalar{}, metric.Feature{0}, 2)
	if len(safe) != 2 || safe[0] != 1 || safe[1] != 2 {
		t.Errorf("SafeSet = %v, want [1 2]", safe)
	}
	g := topology.NewGrid(1, 3)
	if VerifyPath(g, feats, metric.Scalar{}, metric.Feature{0}, 2, []topology.NodeID{0, 1}) {
		t.Error("VerifyPath accepted a path through an unsafe node")
	}
	if VerifyPath(g, feats, metric.Scalar{}, metric.Feature{0}, 2, []topology.NodeID{1, 1}) {
		// 1-1 is not an edge
		t.Error("VerifyPath accepted a non-edge step")
	}
	if !VerifyPath(g, feats, metric.Scalar{}, metric.Feature{0}, 2, []topology.NodeID{1, 2}) {
		t.Error("VerifyPath rejected a legal path")
	}
}

func TestRangeZeroRadiusExactMatch(t *testing.T) {
	idx, feats := randomClusteredIndex(t, 9, 50)
	// r=0 finds exactly the nodes with the identical feature value.
	target := feats[7]
	got := Range(idx, target, 0, 0)
	want := BruteForce(feats, metric.Scalar{}, target, 0)
	if len(got.Matches) != len(want) {
		t.Fatalf("matches = %d, want %d", len(got.Matches), len(want))
	}
}

func TestRangeFromEveryInitiatorSameAnswer(t *testing.T) {
	idx, feats := randomClusteredIndex(t, 10, 40)
	q := metric.Feature{7}
	var first []topology.NodeID
	for u := 0; u < len(feats); u++ {
		res := Range(idx, q, 2, topology.NodeID(u))
		if first == nil {
			first = res.Matches
			continue
		}
		if len(res.Matches) != len(first) {
			t.Fatalf("initiator %d got %d matches, initiator 0 got %d", u, len(res.Matches), len(first))
		}
	}
}

func TestPathSrcEqualsDst(t *testing.T) {
	idx, _ := randomClusteredIndex(t, 11, 40)
	res := Path(idx, metric.Feature{-1000}, 1, 5, 5)
	if !res.Found || len(res.Path) != 1 || res.Path[0] != 5 {
		t.Errorf("self path = %+v", res)
	}
}

func TestBFSFloodUnsafeEndpoints(t *testing.T) {
	g := topology.NewGrid(1, 3)
	feats := []metric.Feature{{0}, {10}, {10}}
	res := BFSFlood(g, feats, metric.Scalar{}, metric.Feature{0}, 5, 0, 2)
	if res.Found {
		t.Error("flood from unsafe source should fail")
	}
	if res.Stats.Messages != 0 {
		t.Error("failed flood from unsafe source should be free")
	}
}

// Property: over random networks and queries, Range always equals the
// brute-force answer and never exceeds the TAG cost by more than the
// routing overhead of a degenerate clustering.
func TestRangeCorrectnessProperty(t *testing.T) {
	for seed := int64(20); seed < 32; seed++ {
		idx, feats := randomClusteredIndex(t, seed, 45)
		rng := rand.New(rand.NewSource(seed * 3))
		for trial := 0; trial < 6; trial++ {
			q := metric.Feature{rng.Float64()*24 - 2}
			r := rng.Float64() * 8
			got := Range(idx, q, r, topology.NodeID(rng.Intn(len(feats))))
			want := BruteForce(feats, metric.Scalar{}, q, r)
			if len(got.Matches) != len(want) {
				t.Fatalf("seed %d: %d matches, want %d", seed, len(got.Matches), len(want))
			}
			for i := range want {
				if got.Matches[i] != want[i] {
					t.Fatalf("seed %d: wrong match set", seed)
				}
			}
		}
	}
}
