package experiments

import (
	"elink/internal/detrand"

	"elink/internal/baseline"
	"elink/internal/cluster"
	"elink/internal/elink"
	"elink/internal/metric"
	"elink/internal/topology"
)

// OptimalityGap measures how close each algorithm gets to the true
// minimum δ-clustering. The paper proves optimality is NP-hard and never
// reports absolute gaps; with the exact subset-DP solver
// (cluster.Optimal) the gap is measurable on small instances. Each row is
// a trial batch: the mean cluster counts of the exact optimum and of
// every algorithm over 20 random 12-node deployments.
//
// The sweep exposes a structural property of the δ/2 admission rule:
// when δ is at least the whole feature diameter (the 2-level row), the
// optimum is a single cluster but ELink's root-ball can only admit
// features within δ/2 of the root, so its gap is widest exactly where
// clustering is least useful. On spread-out features (3-4 levels) ELink
// lands within ~1.5-2x of optimal.
func OptimalityGap(sc Scale) (*Table, error) {
	const nodes = 12
	const trials = 20

	t := &Table{
		Title:   "Optimality gap on 12-node instances (mean clusters over 20 trials)",
		XLabel:  "feature-levels",
		Columns: []string{"optimal", SeriesELinkImplicit, SeriesCentralized, SeriesHierarchical, SeriesForest},
		Notes:   []string{sc.note(), "delta=1.5, features drawn from {0..L-1}"},
	}
	for _, levels := range []int{2, 3, 4} {
		rng := detrand.New(sc.Seed + int64(levels)*131)
		var sums [5]float64
		for trial := 0; trial < trials; trial++ {
			g := topology.RandomGeometricForDegree(nodes, 3, rng)
			feats := make([]metric.Feature, g.N())
			for i := range feats {
				feats[i] = metric.Feature{float64(rng.Intn(levels))}
			}
			delta := 1.5
			opt, err := cluster.Optimal(g, feats, metric.Scalar{}, delta)
			if err != nil {
				return nil, err
			}
			el, err := elink.Run(g, elink.Config{Delta: delta, Metric: metric.Scalar{}, Features: feats, Mode: elink.Implicit, Seed: sc.Seed})
			if err != nil {
				return nil, err
			}
			sp, err := baseline.Spectral(g, baseline.SpectralConfig{Delta: delta, Metric: metric.Scalar{}, Features: feats, Seed: sc.Seed})
			if err != nil {
				return nil, err
			}
			hi, err := baseline.Hierarchical(g, baseline.HierConfig{Delta: delta, Metric: metric.Scalar{}, Features: feats})
			if err != nil {
				return nil, err
			}
			fo, err := baseline.SpanningForest(g, baseline.ForestConfig{Delta: delta, Metric: metric.Scalar{}, Features: feats, Seed: sc.Seed})
			if err != nil {
				return nil, err
			}
			sums[0] += float64(opt.NumClusters())
			sums[1] += float64(el.Clustering.NumClusters())
			sums[2] += float64(sp.Clustering.NumClusters())
			sums[3] += float64(hi.Clustering.NumClusters())
			sums[4] += float64(fo.Clustering.NumClusters())
		}
		t.AddRow(float64(levels),
			sums[0]/trials, sums[1]/trials, sums[2]/trials, sums[3]/trials, sums[4]/trials)
	}
	return t, nil
}
