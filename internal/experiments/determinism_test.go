package experiments

import (
	"testing"

	"elink/internal/baseline"
	"elink/internal/data"
	"elink/internal/elink"
	"elink/internal/index"
	"elink/internal/topology"
)

// TestRoutingDeterminismGolden pins exact message counts for the
// routing-heavy paths (ELink runs, the hierarchical and k-medoids
// baselines, and the index backbone) on a fixed Tao dataset. The routed
// hop accounting flows through topology.Routes; these constants were
// captured from the per-call-BFS implementation the cache replaced, so
// any tie-breaking or distance divergence in the shared routing tables
// shows up here as a changed figure, not a silent drift.
func TestRoutingDeterminismGolden(t *testing.T) {
	ds, err := data.Tao(data.TaoConfig{Days: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	const delta = 0.08

	imp, err := elink.Run(g, elink.Config{Delta: delta, Metric: ds.Metric, Features: ds.Features, Mode: elink.Implicit, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := elink.Run(g, elink.Config{Delta: delta, Metric: ds.Metric, Features: ds.Features, Mode: elink.Explicit, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hier, err := baseline.Hierarchical(g, baseline.HierConfig{Delta: delta, Metric: ds.Metric, Features: ds.Features})
	if err != nil {
		t.Fatal(err)
	}
	kmed, err := baseline.KMedoids(g, baseline.KMedoidsConfig{Delta: delta, Metric: ds.Metric, Features: ds.Features, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(g, imp.Clustering, ds.Features, ds.Metric)
	if err != nil {
		t.Fatal(err)
	}

	got := map[string]int64{
		"elink-implicit":  imp.Stats.Messages,
		"elink-explicit":  exp.Stats.Messages,
		"hier-total":      hier.Stats.Messages,
		"hier-probe":      hier.Stats.Breakdown["probe"],
		"kmedoids-total":  kmed.Stats.Messages,
		"kmed-refresh":    kmed.Stats.Breakdown["refresh"],
		"index-backbone":  idx.BuildStats.Breakdown["backbone"],
		"implicit-rounds": int64(imp.Stats.Time),
	}
	want := map[string]int64{
		"elink-implicit":  149,
		"elink-explicit":  759,
		"hier-total":      1864,
		"hier-probe":      1120,
		"kmedoids-total":  2764,
		"kmed-refresh":    1468,
		"index-backbone":  12,
		"implicit-rounds": 41,
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s = %d, want %d", k, got[k], w)
		}
	}

	// Routed-path determinism at the topology layer: the shortest path
	// between two fixed far corners of the Tao grid is pinned hop by hop
	// (smallest-id tie-breaking).
	path := g.ShortestPath(topology.NodeID(g.N()-1), 0)
	wantPath := []topology.NodeID{53, 44, 35, 26, 17, 8, 7, 6, 5, 4, 3, 2, 1, 0}
	if len(path) != len(wantPath) {
		t.Fatalf("corner path = %v, want %v", path, wantPath)
	}
	for i := range path {
		if path[i] != wantPath[i] {
			t.Fatalf("corner path = %v, want %v", path, wantPath)
		}
	}
}
