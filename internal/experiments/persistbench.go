package experiments

import (
	"bytes"
	"elink/internal/detrand"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"elink/internal/metric"
	"elink/internal/stream"
	"elink/internal/topology"
)

// persistBenchSizes is the snapshot/restore ladder: the paper's Death
// Valley scale (2500) bracketed by a small deployment and a 4x stretch.
var persistBenchSizes = []int{500, 2500, 10000}

// persistBenchReps repeats each timed operation and keeps the minimum,
// the standard way to strip scheduler noise from sub-second wall times.
const persistBenchReps = 5

// persistBenchRow is one ladder rung in BENCH_persist.json.
type persistBenchRow struct {
	N          int     `json:"n"`
	SnapshotMs float64 `json:"snapshot_ms"`
	RestoreMs  float64 `json:"restore_ms"`
	Bytes      int64   `json:"bytes"`
	BytesPerN  float64 `json:"bytes_per_node"`
}

// persistBenchResult is the machine-readable BENCH_persist.json payload
// the Makefile's bench-persist target tracks across commits.
type persistBenchResult struct {
	Reps int               `json:"reps"`
	Rows []persistBenchRow `json:"rows"`
}

// persistBenchEngine builds a bootstrapped feature-mode engine over a
// random geometric network of n nodes, plus a few drift epochs so the
// maintainer and telemetry sections carry real state. The graph comes
// back too so the restore arm can build a twin engine.
func persistBenchEngine(n int, seed int64) (*stream.Engine, *topology.Graph, stream.Config, error) {
	rng := detrand.New(seed)
	g := topology.RandomGeometricForDegree(n, 4, rng)
	cfg := stream.Config{
		Order:  0,
		Delta:  1.0,
		Slack:  0.1,
		Metric: metric.Euclidean{},
		Seed:   seed,
	}
	e, err := stream.New(g, cfg)
	if err != nil {
		return nil, nil, cfg, err
	}
	for epoch := 0; epoch < 4; epoch++ {
		batch := make([]stream.FeatureUpdate, n)
		for u := 0; u < n; u++ {
			batch[u] = stream.FeatureUpdate{
				Node:    topology.NodeID(u),
				Feature: metric.Feature{float64(u%8)*3 + 0.05*float64(epoch), float64(u % 5)},
			}
		}
		if _, err := e.IngestFeatures(batch); err != nil {
			return nil, nil, cfg, err
		}
	}
	return e, g, cfg, nil
}

// PersistBench measures the durability layer's snapshot and restore
// paths on bootstrapped engines at 500/2500/10000 nodes: encode latency,
// decode+rebuild latency, and the snapshot size. Engine construction
// (the dominant cost at 10k nodes) happens outside every timed region.
func PersistBench(sc Scale) (*Table, error) { return PersistBenchTo(sc, nil) }

// PersistBenchTo is PersistBench with an optional writer receiving the
// results as JSON (nil skips the dump).
func PersistBenchTo(sc Scale, dump io.Writer) (*Table, error) {
	res := persistBenchResult{Reps: persistBenchReps}

	t := &Table{
		Title:   "Persistbench: engine snapshot encode / restore decode (wall ms, best of reps)",
		XLabel:  "n",
		Columns: []string{"snapshot-ms", "restore-ms", "bytes", "bytes-per-node"},
	}
	for _, n := range persistBenchSizes {
		eng, g, cfg, err := persistBenchEngine(n, sc.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: persistbench n=%d setup: %w", n, err)
		}

		var raw []byte
		snapBest := time.Duration(1<<63 - 1)
		for rep := 0; rep < persistBenchReps; rep++ {
			var buf bytes.Buffer
			start := time.Now()
			if _, err := eng.SaveSnapshot(&buf); err != nil {
				return nil, fmt.Errorf("experiments: persistbench n=%d snapshot: %w", n, err)
			}
			if d := time.Since(start); d < snapBest {
				snapBest = d
			}
			raw = buf.Bytes()
		}

		restBest := time.Duration(1<<63 - 1)
		for rep := 0; rep < persistBenchReps; rep++ {
			fresh, err := stream.New(g, cfg)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if err := fresh.Restore(bytes.NewReader(raw)); err != nil {
				return nil, fmt.Errorf("experiments: persistbench n=%d restore: %w", n, err)
			}
			if d := time.Since(start); d < restBest {
				restBest = d
			}
		}

		row := persistBenchRow{
			N:          n,
			SnapshotMs: float64(snapBest.Microseconds()) / 1000,
			RestoreMs:  float64(restBest.Microseconds()) / 1000,
			Bytes:      int64(len(raw)),
			BytesPerN:  float64(len(raw)) / float64(n),
		}
		res.Rows = append(res.Rows, row)
		t.AddRow(float64(n), row.SnapshotMs, row.RestoreMs, float64(row.Bytes), row.BytesPerN)
	}

	t.Notes = []string{
		sc.note(),
		fmt.Sprintf("feature-mode engines (order 0, delta 1.0), 4 drift epochs ingested; best of %d reps; encode to memory, restore rebuilds models+maintainer+index", persistBenchReps),
	}

	if dump != nil {
		enc := json.NewEncoder(dump)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return nil, fmt.Errorf("experiments: dump persist bench: %w", err)
		}
	}
	return t, nil
}
