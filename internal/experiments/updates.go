package experiments

import (
	"fmt"

	"elink/internal/baseline"
	"elink/internal/cluster"
	"elink/internal/data"
	"elink/internal/elink"
	"elink/internal/metric"
	"elink/internal/topology"
	"elink/internal/update"
)

// taoStream precomputes, for every day d >= firstFitDay, the feature each
// node would hold after refitting its model on the data seen so far.
type taoStream struct {
	ds       *data.Dataset
	firstDay int
	// featAt[d][u] is node u's feature after day d (d indexes from
	// firstDay to Days-1).
	featAt map[int][]metric.Feature
}

// firstFitDay is the earliest day with enough samples for the Tao model.
const firstFitDay = 5

func newTaoStream(sc Scale) (*taoStream, error) {
	ds, err := data.Tao(data.TaoConfig{Days: sc.TaoDays, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	if sc.TaoDays <= firstFitDay+1 {
		return nil, fmt.Errorf("experiments: need more than %d Tao days, got %d", firstFitDay+1, sc.TaoDays)
	}
	st := &taoStream{ds: ds, firstDay: firstFitDay, featAt: make(map[int][]metric.Feature)}
	const perDay = 144
	for d := firstFitDay; d < sc.TaoDays; d++ {
		feats := make([]metric.Feature, ds.Graph.N())
		for u := range feats {
			f, err := data.FitTaoModel(ds.Series[u][:(d+1)*perDay])
			if err != nil {
				return nil, err
			}
			feats[u] = f
		}
		st.featAt[d] = feats
	}
	return st, nil
}

// replayELink clusters at δ−2Δ on the first fit day, then streams the
// remaining days through the maintenance protocol. It returns the initial
// clustering cost, the per-day cumulative total cost, and the final
// cluster count.
func (st *taoStream) replayELink(mode elink.Mode, delta, slack float64, seed int64) (initial cluster.Stats, perDay []float64, clusters int, err error) {
	feats := st.featAt[st.firstDay]
	res, err := elink.Run(st.ds.Graph, elink.Config{
		Delta: delta - 2*slack, Metric: st.ds.Metric, Features: feats, Mode: mode, Seed: seed,
	})
	if err != nil {
		return cluster.Stats{}, nil, 0, err
	}
	m, err := update.NewMaintainer(st.ds.Graph, res.Clustering, feats, update.Config{
		Delta: delta, Slack: slack, Metric: st.ds.Metric,
	})
	if err != nil {
		return cluster.Stats{}, nil, 0, err
	}
	cum := res.Stats.Messages
	for d := st.firstDay + 1; d < len(st.featAt)+st.firstDay; d++ {
		for u := 0; u < st.ds.Graph.N(); u++ {
			m.Update(topology.NodeID(u), st.featAt[d][u])
		}
		cum = res.Stats.Messages + m.Stats().Messages
		perDay = append(perDay, float64(cum))
	}
	return res.Stats, perDay, m.NumClusters(), nil
}

// replayBaselineMaintained does the same for a baseline clustering
// produced by the given function.
func (st *taoStream) replayBaselineMaintained(
	clusterFn func([]metric.Feature, float64) (*cluster.Result, error),
	delta, slack float64,
) (perDay []float64, clusters int, err error) {
	feats := st.featAt[st.firstDay]
	res, err := clusterFn(feats, delta-2*slack)
	if err != nil {
		return nil, 0, err
	}
	m, err := update.NewMaintainer(st.ds.Graph, res.Clustering, feats, update.Config{
		Delta: delta, Slack: slack, Metric: st.ds.Metric,
	})
	if err != nil {
		return nil, 0, err
	}
	for d := st.firstDay + 1; d < len(st.featAt)+st.firstDay; d++ {
		for u := 0; u < st.ds.Graph.N(); u++ {
			m.Update(topology.NodeID(u), st.featAt[d][u])
		}
		perDay = append(perDay, float64(res.Stats.Messages+m.Stats().Messages))
	}
	return perDay, m.NumClusters(), nil
}

// replayCentralized streams the same days through the model-shipping
// baseline (base station at node 0, 4 coefficients per shipment).
func (st *taoStream) replayCentralized(slack float64) (perDay []float64) {
	feats := st.featAt[st.firstDay]
	// The slack screen is the only screen the baseline has (it cannot
	// evaluate A2/A3 without a root feature); Delta only matters to the
	// config validator here.
	c := update.NewCentralizedUpdater(st.ds.Graph, 0, feats, update.Config{
		Delta: 1e18, Slack: slack, Metric: st.ds.Metric,
	}, 4)
	for d := st.firstDay + 1; d < len(st.featAt)+st.firstDay; d++ {
		for u := 0; u < st.ds.Graph.N(); u++ {
			c.Update(topology.NodeID(u), st.featAt[d][u])
		}
		perDay = append(perDay, float64(c.Stats().Messages))
	}
	return perDay
}

// fig10Delta is the representative δ for the update experiments (the
// middle of the Tao sweep).
const fig10Delta = 0.12

// Fig10 reproduces Fig. 10: total update-handling cost as the slack Δ
// grows, ELink's in-network protocol vs centralized model shipping.
func Fig10(sc Scale) (*Table, error) {
	st, err := newTaoStream(sc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig 10: update cost vs slack (Tao stream, total messages)",
		XLabel:  "slack/delta",
		Columns: []string{"elink-update", "centralized-update"},
		Notes:   []string{sc.note(), fmt.Sprintf("delta=%v, base station at node 0", fig10Delta)},
	}
	for _, frac := range []float64{0.05, 0.1, 0.2, 0.3, 0.4} {
		slack := frac * fig10Delta
		_, perDay, _, err := st.replayELink(elink.Implicit, fig10Delta, slack, sc.Seed)
		if err != nil {
			return nil, err
		}
		central := st.replayCentralized(slack)
		t.AddRow(frac, last(perDay), last(central))
	}
	return t, nil
}

// Fig11 reproduces Fig. 11: clustering quality (cluster count after the
// stream) as the slack grows — the cost of the looser maintenance.
func Fig11(sc Scale) (*Table, error) {
	st, err := newTaoStream(sc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig 11: clustering quality vs slack (Tao stream, final cluster count)",
		XLabel:  "slack/delta",
		Columns: []string{SeriesELinkImplicit, SeriesHierarchical, SeriesForest},
		Notes:   []string{sc.note(), fmt.Sprintf("delta=%v", fig10Delta)},
	}
	g, m := st.ds.Graph, st.ds.Metric
	for _, frac := range []float64{0.05, 0.1, 0.2, 0.3, 0.4} {
		slack := frac * fig10Delta
		_, _, ec, err := st.replayELink(elink.Implicit, fig10Delta, slack, sc.Seed)
		if err != nil {
			return nil, err
		}
		_, hc, err := st.replayBaselineMaintained(func(f []metric.Feature, d float64) (*cluster.Result, error) {
			return baseline.Hierarchical(g, baseline.HierConfig{Delta: d, Metric: m, Features: f})
		}, fig10Delta, slack)
		if err != nil {
			return nil, err
		}
		_, fc, err := st.replayBaselineMaintained(func(f []metric.Feature, d float64) (*cluster.Result, error) {
			return baseline.SpanningForest(g, baseline.ForestConfig{Delta: d, Metric: m, Features: f, Seed: sc.Seed})
		}, fig10Delta, slack)
		if err != nil {
			return nil, err
		}
		t.AddRow(frac, float64(ec), float64(hc), float64(fc))
	}
	return t, nil
}

// Fig12 reproduces Fig. 12: cumulative communication over time on the Tao
// stream (the paper plots it in log scale): raw shipping, model shipping,
// and the maintained distributed clusterings.
func Fig12(sc Scale) (*Table, error) {
	st, err := newTaoStream(sc)
	if err != nil {
		return nil, err
	}
	slack := 0.1 * fig10Delta
	g, m := st.ds.Graph, st.ds.Metric

	_, impl, _, err := st.replayELink(elink.Implicit, fig10Delta, slack, sc.Seed)
	if err != nil {
		return nil, err
	}
	_, expl, _, err := st.replayELink(elink.Explicit, fig10Delta, slack, sc.Seed)
	if err != nil {
		return nil, err
	}
	hier, _, err := st.replayBaselineMaintained(func(f []metric.Feature, d float64) (*cluster.Result, error) {
		return baseline.Hierarchical(g, baseline.HierConfig{Delta: d, Metric: m, Features: f})
	}, fig10Delta, slack)
	if err != nil {
		return nil, err
	}
	forest, _, err := st.replayBaselineMaintained(func(f []metric.Feature, d float64) (*cluster.Result, error) {
		return baseline.SpanningForest(g, baseline.ForestConfig{Delta: d, Metric: m, Features: f, Seed: sc.Seed})
	}, fig10Delta, slack)
	if err != nil {
		return nil, err
	}
	model := st.replayCentralized(slack)

	// Raw shipping: every 10-minute reading travels to the base station.
	cost := baseline.NewCentralizedCost(g, 0)
	var raw []float64
	cum := int64(0)
	for d := st.firstDay + 1; d < sc.TaoDays; d++ {
		cum += cost.ShipAll(144).Messages
		raw = append(raw, float64(cum))
	}

	t := &Table{
		Title:  "Fig 12: cumulative messages over time on Tao data (log-scale plot in the paper)",
		XLabel: "day",
		Columns: []string{"centralized-raw", "centralized-model",
			SeriesELinkImplicit, SeriesELinkExplicit, SeriesHierarchical, SeriesForest},
		Notes: []string{sc.note(), fmt.Sprintf("delta=%v slack=%v", fig10Delta, slack)},
	}
	for i := range impl {
		t.AddRow(float64(st.firstDay+1+i), raw[i], model[i], impl[i], expl[i], hier[i], forest[i])
	}
	return t, nil
}

func last(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return v[len(v)-1]
}
