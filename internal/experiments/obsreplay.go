package experiments

import (
	"elink/internal/detrand"
	"fmt"
	"io"
	"time"

	"elink/internal/metric"
	"elink/internal/obs"
	"elink/internal/stream"
	"elink/internal/topology"
)

// ObsReplay replays the Tao feature stream through the streaming engine
// twice — once bare, once with the full obs registry + tracer attached —
// and reports both wall times so the instrumentation overhead is a
// measured number, not a claim. The figures table carries the headline
// counters; ObsReplayTo can additionally dump the whole registry as JSON.
func ObsReplay(sc Scale) (*Table, error) { return ObsReplayTo(sc, nil) }

// ObsReplayTo is ObsReplay with an optional writer receiving the
// instrumented run's registry as JSON (nil skips the dump).
func ObsReplayTo(sc Scale, dump io.Writer) (*Table, error) {
	st, err := newTaoStream(sc)
	if err != nil {
		return nil, err
	}

	bare, err := replayEngineTao(st, sc, nil, nil, nil)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	tr := obs.NewTracer(0)
	inst, err := replayEngineTao(st, sc, reg, tr, nil)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "Obs: instrumented Tao replay (streaming engine, registry + tracer)",
		XLabel:  "instrumented",
		Columns: []string{"wall-ms", "epochs", "clusters", "update-msgs", "range-queries"},
		Notes: []string{
			sc.note(),
			fmt.Sprintf("delta=%v slack=%v", fig10Delta, 0.1*fig10Delta),
			fmt.Sprintf("overhead: %+.1f%% wall time, %d trace events recorded",
				100*(inst.wall.Seconds()/bare.wall.Seconds()-1), tr.Total()),
		},
	}
	t.AddRow(0, float64(bare.wall.Milliseconds()), float64(bare.stats.Epochs),
		float64(bare.stats.NumClusters), float64(bare.stats.TotalUpdateMsgs()), float64(bare.stats.RangeQueries))
	t.AddRow(1, float64(inst.wall.Milliseconds()), float64(inst.stats.Epochs),
		float64(inst.stats.NumClusters), float64(inst.stats.TotalUpdateMsgs()), float64(inst.stats.RangeQueries))

	if dump != nil {
		if err := reg.WriteJSON(dump); err != nil {
			return nil, fmt.Errorf("experiments: dump registry: %w", err)
		}
	}
	return t, nil
}

type replayOutcome struct {
	wall  time.Duration
	stats stream.Stats
}

// replayEngineTao streams every precomputed Tao day through an engine as
// one feature batch per day, interleaving range queries so the query-side
// instrumentation is exercised too.
func replayEngineTao(st *taoStream, sc Scale, reg *obs.Registry, tr *obs.Tracer, spans *obs.SpanTracer) (replayOutcome, error) {
	g := st.ds.Graph
	eng, err := stream.New(g, stream.Config{
		Order:  0,
		Delta:  fig10Delta,
		Slack:  0.1 * fig10Delta,
		Metric: st.ds.Metric,
		Seed:   sc.Seed,
		Obs:    reg,
		Trace:  tr,
		Spans:  spans,
	})
	if err != nil {
		return replayOutcome{}, err
	}
	rng := detrand.New(sc.Seed)
	start := time.Now()
	for d := st.firstDay; d < st.firstDay+len(st.featAt); d++ {
		batch := make([]stream.FeatureUpdate, g.N())
		for u := 0; u < g.N(); u++ {
			batch[u] = stream.FeatureUpdate{Node: topology.NodeID(u), Feature: st.featAt[d][u]}
		}
		if _, err := eng.IngestFeatures(batch); err != nil {
			return replayOutcome{}, err
		}
		for q := 0; q < sc.Queries; q++ {
			probe := st.featAt[d][rng.Intn(g.N())]
			center := make(metric.Feature, len(probe))
			copy(center, probe)
			if _, err := eng.RangeQuery(center, fig10Delta, topology.NodeID(rng.Intn(g.N()))); err != nil {
				return replayOutcome{}, err
			}
		}
	}
	return replayOutcome{wall: time.Since(start), stats: eng.Stats()}, nil
}
