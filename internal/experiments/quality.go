package experiments

import (
	"fmt"

	"elink/internal/baseline"
	"elink/internal/cluster"
	"elink/internal/data"
	"elink/internal/elink"
	"elink/internal/metric"
	"elink/internal/topology"
)

// Series names shared by the clustering-comparison figures.
const (
	SeriesELinkImplicit = "elink-implicit"
	SeriesELinkExplicit = "elink-explicit"
	SeriesCentralized   = "centralized"
	SeriesHierarchical  = "hierarchical"
	SeriesForest        = "spanning-forest"
)

// allClusterers runs the five §8 algorithms at one δ and returns their
// results keyed by series name.
func allClusterers(g *topology.Graph, feats []metric.Feature, m metric.Metric, delta float64, seed int64) (map[string]*cluster.Result, error) {
	out := make(map[string]*cluster.Result, 5)
	imp, err := elink.Run(g, elink.Config{Delta: delta, Metric: m, Features: feats, Mode: elink.Implicit, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("elink implicit: %w", err)
	}
	out[SeriesELinkImplicit] = imp
	exp, err := elink.Run(g, elink.Config{Delta: delta, Metric: m, Features: feats, Mode: elink.Explicit, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("elink explicit: %w", err)
	}
	out[SeriesELinkExplicit] = exp
	spec, err := baseline.Spectral(g, baseline.SpectralConfig{Delta: delta, Metric: m, Features: feats, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("spectral: %w", err)
	}
	out[SeriesCentralized] = spec
	hier, err := baseline.Hierarchical(g, baseline.HierConfig{Delta: delta, Metric: m, Features: feats})
	if err != nil {
		return nil, fmt.Errorf("hierarchical: %w", err)
	}
	out[SeriesHierarchical] = hier
	forest, err := baseline.SpanningForest(g, baseline.ForestConfig{Delta: delta, Metric: m, Features: feats, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("forest: %w", err)
	}
	out[SeriesForest] = forest
	return out, nil
}

var qualityColumns = []string{
	SeriesELinkImplicit, SeriesELinkExplicit, SeriesCentralized,
	SeriesHierarchical, SeriesForest,
}

// Fig08 reproduces Fig. 8: clustering quality (number of clusters) on the
// Tao dataset for varying δ, across all five algorithms.
func Fig08(sc Scale) (*Table, error) {
	ds, err := data.Tao(data.TaoConfig{Days: sc.TaoDays, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig 8: clustering quality on Tao data (number of clusters vs delta)",
		XLabel:  "delta",
		Columns: qualityColumns,
		Notes:   []string{sc.note()},
	}
	for _, delta := range ds.Deltas {
		res, err := allClusterers(ds.Graph, ds.Features, ds.Metric, delta, sc.Seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(delta, countsOf(res)...)
	}
	return t, nil
}

// Fig09 reproduces Fig. 9: clustering quality on the Death Valley
// terrain, averaged over several random topologies.
func Fig09(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Fig 9: clustering quality on Death Valley data (number of clusters vs delta)",
		XLabel:  "delta",
		Columns: qualityColumns,
		Notes:   []string{sc.note()},
	}
	var deltas []float64
	sums := make(map[float64][]float64)
	for topo := 0; topo < sc.DVTopologies; topo++ {
		ds, err := data.DeathValley(data.DeathValleyConfig{Nodes: sc.DVNodes, Seed: sc.Seed + int64(topo)})
		if err != nil {
			return nil, err
		}
		if deltas == nil {
			deltas = ds.Deltas
		}
		for _, delta := range deltas {
			res, err := allClusterers(ds.Graph, ds.Features, ds.Metric, delta, sc.Seed)
			if err != nil {
				return nil, err
			}
			counts := countsOf(res)
			if sums[delta] == nil {
				sums[delta] = make([]float64, len(counts))
			}
			for i, c := range counts {
				sums[delta][i] += c
			}
		}
	}
	for _, delta := range deltas {
		avg := sums[delta]
		for i := range avg {
			avg[i] /= float64(sc.DVTopologies)
		}
		t.AddRow(delta, avg...)
	}
	return t, nil
}

func countsOf(res map[string]*cluster.Result) []float64 {
	out := make([]float64, len(qualityColumns))
	for i, name := range qualityColumns {
		out[i] = float64(res[name].Clustering.NumClusters())
	}
	return out
}
