package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"elink/internal/sim"
	"elink/internal/topology"
)

// routesBenchGrid is the benchmark deployment: a grid (the paper's Tao
// layout) above the 1000-node line where per-message BFS routing is
// clearly separated from table-served routing.
const (
	routesBenchRows = 32
	routesBenchCols = 32
)

// routesBurstProtocol routes a burst of messages to a fixed leader-like
// destination set — the traffic shape clustering protocols produce.
type routesBurstProtocol struct {
	dests []topology.NodeID
	burst int
}

func (p routesBurstProtocol) Init(ctx sim.Context) {
	for i := 0; i < p.burst; i++ {
		ctx.Route(p.dests[(int(ctx.ID())+i)%len(p.dests)], "data", nil)
	}
}
func (routesBurstProtocol) OnMessage(sim.Context, sim.Message) {}
func (routesBurstProtocol) OnTimer(sim.Context, string)        {}

// routesBenchResult is the machine-readable BENCH_routes.json payload;
// the Makefile's bench-routes target tracks it across commits so routing
// throughput regressions show up in the perf trajectory.
type routesBenchResult struct {
	Grid           string  `json:"grid"`
	Nodes          int     `json:"nodes"`
	PathCachedNs   float64 `json:"path_cached_ns_per_msg"`
	PathBFSNs      float64 `json:"path_bfs_ns_per_msg"`
	PathSpeedup    float64 `json:"path_speedup"`
	SyncRoutedNs   float64 `json:"sync_routed_ns_per_msg"`
	AsyncRoutedNs  float64 `json:"async_routed_ns_per_msg"`
	MessagesRouted int64   `json:"messages_routed"`
}

// RoutesBench measures routed-message cost on a 32x32 grid four ways:
// shortest-path service from the shared routing tables vs one BFS per
// message (the implementation topology.Routes replaced), and the routed
// throughput of both simulator runtimes end to end. See also
// BenchmarkRouting in internal/sim for the go-bench version.
func RoutesBench(sc Scale) (*Table, error) { return RoutesBenchTo(sc, nil) }

// RoutesBenchTo is RoutesBench with an optional writer receiving the
// results as JSON (nil skips the dump).
func RoutesBenchTo(sc Scale, dump io.Writer) (*Table, error) {
	g := topology.NewGrid(routesBenchRows, routesBenchCols)
	n := g.N()
	srcs := spreadNodes(g, 64)
	dests := spreadNodes(g, 8)

	// Path service: shared routing tables (steady state) ...
	rts := topology.NewRoutes(g, 0)
	const pathMsgs = 20000
	start := time.Now()
	var hops int64
	for i := 0; i < pathMsgs; i++ {
		t := rts.Table(dests[i%len(dests)])
		src := srcs[i%len(srcs)]
		for cur := src; cur != t.Root(); cur = t.Next(cur) {
			hops++
		}
	}
	cachedNs := float64(time.Since(start).Nanoseconds()) / pathMsgs

	// ... vs one full BFS per routed message.
	const bfsMsgs = 2000
	start = time.Now()
	for i := 0; i < bfsMsgs; i++ {
		d := bfsFrom(g, dests[i%len(dests)])
		src := srcs[i%len(srcs)]
		for cur := src; d[cur] > 0; {
			var next topology.NodeID = -1
			for _, w := range g.Adj[cur] {
				if d[w] == d[cur]-1 {
					next = w
					break
				}
			}
			cur = next
			hops++
		}
	}
	bfsNs := float64(time.Since(start).Nanoseconds()) / bfsMsgs

	// Both runtimes end to end: every node routes a burst.
	const burst = 4
	factory := func(topology.NodeID) sim.Protocol {
		return routesBurstProtocol{dests: dests, burst: burst}
	}
	net := sim.NewNetwork(g, nil, sc.Seed)
	net.SetAll(factory)
	start = time.Now()
	net.Run()
	syncNs := float64(time.Since(start).Nanoseconds()) / float64(n*burst)

	an := sim.NewAsyncNetwork(g, sc.Seed)
	an.SetAll(factory)
	start = time.Now()
	an.Run()
	asyncNs := float64(time.Since(start).Nanoseconds()) / float64(n*burst)

	if s, a := net.Messages("data"), an.Messages("data"); s != a {
		return nil, fmt.Errorf("experiments: routed accounting diverged (sync %d, async %d)", s, a)
	}

	res := routesBenchResult{
		Grid:           fmt.Sprintf("%dx%d", routesBenchRows, routesBenchCols),
		Nodes:          n,
		PathCachedNs:   cachedNs,
		PathBFSNs:      bfsNs,
		PathSpeedup:    bfsNs / cachedNs,
		SyncRoutedNs:   syncNs,
		AsyncRoutedNs:  asyncNs,
		MessagesRouted: net.Messages("data"),
	}

	t := &Table{
		Title:   "Routes: routed-message cost, shared routing tables vs per-message BFS",
		XLabel:  "variant", // 0 path-cached, 1 path-bfs, 2 sync-runtime, 3 async-runtime
		Columns: []string{"ns-per-msg"},
		Notes: []string{
			fmt.Sprintf("grid %s (%d nodes), %d leader destinations", res.Grid, n, len(dests)),
			fmt.Sprintf("path service speedup: %.1fx (cached %.0f ns vs BFS %.0f ns per message)",
				res.PathSpeedup, cachedNs, bfsNs),
			fmt.Sprintf("runtime routed throughput: sync %.0f ns/msg, async %.0f ns/msg over %d routed messages",
				syncNs, asyncNs, res.MessagesRouted),
		},
	}
	t.AddRow(0, cachedNs)
	t.AddRow(1, bfsNs)
	t.AddRow(2, syncNs)
	t.AddRow(3, asyncNs)

	if dump != nil {
		enc := json.NewEncoder(dump)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return nil, fmt.Errorf("experiments: dump routes bench: %w", err)
		}
	}
	return t, nil
}

// spreadNodes picks k node ids spread evenly across the id space.
func spreadNodes(g *topology.Graph, k int) []topology.NodeID {
	out := make([]topology.NodeID, k)
	for i := range out {
		out[i] = topology.NodeID((i * g.N()) / k)
	}
	return out
}

// bfsFrom is the uncached baseline's per-message BFS field.
func bfsFrom(g *topology.Graph, src topology.NodeID) []int {
	d := make([]int, g.N())
	for i := range d {
		d[i] = -1
	}
	d[src] = 0
	queue := []topology.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Adj[u] {
			if d[v] < 0 {
				d[v] = d[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return d
}
