package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"elink/internal/obs"
)

// spansFigurePhases fixes the attribution table's row order: the epoch
// pipeline phases first (outermost to innermost), then the clustering
// work, then query execution. Phases the replay never exercised (e.g.
// journal — no WAL here) are simply absent.
var spansFigurePhases = []string{
	"epoch", "validate", "refit", "maintain", "index", "publish",
	"bootstrap", "elink-run", "index-build",
	"range-query", "q-backbone", "q-clusters", "q-aggregate",
}

// spansFigureReps interleaves bare and spanned replays and keeps the
// fastest of each — single-shot walls are dominated by warm-up order
// (whichever arm runs first pays the cold caches) and scheduler noise.
const spansFigureReps = 9

// spansFigureResult is the machine-readable -spans-out payload: the
// measured tracing overhead plus the full per-phase attribution table.
// The epoch_* pair re-runs the replay with queries excluded: per-query
// traces wrap ~10µs in-memory operations, so their relative cost
// dominates the full-replay number, while the epoch pipeline amortises
// one trace over a whole recluster round.
type spansFigureResult struct {
	BareWallMs         float64         `json:"bare_wall_ms"`
	SpannedWallMs      float64         `json:"spanned_wall_ms"`
	OverheadPct        float64         `json:"overhead_pct"`
	EpochBareWallMs    float64         `json:"epoch_bare_wall_ms"`
	EpochSpannedWallMs float64         `json:"epoch_spanned_wall_ms"`
	EpochOverheadPct   float64         `json:"epoch_overhead_pct"`
	Epochs             int64           `json:"epochs"`
	Traces             int64           `json:"traces"`
	Phases             []obs.PhaseStat `json:"phases"`
}

// measureSpanOverhead interleaves bare and spanned replays of st,
// keeping the fastest wall of each arm and the tracer belonging to the
// best spanned rep.
func measureSpanOverhead(st *taoStream, sc Scale) (bare, inst replayOutcome, spans *obs.SpanTracer, err error) {
	for rep := 0; rep < spansFigureReps; rep++ {
		b, err := replayEngineTao(st, sc, nil, nil, nil)
		if err != nil {
			return bare, inst, nil, err
		}
		tr := obs.NewSpanTracer(0, 0)
		s, err := replayEngineTao(st, sc, nil, nil, tr)
		if err != nil {
			return bare, inst, nil, err
		}
		if rep == 0 || b.wall < bare.wall {
			bare = b
		}
		if rep == 0 || s.wall < inst.wall {
			inst, spans = s, tr
		}
	}
	return bare, inst, spans, nil
}

func overheadPct(bare, inst replayOutcome) float64 {
	return 100 * (inst.wall.Seconds()/bare.wall.Seconds() - 1)
}

// Spans replays the Tao feature stream through the streaming engine
// twice — once bare, once with a span tracer attached — and reports the
// per-phase latency attribution table the tracer accumulated (count,
// p50/p95/max self-time per pipeline phase) plus the measured tracing
// overhead, so the "spans are cheap enough to leave on" claim is a
// number, not an assertion. SpansTo can additionally dump the result as
// JSON.
func Spans(sc Scale) (*Table, error) { return SpansTo(sc, nil) }

// SpansTo is Spans with an optional writer receiving the overhead and
// attribution table as JSON (nil skips the dump).
func SpansTo(sc Scale, dump io.Writer) (*Table, error) {
	st, err := newTaoStream(sc)
	if err != nil {
		return nil, err
	}
	bare, inst, spans, err := measureSpanOverhead(st, sc)
	if err != nil {
		return nil, err
	}
	// Second pair with queries excluded: isolates the epoch pipeline's
	// overhead from the per-query traces that dominate at this scale.
	scEpoch := sc
	scEpoch.Queries = 0
	epochBare, epochInst, _, err := measureSpanOverhead(st, scEpoch)
	if err != nil {
		return nil, err
	}

	phases := spans.PhaseStats()
	byName := make(map[string]obs.PhaseStat, len(phases))
	for _, p := range phases {
		byName[p.Phase] = p
	}

	t := &Table{
		Title:   "Spans: per-phase latency attribution (Tao replay, self-time)",
		XLabel:  "row",
		Columns: []string{"count", "p50-us", "p95-us", "max-us", "total-ms"},
	}
	var rowNames []string
	for _, name := range spansFigurePhases {
		p, ok := byName[name]
		if !ok {
			continue
		}
		t.AddRow(float64(len(rowNames)), float64(p.Count), p.P50Us, p.P95Us, p.MaxUs, float64(p.TotalNs)/1e6)
		rowNames = append(rowNames, fmt.Sprintf("%d=%s", len(rowNames), name))
	}
	overhead := overheadPct(bare, inst)
	epochOverhead := overheadPct(epochBare, epochInst)
	t.Notes = []string{
		sc.note(),
		"rows: " + strings.Join(rowNames, " "),
		fmt.Sprintf("overhead: %+.1f%% wall time with span tracing (bare %v, spanned %v, best of %d interleaved reps), %d traces recorded",
			overhead, bare.wall.Round(0), inst.wall.Round(0), spansFigureReps, spans.Total()),
		fmt.Sprintf("epoch pipeline only (queries excluded): %+.1f%% (bare %v, spanned %v) — the full-replay number is dominated by per-query traces around ~10µs in-memory queries",
			epochOverhead, epochBare.wall.Round(0), epochInst.wall.Round(0)),
	}

	if dump != nil {
		res := spansFigureResult{
			BareWallMs:         float64(bare.wall.Microseconds()) / 1000,
			SpannedWallMs:      float64(inst.wall.Microseconds()) / 1000,
			OverheadPct:        overhead,
			EpochBareWallMs:    float64(epochBare.wall.Microseconds()) / 1000,
			EpochSpannedWallMs: float64(epochInst.wall.Microseconds()) / 1000,
			EpochOverheadPct:   epochOverhead,
			Epochs:             inst.stats.Epochs,
			Traces:             spans.Total(),
			Phases:             phases,
		}
		enc := json.NewEncoder(dump)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return nil, fmt.Errorf("experiments: dump spans: %w", err)
		}
	}
	return t, nil
}
