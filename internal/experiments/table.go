// Package experiments regenerates every table and figure of the paper's
// evaluation section (§8), plus the complexity checks for Theorems 2–3
// and two ablations. Each experiment returns a Table whose series mirror
// the curves the paper plots; EXPERIMENTS.md records the measured shapes
// against the paper's.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Table is one experiment's output: an x-axis and one column per series.
type Table struct {
	// Title names the experiment (e.g. "Fig 8: clustering quality, Tao").
	Title string
	// XLabel names the x-axis (e.g. "delta").
	XLabel string
	// Columns names the series.
	Columns []string
	// Rows holds one entry per x value.
	Rows []Row
	// Notes carries free-form caveats (scale used, substitutions).
	Notes []string
}

// Row is one x value and its series values.
type Row struct {
	X      float64
	Values []float64
}

// AddRow appends a row, enforcing the column arity.
func (t *Table) AddRow(x float64, values ...float64) {
	if len(values) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: row has %d values for %d columns", len(values), len(t.Columns)))
	}
	t.Rows = append(t.Rows, Row{X: x, Values: values})
}

// Column returns the series values of the named column.
func (t *Table) Column(name string) []float64 {
	idx := -1
	for i, c := range t.Columns {
		if c == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	out := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r.Values[idx]
	}
	return out
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s", t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw)
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s", trimFloat(r.X))
		for _, v := range r.Values {
			fmt.Fprintf(tw, "\t%s", trimFloat(v))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Scale controls how large each experiment runs. DefaultScale matches the
// paper's setup; QuickScale shrinks everything so the whole suite runs in
// seconds (used by tests and the default bench harness).
type Scale struct {
	// TaoDays is the length of the Tao stream (paper: 30).
	TaoDays int
	// DVNodes and DVTopologies size the Death Valley runs (paper: 2500
	// nodes, 5 topologies). The centralized spectral baseline dominates
	// the running time at 2500 nodes.
	DVNodes      int
	DVTopologies int
	// SynSizes are the synthetic network sizes (paper: 100–800).
	SynSizes []int
	// SynReadings is the synthetic stream length (paper: 100,000).
	SynReadings int
	// Queries per data point (paper: averaged per-query cost).
	Queries int
	// Seed fixes all randomness.
	Seed int64
}

// DefaultScale reproduces the paper's experimental scale.
func DefaultScale() Scale {
	return Scale{
		TaoDays:      30,
		DVNodes:      2500,
		DVTopologies: 5,
		SynSizes:     []int{100, 200, 400, 800},
		SynReadings:  100000,
		Queries:      100,
		Seed:         1,
	}
}

// QuickScale shrinks every experiment for fast regression runs.
func QuickScale() Scale {
	return Scale{
		TaoDays:      10,
		DVNodes:      250,
		DVTopologies: 2,
		SynSizes:     []int{60, 120, 240},
		SynReadings:  2000,
		Queries:      20,
		Seed:         1,
	}
}

func (s Scale) note() string {
	return fmt.Sprintf("scale: taoDays=%d dvNodes=%dx%d synSizes=%v synReadings=%d queries=%d seed=%d",
		s.TaoDays, s.DVNodes, s.DVTopologies, s.SynSizes, s.SynReadings, s.Queries, s.Seed)
}

// WriteCSV writes the table as comma-separated values (header row first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{t.XLabel}, t.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := make([]string, 0, len(r.Values)+1)
		rec = append(rec, strconv.FormatFloat(r.X, 'g', -1, 64))
		for _, v := range r.Values {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
