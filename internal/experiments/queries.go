package experiments

import (
	"fmt"
	"math/rand"

	"elink/internal/baseline"
	"elink/internal/cluster"
	"elink/internal/data"
	"elink/internal/detrand"
	"elink/internal/elink"
	"elink/internal/index"
	"elink/internal/metric"
	"elink/internal/par"
	"elink/internal/query"
	"elink/internal/topology"
)

// rangeQueryCost builds an index over the clustering and averages the
// per-query cost over sc.Queries random queries: the query point is a
// uniformly sampled node's feature and the initiator a uniform node,
// matching §8.6.
//
// The query plan is drawn serially (preserving the historical rng
// order), then the queries themselves fan out over the shared execution
// layer: the index is immutable during reads (the streaming engine
// already serves it concurrently) and per-query costs land in
// index-ordered slots, so the figure is bit-identical for any -j.
func rangeQueryCost(g *topology.Graph, c *cluster.Clustering, feats []metric.Feature, m metric.Metric, r float64, queries int, rng *rand.Rand) (float64, error) {
	idx, err := index.Build(g, c, feats, m)
	if err != nil {
		return 0, err
	}
	type plan struct {
		target    metric.Feature
		initiator topology.NodeID
	}
	plans := make([]plan, queries)
	for q := range plans {
		plans[q].target = feats[rng.Intn(len(feats))]
		plans[q].initiator = topology.NodeID(rng.Intn(g.N()))
	}
	costs := make([]int64, queries)
	par.For(queries, func(q int) {
		res := query.Range(idx, plans[q].target, r, plans[q].initiator)
		costs[q] = res.Stats.Messages
	})
	var total int64
	for _, c := range costs {
		total += c
	}
	return float64(total) / float64(queries), nil
}

// rangeFigure produces a Fig 14/15-style table on the given dataset.
func rangeFigure(ds *data.Dataset, delta float64, fractions []float64, sc Scale, title string) (*Table, error) {
	g, m := ds.Graph, ds.Metric
	clusterings := make(map[string]*cluster.Clustering)

	el, err := elink.Run(g, elink.Config{Delta: delta, Metric: m, Features: ds.Features, Mode: elink.Implicit, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	clusterings[SeriesELinkImplicit] = el.Clustering
	hier, err := baseline.Hierarchical(g, baseline.HierConfig{Delta: delta, Metric: m, Features: ds.Features})
	if err != nil {
		return nil, err
	}
	clusterings[SeriesHierarchical] = hier.Clustering
	forest, err := baseline.SpanningForest(g, baseline.ForestConfig{Delta: delta, Metric: m, Features: ds.Features, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	clusterings[SeriesForest] = forest.Clustering

	cols := []string{SeriesELinkImplicit, SeriesHierarchical, SeriesForest, "tag"}
	t := &Table{
		Title:   title,
		XLabel:  "radius/delta",
		Columns: cols,
		Notes:   []string{sc.note(), fmt.Sprintf("delta=%v, query point sampled from node features", delta)},
	}
	tag := float64(query.TAG(g).Messages)
	for _, frac := range fractions {
		r := frac * delta
		row := make([]float64, 0, len(cols))
		for _, name := range cols[:3] {
			rng := detrand.New(sc.Seed + 1000) // same queries per series
			avg, err := rangeQueryCost(g, clusterings[name], ds.Features, m, r, sc.Queries, rng)
			if err != nil {
				return nil, err
			}
			row = append(row, avg)
		}
		row = append(row, tag)
		t.AddRow(frac, row...)
	}
	return t, nil
}

// fig14Delta is the representative Tao δ for the query experiments.
const fig14Delta = 0.12

// Fig14 reproduces Fig. 14: average range-query cost on the Tao data for
// radii between 0.7δ and 0.9δ.
func Fig14(sc Scale) (*Table, error) {
	ds, err := data.Tao(data.TaoConfig{Days: sc.TaoDays, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	return rangeFigure(ds, fig14Delta, []float64{0.7, 0.75, 0.8, 0.85, 0.9}, sc,
		"Fig 14: range query cost on Tao data (avg messages per query)")
}

// Fig15 reproduces Fig. 15: average range-query cost on the synthetic
// data for radii between 0.3δ and 0.7δ.
func Fig15(sc Scale) (*Table, error) {
	n := sc.SynSizes[len(sc.SynSizes)-1]
	ds, err := data.Synthetic(data.SyntheticConfig{Nodes: n, Readings: sc.SynReadings, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	return rangeFigure(ds, fig13Delta, []float64{0.3, 0.4, 0.5, 0.6, 0.7}, sc,
		"Fig 15: range query cost on synthetic data (avg messages per query)")
}

// PathQueries reproduces the path-query experiment (§8 defers the plots
// to the tech report): average cost of the safe-path search over the
// clustered index versus BFS flooding, as the safety margin γ varies on
// the Death Valley terrain with the danger at the valley floor.
func PathQueries(sc Scale) (*Table, error) {
	ds, err := data.DeathValley(data.DeathValleyConfig{Nodes: sc.DVNodes, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	g, m := ds.Graph, ds.Metric
	delta := 150.0
	res, err := elink.Run(g, elink.Config{Delta: delta, Metric: m, Features: ds.Features, Mode: elink.Implicit, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	idx, err := index.Build(g, res.Clustering, ds.Features, m)
	if err != nil {
		return nil, err
	}
	danger := metric.Feature{175} // the valley floor elevation

	t := &Table{
		Title:   "Path queries: safe-path cost on Death Valley (avg messages per query)",
		XLabel:  "gamma",
		Columns: []string{"elink-path", "bfs-flood", "found-fraction"},
		Notes:   []string{sc.note(), fmt.Sprintf("delta=%v, danger feature = valley floor (175)", delta)},
	}
	for _, gamma := range []float64{50, 100, 200, 400} {
		// Endpoints are drawn serially (historical rng order); the path
		// and flood searches per query pair fan out, with per-index
		// result slots summed in order.
		rng := detrand.New(sc.Seed + 2000)
		type endpoints struct{ src, dst topology.NodeID }
		pairs := make([]endpoints, sc.Queries)
		for q := range pairs {
			pairs[q].src = topology.NodeID(rng.Intn(g.N()))
			pairs[q].dst = topology.NodeID(rng.Intn(g.N()))
		}
		type outcome struct {
			cluster, flood int64
			found          bool
		}
		outs := make([]outcome, sc.Queries)
		par.For(sc.Queries, func(q int) {
			a := query.Path(idx, danger, gamma, pairs[q].src, pairs[q].dst)
			b := query.BFSFlood(g, ds.Features, m, danger, gamma, pairs[q].src, pairs[q].dst)
			outs[q] = outcome{cluster: a.Stats.Messages, flood: b.Stats.Messages, found: a.Found}
		})
		var clusterCost, floodCost int64
		found := 0
		for _, o := range outs {
			clusterCost += o.cluster
			floodCost += o.flood
			if o.found {
				found++
			}
		}
		t.AddRow(gamma,
			float64(clusterCost)/float64(sc.Queries),
			float64(floodCost)/float64(sc.Queries),
			float64(found)/float64(sc.Queries))
	}
	return t, nil
}
