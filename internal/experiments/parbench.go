package experiments

import (
	"elink/internal/detrand"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"elink/internal/linalg"
	"elink/internal/par"
)

// parEigenSize pairs a benchmark matrix size with its sweep cap: the
// large sizes time per-sweep throughput (one cyclic sweep visits every
// off-diagonal pair, so one sweep is a faithful cost sample) instead of
// waiting minutes for full convergence.
type parEigenSize struct {
	n, sweeps int
}

var parEigenSizes = []parEigenSize{{256, 3}, {700, 2}, {1500, 1}, {2500, 1}}

// parEigenBenchRow is one serial-vs-parallel eigensolver measurement in
// BENCH_parallel.json.
type parEigenBenchRow struct {
	N          int     `json:"n"`
	Sweeps     int     `json:"sweeps"`
	SerialMs   float64 `json:"serial_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

// parHarnessBench records the figure-harness comparison: the same set of
// figures computed with the execution layer pinned to one worker versus
// the resolved worker count.
type parHarnessBench struct {
	Figures    []string `json:"figures"`
	SerialMs   float64  `json:"serial_ms"`
	ParallelMs float64  `json:"parallel_ms"`
	Speedup    float64  `json:"speedup"`
}

// parBenchResult is the machine-readable BENCH_parallel.json payload the
// Makefile's bench-parallel target tracks across commits.
type parBenchResult struct {
	GoMaxProcs int                `json:"gomaxprocs"`
	Workers    int                `json:"workers"`
	Eigen      []parEigenBenchRow `json:"eigen"`
	Harness    parHarnessBench    `json:"harness"`
}

// parBenchMatrix builds the benchmark input: a dense random symmetric
// matrix shaped like the normalized affinity Laplacians the spectral
// baseline feeds the solver.
func parBenchMatrix(n int, seed int64) *linalg.Matrix {
	rng := detrand.New(seed)
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1+rng.Float64())
		for j := i + 1; j < n; j++ {
			v := rng.NormFloat64() / float64(n)
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// ParallelBench measures the deterministic parallel execution layer:
// the Jacobi eigensolver serial vs parallel at the sizes the spectral
// baseline sees, and the figure harness with -j 1 vs the resolved worker
// count. Speedups depend on GOMAXPROCS, which the result records — on a
// single-core host both arms measure the same machine and the speedup
// hovers around 1.
func ParallelBench(sc Scale) (*Table, error) { return ParallelBenchTo(sc, nil) }

// ParallelBenchTo is ParallelBench with an optional writer receiving the
// results as JSON (nil skips the dump).
func ParallelBenchTo(sc Scale, dump io.Writer) (*Table, error) {
	res := parBenchResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    par.Workers(),
	}

	t := &Table{
		Title:   "Parbench: Jacobi eigensolver serial vs parallel (wall ms)",
		XLabel:  "n",
		Columns: []string{"serial-ms", "parallel-ms", "speedup", "sweeps"},
	}
	for _, sz := range parEigenSizes {
		a := parBenchMatrix(sz.n, int64(sz.n))
		start := time.Now()
		if _, _, err := linalg.EigenSymOpt(a, linalg.EigenOptions{MaxSweeps: sz.sweeps, ForceSerial: true}); err != nil {
			return nil, err
		}
		serial := time.Since(start)
		start = time.Now()
		if _, _, err := linalg.EigenSymOpt(a, linalg.EigenOptions{MaxSweeps: sz.sweeps}); err != nil {
			return nil, err
		}
		parallel := time.Since(start)
		row := parEigenBenchRow{
			N:          sz.n,
			Sweeps:     sz.sweeps,
			SerialMs:   float64(serial.Microseconds()) / 1000,
			ParallelMs: float64(parallel.Microseconds()) / 1000,
			Speedup:    float64(serial) / float64(parallel),
		}
		res.Eigen = append(res.Eigen, row)
		t.AddRow(float64(sz.n), row.SerialMs, row.ParallelMs, row.Speedup, float64(sz.sweeps))
	}

	// Figure harness: the same query-heavy figures with the execution
	// layer pinned to one worker, then at the resolved count. The pin is
	// restored afterwards so a surrounding -j choice survives.
	harnessFigs := []struct {
		name string
		run  func(Scale) (*Table, error)
	}{
		{"fig14", Fig14},
		{"path", PathQueries},
	}
	restore := par.Workers()
	runAll := func() error {
		for _, f := range harnessFigs {
			if _, err := f.run(sc); err != nil {
				return fmt.Errorf("experiments: parbench harness %s: %w", f.name, err)
			}
		}
		return nil
	}
	par.SetWorkers(1)
	start := time.Now()
	if err := runAll(); err != nil {
		par.SetWorkers(restore)
		return nil, err
	}
	serial := time.Since(start)
	par.SetWorkers(restore)
	start = time.Now()
	if err := runAll(); err != nil {
		return nil, err
	}
	parallel := time.Since(start)
	res.Harness = parHarnessBench{
		SerialMs:   float64(serial.Microseconds()) / 1000,
		ParallelMs: float64(parallel.Microseconds()) / 1000,
		Speedup:    float64(serial) / float64(parallel),
	}
	for _, f := range harnessFigs {
		res.Harness.Figures = append(res.Harness.Figures, f.name)
	}

	t.Notes = []string{
		sc.note(),
		fmt.Sprintf("gomaxprocs=%d, workers=%d; large sizes capped to %d/%d sweeps (per-sweep throughput)",
			res.GoMaxProcs, res.Workers, parEigenSizes[len(parEigenSizes)-2].sweeps, parEigenSizes[len(parEigenSizes)-1].sweeps),
		fmt.Sprintf("harness (%v): serial %.0f ms vs parallel %.0f ms (%.2fx)",
			res.Harness.Figures, res.Harness.SerialMs, res.Harness.ParallelMs, res.Harness.Speedup),
	}

	if dump != nil {
		enc := json.NewEncoder(dump)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return nil, fmt.Errorf("experiments: dump parallel bench: %w", err)
		}
	}
	return t, nil
}
