package experiments

import (
	"math"

	"elink/internal/ar"
	"elink/internal/baseline"
	"elink/internal/data"
	"elink/internal/elink"
	"elink/internal/metric"
	"elink/internal/par"
	"elink/internal/topology"
	"elink/internal/update"
)

// fig13Delta is the δ used on the synthetic α̂ features.
const fig13Delta = 0.1

// Fig13 reproduces Fig. 13: total communication versus network size on
// the synthetic dataset. Each algorithm clusters once on the fitted α̂
// features and then absorbs the remainder of the reading stream through
// its update path; the centralized scheme ships coefficients to the base
// station whenever the local slack is violated.
func Fig13(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Fig 13: scalability with network size on synthetic data (total messages)",
		XLabel: "nodes",
		Columns: []string{SeriesELinkImplicit, SeriesELinkExplicit, SeriesCentralized,
			SeriesHierarchical, SeriesForest},
		Notes: []string{sc.note(), "delta=0.1 on alpha-hat features; stream updates included"},
	}
	for _, n := range sc.SynSizes {
		ds, err := data.Synthetic(data.SyntheticConfig{Nodes: n, Readings: sc.SynReadings, Seed: sc.Seed})
		if err != nil {
			return nil, err
		}
		row, err := fig13Row(ds, sc)
		if err != nil {
			return nil, err
		}
		t.AddRow(float64(n), row...)
	}
	return t, nil
}

func fig13Row(ds *data.Dataset, sc Scale) ([]float64, error) {
	g, m := ds.Graph, ds.Metric
	slack := 0.1 * fig13Delta
	// The stream replays the tail of each node's α̂ trajectory: refit
	// progressively and update after each chunk of readings.
	chunks := 20
	traj := alphaTrajectories(ds, chunks)
	initialFeats := make([]metric.Feature, g.N())
	for u := range initialFeats {
		initialFeats[u] = traj[0][u]
	}

	stream := func(mt *update.Maintainer) {
		for c := 1; c < len(traj); c++ {
			for u := 0; u < g.N(); u++ {
				mt.Update(topology.NodeID(u), traj[c][u])
			}
		}
	}

	var out []float64
	for _, mode := range []elink.Mode{elink.Implicit, elink.Explicit} {
		res, err := elink.Run(g, elink.Config{
			Delta: fig13Delta - 2*slack, Metric: m, Features: initialFeats, Mode: mode, Seed: sc.Seed,
		})
		if err != nil {
			return nil, err
		}
		mt, err := update.NewMaintainer(g, res.Clustering, initialFeats, update.Config{
			Delta: fig13Delta, Slack: slack, Metric: m,
		})
		if err != nil {
			return nil, err
		}
		stream(mt)
		out = append(out, float64(res.Stats.Messages+mt.Stats().Messages))
	}

	// Centralized: ship the model whenever the slack screen fails.
	cu := update.NewCentralizedUpdater(g, 0, initialFeats, update.Config{
		Delta: 1e18, Slack: slack, Metric: m,
	}, 1)
	for c := 1; c < len(traj); c++ {
		for u := 0; u < g.N(); u++ {
			cu.Update(topology.NodeID(u), traj[c][u])
		}
	}
	// Plus the initial shipment of every model.
	central := cu.Stats().Messages + baseline.NewCentralizedCost(g, 0).ShipModels(allNodes(g), 1).Messages
	out = append(out, float64(central))

	hier, err := baseline.Hierarchical(g, baseline.HierConfig{Delta: fig13Delta - 2*slack, Metric: m, Features: initialFeats})
	if err != nil {
		return nil, err
	}
	mt, err := update.NewMaintainer(g, hier.Clustering, initialFeats, update.Config{Delta: fig13Delta, Slack: slack, Metric: m})
	if err != nil {
		return nil, err
	}
	stream(mt)
	out = append(out, float64(hier.Stats.Messages+mt.Stats().Messages))

	forest, err := baseline.SpanningForest(g, baseline.ForestConfig{Delta: fig13Delta - 2*slack, Metric: m, Features: initialFeats, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	mt, err = update.NewMaintainer(g, forest.Clustering, initialFeats, update.Config{Delta: fig13Delta, Slack: slack, Metric: m})
	if err != nil {
		return nil, err
	}
	stream(mt)
	out = append(out, float64(forest.Stats.Messages+mt.Stats().Messages))
	return out, nil
}

// alphaTrajectories refits each node's AR(1) coefficient on growing
// prefixes of its reading stream, yielding `chunks+1` feature snapshots.
func alphaTrajectories(ds *data.Dataset, chunks int) [][]metric.Feature {
	n := ds.Graph.N()
	total := len(ds.Series[0])
	chunkLen := total / (chunks + 1)
	if chunkLen < 10 {
		chunkLen = 10
		chunks = total/chunkLen - 1
		if chunks < 1 {
			chunks = 1
		}
	}
	out := make([][]metric.Feature, 0, chunks+1)
	models := make([]*ar.Model, n)
	means := make([]float64, n)
	for u := 0; u < n; u++ {
		var mean float64
		for _, v := range ds.Series[u] {
			mean += v
		}
		means[u] = mean / float64(total)
		models[u] = ar.NewModel(1)
		models[u].SetCoef([]float64{1})
	}
	pos := 0
	for c := 0; c <= chunks; c++ {
		end := (c + 1) * chunkLen
		if end > total || c == chunks {
			end = total
		}
		snap := make([]metric.Feature, n)
		// Each node owns its model, so the chunk refits fan out over the
		// shared execution layer.
		par.For(n, func(u int) {
			for t := pos; t < end; t++ {
				models[u].Observe(ds.Series[u][t] - means[u])
			}
			snap[u] = metric.Feature{models[u].Coef[0]}
		})
		pos = end
		out = append(out, snap)
	}
	return out
}

func allNodes(g *topology.Graph) []topology.NodeID {
	out := make([]topology.NodeID, g.N())
	for i := range out {
		out[i] = topology.NodeID(i)
	}
	return out
}

// Complexity verifies Theorems 2 and 3 empirically: simulated completion
// time against the √N·log₄N bound and messages against N, for a grid
// with a banded field.
func Complexity(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Theorems 2-3: measured time and messages vs N",
		XLabel: "nodes",
		Columns: []string{
			"time-implicit", "time-explicit", "bound-2*kappa*alpha",
			"msgs-implicit-per-node", "msgs-explicit-per-node",
		},
		Notes: []string{sc.note(), "grid topology, 3-band scalar field, delta=2"},
	}
	for _, side := range []int{8, 12, 16, 24, 32} {
		g := topology.NewGrid(side, side)
		feats := bandedField(g, 3, 8)
		n := float64(g.N())
		imp, err := elink.Run(g, elink.Config{Delta: 2, Metric: metric.Scalar{}, Features: feats, Mode: elink.Implicit, Seed: sc.Seed})
		if err != nil {
			return nil, err
		}
		exp, err := elink.Run(g, elink.Config{Delta: 2, Metric: metric.Scalar{}, Features: feats, Mode: elink.Explicit, Seed: sc.Seed})
		if err != nil {
			return nil, err
		}
		kappa := 1.3 * math.Sqrt(n/2)
		alpha := math.Log(3*n+1)/math.Log(4) - 1
		t.AddRow(n,
			imp.Stats.Time, exp.Stats.Time, 2*kappa*alpha,
			float64(imp.Stats.Messages)/n, float64(exp.Stats.Messages)/n)
	}
	return t, nil
}

// bandedField assigns plateau features by x position.
func bandedField(g *topology.Graph, bands int, jump float64) []metric.Feature {
	min, max := g.BoundingBox()
	span := max.X - min.X
	if span == 0 {
		span = 1
	}
	feats := make([]metric.Feature, g.N())
	for u := range feats {
		b := int((g.Pos[u].X - min.X) / span * float64(bands))
		if b >= bands {
			b = bands - 1
		}
		feats[u] = metric.Feature{float64(b) * jump}
	}
	return feats
}
