package experiments

import (
	"elink/internal/data"
	"elink/internal/elink"
	"elink/internal/topology"
)

// RepresentativeSampling quantifies the paper's §1 motivation for
// clustering: "instead of gathering data from every node in the cluster,
// only a set of cluster representatives need to be sampled". The network
// lifetime is bottlenecked by the busiest node (the base station's
// neighbours carry everyone else's traffic), so the experiment compares
// the per-epoch maximum per-node transmission load of:
//
//   - full collection: every node's raw value travels to the base
//     station over the BFS collection tree (an inner node forwards one
//     message per descendant plus its own);
//   - representative sampling: only each cluster's root reports, routed
//     over shortest hop paths.
//
// The lifetime gain is the ratio of the two maxima — with a fixed radio
// energy budget, the hottest node survives that many times more epochs.
func RepresentativeSampling(sc Scale) (*Table, error) {
	ds, err := data.Tao(data.TaoConfig{Days: sc.TaoDays, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	g := ds.Graph
	base := topology.NodeID(0)

	// Full raw collection load: each node transmits its own value plus
	// one forward per descendant in the base station's BFS tree.
	parent := g.BFSTree(base)
	fullTx := make([]int64, g.N())
	for u := 0; u < g.N(); u++ {
		if topology.NodeID(u) == base {
			continue
		}
		for cur := topology.NodeID(u); cur != base; cur = parent[cur] {
			fullTx[cur]++
		}
	}
	fullMax := maxOf(fullTx)

	t := &Table{
		Title:   "Representative sampling (§1): per-epoch hotspot load and lifetime gain",
		XLabel:  "delta",
		Columns: []string{"clusters", "full-max-tx", "repr-max-tx", "lifetime-gain"},
		Notes:   []string{sc.note(), "base station at node 0; full collection = raw values over the BFS tree"},
	}
	for _, delta := range ds.Deltas {
		res, err := elink.Run(g, elink.Config{
			Delta: delta, Metric: ds.Metric, Features: ds.Features, Mode: elink.Implicit, Seed: sc.Seed,
		})
		if err != nil {
			return nil, err
		}
		reprTx := make([]int64, g.N())
		routes := g.Routes() // one table rooted at the base serves every report path
		for _, root := range res.Clustering.Roots {
			path := routes.Path(root, base)
			for i := 0; i+1 < len(path); i++ {
				reprTx[path[i]]++
			}
		}
		reprMax := maxOf(reprTx)
		if reprMax == 0 {
			reprMax = 1 // the base itself is the only root: nothing transmits
		}
		t.AddRow(delta,
			float64(res.Clustering.NumClusters()),
			float64(fullMax), float64(reprMax),
			float64(fullMax)/float64(reprMax))
	}
	return t, nil
}

func maxOf(v []int64) int64 {
	var m int64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// HotspotSpread reports how evenly the clustering protocol itself spreads
// its transmission load, compared with centralized model shipping at the
// same epoch: max and mean per-node transmissions for ELink's clustering
// run versus shipping every model to the base station.
func HotspotSpread(sc Scale) (*Table, error) {
	ds, err := data.Tao(data.TaoConfig{Days: sc.TaoDays, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	g := ds.Graph
	base := topology.NodeID(0)

	t := &Table{
		Title:   "Hotspot analysis: per-node transmission load, clustering vs centralized shipping",
		XLabel:  "delta",
		Columns: []string{"elink-max-tx", "elink-mean-tx", "central-max-tx", "central-mean-tx"},
		Notes:   []string{sc.note(), "central = 4 coefficients per node to the base over shortest paths"},
	}
	// Centralized: each node ships 4 coefficients to base; charge every
	// hop to its transmitting node.
	centralTx := make([]int64, g.N())
	routes := g.Routes() // one table rooted at the base serves every shipping path
	for u := 0; u < g.N(); u++ {
		if topology.NodeID(u) == base {
			continue
		}
		path := routes.Path(topology.NodeID(u), base)
		for i := 0; i+1 < len(path); i++ {
			centralTx[path[i]] += 4
		}
	}
	cMax, cMean := maxOf(centralTx), meanOf(centralTx)

	for _, delta := range ds.Deltas {
		tx, err := elink.TxPerNode(g, elink.Config{
			Delta: delta, Metric: ds.Metric, Features: ds.Features, Mode: elink.Implicit, Seed: sc.Seed,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(delta, float64(maxOf(tx)), meanOf(tx), float64(cMax), cMean)
	}
	return t, nil
}

func meanOf(v []int64) float64 {
	var s int64
	for _, x := range v {
		s += x
	}
	if len(v) == 0 {
		return 0
	}
	return float64(s) / float64(len(v))
}
