package experiments

import (
	"testing"

	"elink/internal/par"
)

// TestFiguresWorkerCountInvariant is the golden determinism test for the
// parallel execution layer: figure tables must be byte-identical with
// the layer pinned to one worker and fanned out to several, at the same
// seed. The figures chosen cover every rewired hot path — AR fitting and
// query fan-out (Fig14, PathQueries), the chunked trajectory refits and
// elink runs (Complexity), and the clustering-quality pipeline (Fig08).
func TestFiguresWorkerCountInvariant(t *testing.T) {
	figs := []struct {
		name string
		run  func(Scale) (*Table, error)
	}{
		{"fig08", Fig08},
		{"fig14", Fig14},
		{"path", PathQueries},
		{"complexity", Complexity},
	}
	sc := QuickScale()

	render := func(workers int) map[string]string {
		par.SetWorkers(workers)
		defer par.SetWorkers(0)
		out := make(map[string]string, len(figs))
		for _, f := range figs {
			tbl, err := f.run(sc)
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, f.name, err)
			}
			out[f.name] = tbl.String()
		}
		return out
	}

	serial := render(1)
	parallel := render(4)
	for _, f := range figs {
		if serial[f.name] != parallel[f.name] {
			t.Errorf("%s: table differs between -j 1 and -j 4\n--- j=1 ---\n%s\n--- j=4 ---\n%s",
				f.name, serial[f.name], parallel[f.name])
		}
	}
}
