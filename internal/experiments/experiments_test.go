package experiments

import (
	"strings"
	"testing"
)

// The experiment harness is validated at QuickScale: every figure must
// produce a well-formed table, and the paper's qualitative shapes must
// hold even at the reduced scale.

func quick() Scale { return QuickScale() }

func TestTableBasics(t *testing.T) {
	tbl := &Table{Title: "t", XLabel: "x", Columns: []string{"a", "b"}}
	tbl.AddRow(1, 2, 3)
	tbl.AddRow(2, 4, 5)
	if got := tbl.Column("b"); len(got) != 2 || got[1] != 5 {
		t.Errorf("Column(b) = %v", got)
	}
	if tbl.Column("missing") != nil {
		t.Error("missing column should be nil")
	}
	s := tbl.String()
	if !strings.Contains(s, "== t ==") || !strings.Contains(s, "a") {
		t.Errorf("render = %q", s)
	}
	defer func() {
		if recover() == nil {
			t.Error("AddRow with wrong arity should panic")
		}
	}()
	tbl.AddRow(3, 1)
}

func TestFig08Shapes(t *testing.T) {
	tbl, err := Fig08(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	elink := tbl.Column(SeriesELinkImplicit)
	central := tbl.Column(SeriesCentralized)
	forest := tbl.Column(SeriesForest)
	// Cluster count must not increase with delta for every algorithm,
	// modulo small non-monotonic wiggles; check endpoints.
	if elink[0] < elink[len(elink)-1] {
		t.Errorf("elink clusters should shrink as delta grows: %v", elink)
	}
	// ELink should be comparable to centralized (within 2.5x) and no
	// worse than the forest overall.
	var eSum, cSum, fSum float64
	for i := range elink {
		eSum += elink[i]
		cSum += central[i]
		fSum += forest[i]
	}
	if eSum > 2.5*cSum+float64(len(elink)) {
		t.Errorf("elink total clusters %v vs centralized %v: too far from centralized quality", eSum, cSum)
	}
	if eSum > fSum {
		t.Errorf("elink total clusters %v should beat spanning forest %v", eSum, fSum)
	}
}

func TestFig09Runs(t *testing.T) {
	tbl, err := Fig09(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range tbl.Rows {
		for i, v := range r.Values {
			if v < 1 {
				t.Errorf("delta=%v series %s: %v clusters", r.X, tbl.Columns[i], v)
			}
		}
	}
}

func TestFig10ELinkBeatsCentralized(t *testing.T) {
	tbl, err := Fig10(quick())
	if err != nil {
		t.Fatal(err)
	}
	el := tbl.Column("elink-update")
	ce := tbl.Column("centralized-update")
	for i := range el {
		if el[i] > ce[i] {
			t.Errorf("slack row %d: elink update cost %v exceeds centralized %v", i, el[i], ce[i])
		}
	}
	// Both costs should fall (or stay flat) as slack loosens.
	if ce[0] < ce[len(ce)-1] {
		t.Errorf("centralized cost should shrink with slack: %v", ce)
	}
}

func TestFig11QualityDegradesWithSlack(t *testing.T) {
	tbl, err := Fig11(quick())
	if err != nil {
		t.Fatal(err)
	}
	el := tbl.Column(SeriesELinkImplicit)
	// Larger slack tightens the initial delta, so the final count should
	// not decrease from the smallest to the largest slack.
	if el[len(el)-1] < el[0] {
		t.Errorf("elink cluster count should not improve with slack: %v", el)
	}
}

func TestFig12Ordering(t *testing.T) {
	tbl, err := Fig12(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	lastRow := tbl.Rows[len(tbl.Rows)-1]
	raw := lastRow.Values[0]
	model := lastRow.Values[1]
	impl := lastRow.Values[2]
	// Fig 12's two orders of magnitude: raw >> model >> in-network.
	if !(raw > 5*model) {
		t.Errorf("raw shipping %v should dwarf model shipping %v", raw, model)
	}
	if !(model > 2*impl) {
		t.Errorf("model shipping %v should exceed elink in-network %v", model, impl)
	}
	// Cumulative series must be non-decreasing.
	for col := 0; col < len(tbl.Columns); col++ {
		series := tbl.Column(tbl.Columns[col])
		for i := 1; i < len(series); i++ {
			if series[i] < series[i-1] {
				t.Errorf("series %s decreases at row %d", tbl.Columns[col], i)
			}
		}
	}
}

func TestFig13ELinkScalesBest(t *testing.T) {
	tbl, err := Fig13(quick())
	if err != nil {
		t.Fatal(err)
	}
	el := tbl.Column(SeriesELinkImplicit)
	ce := tbl.Column(SeriesCentralized)
	hi := tbl.Column(SeriesHierarchical)
	lastIdx := len(tbl.Rows) - 1
	if el[lastIdx] > ce[lastIdx] {
		t.Errorf("at the largest N, elink (%v) should beat centralized (%v)", el[lastIdx], ce[lastIdx])
	}
	if el[lastIdx] > hi[lastIdx] {
		t.Errorf("at the largest N, elink (%v) should beat hierarchical (%v)", el[lastIdx], hi[lastIdx])
	}
}

func TestFig14PruningBeatsTAG(t *testing.T) {
	tbl, err := Fig14(quick())
	if err != nil {
		t.Fatal(err)
	}
	el := tbl.Column(SeriesELinkImplicit)
	tag := tbl.Column("tag")
	for i := range el {
		// The clustered search must beat TAG at every radius in the
		// sweep (the paper's gains reach 5x at the small end).
		if el[i] >= tag[i] {
			t.Errorf("radius row %d: elink query cost %v should beat TAG %v", i, el[i], tag[i])
		}
	}
	// With wholesale cluster inclusion the cost stays in a narrow band
	// across the radius sweep (see EXPERIMENTS.md); guard against wild
	// swings rather than monotonicity.
	if el[len(el)-1] > 1.5*el[0] || el[0] > 1.5*el[len(el)-1] {
		t.Errorf("query cost swings too much across radii: %v", el)
	}
}

func TestFig15Runs(t *testing.T) {
	tbl, err := Fig15(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 radius fractions", len(tbl.Rows))
	}
}

func TestPathQueriesClusterSearchWins(t *testing.T) {
	tbl, err := PathQueries(quick())
	if err != nil {
		t.Fatal(err)
	}
	el := tbl.Column("elink-path")
	fl := tbl.Column("bfs-flood")
	var eSum, fSum float64
	for i := range el {
		eSum += el[i]
		fSum += fl[i]
	}
	if eSum >= fSum {
		t.Errorf("clustered path search total %v should beat flooding %v", eSum, fSum)
	}
}

func TestComplexityWithinBounds(t *testing.T) {
	tbl, err := Complexity(quick())
	if err != nil {
		t.Fatal(err)
	}
	timeImp := tbl.Column("time-implicit")
	bound := tbl.Column("bound-2*kappa*alpha")
	msgs := tbl.Column("msgs-implicit-per-node")
	for i := range timeImp {
		// The schedule sums to < 2*kappa*alpha; expansion adds a bounded
		// tail. Allow 2x.
		if timeImp[i] > 2*bound[i] {
			t.Errorf("row %d: time %v far above bound %v", i, timeImp[i], bound[i])
		}
	}
	// O(N) messages: per-node cost must not grow with N by more than a
	// small factor across a 16x size range.
	if msgs[len(msgs)-1] > 3*msgs[0] {
		t.Errorf("messages per node grew %v -> %v; not O(N)", msgs[0], msgs[len(msgs)-1])
	}
}

func TestAblationUnordered(t *testing.T) {
	tbl, err := AblationUnordered(quick())
	if err != nil {
		t.Fatal(err)
	}
	ordered := tbl.Column("clusters-ordered")
	unordered := tbl.Column("clusters-unordered")
	tOrd := tbl.Column("time-ordered")
	tUn := tbl.Column("time-unordered")
	var oSum, uSum float64
	for i := range ordered {
		oSum += ordered[i]
		uSum += unordered[i]
		if tUn[i] >= tOrd[i] {
			t.Errorf("row %d: unordered time %v should beat ordered %v", i, tUn[i], tOrd[i])
		}
	}
	if uSum < oSum {
		t.Errorf("unordered quality (total %v) should not beat ordered (%v)", uSum, oSum)
	}
}

func TestAblationSwitchesAndPhi(t *testing.T) {
	sw, err := AblationSwitches(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Rows) != 5 {
		t.Fatalf("switch rows = %d", len(sw.Rows))
	}
	phi, err := AblationPhi(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(phi.Rows) != 5 {
		t.Fatalf("phi rows = %d", len(phi.Rows))
	}
}

func TestKMedoidsComparison(t *testing.T) {
	tbl, err := KMedoidsComparison(quick())
	if err != nil {
		t.Fatal(err)
	}
	elMsgs := tbl.Column("elink-messages")
	kmMsgs := tbl.Column("kmedoids-messages")
	for i := range elMsgs {
		if kmMsgs[i] <= elMsgs[i] {
			t.Errorf("row %d: k-medoids %v msgs should exceed elink %v", i, kmMsgs[i], elMsgs[i])
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tbl := &Table{Title: "t", XLabel: "x", Columns: []string{"a"}}
	tbl.AddRow(1.5, 2)
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "x,a\n1.5,2\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}

func TestReclusterPolicy(t *testing.T) {
	tbl, err := ReclusterPolicy(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 policies", len(tbl.Rows))
	}
	never := tbl.Rows[0]
	adaptive := tbl.Rows[1]
	daily := tbl.Rows[2]
	// Daily re-clustering must cost the most and re-cluster every day.
	if daily.Values[0] < never.Values[0] {
		t.Errorf("daily policy (%v msgs) should cost at least never (%v)", daily.Values[0], never.Values[0])
	}
	if daily.Values[2] == 0 {
		t.Error("daily policy performed no reclusterings")
	}
	// Adaptive sits between: no more reclusterings than daily.
	if adaptive.Values[2] > daily.Values[2] {
		t.Errorf("adaptive reclustered %v times, more than daily %v", adaptive.Values[2], daily.Values[2])
	}
	// Quality: daily should end with no more clusters than never.
	if daily.Values[1] > never.Values[1] {
		t.Errorf("daily final clusters %v should not exceed never %v", daily.Values[1], never.Values[1])
	}
}

func TestRepresentativeSampling(t *testing.T) {
	tbl, err := RepresentativeSampling(quick())
	if err != nil {
		t.Fatal(err)
	}
	gains := tbl.Column("lifetime-gain")
	clusters := tbl.Column("clusters")
	for i, gain := range gains {
		if gain < 1 {
			t.Errorf("row %d: lifetime gain %v < 1; representative sampling cannot be worse", i, gain)
		}
	}
	// Fewer clusters (larger delta) should not reduce the gain.
	if gains[len(gains)-1] < gains[0] && clusters[len(clusters)-1] < clusters[0] {
		t.Errorf("gain should grow as clusters shrink: clusters %v gains %v", clusters, gains)
	}
}

func TestHotspotSpread(t *testing.T) {
	tbl, err := HotspotSpread(quick())
	if err != nil {
		t.Fatal(err)
	}
	elMax := tbl.Column("elink-max-tx")
	ceMax := tbl.Column("central-max-tx")
	for i := range elMax {
		if elMax[i] >= ceMax[i] {
			t.Errorf("row %d: elink hotspot %v should be cooler than centralized %v", i, elMax[i], ceMax[i])
		}
	}
}

func TestOptimalityGap(t *testing.T) {
	tbl, err := OptimalityGap(quick())
	if err != nil {
		t.Fatal(err)
	}
	opt := tbl.Column("optimal")
	for _, name := range []string{SeriesELinkImplicit, SeriesCentralized, SeriesHierarchical, SeriesForest} {
		algo := tbl.Column(name)
		for i := range opt {
			if algo[i] < opt[i]-1e-9 {
				t.Fatalf("%s mean %v beat the optimum %v at row %d — the exact solver or the algorithm is broken",
					name, algo[i], opt[i], i)
			}
		}
	}
	// ELink should stay within a small factor of optimal on instances
	// where the optimum is non-trivial. (When δ covers the whole feature
	// range the δ/2 admission rule is maximally conservative and the gap
	// widens — see EXPERIMENTS.md.)
	el := tbl.Column(SeriesELinkImplicit)
	for i := range opt {
		if opt[i] > 2 && el[i] > 2.5*opt[i] {
			t.Errorf("row %d: elink mean %v vs optimal %v — gap too wide", i, el[i], opt[i])
		}
	}
}
