package experiments

import (
	"elink/internal/baseline"
	"elink/internal/data"
	"elink/internal/elink"
)

// AblationUnordered quantifies the §5 remark that an unordered sentinel
// expansion finishes in O(√N) time but clusters worse: implicit (ordered)
// vs the compressed schedule on the Tao dataset across δ.
func AblationUnordered(sc Scale) (*Table, error) {
	ds, err := data.Tao(data.TaoConfig{Days: sc.TaoDays, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation: ordered (implicit) vs unordered sentinel expansion on Tao data",
		XLabel:  "delta",
		Columns: []string{"clusters-ordered", "clusters-unordered", "time-ordered", "time-unordered"},
		Notes:   []string{sc.note()},
	}
	for _, delta := range ds.Deltas {
		ord, err := elink.Run(ds.Graph, elink.Config{Delta: delta, Metric: ds.Metric, Features: ds.Features, Mode: elink.Implicit, Seed: sc.Seed})
		if err != nil {
			return nil, err
		}
		un, err := elink.Run(ds.Graph, elink.Config{Delta: delta, Metric: ds.Metric, Features: ds.Features, Mode: elink.Unordered, Seed: sc.Seed})
		if err != nil {
			return nil, err
		}
		t.AddRow(delta,
			float64(ord.Clustering.NumClusters()), float64(un.Clustering.NumClusters()),
			ord.Stats.Time, un.Stats.Time)
	}
	return t, nil
}

// AblationSwitches sweeps the switch budget c (with the paper's
// φ = 0.1δ): quality bought per extra switch and the message overhead it
// costs.
func AblationSwitches(sc Scale) (*Table, error) {
	ds, err := data.Tao(data.TaoConfig{Days: sc.TaoDays, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	delta := fig10Delta
	t := &Table{
		Title:   "Ablation: switch budget c on Tao data",
		XLabel:  "c",
		Columns: []string{"clusters", "messages"},
		Notes:   []string{sc.note(), "delta=0.2, phi=0.1*delta"},
	}
	for _, c := range []int{1, 2, 4, 6, 8} {
		res, err := elink.Run(ds.Graph, elink.Config{
			Delta: delta, MaxSwitches: c, Metric: ds.Metric, Features: ds.Features,
			Mode: elink.Implicit, Seed: sc.Seed,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(float64(c), float64(res.Clustering.NumClusters()), float64(res.Stats.Messages))
	}
	return t, nil
}

// AblationPhi sweeps the switch-gain threshold φ.
func AblationPhi(sc Scale) (*Table, error) {
	ds, err := data.Tao(data.TaoConfig{Days: sc.TaoDays, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	delta := fig10Delta
	t := &Table{
		Title:   "Ablation: switch-gain threshold phi on Tao data",
		XLabel:  "phi/delta",
		Columns: []string{"clusters", "messages"},
		Notes:   []string{sc.note(), "delta=0.2, c=4"},
	}
	for _, frac := range []float64{0.02, 0.05, 0.1, 0.2, 0.4} {
		res, err := elink.Run(ds.Graph, elink.Config{
			Delta: delta, Phi: frac * delta, Metric: ds.Metric, Features: ds.Features,
			Mode: elink.Implicit, Seed: sc.Seed,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(frac, float64(res.Clustering.NumClusters()), float64(res.Stats.Messages))
	}
	return t, nil
}

// All runs every experiment at the given scale, in figure order.
func All(sc Scale) ([]*Table, error) {
	runs := []func(Scale) (*Table, error){
		Fig08, Fig09, Fig10, Fig11, Fig12, Fig13, Fig14, Fig15,
		PathQueries, Complexity, AblationUnordered, AblationSwitches, AblationPhi,
		KMedoidsComparison, ReclusterPolicy, RepresentativeSampling, HotspotSpread,
		OptimalityGap,
	}
	var out []*Table
	for _, run := range runs {
		tbl, err := run(sc)
		if err != nil {
			return out, err
		}
		out = append(out, tbl)
	}
	return out, nil
}

// KMedoidsComparison quantifies §9's related-work argument: distributed
// k-medoids needs network-wide medoid broadcasts every round, so its
// clustering cost dwarfs ELink's even when its quality is comparable.
func KMedoidsComparison(sc Scale) (*Table, error) {
	ds, err := data.Tao(data.TaoConfig{Days: sc.TaoDays, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Related work (§9): distributed k-medoids vs ELink on Tao data",
		XLabel:  "delta",
		Columns: []string{"elink-clusters", "kmedoids-clusters", "elink-messages", "kmedoids-messages"},
		Notes:   []string{sc.note()},
	}
	for _, delta := range ds.Deltas {
		el, err := elink.Run(ds.Graph, elink.Config{Delta: delta, Metric: ds.Metric, Features: ds.Features, Mode: elink.Implicit, Seed: sc.Seed})
		if err != nil {
			return nil, err
		}
		km, err := baseline.KMedoids(ds.Graph, baseline.KMedoidsConfig{Delta: delta, Metric: ds.Metric, Features: ds.Features, Seed: sc.Seed})
		if err != nil {
			return nil, err
		}
		t.AddRow(delta,
			float64(el.Clustering.NumClusters()), float64(km.Clustering.NumClusters()),
			float64(el.Stats.Messages), float64(km.Stats.Messages))
	}
	return t, nil
}
