package experiments

import (
	"fmt"

	"elink/internal/cluster"
	"elink/internal/elink"
	"elink/internal/metric"
	"elink/internal/topology"
	"elink/internal/update"
)

// ReclusterPolicy quantifies §6's motivation: accumulated slack
// violations fragment the clustering until a global re-clustering pays
// for itself. Three policies absorb the same Tao stream:
//
//   - never: maintenance only (quality decays as fragmentation grows);
//   - daily: a full ELink re-clustering every day (best quality, pays the
//     clustering cost repeatedly);
//   - adaptive: re-cluster only when fragmentation exceeds 1.5x the initial
//     cluster count (the Maintainer.NeedsRecluster trigger).
//
// The table reports total messages and final cluster count per policy.
func ReclusterPolicy(sc Scale) (*Table, error) {
	st, err := newTaoStream(sc)
	if err != nil {
		return nil, err
	}
	delta := fig10Delta
	slack := 0.1 * delta

	t := &Table{
		Title:   "Re-clustering policy under drift (Tao stream)",
		XLabel:  "policy(0=never,1=adaptive,2=daily)",
		Columns: []string{"total-messages", "final-clusters", "reclusterings"},
		Notes:   []string{sc.note(), fmt.Sprintf("delta=%v slack=%v, adaptive threshold 1.5x", delta, slack)},
	}
	type policy struct {
		id    float64
		daily bool
		adapt bool
	}
	for _, p := range []policy{{0, false, false}, {1, false, true}, {2, true, false}} {
		msgs, clusters, reclusterings, err := st.replayWithPolicy(delta, slack, sc.Seed, p.daily, p.adapt)
		if err != nil {
			return nil, err
		}
		t.AddRow(p.id, float64(msgs), float64(clusters), float64(reclusterings))
	}
	return t, nil
}

// replayWithPolicy streams the Tao days through maintenance, re-running
// ELink per the policy and accumulating all costs.
func (st *taoStream) replayWithPolicy(delta, slack float64, seed int64, daily, adaptive bool) (msgs int64, clusters, reclusterings int, err error) {
	g, met := st.ds.Graph, st.ds.Metric
	reclusterAt := func(feats []metric.Feature) (*cluster.Result, *update.Maintainer, error) {
		res, err := elink.Run(g, elink.Config{
			Delta: delta - 2*slack, Metric: met, Features: feats, Mode: elink.Implicit, Seed: seed,
		})
		if err != nil {
			return nil, nil, err
		}
		m, err := update.NewMaintainer(g, res.Clustering, feats, update.Config{
			Delta: delta, Slack: slack, Metric: met,
		})
		if err != nil {
			return nil, nil, err
		}
		return res, m, nil
	}

	res, m, err := reclusterAt(st.featAt[st.firstDay])
	if err != nil {
		return 0, 0, 0, err
	}
	msgs = res.Stats.Messages
	for d := st.firstDay + 1; d < st.firstDay+len(st.featAt); d++ {
		for u := 0; u < g.N(); u++ {
			m.Update(topology.NodeID(u), st.featAt[d][u])
		}
		if daily || (adaptive && m.NeedsRecluster(1.5)) {
			msgs += m.Stats().Messages
			res, m, err = reclusterAt(st.featAt[d])
			if err != nil {
				return 0, 0, 0, err
			}
			msgs += res.Stats.Messages
			reclusterings++
		}
	}
	msgs += m.Stats().Messages
	return msgs, m.NumClusters(), reclusterings, nil
}
