package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"elink/internal/obs"
	"elink/internal/par"
)

// TestSpansFigure smoke-tests the attribution figure: the table carries
// one row per exercised pipeline phase, the notes name the rows and the
// measured overhead, and the JSON dump decodes with a populated phase
// table.
func TestSpansFigure(t *testing.T) {
	var buf bytes.Buffer
	tbl, err := SpansTo(quick(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("spans figure produced no attribution rows")
	}
	notes := strings.Join(tbl.Notes, "\n")
	for _, want := range []string{"rows: 0=epoch", "overhead:", "range-query"} {
		if !strings.Contains(notes, want) {
			t.Errorf("notes missing %q:\n%s", want, notes)
		}
	}

	var res spansFigureResult
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("spans dump: %v", err)
	}
	if res.Epochs == 0 || res.Traces == 0 || res.SpannedWallMs <= 0 {
		t.Fatalf("spans dump = %+v, want populated replay", res)
	}
	phases := map[string]obs.PhaseStat{}
	for _, p := range res.Phases {
		phases[p.Phase] = p
	}
	for _, want := range []string{"epoch", "refit", "publish", "range-query"} {
		p, ok := phases[want]
		if !ok || p.Count == 0 || p.P95Ns < p.P50Ns || p.MaxNs < p.P95Ns {
			t.Errorf("phase %q = %+v, want populated quantiles with p50<=p95<=max", want, p)
		}
	}
}

// TestFiguresSpanTracingInvariant is the golden determinism test for
// span tracing: figure tables must be byte-identical with the par-layer
// span tracer detached and installed, serial and fanned out — spans
// observe timing, never scheduling or results.
func TestFiguresSpanTracingInvariant(t *testing.T) {
	figs := []struct {
		name string
		run  func(Scale) (*Table, error)
	}{
		{"fig08", Fig08},
		{"fig14", Fig14},
		{"path", PathQueries},
	}
	sc := QuickScale()

	render := func(workers int, spans bool) map[string]string {
		par.SetWorkers(workers)
		defer par.SetWorkers(0)
		if spans {
			par.InstrumentSpans(obs.NewSpanTracer(0, 0))
			defer par.InstrumentSpans(nil)
		}
		out := make(map[string]string, len(figs))
		for _, f := range figs {
			tbl, err := f.run(sc)
			if err != nil {
				t.Fatalf("workers=%d spans=%v %s: %v", workers, spans, f.name, err)
			}
			out[f.name] = tbl.String()
		}
		return out
	}

	base := render(1, false)
	for _, cfg := range []struct {
		workers int
		spans   bool
	}{{1, true}, {4, true}} {
		got := render(cfg.workers, cfg.spans)
		for _, f := range figs {
			if got[f.name] != base[f.name] {
				t.Errorf("%s: table differs with spans=%v -j %d\n--- base ---\n%s\n--- got ---\n%s",
					f.name, cfg.spans, cfg.workers, base[f.name], got[f.name])
			}
		}
	}
}
