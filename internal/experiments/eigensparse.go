package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"elink/internal/baseline"
	"elink/internal/detrand"
	"elink/internal/linalg"
	"elink/internal/metric"
	"elink/internal/par"
	"elink/internal/topology"
)

// eigenSparseK is the bottom-k width every ladder solve requests, and
// eigenSparseTol mirrors the spectral baseline's sparse-path tolerance
// so the ladder times the configuration the baseline actually runs.
const (
	eigenSparseK   = 8
	eigenSparseTol = 2e-4
)

// eigenSparseLegacyMaxN caps the legacy subspace-iteration comparison
// arm: EigenTopK's fixed 400-iteration budget already takes seconds at
// 2500 nodes and would dominate the bench above it.
const eigenSparseLegacyMaxN = 2500

// eigenSparseRow is one ladder rung in BENCH_eigen_sparse.json. The
// primary arm is the production configuration (Chebyshev preconditioner
// plus coarse-grid warm start); the unprecond arm re-runs the same
// solve with IdentityPrecond and RandomStart — the pre-preconditioner
// engine — so the speedup column is measured in-run, not against stale
// history.
type eigenSparseRow struct {
	N             int     `json:"n"`
	NNZ           int     `json:"nnz"`
	LobpcgMs      float64 `json:"lobpcg_ms"`
	Iters         int     `json:"iters"`
	WorstResidual float64 `json:"worst_residual"`
	Precond       string  `json:"precond"`
	CoarseLevels  int     `json:"coarse_levels"`
	// Unpreconditioned random-start baseline arm and the resulting
	// per-rung speedup (unprecond_ms / lobpcg_ms).
	UnprecondMs    float64 `json:"unprecond_ms"`
	UnprecondIters int     `json:"unprecond_iters"`
	Speedup        float64 `json:"speedup"`
	// Legacy arm: the pre-existing dense-vector subspace iteration
	// (SparseSym.EigenTopK) on the same operator, small sizes only.
	LegacyMs       float64 `json:"legacy_ms,omitempty"`
	LegacyResidual float64 `json:"legacy_residual,omitempty"`
}

// eigenSparseSpectral records the end-to-end spectral-baseline arm: the
// ROADMAP acceptance target is a 10k-node grid in seconds.
type eigenSparseSpectral struct {
	N        int     `json:"n"`
	WallMs   float64 `json:"spectral_wall_ms"`
	Clusters int     `json:"clusters"`
}

// eigenSparseSparsify records the sparsification pre-pass on an
// over-dense geometric affinity: edge counts before/after and the k=8
// solve time on each.
type eigenSparseSparsify struct {
	N                 int     `json:"n"`
	NNZ               int     `json:"nnz"`
	NNZSparsified     int     `json:"nnz_sparsified"`
	SolveMs           float64 `json:"solve_ms"`
	SolveSparsifiedMs float64 `json:"solve_sparsified_ms"`
}

// eigenSparseResult is the machine-readable BENCH_eigen_sparse.json
// payload the Makefile's bench-eigen-sparse target tracks across
// commits.
type eigenSparseResult struct {
	GoMaxProcs int                  `json:"gomaxprocs"`
	Workers    int                  `json:"workers"`
	K          int                  `json:"k"`
	Tol        float64              `json:"tol"`
	Ladder     []eigenSparseRow     `json:"ladder"`
	Spectral   eigenSparseSpectral  `json:"spectral"`
	Sparsify   *eigenSparseSparsify `json:"sparsify,omitempty"`
}

// eigenSparseGridLaplacian builds the normalized Laplacian of a
// rows x cols grid with unit edges and unit self-loops — the affinity
// shape the spectral baseline produces on a grid deployment.
func eigenSparseGridLaplacian(rows, cols int) *linalg.CSR {
	s := linalg.NewSparseSym(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := r*cols + c
			s.Set(id, id, 1)
			if c+1 < cols {
				s.Set(id, id+1, 1)
			}
			if r+1 < rows {
				s.Set(id, (r+1)*cols+c, 1)
			}
		}
	}
	return s.Finalize().NormalizedLaplacian()
}

// eigenSparseWorst extracts the worst per-vector residual, reaching into
// a ConvergenceError when the solve ran out of iterations.
func eigenSparseWorst(res *linalg.BottomKResult, err error) (float64, error) {
	var ce *linalg.ConvergenceError
	if err != nil && !errors.As(err, &ce) {
		return 0, err
	}
	residuals := res.Residuals
	if ce != nil {
		residuals = ce.Residuals
	}
	worst := 0.0
	for _, r := range residuals {
		if r > worst {
			worst = r
		}
	}
	return worst, nil
}

// eigenSparseLegacy times the pre-existing subspace-iteration solver on
// the shifted operator 2I - L (same eigenvectors, top-k order) and
// reports its true worst residual against L's spectrum.
func eigenSparseLegacy(l *linalg.CSR, seed int64) (float64, float64, error) {
	n := l.N
	shifted := linalg.NewSparseSym(n)
	for i := 0; i < n; i++ {
		for idx := l.RowPtr[i]; idx < l.RowPtr[i+1]; idx++ {
			j := int(l.ColIdx[idx])
			if j < i {
				continue
			}
			v := -l.Vals[idx]
			if j == i {
				v += 2
			}
			if v != 0 {
				shifted.Set(i, j, v)
			}
		}
	}
	start := time.Now()
	vals, vecs, err := shifted.EigenTopK(eigenSparseK, detrand.New(seed))
	elapsed := time.Since(start)
	if err != nil && !errors.Is(err, linalg.ErrNoConvergence) {
		return 0, 0, err
	}
	// Residual of each Ritz pair under the shifted operator, computed
	// directly so converged and iteration-capped runs report on the same
	// scale as the LOBPCG column.
	worst := 0.0
	x := make([]float64, n)
	y := make([]float64, n)
	for c := range vals {
		for r := 0; r < n; r++ {
			x[r] = vecs.At(r, c)
		}
		shifted.MulVec(x, y)
		for r := 0; r < n; r++ {
			if d := y[r] - vals[c]*x[r]; d > worst {
				worst = d
			} else if -d > worst {
				worst = -d
			}
		}
	}
	return float64(elapsed.Microseconds()) / 1000, worst, nil
}

// EigenSparseBench measures the sparse spectral engine: a
// preconditioned-LOBPCG ladder over grid Laplacians (up to n=20000 at
// paper scale) with an in-run unpreconditioned baseline arm per rung
// (the speedup column), the legacy subspace-iteration solver for
// comparison at small sizes, the sparsification pre-pass on an
// over-dense geometric affinity, and the end-to-end spectral baseline
// on a 10k-node grid (the ROADMAP "seconds, not minutes" acceptance
// target).
func EigenSparseBench(sc Scale) (*Table, error) { return EigenSparseBenchTo(sc, nil) }

// EigenSparseBenchTo is EigenSparseBench with an optional writer
// receiving the results as JSON (nil skips the dump).
func EigenSparseBenchTo(sc Scale, dump io.Writer) (*Table, error) {
	// Quick scale keeps the ladder small enough for test runs; paper
	// scale is the committed BENCH_eigen_sparse.json shape.
	paperScale := sc.DVNodes >= 1000
	ladder := [][2]int{{20, 25}, {40, 50}}
	spectralGrid := [2]int{30, 40}
	if paperScale {
		ladder = [][2]int{{50, 50}, {100, 100}, {100, 200}}
		spectralGrid = [2]int{100, 100}
	}

	res := eigenSparseResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    par.Workers(),
		K:          eigenSparseK,
		Tol:        eigenSparseTol,
	}
	t := &Table{
		Title:   "Eigensparse: preconditioned LOBPCG ladder vs unpreconditioned and legacy arms (wall ms)",
		XLabel:  "n",
		Columns: []string{"nnz", "lobpcg-ms", "iters", "speedup", "worst-residual", "legacy-ms"},
	}

	for _, sz := range ladder {
		l := eigenSparseGridLaplacian(sz[0], sz[1])

		// Production arm: Chebyshev preconditioner (the spectral
		// baseline's configuration for the [0,2] Laplacian spectrum) with
		// the coarse-grid warm start.
		rng := detrand.New(sc.Seed + int64(l.N))
		start := time.Now()
		solved, err := l.EigenBottomK(eigenSparseK, rng, linalg.BottomKOptions{
			Tol:     eigenSparseTol,
			Precond: linalg.NewChebyshev(l, 0, 0, 0),
		})
		elapsed := time.Since(start)
		worst, err := eigenSparseWorst(solved, err)
		if err != nil {
			return nil, fmt.Errorf("experiments: eigensparse n=%d: %w", l.N, err)
		}

		// Baseline arm: identity preconditioner, seeded-random start —
		// the engine exactly as it ran before preconditioning.
		rng = detrand.New(sc.Seed + int64(l.N))
		start = time.Now()
		unprec, err := l.EigenBottomK(eigenSparseK, rng, linalg.BottomKOptions{
			Tol:         eigenSparseTol,
			Precond:     linalg.IdentityPrecond{},
			RandomStart: true,
		})
		unprecElapsed := time.Since(start)
		if _, err := eigenSparseWorst(unprec, err); err != nil {
			return nil, fmt.Errorf("experiments: eigensparse unprecond n=%d: %w", l.N, err)
		}

		row := eigenSparseRow{
			N:              l.N,
			NNZ:            l.NNZ(),
			LobpcgMs:       float64(elapsed.Microseconds()) / 1000,
			Iters:          solved.Iters,
			WorstResidual:  worst,
			Precond:        "chebyshev",
			CoarseLevels:   solved.CoarseLevels,
			UnprecondMs:    float64(unprecElapsed.Microseconds()) / 1000,
			UnprecondIters: unprec.Iters,
		}
		if row.LobpcgMs > 0 {
			row.Speedup = row.UnprecondMs / row.LobpcgMs
		}
		if l.N <= eigenSparseLegacyMaxN {
			ms, legacyWorst, err := eigenSparseLegacy(l, sc.Seed)
			if err != nil {
				return nil, fmt.Errorf("experiments: eigensparse legacy n=%d: %w", l.N, err)
			}
			row.LegacyMs, row.LegacyResidual = ms, legacyWorst
		}
		res.Ladder = append(res.Ladder, row)
		t.AddRow(float64(row.N), float64(row.NNZ), row.LobpcgMs, float64(row.Iters), row.Speedup, row.WorstResidual, row.LegacyMs)
	}

	// Sparsification pre-pass arm: an over-dense geometric affinity
	// (average degree ~40) thinned to the baseline's default target.
	if paperScale {
		rng := detrand.New(sc.Seed + 7)
		g := topology.RandomGeometricForDegree(4000, 40, rng)
		aff := linalg.NewSparseSym(g.N())
		for u := 0; u < g.N(); u++ {
			aff.Set(u, u, 1)
			for _, v := range g.Neighbors(topology.NodeID(u)) {
				if int(v) > u {
					aff.Set(u, int(v), 1)
				}
			}
		}
		full := aff.Finalize()
		thin := linalg.Sparsify(full, 16, rng)
		solveMs := func(c *linalg.CSR) (float64, error) {
			// Production configuration (Chebyshev on the Laplacian), same as
			// the spectral baseline's sparse path; the Laplacian build and
			// preconditioner setup stay inside the timer, matching the
			// pre-preconditioner snapshots.
			start := time.Now()
			lap := c.NormalizedLaplacian()
			solved, err := lap.EigenBottomK(eigenSparseK, detrand.New(sc.Seed), linalg.BottomKOptions{
				Tol:     eigenSparseTol,
				Precond: linalg.NewChebyshev(lap, 0, 0, 0),
			})
			elapsed := time.Since(start)
			if _, err := eigenSparseWorst(solved, err); err != nil {
				return 0, err
			}
			return float64(elapsed.Microseconds()) / 1000, nil
		}
		fullMs, err := solveMs(full)
		if err != nil {
			return nil, fmt.Errorf("experiments: eigensparse sparsify full: %w", err)
		}
		thinMs, err := solveMs(thin)
		if err != nil {
			return nil, fmt.Errorf("experiments: eigensparse sparsify thin: %w", err)
		}
		res.Sparsify = &eigenSparseSparsify{
			N:                 g.N(),
			NNZ:               full.NNZ(),
			NNZSparsified:     thin.NNZ(),
			SolveMs:           fullMs,
			SolveSparsifiedMs: thinMs,
		}
	}

	// End-to-end arm: the full spectral baseline (sparse engine, banded
	// features) on a grid deployment.
	{
		rows, cols := spectralGrid[0], spectralGrid[1]
		g := topology.NewGrid(rows, cols)
		feats := make([]metric.Feature, g.N())
		for u := range feats {
			band := (u % cols) * 8 / cols
			feats[u] = metric.Feature{float64(band) * 10}
		}
		start := time.Now()
		out, err := baseline.Spectral(g, baseline.SpectralConfig{
			Delta:    2,
			Metric:   metric.Scalar{},
			Features: feats,
			Seed:     sc.Seed,
			MaxK:     32,
		})
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("experiments: eigensparse spectral arm: %w", err)
		}
		res.Spectral = eigenSparseSpectral{
			N:        g.N(),
			WallMs:   float64(elapsed.Microseconds()) / 1000,
			Clusters: out.Clustering.NumClusters(),
		}
	}

	t.Notes = []string{
		sc.note(),
		fmt.Sprintf("k=%d, tol=%g (the spectral baseline's sparse-path configuration); legacy arm capped at n<=%d",
			eigenSparseK, eigenSparseTol, eigenSparseLegacyMaxN),
		"speedup = unpreconditioned random-start LOBPCG / Chebyshev+coarse-grid LOBPCG, same tol, measured in-run",
		fmt.Sprintf("end-to-end spectral baseline on %d-node grid: %.0f ms, %d clusters",
			res.Spectral.N, res.Spectral.WallMs, res.Spectral.Clusters),
	}
	if res.Sparsify != nil {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"sparsify pre-pass at n=%d: nnz %d -> %d, solve %.0f ms -> %.0f ms",
			res.Sparsify.N, res.Sparsify.NNZ, res.Sparsify.NNZSparsified,
			res.Sparsify.SolveMs, res.Sparsify.SolveSparsifiedMs))
	}

	if dump != nil {
		enc := json.NewEncoder(dump)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return nil, fmt.Errorf("experiments: dump eigensparse bench: %w", err)
		}
	}
	return t, nil
}
