// Package metric defines the feature space used for spatial clustering and
// the distance metrics on it.
//
// Every sensor node summarizes its time series with a model whose
// coefficients form a Feature (paper §2.2). Clustering, index construction
// and query pruning all operate on a Metric over those features; all the
// pruning rules in the paper rely on the triangle inequality, so distances
// used here must be true metrics (positivity, symmetry, triangle
// inequality). WeightedEuclidean is the paper's choice: higher-order AR
// coefficients matter more, so each coordinate carries a weight.
package metric

import (
	"fmt"
	"math"
)

// Feature is a point in the model-coefficient space of a sensor node.
// For an AR(k) model it holds the k regression coefficients.
type Feature []float64

// Clone returns an independent copy of f.
func (f Feature) Clone() Feature {
	c := make(Feature, len(f))
	copy(c, f)
	return c
}

// Equal reports whether f and g have the same length and identical
// coordinates.
func (f Feature) Equal(g Feature) bool {
	if len(f) != len(g) {
		return false
	}
	for i := range f {
		if f[i] != g[i] {
			return false
		}
	}
	return true
}

// String renders the feature as a parenthesized coordinate tuple.
func (f Feature) String() string {
	s := "("
	for i, v := range f {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.4g", v)
	}
	return s + ")"
}

// Metric computes the dissimilarity between two features. Implementations
// must satisfy the metric axioms: d(a,b) >= 0 with equality iff a == b,
// d(a,b) == d(b,a), and d(a,c) <= d(a,b) + d(b,c).
type Metric interface {
	// Distance returns the dissimilarity between a and b. It panics if the
	// features have mismatched dimensions.
	Distance(a, b Feature) float64
}

// Euclidean is the unweighted L2 metric.
type Euclidean struct{}

// Distance implements Metric.
func (Euclidean) Distance(a, b Feature) float64 {
	checkDims(a, b)
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Manhattan is the L1 metric.
type Manhattan struct{}

// Distance implements Metric.
func (Manhattan) Distance(a, b Feature) float64 {
	checkDims(a, b)
	var sum float64
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum
}

// WeightedEuclidean weights each coordinate before taking the L2 norm,
// giving higher-order model coefficients more influence (paper §2.2).
// A weight vector w yields d(a,b) = sqrt(Σ w_i (a_i-b_i)²). All weights
// must be strictly positive for the result to be a metric.
type WeightedEuclidean struct {
	Weights []float64
}

// NewWeightedEuclidean returns a WeightedEuclidean metric over the given
// weights. It panics if any weight is not strictly positive.
func NewWeightedEuclidean(weights ...float64) WeightedEuclidean {
	for i, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic(fmt.Sprintf("metric: weight %d = %v must be positive and finite", i, w))
		}
	}
	ws := make([]float64, len(weights))
	copy(ws, weights)
	return WeightedEuclidean{Weights: ws}
}

// Distance implements Metric.
func (m WeightedEuclidean) Distance(a, b Feature) float64 {
	checkDims(a, b)
	if len(a) != len(m.Weights) {
		panic(fmt.Sprintf("metric: feature dimension %d does not match %d weights", len(a), len(m.Weights)))
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += m.Weights[i] * d * d
	}
	return math.Sqrt(sum)
}

// Scalar treats one-dimensional features as plain numbers: d(a,b) = |a-b|.
// It is the natural metric for the elevation dataset, where the feature is
// the terrain height at the sensor.
type Scalar struct{}

// Distance implements Metric.
func (Scalar) Distance(a, b Feature) float64 {
	checkDims(a, b)
	if len(a) != 1 {
		panic(fmt.Sprintf("metric: Scalar requires 1-dimensional features, got %d", len(a)))
	}
	return math.Abs(a[0] - b[0])
}

// Matrix is a precomputed pairwise distance table, useful in tests that
// specify a metric directly (for example the paper's Fig 3 example). It is
// indexed by integer node ids stored in the single coordinate of each
// feature.
type Matrix struct {
	D [][]float64
}

// Distance implements Metric. Features must be 1-dimensional and hold the
// integer node index.
func (m Matrix) Distance(a, b Feature) float64 {
	i, j := int(a[0]), int(b[0])
	return m.D[i][j]
}

func checkDims(a, b Feature) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metric: dimension mismatch %d vs %d", len(a), len(b)))
	}
}

// VerifyMetric exercises the metric axioms over the given sample features
// and returns an error describing the first violation found, or nil. eps
// absorbs floating-point slack in the triangle inequality. It is used by
// property tests and by callers wiring in custom metrics.
func VerifyMetric(m Metric, samples []Feature, eps float64) error {
	n := len(samples)
	for i := 0; i < n; i++ {
		if d := m.Distance(samples[i], samples[i]); d != 0 {
			return fmt.Errorf("identity violated: d(x%d,x%d) = %v, want 0", i, i, d)
		}
		for j := i + 1; j < n; j++ {
			dij := m.Distance(samples[i], samples[j])
			dji := m.Distance(samples[j], samples[i])
			if dij < 0 {
				return fmt.Errorf("positivity violated: d(x%d,x%d) = %v", i, j, dij)
			}
			if math.Abs(dij-dji) > eps {
				return fmt.Errorf("symmetry violated: d(x%d,x%d)=%v, d(x%d,x%d)=%v", i, j, dij, j, i, dji)
			}
			for k := 0; k < n; k++ {
				dik := m.Distance(samples[i], samples[k])
				dkj := m.Distance(samples[k], samples[j])
				if dij > dik+dkj+eps {
					return fmt.Errorf("triangle inequality violated: d(x%d,x%d)=%v > d(x%d,x%d)+d(x%d,x%d)=%v",
						i, j, dij, i, k, k, j, dik+dkj)
				}
			}
		}
	}
	return nil
}
