package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEuclideanDistance(t *testing.T) {
	var m Euclidean
	got := m.Distance(Feature{0, 0}, Feature{3, 4})
	if got != 5 {
		t.Errorf("Distance((0,0),(3,4)) = %v, want 5", got)
	}
}

func TestManhattanDistance(t *testing.T) {
	var m Manhattan
	got := m.Distance(Feature{1, -2}, Feature{4, 2})
	if got != 7 {
		t.Errorf("Distance = %v, want 7", got)
	}
}

func TestScalarDistance(t *testing.T) {
	var m Scalar
	if got := m.Distance(Feature{175}, Feature{1996}); got != 1821 {
		t.Errorf("Distance = %v, want 1821", got)
	}
}

func TestWeightedEuclideanOrdersModels(t *testing.T) {
	// Paper §2.2: N1 = (0.5, 0.4), N2 = (0.5, 0.3), N3 = (0.4, 0.4).
	// With the higher-order coefficient weighted more, N1 should be closer
	// to N2 than to N3.
	m := NewWeightedEuclidean(1.0, 0.25)
	n1 := Feature{0.5, 0.4}
	n2 := Feature{0.5, 0.3}
	n3 := Feature{0.4, 0.4}
	d12 := m.Distance(n1, n2)
	d13 := m.Distance(n1, n3)
	if d12 >= d13 {
		t.Errorf("d(N1,N2)=%v should be < d(N1,N3)=%v", d12, d13)
	}
}

func TestWeightedEuclideanPanicsOnBadWeight(t *testing.T) {
	for _, w := range [][]float64{{0}, {-1}, {math.NaN()}, {math.Inf(1)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWeightedEuclidean(%v) did not panic", w)
				}
			}()
			NewWeightedEuclidean(w...)
		}()
	}
}

func TestDistancePanicsOnDimensionMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	Euclidean{}.Distance(Feature{1}, Feature{1, 2})
}

func TestMatrixMetricFig3(t *testing.T) {
	// Distance matrix shaped like the paper's Fig 3b example.
	d := [][]float64{
		{0, 2, 3, 4, 5},
		{2, 0, 2, 3, 4},
		{3, 2, 0, 6, 6},
		{4, 3, 6, 0, 2},
		{5, 4, 6, 2, 0},
	}
	m := Matrix{D: d}
	if got := m.Distance(Feature{2}, Feature{4}); got != 6 {
		t.Errorf("d(c,e) = %v, want 6", got)
	}
	if got := m.Distance(Feature{0}, Feature{1}); got != 2 {
		t.Errorf("d(a,b) = %v, want 2", got)
	}
}

func TestFeatureCloneIsIndependent(t *testing.T) {
	f := Feature{1, 2, 3}
	c := f.Clone()
	c[0] = 99
	if f[0] != 1 {
		t.Error("Clone shares backing storage with original")
	}
	if !f.Equal(Feature{1, 2, 3}) {
		t.Error("original mutated")
	}
}

func TestFeatureEqual(t *testing.T) {
	cases := []struct {
		a, b Feature
		want bool
	}{
		{Feature{1, 2}, Feature{1, 2}, true},
		{Feature{1, 2}, Feature{1, 3}, false},
		{Feature{1}, Feature{1, 2}, false},
		{Feature{}, Feature{}, true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFeatureString(t *testing.T) {
	if got := (Feature{0.5, 0.25}).String(); got != "(0.5, 0.25)" {
		t.Errorf("String() = %q", got)
	}
}

func TestVerifyMetricAcceptsEuclidean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := randomFeatures(rng, 12, 3)
	if err := VerifyMetric(Euclidean{}, samples, 1e-9); err != nil {
		t.Errorf("Euclidean failed metric axioms: %v", err)
	}
}

func TestVerifyMetricRejectsNonMetric(t *testing.T) {
	// A "distance" violating the triangle inequality: squared euclidean.
	bad := funcMetric(func(a, b Feature) float64 {
		d := Euclidean{}.Distance(a, b)
		return d * d
	})
	samples := []Feature{{0}, {1}, {2}}
	if err := VerifyMetric(bad, samples, 1e-9); err == nil {
		t.Error("VerifyMetric accepted squared-euclidean, which violates the triangle inequality")
	}
}

func TestVerifyMetricRejectsAsymmetric(t *testing.T) {
	bad := funcMetric(func(a, b Feature) float64 {
		if a[0] < b[0] {
			return b[0] - a[0]
		}
		return 2 * (a[0] - b[0])
	})
	samples := []Feature{{0}, {1}}
	if err := VerifyMetric(bad, samples, 1e-9); err == nil {
		t.Error("VerifyMetric accepted an asymmetric distance")
	}
}

type funcMetric func(a, b Feature) float64

func (f funcMetric) Distance(a, b Feature) float64 { return f(a, b) }

func randomFeatures(rng *rand.Rand, n, dim int) []Feature {
	fs := make([]Feature, n)
	for i := range fs {
		f := make(Feature, dim)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		fs[i] = f
	}
	return fs
}

// Property: the weighted euclidean distance satisfies the metric axioms on
// arbitrary inputs.
func TestWeightedEuclideanMetricAxiomsProperty(t *testing.T) {
	m := NewWeightedEuclidean(0.5, 0.3, 0.2, 0.1)
	prop := func(ax, ay, az, aw, bx, by, bz, bw, cx, cy, cz, cw float64) bool {
		a := clamp4(ax, ay, az, aw)
		b := clamp4(bx, by, bz, bw)
		c := clamp4(cx, cy, cz, cw)
		dab := m.Distance(a, b)
		dba := m.Distance(b, a)
		dac := m.Distance(a, c)
		dcb := m.Distance(c, b)
		return dab >= 0 && math.Abs(dab-dba) < 1e-9 && dab <= dac+dcb+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: scaling all weights by a positive constant scales distances by
// its square root.
func TestWeightedEuclideanScalingProperty(t *testing.T) {
	prop := func(x1, x2, y1, y2 float64) bool {
		x1, x2, y1, y2 = clampf(x1), clampf(x2), clampf(y1), clampf(y2)
		m1 := NewWeightedEuclidean(1, 1)
		m4 := NewWeightedEuclidean(4, 4)
		a, b := Feature{x1, x2}, Feature{y1, y2}
		return math.Abs(m4.Distance(a, b)-2*m1.Distance(a, b)) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func clampf(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

func clamp4(a, b, c, d float64) Feature {
	return Feature{clampf(a), clampf(b), clampf(c), clampf(d)}
}
