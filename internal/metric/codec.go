package metric

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary feature codec. Features cross process lifetimes inside engine
// snapshots and WAL records (internal/persist), so the encoding is fixed
// little-endian and versionless: a uint32 coordinate count followed by
// the IEEE-754 bits of each coordinate. Round-tripping is exact — the
// bit pattern of every float64 is preserved, which the crash-recovery
// determinism contract depends on.

// AppendBinary appends f's binary encoding to dst and returns the
// extended slice.
func (f Feature) AppendBinary(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f)))
	for _, v := range f {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodeFeature decodes one feature from the front of b, returning the
// feature and the remaining bytes. It never panics: short or oversized
// inputs yield an error.
func DecodeFeature(b []byte) (Feature, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("metric: truncated feature header (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	// Divide rather than multiply: on 32-bit platforms n*8 can overflow
	// negative for a crafted count, slipping past both comparisons and
	// into a giant allocation.
	if n < 0 || n > len(b)/8 {
		return nil, nil, fmt.Errorf("metric: feature claims %d coordinates, only %d bytes follow", n, len(b))
	}
	f := make(Feature, n)
	for i := range f {
		f[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return f, b[n*8:], nil
}
