// Package update implements the paper's slack-parameterized dynamic
// cluster maintenance (§6).
//
// After the initial clustering — computed with the tightened threshold
// δ − 2Δ — each feature update is screened locally against three
// conditions:
//
//	A1: d(F_i, F'_i) ≤ Δ                      (the update moved little)
//	A2: d(F'_i, F_ri) − d(F_i, F_ri) ≤ Δ      (distance to root grew little)
//	A3: d(F'_i, F_ri) ≤ δ − Δ                 (still well inside the cluster)
//
// If any condition holds, no message is sent. Only when all three fail
// does the node fetch the fresh root feature up the cluster tree, and only
// when even that check fails does it detach and re-home. The root applies
// the symmetric screen d(F_ri, F'_ri) ≤ Δ and broadcasts its new feature
// down the tree when the screen fails. The package also provides the
// centralized baseline, where a node must ship its coefficients to the
// base station on every local slack violation because conditions A2/A3
// need the root feature no centralized node stores (§8.5).
package update

import (
	"fmt"
	"sort"

	"elink/internal/cluster"
	"elink/internal/metric"
	"elink/internal/obs"
	"elink/internal/topology"
)

// Message kinds charged by the maintenance protocol.
const (
	KindFetch     = "fetch"     // node asks the root for its fresh feature
	KindRootFeat  = "rootfeat"  // root's reply down the same path
	KindBroadcast = "broadcast" // root pushes a drifted feature to members
	KindProbe     = "probe"     // detached node probes a neighbour cluster
	KindReroot    = "reroot"    // stranded members elect a new root
)

// Config parameterizes the maintenance protocol.
type Config struct {
	// Delta is the target δ of the maintained clustering.
	Delta float64
	// Slack is Δ; the initial clustering must have been computed with
	// threshold Delta - 2*Slack.
	Slack float64
	// Metric measures feature dissimilarity.
	Metric metric.Metric
	// Obs, when non-nil, mirrors the screening Counters and per-kind
	// message charges into the registry live (families
	// maintenance_updates_total, maintenance_screened_total{cond},
	// maintenance_membership_total{event}, maintenance_messages_total{kind}),
	// so scrapes see the slack protocol working between Stats calls.
	Obs *obs.Registry
}

// Counters exposes how often each screening path fired, for the
// experiment tables.
type Counters struct {
	Updates     int // feature updates processed
	ScreenedA1  int // silenced by A1
	ScreenedA2  int // silenced by A2
	ScreenedA3  int // silenced by A3
	RootFetches int // full violations that fetched the root feature
	Detaches    int // nodes that left their cluster
	Rejoins     int // detached nodes adopted by a neighbouring cluster
	Singletons  int // detached nodes that became singleton clusters
	RootDrifts  int // root updates that forced a broadcast
}

// Maintainer tracks cluster membership under a stream of feature updates.
type Maintainer struct {
	g   *topology.Graph
	cfg Config

	feats []metric.Feature // current feature per node

	clusterOf []int
	members   map[int][]topology.NodeID
	rootOf    map[int]topology.NodeID
	nextID    int

	// Per-node view of the cluster tree.
	parent []topology.NodeID
	depth  []int
	// advertised root feature as stored at each node (may lag the root's
	// true feature by up to Δ).
	rootFeatAt []metric.Feature

	stats           cluster.Stats
	counters        Counters
	initialClusters int
	mobs            maintObs
}

// maintObs caches the registry handles the maintainer's hot path hits.
// The zero value is the observability-off state: every counter is nil
// and writes become nil-receiver no-ops, so un-instrumented maintainers
// pay nothing.
type maintObs struct {
	updates    *obs.Counter
	a1, a2, a3 *obs.Counter
	fetches    *obs.Counter
	rootDrifts *obs.Counter
	detaches   *obs.Counter
	rejoins    *obs.Counter
	singletons *obs.Counter
	reg        *obs.Registry
	msgs       map[string]*obs.Counter
}

func newMaintObs(reg *obs.Registry) maintObs {
	if reg == nil {
		return maintObs{}
	}
	reg.Help("maintenance_updates_total", "Feature updates screened by the slack-delta protocol.")
	reg.Help("maintenance_screened_total", "Updates silenced for free, by screening condition.")
	reg.Help("maintenance_root_fetches_total", "Full screen violations that fetched the fresh root feature.")
	reg.Help("maintenance_root_drifts_total", "Root updates that forced a broadcast.")
	reg.Help("maintenance_membership_total", "Cluster membership changes by event.")
	reg.Help("maintenance_messages_total", "Maintenance protocol transmissions by message kind.")
	return maintObs{
		updates:    reg.Counter("maintenance_updates_total"),
		a1:         reg.Counter("maintenance_screened_total", "cond", "a1"),
		a2:         reg.Counter("maintenance_screened_total", "cond", "a2"),
		a3:         reg.Counter("maintenance_screened_total", "cond", "a3"),
		fetches:    reg.Counter("maintenance_root_fetches_total"),
		rootDrifts: reg.Counter("maintenance_root_drifts_total"),
		detaches:   reg.Counter("maintenance_membership_total", "event", "detach"),
		rejoins:    reg.Counter("maintenance_membership_total", "event", "rejoin"),
		singletons: reg.Counter("maintenance_membership_total", "event", "singleton"),
		reg:        reg,
		msgs:       make(map[string]*obs.Counter),
	}
}

// msg mirrors one charge of cost transmissions of the given kind.
func (o *maintObs) msg(kind string, cost int64) {
	if o.reg == nil {
		return
	}
	ctr := o.msgs[kind]
	if ctr == nil {
		ctr = o.reg.Counter("maintenance_messages_total", "kind", kind)
		o.msgs[kind] = ctr
	}
	ctr.Add(cost)
}

// NewMaintainer wraps an initial clustering. feats are the features the
// clustering was computed on; they are cloned, so the caller's slice can
// keep evolving independently.
func NewMaintainer(g *topology.Graph, c *cluster.Clustering, feats []metric.Feature, cfg Config) (*Maintainer, error) {
	if len(feats) != g.N() {
		return nil, fmt.Errorf("update: %d features for %d nodes", len(feats), g.N())
	}
	if cfg.Slack < 0 || 2*cfg.Slack > cfg.Delta {
		return nil, fmt.Errorf("update: slack %v must satisfy 0 <= 2Δ <= δ=%v", cfg.Slack, cfg.Delta)
	}
	m := &Maintainer{
		g:          g,
		cfg:        cfg,
		feats:      make([]metric.Feature, g.N()),
		clusterOf:  make([]int, g.N()),
		members:    make(map[int][]topology.NodeID),
		rootOf:     make(map[int]topology.NodeID),
		parent:     make([]topology.NodeID, g.N()),
		depth:      make([]int, g.N()),
		rootFeatAt: make([]metric.Feature, g.N()),
		stats:      cluster.Stats{Breakdown: make(map[string]int64)},
		mobs:       newMaintObs(cfg.Obs),
	}
	for u := range m.feats {
		m.feats[u] = feats[u].Clone()
	}
	for ci, mem := range c.Members {
		id := m.nextID
		m.nextID++
		m.members[id] = append([]topology.NodeID(nil), mem...)
		m.rootOf[id] = c.Roots[ci]
		for _, u := range mem {
			m.clusterOf[u] = id
		}
		m.rebuildTree(id)
		rf := m.feats[c.Roots[ci]].Clone()
		for _, u := range mem {
			m.rootFeatAt[u] = rf
		}
	}
	m.initialClusters = len(m.members)
	return m, nil
}

// rebuildTree re-hangs the cluster's members on a BFS tree from the root
// (restricted to the cluster's induced subgraph) and refreshes depths.
func (m *Maintainer) rebuildTree(id int) {
	root := m.rootOf[id]
	in := make(map[topology.NodeID]bool, len(m.members[id]))
	for _, u := range m.members[id] {
		in[u] = true
	}
	m.parent[root] = root
	m.depth[root] = 0
	queue := []topology.NodeID{root}
	seen := map[topology.NodeID]bool{root: true}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range m.g.Neighbors(u) {
			if in[v] && !seen[v] {
				seen[v] = true
				m.parent[v] = u
				m.depth[v] = m.depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	// Members unreachable from the root (stranded by earlier detaches)
	// split off as their own clusters.
	var stranded []topology.NodeID
	for _, u := range m.members[id] {
		if !seen[u] {
			stranded = append(stranded, u)
		}
	}
	if len(stranded) == 0 {
		return
	}
	kept := m.members[id][:0]
	for _, u := range m.members[id] {
		if seen[u] {
			kept = append(kept, u)
		}
	}
	m.members[id] = kept
	for _, comp := range m.g.ComponentsOf(stranded) {
		nid := m.nextID
		m.nextID++
		m.members[nid] = comp
		m.rootOf[nid] = comp[0]
		for _, u := range comp {
			m.clusterOf[u] = nid
		}
		m.charge(KindReroot, int64(len(comp)))
		m.rebuildTree(nid)
		rf := m.feats[comp[0]].Clone()
		for _, u := range comp {
			m.rootFeatAt[u] = rf
		}
	}
}

func (m *Maintainer) charge(kind string, cost int64) {
	m.stats.Breakdown[kind] += cost
	m.stats.Messages += cost
	m.mobs.msg(kind, cost)
}

// Stats returns the accumulated communication cost.
func (m *Maintainer) Stats() cluster.Stats { return m.stats }

// CountersSnapshot returns the screening counters.
func (m *Maintainer) CountersSnapshot() Counters { return m.counters }

// NumClusters returns the current number of clusters.
func (m *Maintainer) NumClusters() int { return len(m.members) }

// Clustering materializes the current membership.
func (m *Maintainer) Clustering() *cluster.Clustering {
	rootOf := make([]topology.NodeID, m.g.N())
	for u := range rootOf {
		rootOf[u] = m.rootOf[m.clusterOf[u]]
	}
	return cluster.FromRoots(rootOf)
}

// Feature returns node u's current feature.
func (m *Maintainer) Feature(u topology.NodeID) metric.Feature { return m.feats[u] }

// Update processes one feature update at node u, applying the screening
// conditions and any required re-clustering, and charging messages.
func (m *Maintainer) Update(u topology.NodeID, newFeat metric.Feature) {
	m.counters.Updates++
	m.mobs.updates.Inc()
	old := m.feats[u]
	m.feats[u] = newFeat.Clone()
	id := m.clusterOf[u]

	if m.rootOf[id] == u {
		m.rootUpdate(u, old)
		return
	}

	d := m.cfg.Metric.Distance
	rf := m.rootFeatAt[u]
	switch {
	case d(old, newFeat) <= m.cfg.Slack:
		m.counters.ScreenedA1++
		m.mobs.a1.Inc()
		return
	case d(newFeat, rf)-d(old, rf) <= m.cfg.Slack:
		m.counters.ScreenedA2++
		m.mobs.a2.Inc()
		return
	case d(newFeat, rf) <= m.cfg.Delta-m.cfg.Slack:
		m.counters.ScreenedA3++
		m.mobs.a3.Inc()
		return
	}

	// All three screens failed: fetch the fresh root feature up the tree
	// and back (2 * depth messages).
	m.counters.RootFetches++
	m.mobs.fetches.Inc()
	m.charge(KindFetch, int64(m.depth[u]))
	m.charge(KindRootFeat, int64(m.depth[u]))
	fresh := m.feats[m.rootOf[id]]
	m.rootFeatAt[u] = fresh.Clone()
	if d(newFeat, fresh) <= m.cfg.Delta {
		return
	}
	m.detach(u)
}

// rootUpdate handles a feature update at a cluster root: if the advertised
// feature drifted by more than Δ, push the fresh value to every member.
func (m *Maintainer) rootUpdate(u topology.NodeID, old metric.Feature) {
	id := m.clusterOf[u]
	advertised := m.rootFeatAt[u]
	if m.cfg.Metric.Distance(advertised, m.feats[u]) <= m.cfg.Slack {
		m.counters.ScreenedA1++
		m.mobs.a1.Inc()
		return
	}
	m.counters.RootDrifts++
	m.mobs.rootDrifts.Inc()
	fresh := m.feats[u].Clone()
	mem := append([]topology.NodeID(nil), m.members[id]...)
	m.charge(KindBroadcast, int64(len(mem)-1))
	var leavers []topology.NodeID
	for _, v := range mem {
		m.rootFeatAt[v] = fresh
		if v != u && m.cfg.Metric.Distance(m.feats[v], fresh) > m.cfg.Delta {
			leavers = append(leavers, v)
		}
	}
	for _, v := range leavers {
		if m.clusterOf[v] == id { // may already have been stranded away
			m.detach(v)
		}
	}
}

// detach removes u from its cluster and re-homes it: the first neighbour
// whose cluster root feature is within δ adopts it; otherwise u becomes a
// singleton cluster.
func (m *Maintainer) detach(u topology.NodeID) {
	m.counters.Detaches++
	m.mobs.detaches.Inc()
	oldID := m.clusterOf[u]
	mem := m.members[oldID]
	for i, v := range mem {
		if v == u {
			m.members[oldID] = append(mem[:i], mem[i+1:]...)
			break
		}
	}
	if len(m.members[oldID]) == 0 {
		delete(m.members, oldID)
		delete(m.rootOf, oldID)
	}

	adopted := false
	nbrs := append([]topology.NodeID(nil), m.g.Neighbors(u)...)
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	for _, k := range nbrs {
		kid := m.clusterOf[k]
		if kid == oldID && k != u {
			// Probing back into the cluster just left is pointless only if
			// the root is unchanged; skip it.
			continue
		}
		m.charge(KindProbe, 1)
		if m.cfg.Metric.Distance(m.feats[u], m.rootFeatAt[k]) <= m.cfg.Delta {
			m.clusterOf[u] = kid
			m.members[kid] = append(m.members[kid], u)
			m.parent[u] = k
			m.depth[u] = m.depth[k] + 1
			m.rootFeatAt[u] = m.rootFeatAt[k]
			m.counters.Rejoins++
			m.mobs.rejoins.Inc()
			adopted = true
			break
		}
	}
	if !adopted {
		nid := m.nextID
		m.nextID++
		m.clusterOf[u] = nid
		m.members[nid] = []topology.NodeID{u}
		m.rootOf[nid] = u
		m.parent[u] = u
		m.depth[u] = 0
		m.rootFeatAt[u] = m.feats[u].Clone()
		m.counters.Singletons++
		m.mobs.singletons.Inc()
	}

	// The old cluster may have lost connectivity through u.
	if _, ok := m.members[oldID]; ok {
		m.rebuildTree(oldID)
	}
}

// CentralizedUpdater is the baseline of §8.5: each node keeps only its own
// feature and the slack Δ; every update that moves the feature by more
// than Δ must be shipped to the base station (conditions A2/A3 cannot be
// evaluated without the root feature, which no node stores).
type CentralizedUpdater struct {
	cfg   Config
	hops  []int
	feats []metric.Feature
	coefs int64

	stats    cluster.Stats
	screened int
	shipped  int
}

// NewCentralizedUpdater builds the baseline with the base station at
// `base`. coeffsPerUpdate is how many coefficient messages one shipment
// costs (one message per coefficient, §8.2).
func NewCentralizedUpdater(g *topology.Graph, base topology.NodeID, feats []metric.Feature, cfg Config, coeffsPerUpdate int64) *CentralizedUpdater {
	c := &CentralizedUpdater{
		cfg:   cfg,
		hops:  g.HopDistances(base),
		feats: make([]metric.Feature, len(feats)),
		coefs: coeffsPerUpdate,
		stats: cluster.Stats{Breakdown: make(map[string]int64)},
	}
	for u := range feats {
		c.feats[u] = feats[u].Clone()
	}
	return c
}

// Update processes one feature update at node u.
func (c *CentralizedUpdater) Update(u topology.NodeID, newFeat metric.Feature) {
	if c.cfg.Metric.Distance(c.feats[u], newFeat) <= c.cfg.Slack {
		c.screened++
		return
	}
	c.feats[u] = newFeat.Clone()
	cost := int64(c.hops[u]) * c.coefs
	c.stats.Breakdown["ship"] += cost
	c.stats.Messages += cost
	c.shipped++
}

// Stats returns the accumulated cost.
func (c *CentralizedUpdater) Stats() cluster.Stats { return c.stats }

// Shipped returns how many updates crossed the slack and were shipped.
func (c *CentralizedUpdater) Shipped() int { return c.shipped }

// Fragmentation reports how far the maintained clustering has drifted
// from its initial shape: the ratio of current clusters to initial
// clusters. §6 notes that accumulated violations eventually necessitate
// an expensive global re-clustering; callers watch this ratio and
// re-cluster (a fresh ELink run) when it crosses their threshold.
func (m *Maintainer) Fragmentation() float64 {
	if m.initialClusters == 0 {
		return 1
	}
	return float64(len(m.members)) / float64(m.initialClusters)
}

// NeedsRecluster reports whether fragmentation has exceeded the given
// factor (e.g. 2 = twice as many clusters as the initial clustering).
func (m *Maintainer) NeedsRecluster(factor float64) bool {
	return m.Fragmentation() > factor
}
