package update

import (
	"fmt"
	"sort"

	"elink/internal/cluster"
	"elink/internal/metric"
	"elink/internal/topology"
)

// ClusterState is one maintained cluster in exported form: its internal
// id (ids are engine-lifetime-unique and keep growing across detaches),
// its root and its member list in the maintainer's own order.
type ClusterState struct {
	ID      int
	Root    topology.NodeID
	Members []topology.NodeID
}

// State is the complete serializable state of a Maintainer. Everything
// the slack-Δ protocol consults — features, membership, cluster trees,
// lagged root-feature advertisements, telemetry — is captured, so a
// maintainer rebuilt with FromState screens, detaches and re-homes
// exactly like the original would have. All slices are deep copies.
type State struct {
	Feats      []metric.Feature
	Clusters   []ClusterState // sorted by ID
	NextID     int
	Parent     []topology.NodeID
	Depth      []int
	RootFeatAt []metric.Feature
	Stats      cluster.Stats
	Counters   Counters
	// InitialClusters anchors the fragmentation ratio (§6).
	InitialClusters int
}

// State exports the maintainer's complete state.
func (m *Maintainer) State() State {
	st := State{
		Feats:           make([]metric.Feature, len(m.feats)),
		NextID:          m.nextID,
		Parent:          append([]topology.NodeID(nil), m.parent...),
		Depth:           append([]int(nil), m.depth...),
		RootFeatAt:      make([]metric.Feature, len(m.rootFeatAt)),
		Counters:        m.counters,
		InitialClusters: m.initialClusters,
	}
	for u, f := range m.feats {
		st.Feats[u] = f.Clone()
	}
	for u, f := range m.rootFeatAt {
		st.RootFeatAt[u] = f.Clone()
	}
	ids := make([]int, 0, len(m.members))
	for id := range m.members {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		st.Clusters = append(st.Clusters, ClusterState{
			ID:      id,
			Root:    m.rootOf[id],
			Members: append([]topology.NodeID(nil), m.members[id]...),
		})
	}
	st.Stats = cluster.Stats{Messages: m.stats.Messages, Time: m.stats.Time, Breakdown: make(map[string]int64, len(m.stats.Breakdown))}
	for k, v := range m.stats.Breakdown {
		st.Stats.Breakdown[k] = v
	}
	return st
}

// FromState rebuilds a live maintainer over g from exported state. The
// state is validated structurally (every node in exactly one cluster,
// ids and roots consistent, slice lengths matching the graph) so a
// corrupted snapshot is rejected with an error instead of corrupting the
// maintenance protocol.
func FromState(g *topology.Graph, cfg Config, st State) (*Maintainer, error) {
	n := g.N()
	if len(st.Feats) != n || len(st.Parent) != n || len(st.Depth) != n || len(st.RootFeatAt) != n {
		return nil, fmt.Errorf("update: state sized for %d/%d/%d/%d nodes, graph has %d",
			len(st.Feats), len(st.Parent), len(st.Depth), len(st.RootFeatAt), n)
	}
	if cfg.Slack < 0 || 2*cfg.Slack > cfg.Delta {
		return nil, fmt.Errorf("update: slack %v must satisfy 0 <= 2Δ <= δ=%v", cfg.Slack, cfg.Delta)
	}
	m := &Maintainer{
		g:               g,
		cfg:             cfg,
		feats:           make([]metric.Feature, n),
		clusterOf:       make([]int, n),
		members:         make(map[int][]topology.NodeID, len(st.Clusters)),
		rootOf:          make(map[int]topology.NodeID, len(st.Clusters)),
		nextID:          st.NextID,
		parent:          append([]topology.NodeID(nil), st.Parent...),
		depth:           append([]int(nil), st.Depth...),
		rootFeatAt:      make([]metric.Feature, n),
		stats:           cluster.Stats{Messages: st.Stats.Messages, Time: st.Stats.Time, Breakdown: make(map[string]int64, len(st.Stats.Breakdown))},
		counters:        st.Counters,
		initialClusters: st.InitialClusters,
		mobs:            newMaintObs(cfg.Obs),
	}
	for k, v := range st.Stats.Breakdown {
		m.stats.Breakdown[k] = v
	}
	for u := range st.Feats {
		m.feats[u] = st.Feats[u].Clone()
		m.rootFeatAt[u] = st.RootFeatAt[u].Clone()
	}
	assigned := make([]bool, n)
	for _, cs := range st.Clusters {
		if _, dup := m.members[cs.ID]; dup {
			return nil, fmt.Errorf("update: state repeats cluster id %d", cs.ID)
		}
		if cs.ID >= st.NextID {
			return nil, fmt.Errorf("update: cluster id %d >= next id %d", cs.ID, st.NextID)
		}
		if len(cs.Members) == 0 {
			return nil, fmt.Errorf("update: cluster %d has no members", cs.ID)
		}
		rootSeen := false
		for _, u := range cs.Members {
			if int(u) < 0 || int(u) >= n {
				return nil, fmt.Errorf("update: cluster %d member %d outside [0,%d)", cs.ID, u, n)
			}
			if assigned[u] {
				return nil, fmt.Errorf("update: node %d appears in two clusters", u)
			}
			assigned[u] = true
			m.clusterOf[u] = cs.ID
			if u == cs.Root {
				rootSeen = true
			}
		}
		if !rootSeen {
			return nil, fmt.Errorf("update: cluster %d root %d is not a member", cs.ID, cs.Root)
		}
		m.members[cs.ID] = append([]topology.NodeID(nil), cs.Members...)
		m.rootOf[cs.ID] = cs.Root
	}
	for u, ok := range assigned {
		if !ok {
			return nil, fmt.Errorf("update: node %d belongs to no cluster", u)
		}
		if int(m.parent[u]) < 0 || int(m.parent[u]) >= n {
			return nil, fmt.Errorf("update: node %d parent %d outside [0,%d)", u, m.parent[u], n)
		}
		if m.depth[u] < 0 {
			return nil, fmt.Errorf("update: node %d depth %d must be >= 0", u, m.depth[u])
		}
	}
	return m, nil
}
