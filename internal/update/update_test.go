package update

import (
	"math/rand"
	"testing"

	"elink/internal/cluster"
	"elink/internal/metric"
	"elink/internal/topology"
)

// twoClusterSetup builds a path graph 0-1-2-3-4-5 with features forming
// two tight groups, clustered as {0,1,2} rooted at 0 and {3,4,5} rooted
// at 3.
func twoClusterSetup(t *testing.T, cfg Config) (*topology.Graph, *Maintainer) {
	t.Helper()
	g := topology.NewGrid(1, 6)
	feats := []metric.Feature{{0}, {0.1}, {0.2}, {10}, {10.1}, {10.2}}
	c := cluster.FromRoots([]topology.NodeID{0, 0, 0, 3, 3, 3})
	m, err := NewMaintainer(g, c, feats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g, m
}

func TestScreenA1SilencesSmallUpdates(t *testing.T) {
	_, m := twoClusterSetup(t, Config{Delta: 2, Slack: 0.5, Metric: metric.Scalar{}})
	m.Update(1, metric.Feature{0.3}) // moved 0.2 <= slack
	if got := m.Stats().Messages; got != 0 {
		t.Errorf("A1-screened update cost %d messages, want 0", got)
	}
	if c := m.CountersSnapshot(); c.ScreenedA1 != 1 {
		t.Errorf("counters = %+v, want one A1 screen", c)
	}
}

func TestScreenA3SilencesInsideCluster(t *testing.T) {
	_, m := twoClusterSetup(t, Config{Delta: 2, Slack: 0.1, Metric: metric.Scalar{}})
	// Node 2: 0.2 -> 0.9. A1 fails (0.7 > 0.1); A2 fails (dist to root
	// grew 0.9-0.2=0.7 > 0.1); A3 holds (0.9 <= 2-0.1).
	m.Update(2, metric.Feature{0.9})
	if got := m.Stats().Messages; got != 0 {
		t.Errorf("A3-screened update cost %d messages, want 0", got)
	}
	if c := m.CountersSnapshot(); c.ScreenedA3 != 1 {
		t.Errorf("counters = %+v, want one A3 screen", c)
	}
}

func TestFullViolationFetchesRoot(t *testing.T) {
	_, m := twoClusterSetup(t, Config{Delta: 2, Slack: 0.1, Metric: metric.Scalar{}})
	// Node 2 (depth 2 in the tree 0-1-2) jumps to 1.95: all screens fail
	// (A3: 1.95 > 1.9), but the fresh root feature still admits it.
	m.Update(2, metric.Feature{1.95})
	c := m.CountersSnapshot()
	if c.RootFetches != 1 || c.Detaches != 0 {
		t.Errorf("counters = %+v, want one fetch and no detach", c)
	}
	// 2 hops up + 2 hops back.
	if got := m.Stats().Messages; got != 4 {
		t.Errorf("fetch cost %d messages, want 4", got)
	}
	if m.NumClusters() != 2 {
		t.Errorf("NumClusters = %d, want 2", m.NumClusters())
	}
}

func TestDetachAndRejoinNeighbourCluster(t *testing.T) {
	_, m := twoClusterSetup(t, Config{Delta: 2, Slack: 0.1, Metric: metric.Scalar{}})
	// Node 2 jumps right next to cluster {3,4,5}: it must leave cluster 0
	// and be adopted via its neighbour 3.
	m.Update(2, metric.Feature{9.8})
	c := m.CountersSnapshot()
	if c.Detaches != 1 || c.Rejoins != 1 {
		t.Errorf("counters = %+v, want one detach and one rejoin", c)
	}
	cl := m.Clustering()
	if cl.ClusterOf(2) != cl.ClusterOf(3) {
		t.Error("node 2 should have joined node 3's cluster")
	}
	if m.NumClusters() != 2 {
		t.Errorf("NumClusters = %d, want 2", m.NumClusters())
	}
}

func TestDetachToSingleton(t *testing.T) {
	_, m := twoClusterSetup(t, Config{Delta: 2, Slack: 0.1, Metric: metric.Scalar{}})
	// Node 2 jumps somewhere neither cluster can host.
	m.Update(2, metric.Feature{5})
	c := m.CountersSnapshot()
	if c.Detaches != 1 || c.Singletons != 1 {
		t.Errorf("counters = %+v, want one detach into a singleton", c)
	}
	if m.NumClusters() != 3 {
		t.Errorf("NumClusters = %d, want 3", m.NumClusters())
	}
}

func TestDetachMidChainStrandsTail(t *testing.T) {
	_, m := twoClusterSetup(t, Config{Delta: 2, Slack: 0.1, Metric: metric.Scalar{}})
	// Node 1 is the bridge between 0 and 2. When it leaves, node 2 is
	// stranded from root 0 and must be re-rooted.
	m.Update(1, metric.Feature{5})
	cl := m.Clustering()
	if cl.ClusterOf(2) == cl.ClusterOf(0) {
		t.Error("node 2 cannot remain in node 0's cluster without connectivity")
	}
	// Everything still partitions the graph.
	if err := clValid(cl, m); err != nil {
		t.Error(err)
	}
}

func clValid(cl *cluster.Clustering, m *Maintainer) error {
	seen := 0
	for _, mem := range cl.Members {
		seen += len(mem)
	}
	if seen != len(cl.Assign) {
		return errDup
	}
	return nil
}

var errDup = errTest("cluster membership does not partition the nodes")

type errTest string

func (e errTest) Error() string { return string(e) }

func TestRootDriftBroadcasts(t *testing.T) {
	_, m := twoClusterSetup(t, Config{Delta: 2, Slack: 0.1, Metric: metric.Scalar{}})
	// Root 0 drifts by more than Δ: broadcast to members 1 and 2.
	m.Update(0, metric.Feature{0.5})
	c := m.CountersSnapshot()
	if c.RootDrifts != 1 {
		t.Errorf("counters = %+v, want one root drift", c)
	}
	if got := m.Stats().Breakdown[KindBroadcast]; got != 2 {
		t.Errorf("broadcast cost = %d, want 2", got)
	}
}

func TestRootDriftWithinSlackSilent(t *testing.T) {
	_, m := twoClusterSetup(t, Config{Delta: 2, Slack: 0.5, Metric: metric.Scalar{}})
	m.Update(0, metric.Feature{0.3})
	if m.Stats().Messages != 0 {
		t.Error("root drift within slack should be silent")
	}
}

func TestRootDriftEvictsFarMembers(t *testing.T) {
	_, m := twoClusterSetup(t, Config{Delta: 2, Slack: 0.1, Metric: metric.Scalar{}})
	// Root 0 jumps to 2.5: member at 0.1 and 0.2 are now > δ? No:
	// |2.5-0.1| = 2.4 > 2 -> both 1 and 2 must leave.
	m.Update(0, metric.Feature{2.5})
	cl := m.Clustering()
	if cl.ClusterOf(1) == cl.ClusterOf(0) {
		t.Error("node 1 should have been evicted")
	}
	c := m.CountersSnapshot()
	if c.Detaches < 1 {
		t.Errorf("counters = %+v, want evictions", c)
	}
}

func TestMoreSlackFewerMessages(t *testing.T) {
	// Stream identical random walks through maintainers with increasing
	// slack: message counts must be non-increasing.
	g := topology.NewGrid(4, 4)
	rng := rand.New(rand.NewSource(7))
	feats := make([]metric.Feature, g.N())
	for i := range feats {
		feats[i] = metric.Feature{rng.Float64() * 0.2}
	}
	base := cluster.FromRoots(make([]topology.NodeID, g.N())) // all rooted at 0
	walk := make([][2]float64, 300)
	for i := range walk {
		walk[i] = [2]float64{float64(rng.Intn(g.N())), rng.NormFloat64() * 0.15}
	}
	run := func(slack float64) int64 {
		m, err := NewMaintainer(g, base, feats, Config{Delta: 2, Slack: slack, Metric: metric.Scalar{}})
		if err != nil {
			t.Fatal(err)
		}
		cur := make([]float64, g.N())
		for i := range cur {
			cur[i] = feats[i][0]
		}
		for _, w := range walk {
			u := topology.NodeID(int(w[0]))
			cur[u] += w[1]
			m.Update(u, metric.Feature{cur[u]})
		}
		return m.Stats().Messages
	}
	prev := run(0.05)
	for _, s := range []float64{0.2, 0.5, 0.9} {
		cur := run(s)
		if cur > prev {
			t.Errorf("slack %v cost %d messages, more than smaller slack's %d", s, cur, prev)
		}
		prev = cur
	}
}

func TestCentralizedUpdaterShipsOnViolation(t *testing.T) {
	g := topology.NewGrid(1, 4)
	feats := []metric.Feature{{0}, {0}, {0}, {0}}
	c := NewCentralizedUpdater(g, 0, feats, Config{Delta: 2, Slack: 0.5, Metric: metric.Scalar{}}, 2)
	c.Update(3, metric.Feature{0.2}) // screened
	if c.Stats().Messages != 0 || c.Shipped() != 0 {
		t.Error("within-slack update should not ship")
	}
	c.Update(3, metric.Feature{1.5}) // violates: ship 3 hops x 2 coeffs
	if got := c.Stats().Messages; got != 6 {
		t.Errorf("ship cost = %d, want 6", got)
	}
	if c.Shipped() != 1 {
		t.Errorf("Shipped = %d, want 1", c.Shipped())
	}
}

func TestELinkUpdateBeatsCentralized(t *testing.T) {
	// The headline of Fig 10: the in-network screens silence most updates
	// that the centralized scheme must ship.
	g := topology.NewGrid(5, 5)
	rng := rand.New(rand.NewSource(3))
	feats := make([]metric.Feature, g.N())
	for i := range feats {
		feats[i] = metric.Feature{rng.Float64() * 0.1}
	}
	base := cluster.FromRoots(make([]topology.NodeID, g.N()))
	cfg := Config{Delta: 3, Slack: 0.3, Metric: metric.Scalar{}}
	m, err := NewMaintainer(g, base, feats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCentralizedUpdater(g, 0, feats, cfg, 1)
	cur := make([]float64, g.N())
	for i := range cur {
		cur[i] = feats[i][0]
	}
	for step := 0; step < 600; step++ {
		u := topology.NodeID(rng.Intn(g.N()))
		cur[u] += rng.NormFloat64() * 0.4
		f := metric.Feature{cur[u]}
		m.Update(u, f)
		c.Update(u, f)
	}
	if m.Stats().Messages >= c.Stats().Messages {
		t.Errorf("in-network update cost %d should beat centralized %d",
			m.Stats().Messages, c.Stats().Messages)
	}
}

func TestNewMaintainerValidation(t *testing.T) {
	g := topology.NewGrid(1, 2)
	c := cluster.FromRoots([]topology.NodeID{0, 0})
	feats := []metric.Feature{{0}, {0}}
	if _, err := NewMaintainer(g, c, feats[:1], Config{Delta: 1, Metric: metric.Scalar{}}); err == nil {
		t.Error("accepted short feature slice")
	}
	if _, err := NewMaintainer(g, c, feats, Config{Delta: 1, Slack: 0.6, Metric: metric.Scalar{}}); err == nil {
		t.Error("accepted slack > delta/2")
	}
	if _, err := NewMaintainer(g, c, feats, Config{Delta: 1, Slack: -0.1, Metric: metric.Scalar{}}); err == nil {
		t.Error("accepted negative slack")
	}
}

func TestFragmentationAndRecluster(t *testing.T) {
	_, m := twoClusterSetup(t, Config{Delta: 2, Slack: 0.1, Metric: metric.Scalar{}})
	if m.Fragmentation() != 1 {
		t.Errorf("initial fragmentation = %v, want 1", m.Fragmentation())
	}
	// Knock node 2 into a singleton: 3 clusters from 2.
	m.Update(2, metric.Feature{5})
	if got := m.Fragmentation(); got != 1.5 {
		t.Errorf("fragmentation = %v, want 1.5", got)
	}
	if m.NeedsRecluster(2) {
		t.Error("1.5x should not trip a 2x threshold")
	}
	if !m.NeedsRecluster(1.2) {
		t.Error("1.5x should trip a 1.2x threshold")
	}
}

// maintFeatures collects the maintainer's current view of every feature,
// for running the shared clustering validators against it.
func maintFeatures(m *Maintainer, n int) []metric.Feature {
	feats := make([]metric.Feature, n)
	for u := 0; u < n; u++ {
		feats[u] = m.Feature(topology.NodeID(u))
	}
	return feats
}

// mustStayValid asserts the maintained clustering still satisfies the
// validators: a partition of connected clusters, pairwise compact within
// 2δ (maintenance only bounds member-to-root distance by ~δ).
func mustStayValid(t *testing.T, g *topology.Graph, m *Maintainer, delta float64) {
	t.Helper()
	if err := m.Clustering().Validate(g, maintFeatures(m, g.N()), metric.Scalar{}, 2*delta, 1e-9); err != nil {
		t.Fatalf("maintained clustering invalid: %v", err)
	}
}

// TestSimultaneousAdjacentDriftStaysValid drives drift on the two
// boundary nodes of adjacent clusters in the same epoch — the cluster
// seam is where stale root features are most likely to admit a bad
// member — and checks connectivity and 2δ-compactness afterwards.
func TestSimultaneousAdjacentDriftStaysValid(t *testing.T) {
	g, m := twoClusterSetup(t, Config{Delta: 2, Slack: 0.1, Metric: metric.Scalar{}})
	m.Update(2, metric.Feature{9.9}) // detaches, adopted by cluster {3,4,5}
	m.Update(3, metric.Feature{10.4})
	if m.NumClusters() != 2 {
		t.Errorf("NumClusters = %d, want 2", m.NumClusters())
	}
	cl := m.Clustering()
	if cl.ClusterOf(2) != cl.ClusterOf(3) {
		t.Error("node 2 was not adopted across the seam")
	}
	mustStayValid(t, g, m, 2)
}

// TestDetachThenMergeSameEpochStaysValid detaches a node into a fresh
// singleton and, within the same epoch, has its neighbour drift after it
// and merge into that brand-new cluster via probe adoption. The partition
// must stay connected and 2δ-compact through both transitions.
func TestDetachThenMergeSameEpochStaysValid(t *testing.T) {
	g, m := twoClusterSetup(t, Config{Delta: 2, Slack: 0.1, Metric: metric.Scalar{}})
	m.Update(2, metric.Feature{5}) // no cluster admits 5 => singleton {2}
	if c := m.CountersSnapshot(); c.Singletons != 1 {
		t.Fatalf("counters = %+v, want one singleton", c)
	}
	mustStayValid(t, g, m, 2)
	m.Update(1, metric.Feature{5.05}) // follows node 2, adopted by its new cluster
	c := m.CountersSnapshot()
	if c.Detaches != 2 || c.Rejoins != 1 {
		t.Errorf("counters = %+v, want two detaches and one rejoin", c)
	}
	cl := m.Clustering()
	if cl.ClusterOf(1) != cl.ClusterOf(2) {
		t.Error("node 1 did not merge into the fresh singleton's cluster")
	}
	if cl.ClusterOf(1) == cl.ClusterOf(0) {
		t.Error("node 1 still grouped with its old cluster")
	}
	mustStayValid(t, g, m, 2)
}

// TestClusterShrinksToSingletonStaysValid empties {0,1,2} down to a
// singleton: the mid node's detach strands the tail, and every fragment
// must still be a connected, compact cluster.
func TestClusterShrinksToSingletonStaysValid(t *testing.T) {
	g, m := twoClusterSetup(t, Config{Delta: 2, Slack: 0.1, Metric: metric.Scalar{}})
	m.Update(1, metric.Feature{10.1})
	m.Update(2, metric.Feature{10.2})
	if m.NumClusters() != 4 {
		t.Errorf("NumClusters = %d, want 4 ({0} {1} {2} {3,4,5})", m.NumClusters())
	}
	for _, members := range m.Clustering().Members {
		if len(members) > 3 {
			t.Errorf("cluster %v larger than the surviving {3,4,5}", members)
		}
	}
	mustStayValid(t, g, m, 2)
	if f := m.Fragmentation(); f != 2 {
		t.Errorf("Fragmentation = %v, want 2 (4 clusters from 2)", f)
	}
}
