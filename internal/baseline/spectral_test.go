package baseline

import (
	"math"
	"math/rand"
	"testing"

	"elink/internal/cluster"
	"elink/internal/linalg"
	"elink/internal/metric"
	"elink/internal/topology"
)

func fakeClustering(numClusters int) *cluster.Clustering {
	labels := make([]int, numClusters)
	for i := range labels {
		labels[i] = i
	}
	return cluster.FromAssignment(labels)
}

// TestSpectralSearchExploresAboveEmbeddingCap pins the search-cap bugfix:
// the doubling sweep must explore k all the way to maxK even when the
// embedding dimension is capped far below it. The old code clamped the
// whole search range to the cap, so a configuration whose best k lies
// above it silently returned a worse clustering.
func TestSpectralSearchExploresAboveEmbeddingCap(t *testing.T) {
	const (
		maxK   = 2000
		embCap = 256
	)
	var ks, dims []int
	// Cluster count minimized at k=512 — above the embedding cap, so the
	// pre-fix search (capped at 256) could never find it.
	try := func(k, embDim int) (*cluster.Clustering, error) {
		ks = append(ks, k)
		dims = append(dims, embDim)
		count := k - 512
		if count < 0 {
			count = -count
		}
		return fakeClustering(count + 10), nil
	}
	best, err := spectralSearch(maxK, embCap, try)
	if err != nil {
		t.Fatal(err)
	}
	if best.NumClusters() != 10 {
		t.Errorf("best clustering has %d clusters, want 10 (found at k=512 > cap)", best.NumClusters())
	}
	sawAboveCap := false
	for i, k := range ks {
		if k > embCap {
			sawAboveCap = true
		}
		if k > maxK {
			t.Errorf("search tried k=%d above maxK=%d", k, maxK)
		}
		wantDim := k
		if wantDim > embCap {
			wantDim = embCap
		}
		if dims[i] != wantDim {
			t.Errorf("k=%d used embedding dim %d, want min(k, cap)=%d", k, dims[i], wantDim)
		}
	}
	if !sawAboveCap {
		t.Fatalf("search never explored above the embedding cap: ks=%v", ks)
	}
}

// TestChooseEigenSolver pins the solver decision table: dense up to the
// figure-compat limit, LOBPCG everywhere above it, and subspace iteration
// only as the escape hatch for blocks too wide for LOBPCG's 3(k+8)-vector
// Rayleigh–Ritz basis.
func TestChooseEigenSolver(t *testing.T) {
	cases := []struct {
		name   string
		n, nnz int
		k      int
		want   eigenSolverKind
	}{
		{"tiny dense", 50, 250, 8, eigenSolverDense},
		{"at the dense limit", 700, 3394, 8, eigenSolverDense},
		{"just above dense", 701, 3400, 8, eigenSolverLOBPCG},
		{"mid ladder", 2500, 12300, 8, eigenSolverLOBPCG},
		{"engine scale", 20000, 99400, 16, eigenSolverLOBPCG},
		// k+8 > (n-1)/3: the 3(k+8)-wide basis would not fit, so the
		// legacy blocked subspace iteration takes over.
		{"block too wide", 800, 4000, 300, eigenSolverSubspace},
		{"block fits again", 3000, 15000, 300, eigenSolverLOBPCG},
	}
	for _, tc := range cases {
		if got := chooseEigenSolver(tc.n, tc.nnz, tc.k); got != tc.want {
			t.Errorf("%s: chooseEigenSolver(%d, %d, %d) = %v, want %v",
				tc.name, tc.n, tc.nnz, tc.k, got, tc.want)
		}
	}
	// The limit is a test seam: lowering it moves the dense/LOBPCG
	// boundary with it.
	saved := denseEigenLimit
	denseEigenLimit = 50
	defer func() { denseEigenLimit = saved }()
	if got := chooseEigenSolver(200, 1000, 8); got != eigenSolverLOBPCG {
		t.Errorf("lowered limit: chooseEigenSolver(200, ...) = %v, want LOBPCG", got)
	}
}

// TestEigenCacheSubspaceBranch drives the subspace escape hatch directly:
// the region is unreachable through SpectralConfig (sparseEmbedCap keeps
// k small), so the cache is constructed by hand and its embedding checked
// against the LOBPCG kind on the same Laplacian.
func TestEigenCacheSubspaceBranch(t *testing.T) {
	g := topology.NewGrid(12, 18)
	rng := rand.New(rand.NewSource(5))
	feats := bandedFeatures(g, 3, 10, rng)
	n := g.N()
	aff := linalg.NewSparseSym(n)
	m := metric.Scalar{}
	for u := 0; u < n; u++ {
		aff.Set(u, u, 1)
		for _, v := range g.Neighbors(topology.NodeID(u)) {
			if int(v) <= u {
				continue
			}
			d := m.Distance(feats[u], feats[int(v)])
			aff.Set(u, int(v), math.Exp(-d*d/2))
		}
	}
	csr, err := aff.FinalizeStrict()
	if err != nil {
		t.Fatal(err)
	}
	lap := csr.NormalizedLaplacian()

	const dim = 6
	embed := func(kind eigenSolverKind) *linalg.Matrix {
		e := &eigenCache{kind: kind, lap: lap, maxDim: dim, rng: rand.New(rand.NewSource(3))}
		vecs, err := e.topK(dim)
		if err != nil {
			t.Fatalf("kind %v: %v", kind, err)
		}
		return vecs
	}
	sub := embed(eigenSolverSubspace)
	lob := embed(eigenSolverLOBPCG)
	if sub.Rows != n || sub.Cols != dim {
		t.Fatalf("subspace embedding is %dx%d, want %dx%d", sub.Rows, sub.Cols, n, dim)
	}
	// The two engines may rotate within eigenspaces and flip signs, so
	// compare the subspaces: every subspace-path column must lie in the
	// span of the LOBPCG columns (projection mass ~ 1).
	for c := 0; c < dim; c++ {
		var mass, norm float64
		for r := 0; r < n; r++ {
			norm += sub.At(r, c) * sub.At(r, c)
		}
		for cc := 0; cc < dim; cc++ {
			var d float64
			for r := 0; r < n; r++ {
				d += sub.At(r, c) * lob.At(r, cc)
			}
			mass += d * d
		}
		if mass < 0.98*norm {
			t.Errorf("subspace column %d has only %.3f of its mass in the LOBPCG span", c, mass/norm)
		}
	}
}

// pairwiseAgreement is the Rand index between two assignments: the
// fraction of node pairs on which the clusterings agree (together in
// both, or separated in both).
func pairwiseAgreement(a, b []int) float64 {
	agree, total := 0, 0
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(a); j++ {
			total++
			if (a[i] == a[j]) == (b[i] == b[j]) {
				agree++
			}
		}
	}
	return float64(agree) / float64(total)
}

// TestSpectralSparseMatchesDense is the sparse-vs-dense golden: forcing
// the sparse engine (CSR + LOBPCG) on a network the dense path normally
// handles must reproduce essentially the same clustering — same band
// structure, near-identical pair assignments.
func TestSpectralSparseMatchesDense(t *testing.T) {
	g := topology.NewGrid(10, 20)
	rng := rand.New(rand.NewSource(14))
	feats := bandedFeatures(g, 3, 10, rng)
	cfg := SpectralConfig{Delta: 2, Metric: metric.Scalar{}, Features: feats, Seed: 6, MaxK: 8}

	dense, err := Spectral(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	saved := denseEigenLimit
	denseEigenLimit = 50 // force the sparse engine on this 200-node grid
	defer func() { denseEigenLimit = saved }()
	sparse, err := Spectral(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	checkValid(t, "spectral (dense)", g, dense, feats, 2)
	checkValid(t, "spectral (sparse)", g, sparse, feats, 2)
	dn, sn := dense.Clustering.NumClusters(), sparse.Clustering.NumClusters()
	if dn < 3 || dn > 7 || sn < 3 || sn > 7 {
		t.Errorf("cluster counts dense=%d sparse=%d, want both near the 3 bands", dn, sn)
	}
	if agree := pairwiseAgreement(dense.Clustering.Assign, sparse.Clustering.Assign); agree < 0.9 {
		t.Errorf("sparse and dense clusterings agree on only %.3f of pairs, want >= 0.9", agree)
	}
}

// TestSpectralSparsifyKnob covers the config plumbing of the
// sparsification pre-pass: explicit disable and explicit target both
// yield valid clusterings on the sparse path.
func TestSpectralSparsifyKnob(t *testing.T) {
	g := topology.NewGrid(8, 16)
	rng := rand.New(rand.NewSource(23))
	feats := bandedFeatures(g, 3, 10, rng)
	saved := denseEigenLimit
	denseEigenLimit = 50
	defer func() { denseEigenLimit = saved }()
	for _, target := range []float64{-1, 6} {
		cfg := SpectralConfig{
			Delta: 2, Metric: metric.Scalar{}, Features: feats, Seed: 9,
			MaxK: 8, SparsifyTargetDegree: target,
		}
		res, err := Spectral(g, cfg)
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		checkValid(t, "spectral (sparsify knob)", g, res, feats, 2)
	}
}
