package baseline

import (
	"math/rand"
	"testing"

	"elink/internal/cluster"
	"elink/internal/metric"
	"elink/internal/topology"
)

func fakeClustering(numClusters int) *cluster.Clustering {
	labels := make([]int, numClusters)
	for i := range labels {
		labels[i] = i
	}
	return cluster.FromAssignment(labels)
}

// TestSpectralSearchExploresAboveEmbeddingCap pins the search-cap bugfix:
// the doubling sweep must explore k all the way to maxK even when the
// embedding dimension is capped far below it. The old code clamped the
// whole search range to the cap, so a configuration whose best k lies
// above it silently returned a worse clustering.
func TestSpectralSearchExploresAboveEmbeddingCap(t *testing.T) {
	const (
		maxK   = 2000
		embCap = 256
	)
	var ks, dims []int
	// Cluster count minimized at k=512 — above the embedding cap, so the
	// pre-fix search (capped at 256) could never find it.
	try := func(k, embDim int) (*cluster.Clustering, error) {
		ks = append(ks, k)
		dims = append(dims, embDim)
		count := k - 512
		if count < 0 {
			count = -count
		}
		return fakeClustering(count + 10), nil
	}
	best, err := spectralSearch(maxK, embCap, try)
	if err != nil {
		t.Fatal(err)
	}
	if best.NumClusters() != 10 {
		t.Errorf("best clustering has %d clusters, want 10 (found at k=512 > cap)", best.NumClusters())
	}
	sawAboveCap := false
	for i, k := range ks {
		if k > embCap {
			sawAboveCap = true
		}
		if k > maxK {
			t.Errorf("search tried k=%d above maxK=%d", k, maxK)
		}
		wantDim := k
		if wantDim > embCap {
			wantDim = embCap
		}
		if dims[i] != wantDim {
			t.Errorf("k=%d used embedding dim %d, want min(k, cap)=%d", k, dims[i], wantDim)
		}
	}
	if !sawAboveCap {
		t.Fatalf("search never explored above the embedding cap: ks=%v", ks)
	}
}

// pairwiseAgreement is the Rand index between two assignments: the
// fraction of node pairs on which the clusterings agree (together in
// both, or separated in both).
func pairwiseAgreement(a, b []int) float64 {
	agree, total := 0, 0
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(a); j++ {
			total++
			if (a[i] == a[j]) == (b[i] == b[j]) {
				agree++
			}
		}
	}
	return float64(agree) / float64(total)
}

// TestSpectralSparseMatchesDense is the sparse-vs-dense golden: forcing
// the sparse engine (CSR + LOBPCG) on a network the dense path normally
// handles must reproduce essentially the same clustering — same band
// structure, near-identical pair assignments.
func TestSpectralSparseMatchesDense(t *testing.T) {
	g := topology.NewGrid(10, 20)
	rng := rand.New(rand.NewSource(14))
	feats := bandedFeatures(g, 3, 10, rng)
	cfg := SpectralConfig{Delta: 2, Metric: metric.Scalar{}, Features: feats, Seed: 6, MaxK: 8}

	dense, err := Spectral(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	saved := denseEigenLimit
	denseEigenLimit = 50 // force the sparse engine on this 200-node grid
	defer func() { denseEigenLimit = saved }()
	sparse, err := Spectral(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	checkValid(t, "spectral (dense)", g, dense, feats, 2)
	checkValid(t, "spectral (sparse)", g, sparse, feats, 2)
	dn, sn := dense.Clustering.NumClusters(), sparse.Clustering.NumClusters()
	if dn < 3 || dn > 7 || sn < 3 || sn > 7 {
		t.Errorf("cluster counts dense=%d sparse=%d, want both near the 3 bands", dn, sn)
	}
	if agree := pairwiseAgreement(dense.Clustering.Assign, sparse.Clustering.Assign); agree < 0.9 {
		t.Errorf("sparse and dense clusterings agree on only %.3f of pairs, want >= 0.9", agree)
	}
}

// TestSpectralSparsifyKnob covers the config plumbing of the
// sparsification pre-pass: explicit disable and explicit target both
// yield valid clusterings on the sparse path.
func TestSpectralSparsifyKnob(t *testing.T) {
	g := topology.NewGrid(8, 16)
	rng := rand.New(rand.NewSource(23))
	feats := bandedFeatures(g, 3, 10, rng)
	saved := denseEigenLimit
	denseEigenLimit = 50
	defer func() { denseEigenLimit = saved }()
	for _, target := range []float64{-1, 6} {
		cfg := SpectralConfig{
			Delta: 2, Metric: metric.Scalar{}, Features: feats, Seed: 9,
			MaxK: 8, SparsifyTargetDegree: target,
		}
		res, err := Spectral(g, cfg)
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		checkValid(t, "spectral (sparsify knob)", g, res, feats, 2)
	}
}
