package baseline

import (
	"math/rand"
	"testing"

	"elink/internal/cluster"
	"elink/internal/metric"
	"elink/internal/topology"
)

func bandedFeatures(g *topology.Graph, bands int, jump float64, rng *rand.Rand) []metric.Feature {
	min, max := g.BoundingBox()
	span := max.X - min.X
	if span == 0 {
		span = 1
	}
	feats := make([]metric.Feature, g.N())
	for u := range feats {
		b := int((g.Pos[u].X - min.X) / span * float64(bands))
		if b >= bands {
			b = bands - 1
		}
		feats[u] = metric.Feature{float64(b)*jump + rng.Float64()*0.1}
	}
	return feats
}

func uniformFeatures(n int, v float64) []metric.Feature {
	fs := make([]metric.Feature, n)
	for i := range fs {
		fs[i] = metric.Feature{v}
	}
	return fs
}

func checkValid(t *testing.T, name string, g *topology.Graph, res *cluster.Result, feats []metric.Feature, delta float64) {
	t.Helper()
	if err := res.Clustering.Validate(g, feats, metric.Scalar{}, delta, 1e-9); err != nil {
		t.Fatalf("%s produced an invalid clustering: %v", name, err)
	}
}

func TestSpanningForestUniformOneCluster(t *testing.T) {
	g := topology.NewGrid(5, 5)
	feats := uniformFeatures(g.N(), 1)
	res, err := SpanningForest(g, ForestConfig{Delta: 1, Metric: metric.Scalar{}, Features: feats})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, "forest", g, res, feats, 1)
	if res.Clustering.NumClusters() != 1 {
		t.Errorf("NumClusters = %d, want 1 (identical features give one spanning tree)", res.Clustering.NumClusters())
	}
	// Phase-1 feature exchange costs exactly 2E messages.
	if got := res.Stats.Breakdown[ForestKindFeature]; got != int64(2*g.Edges()) {
		t.Errorf("feature messages = %d, want %d", got, 2*g.Edges())
	}
}

func TestSpanningForestSplitsOnJumps(t *testing.T) {
	g := topology.NewGrid(4, 12)
	rng := rand.New(rand.NewSource(1))
	feats := bandedFeatures(g, 3, 10, rng)
	res, err := SpanningForest(g, ForestConfig{Delta: 2, Metric: metric.Scalar{}, Features: feats})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, "forest", g, res, feats, 2)
	if n := res.Clustering.NumClusters(); n < 3 {
		t.Errorf("NumClusters = %d, want at least the 3 bands", n)
	}
}

func TestSpanningForestLinearMessages(t *testing.T) {
	perNode := func(side int) float64 {
		g := topology.NewGrid(side, side)
		rng := rand.New(rand.NewSource(5))
		feats := bandedFeatures(g, 3, 10, rng)
		res, err := SpanningForest(g, ForestConfig{Delta: 2, Metric: metric.Scalar{}, Features: feats})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Stats.Messages) / float64(g.N())
	}
	if small, large := perNode(8), perNode(16); large > 2*small {
		t.Errorf("forest messages/node grew %v -> %v; want O(N) total", small, large)
	}
}

func TestSpanningForestValidOnRandomTopologies(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := topology.RandomGeometricForDegree(70, 4, rng)
		feats := bandedFeatures(g, 4, 5, rng)
		res, err := SpanningForest(g, ForestConfig{Delta: 2, Metric: metric.Scalar{}, Features: feats, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkValid(t, "forest", g, res, feats, 2)
	}
}

func TestHierarchicalUniformOneCluster(t *testing.T) {
	g := topology.NewGrid(5, 5)
	feats := uniformFeatures(g.N(), 2)
	res, err := Hierarchical(g, HierConfig{Delta: 1, Metric: metric.Scalar{}, Features: feats})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, "hierarchical", g, res, feats, 1)
	if res.Clustering.NumClusters() != 1 {
		t.Errorf("NumClusters = %d, want 1", res.Clustering.NumClusters())
	}
}

func TestHierarchicalRespectsDelta(t *testing.T) {
	g := topology.NewGrid(4, 12)
	rng := rand.New(rand.NewSource(2))
	feats := bandedFeatures(g, 3, 10, rng)
	res, err := Hierarchical(g, HierConfig{Delta: 2, Metric: metric.Scalar{}, Features: feats})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, "hierarchical", g, res, feats, 2)
	if n := res.Clustering.NumClusters(); n < 3 || n > 12 {
		t.Errorf("NumClusters = %d, want a handful for 3 bands", n)
	}
}

func TestHierarchicalBeatsForestQuality(t *testing.T) {
	// The paper: hierarchical produces fewer clusters than spanning
	// forest thanks to its fitness function. Check over several seeds in
	// aggregate.
	var hTotal, fTotal int
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed + 50))
		g := topology.RandomGeometricForDegree(80, 4, rng)
		feats := bandedFeatures(g, 3, 6, rng)
		h, err := Hierarchical(g, HierConfig{Delta: 2.5, Metric: metric.Scalar{}, Features: feats})
		if err != nil {
			t.Fatal(err)
		}
		f, err := SpanningForest(g, ForestConfig{Delta: 2.5, Metric: metric.Scalar{}, Features: feats, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		checkValid(t, "hierarchical", g, h, feats, 2.5)
		checkValid(t, "forest", g, f, feats, 2.5)
		hTotal += h.Clustering.NumClusters()
		fTotal += f.Clustering.NumClusters()
	}
	if hTotal > fTotal {
		t.Errorf("hierarchical total clusters %d should not exceed forest %d", hTotal, fTotal)
	}
}

func TestHierarchicalCostsMoreThanForest(t *testing.T) {
	g := topology.NewGrid(10, 10)
	rng := rand.New(rand.NewSource(3))
	feats := bandedFeatures(g, 2, 4, rng)
	h, err := Hierarchical(g, HierConfig{Delta: 3, Metric: metric.Scalar{}, Features: feats})
	if err != nil {
		t.Fatal(err)
	}
	f, err := SpanningForest(g, ForestConfig{Delta: 3, Metric: metric.Scalar{}, Features: feats})
	if err != nil {
		t.Fatal(err)
	}
	if h.Stats.Messages <= f.Stats.Messages {
		t.Errorf("hierarchical (%d msgs) should cost more than forest (%d msgs)", h.Stats.Messages, f.Stats.Messages)
	}
}

func TestSpectralUniformOneCluster(t *testing.T) {
	g := topology.NewGrid(4, 4)
	feats := uniformFeatures(g.N(), 7)
	res, err := Spectral(g, SpectralConfig{Delta: 1, Metric: metric.Scalar{}, Features: feats, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, "spectral", g, res, feats, 1)
	if res.Clustering.NumClusters() != 1 {
		t.Errorf("NumClusters = %d, want 1", res.Clustering.NumClusters())
	}
}

func TestSpectralFindsBands(t *testing.T) {
	g := topology.NewGrid(4, 12)
	rng := rand.New(rand.NewSource(4))
	feats := bandedFeatures(g, 3, 10, rng)
	res, err := Spectral(g, SpectralConfig{Delta: 2, Metric: metric.Scalar{}, Features: feats, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, "spectral", g, res, feats, 2)
	if n := res.Clustering.NumClusters(); n < 3 || n > 7 {
		t.Errorf("NumClusters = %d, want close to the 3 bands", n)
	}
}

func TestSpectralNearOptimalOnBands(t *testing.T) {
	// Centralized spectral should be at least as good as the greedy
	// forest on a clean banded field.
	g := topology.NewGrid(6, 12)
	rng := rand.New(rand.NewSource(8))
	feats := bandedFeatures(g, 4, 10, rng)
	s, err := Spectral(g, SpectralConfig{Delta: 2, Metric: metric.Scalar{}, Features: feats, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f, err := SpanningForest(g, ForestConfig{Delta: 2, Metric: metric.Scalar{}, Features: feats})
	if err != nil {
		t.Fatal(err)
	}
	if s.Clustering.NumClusters() > f.Clustering.NumClusters() {
		t.Errorf("spectral %d clusters vs forest %d: centralized should win",
			s.Clustering.NumClusters(), f.Clustering.NumClusters())
	}
}

func TestSpectralSingletonFallback(t *testing.T) {
	// All-distinct features with a tiny delta force k up to N.
	g := topology.NewGrid(3, 3)
	feats := make([]metric.Feature, g.N())
	for i := range feats {
		feats[i] = metric.Feature{float64(i * 10)}
	}
	res, err := Spectral(g, SpectralConfig{Delta: 0.5, Metric: metric.Scalar{}, Features: feats, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, "spectral", g, res, feats, 0.5)
	if res.Clustering.NumClusters() != g.N() {
		t.Errorf("NumClusters = %d, want %d singletons", res.Clustering.NumClusters(), g.N())
	}
}

func TestCentralizedCost(t *testing.T) {
	g := topology.NewGrid(1, 4) // path 0-1-2-3; base at 0
	c := NewCentralizedCost(g, 0)
	if c.Base() != 0 {
		t.Error("Base mismatch")
	}
	// Hops: 0,1,2,3 -> sum 6.
	raw := c.ShipAll(1)
	if raw.Messages != 6 {
		t.Errorf("ShipAll(1) = %d, want 6", raw.Messages)
	}
	if c.ShipAll(3).Messages != 18 {
		t.Error("ShipAll should scale with value count")
	}
	models := c.ShipModels([]topology.NodeID{2, 3}, 2)
	if models.Messages != (2+3)*2 {
		t.Errorf("ShipModels = %d, want 10", models.Messages)
	}
	if c.Hops(3) != 3 {
		t.Errorf("Hops(3) = %d", c.Hops(3))
	}
}

func TestFeatureCountValidation(t *testing.T) {
	g := topology.NewGrid(2, 2)
	short := uniformFeatures(3, 0)
	if _, err := SpanningForest(g, ForestConfig{Delta: 1, Metric: metric.Scalar{}, Features: short}); err == nil {
		t.Error("forest accepted wrong feature count")
	}
	if _, err := Hierarchical(g, HierConfig{Delta: 1, Metric: metric.Scalar{}, Features: short}); err == nil {
		t.Error("hierarchical accepted wrong feature count")
	}
	if _, err := Spectral(g, SpectralConfig{Delta: 1, Metric: metric.Scalar{}, Features: short}); err == nil {
		t.Error("spectral accepted wrong feature count")
	}
}

func TestForestDeterministic(t *testing.T) {
	g := topology.NewGrid(6, 6)
	rng := rand.New(rand.NewSource(17))
	feats := bandedFeatures(g, 3, 5, rng)
	run := func() *cluster.Result {
		res, err := SpanningForest(g, ForestConfig{Delta: 2, Metric: metric.Scalar{}, Features: feats})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Clustering.NumClusters() != b.Clustering.NumClusters() || a.Stats.Messages != b.Stats.Messages {
		t.Error("spanning forest runs are not deterministic")
	}
}
