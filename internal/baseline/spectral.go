// Package baseline implements the clustering algorithms the paper
// evaluates ELink against (§8.3): the centralized spectral algorithm, the
// distributed spanning-forest algorithm, the distributed hierarchical
// algorithm, and the centralized communication cost models used by the
// update and scalability experiments.
package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"elink/internal/cluster"
	"elink/internal/detrand"
	"elink/internal/linalg"
	"elink/internal/metric"
	"elink/internal/par"
	"elink/internal/topology"
)

// SpectralConfig parameterizes the centralized spectral clustering
// baseline (Ng–Jordan–Weiss [22] over the communication-graph affinity).
type SpectralConfig struct {
	// Delta is the δ-compactness target the search loop must satisfy.
	Delta float64
	// Metric measures feature dissimilarity.
	Metric metric.Metric
	// Features holds one feature per node.
	Features []metric.Feature
	// Sigma is the Gaussian affinity bandwidth; defaults to Delta/2.
	// (The paper's affinity table uses raw distances on edges; we use the
	// Gaussian kernel the cited NJW algorithm requires — see DESIGN.md.)
	Sigma float64
	// Seed drives k-means and Lanczos initialization.
	Seed int64
	// MaxK caps the cluster search (defaults to N).
	MaxK int
}

// Spectral runs the centralized algorithm: nodes ship features to the
// base station (cost accounted separately by the CentralizedCost model),
// the base station spectrally embeds the affinity graph, k-means
// partitions the embedding, and each partition is repaired into
// δ-compact clusters by greedy δ/2-ball covering — so every k yields a
// valid δ-clustering. The search over k ("repeated with different values
// of k and the smallest k is chosen", §8.3) doubles k and then refines
// locally, keeping the k whose repaired clustering has the fewest
// clusters. The repair step makes the search robust where raw k-means
// labels would need to satisfy the δ-condition exactly — on fractal data
// a single misassigned node would otherwise push k all the way to N.
func Spectral(g *topology.Graph, cfg SpectralConfig) (*cluster.Result, error) {
	n := g.N()
	if len(cfg.Features) != n {
		return nil, fmt.Errorf("baseline: %d features for %d nodes", len(cfg.Features), n)
	}
	if cfg.Sigma == 0 {
		cfg.Sigma = cfg.Delta / 2
	}
	if cfg.Sigma == 0 {
		cfg.Sigma = 1
	}
	if cfg.MaxK == 0 || cfg.MaxK > n {
		cfg.MaxK = n
	}
	rng := detrand.New(cfg.Seed)

	// Normalized affinity L = D^-1/2 A D^-1/2 with Gaussian edge affinity.
	aff := linalg.NewSparseSym(n)
	for u := 0; u < n; u++ {
		aff.Set(u, u, 1)
		for _, v := range g.Neighbors(topology.NodeID(u)) {
			if int(v) <= u {
				continue
			}
			d := cfg.Metric.Distance(cfg.Features[u], cfg.Features[v])
			aff.Set(u, int(v), math.Exp(-d*d/(2*cfg.Sigma*cfg.Sigma)))
		}
	}
	deg := aff.RowSums()
	lap := linalg.NewSparseSym(n)
	for i := 0; i < n; i++ {
		for kidx, j := range aff.Cols[i] {
			if int(j) < i {
				continue
			}
			v := aff.Vals[i][kidx] / math.Sqrt(deg[i]*deg[int(j)])
			lap.Set(i, int(j), v)
		}
	}

	// The eigenvectors do not depend on k, so compute them once: a full
	// dense decomposition for small networks, or a generous sparse top-K
	// (grown on demand) for large ones. Each k in the search then only
	// costs a k-means over the first k columns plus the repair pass.
	solver := newEigenCache(lap, rng)

	// kmeansCap bounds the embedding dimension: beyond it, the repair
	// pass does the splitting more cheaply than k-means would.
	kmeansCap := cfg.MaxK
	if kmeansCap > 256 {
		kmeansCap = 256
	}

	try := func(k int) (*cluster.Clustering, error) {
		c, err := spectralPartition(g, solver, k, rng)
		if err != nil {
			return nil, err
		}
		return repairDelta(c, cfg.Features, cfg.Metric, cfg.Delta), nil
	}

	var best *cluster.Clustering
	tried := map[int]bool{}
	attempt := func(k int) error {
		if k < 1 || k > kmeansCap || tried[k] {
			return nil
		}
		tried[k] = true
		c, err := try(k)
		if err != nil {
			return err
		}
		if best == nil || c.NumClusters() < best.NumClusters() {
			best = c
		}
		return nil
	}
	// Doubling sweep, then a local refinement around the best k.
	bestK := 1
	bestCount := n + 1
	for k := 1; k <= kmeansCap; k *= 2 {
		c, err := try(k)
		if err != nil {
			return nil, err
		}
		tried[k] = true
		if c.NumClusters() < bestCount {
			bestCount, bestK, best = c.NumClusters(), k, c
		}
	}
	for _, k := range []int{bestK - bestK/4, bestK + bestK/4, bestK - bestK/2 + bestK/8, bestK + bestK/2} {
		if err := attempt(k); err != nil {
			return nil, err
		}
	}
	return &cluster.Result{
		Clustering: best.SplitDisconnected(g),
		Stats:      cluster.Stats{}, // communication is charged by CentralizedCost
	}, nil
}

// repairDelta splits every cluster that violates the δ-condition into
// δ-compact pieces by greedy δ/2-ball covering: repeatedly seed a new
// sub-cluster at the lowest-id unassigned member and absorb every
// unassigned member within δ/2 of the seed (pairwise ≤ δ by the triangle
// inequality). Clusters that already satisfy the condition pass through
// untouched.
func repairDelta(c *cluster.Clustering, feats []metric.Feature, m metric.Metric, delta float64) *cluster.Clustering {
	labels := make([]int, len(c.Assign))
	next := 0
	for _, members := range c.Members {
		if clusterSatisfiesDelta(members, feats, m, delta) {
			for _, u := range members {
				labels[u] = next
			}
			next++
			continue
		}
		assigned := make(map[topology.NodeID]bool, len(members))
		for _, seedCandidate := range members {
			if assigned[seedCandidate] {
				continue
			}
			seed := feats[seedCandidate]
			for _, u := range members {
				if !assigned[u] && m.Distance(seed, feats[u]) <= delta/2 {
					assigned[u] = true
					labels[u] = next
				}
			}
			next++
		}
	}
	return cluster.FromAssignment(labels)
}

func clusterSatisfiesDelta(members []topology.NodeID, feats []metric.Feature, m metric.Metric, delta float64) bool {
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if m.Distance(feats[members[i]], feats[members[j]]) > delta+1e-9 {
				return false
			}
		}
	}
	return true
}

// eigenCache computes the spectral embedding's eigenvectors lazily and
// reuses them across the whole k search.
type eigenCache struct {
	lap  *linalg.SparseSym
	rng  *rand.Rand
	vecs *linalg.Matrix // top-`have` eigenvectors as columns
	have int
	full bool // vecs holds the complete decomposition
}

// denseEigenLimit is the size up to which one full Jacobi decomposition
// is cheaper than repeated sparse solves.
const denseEigenLimit = 700

func newEigenCache(lap *linalg.SparseSym, rng *rand.Rand) *eigenCache {
	return &eigenCache{lap: lap, rng: rng}
}

// topK returns the top-k eigenvectors, computing or extending the cache
// as needed.
func (e *eigenCache) topK(k int) (*linalg.Matrix, error) {
	n := e.lap.N
	if k > n {
		k = n
	}
	if e.vecs == nil || (e.have < k && !e.full) {
		if n <= denseEigenLimit {
			_, vecs, err := linalg.EigenSym(e.lap.Dense())
			if err != nil {
				return nil, err
			}
			e.vecs, e.have, e.full = vecs, n, true
		} else {
			// Grow in generous steps so a binary search triggers at most
			// a couple of sparse solves.
			want := k + 16
			if e.have > 0 && want < 2*e.have {
				want = 2 * e.have
			}
			if want > n {
				want = n
			}
			_, vecs, err := e.lap.EigenTopK(want, e.rng)
			if err != nil {
				return nil, err
			}
			e.vecs, e.have, e.full = vecs, vecs.Cols, vecs.Cols == n
		}
	}
	out := linalg.NewMatrix(n, k)
	for c := 0; c < k; c++ {
		for r := 0; r < n; r++ {
			out.Set(r, c, e.vecs.At(r, c))
		}
	}
	return out, nil
}

func spectralPartition(g *topology.Graph, solver *eigenCache, k int, rng *rand.Rand) (*cluster.Clustering, error) {
	n := g.N()
	if k >= n {
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i
		}
		return cluster.FromAssignment(labels), nil
	}
	if k == 1 {
		return cluster.FromAssignment(make([]int, n)), nil
	}
	vecs, err := solver.topK(k)
	if err != nil {
		return nil, err
	}
	// Row-normalize the embedding (NJW step 4); rows are independent, so
	// the normalization fans out over the shared execution layer.
	emb := linalg.NewMatrix(n, vecs.Cols)
	par.For(n, func(i int) {
		var norm float64
		for c := 0; c < vecs.Cols; c++ {
			v := vecs.At(i, c)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			norm = 1
		}
		for c := 0; c < vecs.Cols; c++ {
			emb.Set(i, c, vecs.At(i, c)/norm)
		}
	})
	labels := linalg.KMeans(emb, k, rng, 30)
	return cluster.FromAssignment(labels), nil
}
