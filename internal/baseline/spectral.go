// Package baseline implements the clustering algorithms the paper
// evaluates ELink against (§8.3): the centralized spectral algorithm, the
// distributed spanning-forest algorithm, the distributed hierarchical
// algorithm, and the centralized communication cost models used by the
// update and scalability experiments.
package baseline

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"elink/internal/cluster"
	"elink/internal/detrand"
	"elink/internal/linalg"
	"elink/internal/metric"
	"elink/internal/par"
	"elink/internal/topology"
)

// SpectralConfig parameterizes the centralized spectral clustering
// baseline (Ng–Jordan–Weiss [22] over the communication-graph affinity).
type SpectralConfig struct {
	// Delta is the δ-compactness target the search loop must satisfy.
	Delta float64
	// Metric measures feature dissimilarity.
	Metric metric.Metric
	// Features holds one feature per node.
	Features []metric.Feature
	// Sigma is the Gaussian affinity bandwidth; defaults to Delta/2.
	// (The paper's affinity table uses raw distances on edges; we use the
	// Gaussian kernel the cited NJW algorithm requires — see DESIGN.md.)
	Sigma float64
	// Seed drives k-means and sparse-eigensolver initialization.
	Seed int64
	// MaxK caps the cluster search (defaults to N). The search explores
	// the whole range even past the embedding-dimension cap: above it,
	// k-means still partitions into k clusters over the capped embedding
	// and the δ-repair pass does the fine splitting.
	MaxK int
	// SparsifyTargetDegree tunes the spectral-sparsification pre-pass of
	// the sparse eigensolver path (networks above denseEigenLimit
	// nodes): when the affinity graph's average degree exceeds the
	// target, edges are importance-sampled by effective-resistance proxy
	// down to roughly this average degree before the decomposition.
	// 0 applies the default (32); negative disables the pre-pass. The
	// dense path never sparsifies.
	SparsifyTargetDegree float64
}

// defaultSparsifyDegree is the sparsification target when the caller
// leaves SparsifyTargetDegree at zero. Sensor-network affinity graphs
// (grids, geometric radii) sit far below it, so the pre-pass only
// engages on genuinely dense affinities.
const defaultSparsifyDegree = 32

// Spectral runs the centralized algorithm: nodes ship features to the
// base station (cost accounted separately by the CentralizedCost model),
// the base station spectrally embeds the affinity graph, k-means
// partitions the embedding, and each partition is repaired into
// δ-compact clusters by greedy δ/2-ball covering — so every k yields a
// valid δ-clustering. The search over k ("repeated with different values
// of k and the smallest k is chosen", §8.3) doubles k and then refines
// locally, keeping the k whose repaired clustering has the fewest
// clusters. The repair step makes the search robust where raw k-means
// labels would need to satisfy the δ-condition exactly — on fractal data
// a single misassigned node would otherwise push k all the way to N.
func Spectral(g *topology.Graph, cfg SpectralConfig) (*cluster.Result, error) {
	n := g.N()
	if len(cfg.Features) != n {
		return nil, fmt.Errorf("baseline: %d features for %d nodes", len(cfg.Features), n)
	}
	if cfg.Sigma == 0 {
		cfg.Sigma = cfg.Delta / 2
	}
	if cfg.Sigma == 0 {
		cfg.Sigma = 1
	}
	if cfg.MaxK == 0 || cfg.MaxK > n {
		cfg.MaxK = n
	}
	rng := detrand.New(cfg.Seed)

	// Normalized affinity L = D^-1/2 A D^-1/2 with Gaussian edge affinity.
	aff := linalg.NewSparseSym(n)
	for u := 0; u < n; u++ {
		aff.Set(u, u, 1)
		for _, v := range g.Neighbors(topology.NodeID(u)) {
			if int(v) <= u {
				continue
			}
			d := cfg.Metric.Distance(cfg.Features[u], cfg.Features[v])
			aff.Set(u, int(v), math.Exp(-d*d/(2*cfg.Sigma*cfg.Sigma)))
		}
	}
	deg := aff.RowSums()
	lap := linalg.NewSparseSym(n)
	for i := 0; i < n; i++ {
		for kidx, j := range aff.Cols[i] {
			if int(j) < i {
				continue
			}
			v := aff.Vals[i][kidx] / math.Sqrt(deg[i]*deg[int(j)])
			lap.Set(i, int(j), v)
		}
	}

	// The eigenvectors do not depend on k, so compute them once: a full
	// dense decomposition for small networks, or a generous sparse
	// bottom-K of the normalized Laplacian (grown on demand, LOBPCG over
	// the CSR engine) for large ones. Each k in the search then only
	// costs a k-means over the first k columns plus the repair pass.
	solver, err := newEigenCache(aff, lap, cfg, rng)
	if err != nil {
		return nil, err
	}

	// The embedding dimension is capped (the repair pass does the fine
	// splitting more cheaply than extra eigenvectors would), but the
	// k-search itself runs all the way to cfg.MaxK — the cap no longer
	// silently truncates the search range.
	embCap := kmeansCap
	if solver.sparse() {
		embCap = sparseEmbedCap
	}
	if embCap > cfg.MaxK {
		embCap = cfg.MaxK
	}

	try := func(k, embDim int) (*cluster.Clustering, error) {
		c, err := spectralPartition(g, solver, k, embDim, rng)
		if err != nil {
			return nil, err
		}
		return repairDelta(c, cfg.Features, cfg.Metric, cfg.Delta), nil
	}
	best, err := spectralSearch(cfg.MaxK, embCap, try)
	if err != nil {
		return nil, err
	}
	return &cluster.Result{
		Clustering: best.SplitDisconnected(g),
		Stats:      cluster.Stats{}, // communication is charged by CentralizedCost
	}, nil
}

// kmeansCap bounds the embedding dimension of the dense eigensolver
// path; sparseEmbedCap bounds it on the sparse path, where every extra
// eigenvector costs LOBPCG block width and iterations (the bottom of a
// sensor-network Laplacian spectrum has tiny gaps, so wide solves are
// the dominant cost at 10k+ nodes). Beyond the cap the δ-repair pass
// does the splitting more cheaply than k-means over a wider embedding
// would.
const (
	kmeansCap      = 256
	sparseEmbedCap = 16
)

// spectralSearch runs the k search: a doubling sweep over [1, maxK],
// then a local refinement around the best k, keeping the clustering with
// the fewest clusters. try is called with the embedding dimension
// min(k, embCap) — the fix for the old behaviour where the whole search
// range (not just the embedding width) was clamped to the cap, so
// callers with MaxK above it silently got a truncated search.
func spectralSearch(maxK, embCap int, try func(k, embDim int) (*cluster.Clustering, error)) (*cluster.Clustering, error) {
	dim := func(k int) int {
		if k > embCap {
			return embCap
		}
		return k
	}
	var best *cluster.Clustering
	tried := map[int]bool{}
	attempt := func(k int) error {
		if k < 1 || k > maxK || tried[k] {
			return nil
		}
		tried[k] = true
		c, err := try(k, dim(k))
		if err != nil {
			return err
		}
		if best == nil || c.NumClusters() < best.NumClusters() {
			best = c
		}
		return nil
	}
	// Doubling sweep, then a local refinement around the best k.
	bestK := 1
	bestCount := math.MaxInt
	for k := 1; k <= maxK; k *= 2 {
		c, err := try(k, dim(k))
		if err != nil {
			return nil, err
		}
		tried[k] = true
		if c.NumClusters() < bestCount {
			bestCount, bestK, best = c.NumClusters(), k, c
		}
	}
	for _, k := range []int{bestK - bestK/4, bestK + bestK/4, bestK - bestK/2 + bestK/8, bestK + bestK/2} {
		if err := attempt(k); err != nil {
			return nil, err
		}
	}
	return best, nil
}

// repairDelta splits every cluster that violates the δ-condition into
// δ-compact pieces by greedy δ/2-ball covering: repeatedly seed a new
// sub-cluster at the lowest-id unassigned member and absorb every
// unassigned member within δ/2 of the seed (pairwise ≤ δ by the triangle
// inequality). Clusters that already satisfy the condition pass through
// untouched.
func repairDelta(c *cluster.Clustering, feats []metric.Feature, m metric.Metric, delta float64) *cluster.Clustering {
	labels := make([]int, len(c.Assign))
	next := 0
	for _, members := range c.Members {
		if clusterSatisfiesDelta(members, feats, m, delta) {
			for _, u := range members {
				labels[u] = next
			}
			next++
			continue
		}
		assigned := make(map[topology.NodeID]bool, len(members))
		for _, seedCandidate := range members {
			if assigned[seedCandidate] {
				continue
			}
			seed := feats[seedCandidate]
			for _, u := range members {
				if !assigned[u] && m.Distance(seed, feats[u]) <= delta/2 {
					assigned[u] = true
					labels[u] = next
				}
			}
			next++
		}
	}
	return cluster.FromAssignment(labels)
}

func clusterSatisfiesDelta(members []topology.NodeID, feats []metric.Feature, m metric.Metric, delta float64) bool {
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if m.Distance(feats[members[i]], feats[members[j]]) > delta+1e-9 {
				return false
			}
		}
	}
	return true
}

// eigenSolverKind names one of the cache's decomposition strategies.
type eigenSolverKind int

const (
	// eigenSolverDense runs one full Jacobi decomposition of the
	// normalized affinity.
	eigenSolverDense eigenSolverKind = iota
	// eigenSolverSubspace runs legacy 400-iteration block subspace
	// iteration (EigenTopK) on the shifted operator 2I - L.
	eigenSolverSubspace
	// eigenSolverLOBPCG runs the preconditioned multilevel LOBPCG engine
	// (EigenBottomK with Chebyshev preconditioning and the coarse-grid
	// warm start) on the normalized Laplacian.
	eigenSolverLOBPCG
)

// eigenCache computes the spectral embedding's eigenvectors lazily and
// reuses them across the whole k search. The solver is chosen per
// network by chooseEigenSolver's measured decision table; every
// iterative path works on the CSR normalized Laplacian, optionally
// thinned by the sparsification pre-pass, and its bottom eigenvectors
// are exactly the NJW top eigenvectors.
type eigenCache struct {
	kind     eigenSolverKind
	denseAff *linalg.SparseSym // normalized affinity (dense kind only)
	lap      *linalg.CSR       // normalized Laplacian (iterative kinds)
	maxDim   int               // iterative kinds: the one solve's width
	rng      *rand.Rand
	vecs     *linalg.Matrix // top eigenvectors as columns
}

// denseEigenLimit bounds the dense region of the solver decision. The
// measured crossover is far lower — multilevel LOBPCG beats the dense
// decomposition from a few hundred nodes up (n=500: 25 ms vs 5.4 s on
// the bench host) — but every figure harness golden was pinned with
// dense solves up to this size, so the dense region stays put and the
// decision table only governs the solvers above it. A variable only so
// the sparse-vs-dense equivalence test can force the sparse path at
// test-friendly sizes.
var denseEigenLimit = 700

// chooseEigenSolver picks the decomposition strategy for an n-node
// network whose normalized Laplacian holds nnz stored entries, solving
// for a k-wide embedding. The decision encodes the measured cost table
// (bench host, grid Laplacians, k=8; see DESIGN.md):
//
//	n      nnz     dense      subspace   lobpcg
//	500    2410    5403 ms    83 ms      25 ms
//	700    3394    17027 ms   118 ms     56 ms
//	1200   5860    131199 ms  260 ms     154 ms
//	2500   12300   —          562 ms     250 ms
//	10000  49600   —          2446 ms    1024 ms
//
// Multilevel LOBPCG wins at every feasible size — both iterative costs
// scale with nnz·(k+8) and LOBPCG's measured per-nnz constant is
// 0.3–0.6× the subspace one — so subspace iteration survives only as
// the escape hatch for blocks too wide for LOBPCG's 3(k+8)-vector
// Rayleigh–Ritz basis, where EigenBottomK above denseBottomKLimit
// refuses to densify but blocked subspace iteration still runs.
func chooseEigenSolver(n, nnz, k int) eigenSolverKind {
	if n <= denseEigenLimit {
		return eigenSolverDense
	}
	if k+8 > (n-1)/3 {
		return eigenSolverSubspace
	}
	return eigenSolverLOBPCG
}

// sparseSolveTol is the convergence tolerance the sparse path requests:
// looser than the solver's 1e-6 default because k-means over the
// embedding is insensitive to eigenvector perturbations at this level
// while the bottom of a sensor-network Laplacian spectrum converges
// slowly (tiny gaps), so the tight default costs 2-3x the iterations
// for no clustering difference. sparseResidualBudget is the residual
// the path still accepts from an iteration-starved solve; anything
// worse propagates the solver's ErrNoConvergence.
const (
	sparseSolveTol       = 2e-4
	sparseResidualBudget = 1e-3
)

// newEigenCache picks the decomposition path. aff is the raw affinity
// (self-loops included), lap the normalized affinity; both are built
// duplicate-free by Spectral, which FinalizeStrict verifies on the
// sparse path.
func newEigenCache(aff, lap *linalg.SparseSym, cfg SpectralConfig, rng *rand.Rand) (*eigenCache, error) {
	maxDim := sparseEmbedCap
	if maxDim > cfg.MaxK {
		maxDim = cfg.MaxK
	}
	if maxDim > aff.N {
		maxDim = aff.N
	}
	if kind := chooseEigenSolver(aff.N, aff.StoredEntries(), maxDim); kind == eigenSolverDense {
		return &eigenCache{kind: kind, denseAff: lap, rng: rng}, nil
	}
	csr, err := aff.FinalizeStrict()
	if err != nil {
		return nil, fmt.Errorf("baseline: affinity build: %w", err)
	}
	target := cfg.SparsifyTargetDegree
	if target == 0 {
		target = defaultSparsifyDegree
	}
	if target > 0 {
		csr = linalg.Sparsify(csr, target, rng)
	}
	l := csr.NormalizedLaplacian()
	// Re-decide on the post-sparsification entry count: the pre-pass can
	// only shrink nnz, so the kind can only move along the measured table,
	// never back to dense.
	kind := chooseEigenSolver(aff.N, l.NNZ(), maxDim)
	return &eigenCache{kind: kind, lap: l, maxDim: maxDim, rng: rng}, nil
}

// sparse reports whether the cache runs one of the sparse iterative
// engines.
func (e *eigenCache) sparse() bool { return e.kind != eigenSolverDense }

// topK returns the top-k eigenvectors of the normalized affinity,
// computing the cache on first use. The dense kind decomposes fully;
// the iterative kinds run exactly one solve at maxDim — the widest
// embedding the search will ever request — so the slow-gap bottom
// spectrum is paid for once, not per search step.
func (e *eigenCache) topK(k int) (*linalg.Matrix, error) {
	n := e.n()
	if k > n {
		k = n
	}
	if e.vecs == nil {
		switch e.kind {
		case eigenSolverDense:
			_, vecs, err := linalg.EigenSym(e.denseAff.Dense())
			if err != nil {
				return nil, err
			}
			e.vecs = vecs
		case eigenSolverSubspace:
			// Top of 2I - L is the bottom of L: the legacy path cannot
			// solve for smallest eigenvalues directly, so it iterates on
			// the spectrum-reversing shift (the Laplacian spectrum lies in
			// [0, 2]).
			_, vecs, err := shiftedComplement(e.lap).EigenTopK(e.maxDim, e.rng)
			if err != nil {
				var ce *linalg.ConvergenceError
				if !errors.As(err, &ce) || worstResidual(ce.Residuals) > sparseResidualBudget {
					return nil, fmt.Errorf("baseline: subspace eigensolve (k=%d): %w", e.maxDim, err)
				}
			}
			e.vecs = vecs
		default:
			opt := linalg.BottomKOptions{
				Tol: sparseSolveTol,
				// The normalized Laplacian's [0, 2] spectrum is exactly
				// what the Chebyshev preconditioner is built for; the
				// coarse-grid warm start stays on (the default).
				Precond: linalg.NewChebyshev(e.lap, 0, 0, 0),
			}
			res, err := e.lap.EigenBottomK(e.maxDim, e.rng, opt)
			if err != nil {
				// Accept iteration-starved solves inside the documented
				// residual budget; anything else is a hard failure.
				var ce *linalg.ConvergenceError
				if !errors.As(err, &ce) || worstResidual(ce.Residuals) > sparseResidualBudget {
					return nil, fmt.Errorf("baseline: sparse eigensolve (k=%d): %w", e.maxDim, err)
				}
			}
			e.vecs = res.Vectors
		}
	}
	if k > e.vecs.Cols {
		k = e.vecs.Cols
	}
	out := linalg.NewMatrix(n, k)
	for c := 0; c < k; c++ {
		for r := 0; r < n; r++ {
			out.Set(r, c, e.vecs.At(r, c))
		}
	}
	return out, nil
}

func (e *eigenCache) n() int {
	if e.sparse() {
		return e.lap.N
	}
	return e.denseAff.N
}

// shiftedComplement rebuilds 2I - L as a SparseSym builder for the
// legacy top-k subspace path, emitting each stored upper-triangle entry
// once in row/column order (deterministic by construction).
func shiftedComplement(l *linalg.CSR) *linalg.SparseSym {
	s := linalg.NewSparseSym(l.N)
	for i := 0; i < l.N; i++ {
		diag := false
		for k := l.RowPtr[i]; k < l.RowPtr[i+1]; k++ {
			j := int(l.ColIdx[k])
			if j < i {
				continue
			}
			v := -l.Vals[k]
			if j == i {
				v += 2
				diag = true
			}
			s.Set(i, j, v)
		}
		if !diag {
			s.Set(i, i, 2)
		}
	}
	return s
}

func worstResidual(res []float64) float64 {
	worst := 0.0
	for _, r := range res {
		if r > worst {
			worst = r
		}
	}
	return worst
}

// spectralPartition embeds the nodes into embDim eigenvector
// coordinates and k-means-partitions them into k clusters. embDim is
// min(k, embedding cap): above the cap, k-means still splits into k
// clusters — the capped embedding only bounds the coordinate width.
func spectralPartition(g *topology.Graph, solver *eigenCache, k, embDim int, rng *rand.Rand) (*cluster.Clustering, error) {
	n := g.N()
	if k >= n {
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i
		}
		return cluster.FromAssignment(labels), nil
	}
	if k == 1 {
		return cluster.FromAssignment(make([]int, n)), nil
	}
	vecs, err := solver.topK(embDim)
	if err != nil {
		return nil, err
	}
	// Row-normalize the embedding (NJW step 4); rows are independent, so
	// the normalization fans out over the shared execution layer.
	emb := linalg.NewMatrix(n, vecs.Cols)
	par.For(n, func(i int) {
		var norm float64
		for c := 0; c < vecs.Cols; c++ {
			v := vecs.At(i, c)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			norm = 1
		}
		for c := 0; c < vecs.Cols; c++ {
			emb.Set(i, c, vecs.At(i, c)/norm)
		}
	})
	labels := linalg.KMeans(emb, k, rng, 30)
	return cluster.FromAssignment(labels), nil
}
