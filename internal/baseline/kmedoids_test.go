package baseline

import (
	"math/rand"
	"testing"

	"elink/internal/metric"
	"elink/internal/topology"
)

func TestKMedoidsUniformOneCluster(t *testing.T) {
	g := topology.NewGrid(4, 4)
	feats := uniformFeatures(g.N(), 3)
	res, err := KMedoids(g, KMedoidsConfig{Delta: 1, Metric: metric.Scalar{}, Features: feats, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, "kmedoids", g, res, feats, 1)
	if res.Clustering.NumClusters() != 1 {
		t.Errorf("NumClusters = %d, want 1", res.Clustering.NumClusters())
	}
}

func TestKMedoidsFindsBands(t *testing.T) {
	g := topology.NewGrid(4, 12)
	rng := rand.New(rand.NewSource(2))
	feats := bandedFeatures(g, 3, 10, rng)
	res, err := KMedoids(g, KMedoidsConfig{Delta: 2, Metric: metric.Scalar{}, Features: feats, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, "kmedoids", g, res, feats, 2)
	if n := res.Clustering.NumClusters(); n < 3 || n > 6 {
		t.Errorf("NumClusters = %d, want near the 3 bands", n)
	}
}

func TestKMedoidsCostsMoreThanForest(t *testing.T) {
	// The §9 argument: per-round network-wide medoid broadcasts dwarf the
	// local-message algorithms.
	g := topology.NewGrid(8, 8)
	rng := rand.New(rand.NewSource(4))
	feats := bandedFeatures(g, 3, 8, rng)
	km, err := KMedoids(g, KMedoidsConfig{Delta: 2, Metric: metric.Scalar{}, Features: feats, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fo, err := SpanningForest(g, ForestConfig{Delta: 2, Metric: metric.Scalar{}, Features: feats})
	if err != nil {
		t.Fatal(err)
	}
	if km.Stats.Messages <= fo.Stats.Messages {
		t.Errorf("k-medoids (%d msgs) should cost more than spanning forest (%d)",
			km.Stats.Messages, fo.Stats.Messages)
	}
	if km.Stats.Breakdown["medoid"] == 0 || km.Stats.Breakdown["refresh"] == 0 {
		t.Errorf("breakdown missing kinds: %v", km.Stats.Breakdown)
	}
}

func TestKMedoidsSingletonFallback(t *testing.T) {
	g := topology.NewGrid(3, 3)
	feats := make([]metric.Feature, g.N())
	for i := range feats {
		feats[i] = metric.Feature{float64(i * 100)}
	}
	res, err := KMedoids(g, KMedoidsConfig{Delta: 0.5, Metric: metric.Scalar{}, Features: feats, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, "kmedoids", g, res, feats, 0.5)
	if res.Clustering.NumClusters() != g.N() {
		t.Errorf("NumClusters = %d, want %d singletons", res.Clustering.NumClusters(), g.N())
	}
}

func TestKMedoidsRejectsBadFeatures(t *testing.T) {
	g := topology.NewGrid(2, 2)
	if _, err := KMedoids(g, KMedoidsConfig{Delta: 1, Metric: metric.Scalar{}, Features: uniformFeatures(3, 0)}); err == nil {
		t.Error("accepted wrong feature count")
	}
}

func TestSeedMedoidsFarthestFirst(t *testing.T) {
	feats := []metric.Feature{{0}, {1}, {10}, {11}, {20}}
	rng := rand.New(rand.NewSource(1))
	got := seedMedoids(feats, metric.Scalar{}, 3, rng)
	if len(got) != 3 {
		t.Fatalf("got %d medoids", len(got))
	}
	// Farthest-first from any start must cover the three groups {0,1},
	// {10,11}, {20}.
	groups := map[int]bool{}
	for _, m := range got {
		groups[int(feats[m][0])/10] = true
	}
	if len(groups) != 3 {
		t.Errorf("medoids %v do not cover the three groups", got)
	}
}
