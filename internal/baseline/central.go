package baseline

import (
	"elink/internal/cluster"
	"elink/internal/topology"
)

// CentralizedCost models the communication the two centralized schemes of
// §8.3 pay: every update is shipped over the multi-hop path to the base
// station. It is the cost side of the Spectral baseline (the clustering
// itself happens for free at the base station).
type CentralizedCost struct {
	g    *topology.Graph
	base topology.NodeID
	hops []int
}

// NewCentralizedCost creates the cost model with the base station at the
// given node (the paper places it at the network edge; experiments use
// the corner node 0).
func NewCentralizedCost(g *topology.Graph, base topology.NodeID) *CentralizedCost {
	return &CentralizedCost{g: g, base: base, hops: g.HopDistances(base)}
}

// Base returns the base-station node.
func (c *CentralizedCost) Base() topology.NodeID { return c.base }

// Hops returns the shortest-hop distance from node u to the base station.
func (c *CentralizedCost) Hops(u topology.NodeID) int64 { return int64(c.hops[u]) }

// ShipAll charges one full raw-data round: every node sends `values`
// measurements to the base station ("centralized raw" in Fig 12).
func (c *CentralizedCost) ShipAll(values int64) cluster.Stats {
	var total int64
	for u := 0; u < c.g.N(); u++ {
		total += int64(c.hops[u]) * values
	}
	return cluster.Stats{
		Messages:  total,
		Breakdown: map[string]int64{"raw": total},
	}
}

// ShipModels charges model-coefficient shipping for the given nodes
// (those whose coefficients changed by more than the slack threshold;
// "centralized model" in Fig 12). coeffs is the number of coefficients
// per update; the paper's message unit carries one coefficient.
func (c *CentralizedCost) ShipModels(changed []topology.NodeID, coeffs int64) cluster.Stats {
	var total int64
	for _, u := range changed {
		total += int64(c.hops[u]) * coeffs
	}
	return cluster.Stats{
		Messages:  total,
		Breakdown: map[string]int64{"model": total},
	}
}
