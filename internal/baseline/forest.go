package baseline

import (
	"fmt"
	"math"
	"sort"

	"elink/internal/cluster"
	"elink/internal/metric"
	"elink/internal/sim"
	"elink/internal/topology"
)

// Message kinds of the spanning-forest protocol, exported for cost
// decomposition in the experiments.
const (
	ForestKindFeature = "feature"
	ForestKindAttach  = "attach"
	ForestKindDecline = "decline"
	ForestKindReport  = "report"
	ForestKindDetach  = "detach"
	ForestKindRoot    = "croot"
)

// ForestConfig parameterizes the spanning-forest baseline (§8.3).
type ForestConfig struct {
	Delta    float64
	Metric   metric.Metric
	Features []metric.Feature
	Delay    sim.DelayModel
	Seed     int64
}

// SpanningForest runs the two-phase distributed baseline: phase 1
// decomposes the network into a spanning forest (each node parents the
// smaller-id neighbour with the closest feature), phase 2 sweeps heights
// from the leaves up, detaching the highest subtree whenever the path-sum
// bound would exceed δ. Detached subtrees become new clusters. Both
// phases are O(N) in time and messages.
func SpanningForest(g *topology.Graph, cfg ForestConfig) (*cluster.Result, error) {
	if len(cfg.Features) != g.N() {
		return nil, fmt.Errorf("baseline: %d features for %d nodes", len(cfg.Features), g.N())
	}
	net := sim.NewNetwork(g, cfg.Delay, cfg.Seed)
	nodes := make([]*forestNode, g.N())
	sh := &forestShared{cfg: cfg}
	for u := range nodes {
		nodes[u] = &forestNode{sh: sh, id: topology.NodeID(u), parent: -1, clusterRoot: -1}
		net.SetProtocol(topology.NodeID(u), nodes[u])
	}
	end := net.Run()

	rootOf := make([]topology.NodeID, g.N())
	for u, nd := range nodes {
		if nd.clusterRoot < 0 {
			return nil, fmt.Errorf("baseline: forest node %d finished without a cluster root", u)
		}
		rootOf[u] = nd.clusterRoot
	}
	c := cluster.FromRoots(rootOf).SplitDisconnected(g)
	return &cluster.Result{
		Clustering: c,
		Stats: cluster.Stats{
			Messages:  net.TotalMessages(),
			Breakdown: net.MessageBreakdown(),
			Time:      end,
		},
	}, nil
}

type forestShared struct {
	cfg ForestConfig
}

type forestReport struct {
	Height  float64
	Feature metric.Feature
}

type forestRootMsg struct {
	Root topology.NodeID
}

// forestNode is the per-node state machine of the two-phase algorithm.
type forestNode struct {
	sh *forestShared
	id topology.NodeID

	// Phase 1.
	feats       map[topology.NodeID]metric.Feature
	parent      topology.NodeID
	decisions   int // attach/decline replies received
	attachCount int // children acquired in phase 1 (reports expected)
	children    map[topology.NodeID]bool

	// Phase 2.
	reports       int
	height        float64
	highestChild  topology.NodeID
	reported      bool
	detachedRoot  bool // true when instructed to detach
	clusterRoot   topology.NodeID
	rootAnnounced bool
}

func (n *forestNode) cfg() ForestConfig { return n.sh.cfg }

func (n *forestNode) Init(ctx sim.Context) {
	n.feats = make(map[topology.NodeID]metric.Feature)
	n.children = make(map[topology.NodeID]bool)
	n.highestChild = -1
	if len(ctx.Neighbors()) == 0 {
		// Isolated node: a singleton cluster.
		n.becomeRoot(ctx)
		return
	}
	for _, nb := range ctx.Neighbors() {
		ctx.Send(nb, ForestKindFeature, n.cfg().Features[n.id])
	}
}

func (n *forestNode) OnTimer(sim.Context, string) {}

func (n *forestNode) OnMessage(ctx sim.Context, msg sim.Message) {
	switch msg.Kind {
	case ForestKindFeature:
		n.feats[msg.From] = msg.Payload.(metric.Feature)
		if len(n.feats) == len(ctx.Neighbors()) {
			n.chooseParent(ctx)
		}
	case ForestKindAttach:
		n.children[msg.From] = true
		n.attachCount++
		n.decisions++
		n.maybeReport(ctx)
	case ForestKindDecline:
		n.decisions++
		n.maybeReport(ctx)
	case ForestKindReport:
		n.onReport(ctx, msg.From, msg.Payload.(forestReport))
	case ForestKindDetach:
		// Our subtree is cut loose: we become a new cluster root
		// (the paper's "highest_child as the root").
		n.becomeRoot(ctx)
	case ForestKindRoot:
		r := msg.Payload.(forestRootMsg)
		n.announceRoot(ctx, r.Root)
	}
}

// chooseParent implements phase 1's rule: parent = the smaller-id
// neighbour with the minimum feature distance (partial order by id rules
// out cycles). Every neighbour is told attach/decline so child counts are
// exact and leaves are detected without timeouts.
func (n *forestNode) chooseParent(ctx sim.Context) {
	best := topology.NodeID(-1)
	bestD := math.Inf(1)
	me := n.cfg().Features[n.id]
	for _, nb := range ctx.Neighbors() {
		if nb >= n.id {
			continue
		}
		d := n.cfg().Metric.Distance(me, n.feats[nb])
		if d < bestD || (d == bestD && nb < best) {
			best, bestD = nb, d
		}
	}
	n.parent = best
	for _, nb := range ctx.Neighbors() {
		if nb == best {
			ctx.Send(nb, ForestKindAttach, nil)
		} else {
			ctx.Send(nb, ForestKindDecline, nil)
		}
	}
}

// maybeReport sends this node's height report once phase 1 has settled
// (all attach/decline replies in, so the child count is exact) and every
// child subtree has reported. Leaves report immediately after phase 1.
func (n *forestNode) maybeReport(ctx sim.Context) {
	if n.reported || n.decisions < len(ctx.Neighbors()) || n.reports < n.attachCount {
		return
	}
	n.sendReport(ctx)
}

func (n *forestNode) onReport(ctx sim.Context, child topology.NodeID, rep forestReport) {
	n.reports++
	me := n.cfg().Features[n.id]
	h := rep.Height + n.cfg().Metric.Distance(rep.Feature, me)
	delta := n.cfg().Delta
	if h+n.height > delta {
		// Detach the taller side.
		if h >= n.height {
			ctx.Send(child, ForestKindDetach, nil)
			delete(n.children, child)
		} else {
			ctx.Send(n.highestChild, ForestKindDetach, nil)
			delete(n.children, n.highestChild)
			n.height = h
			n.highestChild = child
		}
	} else if h > n.height {
		n.height = h
		n.highestChild = child
	}
	n.maybeReport(ctx)
}

func (n *forestNode) sendReport(ctx sim.Context) {
	n.reported = true
	if n.parent < 0 {
		n.becomeRoot(ctx)
		return
	}
	ctx.Send(n.parent, ForestKindReport, forestReport{Height: n.height, Feature: n.cfg().Features[n.id]})
}

// becomeRoot marks this node as a cluster root and announces the cluster
// id down the (remaining) tree.
func (n *forestNode) becomeRoot(ctx sim.Context) {
	n.detachedRoot = true
	n.announceRoot(ctx, n.id)
}

func (n *forestNode) announceRoot(ctx sim.Context, root topology.NodeID) {
	if n.rootAnnounced {
		return
	}
	n.rootAnnounced = true
	n.clusterRoot = root
	// Sorted order keeps event sequencing deterministic.
	kids := make([]topology.NodeID, 0, len(n.children))
	for ch := range n.children {
		kids = append(kids, ch)
	}
	sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
	for _, ch := range kids {
		ctx.Send(ch, ForestKindRoot, forestRootMsg{Root: root})
	}
}
