package baseline

import (
	"fmt"
	"math"
	"sort"

	"elink/internal/cluster"
	"elink/internal/metric"
	"elink/internal/topology"
)

// HierConfig parameterizes the distributed hierarchical baseline (§8.3).
type HierConfig struct {
	Delta    float64
	Metric   metric.Metric
	Features []metric.Feature
}

// Hierarchical runs the round-based agglomerative baseline: every node
// starts as a singleton cluster; in each round, neighbouring clusters
// whose merged diameter bound m_i + d(F_ri, F_rj) + m_j stays within δ
// evaluate the merge fitness m_ij, and mutually-best candidate pairs
// merge. Rounds repeat until no merger is possible.
//
// The merge logic is executed centrally here, but the communication each
// round would cost is charged faithfully (that accounting is exactly why
// the paper reports this algorithm scaling poorly, Fig 13):
//
//   - per round, every cluster's members report adjacent foreign clusters
//     up the cluster tree to the root: |C| "report" messages per cluster;
//   - every adjacent root pair negotiates diameter/fitness: 2 routed
//     messages of hop-distance cost between the roots;
//   - every accepted merger broadcasts the new root and diameter to all
//     members of both clusters: |C_i| + |C_j| "merge" messages.
//
// Time and message complexity are O(N²) in the worst case (the paper's
// stated bound).
func Hierarchical(g *topology.Graph, cfg HierConfig) (*cluster.Result, error) {
	n := g.N()
	if len(cfg.Features) != n {
		return nil, fmt.Errorf("baseline: %d features for %d nodes", len(cfg.Features), n)
	}

	// Cluster state: root id per cluster; diameter bound m; member lists.
	root := make([]int, n) // cluster label per node (smallest member id)
	for i := range root {
		root[i] = i
	}
	members := make(map[int][]topology.NodeID, n)
	diam := make(map[int]float64, n)          // bound on root-to-member distance
	croot := make(map[int]topology.NodeID, n) // cluster representative node
	for i := 0; i < n; i++ {
		members[i] = []topology.NodeID{topology.NodeID(i)}
		diam[i] = 0
		croot[i] = topology.NodeID(i)
	}

	stats := cluster.Stats{Breakdown: make(map[string]int64)}
	charge := func(kind string, cost int64) {
		stats.Breakdown[kind] += cost
		stats.Messages += cost
	}
	// Probe charges walk root-to-root hop distances every round; the
	// shared routing tables serve them without a BFS per pair.
	routes := g.Routes()

	for round := 0; ; round++ {
		// Discover adjacent cluster pairs; members report up their trees.
		adj := make(map[[2]int]bool)
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(topology.NodeID(u)) {
				a, b := root[u], root[int(v)]
				if a == b {
					continue
				}
				if a > b {
					a, b = b, a
				}
				adj[[2]int{a, b}] = true
			}
		}
		if len(adj) == 0 {
			break
		}
		for _, mem := range members {
			charge("report", int64(len(mem)))
		}

		// Fitness evaluation between adjacent roots.
		type cand struct {
			other   int
			fitness float64
		}
		best := make(map[int]cand)
		pairs := make([][2]int, 0, len(adj))
		for p := range adj {
			pairs = append(pairs, p)
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i][0] != pairs[j][0] {
				return pairs[i][0] < pairs[j][0]
			}
			return pairs[i][1] < pairs[j][1]
		})
		for _, p := range pairs {
			i, j := p[0], p[1]
			ri, rj := croot[i], croot[j]
			charge("probe", 2*int64(routes.Dist(ri, rj)))
			d := cfg.Metric.Distance(cfg.Features[ri], cfg.Features[rj])
			if diam[i]+d+diam[j] > cfg.Delta {
				continue // rule each other out (§8.3)
			}
			var mij float64
			if diam[i] >= diam[j] {
				mij = math.Max(diam[i], diam[j]+d)
			} else {
				mij = math.Max(diam[j], diam[i]+d)
			}
			if c, ok := best[i]; !ok || mij < c.fitness || (mij == c.fitness && j < c.other) {
				best[i] = cand{other: j, fitness: mij}
			}
			if c, ok := best[j]; !ok || mij < c.fitness || (mij == c.fitness && i < c.other) {
				best[j] = cand{other: i, fitness: mij}
			}
		}

		// Mutually-best pairs merge.
		merged := false
		done := make(map[int]bool)
		labels := make([]int, 0, len(best))
		for l := range best {
			labels = append(labels, l)
		}
		sort.Ints(labels)
		for _, i := range labels {
			ci := best[i]
			j := ci.other
			if done[i] || done[j] {
				continue
			}
			if cj, ok := best[j]; !ok || cj.other != i {
				continue
			}
			// Merge under the label of the smaller id; the surviving
			// representative is the root whose side gives the better
			// radius bound (the fitness formula's case split).
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			var newRoot topology.NodeID
			if diam[i] >= diam[j] {
				newRoot = croot[i]
			} else {
				newRoot = croot[j]
			}
			charge("merge", int64(len(members[lo])+len(members[hi])))
			for _, u := range members[hi] {
				root[u] = lo
			}
			members[lo] = append(members[lo], members[hi]...)
			delete(members, hi)
			diam[lo] = best[i].fitness
			croot[lo] = newRoot
			delete(diam, hi)
			delete(croot, hi)
			done[i], done[j] = true, true
			merged = true
		}
		stats.Time = float64(round + 1)
		if !merged {
			break
		}
	}

	c := cluster.FromAssignment(root)
	for ci, mem := range c.Members {
		c.Roots[ci] = croot[root[mem[0]]]
	}
	return &cluster.Result{Clustering: c.SplitDisconnected(g), Stats: stats}, nil
}
