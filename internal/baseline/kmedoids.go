package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"elink/internal/cluster"
	"elink/internal/detrand"
	"elink/internal/metric"
	"elink/internal/topology"
)

// KMedoidsConfig parameterizes the distributed k-medoids baseline.
type KMedoidsConfig struct {
	Delta    float64
	Metric   metric.Metric
	Features []metric.Feature
	Seed     int64
	// MaxIter bounds the medoid-refinement rounds per k (default 15).
	MaxIter int
	// MaxK caps the cluster search (default N).
	MaxK int
}

// KMedoids implements the distributed k-medoids alternative the paper's
// related-work section dismisses as communication intensive (§9): "in
// every iteration, all the medoids would have to be broadcast throughout
// the network so that every node computes its closest medoid." It exists
// here to quantify that argument against ELink.
//
// Cost model per refinement round, following that description:
//
//   - medoid broadcast: the k medoid features flood the whole network —
//     k·N "medoid" messages (every node retransmits each announcement
//     once, the standard flooding cost);
//   - assignment is local;
//   - medoid refresh: every node ships its feature to its medoid over
//     the shortest hop path — Σ hops "refresh" messages.
//
// The search doubles k (then refines) and keeps the smallest clustering
// whose repaired clusters satisfy the δ-condition, mirroring the spectral
// baseline's loop. Clusters are feature-space Voronoi cells, so they are
// split into connected components at the end like every other algorithm.
func KMedoids(g *topology.Graph, cfg KMedoidsConfig) (*cluster.Result, error) {
	n := g.N()
	if len(cfg.Features) != n {
		return nil, fmt.Errorf("baseline: %d features for %d nodes", len(cfg.Features), n)
	}
	if cfg.MaxIter == 0 {
		cfg.MaxIter = 15
	}
	if cfg.MaxK == 0 || cfg.MaxK > n {
		cfg.MaxK = n
	}
	rng := detrand.New(cfg.Seed)
	// Refresh charging routes every node to its medoid; rooting the
	// shared tables at the k medoids replaces N BFS runs per round with k.
	routes := g.Routes()
	stats := cluster.Stats{Breakdown: make(map[string]int64)}
	charge := func(kind string, cost int64) {
		stats.Breakdown[kind] += cost
		stats.Messages += cost
	}

	run := func(k int) *cluster.Clustering {
		medoids := seedMedoids(cfg.Features, cfg.Metric, k, rng)
		assign := make([]int, n)
		for iter := 0; iter < cfg.MaxIter; iter++ {
			// Broadcast the medoid set to every node.
			charge("medoid", int64(k)*int64(n))
			changed := false
			for u := 0; u < n; u++ {
				best, bestD := 0, math.Inf(1)
				for c, m := range medoids {
					if d := cfg.Metric.Distance(cfg.Features[u], cfg.Features[m]); d < bestD {
						best, bestD = c, d
					}
				}
				if assign[u] != best {
					assign[u] = best
					changed = true
				}
			}
			// Members ship features to their medoid for the refresh.
			for u := 0; u < n; u++ {
				charge("refresh", int64(routes.Dist(topology.NodeID(u), topology.NodeID(medoids[assign[u]]))))
			}
			if !refreshMedoids(cfg.Features, cfg.Metric, assign, medoids) && !changed {
				break
			}
		}
		return cluster.FromAssignment(assign)
	}

	satisfies := func(c *cluster.Clustering) bool {
		for _, members := range c.Members {
			if !clusterSatisfiesDelta(members, cfg.Features, cfg.Metric, cfg.Delta) {
				return false
			}
		}
		return true
	}

	// Doubling search for the smallest satisfying k, then binary refine.
	lo, hi := 0, 1
	var hiC *cluster.Clustering
	for {
		c := run(hi)
		if satisfies(c) {
			hiC = c
			break
		}
		lo = hi
		hi *= 2
		if hi >= cfg.MaxK {
			hi = cfg.MaxK
			c := run(hi)
			if !satisfies(c) {
				// Singletons as the guaranteed-valid fallback.
				labels := make([]int, n)
				for i := range labels {
					labels[i] = i
				}
				hiC = cluster.FromAssignment(labels)
				break
			}
			hiC = c
			break
		}
	}
	best := hiC
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if c := run(mid); satisfies(c) {
			best, hi = c, mid
		} else {
			lo = mid
		}
	}
	return &cluster.Result{Clustering: best.SplitDisconnected(g), Stats: stats}, nil
}

// seedMedoids picks k distinct medoids by farthest-first traversal, the
// standard PAM-style seeding (deterministic given the rng's first pick).
func seedMedoids(feats []metric.Feature, m metric.Metric, k int, rng *rand.Rand) []int {
	n := len(feats)
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := []int{rng.Intn(n)}
	minD := make([]float64, n)
	for i := range minD {
		minD[i] = m.Distance(feats[i], feats[out[0]])
	}
	for len(out) < k {
		far, farD := 0, -1.0
		for i := 0; i < n; i++ {
			if minD[i] > farD {
				far, farD = i, minD[i]
			}
		}
		out = append(out, far)
		for i := 0; i < n; i++ {
			if d := m.Distance(feats[i], feats[far]); d < minD[i] {
				minD[i] = d
			}
		}
	}
	sort.Ints(out)
	return out
}

// refreshMedoids recomputes each cluster's medoid (the member minimizing
// the total distance to its cluster) and reports whether any moved.
func refreshMedoids(feats []metric.Feature, m metric.Metric, assign []int, medoids []int) bool {
	k := len(medoids)
	members := make([][]int, k)
	for u, c := range assign {
		members[c] = append(members[c], u)
	}
	moved := false
	for c := 0; c < k; c++ {
		if len(members[c]) == 0 {
			continue
		}
		best, bestCost := medoids[c], math.Inf(1)
		for _, cand := range members[c] {
			var cost float64
			for _, u := range members[c] {
				cost += m.Distance(feats[cand], feats[u])
			}
			if cost < bestCost {
				best, bestCost = cand, cost
			}
		}
		if best != medoids[c] {
			medoids[c] = best
			moved = true
		}
	}
	return moved
}
