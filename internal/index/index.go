// Package index builds the distributed index structure of §7.1: an
// M-tree-like hierarchy embedded on each cluster tree, plus the backbone
// spanning tree that connects cluster leaders for query routing.
//
// Each cluster member i carries a routing feature F_i^R (its own feature)
// and a covering radius R_i bounding the feature distance from F_i^R to
// anything in i's cluster subtree. Leaves publish (F_i, 0) to their
// parents; every parent aggregates its children bottom-up. The build
// therefore costs one message per cluster-tree edge. The backbone is a
// minimum spanning tree over adjacent cluster leaders weighted by hop
// distance; its construction cost is charged to the clustering algorithm
// that owns it, per §8.2.
package index

import (
	"fmt"
	"math"
	"sort"

	"elink/internal/cluster"
	"elink/internal/metric"
	"elink/internal/topology"
)

// Entry is one node's slot in a cluster's index tree.
type Entry struct {
	ID       topology.NodeID
	Parent   topology.NodeID // tree parent (== ID at the root)
	Children []topology.NodeID
	Radius   float64 // covering radius over the subtree rooted here
	Depth    int     // hops to the cluster root along the tree
}

// ClusterIndex is the M-tree of one cluster.
type ClusterIndex struct {
	Root    topology.NodeID
	Members []topology.NodeID
	Entries map[topology.NodeID]*Entry
}

// BackboneEdge connects two cluster roots on the backbone tree.
type BackboneEdge struct {
	A, B topology.NodeID
	Hops int
}

// Index is the complete distributed structure: one M-tree per cluster and
// the leader backbone.
type Index struct {
	Graph    *topology.Graph
	Metric   metric.Metric
	Features []metric.Feature

	Clusters  []*ClusterIndex
	ClusterOf []int // node -> cluster ordinal

	// Backbone holds the spanning tree over cluster roots; BackboneAdj
	// indexes it by root for traversal.
	Backbone    []BackboneEdge
	BackboneAdj map[topology.NodeID][]BackboneEdge

	// BuildStats charges index aggregation and backbone construction.
	BuildStats cluster.Stats
}

// Build constructs the index over an existing clustering. Every cluster
// must have a recorded root that is a member (true for all clusterings
// produced in this repository).
func Build(g *topology.Graph, c *cluster.Clustering, feats []metric.Feature, m metric.Metric) (*Index, error) {
	if len(feats) != g.N() {
		return nil, fmt.Errorf("index: %d features for %d nodes", len(feats), g.N())
	}
	owned := make([]metric.Feature, len(feats))
	for i, f := range feats {
		owned[i] = f.Clone()
	}
	idx := &Index{
		Graph:       g,
		Metric:      m,
		Features:    owned,
		ClusterOf:   make([]int, g.N()),
		BackboneAdj: make(map[topology.NodeID][]BackboneEdge),
		BuildStats:  cluster.Stats{Breakdown: make(map[string]int64)},
	}
	for ci, members := range c.Members {
		root := c.Roots[ci]
		if root < 0 {
			root = members[0]
		}
		tree, err := buildClusterTree(g, members, root, feats, m)
		if err != nil {
			return nil, fmt.Errorf("index: cluster %d: %w", ci, err)
		}
		idx.Clusters = append(idx.Clusters, tree)
		for _, u := range members {
			idx.ClusterOf[u] = ci
		}
		// One upward report per tree edge.
		idx.charge("index", int64(len(members)-1))
	}
	if err := idx.buildBackbone(c); err != nil {
		return nil, err
	}
	return idx, nil
}

func (idx *Index) charge(kind string, cost int64) {
	idx.BuildStats.Breakdown[kind] += cost
	idx.BuildStats.Messages += cost
}

// buildClusterTree hangs the members on a BFS tree from the root and
// aggregates covering radii bottom-up.
func buildClusterTree(g *topology.Graph, members []topology.NodeID, root topology.NodeID, feats []metric.Feature, m metric.Metric) (*ClusterIndex, error) {
	in := make(map[topology.NodeID]bool, len(members))
	for _, u := range members {
		in[u] = true
	}
	if !in[root] {
		return nil, fmt.Errorf("root %d is not a member", root)
	}
	ci := &ClusterIndex{
		Root:    root,
		Members: append([]topology.NodeID(nil), members...),
		Entries: make(map[topology.NodeID]*Entry, len(members)),
	}
	ci.Entries[root] = &Entry{ID: root, Parent: root}
	order := []topology.NodeID{root}
	for qi := 0; qi < len(order); qi++ {
		u := order[qi]
		for _, v := range g.Neighbors(u) {
			if in[v] && ci.Entries[v] == nil {
				ci.Entries[v] = &Entry{ID: v, Parent: u, Depth: ci.Entries[u].Depth + 1}
				ci.Entries[u].Children = append(ci.Entries[u].Children, v)
				order = append(order, v)
			}
		}
	}
	if len(order) != len(members) {
		return nil, fmt.Errorf("cluster rooted at %d is not connected (%d of %d reachable)", root, len(order), len(members))
	}
	// Bottom-up radius aggregation (reverse BFS order visits children
	// before parents).
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		e := ci.Entries[u]
		for _, ch := range e.Children {
			cd := m.Distance(feats[u], feats[ch]) + ci.Entries[ch].Radius
			if cd > e.Radius {
				e.Radius = cd
			}
		}
	}
	return ci, nil
}

// buildBackbone links adjacent clusters' roots into a spanning tree,
// choosing hop-cheap edges first (Kruskal over the cluster adjacency).
// Clusters in distinct graph components (possible only on disconnected
// deployments) get their own backbone trees.
func (idx *Index) buildBackbone(c *cluster.Clustering) error {
	type cedge struct {
		a, b int // cluster ordinals
		hops int
	}
	seen := make(map[[2]int]bool)
	var edges []cedge
	routes := idx.Graph.Routes() // root-to-root hops from the shared tables
	for u := 0; u < idx.Graph.N(); u++ {
		for _, v := range idx.Graph.Neighbors(topology.NodeID(u)) {
			a, b := idx.ClusterOf[u], idx.ClusterOf[int(v)]
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if seen[[2]int{a, b}] {
				continue
			}
			seen[[2]int{a, b}] = true
			ra, rb := idx.Clusters[a].Root, idx.Clusters[b].Root
			edges = append(edges, cedge{a: a, b: b, hops: routes.Dist(ra, rb)})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].hops != edges[j].hops {
			return edges[i].hops < edges[j].hops
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	parent := make([]int, len(idx.Clusters))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		ra, rb := find(e.a), find(e.b)
		if ra == rb {
			continue
		}
		parent[ra] = rb
		edge := BackboneEdge{A: idx.Clusters[e.a].Root, B: idx.Clusters[e.b].Root, Hops: e.hops}
		idx.Backbone = append(idx.Backbone, edge)
		idx.BackboneAdj[edge.A] = append(idx.BackboneAdj[edge.A], edge)
		idx.BackboneAdj[edge.B] = append(idx.BackboneAdj[edge.B], edge)
		idx.charge("backbone", int64(e.hops))
	}
	return nil
}

// RootEntry returns the index entry of cluster ci's root.
func (idx *Index) RootEntry(ci int) *Entry {
	cl := idx.Clusters[ci]
	return cl.Entries[cl.Root]
}

// Depth returns node u's hop depth in its cluster tree.
func (idx *Index) Depth(u topology.NodeID) int {
	return idx.Clusters[idx.ClusterOf[u]].Entries[u].Depth
}

// Validate checks the covering-radius invariant: every member's feature
// lies within the radius of every ancestor on its cluster tree. It is the
// invariant all query pruning rests on.
func (idx *Index) Validate() error {
	for ci, cl := range idx.Clusters {
		for _, u := range cl.Members {
			// Walk ancestors.
			for a := u; ; {
				e := cl.Entries[a]
				d := idx.Metric.Distance(idx.Features[e.ID], idx.Features[u])
				if d > e.Radius+1e-9 && a != u {
					return fmt.Errorf("index: cluster %d: node %d at distance %v from ancestor %d exceeds radius %v",
						ci, u, d, a, e.Radius)
				}
				if e.Parent == a {
					break
				}
				a = e.Parent
			}
		}
	}
	return nil
}

// MaxDepth returns the deepest entry depth across every cluster tree —
// the worst-case hop count of one M-tree descent, and the index-shape
// gauge the streaming engine publishes per epoch.
func (idx *Index) MaxDepth() int {
	d := 0
	for _, cl := range idx.Clusters {
		for _, e := range cl.Entries {
			if e.Depth > d {
				d = e.Depth
			}
		}
	}
	return d
}

// MaxRadius returns the largest root covering radius; useful to compare
// with δ/2 (the paper's a-priori bound).
func (idx *Index) MaxRadius() float64 {
	r := 0.0
	for ci := range idx.Clusters {
		r = math.Max(r, idx.RootEntry(ci).Radius)
	}
	return r
}
