package index

import (
	"fmt"
	"sort"

	"elink/internal/cluster"
	"elink/internal/metric"
	"elink/internal/topology"
)

// EntryState is one node's M-tree slot in exported form.
type EntryState struct {
	ID       topology.NodeID
	Parent   topology.NodeID
	Children []topology.NodeID
	Radius   float64
	Depth    int
}

// ClusterIndexState is one cluster's M-tree in exported form, entries
// sorted by node id for a deterministic encoding.
type ClusterIndexState struct {
	Root    topology.NodeID
	Members []topology.NodeID
	Entries []EntryState
}

// State is the complete serializable state of an Index. The graph and
// metric are not part of it — they are reconstruction context the caller
// re-supplies to FromState (the streaming engine owns both). BackboneAdj
// is derived from Backbone on restore, in the same edge order Build
// produced it, so traversals replay identically.
type State struct {
	Features   []metric.Feature
	ClusterOf  []int
	Clusters   []ClusterIndexState
	Backbone   []BackboneEdge
	BuildStats cluster.Stats
}

// State exports the index's complete structural state as deep copies.
func (idx *Index) State() State {
	st := State{
		Features:  make([]metric.Feature, len(idx.Features)),
		ClusterOf: append([]int(nil), idx.ClusterOf...),
		Backbone:  append([]BackboneEdge(nil), idx.Backbone...),
	}
	for i, f := range idx.Features {
		st.Features[i] = f.Clone()
	}
	for _, cl := range idx.Clusters {
		cs := ClusterIndexState{
			Root:    cl.Root,
			Members: append([]topology.NodeID(nil), cl.Members...),
			Entries: make([]EntryState, 0, len(cl.Entries)),
		}
		for _, e := range cl.Entries {
			cs.Entries = append(cs.Entries, EntryState{
				ID:       e.ID,
				Parent:   e.Parent,
				Children: append([]topology.NodeID(nil), e.Children...),
				Radius:   e.Radius,
				Depth:    e.Depth,
			})
		}
		sort.Slice(cs.Entries, func(i, j int) bool { return cs.Entries[i].ID < cs.Entries[j].ID })
		st.Clusters = append(st.Clusters, cs)
	}
	st.BuildStats = cluster.Stats{Messages: idx.BuildStats.Messages, Time: idx.BuildStats.Time, Breakdown: make(map[string]int64, len(idx.BuildStats.Breakdown))}
	for k, v := range idx.BuildStats.Breakdown {
		st.BuildStats.Breakdown[k] = v
	}
	return st
}

// FromState rebuilds a live index over g and m from exported state,
// validating structural invariants (ids in range, every member indexed,
// backbone endpoints are roots) so corrupted snapshots are rejected.
func FromState(g *topology.Graph, m metric.Metric, st State) (*Index, error) {
	n := g.N()
	if len(st.Features) != n || len(st.ClusterOf) != n {
		return nil, fmt.Errorf("index: state sized for %d features / %d assignments, graph has %d nodes",
			len(st.Features), len(st.ClusterOf), n)
	}
	idx := &Index{
		Graph:       g,
		Metric:      m,
		Features:    make([]metric.Feature, n),
		ClusterOf:   append([]int(nil), st.ClusterOf...),
		Backbone:    append([]BackboneEdge(nil), st.Backbone...),
		BackboneAdj: make(map[topology.NodeID][]BackboneEdge),
		BuildStats:  cluster.Stats{Messages: st.BuildStats.Messages, Time: st.BuildStats.Time, Breakdown: make(map[string]int64, len(st.BuildStats.Breakdown))},
	}
	for k, v := range st.BuildStats.Breakdown {
		idx.BuildStats.Breakdown[k] = v
	}
	for i, f := range st.Features {
		idx.Features[i] = f.Clone()
	}
	roots := make(map[topology.NodeID]bool, len(st.Clusters))
	for ci, cs := range st.Clusters {
		cl := &ClusterIndex{
			Root:    cs.Root,
			Members: append([]topology.NodeID(nil), cs.Members...),
			Entries: make(map[topology.NodeID]*Entry, len(cs.Entries)),
		}
		if len(cs.Members) == 0 {
			return nil, fmt.Errorf("index: cluster %d has no members", ci)
		}
		for _, es := range cs.Entries {
			if int(es.ID) < 0 || int(es.ID) >= n || int(es.Parent) < 0 || int(es.Parent) >= n {
				return nil, fmt.Errorf("index: cluster %d entry %d/parent %d outside [0,%d)", ci, es.ID, es.Parent, n)
			}
			if _, dup := cl.Entries[es.ID]; dup {
				return nil, fmt.Errorf("index: cluster %d repeats entry %d", ci, es.ID)
			}
			cl.Entries[es.ID] = &Entry{
				ID:       es.ID,
				Parent:   es.Parent,
				Children: append([]topology.NodeID(nil), es.Children...),
				Radius:   es.Radius,
				Depth:    es.Depth,
			}
		}
		for _, u := range cl.Members {
			if int(u) < 0 || int(u) >= n {
				return nil, fmt.Errorf("index: cluster %d member %d outside [0,%d)", ci, u, n)
			}
			if cl.Entries[u] == nil {
				return nil, fmt.Errorf("index: cluster %d member %d has no entry", ci, u)
			}
			if idx.ClusterOf[u] != ci {
				return nil, fmt.Errorf("index: node %d listed in cluster %d but assigned to %d", u, ci, idx.ClusterOf[u])
			}
		}
		if cl.Entries[cl.Root] == nil {
			return nil, fmt.Errorf("index: cluster %d root %d has no entry", ci, cl.Root)
		}
		roots[cl.Root] = true
		idx.Clusters = append(idx.Clusters, cl)
	}
	for u, ci := range idx.ClusterOf {
		if ci < 0 || ci >= len(idx.Clusters) {
			return nil, fmt.Errorf("index: node %d assigned to cluster %d of %d", u, ci, len(idx.Clusters))
		}
	}
	for _, e := range idx.Backbone {
		if !roots[e.A] || !roots[e.B] {
			return nil, fmt.Errorf("index: backbone edge (%d,%d) does not connect cluster roots", e.A, e.B)
		}
		idx.BackboneAdj[e.A] = append(idx.BackboneAdj[e.A], e)
		idx.BackboneAdj[e.B] = append(idx.BackboneAdj[e.B], e)
	}
	return idx, nil
}
