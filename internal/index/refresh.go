package index

import (
	"fmt"

	"elink/internal/metric"
	"elink/internal/topology"
)

// Refresh updates node u's routing feature in place and repairs the
// covering radii along u's root path, keeping every query-pruning
// invariant exact without rebuilding the index. It returns the number of
// messages charged: one per tree edge the repair wave travels (each
// affected node reports its new (feature, radius) to its parent; the
// wave stops early once an ancestor's radius is unchanged, because
// ancestors above it see the same child summary as before).
//
// This is the index side of the §6 maintenance protocol: feature updates
// that stay inside their cluster still move routing features, and stale
// radii would make range/path pruning unsound.
func (idx *Index) Refresh(u topology.NodeID, newFeat metric.Feature) (int64, error) {
	if int(u) < 0 || int(u) >= len(idx.Features) {
		return 0, fmt.Errorf("index: node %d out of range", u)
	}
	cl := idx.Clusters[idx.ClusterOf[u]]
	idx.Features[u] = newFeat.Clone()

	var msgs int64
	cur := u
	for {
		e := cl.Entries[cur]
		old := e.Radius
		e.Radius = 0
		for _, ch := range e.Children {
			if r := idx.Metric.Distance(idx.Features[cur], idx.Features[ch]) + cl.Entries[ch].Radius; r > e.Radius {
				e.Radius = r
			}
		}
		if cur == cl.Root {
			return msgs, nil
		}
		// The parent re-aggregates whenever this node's summary changed:
		// its feature (only for u itself) or its radius.
		if cur != u && e.Radius == old {
			return msgs, nil
		}
		msgs++
		cur = e.Parent
	}
}
