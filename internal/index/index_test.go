package index

import (
	"math/rand"
	"testing"

	"elink/internal/cluster"
	"elink/internal/metric"
	"elink/internal/topology"
)

func lineSetup() (*topology.Graph, *cluster.Clustering, []metric.Feature) {
	g := topology.NewGrid(1, 6)
	feats := []metric.Feature{{0}, {1}, {2}, {10}, {11}, {12}}
	c := cluster.FromRoots([]topology.NodeID{0, 0, 0, 3, 3, 3})
	return g, c, feats
}

func TestBuildStructure(t *testing.T) {
	g, c, feats := lineSetup()
	idx, err := Build(g, c, feats, metric.Scalar{})
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(idx.Clusters))
	}
	cl := idx.Clusters[0]
	if cl.Root != 0 {
		t.Errorf("root = %d, want 0", cl.Root)
	}
	// Chain 0-1-2: entry depths 0,1,2; radii: leaf 2 has 0, node 1 has
	// d(1,2)=1, root has d(0,1)+R(1)=2.
	if d := cl.Entries[2].Depth; d != 2 {
		t.Errorf("depth(2) = %d, want 2", d)
	}
	if r := cl.Entries[2].Radius; r != 0 {
		t.Errorf("leaf radius = %v, want 0", r)
	}
	if r := cl.Entries[1].Radius; r != 1 {
		t.Errorf("radius(1) = %v, want 1", r)
	}
	if r := cl.Entries[0].Radius; r != 2 {
		t.Errorf("root radius = %v, want 2", r)
	}
	if err := idx.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBuildChargesTreeEdgesAndBackbone(t *testing.T) {
	g, c, feats := lineSetup()
	idx, err := Build(g, c, feats, metric.Scalar{})
	if err != nil {
		t.Fatal(err)
	}
	// Two clusters of 3 -> 2+2 index messages; one backbone edge between
	// roots 0 and 3 at hop distance 3.
	if got := idx.BuildStats.Breakdown["index"]; got != 4 {
		t.Errorf("index build cost = %d, want 4", got)
	}
	if got := idx.BuildStats.Breakdown["backbone"]; got != 3 {
		t.Errorf("backbone cost = %d, want 3", got)
	}
	if len(idx.Backbone) != 1 {
		t.Fatalf("backbone edges = %d, want 1", len(idx.Backbone))
	}
}

func TestBackboneSpansAllClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := topology.RandomGeometricForDegree(80, 4, rng)
	labels := make([]int, g.N())
	for i := range labels {
		labels[i] = rng.Intn(6)
	}
	c := cluster.FromAssignment(labels).SplitDisconnected(g)
	feats := make([]metric.Feature, g.N())
	for i := range feats {
		feats[i] = metric.Feature{rng.Float64()}
	}
	idx, err := Build(g, c, feats, metric.Scalar{})
	if err != nil {
		t.Fatal(err)
	}
	// A spanning tree over k clusters of one component has k-1 edges.
	if got, want := len(idx.Backbone), len(idx.Clusters)-1; got != want {
		t.Errorf("backbone edges = %d, want %d", got, want)
	}
	if err := idx.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	g, c, feats := lineSetup()
	if _, err := Build(g, c, feats[:3], metric.Scalar{}); err == nil {
		t.Error("accepted short feature slice")
	}
	// Disconnected cluster must be rejected.
	bad := cluster.FromRoots([]topology.NodeID{0, 3, 0, 3, 3, 3})
	if _, err := Build(g, bad, feats, metric.Scalar{}); err == nil {
		t.Error("accepted a disconnected cluster")
	}
}

func TestRadiusInvariantRandom(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := topology.RandomGeometricForDegree(60, 4, rng)
		labels := make([]int, g.N())
		for i := range labels {
			labels[i] = rng.Intn(5)
		}
		c := cluster.FromAssignment(labels).SplitDisconnected(g)
		feats := make([]metric.Feature, g.N())
		for i := range feats {
			feats[i] = metric.Feature{rng.NormFloat64() * 3, rng.NormFloat64()}
		}
		m := metric.Euclidean{}
		idx, err := Build(g, c, feats, m)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := idx.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestDepthAndMaxRadius(t *testing.T) {
	g, c, feats := lineSetup()
	idx, err := Build(g, c, feats, metric.Scalar{})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Depth(2) != 2 || idx.Depth(0) != 0 {
		t.Error("Depth wrong")
	}
	if idx.MaxRadius() != 2 {
		t.Errorf("MaxRadius = %v, want 2", idx.MaxRadius())
	}
}

func TestSingleClusterNoBackbone(t *testing.T) {
	g := topology.NewGrid(3, 3)
	c := cluster.FromRoots(make([]topology.NodeID, g.N())) // all rooted at 0
	feats := make([]metric.Feature, g.N())
	for i := range feats {
		feats[i] = metric.Feature{1}
	}
	idx, err := Build(g, c, feats, metric.Scalar{})
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Backbone) != 0 {
		t.Errorf("single cluster should have no backbone edges, got %d", len(idx.Backbone))
	}
	if idx.BuildStats.Breakdown["backbone"] != 0 {
		t.Error("no backbone cost expected")
	}
}

func TestAllSingletonClusters(t *testing.T) {
	g := topology.NewGrid(3, 3)
	labels := make([]int, g.N())
	for i := range labels {
		labels[i] = i
	}
	c := cluster.FromAssignment(labels)
	for ci := range c.Roots {
		c.Roots[ci] = c.Members[ci][0]
	}
	feats := make([]metric.Feature, g.N())
	for i := range feats {
		feats[i] = metric.Feature{float64(i)}
	}
	idx, err := Build(g, c, feats, metric.Scalar{})
	if err != nil {
		t.Fatal(err)
	}
	// Every entry is a leaf with radius 0; the backbone spans 9 roots.
	for _, cl := range idx.Clusters {
		if cl.Entries[cl.Root].Radius != 0 {
			t.Errorf("singleton radius = %v", cl.Entries[cl.Root].Radius)
		}
	}
	if len(idx.Backbone) != 8 {
		t.Errorf("backbone edges = %d, want 8", len(idx.Backbone))
	}
	if err := idx.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNegativeRootFallsBackToFirstMember(t *testing.T) {
	g := topology.NewGrid(1, 3)
	c := &cluster.Clustering{
		Assign:  []int{0, 0, 0},
		Members: [][]topology.NodeID{{0, 1, 2}},
		Roots:   []topology.NodeID{-1},
	}
	feats := []metric.Feature{{0}, {1}, {2}}
	idx, err := Build(g, c, feats, metric.Scalar{})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Clusters[0].Root != 0 {
		t.Errorf("root = %d, want fallback to first member", idx.Clusters[0].Root)
	}
}

func TestRefreshRepairsRadii(t *testing.T) {
	g, c, feats := lineSetup()
	idx, err := Build(g, c, feats, metric.Scalar{})
	if err != nil {
		t.Fatal(err)
	}
	// Leaf 2 (chain 0-1-2) jumps from 2 to 7: radii along the path must
	// grow to cover it.
	msgs, err := idx.Refresh(2, metric.Feature{7})
	if err != nil {
		t.Fatal(err)
	}
	if msgs != 2 {
		t.Errorf("refresh cost = %d, want 2 (both path edges affected)", msgs)
	}
	if err := idx.Validate(); err != nil {
		t.Fatal(err)
	}
	cl := idx.Clusters[0]
	if r := cl.Entries[0].Radius; r != 7 {
		t.Errorf("root radius = %v, want 7", r)
	}
	// Moving it back shrinks the radii again.
	if _, err := idx.Refresh(2, metric.Feature{2}); err != nil {
		t.Fatal(err)
	}
	if r := cl.Entries[0].Radius; r != 2 {
		t.Errorf("root radius after shrink = %v, want 2", r)
	}
}

func TestRefreshEarlyExit(t *testing.T) {
	// A 5-chain cluster; refreshing the deep leaf with an update that
	// does not change its parent's radius must stop early.
	g := topology.NewGrid(1, 5)
	c := cluster.FromRoots([]topology.NodeID{0, 0, 0, 0, 0})
	feats := []metric.Feature{{0}, {0}, {0}, {5}, {0}}
	idx, err := Build(g, c, feats, metric.Scalar{})
	if err != nil {
		t.Fatal(err)
	}
	// Node 4's parent is 3, whose radius is d(F3,F4)+R4 = |5-f4| = 5.
	// Moving node 4 from 0 to 10 keeps |5-f4| = 5, so node 3's radius is
	// unchanged and the repair wave must stop there.
	before := idx.Clusters[0].Entries[0].Radius
	msgs, err := idx.Refresh(4, metric.Feature{10})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Validate(); err != nil {
		t.Fatal(err)
	}
	if idx.Clusters[0].Entries[0].Radius != before {
		t.Errorf("root radius changed from %v to %v", before, idx.Clusters[0].Entries[0].Radius)
	}
	// The wave reported 4 -> 3 and stopped when 3's radius was unchanged.
	if msgs > 2 {
		t.Errorf("refresh cost = %d, want early exit", msgs)
	}
}

// Property: after any sequence of refreshes, the index invariant holds
// and range queries remain exact against the updated features.
func TestRefreshKeepsQueriesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := topology.RandomGeometricForDegree(50, 4, rng)
	labels := make([]int, g.N())
	feats := make([]metric.Feature, g.N())
	for u := 0; u < g.N(); u++ {
		labels[u] = rng.Intn(4)
		feats[u] = metric.Feature{rng.Float64() * 10}
	}
	c := cluster.FromAssignment(labels).SplitDisconnected(g)
	idx, err := Build(g, c, feats, metric.Scalar{})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 120; step++ {
		u := topology.NodeID(rng.Intn(g.N()))
		f := metric.Feature{rng.Float64() * 10}
		feats[u] = f
		if _, err := idx.Refresh(u, f); err != nil {
			t.Fatal(err)
		}
	}
	if err := idx.Validate(); err != nil {
		t.Fatal(err)
	}
	// The index's own feature copy must now match the evolved slice.
	for u := range feats {
		if !idx.Features[u].Equal(feats[u]) {
			t.Fatalf("feature drift at node %d", u)
		}
	}
}
