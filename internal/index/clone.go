package index

import (
	"elink/internal/cluster"
	"elink/internal/metric"
	"elink/internal/topology"
)

// Clone returns a deep copy of the index sharing only the (immutable)
// graph. The streaming engine publishes an index to concurrent query
// readers at every epoch boundary; before the next epoch's Refresh or
// rebuild mutates anything it clones the published structure, so readers
// keep an exact, frozen view (copy-on-write at epoch granularity).
func (idx *Index) Clone() *Index {
	out := &Index{
		Graph:       idx.Graph,
		Metric:      idx.Metric,
		Features:    make([]metric.Feature, len(idx.Features)),
		Clusters:    make([]*ClusterIndex, len(idx.Clusters)),
		ClusterOf:   append([]int(nil), idx.ClusterOf...),
		Backbone:    append([]BackboneEdge(nil), idx.Backbone...),
		BackboneAdj: make(map[topology.NodeID][]BackboneEdge, len(idx.BackboneAdj)),
		BuildStats:  cluster.Stats{Messages: idx.BuildStats.Messages, Time: idx.BuildStats.Time, Breakdown: make(map[string]int64, len(idx.BuildStats.Breakdown))},
	}
	for i, f := range idx.Features {
		out.Features[i] = f.Clone()
	}
	for ci, cl := range idx.Clusters {
		cc := &ClusterIndex{
			Root:    cl.Root,
			Members: append([]topology.NodeID(nil), cl.Members...),
			Entries: make(map[topology.NodeID]*Entry, len(cl.Entries)),
		}
		for u, e := range cl.Entries {
			ce := *e
			ce.Children = append([]topology.NodeID(nil), e.Children...)
			cc.Entries[u] = &ce
		}
		out.Clusters[ci] = cc
	}
	for u, edges := range idx.BackboneAdj {
		out.BackboneAdj[u] = append([]BackboneEdge(nil), edges...)
	}
	for k, v := range idx.BuildStats.Breakdown {
		out.BuildStats.Breakdown[k] = v
	}
	return out
}
