package linalg

import (
	"math"
	"sort"
)

// coarseLevel is one level of the warm-start hierarchy: the Galerkin
// coarse operator Lc = Pᵀ L P for the aggregation prolongator P built
// from a heavy-edge matching, plus the fine→coarse vertex map needed to
// prolong coarse eigenvectors back to the fine grid. P has one column
// per aggregate with value 1/√|aggregate| at each member row, so its
// columns are orthonormal and the coarse problem stays a standard
// symmetric eigenproblem.
type coarseLevel struct {
	op     *CSR
	coarse []int     // fine vertex -> aggregate index
	scale  []float64 // per-aggregate 1/sqrt(size) (the P column value)
}

// heavyEdgeMatch computes a deterministic greedy matching: vertices are
// visited in ascending order, each unmatched vertex pairs with its
// largest-|weight| unmatched neighbor, and ties break to the first such
// neighbor in the row's sorted column order. The result depends only on
// the matrix, never on worker count or iteration order of any map.
func heavyEdgeMatch(c *CSR) []int {
	match := make([]int, c.N)
	for i := range match {
		match[i] = -1
	}
	for i := 0; i < c.N; i++ {
		if match[i] >= 0 {
			continue
		}
		best, bestW := -1, 0.0
		lo, hi := c.RowPtr[i], c.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			j := int(c.ColIdx[k])
			if j == i || match[j] >= 0 {
				continue
			}
			if w := math.Abs(c.Vals[k]); w > bestW {
				best, bestW = j, w
			}
		}
		if best >= 0 {
			match[i], match[best] = best, i
		} else {
			match[i] = i
		}
	}
	return match
}

// coarsen builds one level: aggregates from heavyEdgeMatch (numbered in
// ascending first-member order) and the Galerkin operator assembled row
// by row with a marker/accumulator sweep, coarse columns emitted in
// sorted order. Everything is serial and order-fixed, so coarse
// operators are identical across runs and worker counts.
func coarsen(c *CSR) *coarseLevel {
	match := heavyEdgeMatch(c)
	coarse := make([]int, c.N)
	for i := range coarse {
		coarse[i] = -1
	}
	nc := 0
	for i := 0; i < c.N; i++ {
		if coarse[i] >= 0 {
			continue
		}
		coarse[i] = nc
		if match[i] != i {
			coarse[match[i]] = nc
		}
		nc++
	}
	scale := make([]float64, nc)
	size := make([]int, nc)
	for _, ci := range coarse {
		size[ci]++
	}
	for ci, s := range size {
		scale[ci] = 1 / math.Sqrt(float64(s))
	}

	// members[start[ci]:start[ci+1]] lists aggregate ci's fine vertices in
	// ascending order (counting sort over the fine index order).
	start := make([]int, nc+1)
	for _, ci := range coarse {
		start[ci+1]++
	}
	for ci := 0; ci < nc; ci++ {
		start[ci+1] += start[ci]
	}
	members := make([]int, c.N)
	fill := make([]int, nc)
	copy(fill, start[:nc])
	for i, ci := range coarse {
		members[fill[ci]] = i
		fill[ci]++
	}

	op := &CSR{N: nc, RowPtr: make([]int, nc+1)}
	marker := make([]int, nc)
	for i := range marker {
		marker[i] = -1
	}
	acc := make([]float64, nc)
	var touched []int
	for ci := 0; ci < nc; ci++ {
		touched = touched[:0]
		for _, i := range members[start[ci]:start[ci+1]] {
			si := scale[ci]
			for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
				cj := coarse[int(c.ColIdx[k])]
				if marker[cj] != ci {
					marker[cj] = ci
					acc[cj] = 0
					touched = append(touched, cj)
				}
				acc[cj] += si * scale[cj] * c.Vals[k]
			}
		}
		sort.Ints(touched)
		for _, cj := range touched {
			op.ColIdx = append(op.ColIdx, int32(cj))
			op.Vals = append(op.Vals, acc[cj])
		}
		op.RowPtr[ci+1] = len(op.ColIdx)
	}
	return &coarseLevel{op: op, coarse: coarse, scale: scale}
}

// prolong lifts a coarse block to the fine grid: fine[j][i] =
// coarse[j][agg(i)] · scale[agg(i)], i.e. multiplication by P. Because
// P's columns are orthonormal, prolonged coarse eigenvectors arrive
// already orthonormal (up to roundoff) as the warm-start block.
func (l *coarseLevel) prolong(coarseVecs, fineVecs [][]float64) {
	for j := range coarseVecs {
		cv, fv := coarseVecs[j], fineVecs[j]
		for i := range fv {
			ci := l.coarse[i]
			fv[i] = cv[ci] * l.scale[ci]
		}
	}
}
