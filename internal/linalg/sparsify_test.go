package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// denseAffinity builds a deliberately over-dense random geometric
// affinity graph: every pair within the radius gets a Gaussian weight,
// plus unit self-loops.
func denseAffinity(n int, radius float64, rng *rand.Rand) *SparseSym {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	s := NewSparseSym(n)
	for i := 0; i < n; i++ {
		s.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			if d := math.Sqrt(dx*dx + dy*dy); d < radius {
				s.Set(i, j, math.Exp(-d*d))
			}
		}
	}
	return s
}

func avgOffDiagDegree(c *CSR) float64 {
	off := 0
	for i := 0; i < c.N; i++ {
		for _, j := range c.ColIdx[c.RowPtr[i]:c.RowPtr[i+1]] {
			if int(j) != i {
				off++
			}
		}
	}
	return float64(off) / float64(c.N)
}

func TestSparsifyThinsToTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := denseAffinity(200, 0.35, rng).Finalize()
	before := avgOffDiagDegree(c)
	if before < 30 {
		t.Fatalf("test graph too sparse to exercise the pre-pass: avg degree %v", before)
	}
	sp := Sparsify(c, 12, rng)
	after := avgOffDiagDegree(sp)
	if after >= before/2 {
		t.Errorf("sparsification barely thinned: %v -> %v", before, after)
	}
	// The expected kept count is targetDegree*n/2 edges; allow generous
	// sampling slack plus the deterministic p>=1 keeps.
	if after > 3*12 {
		t.Errorf("average degree %v far above target 12", after)
	}
}

// TestSparsifyPreservesSpectrum: the bottom of the sparsified normalized
// Laplacian's spectrum must track the original's — that is the entire
// point of resistance-weighted sampling over uniform sampling.
func TestSparsifyPreservesSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := denseAffinity(180, 0.4, rng).Finalize()
	sp := Sparsify(c, 14, rng)

	orig, err := c.NormalizedLaplacian().EigenBottomK(4, rand.New(rand.NewSource(1)), BottomKOptions{})
	if err != nil {
		t.Fatal(err)
	}
	thin, err := sp.NormalizedLaplacian().EigenBottomK(4, rand.New(rand.NewSource(1)), BottomKOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		if d := math.Abs(orig.Values[j] - thin.Values[j]); d > 0.15 {
			t.Errorf("eigenvalue %d drifted by %v (orig %v, sparsified %v)",
				j, d, orig.Values[j], thin.Values[j])
		}
	}
	// Connectivity preserved: one zero eigenvalue each, same kernel dim.
	if (math.Abs(orig.Values[1]) < 1e-8) != (math.Abs(thin.Values[1]) < 1e-8) {
		t.Errorf("sparsification changed the component count: orig λ2=%v, thin λ2=%v",
			orig.Values[1], thin.Values[1])
	}
}

func TestSparsifyNoOpBelowTarget(t *testing.T) {
	// A 4-regular grid is already below any reasonable target degree:
	// the input must come back unchanged, without copying.
	s := NewSparseSym(100)
	for i := 0; i < 100; i++ {
		s.Set(i, i, 1)
		if i+1 < 100 {
			s.Set(i, i+1, 1)
		}
	}
	c := s.Finalize()
	if got := Sparsify(c, 8, rand.New(rand.NewSource(1))); got != c {
		t.Error("sparse input was rebuilt instead of passed through")
	}
}

func TestSparsifyDeterministic(t *testing.T) {
	build := func() *CSR {
		rng := rand.New(rand.NewSource(21))
		c := denseAffinity(150, 0.4, rng).Finalize()
		return Sparsify(c, 10, rng)
	}
	a, b := build(), build()
	if a.NNZ() != b.NNZ() {
		t.Fatalf("nnz differs across identical runs: %d != %d", a.NNZ(), b.NNZ())
	}
	for i := range a.Vals {
		if a.Vals[i] != b.Vals[i] || a.ColIdx[i] != b.ColIdx[i] {
			t.Fatalf("entry %d differs across identical runs", i)
		}
	}
}

// TestSparsifyReweightsUnbiased: the total edge weight (and so the
// weighted degree sum) must be preserved in expectation; with a fixed
// seed we pin a loose band around the original.
func TestSparsifyReweightsUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	c := denseAffinity(200, 0.4, rng).Finalize()
	sp := Sparsify(c, 12, rng)
	sum := func(x *CSR) (s float64) {
		for _, v := range x.Vals {
			s += v
		}
		return
	}
	a, b := sum(c), sum(sp)
	if math.Abs(a-b)/a > 0.2 {
		t.Errorf("total weight drifted: %v -> %v (>20%%)", a, b)
	}
}
