package linalg

import (
	"math"
	"math/rand"
)

// Sparsify thins a symmetric affinity matrix by effective-resistance-
// flavored importance sampling, the spectral-sparsification lever of
// Spielman–Srivastava (and the distributed variants of Mendoza-Granada &
// Villagra and Sun & Zanetti): each off-diagonal edge e = (u, v) is kept
// independently with probability proportional to
//
//	w_e * (1/d_u + 1/d_v)
//
// — the classical upper bound on w_e times e's effective resistance —
// and survivors are reweighted by 1/p_e, so the sparsified Laplacian is
// an unbiased estimator of the original and its spectrum is preserved to
// the sampling accuracy. targetDegree sets the expected average number
// of kept edges per node; edges whose score forces p_e >= 1 (bridges,
// high-leverage edges) are always kept at their original weight, which
// is what protects connectivity. Diagonal entries pass through
// untouched.
//
// The edge scan is a fixed serial upper-triangle order and every random
// draw comes from rng, so the output depends only on (input, rng state)
// — never on the worker count. When the input's average degree is
// already at or below targetDegree the input is returned unchanged (no
// copy), so the pre-pass is free for genuinely sparse graphs.
func Sparsify(c *CSR, targetDegree float64, rng *rand.Rand) *CSR {
	n := c.N
	if n == 0 || targetDegree <= 0 {
		return c
	}
	// Count off-diagonal entries (each edge stored twice).
	offDiag := 0
	for i := 0; i < n; i++ {
		for _, j := range c.ColIdx[c.RowPtr[i]:c.RowPtr[i+1]] {
			if int(j) != i {
				offDiag++
			}
		}
	}
	if float64(offDiag) <= targetDegree*float64(n) {
		return c
	}
	deg := c.RowSums()

	// Pass 1: total leverage score over the upper triangle, in the same
	// fixed order pass 2 samples in.
	var total float64
	for i := 0; i < n; i++ {
		lo, hi := c.RowPtr[i], c.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			j := int(c.ColIdx[k])
			if j <= i {
				continue
			}
			total += edgeScore(c.Vals[k], deg[i], deg[j])
		}
	}
	if total == 0 {
		return c
	}

	// Pass 2: sample. The expected kept edge count is q; p_e >= 1 edges
	// are deterministic keeps.
	q := targetDegree * float64(n) / 2
	out := NewSparseSym(n)
	for i := 0; i < n; i++ {
		lo, hi := c.RowPtr[i], c.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			j := int(c.ColIdx[k])
			switch {
			case j == i:
				out.Set(i, i, c.Vals[k])
			case j > i:
				p := q * edgeScore(c.Vals[k], deg[i], deg[j]) / total
				if p >= 1 {
					out.Set(i, j, c.Vals[k])
				} else if rng.Float64() < p {
					out.Set(i, j, c.Vals[k]/p)
				}
			}
		}
	}
	return out.Finalize()
}

// edgeScore is the sampling weight of one edge: w_e (1/d_u + 1/d_v),
// the standard cheap proxy for w_e times the edge's effective
// resistance.
func edgeScore(w, du, dv float64) float64 {
	if w <= 0 || du <= 0 || dv <= 0 {
		return 0
	}
	s := w * (1/du + 1/dv)
	if math.IsNaN(s) || math.IsInf(s, 0) {
		return 0
	}
	return s
}
