package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"elink/internal/par"
)

func TestFinalizeSortsAndMergesDuplicates(t *testing.T) {
	s := NewSparseSym(4)
	s.Set(0, 3, 2)
	s.Set(0, 1, 1)
	s.Set(0, 3, 5) // duplicate: must merge to 7
	s.Set(2, 2, 4)
	s.Set(2, 2, -1) // duplicate diagonal: must merge to 3
	c := s.Finalize()

	// Rows sorted, duplicates merged.
	for i := 0; i < c.N; i++ {
		cols := c.ColIdx[c.RowPtr[i]:c.RowPtr[i+1]]
		for k := 1; k < len(cols); k++ {
			if cols[k] <= cols[k-1] {
				t.Fatalf("row %d not strictly sorted: %v", i, cols)
			}
		}
	}
	// The builder's accumulate semantics are preserved: CSR MulVec and
	// Dense agree with the duplicate-accumulating SparseSym.
	x := []float64{1, 2, 3, 4}
	want := make([]float64, 4)
	s.MulVec(x, want)
	got := make([]float64, 4)
	c.MulVec(x, got)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if d := c.Dense().MaxAbsDiff(s.Dense()); d > 1e-12 {
		t.Errorf("Dense disagrees after duplicate sets: max diff %v", d)
	}
	if c.Dense().At(0, 3) != 7 || c.Dense().At(2, 2) != 3 {
		t.Errorf("duplicates not merged: (0,3)=%v (2,2)=%v", c.Dense().At(0, 3), c.Dense().At(2, 2))
	}
}

func TestFinalizeStrictRejectsDuplicates(t *testing.T) {
	s := NewSparseSym(3)
	s.Set(0, 1, 1)
	s.Set(1, 0, 2) // same position via the mirrored triangle
	if _, err := s.FinalizeStrict(); !errors.Is(err, ErrDuplicateEntry) {
		t.Fatalf("duplicate set not rejected: err = %v", err)
	}

	clean := NewSparseSym(3)
	clean.Set(0, 1, 1)
	clean.Set(1, 2, 2)
	clean.Set(2, 2, 3)
	c, err := clean.FinalizeStrict()
	if err != nil {
		t.Fatalf("clean builder rejected: %v", err)
	}
	if c.NNZ() != 5 { // (0,1),(1,0),(1,2),(2,1),(2,2)
		t.Errorf("NNZ = %d, want 5", c.NNZ())
	}
}

func TestCSRMatchesSparseSym(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSparseSym(40)
	for e := 0; e < 120; e++ {
		i, j := rng.Intn(40), rng.Intn(40)
		if i > j {
			i, j = j, i
		}
		s.Set(i, j, rng.NormFloat64())
	}
	c := s.Finalize()
	x := make([]float64, 40)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want, got := make([]float64, 40), make([]float64, 40)
	s.MulVec(x, want)
	c.MulVec(x, got)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	ss, cs := s.RowSums(), c.RowSums()
	for i := range ss {
		if math.Abs(ss[i]-cs[i]) > 1e-12 {
			t.Fatalf("RowSums[%d] = %v, want %v", i, cs[i], ss[i])
		}
	}
}

// TestNormalizedLaplacian pins L = I - D^{-1/2} A D^{-1/2} against a
// dense reference on a graph exercising self-loops, their absence, and
// an isolated vertex.
func TestNormalizedLaplacian(t *testing.T) {
	s := NewSparseSym(5)
	s.Set(0, 0, 1) // self-loop
	s.Set(0, 1, 2)
	s.Set(1, 2, 1)
	s.Set(2, 3, 0.5)
	// node 4 isolated: zero degree
	c := s.Finalize()
	l := c.NormalizedLaplacian()

	// Dense reference.
	a := c.Dense()
	deg := c.RowSums()
	want := NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		if deg[i] > 0 {
			want.Set(i, i, 1)
		}
		for j := 0; j < 5; j++ {
			if a.At(i, j) != 0 && deg[i] > 0 && deg[j] > 0 {
				want.Set(i, j, want.At(i, j)-a.At(i, j)/math.Sqrt(deg[i]*deg[j]))
			}
		}
	}
	if d := l.Dense().MaxAbsDiff(want); d > 1e-12 {
		t.Fatalf("NormalizedLaplacian differs from dense reference by %v\n got %v\nwant %v", d, l.Dense(), want)
	}
	// Rows stay sorted and duplicate-free.
	for i := 0; i < l.N; i++ {
		cols := l.ColIdx[l.RowPtr[i]:l.RowPtr[i+1]]
		for k := 1; k < len(cols); k++ {
			if cols[k] <= cols[k-1] {
				t.Fatalf("Laplacian row %d not strictly sorted: %v", i, cols)
			}
		}
	}
}

func randomCSR(t *testing.T, n, edges int, seed int64) *CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := NewSparseSym(n)
	for e := 0; e < edges; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i > j {
			i, j = j, i
		}
		s.Set(i, j, rng.NormFloat64())
	}
	return s.Finalize()
}

// TestMulVecsMatchesMulVec pins the fused kernel's contract: for every
// block width (exercising the 4-wide unroll and each remainder path) and
// every worker count, MulVecs is bitwise equal to per-column MulVec.
func TestMulVecsMatchesMulVec(t *testing.T) {
	c := randomCSR(t, 700, 2500, 19) // > mulVecsGrain: multiple row chunks
	rng := rand.New(rand.NewSource(2))
	for _, b := range []int{1, 2, 3, 4, 5, 7, 9} {
		x := newBlock(b, c.N)
		fillRandom(x, rng)
		want := newBlock(b, c.N)
		for j := 0; j < b; j++ {
			c.MulVec(x[j], want[j])
		}
		for _, workers := range []int{1, 2, 4, 8} {
			par.SetWorkers(workers)
			y := newBlock(b, c.N)
			c.MulVecs(x, y)
			par.SetWorkers(0)
			for j := 0; j < b; j++ {
				for i := 0; i < c.N; i++ {
					if y[j][i] != want[j][i] {
						t.Fatalf("b=%d workers=%d: y[%d][%d] = %v, MulVec gives %v (bit-equality broken)",
							b, workers, j, i, y[j][i], want[j][i])
					}
				}
			}
		}
	}
	// Shape mismatch panics rather than corrupting.
	defer func() {
		if recover() == nil {
			t.Error("mismatched block shapes did not panic")
		}
	}()
	c.MulVecs(newBlock(2, c.N), newBlock(3, c.N))
}

// TestCSRDiag covers present, absent, and trailing diagonal positions.
func TestCSRDiag(t *testing.T) {
	s := NewSparseSym(4)
	s.Set(0, 0, 2.5)
	s.Set(1, 2, 1) // rows 1, 2: no diagonal stored
	s.Set(3, 3, -4)
	d := s.Finalize().Diag()
	want := []float64{2.5, 0, 0, -4}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Diag = %v, want %v", d, want)
		}
	}
}
