package linalg

import (
	"math"
	"math/rand"
	"sync/atomic"

	"elink/internal/par"
)

// KMeans clusters the rows of points into k groups using Lloyd's algorithm
// with k-means++ seeding. It returns the assignment of each row to a
// cluster in [0,k). The rng makes runs reproducible; maxIter bounds the
// Lloyd iterations (25 is plenty for the spectral embeddings used here).
func KMeans(points *Matrix, k int, rng *rand.Rand, maxIter int) []int {
	n, dim := points.Rows, points.Cols
	if k <= 0 {
		panic("linalg: KMeans requires k >= 1")
	}
	if k >= n {
		// Every point its own cluster (extra clusters stay empty).
		assign := make([]int, n)
		for i := range assign {
			assign[i] = i
		}
		return assign
	}

	centers := seedPlusPlus(points, k, rng)
	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		// Assignment: each point's nearest center is independent, so the
		// scan fans out over the shared execution layer (deterministic —
		// writes are per-index, the changed flag is order-free).
		var changedFlag atomic.Bool
		par.For(n, func(i int) {
			row := points.Data[i*dim : (i+1)*dim]
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				d := sqDist(row, centers[c])
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changedFlag.Store(true)
			}
		})
		changed := changedFlag.Load()
		if !changed && iter > 0 {
			break
		}
		// Recompute centers.
		counts := make([]int, k)
		for c := range centers {
			for j := range centers[c] {
				centers[c][j] = 0
			}
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			row := points.Data[i*dim : (i+1)*dim]
			for j, v := range row {
				centers[c][j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				i := rng.Intn(n)
				copy(centers[c], points.Data[i*dim:(i+1)*dim])
				continue
			}
			inv := 1 / float64(counts[c])
			for j := range centers[c] {
				centers[c][j] *= inv
			}
		}
	}
	return assign
}

func seedPlusPlus(points *Matrix, k int, rng *rand.Rand) [][]float64 {
	n, dim := points.Rows, points.Cols
	centers := make([][]float64, 0, k)
	first := rng.Intn(n)
	centers = append(centers, append([]float64(nil), points.Data[first*dim:(first+1)*dim]...))
	d2 := make([]float64, n)
	for len(centers) < k {
		// Refresh the squared distances in parallel, then total them
		// serially in index order so the sampling threshold (and hence
		// the seeding) is bitwise worker-count independent.
		par.For(n, func(i int) {
			row := points.Data[i*dim : (i+1)*dim]
			best := math.Inf(1)
			for _, c := range centers {
				if d := sqDist(row, c); d < best {
					best = d
				}
			}
			d2[i] = best
		})
		var total float64
		for i := 0; i < n; i++ {
			total += d2[i]
		}
		var pick int
		if total == 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			for i := 0; i < n; i++ {
				r -= d2[i]
				if r <= 0 {
					pick = i
					break
				}
			}
		}
		centers = append(centers, append([]float64(nil), points.Data[pick*dim:(pick+1)*dim]...))
	}
	return centers
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
