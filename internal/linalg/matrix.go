// Package linalg provides the small dense linear-algebra kernel the
// reproduction needs: matrix arithmetic, linear solves and inversion for
// least-squares AR fitting, a symmetric eigensolver for the centralized
// spectral-clustering baseline, and k-means for the spectral embedding.
// Everything is stdlib-only and sized for the problem (matrices up to a few
// thousand rows); it is not a general-purpose BLAS.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: cannot multiply %dx%d by %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			rowB := b.Data[k*b.Cols : (k+1)*b.Cols]
			rowO := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, v := range rowB {
				rowO[j] += a * v
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: cannot multiply %dx%d by vector of length %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) *Matrix {
	checkSameShape(m, b)
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// Sub returns m - b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	checkSameShape(m, b)
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] -= b.Data[i]
	}
	return out
}

// Scale returns s * m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// m and b; useful in tests.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	checkSameShape(m, b)
	var max float64
	for i := range m.Data {
		if d := math.Abs(m.Data[i] - b.Data[i]); d > max {
			max = d
		}
	}
	return max
}

func checkSameShape(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// ErrSingular is returned by Solve and Inverse when the system matrix is
// singular (or numerically indistinguishable from singular).
var ErrSingular = fmt.Errorf("linalg: singular matrix")

// Solve solves the square system A x = b by Gaussian elimination with
// partial pivoting. A and b are not modified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: Solve requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d does not match matrix size %d", len(b), n)
	}
	// Augmented working copies.
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(m, pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m.Set(r, c, m.At(r, c)-f*m.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// Inverse returns A^{-1}, solving column by column.
func Inverse(a *Matrix) (*Matrix, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: Inverse requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	out := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := Solve(a, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out.Set(i, j, col[i])
		}
	}
	return out, nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}
