package linalg

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"elink/internal/par"
)

// ErrNoConvergence reports that an iterative eigensolver exhausted its
// iteration budget with at least one requested pair above tolerance.
// Solvers return their best-effort result alongside the error (a
// *ConvergenceError wrapping this sentinel, carrying the residuals), so
// callers choose between failing hard and accepting a documented
// tolerance — the silent-garbage fallthrough this sentinel replaced is
// no longer possible.
var ErrNoConvergence = errors.New("linalg: eigensolver did not converge")

// ConvergenceError carries residual diagnostics for an unconverged
// solve. It wraps ErrNoConvergence, so errors.Is(err, ErrNoConvergence)
// selects it.
type ConvergenceError struct {
	// Residuals holds the 2-norm of A v - λ v for each requested pair.
	Residuals []float64
	// Tol is the relative tolerance the solve was run under.
	Tol float64
	// Iters is the number of iterations performed.
	Iters int
}

func (e *ConvergenceError) Error() string {
	worst := 0.0
	for _, r := range e.Residuals {
		if r > worst {
			worst = r
		}
	}
	return fmt.Sprintf("linalg: eigensolver did not converge after %d iterations (worst residual %.3g, tol %.3g)",
		e.Iters, worst, e.Tol)
}

func (e *ConvergenceError) Unwrap() error { return ErrNoConvergence }

// BottomKOptions tunes EigenBottomK. The zero value uses the defaults.
type BottomKOptions struct {
	// MaxIter caps the LOBPCG iterations (0 = 500).
	MaxIter int
	// Tol is the relative residual tolerance: pair i is converged when
	// ||L v - λ v||₂ <= Tol * (|λ| + 1). 0 = 1e-6.
	Tol float64
	// Block overrides the iteration block size (0 = k+8, clamped so the
	// Rayleigh–Ritz subspace stays small relative to n).
	Block int
	// Precond is applied to the residual block every iteration (nil =
	// Jacobi, the inverse-diagonal default; IdentityPrecond{} disables
	// preconditioning; NewChebyshev exploits the normalized Laplacian's
	// known [0, 2] spectrum).
	Precond Preconditioner
	// RandomStart forces the seeded-random starting block, skipping the
	// coarse-grid warm start (the benchmark's baseline arm, and the only
	// mode where rng is consumed at the fine level).
	RandomStart bool
}

// BottomKResult is a bottom-k eigensolve outcome. It is returned even
// when the solve fails to converge, so residual diagnostics survive.
type BottomKResult struct {
	// Values are the k smallest eigenvalues, ascending.
	Values []float64
	// Vectors holds the matching eigenvectors as columns (n x k).
	Vectors *Matrix
	// Residuals are the 2-norms ||L v - λ v||₂ per returned pair.
	Residuals []float64
	// Iters is the number of LOBPCG iterations performed (0 for the
	// dense fallback).
	Iters int
	// CoarseLevels is the depth of the coarse-grid warm-start hierarchy
	// used to seed the block (0 = seeded-random start).
	CoarseLevels int
}

// denseBottomKLimit is the size up to which a rank-deficient block (k
// too large relative to n) falls back to one dense Jacobi decomposition
// instead of failing; beyond it the densification would defeat the
// sparse engine's purpose, so the solve errors instead.
const denseBottomKLimit = 2048

// coarseStartMinN is the size below which the warm start stops
// recursing and draws the block from the seeded generator instead: at a
// few hundred vertices a coarse level costs more in solve overhead than
// the iterations it saves. A variable so tests can steer path selection.
var coarseStartMinN = 600

// Coarse-level solve budget: each hierarchy level refines its prolonged
// block only far enough to seed the next-finer level (the fine solve
// does the real converging), and a level whose matching stalls —
// shrinking the graph by less than 1/8 — aborts the recursion rather
// than stacking near-identical levels.
const (
	coarseWarmTol     = 1e-3
	coarseWarmMaxIter = 30
	coarseMaxLevels   = 32
)

// EigenBottomK computes the k smallest-eigenvalue eigenpairs of the
// symmetric matrix using preconditioned LOBPCG (locally optimal block
// preconditioned conjugate gradient, Knyazev's formulation) with full
// reorthogonalization of the Rayleigh–Ritz basis every iteration. The
// residual block is preconditioned each iteration (Jacobi by default,
// see BottomKOptions.Precond) and the starting block is prolonged from
// a coarse-grid solve over a deterministic heavy-edge-matching
// hierarchy (see BottomKOptions.RandomStart). Eigenvalues come back
// ascending; for a normalized graph Laplacian the returned vectors are
// the NJW spectral embedding, and a zero eigenvalue of multiplicity m
// (one per connected component) is resolved exactly as long as the
// block is at least m wide — the block carries k+8 vectors by default.
//
// Determinism: every arithmetic reduction (dot products, Gram–Schmidt,
// the projected dense eigensolve) runs in a fixed serial order; only
// independent per-column and fixed-chunk per-row computations fan out
// over internal/par, writing caller-owned slots. Results are therefore
// bitwise identical for every worker count, and depend only on the
// matrix, the options, and the supplied generator.
//
// The steady-state iteration loop runs against workspace allocated once
// per solve: at one worker it performs no allocations at all (pinned by
// AllocsPerRun regression tests), and the matrix is streamed once per
// block operation through CSR.MulVecs rather than once per column.
//
// On iteration-budget exhaustion the best-effort result is returned
// together with a *ConvergenceError (wrapping ErrNoConvergence) carrying
// the per-pair residuals — never silently.
func (c *CSR) EigenBottomK(k int, rng *rand.Rand, opt BottomKOptions) (*BottomKResult, error) {
	n := c.N
	if k <= 0 {
		return nil, fmt.Errorf("linalg: EigenBottomK requires k >= 1, got %d", k)
	}
	if k > n {
		k = n
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 500
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	b := opt.Block
	if b <= 0 {
		b = k + 8
	}
	if b > (n-1)/3 {
		b = (n - 1) / 3 // keep the 3b-wide Rayleigh–Ritz basis well under n
	}
	if n <= 64 || b <= k {
		if n > denseBottomKLimit {
			return nil, fmt.Errorf("linalg: EigenBottomK: k=%d too large for sparse solve at n=%d (would densify)", k, n)
		}
		return c.denseBottomK(k)
	}

	pre := opt.Precond
	if pre == nil {
		pre = NewJacobi(c)
	}
	st := newLobpcgState(c, b, pre)
	levels := 0
	if opt.RandomStart {
		fillRandom(st.x, rng)
	} else {
		levels = fillWarmStart(c, st.x, rng, pre, 0)
	}
	orthonormalize(st.x)

	iters := st.run(k, tol, maxIter)

	out := &BottomKResult{
		Values:       append([]float64(nil), st.lam[:k]...),
		Residuals:    append([]float64(nil), st.res[:k]...),
		Iters:        iters,
		CoarseLevels: levels,
		Vectors:      NewMatrix(n, k),
	}
	for j := 0; j < k; j++ {
		for r := 0; r < n; r++ {
			out.Vectors.Set(r, j, st.x[j][r])
		}
	}
	for j := 0; j < k; j++ {
		if st.res[j] > tol*(math.Abs(st.lam[j])+1) {
			return out, &ConvergenceError{Residuals: out.Residuals, Tol: tol, Iters: iters}
		}
	}
	return out, nil
}

// fillRandom draws the starting block column by column in a fixed order,
// so the start depends only on the generator state.
func fillRandom(x [][]float64, rng *rand.Rand) {
	for j := range x {
		for r := range x[j] {
			x[j][r] = rng.NormFloat64()
		}
	}
}

// fillWarmStart seeds x with eigenvector estimates prolonged from a
// coarse-grid solve: the graph is shrunk by deterministic heavy-edge
// matching, the coarse problem is warm-started the same way
// (recursively), refined by a short coarse-tolerance LOBPCG run, and
// lifted back through the orthonormal aggregation prolongator. The
// generator is consumed only at the bottom of the recursion, in the same
// fixed column order as a direct random start. Returns the hierarchy
// depth (0 = the block is random: the matrix was already small, the
// matching stalled, or the coarse graph is too small to host the block).
func fillWarmStart(c *CSR, x [][]float64, rng *rand.Rand, pre Preconditioner, depth int) int {
	b := len(x)
	if c.N >= coarseStartMinN && depth < coarseMaxLevels {
		lvl := coarsen(c)
		nc := lvl.op.N
		if nc > 3*b+1 && nc <= c.N-c.N/8 {
			cpre := precondFor(pre, lvl.op)
			cst := newLobpcgState(lvl.op, b, cpre)
			levels := fillWarmStart(lvl.op, cst.x, rng, cpre, depth+1)
			orthonormalize(cst.x)
			cst.run(b, coarseWarmTol, coarseWarmMaxIter)
			lvl.prolong(cst.x, x)
			return levels + 1
		}
	}
	fillRandom(x, rng)
	return 0
}

// precondFor rebuilds the configured preconditioner kind for a coarse
// operator, falling back to Jacobi for kinds that cannot re-derive
// themselves.
func precondFor(pre Preconditioner, op *CSR) Preconditioner {
	if c, ok := pre.(coarsable); ok {
		return c.ForMatrix(op)
	}
	return NewJacobi(op)
}

// lobpcgState is one solve's workspace: every block, projected-problem
// buffer, and chunk-body closure the iteration loop touches is allocated
// here once, so the loop itself is allocation-free in steady state. The
// chunk bodies are bound method values stored in fields — handing a
// field to the execution layer allocates nothing, where a fresh closure
// per call would.
type lobpcgState struct {
	c   *CSR
	pre Preconditioner
	n   int
	b   int

	x, xalt [][]float64 // current / next eigenvector block (pointer ping-pong)
	ax      [][]float64 // L·x
	w       [][]float64 // residual block, preconditioned in place
	p, palt [][]float64 // conjugate-direction pools (pointer ping-pong)
	plen    int         // live columns in p
	s       [][]float64 // Rayleigh–Ritz basis headers (pointers into x/w/p)
	as      [][]float64 // L·s storage, 3b columns
	dropped [][]float64 // orthonormalizeKeepAll scratch

	lam, res []float64

	m            int       // current basis size (len(s))
	tData, vData []float64 // (3b)² projected-problem buffers
	tm, tv       Matrix    // views over tData/vData sized m×m
	order        []int     // ascending-eigenvalue permutation of tm's diagonal
	evals        []float64

	fRayleigh, fGram, fCompose, fConjugate func(lo, hi int)
}

func newLobpcgState(c *CSR, b int, pre Preconditioner) *lobpcgState {
	n := c.N
	st := &lobpcgState{
		c: c, pre: pre, n: n, b: b,
		x:       newBlock(b, n),
		xalt:    newBlock(b, n),
		ax:      newBlock(b, n),
		w:       newBlock(b, n),
		p:       newBlock(b, n),
		palt:    newBlock(b, n),
		s:       make([][]float64, 0, 3*b),
		as:      newBlock(3*b, n),
		dropped: make([][]float64, 0, b),
		lam:     make([]float64, b),
		res:     make([]float64, b),
		tData:   make([]float64, 3*b*3*b),
		vData:   make([]float64, 3*b*3*b),
		order:   make([]int, 3*b),
		evals:   make([]float64, 3*b),
	}
	st.fRayleigh = st.rayleighCols
	st.fGram = st.gramRows
	st.fCompose = st.composeCols
	st.fConjugate = st.conjugateCols
	return st
}

// fan runs a chunk body over [0, n): inline at one worker (the
// zero-alloc path), otherwise over internal/par's fixed-grain chunk
// layout. Both paths execute identical per-element arithmetic, so the
// results are bitwise independent of the worker count.
func (st *lobpcgState) fan(n int, body func(lo, hi int)) {
	if par.Workers() == 1 {
		body(0, n)
		return
	}
	par.Chunks(n, 1, body)
}

// run drives the LOBPCG iteration until the first k pairs converge at
// tol or maxIter is exhausted, starting from the orthonormal block in
// st.x. On return st.x/st.lam/st.res hold the best pairs in ascending
// eigenvalue order; the return value is the iteration count.
func (st *lobpcgState) run(k int, tol float64, maxIter int) int {
	b := st.b
	st.c.MulVecs(st.x, st.ax)
	for iter := 1; iter <= maxIter; iter++ {
		// Rayleigh quotients and raw residuals on the current orthonormal
		// X; convergence is judged on the unpreconditioned residual norms.
		st.fan(b, st.fRayleigh)
		done := true
		for j := 0; j < k; j++ {
			if st.res[j] > tol*(math.Abs(st.lam[j])+1) {
				done = false
				break
			}
		}
		if done {
			return iter
		}
		if iter == maxIter {
			break
		}

		// W = M⁻¹ R: the preconditioned residual enters the trial basis
		// (Knyazev's formulation).
		st.pre.Apply(st.w)

		// Rayleigh–Ritz basis S = [X | W | P], fully reorthogonalized by
		// modified Gram–Schmidt; collapsed directions are dropped (the
		// span is what matters, and dropping is deterministic). s holds
		// pointers into the x/w/p pools — their contents are consumed
		// here and rebuilt next iteration, so mutating them is free.
		st.s = append(st.s[:0], st.x...)
		st.s = append(st.s, st.w...)
		st.s = append(st.s, st.p[:st.plen]...)
		st.s = orthonormalizeDrop(st.s, b)
		m := len(st.s)
		st.m = m

		st.c.MulVecs(st.s, st.as[:m])

		// T = Sᵀ (L S): row i writes (i, j>=i) and mirrors — disjoint
		// across i, serial within a row.
		st.tm = Matrix{Rows: m, Cols: m, Data: st.tData[:m*m]}
		st.fan(m, st.fGram)

		// Projected eigensolve, serial and in-place on the preallocated
		// views; the permutation orders Ritz values ascending.
		vd := st.vData[:m*m]
		for i := range vd {
			vd[i] = 0
		}
		for i := 0; i < m; i++ {
			vd[i*m+i] = 1
		}
		st.tv = Matrix{Rows: m, Cols: m, Data: vd}
		jacobiSweepsSerial(&st.tm, &st.tv, m, 100)
		for i := 0; i < m; i++ {
			st.evals[i] = st.tm.Data[i*m+i]
			st.order[i] = i
		}
		sortOrderAscending(st.order[:m], st.evals[:m])

		// New block from the smallest-b Ritz rotations, then conjugate
		// directions P = X' - X (Xᵀ X') from the outgoing X.
		st.fan(b, st.fCompose)
		st.fan(b, st.fConjugate)
		st.plen = orthonormalizeKeepAll(st.palt, 0, &st.dropped)
		st.p, st.palt = st.palt, st.p
		st.x, st.xalt = st.xalt, st.x
		orthonormalize(st.x)
		st.c.MulVecs(st.x, st.ax)
	}

	// Budget exhausted: lam/res were refreshed for the final block at the
	// top of the last iteration; order the pairs so this exit reports
	// them like a converged one would.
	sortPairsAscending(st.x, st.lam, st.res, b)
	return maxIter
}

// rayleighCols computes λ_j = x_jᵀ (L x_j), the residual column
// w_j = (L x_j) - λ_j x_j, and its 2-norm for block columns [lo, hi).
// Columns are independent and each one's arithmetic is serial.
func (st *lobpcgState) rayleighCols(lo, hi int) {
	for j := lo; j < hi; j++ {
		xj, axj, wj := st.x[j], st.ax[j], st.w[j]
		lam := dot(xj, axj)
		var rr float64
		for r := range xj {
			d := axj[r] - lam*xj[r]
			wj[r] = d
			rr += d * d
		}
		st.lam[j] = lam
		st.res[j] = math.Sqrt(rr)
	}
}

// gramRows fills rows [lo, hi) of the projected matrix T = Sᵀ (L S),
// writing (i, j>=i) and the mirror cell — each cell owned by exactly one
// row chunk.
func (st *lobpcgState) gramRows(lo, hi int) {
	m, data := st.m, st.tm.Data
	for i := lo; i < hi; i++ {
		si := st.s[i]
		for j := i; j < m; j++ {
			v := dot(si, st.as[j])
			data[i*m+j] = v
			data[j*m+i] = v
		}
	}
}

// composeCols builds next-X columns [lo, hi) from the ascending-order
// Ritz rotations: xalt_j = Σ_i tv[i, order[j]] · s_i.
func (st *lobpcgState) composeCols(lo, hi int) {
	m, vd := st.m, st.tv.Data
	for j := lo; j < hi; j++ {
		col := st.order[j]
		dst := st.xalt[j]
		for r := range dst {
			dst[r] = 0
		}
		for i := 0; i < m; i++ {
			f := vd[i*m+col]
			if f == 0 {
				continue
			}
			src := st.s[i]
			for r := range dst {
				dst[r] += f * src[r]
			}
		}
	}
}

// conjugateCols builds new conjugate directions for columns [lo, hi):
// the component of the new block orthogonal to the outgoing one,
// palt_j = xalt_j - Σ_i x_i (x_iᵀ xalt_j).
func (st *lobpcgState) conjugateCols(lo, hi int) {
	for j := lo; j < hi; j++ {
		dst := st.palt[j]
		copy(dst, st.xalt[j])
		for i := 0; i < st.b; i++ {
			src := st.x[i]
			f := dot(src, st.xalt[j])
			if f == 0 {
				continue
			}
			for r := range dst {
				dst[r] -= f * src[r]
			}
		}
	}
}

// denseBottomK is the small-size fallback: one dense Jacobi
// decomposition, returning the trailing (smallest) k pairs ascending.
func (c *CSR) denseBottomK(k int) (*BottomKResult, error) {
	n := c.N
	vals, vecs, err := EigenSym(c.Dense())
	if err != nil {
		return nil, err
	}
	out := &BottomKResult{
		Values:    make([]float64, k),
		Residuals: make([]float64, k),
		Vectors:   NewMatrix(n, k),
	}
	for j := 0; j < k; j++ {
		col := n - 1 - j
		out.Values[j] = vals[col]
		for r := 0; r < n; r++ {
			out.Vectors.Set(r, j, vecs.At(r, col))
		}
	}
	return out, nil
}

func newBlock(cols, n int) [][]float64 {
	b := make([][]float64, cols)
	for j := range b {
		b[j] = make([]float64, n)
	}
	return b
}

// orthonormalizeDrop runs modified Gram–Schmidt over the columns,
// dropping any column whose remainder collapses below tolerance instead
// of re-seeding it (the basis is allowed to shrink). The first keep
// columns are never dropped (pass 0 to allow dropping everywhere); they
// are assumed linearly independent, as the orthonormal X block is.
func orthonormalizeDrop(q [][]float64, keep int) [][]float64 {
	out := q[:0]
	for c := 0; c < len(q); c++ {
		col := q[c]
		for _, prev := range out {
			f := dot(prev, col)
			if f == 0 {
				continue
			}
			for r := range col {
				col[r] -= f * prev[r]
			}
		}
		norm := math.Sqrt(dot(col, col))
		if norm < 1e-10 && len(out) >= keep {
			continue
		}
		if norm == 0 {
			norm = 1
		}
		inv := 1 / norm
		for r := range col {
			col[r] *= inv
		}
		out = append(out, col)
	}
	return out
}

// orthonormalizeKeepAll is orthonormalizeDrop for pooled storage: kept
// columns compact to the front of q while the dropped columns' backing
// slices are parked after them (contents unspecified), so a reused
// workspace pool never strands storage. dropScratch is the caller's
// persistent spill buffer. Returns the kept count.
func orthonormalizeKeepAll(q [][]float64, keep int, dropScratch *[][]float64) int {
	dropped := (*dropScratch)[:0]
	kept := 0
	for c := 0; c < len(q); c++ {
		col := q[c]
		for i := 0; i < kept; i++ {
			prev := q[i]
			f := dot(prev, col)
			if f == 0 {
				continue
			}
			for r := range col {
				col[r] -= f * prev[r]
			}
		}
		norm := math.Sqrt(dot(col, col))
		if norm < 1e-10 && kept >= keep {
			dropped = append(dropped, col)
			continue
		}
		if norm == 0 {
			norm = 1
		}
		inv := 1 / norm
		for r := range col {
			col[r] *= inv
		}
		q[kept] = col
		kept++
	}
	copy(q[kept:], dropped)
	*dropScratch = dropped[:0]
	return kept
}

// sortOrderAscending insertion-sorts the index permutation by ascending
// eigenvalue (stable, serial, allocation-free — the projected problem is
// at most 3b wide, where insertion sort beats sort.Slice and its
// closure/interface allocations).
func sortOrderAscending(order []int, evals []float64) {
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && evals[order[j]] < evals[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}

// sortPairsAscending orders the first b (vector, value, residual)
// triples by ascending eigenvalue with a stable insertion sort, so the
// unconverged-exit path reports pairs in the same order a converged exit
// would.
func sortPairsAscending(x [][]float64, lam, res []float64, b int) {
	for i := 1; i < b; i++ {
		for j := i; j > 0 && lam[j] < lam[j-1]; j-- {
			lam[j], lam[j-1] = lam[j-1], lam[j]
			res[j], res[j-1] = res[j-1], res[j]
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}
