package linalg

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"elink/internal/par"
)

// ErrNoConvergence reports that an iterative eigensolver exhausted its
// iteration budget with at least one requested pair above tolerance.
// Solvers return their best-effort result alongside the error (a
// *ConvergenceError wrapping this sentinel, carrying the residuals), so
// callers choose between failing hard and accepting a documented
// tolerance — the silent-garbage fallthrough this sentinel replaced is
// no longer possible.
var ErrNoConvergence = errors.New("linalg: eigensolver did not converge")

// ConvergenceError carries residual diagnostics for an unconverged
// solve. It wraps ErrNoConvergence, so errors.Is(err, ErrNoConvergence)
// selects it.
type ConvergenceError struct {
	// Residuals holds the 2-norm of A v - λ v for each requested pair.
	Residuals []float64
	// Tol is the relative tolerance the solve was run under.
	Tol float64
	// Iters is the number of iterations performed.
	Iters int
}

func (e *ConvergenceError) Error() string {
	worst := 0.0
	for _, r := range e.Residuals {
		if r > worst {
			worst = r
		}
	}
	return fmt.Sprintf("linalg: eigensolver did not converge after %d iterations (worst residual %.3g, tol %.3g)",
		e.Iters, worst, e.Tol)
}

func (e *ConvergenceError) Unwrap() error { return ErrNoConvergence }

// BottomKOptions tunes EigenBottomK. The zero value uses the defaults.
type BottomKOptions struct {
	// MaxIter caps the LOBPCG iterations (0 = 500).
	MaxIter int
	// Tol is the relative residual tolerance: pair i is converged when
	// ||L v - λ v||₂ <= Tol * (|λ| + 1). 0 = 1e-6.
	Tol float64
	// Block overrides the iteration block size (0 = k+8, clamped so the
	// Rayleigh–Ritz subspace stays small relative to n).
	Block int
}

// BottomKResult is a bottom-k eigensolve outcome. It is returned even
// when the solve fails to converge, so residual diagnostics survive.
type BottomKResult struct {
	// Values are the k smallest eigenvalues, ascending.
	Values []float64
	// Vectors holds the matching eigenvectors as columns (n x k).
	Vectors *Matrix
	// Residuals are the 2-norms ||L v - λ v||₂ per returned pair.
	Residuals []float64
	// Iters is the number of LOBPCG iterations performed (0 for the
	// dense fallback).
	Iters int
}

// denseBottomKLimit is the size up to which a rank-deficient block (k
// too large relative to n) falls back to one dense Jacobi decomposition
// instead of failing; beyond it the densification would defeat the
// sparse engine's purpose, so the solve errors instead.
const denseBottomKLimit = 2048

// EigenBottomK computes the k smallest-eigenvalue eigenpairs of the
// symmetric matrix using LOBPCG (locally optimal block preconditioned
// conjugate gradient, unpreconditioned) with full reorthogonalization of
// the Rayleigh–Ritz basis every iteration. Eigenvalues come back
// ascending; for a normalized graph Laplacian the returned vectors are
// the NJW spectral embedding, and a zero eigenvalue of multiplicity m
// (one per connected component) is resolved exactly as long as the block
// is at least m wide — the block carries k+8 vectors by default.
//
// Determinism: every arithmetic reduction (dot products, Gram–Schmidt,
// the projected dense eigensolve) runs in a fixed serial order; only
// independent per-column and per-row computations fan out over
// internal/par, writing caller-owned slots. Results are therefore
// bitwise identical for every worker count, and depend only on the
// matrix and the supplied generator.
//
// On iteration-budget exhaustion the best-effort result is returned
// together with a *ConvergenceError (wrapping ErrNoConvergence) carrying
// the per-pair residuals — never silently.
func (c *CSR) EigenBottomK(k int, rng *rand.Rand, opt BottomKOptions) (*BottomKResult, error) {
	n := c.N
	if k <= 0 {
		return nil, fmt.Errorf("linalg: EigenBottomK requires k >= 1, got %d", k)
	}
	if k > n {
		k = n
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 500
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	b := opt.Block
	if b <= 0 {
		b = k + 8
	}
	if b > (n-1)/3 {
		b = (n - 1) / 3 // keep the 3b-wide Rayleigh–Ritz basis well under n
	}
	if n <= 64 || b <= k {
		if n > denseBottomKLimit {
			return nil, fmt.Errorf("linalg: EigenBottomK: k=%d too large for sparse solve at n=%d (would densify)", k, n)
		}
		return c.denseBottomK(k)
	}

	// Random orthonormal starting block, drawn column by column in a
	// fixed order so the start depends only on the generator state.
	x := make([][]float64, b)
	for j := range x {
		x[j] = make([]float64, n)
		for r := range x[j] {
			x[j][r] = rng.NormFloat64()
		}
	}
	orthonormalize(x)

	ax := newBlock(b, n)
	lam := make([]float64, b)
	res := make([]float64, b)
	scratch := newBlock(b, n) // residual block, reused every iteration
	var p [][]float64         // previous search directions (nil on iteration 1)

	mulBlock(c, x, ax)
	finish := func(iters int) (*BottomKResult, error) {
		out := &BottomKResult{
			Values:    append([]float64(nil), lam[:k]...),
			Residuals: append([]float64(nil), res[:k]...),
			Iters:     iters,
			Vectors:   NewMatrix(n, k),
		}
		for j := 0; j < k; j++ {
			for r := 0; r < n; r++ {
				out.Vectors.Set(r, j, x[j][r])
			}
		}
		for j := 0; j < k; j++ {
			if res[j] > tol*(math.Abs(lam[j])+1) {
				return out, &ConvergenceError{Residuals: out.Residuals, Tol: tol, Iters: iters}
			}
		}
		return out, nil
	}

	for iter := 1; iter <= maxIter; iter++ {
		// Rayleigh quotients and residual blocks on the current
		// orthonormal X. Columns are independent: each fans out with its
		// own serial arithmetic.
		w := scratch
		par.For(b, func(j int) {
			lam[j] = dot(x[j], ax[j])
			var rr float64
			for r := 0; r < n; r++ {
				d := ax[j][r] - lam[j]*x[j][r]
				w[j][r] = d
				rr += d * d
			}
			res[j] = math.Sqrt(rr)
		})
		done := true
		for j := 0; j < k; j++ {
			if res[j] > tol*(math.Abs(lam[j])+1) {
				done = false
				break
			}
		}
		if done {
			return finish(iter)
		}
		if iter == maxIter {
			break
		}

		// Rayleigh–Ritz basis S = [X | W | P], fully reorthogonalized by
		// modified Gram–Schmidt; collapsed directions are dropped (the
		// span is what matters, and dropping is deterministic).
		s := make([][]float64, 0, 3*b)
		s = append(s, x...)
		s = append(s, w...)
		if p != nil {
			s = append(s, p...)
		}
		s = orthonormalizeDrop(s, b)
		m := len(s)

		as := newBlock(m, n)
		mulBlock(c, s, as)
		// T = Sᵀ (L S): row i writes (i, j>=i) and mirrors — disjoint
		// across i, serial within a row.
		t := NewMatrix(m, m)
		par.For(m, func(i int) {
			for j := i; j < m; j++ {
				v := dot(s[i], as[j])
				t.Set(i, j, v)
				t.Set(j, i, v)
			}
		})
		// Ritz values are recomputed as Rayleigh quotients at the top of
		// the next iteration, so only the rotation matters here.
		_, tvec, err := EigenSym(t)
		if err != nil {
			return nil, err
		}
		// Smallest-b Ritz pairs: EigenSym sorts descending, so they are
		// the trailing columns; reorder ascending.
		nx := newBlock(b, n)
		par.For(b, func(j int) {
			col := m - 1 - j
			dst := nx[j]
			for i := 0; i < m; i++ {
				f := tvec.At(i, col)
				if f == 0 {
					continue
				}
				src := s[i]
				for r := 0; r < n; r++ {
					dst[r] += f * src[r]
				}
			}
		})
		// Conjugate directions: the component of the new block that is
		// orthogonal to the old one, P = X' - X (Xᵀ X').
		np := newBlock(b, n)
		par.For(b, func(j int) {
			copy(np[j], nx[j])
			for i := 0; i < b; i++ {
				f := dot(x[i], nx[j])
				if f == 0 {
					continue
				}
				src := x[i]
				dst := np[j]
				for r := 0; r < n; r++ {
					dst[r] -= f * src[r]
				}
			}
		})
		p = orthonormalizeDrop(np, 0)
		if len(p) == 0 {
			p = nil
		}
		x = nx
		orthonormalize(x)
		mulBlock(c, x, ax)
	}

	// Budget exhausted: lam/res were refreshed for the final block at the
	// top of the last iteration; order the pairs and report
	// non-convergence with the residual diagnostics attached.
	sortPairsAscending(x, lam, res, b)
	return finish(maxIter)
}

// denseBottomK is the small-size fallback: one dense Jacobi
// decomposition, returning the trailing (smallest) k pairs ascending.
func (c *CSR) denseBottomK(k int) (*BottomKResult, error) {
	n := c.N
	vals, vecs, err := EigenSym(c.Dense())
	if err != nil {
		return nil, err
	}
	out := &BottomKResult{
		Values:    make([]float64, k),
		Residuals: make([]float64, k),
		Vectors:   NewMatrix(n, k),
	}
	for j := 0; j < k; j++ {
		col := n - 1 - j
		out.Values[j] = vals[col]
		for r := 0; r < n; r++ {
			out.Vectors.Set(r, j, vecs.At(r, col))
		}
	}
	return out, nil
}

// mulBlock computes y[j] = C x[j] for every block column, fanning the
// independent columns out over the execution layer.
func mulBlock(c *CSR, x, y [][]float64) {
	par.For(len(x), func(j int) {
		c.MulVec(x[j], y[j])
	})
}

func newBlock(cols, n int) [][]float64 {
	b := make([][]float64, cols)
	for j := range b {
		b[j] = make([]float64, n)
	}
	return b
}

// orthonormalizeDrop runs modified Gram–Schmidt over the columns,
// dropping any column whose remainder collapses below tolerance instead
// of re-seeding it (the basis is allowed to shrink). The first keep
// columns are never dropped (pass 0 to allow dropping everywhere); they
// are assumed linearly independent, as the orthonormal X block is.
func orthonormalizeDrop(q [][]float64, keep int) [][]float64 {
	out := q[:0]
	for c := 0; c < len(q); c++ {
		col := q[c]
		for _, prev := range out {
			f := dot(prev, col)
			if f == 0 {
				continue
			}
			for r := range col {
				col[r] -= f * prev[r]
			}
		}
		norm := math.Sqrt(dot(col, col))
		if norm < 1e-10 && len(out) >= keep {
			continue
		}
		if norm == 0 {
			norm = 1
		}
		inv := 1 / norm
		for r := range col {
			col[r] *= inv
		}
		out = append(out, col)
	}
	return out
}

// sortPairsAscending orders the first b (vector, value, residual)
// triples by ascending eigenvalue with a stable insertion sort, so the
// unconverged-exit path reports pairs in the same order a converged exit
// would.
func sortPairsAscending(x [][]float64, lam, res []float64, b int) {
	for i := 1; i < b; i++ {
		for j := i; j > 0 && lam[j] < lam[j-1]; j-- {
			lam[j], lam[j-1] = lam[j-1], lam[j]
			res[j], res[j-1] = res[j-1], res[j]
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}
