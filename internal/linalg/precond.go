package linalg

import (
	"math"

	"elink/internal/par"
)

// Preconditioner approximates the inverse of the symmetric operator the
// sparse eigensolver iterates on: Apply overwrites each block column
// w[j] with M⁻¹ w[j], where M is symmetric positive definite (Knyazev's
// requirement for preconditioned LOBPCG). Implementations must be
// deterministic and worker-count independent — per-column arithmetic in
// a fixed serial order, parallelism only across independent columns or
// fixed row chunks — and steady-state Apply must not allocate: workspace
// is created at construction or on the first Apply and reused (pinned by
// the zero-alloc regression tests).
type Preconditioner interface {
	Apply(w [][]float64)
}

// coarsable is implemented by preconditioners that can rebuild
// themselves for the Galerkin coarse operators of the warm start; kinds
// that don't implement it fall back to Jacobi on coarse levels.
type coarsable interface {
	ForMatrix(c *CSR) Preconditioner
}

// IdentityPrecond disables preconditioning: Apply is a no-op, so the
// solver iterates on the raw residual block exactly like the
// pre-preconditioner engine. The benchmark's baseline arm uses it.
type IdentityPrecond struct{}

// Apply implements Preconditioner as a no-op.
func (IdentityPrecond) Apply([][]float64) {}

// ForMatrix implements the coarse-level rebuild trivially.
func (IdentityPrecond) ForMatrix(*CSR) Preconditioner { return IdentityPrecond{} }

// jacobiPrecond scales each residual row by the inverse of the matrix
// diagonal's magnitude — the cheapest classical preconditioner, and the
// BottomKOptions default. |d| rather than d keeps M positive definite
// for indefinite test matrices; rows without a usable diagonal pass
// through unscaled.
type jacobiPrecond struct {
	inv []float64
}

// NewJacobi builds the inverse-diagonal (Jacobi) preconditioner for c.
func NewJacobi(c *CSR) Preconditioner {
	inv := make([]float64, c.N)
	diag := c.Diag()
	for i, d := range diag {
		if a := math.Abs(d); a > 1e-12 {
			inv[i] = 1 / a
		} else {
			inv[i] = 1
		}
	}
	return &jacobiPrecond{inv: inv}
}

func (m *jacobiPrecond) Apply(w [][]float64) {
	if par.Workers() == 1 {
		m.applyCols(0, len(w), w)
		return
	}
	par.Chunks(len(w), 1, func(lo, hi int) { m.applyCols(lo, hi, w) })
}

func (m *jacobiPrecond) applyCols(lo, hi int, w [][]float64) {
	for j := lo; j < hi; j++ {
		col := w[j]
		for r := range col {
			col[r] *= m.inv[r]
		}
	}
}

func (m *jacobiPrecond) ForMatrix(c *CSR) Preconditioner { return NewJacobi(c) }

// Chebyshev preconditioner defaults: steps block updates per Apply
// (costing steps-1 fused block SpMMs), inverse approximated on
// [hi/chebDefaultRatio, hi]. The interval upper bound defaults to a
// Gershgorin estimate of the largest eigenvalue — 2 for a normalized
// graph Laplacian, whose known [0, 2] spectrum is the design target.
// Eight steps is the measured sweet spot across the bench ladder: more
// SpMMs per apply, but the LOBPCG iteration count (and with it the
// dominant reorthogonalization cost) falls faster than the kernel cost
// grows (n=20000 rung: 12 iters/2.9 s at 4 steps, 6 iters/1.7 s at 8).
const (
	chebDefaultSteps = 8
	chebDefaultRatio = 30
)

// chebPrecond applies a Chebyshev polynomial approximation of the
// operator's inverse on the interval [lo, hi] (the classical Chebyshev
// semi-iteration for solving C x = w, run for a fixed number of steps
// with x₀ = 0). Eigencomponents below lo — exactly the bottom-spectrum
// modes the eigensolver hunts — are amplified by roughly 1/lo while the
// rest of the spectrum is equalized toward 1/λ, which is what collapses
// the LOBPCG iteration count. The resulting polynomial is strictly
// positive on [0, hi], so M is symmetric positive definite as Knyazev's
// formulation requires.
type chebPrecond struct {
	c       *CSR
	steps   int
	lo, hi  float64
	r, d, t [][]float64 // lazily sized to the block shape, then reused

	// Per-Apply loop state, held in fields so the column bodies can be
	// bound method values (fInit/fStep) instead of fresh closures — the
	// difference between zero allocations per Apply and one per step.
	w             [][]float64
	theta, a1, a2 float64
	fInit, fStep  func(j int)
}

// NewChebyshev builds a Chebyshev inverse-approximation preconditioner
// for c. steps is the number of semi-iteration block updates per Apply
// (0 = 8; each update past the first costs one fused block SpMM); hi is
// the upper bound of the approximation interval (0 = Gershgorin row
// estimate of the largest eigenvalue, which evaluates to ~2 on a
// normalized Laplacian); lo is the lower bound (0 = hi/30).
func NewChebyshev(c *CSR, steps int, lo, hi float64) Preconditioner {
	if steps <= 0 {
		steps = chebDefaultSteps
	}
	if hi <= 0 {
		for i := 0; i < c.N; i++ {
			var row float64
			for _, v := range c.Vals[c.RowPtr[i]:c.RowPtr[i+1]] {
				row += math.Abs(v)
			}
			if row > hi {
				hi = row
			}
		}
		if hi == 0 {
			hi = 1
		}
	}
	if lo <= 0 || lo >= hi {
		lo = hi / chebDefaultRatio
	}
	m := &chebPrecond{c: c, steps: steps, lo: lo, hi: hi}
	m.fInit = m.initCol
	m.fStep = m.stepCol
	return m
}

func (m *chebPrecond) ForMatrix(c *CSR) Preconditioner {
	// Interval bounds re-derive from the coarse operator when they were
	// auto-estimated; an explicit caller interval is preserved because the
	// Galerkin projection can only shrink the spectrum's upper end.
	return NewChebyshev(c, m.steps, m.lo, m.hi)
}

// ensure sizes the three scratch blocks to b columns of length n,
// reusing them across Apply calls when the shape is stable (the LOBPCG
// loop applies to the same residual block shape every iteration).
func (m *chebPrecond) ensure(bcols, n int) {
	if len(m.r) == bcols && len(m.r) > 0 && len(m.r[0]) == n {
		return
	}
	m.r = newBlock(bcols, n)
	m.d = newBlock(bcols, n)
	m.t = newBlock(bcols, n)
}

func (m *chebPrecond) Apply(w [][]float64) {
	if len(w) == 0 {
		return
	}
	m.ensure(len(w), len(w[0]))
	m.w = w
	m.theta = (m.hi + m.lo) / 2
	delta := (m.hi - m.lo) / 2
	sigma := m.theta / delta
	rho := 1 / sigma

	// x₀ = 0, r₀ = w, d₀ = r₀/θ, x₁ = d₀. The accumulated solution x
	// lives in w itself, so the final overwrite is free.
	m.eachCol(len(w), m.fInit)
	for k := 1; k < m.steps; k++ {
		m.c.MulVecs(m.d, m.t)
		rhoNext := 1 / (2*sigma - rho)
		m.a1 = rhoNext * rho
		m.a2 = 2 * rhoNext / delta
		m.eachCol(len(w), m.fStep)
		rho = rhoNext
	}
	m.w = nil
}

// initCol seeds column j of the semi-iteration from the current m.w.
func (m *chebPrecond) initCol(j int) {
	wj, rj, dj := m.w[j], m.r[j], m.d[j]
	inv := 1 / m.theta
	for i := range wj {
		v := wj[i]
		rj[i] = v
		dj[i] = v * inv
		wj[i] = dj[i]
	}
}

// stepCol advances column j one semi-iteration update under the current
// m.a1/m.a2 coefficients.
func (m *chebPrecond) stepCol(j int) {
	wj, rj, dj, tj := m.w[j], m.r[j], m.d[j], m.t[j]
	for i := range rj {
		rj[i] -= tj[i]
		dj[i] = m.a1*dj[i] + m.a2*rj[i]
		wj[i] += dj[i]
	}
}

// eachCol fans a per-column body out over the execution layer; per
// column the arithmetic is serial, so results are worker-count
// independent. The bodies are bound method values held in fields, so
// neither branch allocates per call — the one-worker path is on the
// zero-alloc contract, matching MulVecs.
func (m *chebPrecond) eachCol(b int, body func(j int)) {
	if par.Workers() == 1 {
		for j := 0; j < b; j++ {
			body(j)
		}
		return
	}
	par.For(b, body)
}
