package linalg

import (
	"math"
	"math/rand"
	"testing"

	"elink/internal/par"
)

// applyToDense materializes the linear operator a Preconditioner's Apply
// implements by running it over the identity's columns — Apply is linear,
// so the columns are M⁻¹'s columns.
func applyToDense(m Preconditioner, n int) *Matrix {
	out := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		col := [][]float64{make([]float64, n)}
		col[0][j] = 1
		m.Apply(col)
		for r := 0; r < n; r++ {
			out.Set(r, j, col[0][r])
		}
	}
	return out
}

// TestJacobiPrecond pins the inverse-|diagonal| scaling, the zero-diagonal
// pass-through guard, and the sign handling for indefinite matrices.
func TestJacobiPrecond(t *testing.T) {
	s := NewSparseSym(4)
	s.Set(0, 0, 4)
	s.Set(1, 1, -2) // negative diagonal: |d| keeps M positive definite
	s.Set(2, 3, 1)  // rows 2, 3 have no diagonal: pass through unscaled
	c := s.Finalize()
	m := NewJacobi(c)

	w := [][]float64{{8, 6, 5, 7}, {4, -2, 1, 0}}
	m.Apply(w)
	want := [][]float64{{2, 3, 5, 7}, {1, -1, 1, 0}}
	for j := range want {
		for r := range want[j] {
			if w[j][r] != want[j][r] {
				t.Errorf("col %d row %d = %v, want %v", j, r, w[j][r], want[j][r])
			}
		}
	}
}

// TestChebyshevDefaults: the zero-value knobs resolve to the documented
// defaults — 8 steps, Gershgorin hi (≈2 on a normalized Laplacian), and
// lo = hi/30.
func TestChebyshevDefaults(t *testing.T) {
	l := gridLaplacian(8, 8)
	m, ok := NewChebyshev(l, 0, 0, 0).(*chebPrecond)
	if !ok {
		t.Fatal("NewChebyshev did not return a *chebPrecond")
	}
	if m.steps != chebDefaultSteps {
		t.Errorf("steps = %d, want %d", m.steps, chebDefaultSteps)
	}
	if m.hi < 1.5 || m.hi > 2.5 {
		t.Errorf("Gershgorin hi = %v, want ~2 for a normalized Laplacian", m.hi)
	}
	if math.Abs(m.lo-m.hi/chebDefaultRatio) > 1e-15 {
		t.Errorf("lo = %v, want hi/%d = %v", m.lo, chebDefaultRatio, m.hi/chebDefaultRatio)
	}
	// Explicit knobs are honored.
	e := NewChebyshev(l, 3, 0.25, 1.75).(*chebPrecond)
	if e.steps != 3 || e.lo != 0.25 || e.hi != 1.75 {
		t.Errorf("explicit knobs not preserved: %+v", e)
	}
}

// TestChebyshevSPD: the semi-iteration's operator is a polynomial in L
// that is strictly positive on [0, hi], so M⁻¹ must come out symmetric
// positive definite — Knyazev's requirement for the preconditioner.
func TestChebyshevSPD(t *testing.T) {
	l := gridLaplacian(5, 6)
	n := l.N
	dense := applyToDense(NewChebyshev(l, 0, 0, 0), n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := math.Abs(dense.At(i, j) - dense.At(j, i)); d > 1e-10 {
				t.Fatalf("asymmetry at (%d,%d): %v", i, j, d)
			}
			// Symmetrize round-off before the eigensolve.
			v := (dense.At(i, j) + dense.At(j, i)) / 2
			dense.Set(i, j, v)
			dense.Set(j, i, v)
		}
	}
	vals, _, err := EigenSym(dense)
	if err != nil {
		t.Fatal(err)
	}
	if smallest := vals[len(vals)-1]; smallest <= 0 {
		t.Fatalf("smallest eigenvalue of M⁻¹ = %v, want > 0 (not positive definite)", smallest)
	}
}

// TestChebyshevAmplifiesBottomSpectrum: applying M⁻¹ to an exact bottom
// eigenvector must scale it by far more than it scales a top-spectrum
// vector — the spectral shaping that collapses the LOBPCG iteration count.
func TestChebyshevAmplifiesBottomSpectrum(t *testing.T) {
	l := gridLaplacian(6, 7)
	n := l.N
	vals, vecs, err := EigenSym(l.Dense())
	if err != nil {
		t.Fatal(err)
	}
	m := NewChebyshev(l, 0, 0, 0)
	gain := func(col int) float64 {
		v := [][]float64{make([]float64, n)}
		for r := 0; r < n; r++ {
			v[0][r] = vecs.At(r, col)
		}
		m.Apply(v)
		return math.Sqrt(dot(v[0], v[0]))
	}
	bottom := gain(n - 1) // smallest eigenvalue (dense order is descending)
	top := gain(0)
	if bottom < 4*top {
		t.Fatalf("bottom-mode gain %v vs top-mode gain %v (λ_min=%v λ_max=%v): want ≥4x separation",
			bottom, top, vals[n-1], vals[0])
	}
}

// TestChebyshevCutsIterations is the end-to-end reason the preconditioner
// exists: with identical seeded-random starts, the Chebyshev-preconditioned
// solve must converge in well under half the unpreconditioned iterations.
func TestChebyshevCutsIterations(t *testing.T) {
	l := gridLaplacian(25, 30)
	solve := func(pre Preconditioner) *BottomKResult {
		rng := rand.New(rand.NewSource(5))
		res, err := l.EigenBottomK(6, rng, BottomKOptions{
			Tol: 1e-4, Precond: pre, RandomStart: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := solve(IdentityPrecond{})
	cheb := solve(NewChebyshev(l, 0, 0, 0))
	if 2*cheb.Iters >= plain.Iters {
		t.Fatalf("chebyshev took %d iters vs %d unpreconditioned: want < half", cheb.Iters, plain.Iters)
	}
	for j := range cheb.Values {
		if math.Abs(cheb.Values[j]-plain.Values[j]) > 1e-6 {
			t.Errorf("value %d: cheb %v vs plain %v", j, cheb.Values[j], plain.Values[j])
		}
	}
}

// TestPrecondForMatrix: the coarse-level rebuild preserves each kind —
// Chebyshev re-derives for the coarse operator, Jacobi rebuilds, identity
// stays identity, and unknown kinds fall back to Jacobi.
func TestPrecondForMatrix(t *testing.T) {
	fine := gridLaplacian(10, 10)
	op := coarsen(fine).op
	if _, ok := precondFor(NewChebyshev(fine, 0, 0, 0), op).(*chebPrecond); !ok {
		t.Error("chebyshev did not re-derive as chebyshev on the coarse operator")
	}
	if _, ok := precondFor(NewJacobi(fine), op).(*jacobiPrecond); !ok {
		t.Error("jacobi did not rebuild as jacobi")
	}
	if _, ok := precondFor(IdentityPrecond{}, op).(IdentityPrecond); !ok {
		t.Error("identity did not stay identity")
	}
	if _, ok := precondFor(fakePrecond{}, op).(*jacobiPrecond); !ok {
		t.Error("non-coarsable kind did not fall back to jacobi")
	}
}

type fakePrecond struct{}

func (fakePrecond) Apply([][]float64) {}

// TestPrecondWorkerIndependence: Apply is bitwise identical at every
// worker count for both parallel preconditioner kinds.
func TestPrecondWorkerIndependence(t *testing.T) {
	l := gridLaplacian(12, 13)
	rng := rand.New(rand.NewSource(21))
	mk := func() [][]float64 {
		w := newBlock(6, l.N)
		fillRandom(w, rand.New(rand.NewSource(8)))
		return w
	}
	_ = rng
	for _, build := range []func() Preconditioner{
		func() Preconditioner { return NewJacobi(l) },
		func() Preconditioner { return NewChebyshev(l, 0, 0, 0) },
	} {
		apply := func(workers int) [][]float64 {
			par.SetWorkers(workers)
			defer par.SetWorkers(0)
			w := mk()
			build().Apply(w)
			return w
		}
		ref := apply(1)
		for _, workers := range []int{2, 4, 8} {
			got := apply(workers)
			for j := range ref {
				for r := range ref[j] {
					if got[j][r] != ref[j][r] {
						t.Fatalf("workers=%d: element (%d,%d) differs: %v != %v",
							workers, j, r, got[j][r], ref[j][r])
					}
				}
			}
		}
	}
}
