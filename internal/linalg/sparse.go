package linalg

import (
	"fmt"
	"math"
	"math/rand"

	"elink/internal/par"
)

// SparseSym is a symmetric sparse matrix in adjacency-list form, used for
// the graph affinity matrices of the spectral-clustering baseline.
type SparseSym struct {
	N    int
	Cols [][]int32   // per row: column indices (both triangles stored)
	Vals [][]float64 // matching values
}

// NewSparseSym returns an empty n x n sparse symmetric matrix.
func NewSparseSym(n int) *SparseSym {
	return &SparseSym{N: n, Cols: make([][]int32, n), Vals: make([][]float64, n)}
}

// Set stores value v at (i, j) and (j, i). Duplicate sets accumulate, so
// callers should set each pair once; FinalizeStrict rejects builders
// that set a position twice, and Finalize merges duplicates explicitly
// while converting to the CSR form the sparse spectral engine consumes.
func (s *SparseSym) Set(i, j int, v float64) {
	s.Cols[i] = append(s.Cols[i], int32(j))
	s.Vals[i] = append(s.Vals[i], v)
	if i != j {
		s.Cols[j] = append(s.Cols[j], int32(i))
		s.Vals[j] = append(s.Vals[j], v)
	}
}

// MulVec computes y = S x.
func (s *SparseSym) MulVec(x, y []float64) {
	for i := 0; i < s.N; i++ {
		var sum float64
		cols, vals := s.Cols[i], s.Vals[i]
		for k, j := range cols {
			sum += vals[k] * x[j]
		}
		y[i] = sum
	}
}

// StoredEntries counts the builder's stored entries (both triangles,
// duplicates included) — the cheap nnz estimate the spectral baseline's
// solver decision uses before the builder is finalized.
func (s *SparseSym) StoredEntries() int {
	total := 0
	for _, cols := range s.Cols {
		total += len(cols)
	}
	return total
}

// RowSums returns the per-row sums (the degree vector of an affinity
// matrix).
func (s *SparseSym) RowSums() []float64 {
	out := make([]float64, s.N)
	for i := 0; i < s.N; i++ {
		for _, v := range s.Vals[i] {
			out[i] += v
		}
	}
	return out
}

// Dense materializes the sparse matrix (accumulating duplicates).
func (s *SparseSym) Dense() *Matrix {
	m := NewMatrix(s.N, s.N)
	for i := 0; i < s.N; i++ {
		for k, j := range s.Cols[i] {
			m.Set(i, int(j), m.At(i, int(j))+s.Vals[i][k])
		}
	}
	return m
}

// EigenTopK approximates the k largest-eigenvalue eigenpairs of the
// sparse symmetric matrix. Eigenvalues come back in descending order;
// eigenvectors are the columns of the returned n x k matrix.
//
// The implementation is block subspace iteration with Rayleigh–Ritz
// extraction. A block of k+p vectors is iterated, so eigenvalues with
// multiplicity up to the block size — exactly what near-disconnected
// affinity graphs produce — are resolved correctly, which plain
// single-vector Lanczos cannot do. For small matrices it simply
// densifies and calls the Jacobi solver.
//
// If the iteration budget expires before every requested pair meets
// tolerance, the best-effort Ritz pairs are returned together with a
// *ConvergenceError (wrapping ErrNoConvergence) carrying the per-pair
// residuals — never silently.
func (s *SparseSym) EigenTopK(k int, rng *rand.Rand) ([]float64, *Matrix, error) {
	n := s.N
	if k <= 0 {
		return nil, nil, fmt.Errorf("linalg: EigenTopK requires k >= 1, got %d", k)
	}
	if k > n {
		k = n
	}
	b := k + 8 // oversampling accelerates convergence of the k-th pair
	if b >= n || n <= 64 {
		vals, vecs, err := EigenSym(s.Dense())
		if err != nil {
			return nil, nil, err
		}
		top := NewMatrix(n, k)
		for c := 0; c < k; c++ {
			for r := 0; r < n; r++ {
				top.Set(r, c, vecs.At(r, c))
			}
		}
		return vals[:k], top, nil
	}

	// Gershgorin shift makes the target eigenvalues the largest in
	// magnitude so power iterations converge to them.
	var shift float64
	for i := 0; i < n; i++ {
		var row float64
		for _, v := range s.Vals[i] {
			row += math.Abs(v)
		}
		if row > shift {
			shift = row
		}
	}
	if shift == 0 {
		shift = 1
	}

	// Random orthonormal starting block.
	q := make([][]float64, b)
	for c := range q {
		q[c] = make([]float64, n)
		for r := range q[c] {
			q[c][r] = rng.NormFloat64()
		}
	}
	orthonormalize(q)

	z := make([][]float64, b)
	for c := range z {
		z[c] = make([]float64, n)
	}

	const maxIter = 400
	const tol = 1e-8
	var vals []float64
	var ritz *Matrix
	for iter := 0; iter < maxIter; iter++ {
		// Z = (S + shift I) Q. Columns are independent, so the block
		// matvec fans out over the shared execution layer; every column's
		// arithmetic is the serial order, so results are worker-count
		// independent.
		par.For(b, func(c int) {
			s.MulVec(q[c], z[c])
			for r := 0; r < n; r++ {
				z[c][r] += shift * q[c][r]
			}
		})
		// Rayleigh–Ritz every few iterations (and on the last).
		if iter%4 == 3 || iter == maxIter-1 {
			// T = Qᵀ Z (b x b, symmetric up to round-off). Row i writes
			// (i, j>=i) and mirrors into (j, i) — disjoint across i.
			t := NewMatrix(b, b)
			par.For(b, func(i int) {
				for j := i; j < b; j++ {
					v := dot(q[i], z[j])
					t.Set(i, j, v)
					t.Set(j, i, v)
				}
			})
			tv, tvec, err := EigenSym(t)
			if err != nil {
				return nil, nil, err
			}
			// Rotate the block onto the Ritz basis: Q' = Q V. Each output
			// column accumulates from the (frozen) old block.
			rot := make([][]float64, b)
			par.For(b, func(c int) {
				rot[c] = make([]float64, n)
				for j := 0; j < b; j++ {
					f := tvec.At(j, c)
					if f == 0 {
						continue
					}
					col := q[j]
					dst := rot[c]
					for r := 0; r < n; r++ {
						dst[r] += f * col[r]
					}
				}
			})
			q = rot
			// Convergence: residual of the k leading Ritz pairs, one
			// scratch vector per column so they fan out safely.
			vals = make([]float64, k)
			residuals := make([]float64, k)
			par.For(k, func(c int) {
				y := make([]float64, n)
				s.MulVec(q[c], y)
				lambda := tv[c] - shift
				vals[c] = lambda
				var res float64
				for r := 0; r < n; r++ {
					d := y[r] - lambda*q[c][r]
					res += d * d
				}
				residuals[c] = math.Sqrt(res)
			})
			converged := true
			for c, r := range residuals {
				if r > tol*(math.Abs(vals[c])+1) {
					converged = false
				}
			}
			if converged || iter == maxIter-1 {
				ritz = NewMatrix(n, k)
				for c := 0; c < k; c++ {
					for r := 0; r < n; r++ {
						ritz.Set(r, c, q[c][r])
					}
				}
				if !converged {
					// Surface the iteration-budget expiry instead of the
					// old silent fallthrough: the best-effort Ritz pairs
					// are still returned, with their residuals attached,
					// so the caller decides whether they are usable.
					return vals, ritz, &ConvergenceError{Residuals: residuals, Tol: tol, Iters: maxIter}
				}
				return vals, ritz, nil
			}
			// Continue iterating from the rotated block.
			continue
		}
		copyBlock(q, z)
		orthonormalize(q)
	}
	// Unreachable: the loop returns on its final iteration.
	return vals, ritz, nil
}

func copyBlock(dst, src [][]float64) {
	for c := range dst {
		copy(dst[c], src[c])
	}
}

// orthonormalize runs modified Gram–Schmidt over the block's columns,
// re-randomizing any column that collapses to (numerical) zero.
func orthonormalize(q [][]float64) {
	for c := 0; c < len(q); c++ {
		for prev := 0; prev < c; prev++ {
			f := dot(q[prev], q[c])
			for r := range q[c] {
				q[c][r] -= f * q[prev][r]
			}
		}
		norm := math.Sqrt(dot(q[c], q[c]))
		if norm < 1e-12 {
			// Deterministic re-seed: unit vector on coordinate c keeps the
			// block full rank without consuming external randomness.
			for r := range q[c] {
				q[c][r] = 0
			}
			q[c][c%len(q[c])] = 1
			for prev := 0; prev < c; prev++ {
				f := dot(q[prev], q[c])
				for r := range q[c] {
					q[c][r] -= f * q[prev][r]
				}
			}
			norm = math.Sqrt(dot(q[c], q[c]))
			if norm < 1e-12 {
				norm = 1
			}
		}
		inv := 1 / norm
		for r := range q[c] {
			q[c][r] *= inv
		}
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
