package linalg

import (
	"fmt"
	"math"
	"sort"

	"elink/internal/par"
)

// CSR is a finalized symmetric sparse matrix in compressed-sparse-row
// form: per-row column indices are sorted and duplicate-free, both
// triangles are stored, and the layout is immutable after construction.
// It is the input type of the sparse spectral engine (EigenBottomK,
// Sparsify): the append-with-duplicates SparseSym is the mutable builder,
// Finalize / FinalizeStrict is the one-way door into CSR.
type CSR struct {
	N      int
	RowPtr []int     // len N+1; row i occupies [RowPtr[i], RowPtr[i+1])
	ColIdx []int32   // sorted within each row, no duplicates
	Vals   []float64 // matching values
}

// ErrDuplicateEntry is returned by FinalizeStrict when the builder holds
// more than one entry for the same (i, j) position — the SparseSym.Set
// accumulate-on-duplicate footgun this validation mode exists to catch.
var ErrDuplicateEntry = fmt.Errorf("linalg: duplicate sparse entry")

// Finalize converts the builder into CSR form, sorting each row by
// column and merging duplicate (i, j) entries by summation (matching the
// accumulate semantics MulVec and Dense already had on the raw builder).
func (s *SparseSym) Finalize() *CSR {
	c, _ := s.finalize(false)
	return c
}

// FinalizeStrict is Finalize with duplicate validation: any (i, j)
// position set more than once fails with an error wrapping
// ErrDuplicateEntry instead of silently accumulating.
func (s *SparseSym) FinalizeStrict() (*CSR, error) {
	return s.finalize(true)
}

func (s *SparseSym) finalize(strict bool) (*CSR, error) {
	n := s.N
	c := &CSR{N: n, RowPtr: make([]int, n+1)}
	nnz := 0
	for i := 0; i < n; i++ {
		nnz += len(s.Cols[i])
	}
	c.ColIdx = make([]int32, 0, nnz)
	c.Vals = make([]float64, 0, nnz)
	type ent struct {
		col int32
		val float64
	}
	var row []ent
	for i := 0; i < n; i++ {
		row = row[:0]
		for k, j := range s.Cols[i] {
			row = append(row, ent{col: j, val: s.Vals[i][k]})
		}
		sort.Slice(row, func(a, b int) bool { return row[a].col < row[b].col })
		for k := 0; k < len(row); k++ {
			if k > 0 && row[k].col == row[k-1].col {
				if strict {
					return nil, fmt.Errorf("linalg: FinalizeStrict: position (%d,%d) set more than once: %w",
						i, row[k].col, ErrDuplicateEntry)
				}
				c.Vals[len(c.Vals)-1] += row[k].val
				continue
			}
			c.ColIdx = append(c.ColIdx, row[k].col)
			c.Vals = append(c.Vals, row[k].val)
		}
		c.RowPtr[i+1] = len(c.ColIdx)
	}
	return c, nil
}

// NNZ returns the number of stored entries (both triangles counted).
func (c *CSR) NNZ() int { return len(c.Vals) }

// MulVec computes y = C x.
func (c *CSR) MulVec(x, y []float64) {
	for i := 0; i < c.N; i++ {
		var sum float64
		lo, hi := c.RowPtr[i], c.RowPtr[i+1]
		cols, vals := c.ColIdx[lo:hi], c.Vals[lo:hi]
		for k, j := range cols {
			sum += vals[k] * x[j]
		}
		y[i] = sum
	}
}

// mulVecsGrain is the fixed row-chunk size of the parallel block-SpMM
// path. The chunk layout depends only on (n, grain) — never on the
// worker count — and every output element y[j][i] is computed by exactly
// one chunk with serial per-element arithmetic, so MulVecs is bitwise
// identical for every worker count and bitwise identical to b separate
// MulVec calls.
const mulVecsGrain = 512

// MulVecs computes y[j] = C x[j] for every block column in one pass: the
// row data (RowPtr, ColIdx, Vals) is streamed once per row for the whole
// block instead of once per column, which is the difference between
// re-reading the matrix b times per LOBPCG iteration and reading it once
// (the matrix stream dominates memory traffic at engine scale). Rows fan
// out over internal/par in fixed mulVecsGrain chunks; at one worker the
// kernel runs inline and allocates nothing.
func (c *CSR) MulVecs(x, y [][]float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: MulVecs block shape mismatch: %d inputs, %d outputs", len(x), len(y)))
	}
	if len(x) == 0 {
		return
	}
	if par.Workers() == 1 {
		c.mulVecsRows(0, c.N, x, y)
		return
	}
	par.Chunks(c.N, mulVecsGrain, func(lo, hi int) { c.mulVecsRows(lo, hi, x, y) })
}

// mulVecsRows is the MulVecs kernel over the row range [lo, hi): each
// row's index/value data is read once and applied to four block columns
// at a time. Each column's accumulation runs in ascending-k order — the
// exact arithmetic MulVec performs — so the fused kernel is bitwise
// equivalent to the per-column path.
func (c *CSR) mulVecsRows(lo, hi int, x, y [][]float64) {
	for i := lo; i < hi; i++ {
		a, b := c.RowPtr[i], c.RowPtr[i+1]
		cols, vals := c.ColIdx[a:b], c.Vals[a:b]
		j := 0
		for ; j+4 <= len(x); j += 4 {
			x0, x1, x2, x3 := x[j], x[j+1], x[j+2], x[j+3]
			var s0, s1, s2, s3 float64
			for k, col := range cols {
				v := vals[k]
				s0 += v * x0[col]
				s1 += v * x1[col]
				s2 += v * x2[col]
				s3 += v * x3[col]
			}
			y[j][i], y[j+1][i], y[j+2][i], y[j+3][i] = s0, s1, s2, s3
		}
		for ; j < len(x); j++ {
			xj := x[j]
			var sum float64
			for k, col := range cols {
				sum += vals[k] * xj[col]
			}
			y[j][i] = sum
		}
	}
}

// Diag returns the diagonal entries (zero where a row stores no diagonal
// position).
func (c *CSR) Diag() []float64 {
	out := make([]float64, c.N)
	for i := 0; i < c.N; i++ {
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			if int(c.ColIdx[k]) == i {
				out[i] = c.Vals[k]
				break
			}
		}
	}
	return out
}

// RowSums returns the per-row sums (the weighted degree vector of an
// affinity matrix).
func (c *CSR) RowSums() []float64 {
	out := make([]float64, c.N)
	for i := 0; i < c.N; i++ {
		for _, v := range c.Vals[c.RowPtr[i]:c.RowPtr[i+1]] {
			out[i] += v
		}
	}
	return out
}

// Dense materializes the matrix. Intended for small sizes (tests and the
// solver's dense fallback); an n x n allocation at engine scale is
// exactly what the sparse pipeline exists to avoid.
func (c *CSR) Dense() *Matrix {
	m := NewMatrix(c.N, c.N)
	for i := 0; i < c.N; i++ {
		lo, hi := c.RowPtr[i], c.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			m.Set(i, int(c.ColIdx[k]), c.Vals[k])
		}
	}
	return m
}

// NormalizedLaplacian returns L = I - D^{-1/2} A D^{-1/2} for an
// affinity matrix A with weighted degrees D = diag(RowSums). Rows with
// zero degree (isolated vertices without a self-loop) get an all-zero
// row, so each contributes one zero eigenvalue exactly like a
// disconnected component. The bottom-k eigenvectors of L are the NJW
// embedding: they equal the top-k eigenvectors of D^{-1/2} A D^{-1/2}.
func (c *CSR) NormalizedLaplacian() *CSR {
	n := c.N
	deg := c.RowSums()
	inv := make([]float64, n)
	for i, d := range deg {
		if d > 0 {
			inv[i] = 1 / math.Sqrt(d)
		}
	}
	l := &CSR{N: n, RowPtr: make([]int, n+1)}
	// Each output row is the scaled, negated input row with the diagonal
	// entry merged in (inserting it if A has no self-loop there).
	l.ColIdx = make([]int32, 0, len(c.ColIdx)+n)
	l.Vals = make([]float64, 0, len(c.Vals)+n)
	for i := 0; i < n; i++ {
		lo, hi := c.RowPtr[i], c.RowPtr[i+1]
		diag := false
		for k := lo; k < hi; k++ {
			j := int(c.ColIdx[k])
			v := -c.Vals[k] * inv[i] * inv[j]
			if j == i {
				v += diagOne(deg[i])
				diag = true
			} else if !diag && j > i {
				// The diagonal slot is absent in A; emit it before the
				// first column past it so the row stays sorted.
				if d := diagOne(deg[i]); d != 0 {
					l.ColIdx = append(l.ColIdx, int32(i))
					l.Vals = append(l.Vals, d)
				}
				diag = true
			}
			l.ColIdx = append(l.ColIdx, int32(j))
			l.Vals = append(l.Vals, v)
		}
		if !diag {
			if d := diagOne(deg[i]); d != 0 {
				l.ColIdx = append(l.ColIdx, int32(i))
				l.Vals = append(l.Vals, d)
			}
		}
		l.RowPtr[i+1] = len(l.ColIdx)
	}
	return l
}

// diagOne is the identity contribution of the normalized Laplacian's
// diagonal: 1 for connected rows, 0 for zero-degree rows (Chung's
// convention, which keeps isolated vertices in the zero eigenspace).
func diagOne(deg float64) float64 {
	if deg > 0 {
		return 1
	}
	return 0
}
