package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func denseToSparse(a *Matrix) *SparseSym {
	s := NewSparseSym(a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := i; j < a.Cols; j++ {
			if v := a.At(i, j); v != 0 {
				s.Set(i, j, v)
			}
		}
	}
	return s
}

func randomSymmetric(n int, rng *rand.Rand) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

func TestSparseMulVec(t *testing.T) {
	s := NewSparseSym(3)
	s.Set(0, 1, 2)
	s.Set(1, 2, 3)
	s.Set(2, 2, 5)
	x := []float64{1, 1, 1}
	y := make([]float64, 3)
	s.MulVec(x, y)
	want := []float64{2, 5, 8}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	sums := s.RowSums()
	for i := range want {
		if sums[i] != want[i] {
			t.Errorf("RowSums[%d] = %v, want %v", i, sums[i], want[i])
		}
	}
}

func TestSparseTopKMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := randomSymmetric(30, rng)
	vals, _, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	sp := denseToSparse(a)
	lv, _, err := sp.EigenTopK(5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if math.Abs(lv[i]-vals[i]) > 1e-6 {
			t.Errorf("lanczos eigenvalue %d = %v, jacobi = %v", i, lv[i], vals[i])
		}
	}
}

func TestSparseTopKRitzVectorsAreEigenvectors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomSymmetric(25, rng)
	sp := denseToSparse(a)
	vals, vecs, err := sp.EigenTopK(4, rng)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		x := make([]float64, 25)
		for r := range x {
			x[r] = vecs.At(r, c)
		}
		y := make([]float64, 25)
		sp.MulVec(x, y)
		for r := range x {
			if math.Abs(y[r]-vals[c]*x[r]) > 1e-5 {
				t.Fatalf("Ritz pair %d: residual %v at row %d", c, y[r]-vals[c]*x[r], r)
			}
		}
	}
}

func TestSparseTopKDegenerateSpectrum(t *testing.T) {
	// Identity-like matrix: Krylov space collapses after one step; the
	// solver should still return without error.
	s := NewSparseSym(10)
	for i := 0; i < 10; i++ {
		s.Set(i, i, 2)
	}
	rng := rand.New(rand.NewSource(1))
	vals, _, err := s.EigenTopK(3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-2) > 1e-9 {
		t.Errorf("eigenvalue = %v, want 2", vals[0])
	}
}

func TestSparseTopKClampsK(t *testing.T) {
	s := NewSparseSym(3)
	s.Set(0, 0, 1)
	s.Set(1, 1, 2)
	s.Set(2, 2, 3)
	rng := rand.New(rand.NewSource(2))
	vals, vecs, err := s.EigenTopK(10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vecs.Cols != 3 {
		t.Errorf("got %d eigenpairs, want clamped to 3", len(vals))
	}
}

func TestSparseTopKRejectsBadK(t *testing.T) {
	s := NewSparseSym(3)
	if _, _, err := s.EigenTopK(0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("k=0 accepted")
	}
}

// TestSparseTopKSurfacesNonConvergence pins the bugfix for the silent
// maxIter fallthrough: a near-multiple spectrum whose leading eigenvalues
// are separated by ~1e-4 converges far too slowly for the iteration
// budget once the Gershgorin shift flattens the ratios, and the solver
// used to return the unconverged Ritz pairs as if they were fine. Now it
// must return them alongside a ConvergenceError carrying the residuals.
func TestSparseTopKSurfacesNonConvergence(t *testing.T) {
	// Diagonal matrix with 100 eigenvalues packed into [1 - 1e-2, 1]:
	// after the shift (=1) the per-iteration contraction toward the
	// leading pair is ~(2-9e-4)/2, which cannot reach tol=1e-8 within
	// the 400-iteration budget.
	n := 100
	s := NewSparseSym(n)
	for i := 0; i < n; i++ {
		s.Set(i, i, 1-float64(i)*1e-4)
	}
	rng := rand.New(rand.NewSource(8))
	vals, vecs, err := s.EigenTopK(1, rng)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("unconverged solve returned err = %v, want ErrNoConvergence", err)
	}
	var ce *ConvergenceError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T does not unwrap to *ConvergenceError", err)
	}
	if len(ce.Residuals) != 1 || ce.Residuals[0] == 0 {
		t.Errorf("residual diagnostics missing: %+v", ce.Residuals)
	}
	// The best-effort pair still comes back for callers that accept a
	// documented tolerance.
	if len(vals) != 1 || vecs == nil || vecs.Cols != 1 {
		t.Fatalf("best-effort result missing: vals=%v vecs=%v", vals, vecs)
	}
	if vals[0] < 0.9 || vals[0] > 1.1 {
		t.Errorf("best-effort eigenvalue %v wildly off the [0.99, 1] cluster", vals[0])
	}
}

func TestSparseTopKResolvesMultiplicity(t *testing.T) {
	// Three disconnected cliques: the top eigenvalue has multiplicity 3.
	// Single-vector Lanczos finds only one of the three eigenvectors;
	// block subspace iteration must find all of them.
	n := 90
	s := NewSparseSym(n)
	for c := 0; c < 3; c++ {
		base := c * 30
		for i := 0; i < 30; i++ {
			for j := i; j < 30; j++ {
				s.Set(base+i, base+j, 1)
			}
		}
	}
	rng := rand.New(rand.NewSource(6))
	vals, vecs, err := s.EigenTopK(3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if math.Abs(vals[i]-30) > 1e-6 {
			t.Fatalf("eigenvalue %d = %v, want 30 (triple)", i, vals[i])
		}
	}
	// Each component's indicator must be representable: for every clique,
	// some eigenvector has essentially constant support on it.
	for c := 0; c < 3; c++ {
		base := c * 30
		found := false
		for col := 0; col < 3; col++ {
			if math.Abs(vecs.At(base, col)) > 0.05 {
				found = true
			}
		}
		if !found {
			t.Fatalf("no top eigenvector has support on component %d", c)
		}
	}
}
