package linalg

import (
	"fmt"
	"math"
	"sort"

	"elink/internal/par"
)

// parEigenCutoff is the matrix size at and above which EigenSym switches
// from the plain serial sweep to the phase-parallel sweep. It is a
// variable only so tests can lower it; the cutoff choice never affects
// correctness, but the two paths may differ in the last bits (the
// parallel path's off-diagonal norm is a fixed-chunk reduction), so path
// selection depends only on n — never on the worker count — keeping
// results bitwise identical across worker counts at every size.
var parEigenCutoff = 256

// eigenNormGrain is the fixed row-chunk size of the parallel path's
// off-diagonal norm reduction. Partial sums are combined in chunk order,
// so the norm depends only on this constant, not on the worker count.
const eigenNormGrain = 256

// eigenVecLogCap bounds the deferred eigenvector rotation log (32 bytes
// per rotation) between parallel flushes.
const eigenVecLogCap = 4096

// EigenOptions tunes EigenSymOpt. The zero value reproduces EigenSym.
type EigenOptions struct {
	// MaxSweeps caps the cyclic Jacobi sweeps (0 = 100, the default
	// convergence budget). The benchmark harness uses small caps to time
	// per-sweep cost at sizes where full convergence takes minutes.
	MaxSweeps int
	// Workers fixes the parallel path's worker count (0 = par.Workers()).
	// Results are bitwise identical for every value.
	Workers int
	// ForceSerial routes the decomposition through the plain serial sweep
	// regardless of size. The parallel benchmark uses it for its baseline;
	// note the serial path's off-diagonal norm groups differently, so
	// results may differ from the parallel path in the last bits.
	ForceSerial bool
}

// EigenSym computes the full eigendecomposition of a symmetric matrix
// using the cyclic Jacobi rotation method. It returns eigenvalues in
// descending order and the matching eigenvectors as the columns of the
// returned matrix. The input is not modified.
//
// Jacobi is O(n^3) per sweep and converges in a handful of sweeps for
// the graph Laplacians used by the spectral-clustering baseline. At
// n >= parEigenCutoff the sweep runs on the shared parallel execution
// layer (internal/par): the rotation *order* is exactly the serial
// cyclic order — only the independent element updates inside each (p,q)
// step fan out — so eigenvalues and eigenvectors are bitwise identical
// for any worker count.
func EigenSym(a *Matrix) (values []float64, vectors *Matrix, err error) {
	return EigenSymOpt(a, EigenOptions{})
}

// EigenSymOpt is EigenSym with explicit options.
func EigenSymOpt(a *Matrix, opt EigenOptions) (values []float64, vectors *Matrix, err error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, fmt.Errorf("linalg: EigenSym requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if err := checkSymmetric(a); err != nil {
		return nil, nil, err
	}
	maxSweeps := opt.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = 100
	}

	m := a.Clone()
	v := Identity(n)

	if n >= parEigenCutoff && !opt.ForceSerial {
		jacobiSweepsPar(m, v, n, maxSweeps, opt.Workers)
	} else {
		jacobiSweepsSerial(m, v, n, maxSweeps)
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = m.At(i, i)
	}
	// Sort eigenvalues descending, permuting eigenvector columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] > values[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, nil
}

// checkSymmetric validates symmetry under a relative tolerance: the
// element pair (i, j) may differ by up to 1e-9 relative to its own
// magnitude (with an absolute floor of 1e-9 near zero), so well-scaled
// Laplacians with large edge weights are not falsely rejected the way an
// absolute threshold rejects them. On failure the error reports the
// row/column of the worst relative violation.
func checkSymmetric(a *Matrix) error {
	const tol = 1e-9
	n := a.Rows
	worst, wi, wj := 0.0, -1, -1
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			aij, aji := a.At(i, j), a.At(j, i)
			scale := math.Max(1, math.Max(math.Abs(aij), math.Abs(aji)))
			if rel := math.Abs(aij-aji) / scale; rel > worst {
				worst, wi, wj = rel, i, j
			}
		}
	}
	if worst > tol {
		return fmt.Errorf("linalg: EigenSym requires a symmetric matrix; worst violation at (%d,%d): a[%d][%d]=%v != a[%d][%d]=%v (relative difference %.3g > %g)",
			wi, wj, wi, wj, a.At(wi, wj), wj, wi, a.At(wj, wi), worst, tol)
	}
	return nil
}

// jacobiParams computes the rotation (c, s) annihilating m[p][q].
// Returns ok=false when the element is already negligible.
func jacobiParams(m *Matrix, p, q int) (c, s float64, ok bool) {
	apq := m.At(p, q)
	if math.Abs(apq) < 1e-14 {
		return 0, 0, false
	}
	app, aqq := m.At(p, p), m.At(q, q)
	theta := (aqq - app) / (2 * apq)
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(1+theta*theta))
	} else {
		t = -1 / (-theta + math.Sqrt(1+theta*theta))
	}
	c = 1 / math.Sqrt(1+t*t)
	s = t * c
	return c, s, true
}

// jacobiSweepsSerial is the original single-core sweep loop, kept
// verbatim as the small-matrix fast path (and the reference the parallel
// path must reproduce rotation for rotation).
func jacobiSweepsSerial(m, v *Matrix, n, maxSweeps int) {
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(m)
		if off < 1e-11 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				c, s, ok := jacobiParams(m, p, q)
				if !ok {
					continue
				}
				rotate(m, v, p, q, c, s)
			}
		}
	}
}

// rotate applies the Jacobi rotation J(p,q,c,s) to m (two-sided) and
// accumulates it into the eigenvector matrix v (one-sided).
func rotate(m, v *Matrix, p, q int, c, s float64) {
	n := m.Rows
	for k := 0; k < n; k++ {
		mkp, mkq := m.At(k, p), m.At(k, q)
		m.Set(k, p, c*mkp-s*mkq)
		m.Set(k, q, s*mkp+c*mkq)
	}
	for k := 0; k < n; k++ {
		mpk, mqk := m.At(p, k), m.At(q, k)
		m.Set(p, k, c*mpk-s*mqk)
		m.Set(q, k, s*mpk+c*mqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

func offDiagNorm(m *Matrix) float64 {
	var sum float64
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := m.At(i, j)
			sum += 2 * v * v
		}
	}
	return math.Sqrt(sum)
}

// vecRotation is one deferred eigenvector update. The two-sided matrix
// updates must be applied eagerly (later rotation parameters read the
// matrix), but v is write-only until the decomposition ends, so its
// rotations are logged and replayed in batches: each row of v applies
// the whole log in rotation order, rows fan out across the pool. Per-row
// operation order is exactly the serial order, so the replay is bitwise
// identical to rotating eagerly.
type vecRotation struct {
	p, q int
	c, s float64
}

// parJacobi carries one decomposition's parallel sweep state so the pool
// phase bodies are method values (bound once, no per-rotation closure
// allocations).
type parJacobi struct {
	m, v *Matrix
	n    int
	pool *par.Pool
	// Current rotation, read by the phase bodies.
	p, q int
	c, s float64
	// Deferred eigenvector rotations.
	vlog []vecRotation
	// Off-diagonal norm partials, one per fixed eigenNormGrain chunk.
	normPartial []float64
}

// jacobiSweepsPar runs the cyclic Jacobi sweeps with the element updates
// inside each rotation fanned out over a spin pool. Rotation order, the
// per-element arithmetic, and the convergence test are identical for
// every worker count (including 1), so the decomposition is bitwise
// reproducible regardless of -j.
func jacobiSweepsPar(m, v *Matrix, n, maxSweeps, workers int) {
	if workers <= 0 {
		workers = par.Workers()
	}
	j := &parJacobi{
		m: m, v: v, n: n,
		pool:        par.NewPool(workers),
		vlog:        make([]vecRotation, 0, eigenVecLogCap),
		normPartial: make([]float64, (n+eigenNormGrain-1)/eigenNormGrain),
	}
	defer j.pool.Close()

	colPhase, rowPhase := j.colPhase, j.rowPhase
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if j.offDiagNorm() < 1e-11 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				c, s, ok := jacobiParams(m, p, q)
				if !ok {
					continue
				}
				j.p, j.q, j.c, j.s = p, q, c, s
				j.pool.Run(colPhase)
				j.pool.Run(rowPhase)
				j.vlog = append(j.vlog, vecRotation{p: p, q: q, c: c, s: s})
				if len(j.vlog) == eigenVecLogCap {
					j.flushVecLog()
				}
			}
		}
	}
	j.flushVecLog()
}

// colPhase applies the current rotation to columns p and q (the serial
// loop over rows k). Each worker owns a contiguous row range; every
// element's arithmetic matches the serial path exactly.
func (j *parJacobi) colPhase(w int) {
	m, p, q, c, s := j.m, j.p, j.q, j.c, j.s
	lo, hi := par.Span(j.n, j.pool.Workers(), w)
	for k := lo; k < hi; k++ {
		mkp, mkq := m.At(k, p), m.At(k, q)
		m.Set(k, p, c*mkp-s*mkq)
		m.Set(k, q, s*mkp+c*mkq)
	}
}

// rowPhase applies the current rotation to rows p and q (the serial loop
// over columns k), after colPhase has fully completed.
func (j *parJacobi) rowPhase(w int) {
	m, p, q, c, s := j.m, j.p, j.q, j.c, j.s
	lo, hi := par.Span(j.n, j.pool.Workers(), w)
	for k := lo; k < hi; k++ {
		mpk, mqk := m.At(p, k), m.At(q, k)
		m.Set(p, k, c*mpk-s*mqk)
		m.Set(q, k, s*mpk+c*mqk)
	}
}

// flushVecLog replays the deferred eigenvector rotations: each worker
// applies the whole log, in order, to its own rows of v. A row of v is
// touched by no other state, so the replay is embarrassingly parallel
// and bitwise identical to the eager serial update.
func (j *parJacobi) flushVecLog() {
	if len(j.vlog) == 0 {
		return
	}
	j.pool.Run(j.vecPhase)
	j.vlog = j.vlog[:0]
}

func (j *parJacobi) vecPhase(w int) {
	v, log := j.v, j.vlog
	lo, hi := par.Span(j.n, j.pool.Workers(), w)
	for k := lo; k < hi; k++ {
		row := v.Data[k*v.Cols : (k+1)*v.Cols]
		for _, r := range log {
			vkp, vkq := row[r.p], row[r.q]
			row[r.p] = r.c*vkp - r.s*vkq
			row[r.q] = r.s*vkp + r.c*vkq
		}
	}
}

// offDiagNorm computes the off-diagonal Frobenius norm as a fixed-chunk
// reduction: workers fill per-chunk partials (each partial's summation
// order matches the serial row-major scan), and the driver combines them
// in chunk order. The result depends only on eigenNormGrain — not on the
// worker count — so the sweep-termination decision, and therefore the
// whole decomposition, is worker-count independent.
func (j *parJacobi) offDiagNorm() float64 {
	j.pool.Run(j.normPhase)
	var sum float64
	for _, p := range j.normPartial {
		sum += p
	}
	return math.Sqrt(sum)
}

func (j *parJacobi) normPhase(w int) {
	m, n, workers := j.m, j.n, j.pool.Workers()
	for chunk := w; chunk < len(j.normPartial); chunk += workers {
		lo := chunk * eigenNormGrain
		hi := lo + eigenNormGrain
		if hi > n {
			hi = n
		}
		var sum float64
		for i := lo; i < hi; i++ {
			for jj := i + 1; jj < n; jj++ {
				v := m.At(i, jj)
				sum += 2 * v * v
			}
		}
		j.normPartial[chunk] = sum
	}
}
