package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the full eigendecomposition of a symmetric matrix using
// the cyclic Jacobi rotation method. It returns eigenvalues in descending
// order and the matching eigenvectors as the columns of the returned
// matrix. The input is not modified.
//
// Jacobi is O(n^3) per sweep and converges in a handful of sweeps for the
// graph Laplacians used by the spectral-clustering baseline (n up to a few
// thousand), which is the only consumer in this repository.
func EigenSym(a *Matrix) (values []float64, vectors *Matrix, err error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, fmt.Errorf("linalg: EigenSym requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > 1e-9 {
				return nil, nil, fmt.Errorf("linalg: EigenSym requires a symmetric matrix (a[%d][%d]=%v != a[%d][%d]=%v)",
					i, j, a.At(i, j), j, i, a.At(j, i))
			}
		}
	}

	m := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(m)
		if off < 1e-11 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-14 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(m, v, p, q, c, s)
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = m.At(i, i)
	}
	// Sort eigenvalues descending, permuting eigenvector columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] > values[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, nil
}

// rotate applies the Jacobi rotation J(p,q,c,s) to m (two-sided) and
// accumulates it into the eigenvector matrix v (one-sided).
func rotate(m, v *Matrix, p, q int, c, s float64) {
	n := m.Rows
	for k := 0; k < n; k++ {
		mkp, mkq := m.At(k, p), m.At(k, q)
		m.Set(k, p, c*mkp-s*mkq)
		m.Set(k, q, s*mkp+c*mkq)
	}
	for k := 0; k < n; k++ {
		mpk, mqk := m.At(p, k), m.At(q, k)
		m.Set(p, k, c*mpk-s*mqk)
		m.Set(q, k, s*mpk+c*mqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

func offDiagNorm(m *Matrix) float64 {
	var sum float64
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := m.At(i, j)
			sum += 2 * v * v
		}
	}
	return math.Sqrt(sum)
}
