package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("At returned wrong elements")
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Fatal("Set did not stick")
	}
	tr := m.T()
	if tr.At(0, 1) != 3 || tr.At(1, 0) != 2 {
		t.Fatal("transpose wrong")
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestMatrixMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got := a.Mul(b)
	want := FromRows([][]float64{{58, 64}, {139, 154}})
	if got.MaxAbsDiff(want) > 1e-12 {
		t.Errorf("Mul = %v, want %v", got.Data, want.Data)
	}
}

func TestMatrixMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{5, 6})
	if got[0] != 17 || got[1] != 39 {
		t.Errorf("MulVec = %v, want [17 39]", got)
	}
}

func TestMatrixAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 5}})
	if got := a.Add(b); got.At(0, 0) != 4 || got.At(0, 1) != 7 {
		t.Error("Add wrong")
	}
	if got := b.Sub(a); got.At(0, 0) != 2 || got.At(0, 1) != 3 {
		t.Error("Sub wrong")
	}
	if got := a.Scale(3); got.At(0, 1) != 6 {
		t.Error("Scale wrong")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := Solve(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [7 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := FromRows([][]float64{{4, 1}, {1, 3}})
	b := []float64{1, 2}
	orig := a.Clone()
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if a.MaxAbsDiff(orig) != 0 {
		t.Error("Solve mutated the input matrix")
	}
	if b[0] != 1 || b[1] != 2 {
		t.Error("Solve mutated the rhs")
	}
}

func TestInverse(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	if prod.MaxAbsDiff(Identity(2)) > 1e-9 {
		t.Errorf("a * a^-1 = %v, want identity", prod.Data)
	}
}

func TestInverseSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := Inverse(a); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

// Property: for random well-conditioned systems, Solve produces x with
// A x == b to high precision.
func TestSolveResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		// Diagonal dominance keeps the system well conditioned.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		res := a.MulVec(x)
		for i := range res {
			if math.Abs(res[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 1}})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-9 || math.Abs(vals[1]-1) > 1e-9 {
		t.Errorf("eigenvalues = %v, want [3 1]", vals)
	}
	if math.Abs(math.Abs(vecs.At(0, 0))-1) > 1e-9 {
		t.Errorf("first eigenvector = [%v %v], want e1", vecs.At(0, 0), vecs.At(1, 0))
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-9 || math.Abs(vals[1]-1) > 1e-9 {
		t.Errorf("eigenvalues = %v, want [3 1]", vals)
	}
	// Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
	r := vecs.At(0, 0) / vecs.At(1, 0)
	if math.Abs(r-1) > 1e-8 {
		t.Errorf("eigenvector ratio = %v, want 1", r)
	}
}

func TestEigenSymRejectsAsymmetric(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, _, err := EigenSym(a); err == nil {
		t.Error("EigenSym accepted an asymmetric matrix")
	}
}

// Property: A v = lambda v for every eigenpair of a random symmetric matrix,
// and eigenvalues come out sorted descending.
func TestEigenSymReconstructionProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(7)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := r.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := EigenSym(a)
		if err != nil {
			return false
		}
		for c := 0; c < n; c++ {
			if c > 0 && vals[c] > vals[c-1]+1e-9 {
				return false
			}
			v := make([]float64, n)
			for i := 0; i < n; i++ {
				v[i] = vecs.At(i, c)
			}
			av := a.MulVec(v)
			for i := 0; i < n; i++ {
				if math.Abs(av[i]-vals[c]*v[i]) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float64, 0, 40)
	for i := 0; i < 20; i++ {
		rows = append(rows, []float64{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1})
	}
	for i := 0; i < 20; i++ {
		rows = append(rows, []float64{10 + rng.NormFloat64()*0.1, 10 + rng.NormFloat64()*0.1})
	}
	assign := KMeans(FromRows(rows), 2, rng, 50)
	first := assign[0]
	for i := 1; i < 20; i++ {
		if assign[i] != first {
			t.Fatalf("point %d not in same cluster as point 0", i)
		}
	}
	for i := 20; i < 40; i++ {
		if assign[i] == first {
			t.Fatalf("point %d should be in the other cluster", i)
		}
	}
}

func TestKMeansKGreaterOrEqualN(t *testing.T) {
	pts := FromRows([][]float64{{0}, {1}, {2}})
	assign := KMeans(pts, 5, rand.New(rand.NewSource(1)), 10)
	seen := map[int]bool{}
	for _, a := range assign {
		if seen[a] {
			t.Fatal("k >= n should give each point its own cluster")
		}
		seen[a] = true
	}
}

func TestKMeansAssignmentInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := NewMatrix(30, 2)
	for i := range pts.Data {
		pts.Data[i] = rng.Float64()
	}
	k := 4
	assign := KMeans(pts, k, rng, 25)
	if len(assign) != 30 {
		t.Fatalf("len(assign) = %d, want 30", len(assign))
	}
	for i, a := range assign {
		if a < 0 || a >= k {
			t.Fatalf("assign[%d] = %d out of range [0,%d)", i, a, k)
		}
	}
}
