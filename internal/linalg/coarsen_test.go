package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// TestHeavyEdgeMatchProperties: the matching is a valid involution (i and
// match[i] point at each other), matched pairs share an edge, and on a
// path graph the ascending greedy sweep pairs (0,1)(2,3)... exactly.
func TestHeavyEdgeMatchProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := NewSparseSym(60)
	for e := 0; e < 150; e++ {
		i, j := rng.Intn(60), rng.Intn(60)
		if i != j {
			s.Set(i, j, 1+rng.Float64())
		}
	}
	c := s.Finalize()
	match := heavyEdgeMatch(c)
	for i, m := range match {
		if match[m] != i {
			t.Fatalf("match not symmetric: match[%d]=%d but match[%d]=%d", i, m, m, match[m])
		}
		if m != i {
			found := false
			for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
				if int(c.ColIdx[k]) == m {
					found = true
				}
			}
			if !found {
				t.Fatalf("matched pair (%d,%d) shares no edge", i, m)
			}
		}
	}

	// Path graph: deterministic (0,1)(2,3)... pairing.
	p := NewSparseSym(7)
	for i := 0; i < 6; i++ {
		p.Set(i, i+1, 1)
	}
	pm := heavyEdgeMatch(p.Finalize())
	want := []int{1, 0, 3, 2, 5, 4, 6} // trailing odd vertex stays single
	for i := range want {
		if pm[i] != want[i] {
			t.Fatalf("path match = %v, want %v", pm, want)
		}
	}
}

// TestCoarsenGalerkin pins the coarse operator against a dense Pᵀ L P
// reference, checks the prolongator's columns are orthonormal (so the
// coarse problem stays a standard eigenproblem), and checks prolong is
// exactly multiplication by P.
func TestCoarsenGalerkin(t *testing.T) {
	l := gridLaplacian(6, 8)
	n := l.N
	lvl := coarsen(l)
	nc := lvl.op.N
	if nc >= n || nc < n/3 {
		t.Fatalf("coarse size %d out of range for n=%d", nc, n)
	}

	// Dense prolongator from the aggregate map.
	p := NewMatrix(n, nc)
	for i := 0; i < n; i++ {
		p.Set(i, lvl.coarse[i], lvl.scale[lvl.coarse[i]])
	}
	// PᵀP = I (orthonormal columns).
	for a := 0; a < nc; a++ {
		for b := 0; b < nc; b++ {
			var v float64
			for r := 0; r < n; r++ {
				v += p.At(r, a) * p.At(r, b)
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(v-want) > 1e-12 {
				t.Fatalf("PᵀP[%d,%d] = %v, want %v", a, b, v, want)
			}
		}
	}
	// Lc = Pᵀ L P.
	ld := l.Dense()
	want := NewMatrix(nc, nc)
	for a := 0; a < nc; a++ {
		for b := 0; b < nc; b++ {
			var v float64
			for r := 0; r < n; r++ {
				for cc := 0; cc < n; cc++ {
					v += p.At(r, a) * ld.At(r, cc) * p.At(cc, b)
				}
			}
			want.Set(a, b, v)
		}
	}
	if d := lvl.op.Dense().MaxAbsDiff(want); d > 1e-10 {
		t.Fatalf("Galerkin operator differs from dense PᵀLP by %v", d)
	}
	// Coarse rows stay sorted and duplicate-free (the CSR contract).
	for i := 0; i < nc; i++ {
		cols := lvl.op.ColIdx[lvl.op.RowPtr[i]:lvl.op.RowPtr[i+1]]
		for k := 1; k < len(cols); k++ {
			if cols[k] <= cols[k-1] {
				t.Fatalf("coarse row %d not strictly sorted: %v", i, cols)
			}
		}
	}

	// prolong == multiply by P.
	cv := newBlock(2, nc)
	fillRandom(cv, rand.New(rand.NewSource(4)))
	fv := newBlock(2, n)
	lvl.prolong(cv, fv)
	for j := range fv {
		for i := 0; i < n; i++ {
			var v float64
			for a := 0; a < nc; a++ {
				v += p.At(i, a) * cv[j][a]
			}
			if math.Abs(fv[j][i]-v) > 1e-14 {
				t.Fatalf("prolong[%d][%d] = %v, want %v", j, i, fv[j][i], v)
			}
		}
	}
}

// TestCoarsenDeterministic: two coarsenings of the same matrix are
// structurally identical — the warm-start hierarchy depends only on the
// matrix.
func TestCoarsenDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := NewSparseSym(200)
	for e := 0; e < 700; e++ {
		i, j := rng.Intn(200), rng.Intn(200)
		if i != j {
			s.Set(i, j, rng.Float64())
		}
	}
	c := s.Finalize()
	a, b := coarsen(c), coarsen(c)
	if a.op.N != b.op.N {
		t.Fatalf("coarse sizes differ: %d vs %d", a.op.N, b.op.N)
	}
	for i := range a.coarse {
		if a.coarse[i] != b.coarse[i] {
			t.Fatalf("aggregate map differs at %d", i)
		}
	}
	for k := range a.op.Vals {
		if a.op.Vals[k] != b.op.Vals[k] || a.op.ColIdx[k] != b.op.ColIdx[k] {
			t.Fatalf("coarse operator differs at entry %d", k)
		}
	}
}
