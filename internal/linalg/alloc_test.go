package linalg

import (
	"math/rand"
	"testing"

	"elink/internal/par"
)

// The zero-alloc contract: at one worker the fused SpMM kernel, the
// preconditioner Apply paths, and the steady-state LOBPCG loop perform no
// allocations. These are regression tests for the workspace-pooling
// design — a new allocation on any of these paths shows up here long
// before it shows up as GC pressure at engine scale.

func TestMulVecsZeroAlloc(t *testing.T) {
	par.SetWorkers(1)
	defer par.SetWorkers(0)
	c := randomCSR(t, 800, 3000, 7)
	x := newBlock(6, c.N)
	fillRandom(x, rand.New(rand.NewSource(1)))
	y := newBlock(6, c.N)
	if allocs := testing.AllocsPerRun(20, func() { c.MulVecs(x, y) }); allocs != 0 {
		t.Fatalf("MulVecs allocates %.1f per call at one worker, want 0", allocs)
	}
}

func TestPrecondApplyZeroAlloc(t *testing.T) {
	par.SetWorkers(1)
	defer par.SetWorkers(0)
	l := gridLaplacian(20, 20)
	w := newBlock(6, l.N)
	for _, tc := range []struct {
		name string
		pre  Preconditioner
	}{
		{"jacobi", NewJacobi(l)},
		{"chebyshev", NewChebyshev(l, 0, 0, 0)},
	} {
		name, pre := tc.name, tc.pre
		fillRandom(w, rand.New(rand.NewSource(3)))
		pre.Apply(w) // warm-up: chebyshev sizes its scratch blocks lazily
		if allocs := testing.AllocsPerRun(10, func() { pre.Apply(w) }); allocs != 0 {
			t.Fatalf("%s Apply allocates %.1f per call at one worker, want 0", name, allocs)
		}
	}
}

// TestLobpcgLoopZeroAlloc pins the steady-state loop indirectly: two
// starved solves differing only in iteration budget must allocate exactly
// the same amount, so each extra iteration costs zero allocations. (The
// per-solve setup — workspace pools, the result, the convergence error —
// allocates identically on both sides and cancels out.)
func TestLobpcgLoopZeroAlloc(t *testing.T) {
	par.SetWorkers(1)
	defer par.SetWorkers(0)
	l := gridLaplacian(20, 25)
	solveAllocs := func(maxIter int) float64 {
		return testing.AllocsPerRun(3, func() {
			rng := rand.New(rand.NewSource(42))
			_, _ = l.EigenBottomK(6, rng, BottomKOptions{
				MaxIter: maxIter, Tol: 1e-14, RandomStart: true,
				Precond: NewChebyshev(l, 0, 0, 0),
			})
		})
	}
	short, long := solveAllocs(3), solveAllocs(40)
	// A couple of objects of jitter come from the runtime itself; what
	// this pins is that 37 extra iterations cost ~0 allocations — one
	// object per iteration would read as ≥37 here.
	if long-short > 2 {
		t.Fatalf("37 extra iterations allocated %.1f objects (%.1f vs %.1f): steady-state loop is not zero-alloc",
			long-short, long, short)
	}
}
