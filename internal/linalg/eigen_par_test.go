package linalg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"elink/internal/par"
)

// randomSym builds a random symmetric matrix resembling the normalized
// affinity Laplacians the spectral baseline feeds the solver.
func randomSym(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1+rng.Float64())
		for j := i + 1; j < n; j++ {
			v := rng.NormFloat64() / float64(n)
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// TestEigenParBitIdentical pins the tentpole determinism contract: the
// parallel Jacobi path produces bitwise identical eigenvalues and
// eigenvectors for every worker count, including 1.
func TestEigenParBitIdentical(t *testing.T) {
	old := parEigenCutoff
	parEigenCutoff = 64 // force the parallel path at test-friendly sizes
	defer func() { parEigenCutoff = old }()

	for _, n := range []int{64, 130} {
		a := randomSym(n, int64(n))
		refVals, refVecs, err := EigenSymOpt(a, EigenOptions{Workers: 1})
		if err != nil {
			t.Fatalf("n=%d workers=1: %v", n, err)
		}
		for _, workers := range []int{2, 3, 4, 8} {
			vals, vecs, err := EigenSymOpt(a, EigenOptions{Workers: workers})
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			for i := range vals {
				if vals[i] != refVals[i] {
					t.Fatalf("n=%d workers=%d: eigenvalue %d differs: %v != %v (bit-identity broken)",
						n, workers, i, vals[i], refVals[i])
				}
			}
			for i := range vecs.Data {
				if vecs.Data[i] != refVecs.Data[i] {
					t.Fatalf("n=%d workers=%d: eigenvector element %d differs: %v != %v (bit-identity broken)",
						n, workers, i, vecs.Data[i], refVecs.Data[i])
				}
			}
		}
	}
}

// TestEigenParMatchesSerial checks the parallel path against the serial
// reference numerically: same spectrum, residuals at solver tolerance.
func TestEigenParMatchesSerial(t *testing.T) {
	const n = 96
	a := randomSym(n, 7)

	serialVals, _, err := EigenSym(a) // n < cutoff: serial path
	if err != nil {
		t.Fatal(err)
	}

	old := parEigenCutoff
	parEigenCutoff = 64
	defer func() { parEigenCutoff = old }()
	parVals, parVecs, err := EigenSymOpt(a, EigenOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serialVals {
		if math.Abs(serialVals[i]-parVals[i]) > 1e-8 {
			t.Fatalf("eigenvalue %d: serial %v vs parallel %v", i, serialVals[i], parVals[i])
		}
	}
	// Residual ||A v - λ v|| for a few leading pairs.
	for c := 0; c < 5; c++ {
		var res float64
		for r := 0; r < n; r++ {
			var av float64
			for k := 0; k < n; k++ {
				av += a.At(r, k) * parVecs.At(k, c)
			}
			d := av - parVals[c]*parVecs.At(r, c)
			res += d * d
		}
		if math.Sqrt(res) > 1e-7 {
			t.Fatalf("pair %d residual %g too large", c, math.Sqrt(res))
		}
	}
}

// TestCheckSymmetricRelative covers the satellite fix: large well-scaled
// entries may differ by a relative 1e-9 without rejection, and the error
// for a real violation names the offending row/column pair.
func TestCheckSymmetricRelative(t *testing.T) {
	// Large magnitudes with tiny relative asymmetry: must pass (the old
	// absolute 1e-9 threshold falsely rejected this).
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1e6)
	m.Set(1, 1, 1e6)
	m.Set(0, 1, 1e6)
	m.Set(1, 0, 1e6+1e-4) // relative diff 1e-10 < 1e-9
	if _, _, err := EigenSym(m); err != nil {
		t.Fatalf("well-scaled matrix falsely rejected: %v", err)
	}

	// A genuine violation must fail and name the worst pair.
	bad := NewMatrix(3, 3)
	bad.Set(1, 2, 1.0)
	bad.Set(2, 1, 2.0)
	_, _, err := EigenSym(bad)
	if err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
	for _, want := range []string{"(1,2)", "a[1][2]=1", "a[2][1]=2"} {
		if !containsStr(err.Error(), want) {
			t.Fatalf("error %q does not report %q", err.Error(), want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// BenchmarkEigenParallel times the serial and parallel Jacobi paths at
// the sizes the spectral baseline actually sees. MaxSweeps is capped so
// the large sizes time per-sweep throughput rather than full
// convergence; `make bench-parallel` records full-solve wall times in
// BENCH_parallel.json.
func BenchmarkEigenParallel(b *testing.B) {
	for _, n := range []int{256, 700} {
		a := randomSym(n, int64(n))
		sweeps := 3
		b.Run(fmt.Sprintf("serial/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := EigenSymOpt(a, EigenOptions{MaxSweeps: sweeps, ForceSerial: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("parallel/n=%d/j=%d", n, par.Workers()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := EigenSymOpt(a, EigenOptions{MaxSweeps: sweeps}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
