package linalg

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"elink/internal/par"
)

// gridLaplacian builds the normalized Laplacian of a rows x cols grid
// graph with unit edge weights and unit self-loops (the affinity shape
// the spectral baseline produces).
func gridLaplacian(rows, cols int) *CSR {
	n := rows * cols
	s := NewSparseSym(n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := r*cols + c
			s.Set(id, id, 1)
			if c+1 < cols {
				s.Set(id, id+1, 1)
			}
			if r+1 < rows {
				s.Set(id, (r+1)*cols+c, 1)
			}
		}
	}
	return s.Finalize().NormalizedLaplacian()
}

// TestEigenBottomKMatchesDense checks the LOBPCG engine against the
// dense Jacobi reference on a banded random symmetric matrix: values
// must agree, and each sparse eigenvector must lie in the dense
// eigenvector subspace of the matching eigenvalues (subspace angle ~ 0),
// which is the rotation-proof comparison for (near-)multiple spectra.
func TestEigenBottomKMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, k := 150, 5
	s := NewSparseSym(n)
	for i := 0; i < n; i++ {
		s.Set(i, i, 2+rng.Float64())
		for w := 1; w <= 4; w++ {
			if i+w < n {
				s.Set(i, i+w, rng.NormFloat64())
			}
		}
	}
	c := s.Finalize()
	res, err := c.EigenBottomK(k, rng, BottomKOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vals, vecs, err := EigenSym(c.Dense())
	if err != nil {
		t.Fatal(err)
	}
	// Dense values are descending: the bottom k are the trailing ones.
	for j := 0; j < k; j++ {
		want := vals[n-1-j]
		if math.Abs(res.Values[j]-want) > 1e-5 {
			t.Errorf("value %d = %v, want %v", j, res.Values[j], want)
		}
		if res.Residuals[j] > 1e-5 {
			t.Errorf("residual %d = %v, want < 1e-5", j, res.Residuals[j])
		}
	}
	checkSubspace(t, c, res, vals, vecs, 1e-4)
}

// checkSubspace verifies each sparse eigenvector is (numerically) inside
// the span of the dense eigenvectors whose eigenvalues match its own.
func checkSubspace(t *testing.T, c *CSR, res *BottomKResult, denseVals []float64, denseVecs *Matrix, tol float64) {
	t.Helper()
	n := c.N
	for j := range res.Values {
		v := make([]float64, n)
		for r := 0; r < n; r++ {
			v[r] = res.Vectors.At(r, j)
		}
		// Projection onto the matching dense eigenspace.
		var proj float64
		for col := 0; col < n; col++ {
			if math.Abs(denseVals[col]-res.Values[j]) > 1e-4 {
				continue
			}
			var d float64
			for r := 0; r < n; r++ {
				d += denseVecs.At(r, col) * v[r]
			}
			proj += d * d
		}
		if sin := math.Sqrt(math.Max(0, 1-proj)); sin > tol {
			t.Errorf("vector %d: subspace angle sin = %v (> %v)", j, sin, tol)
		}
	}
}

// TestEigenBottomKDisconnected: the normalized Laplacian of a graph with
// three connected components has a zero eigenvalue of multiplicity 3;
// the block solver must resolve all three and their component-indicator
// eigenspace.
func TestEigenBottomKDisconnected(t *testing.T) {
	// Three disjoint grids of different sizes.
	comps := []struct{ rows, cols int }{{5, 6}, {4, 4}, {3, 7}}
	total := 0
	for _, cp := range comps {
		total += cp.rows * cp.cols
	}
	s := NewSparseSym(total)
	base := 0
	for _, cp := range comps {
		for r := 0; r < cp.rows; r++ {
			for c := 0; c < cp.cols; c++ {
				id := base + r*cp.cols + c
				s.Set(id, id, 1)
				if c+1 < cp.cols {
					s.Set(id, id+1, 1)
				}
				if r+1 < cp.rows {
					s.Set(id, base+(r+1)*cp.cols+c, 1)
				}
			}
		}
		base += cp.rows * cp.cols
	}
	l := s.Finalize().NormalizedLaplacian()
	rng := rand.New(rand.NewSource(3))
	res, err := l.EigenBottomK(4, rng, BottomKOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		if math.Abs(res.Values[j]) > 1e-8 {
			t.Errorf("eigenvalue %d = %v, want 0 (component count 3)", j, res.Values[j])
		}
	}
	if res.Values[3] < 1e-4 {
		t.Errorf("eigenvalue 3 = %v, want > 0 (only 3 components)", res.Values[3])
	}
	// Every component must be represented in the kernel basis.
	base = 0
	for ci, cp := range comps {
		sz := cp.rows * cp.cols
		var mass float64
		for j := 0; j < 3; j++ {
			for r := base; r < base+sz; r++ {
				v := res.Vectors.At(r, j)
				mass += v * v
			}
		}
		if mass < 0.5 {
			t.Errorf("component %d has kernel mass %v, want ~1", ci, mass)
		}
		base += sz
	}
}

// TestEigenBottomKBitIdenticalAcrossWorkers pins the determinism
// contract: the sparse engine's results are bitwise identical for every
// worker count.
func TestEigenBottomKBitIdenticalAcrossWorkers(t *testing.T) {
	l := gridLaplacian(20, 25)
	solve := func(workers int) *BottomKResult {
		par.SetWorkers(workers)
		defer par.SetWorkers(0)
		rng := rand.New(rand.NewSource(42))
		res, err := l.EigenBottomK(6, rng, BottomKOptions{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	ref := solve(1)
	for _, workers := range []int{2, 3, 4, 8} {
		got := solve(workers)
		for j := range ref.Values {
			if got.Values[j] != ref.Values[j] {
				t.Fatalf("workers=%d: value %d differs: %v != %v (bit-identity broken)",
					workers, j, got.Values[j], ref.Values[j])
			}
		}
		for i := range ref.Vectors.Data {
			if got.Vectors.Data[i] != ref.Vectors.Data[i] {
				t.Fatalf("workers=%d: vector element %d differs: %v != %v (bit-identity broken)",
					workers, i, got.Vectors.Data[i], ref.Vectors.Data[i])
			}
		}
	}
}

// TestEigenBottomKNoConvergence starves the solver of iterations and
// checks the explicit error contract: best-effort result plus a
// ConvergenceError wrapping ErrNoConvergence, residuals attached.
func TestEigenBottomKNoConvergence(t *testing.T) {
	l := gridLaplacian(18, 18)
	rng := rand.New(rand.NewSource(9))
	res, err := l.EigenBottomK(4, rng, BottomKOptions{MaxIter: 2})
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("starved solve returned err = %v, want ErrNoConvergence", err)
	}
	var ce *ConvergenceError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T does not unwrap to *ConvergenceError", err)
	}
	if len(ce.Residuals) != 4 || ce.Iters != 2 {
		t.Errorf("diagnostics: residuals len %d iters %d, want 4 and 2", len(ce.Residuals), ce.Iters)
	}
	if res == nil || res.Vectors == nil || len(res.Values) != 4 {
		t.Fatalf("best-effort result missing alongside ErrNoConvergence: %+v", res)
	}
	worst := 0.0
	for _, r := range ce.Residuals {
		if r > worst {
			worst = r
		}
	}
	if worst == 0 {
		t.Error("all residuals zero on an unconverged solve")
	}
}

// TestEigenBottomKRaceHammer runs concurrent solves over one shared CSR
// at a mixed worker count so the -race pass exercises the block solver's
// parallel sections. Results must still be identical across goroutines
// (same seed, shared read-only matrix).
func TestEigenBottomKRaceHammer(t *testing.T) {
	par.SetWorkers(3)
	defer par.SetWorkers(0)
	l := gridLaplacian(15, 16)
	const nsolvers = 4
	results := make([]*BottomKResult, nsolvers)
	errs := make([]error, nsolvers)
	var wg sync.WaitGroup
	for g := 0; g < nsolvers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(77))
			results[g], errs[g] = l.EigenBottomK(3, rng, BottomKOptions{})
		}(g)
	}
	wg.Wait()
	for g := 0; g < nsolvers; g++ {
		if errs[g] != nil {
			t.Fatalf("solver %d: %v", g, errs[g])
		}
		for i := range results[0].Vectors.Data {
			if results[g].Vectors.Data[i] != results[0].Vectors.Data[i] {
				t.Fatalf("solver %d diverged from solver 0 at element %d", g, i)
			}
		}
	}
}

// TestEigenBottomKWarmStart: above coarseStartMinN the default path
// builds a coarse-grid hierarchy, and the warm-started solve must reach
// the same eigenvalues as the random-start one in far fewer iterations.
func TestEigenBottomKWarmStart(t *testing.T) {
	l := gridLaplacian(25, 26) // n=650 >= coarseStartMinN
	warm, err := l.EigenBottomK(6, rand.New(rand.NewSource(2)), BottomKOptions{Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if warm.CoarseLevels < 1 {
		t.Fatalf("CoarseLevels = %d, want >= 1 at n=%d", warm.CoarseLevels, l.N)
	}
	cold, err := l.EigenBottomK(6, rand.New(rand.NewSource(2)), BottomKOptions{Tol: 1e-4, RandomStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CoarseLevels != 0 {
		t.Fatalf("RandomStart reported %d coarse levels", cold.CoarseLevels)
	}
	// Both arms run the default Jacobi preconditioner (≈ identity on a
	// normalized Laplacian), so this isolates the warm start's effect:
	// measured 16 vs 32 iterations here — require a strict improvement
	// with headroom rather than pinning the exact counts.
	if 3*warm.Iters >= 2*cold.Iters {
		t.Fatalf("warm start took %d iters vs %d cold: want < 2/3", warm.Iters, cold.Iters)
	}
	for j := range warm.Values {
		if math.Abs(warm.Values[j]-cold.Values[j]) > 1e-6 {
			t.Errorf("value %d: warm %v vs cold %v", j, warm.Values[j], cold.Values[j])
		}
	}
	// Below the threshold the hierarchy is skipped entirely.
	small, err := gridLaplacian(10, 12).EigenBottomK(4, rand.New(rand.NewSource(2)), BottomKOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if small.CoarseLevels != 0 {
		t.Fatalf("n=120 solve used %d coarse levels, want 0", small.CoarseLevels)
	}
}

// TestEigenBottomKPrecondDeterminism is the cross-preconditioner golden:
// for none/Jacobi/Chebyshev — warm-started, on a matrix large enough to
// exercise the coarse hierarchy — results are bitwise identical across
// worker counts. Only the preconditioner may change the trajectory, never
// the worker count.
func TestEigenBottomKPrecondDeterminism(t *testing.T) {
	l := gridLaplacian(25, 26) // n=650: warm start + chunked kernels active
	for _, tc := range []struct {
		name  string
		build func() Preconditioner
	}{
		{"none", func() Preconditioner { return IdentityPrecond{} }},
		{"jacobi", func() Preconditioner { return NewJacobi(l) }},
		{"chebyshev", func() Preconditioner { return NewChebyshev(l, 0, 0, 0) }},
	} {
		solve := func(workers int) *BottomKResult {
			par.SetWorkers(workers)
			defer par.SetWorkers(0)
			res, err := l.EigenBottomK(5, rand.New(rand.NewSource(17)), BottomKOptions{
				Tol: 1e-4, Precond: tc.build(),
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			return res
		}
		ref := solve(1)
		for _, workers := range []int{4} {
			got := solve(workers)
			if got.Iters != ref.Iters || got.CoarseLevels != ref.CoarseLevels {
				t.Fatalf("%s workers=%d: iters/levels %d/%d differ from %d/%d",
					tc.name, workers, got.Iters, got.CoarseLevels, ref.Iters, ref.CoarseLevels)
			}
			for j := range ref.Values {
				if got.Values[j] != ref.Values[j] {
					t.Fatalf("%s workers=%d: value %d differs: %v != %v (bit-identity broken)",
						tc.name, workers, j, got.Values[j], ref.Values[j])
				}
			}
			for i := range ref.Vectors.Data {
				if got.Vectors.Data[i] != ref.Vectors.Data[i] {
					t.Fatalf("%s workers=%d: vector element %d differs (bit-identity broken)",
						tc.name, workers, i)
				}
			}
		}
	}
}

// TestEigenBottomKDenseFallback covers the small-n path and k clamping.
func TestEigenBottomKDenseFallback(t *testing.T) {
	l := gridLaplacian(4, 5) // n=20 <= 64: dense fallback
	rng := rand.New(rand.NewSource(1))
	res, err := l.EigenBottomK(25, rng, BottomKOptions{}) // k clamps to 20
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 20 || res.Vectors.Cols != 20 {
		t.Fatalf("clamp: got %d pairs, want 20", len(res.Values))
	}
	for j := 1; j < len(res.Values); j++ {
		if res.Values[j] < res.Values[j-1] {
			t.Fatalf("values not ascending at %d: %v < %v", j, res.Values[j], res.Values[j-1])
		}
	}
	if math.Abs(res.Values[0]) > 1e-9 {
		t.Errorf("connected grid: smallest eigenvalue %v, want 0", res.Values[0])
	}
	if _, err := l.EigenBottomK(0, rng, BottomKOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
}
