// Package ar implements the auto-regressive data models used as node
// features (paper §2.2 and Appendix A).
//
// Each sensor node regresses its raw time series locally: an AR(k) model
// x_t = α₁x_{t−1} + … + α_k x_{t−k} + ε_t, fitted by least squares. The
// fitted coefficient vector is the node's feature; clustering compares
// these vectors, never the raw data. When new measurements arrive the
// coefficients are refreshed incrementally by recursive least squares
// (Appendix A, equations 6–8), so a node never re-solves the normal
// equations from scratch.
package ar

import (
	"fmt"
	"math/rand"

	"elink/internal/linalg"
)

// Fit estimates AR(order) coefficients for series by ordinary least
// squares on the normal equations XXᵀα = XY. It needs at least
// 2*order observations. A tiny ridge term keeps the normal matrix
// invertible on degenerate (e.g. constant) series.
func Fit(series []float64, order int) ([]float64, error) {
	if order < 1 {
		return nil, fmt.Errorf("ar: order must be >= 1, got %d", order)
	}
	m := len(series) - order
	if m < order {
		return nil, fmt.Errorf("ar: need at least %d observations for AR(%d), got %d", 2*order, order, len(series))
	}
	// Normal matrix P = XXᵀ and rhs b = XY, built incrementally.
	p := linalg.NewMatrix(order, order)
	b := make([]float64, order)
	x := make([]float64, order)
	for t := order; t < len(series); t++ {
		lagVector(series, t, x)
		y := series[t]
		for i := 0; i < order; i++ {
			b[i] += x[i] * y
			for j := 0; j < order; j++ {
				p.Set(i, j, p.At(i, j)+x[i]*x[j])
			}
		}
	}
	for i := 0; i < order; i++ {
		p.Set(i, i, p.At(i, i)+1e-9)
	}
	coef, err := linalg.Solve(p, b)
	if err != nil {
		return nil, fmt.Errorf("ar: normal equations singular: %w", err)
	}
	return coef, nil
}

// lagVector fills x with (series[t-1], …, series[t-order]).
func lagVector(series []float64, t int, x []float64) {
	for i := range x {
		x[i] = series[t-1-i]
	}
}

// Model is an online AR(k) model maintained by recursive least squares.
// P tracks (XXᵀ)⁻¹ so each Update is O(k²) with no matrix solve.
type Model struct {
	Order int
	Coef  []float64 // α, most recent lag first

	p    *linalg.Matrix // (XXᵀ)⁻¹
	lags []float64      // most recent observations, newest first
	seen int            // total observations consumed
}

// NewModel returns an untrained online AR(order) model. Until Order+1
// observations arrive the coefficients stay at their initial value
// (zeros, or the values set with SetCoef).
func NewModel(order int) *Model {
	if order < 1 {
		panic(fmt.Sprintf("ar: order must be >= 1, got %d", order))
	}
	return &Model{
		Order: order,
		Coef:  make([]float64, order),
		// Large initial P ≈ infinite prior covariance: the first few
		// updates are then dominated by the data, which is the standard
		// RLS initialization when no batch window is available.
		p:    linalg.Identity(order).Scale(1e6),
		lags: make([]float64, 0, order),
	}
}

// FitModel batch-fits series and returns a Model ready for online
// updates, with P seeded from the batch normal matrix.
func FitModel(series []float64, order int) (*Model, error) {
	coef, err := Fit(series, order)
	if err != nil {
		return nil, err
	}
	p := linalg.NewMatrix(order, order)
	x := make([]float64, order)
	for t := order; t < len(series); t++ {
		lagVector(series, t, x)
		for i := 0; i < order; i++ {
			for j := 0; j < order; j++ {
				p.Set(i, j, p.At(i, j)+x[i]*x[j])
			}
		}
	}
	for i := 0; i < order; i++ {
		p.Set(i, i, p.At(i, i)+1e-9)
	}
	pinv, err := linalg.Inverse(p)
	if err != nil {
		return nil, fmt.Errorf("ar: cannot invert normal matrix: %w", err)
	}
	m := &Model{Order: order, Coef: coef, p: pinv, lags: make([]float64, 0, order)}
	// Seed the lag window with the tail of the series, newest first.
	for i := 0; i < order; i++ {
		m.lags = append(m.lags, series[len(series)-1-i])
	}
	m.seen = len(series)
	return m, nil
}

// SetCoef overrides the current coefficients (used to initialize every
// node with α₁ = 1 as in the paper's synthetic dataset).
func (m *Model) SetCoef(coef []float64) {
	if len(coef) != m.Order {
		panic(fmt.Sprintf("ar: SetCoef got %d coefficients for AR(%d)", len(coef), m.Order))
	}
	copy(m.Coef, coef)
}

// Observe consumes one new raw measurement. Once enough lags have
// accumulated it performs one RLS step (Appendix A eqs. 7–8) and reports
// whether the coefficients changed.
func (m *Model) Observe(value float64) bool {
	if len(m.lags) < m.Order {
		m.lags = append([]float64{value}, m.lags...)
		m.seen++
		return false
	}
	x := make([]float64, m.Order)
	copy(x, m.lags[:m.Order])
	m.update(x, value)
	// Shift the lag window.
	copy(m.lags[1:], m.lags[:m.Order-1])
	m.lags[0] = value
	m.seen++
	return true
}

// update applies one recursive-least-squares step for regressor x and
// response y:
//
//	P ← P − P x (1 + xᵀ P x)⁻¹ xᵀ P          (eq. 7)
//	α ← α − P (x xᵀ α − x y)                  (eq. 8)
func (m *Model) update(x []float64, y float64) {
	k := m.Order
	px := m.p.MulVec(x) // P x
	var xpx float64
	for i := range x {
		xpx += x[i] * px[i]
	}
	denom := 1 + xpx
	// P ← P − (P x)(P x)ᵀ / denom. P is symmetric so xᵀP == (Px)ᵀ.
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			m.p.Set(i, j, m.p.At(i, j)-px[i]*px[j]/denom)
		}
	}
	// α ← α − P x (xᵀα − y).
	var xa float64
	for i := range x {
		xa += x[i] * m.Coef[i]
	}
	resid := xa - y
	pxNew := m.p.MulVec(x)
	for i := 0; i < k; i++ {
		m.Coef[i] -= pxNew[i] * resid
	}
}

// Snapshot returns a copy of the current coefficient vector. RLS updates
// mutate Coef in place, so callers that hand coefficients to long-lived
// consumers (clustering features, index routing entries) must take a
// snapshot rather than alias the live slice.
func (m *Model) Snapshot() []float64 {
	out := make([]float64, len(m.Coef))
	copy(out, m.Coef)
	return out
}

// Predict returns the one-step-ahead forecast from the current lags. It
// returns 0 until the lag window is full.
func (m *Model) Predict() float64 {
	if len(m.lags) < m.Order {
		return 0
	}
	var s float64
	for i := 0; i < m.Order; i++ {
		s += m.Coef[i] * m.lags[i]
	}
	return s
}

// Seen returns the number of observations consumed so far.
func (m *Model) Seen() int { return m.seen }

// Simulate generates n observations of x_t = Σ coef_i x_{t−1−i} + noise(),
// starting from the given initial lags (newest first; zeros if nil).
func Simulate(coef []float64, n int, initial []float64, noise func() float64) []float64 {
	k := len(coef)
	lags := make([]float64, k)
	copy(lags, initial)
	out := make([]float64, n)
	for t := 0; t < n; t++ {
		var v float64
		for i := 0; i < k; i++ {
			v += coef[i] * lags[i]
		}
		if noise != nil {
			v += noise()
		}
		out[t] = v
		copy(lags[1:], lags[:k-1])
		lags[0] = v
	}
	return out
}

// GaussianNoise returns a noise source drawing from N(0, sigma²) using rng.
func GaussianNoise(rng *rand.Rand, sigma float64) func() float64 {
	return func() float64 { return rng.NormFloat64() * sigma }
}

// UniformNoise returns a noise source drawing from U(lo, hi) using rng, as
// used by the paper's synthetic dataset (e_t ~ U(0,1)).
func UniformNoise(rng *rand.Rand, lo, hi float64) func() float64 {
	return func() float64 { return lo + rng.Float64()*(hi-lo) }
}
