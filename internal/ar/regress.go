package ar

import (
	"fmt"

	"elink/internal/linalg"
)

// FitLS solves the general least-squares problem y ≈ X·coef for an
// arbitrary design matrix given as rows of regressors. The Tao dataset's
// mixed model x_t = α₁x_{t−1} + β₁μ_{T−1} + β₂μ_{T−2} + β₃μ_{T−3} (§8.1)
// is fitted through this entry point, with each row holding the lagged
// sample and the three lagged daily means.
func FitLS(rows [][]float64, y []float64) ([]float64, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("ar: FitLS needs at least one observation")
	}
	if len(rows) != len(y) {
		return nil, fmt.Errorf("ar: %d rows but %d responses", len(rows), len(y))
	}
	k := len(rows[0])
	if k == 0 {
		return nil, fmt.Errorf("ar: empty regressor rows")
	}
	p := linalg.NewMatrix(k, k)
	b := make([]float64, k)
	for t, x := range rows {
		if len(x) != k {
			return nil, fmt.Errorf("ar: ragged regressor row %d (%d vs %d)", t, len(x), k)
		}
		for i := 0; i < k; i++ {
			b[i] += x[i] * y[t]
			for j := 0; j < k; j++ {
				p.Set(i, j, p.At(i, j)+x[i]*x[j])
			}
		}
	}
	for i := 0; i < k; i++ {
		p.Set(i, i, p.At(i, i)+1e-9)
	}
	coef, err := linalg.Solve(p, b)
	if err != nil {
		return nil, fmt.Errorf("ar: normal equations singular: %w", err)
	}
	return coef, nil
}
