package ar

import (
	"math"
	"testing"
)

func TestFitLSRecoversPlane(t *testing.T) {
	// y = 2a - 3b, exactly.
	rows := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}, {1, 2}}
	y := make([]float64, len(rows))
	for i, r := range rows {
		y[i] = 2*r[0] - 3*r[1]
	}
	coef, err := FitLS(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-2) > 1e-6 || math.Abs(coef[1]+3) > 1e-6 {
		t.Errorf("coef = %v, want [2 -3]", coef)
	}
}

func TestFitLSValidation(t *testing.T) {
	if _, err := FitLS(nil, nil); err == nil {
		t.Error("accepted empty input")
	}
	if _, err := FitLS([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := FitLS([][]float64{{}}, []float64{1}); err == nil {
		t.Error("accepted empty regressor rows")
	}
	if _, err := FitLS([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("accepted ragged rows")
	}
}

func TestFitLSDegenerateRegressorsRidge(t *testing.T) {
	// Identical columns: the ridge term keeps the solve alive.
	rows := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	y := []float64{2, 4, 6}
	coef, err := FitLS(rows, y)
	if err != nil {
		t.Fatalf("ridge should rescue collinear regressors: %v", err)
	}
	// Prediction must still be right even if the split is arbitrary.
	if pred := coef[0]*2 + coef[1]*2; math.Abs(pred-4) > 1e-3 {
		t.Errorf("prediction = %v, want 4", pred)
	}
}
