package ar

import (
	"fmt"

	"elink/internal/linalg"
)

// State is the full serializable state of an online Model: everything
// RLS needs to continue bit-for-bit from where it stopped. The snapshot
// codec in internal/persist encodes it; FromState rebuilds the live
// model. All slices are copies — a State never aliases the model that
// produced it.
type State struct {
	Order int
	Coef  []float64
	// P is the (XXᵀ)⁻¹ covariance, row-major Order×Order.
	P []float64
	// Lags holds the most recent observations, newest first (may be
	// shorter than Order while the model is still filling its window).
	Lags []float64
	Seen int
}

// State exports the model's complete RLS state.
func (m *Model) State() State {
	st := State{
		Order: m.Order,
		Coef:  append([]float64(nil), m.Coef...),
		P:     append([]float64(nil), m.p.Data...),
		Lags:  append([]float64(nil), m.lags...),
		Seen:  m.seen,
	}
	return st
}

// FromState rebuilds a live model from exported state. It validates the
// shape invariants so a corrupted snapshot surfaces as an error, never a
// panic later in the RLS hot path.
func FromState(st State) (*Model, error) {
	if st.Order < 1 {
		return nil, fmt.Errorf("ar: state order %d must be >= 1", st.Order)
	}
	if len(st.Coef) != st.Order {
		return nil, fmt.Errorf("ar: state has %d coefficients for AR(%d)", len(st.Coef), st.Order)
	}
	if len(st.P) != st.Order*st.Order {
		return nil, fmt.Errorf("ar: state P has %d entries, want %d", len(st.P), st.Order*st.Order)
	}
	if len(st.Lags) > st.Order {
		return nil, fmt.Errorf("ar: state has %d lags for AR(%d)", len(st.Lags), st.Order)
	}
	if st.Seen < 0 {
		return nil, fmt.Errorf("ar: state seen %d must be >= 0", st.Seen)
	}
	p := linalg.NewMatrix(st.Order, st.Order)
	copy(p.Data, st.P)
	m := &Model{
		Order: st.Order,
		Coef:  append([]float64(nil), st.Coef...),
		p:     p,
		lags:  make([]float64, len(st.Lags), st.Order),
		seen:  st.Seen,
	}
	copy(m.lags, st.Lags)
	return m, nil
}
