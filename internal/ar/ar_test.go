package ar

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitRecoversAR1(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	series := Simulate([]float64{0.6}, 5000, []float64{1}, GaussianNoise(rng, 0.1))
	coef, err := Fit(series, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-0.6) > 0.05 {
		t.Errorf("fitted α = %v, want ≈ 0.6", coef[0])
	}
}

func TestFitRecoversAR2(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	truth := []float64{0.5, 0.3}
	series := Simulate(truth, 8000, []float64{1, 1}, GaussianNoise(rng, 0.1))
	coef, err := Fit(series, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(coef[i]-truth[i]) > 0.06 {
			t.Errorf("coef[%d] = %v, want ≈ %v", i, coef[i], truth[i])
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1, 2, 3}, 0); err == nil {
		t.Error("Fit accepted order 0")
	}
	if _, err := Fit([]float64{1, 2}, 2); err == nil {
		t.Error("Fit accepted too-short series")
	}
}

func TestFitConstantSeries(t *testing.T) {
	series := make([]float64, 100)
	for i := range series {
		series[i] = 5
	}
	coef, err := Fit(series, 2)
	if err != nil {
		t.Fatalf("Fit failed on constant series: %v", err)
	}
	// Prediction from the fit should reproduce the constant.
	pred := coef[0]*5 + coef[1]*5
	if math.Abs(pred-5) > 0.01 {
		t.Errorf("constant series prediction = %v, want 5", pred)
	}
}

func TestRLSMatchesBatchFit(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	series := Simulate([]float64{0.5, 0.3}, 600, []float64{1, 1}, GaussianNoise(rng, 0.2))

	// Batch fit on the full series.
	batch, err := Fit(series, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Batch fit on a prefix, then feed the remainder through RLS.
	m, err := FitModel(series[:300], 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range series[300:] {
		m.Observe(v)
	}
	for i := range batch {
		if math.Abs(m.Coef[i]-batch[i]) > 1e-6 {
			t.Errorf("RLS coef[%d] = %v, batch = %v (should agree to numerical precision)", i, m.Coef[i], batch[i])
		}
	}
}

func TestNewModelColdStartConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	series := Simulate([]float64{0.7}, 3000, []float64{1}, GaussianNoise(rng, 0.1))
	m := NewModel(1)
	for _, v := range series {
		m.Observe(v)
	}
	if math.Abs(m.Coef[0]-0.7) > 0.05 {
		t.Errorf("cold-start RLS α = %v, want ≈ 0.7", m.Coef[0])
	}
	if m.Seen() != len(series) {
		t.Errorf("Seen() = %d, want %d", m.Seen(), len(series))
	}
}

func TestObserveReportsUpdates(t *testing.T) {
	m := NewModel(2)
	if m.Observe(1) || m.Observe(2) {
		t.Error("Observe reported an update before the lag window was full")
	}
	if !m.Observe(3) {
		t.Error("Observe did not report an update once lags were available")
	}
}

func TestPredict(t *testing.T) {
	m := NewModel(2)
	m.SetCoef([]float64{0.5, 0.25})
	if m.Predict() != 0 {
		t.Error("Predict before lags should be 0")
	}
	m.Observe(4) // lags: [4]
	m.Observe(8) // lags: [8 4]
	// Predict = 0.5*8 + 0.25*4 = 5.
	if got := m.Predict(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Predict = %v, want 5", got)
	}
}

func TestSetCoefPanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetCoef accepted wrong-length coefficients")
		}
	}()
	NewModel(2).SetCoef([]float64{1})
}

func TestSimulateDeterministicWithoutNoise(t *testing.T) {
	got := Simulate([]float64{0.5}, 4, []float64{8}, nil)
	want := []float64{4, 2, 1, 0.5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Simulate[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// Property: for any stable AR(1) coefficient and seed, the cold-start RLS
// estimate after enough samples lands near the true coefficient.
func TestRLSConvergenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		alpha := 0.4 + r.Float64()*0.4 // the paper's U(0.4, 0.8)
		series := Simulate([]float64{alpha}, 2500, []float64{1}, UniformNoise(r, -0.5, 0.5))
		m := NewModel(1)
		for _, v := range series {
			m.Observe(v)
		}
		return math.Abs(m.Coef[0]-alpha) < 0.1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: online RLS equals batch least squares regardless of the split
// point between the batch prefix and the streamed suffix.
func TestRLSBatchEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	series := Simulate([]float64{0.6, 0.2}, 400, []float64{1, 1}, GaussianNoise(rng, 0.3))
	batch, err := Fit(series, 2)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(rawSplit uint16) bool {
		split := 50 + int(rawSplit)%300
		m, err := FitModel(series[:split], 2)
		if err != nil {
			return false
		}
		for _, v := range series[split:] {
			m.Observe(v)
		}
		for i := range batch {
			if math.Abs(m.Coef[i]-batch[i]) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
