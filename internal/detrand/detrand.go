// Package detrand is the module's single construction point for seeded
// pseudo-random generators. Every randomized component — dataset
// generators, clustering runs, the asynchronous runtime, random
// topologies, the streaming engine, benchmark harnesses — derives its
// *rand.Rand here from an explicit seed that arrived through public
// configuration, so identical inputs plus identical seeds reproduce
// identical clusterings, message counts and query answers end to end.
//
// The seededrand analyzer (internal/lint) enforces the policy: calls to
// math/rand's global source are forbidden everywhere, and
// rand.New/rand.NewSource may appear only in this package. Call sites
// that need several decorrelated streams from one configured seed keep
// their existing fixed-offset arithmetic (for example seed + i*7919 for
// per-node generators) — the derivation is part of the pinned golden
// figures and must not drift.
package detrand

import "math/rand"

// New returns a deterministic generator for an explicitly threaded seed.
func New(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
