package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Event is one structured trace record. The simulator emits one per
// simulated round (Kind "round": round number, per-kind message deltas,
// nodes active), algorithms emit summary events (Kind "converged"), and
// the streaming engine emits one per published epoch (Kind "epoch").
// Fields carries any extra numeric payload so the schema stays closed.
type Event struct {
	// Seq is a monotonic sequence number stamped by the tracer.
	Seq int64 `json:"seq"`
	// Scope names the emitting subsystem ("elink", "engine", ...).
	Scope string `json:"scope,omitempty"`
	// Kind is the event type ("round", "converged", "epoch", ...).
	Kind string `json:"kind"`
	// Round is the simulated round for per-round events.
	Round int `json:"round,omitempty"`
	// Time is the simulated time (rounds for the synchronous model).
	Time float64 `json:"t,omitempty"`
	// Epoch is the streaming-engine epoch for engine events.
	Epoch int64 `json:"epoch,omitempty"`
	// Active is how many nodes handled at least one event this round.
	Active int `json:"active,omitempty"`
	// Msgs holds per-kind message counts sent during the round.
	Msgs map[string]int64 `json:"msgs,omitempty"`
	// Fields holds any additional numeric payload (cluster counts,
	// fragmentation, ...).
	Fields map[string]float64 `json:"fields,omitempty"`
	// Note is a free-form annotation.
	Note string `json:"note,omitempty"`
}

// DefaultTraceCapacity is the ring size used when NewTracer gets a
// non-positive capacity.
const DefaultTraceCapacity = 4096

// Tracer is a bounded ring buffer of Events. Record overwrites the
// oldest entry once the buffer is full, so memory stays constant no
// matter how long the process runs. All methods are safe for concurrent
// use and on a nil receiver (no-ops / empty results), so call sites can
// thread an optional tracer without branching.
type Tracer struct {
	mu    sync.Mutex
	buf   []Event
	next  int   // index the next Record writes to
	seq   int64 // total events ever recorded
	wrapd bool  // the ring has wrapped at least once
}

// NewTracer returns a tracer holding the last capacity events
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Record appends e, stamping its Seq, evicting the oldest event when
// full.
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e.Seq = t.seq
	t.seq++
	t.buf[t.next] = e
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.wrapd = true
	}
	t.mu.Unlock()
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Total returns how many events were ever recorded (including evicted
// ones).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Len returns how many events the ring currently holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.len()
}

func (t *Tracer) len() int {
	if t.wrapd {
		return len(t.buf)
	}
	return t.next
}

// Last returns a copy of the most recent n events, oldest first. n <= 0
// or n larger than the buffered count returns everything buffered.
func (t *Tracer) Last(n int) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	have := t.len()
	if n <= 0 || n > have {
		n = have
	}
	out := make([]Event, n)
	// The newest event sits at next-1; walk back n slots.
	start := t.next - n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < n; i++ {
		out[i] = t.buf[(start+i)%len(t.buf)]
	}
	return out
}

// WriteJSONL writes the most recent n events (see Last) as one JSON
// object per line, oldest first.
func (t *Tracer) WriteJSONL(w io.Writer, n int) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for _, e := range t.Last(n) {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}
