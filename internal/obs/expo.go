package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every family in Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by
// label string, histograms expanded into cumulative _bucket/_sum/_count
// lines. Values are read live; a scrape concurrent with writers sees
// each metric at some point during the scrape, which is the usual
// Prometheus consistency model.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		r.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sers := make([]*series, len(keys))
		gfns := make([]func() float64, len(keys))
		for i, k := range keys {
			sers[i] = f.series[k]
			gfns[i] = sers[i].gfn // snapshot under the lock (GaugeFunc races otherwise)
		}
		help, kind := f.help, f.kind
		r.mu.Unlock()
		if len(sers) == 0 {
			continue // described but never used
		}
		if help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, kind)
		for i, s := range sers {
			writeSeries(&b, f.name, keys[i], kind, s, gfns[i])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSeries(b *strings.Builder, name, labels string, kind metricKind, s *series, gfn func() float64) {
	switch kind {
	case kindCounter:
		writeSample(b, name, labels, "", strconv.FormatInt(s.ctr.Value(), 10))
	case kindGauge:
		v := s.gauge.Value()
		if gfn != nil {
			v = gfn()
		}
		writeSample(b, name, labels, "", formatFloat(v))
	case kindHistogram:
		h := s.hist
		cum := h.Cumulative()
		for i, bound := range h.bounds {
			le := `le="` + formatFloat(bound) + `"`
			writeSample(b, name+"_bucket", joinLabels(labels, le), "", strconv.FormatInt(cum[i], 10))
		}
		writeSample(b, name+"_bucket", joinLabels(labels, `le="+Inf"`), "", strconv.FormatInt(cum[len(cum)-1], 10))
		writeSample(b, name+"_sum", labels, "", formatFloat(h.Sum()))
		writeSample(b, name+"_count", labels, "", strconv.FormatInt(h.Count(), 10))
	}
}

func writeSample(b *strings.Builder, name, labels, suffix, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func joinLabels(base, extra string) string {
	if base == "" {
		return extra
	}
	return base + "," + extra
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// jsonSeries is one series in the WriteJSON dump.
type jsonSeries struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	// Counter / gauge value.
	Value *float64 `json:"value,omitempty"`
	// Histogram payload: cumulative counts per bound, then +Inf.
	Buckets []jsonBucket `json:"buckets,omitempty"`
	Sum     *float64     `json:"sum,omitempty"`
	Count   *int64       `json:"count,omitempty"`
}

type jsonBucket struct {
	LE    string `json:"le"` // formatted bound; "+Inf" for the last
	Count int64  `json:"count"`
}

// WriteJSON dumps every series as a JSON array, sorted like the
// Prometheus exposition. The bench/experiments harness writes this next
// to its figures so the empirical complexity checks read the same
// instrumentation production scrapes do.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var out []jsonSeries
	for _, f := range fams {
		r.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sers := make([]*series, len(keys))
		gfns := make([]func() float64, len(keys))
		for i, k := range keys {
			sers[i] = f.series[k]
			gfns[i] = sers[i].gfn
		}
		kind := f.kind
		r.mu.Unlock()
		for si, s := range sers {
			js := jsonSeries{Name: f.name, Type: kind.String()}
			if len(s.labels) > 0 {
				js.Labels = make(map[string]string, len(s.labels))
				for _, p := range s.labels {
					js.Labels[p.key] = p.value
				}
			}
			switch kind {
			case kindCounter:
				v := float64(s.ctr.Value())
				js.Value = &v
			case kindGauge:
				v := s.gauge.Value()
				if gfns[si] != nil {
					v = gfns[si]()
				}
				js.Value = &v
			case kindHistogram:
				h := s.hist
				cum := h.Cumulative()
				for i, bound := range h.bounds {
					js.Buckets = append(js.Buckets, jsonBucket{LE: formatFloat(bound), Count: cum[i]})
				}
				js.Buckets = append(js.Buckets, jsonBucket{LE: "+Inf", Count: cum[len(cum)-1]})
				sum, count := h.Sum(), h.Count()
				js.Sum, js.Count = &sum, &count
			}
			out = append(out, js)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
