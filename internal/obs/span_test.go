package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic, concurrency-safe time source for span
// tests: every reading advances it by step.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0), step: step}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

// Advance moves the clock without counting as a reading.
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestSpanNilSafety(t *testing.T) {
	var tr *SpanTracer
	s := tr.Start("root")
	if s != nil {
		t.Fatalf("nil tracer Start = %v, want nil", s)
	}
	c := s.Child("child")
	c.Label("k", "v")
	c.KeepIf(time.Second)
	c.Finish()
	s.Finish()
	tr.SetClock(nil)
	tr.Instrument(nil)
	if got := tr.Total(); got != 0 {
		t.Fatalf("nil Total = %d", got)
	}
	if got := tr.Len(); got != 0 {
		t.Fatalf("nil Len = %d", got)
	}
	if got := tr.Recent(5); got != nil {
		t.Fatalf("nil Recent = %v", got)
	}
	if got := tr.Slowest(); got != nil {
		t.Fatalf("nil Slowest = %v", got)
	}
	if got := tr.PhaseStats(); got != nil {
		t.Fatalf("nil PhaseStats = %v", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf, 0); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	if strings.TrimSpace(buf.String()) != "{}" {
		t.Fatalf("nil WriteJSON = %q", buf.String())
	}
	buf.Reset()
	if err := tr.WriteChromeTrace(&buf, 0); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("nil WriteChromeTrace = %q", buf.String())
	}
}

func TestSpanSelfTimeTelescopes(t *testing.T) {
	tr := NewSpanTracer(8, 4)
	clk := newFakeClock(0)
	tr.SetClock(clk.Now)

	// Sequential pipeline: root with three children of 10ms, 20ms, 30ms
	// and 5ms of root-only work at the end.
	root := tr.Start("epoch")
	for i, d := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond} {
		c := root.Child(fmt.Sprintf("phase%d", i))
		clk.Advance(d)
		c.Finish()
	}
	clk.Advance(5 * time.Millisecond)
	root.Finish()

	traces := tr.Recent(0)
	if len(traces) != 1 {
		t.Fatalf("Recent len = %d, want 1", len(traces))
	}
	trc := traces[0]
	if got, want := trc.WallNs, int64(65*time.Millisecond); got != want {
		t.Fatalf("WallNs = %d, want %d", got, want)
	}
	var selfSum int64
	byName := map[string]SpanRecord{}
	for _, s := range trc.Spans {
		selfSum += s.SelfNs
		byName[s.Name] = s
	}
	// Self-times of a sequential trace telescope to exactly the wall time.
	if selfSum != trc.WallNs {
		t.Fatalf("sum(SelfNs) = %d, want wall %d", selfSum, trc.WallNs)
	}
	if got, want := byName["epoch"].SelfNs, int64(5*time.Millisecond); got != want {
		t.Fatalf("root SelfNs = %d, want %d", got, want)
	}
	if got, want := byName["phase1"].SelfNs, int64(20*time.Millisecond); got != want {
		t.Fatalf("phase1 SelfNs = %d, want %d", got, want)
	}
	if byName["epoch"].Parent != -1 || byName["phase2"].Parent != 0 {
		t.Fatalf("parent links wrong: %+v", trc.Spans)
	}
}

func TestSpanConcurrentChildrenClamp(t *testing.T) {
	tr := NewSpanTracer(4, 2)
	clk := newFakeClock(0)
	tr.SetClock(clk.Now)

	// Fork-join: two children covering the same 10ms window. Their summed
	// durations exceed the root's wall time; self-time must clamp at 0.
	root := tr.Start("batch")
	a := root.Child("worker-0")
	b := root.Child("worker-1")
	clk.Advance(10 * time.Millisecond)
	a.Finish()
	b.Finish()
	root.Finish()

	trc := tr.Recent(0)[0]
	for _, s := range trc.Spans {
		if s.Parent == -1 && s.SelfNs != 0 {
			t.Fatalf("overlapped root SelfNs = %d, want 0", s.SelfNs)
		}
	}
}

func TestSpanRingWraparound(t *testing.T) {
	tr := NewSpanTracer(4, 2)
	clk := newFakeClock(0)
	tr.SetClock(clk.Now)

	for i := 0; i < 10; i++ {
		s := tr.Start("t")
		s.Label("i", fmt.Sprint(i))
		clk.Advance(time.Duration(i+1) * time.Millisecond)
		s.Finish()
	}
	if got := tr.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4 (ring capacity)", got)
	}
	recent := tr.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("Recent len = %d, want 4", len(recent))
	}
	// Oldest first: traces 6..9 survive.
	for i, trc := range recent {
		if want := fmt.Sprint(i + 6); trc.Labels["i"] != want {
			t.Fatalf("recent[%d] label = %q, want %q", i, trc.Labels["i"], want)
		}
	}
	// Recent(2) returns only the newest two.
	if last2 := tr.Recent(2); len(last2) != 2 || last2[1].Labels["i"] != "9" {
		t.Fatalf("Recent(2) = %v", last2)
	}
}

func TestSpanTopKRetention(t *testing.T) {
	tr := NewSpanTracer(4, 3)
	clk := newFakeClock(0)
	tr.SetClock(clk.Now)

	// Wall times 1..10ms in shuffled order; top-3 must be 10, 9, 8 even
	// though the ring only keeps the last 4 traces.
	for _, ms := range []int{3, 10, 1, 7, 9, 2, 8, 5, 4, 6} {
		s := tr.Start("t")
		clk.Advance(time.Duration(ms) * time.Millisecond)
		s.Finish()
	}
	slow := tr.Slowest()
	if len(slow) != 3 {
		t.Fatalf("Slowest len = %d, want 3", len(slow))
	}
	for i, want := range []int64{int64(10 * time.Millisecond), int64(9 * time.Millisecond), int64(8 * time.Millisecond)} {
		if slow[i].WallNs != want {
			t.Fatalf("Slowest[%d].WallNs = %d, want %d", i, slow[i].WallNs, want)
		}
	}
}

func TestSpanKeepIf(t *testing.T) {
	tr := NewSpanTracer(8, 4)
	clk := newFakeClock(0)
	tr.SetClock(clk.Now)

	fast := tr.Start("batch")
	fast.KeepIf(5 * time.Millisecond)
	clk.Advance(1 * time.Millisecond)
	fast.Finish()

	slowSpan := tr.Start("batch")
	slowSpan.KeepIf(5 * time.Millisecond)
	clk.Advance(20 * time.Millisecond)
	slowSpan.Finish()

	if got := tr.Total(); got != 2 {
		t.Fatalf("Total = %d, want 2 (dropped traces still count)", got)
	}
	if got := tr.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1 (fast trace dropped)", got)
	}
	// Phase attribution sees both.
	ps := tr.PhaseStats()
	if len(ps) != 1 || ps[0].Phase != "batch" || ps[0].Count != 2 {
		t.Fatalf("PhaseStats = %+v, want one 'batch' row with count 2", ps)
	}
}

func TestSpanPhaseStats(t *testing.T) {
	tr := NewSpanTracer(8, 4)
	clk := newFakeClock(0)
	tr.SetClock(clk.Now)
	reg := NewRegistry()
	tr.Instrument(reg)

	for i := 1; i <= 100; i++ {
		root := tr.Start("epoch")
		c := root.Child("refit")
		clk.Advance(time.Duration(i) * time.Millisecond)
		c.Finish()
		root.Finish()
	}
	stats := tr.PhaseStats()
	if len(stats) != 2 {
		t.Fatalf("PhaseStats rows = %d, want 2 (refit + epoch)", len(stats))
	}
	// Sorted by total self-time descending: refit carries all the time.
	if stats[0].Phase != "refit" {
		t.Fatalf("top phase = %q, want refit", stats[0].Phase)
	}
	rf := stats[0]
	if rf.Count != 100 {
		t.Fatalf("refit count = %d", rf.Count)
	}
	if rf.MaxNs != int64(100*time.Millisecond) {
		t.Fatalf("refit max = %d", rf.MaxNs)
	}
	// p50 of 1..100ms lands mid-range, p95 near the top.
	if rf.P50Ns < int64(45*time.Millisecond) || rf.P50Ns > int64(56*time.Millisecond) {
		t.Fatalf("refit p50 = %v", time.Duration(rf.P50Ns))
	}
	if rf.P95Ns < int64(90*time.Millisecond) || rf.P95Ns > int64(100*time.Millisecond) {
		t.Fatalf("refit p95 = %v", time.Duration(rf.P95Ns))
	}
	// Instrument exported the same observations as histograms.
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if !strings.Contains(prom.String(), `span_phase_seconds_count{phase="refit"} 100`) {
		t.Fatalf("span_phase_seconds missing from exposition:\n%s", prom.String())
	}
}

func TestSpanPhaseNameCap(t *testing.T) {
	tr := NewSpanTracer(4, 2)
	clk := newFakeClock(time.Microsecond)
	tr.SetClock(clk.Now)
	for i := 0; i < maxPhaseNames+50; i++ {
		s := tr.Start(fmt.Sprintf("phase-%d", i))
		s.Finish()
	}
	stats := tr.PhaseStats()
	if len(stats) > maxPhaseNames+1 {
		t.Fatalf("phase rows = %d, want <= %d", len(stats), maxPhaseNames+1)
	}
	var other *PhaseStat
	for i := range stats {
		if stats[i].Phase == "other" {
			other = &stats[i]
		}
	}
	if other == nil || other.Count != 50 {
		t.Fatalf("overflow bucket = %+v, want count 50", other)
	}
}

func TestSpanWriteJSON(t *testing.T) {
	tr := NewSpanTracer(8, 4)
	clk := newFakeClock(0)
	tr.SetClock(clk.Now)
	root := tr.Start("epoch")
	root.Label("epoch", "7")
	c := root.Child("journal")
	clk.Advance(2 * time.Millisecond)
	c.Finish()
	root.Finish()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf, 10); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var dump struct {
		Total   int64        `json:"total"`
		Phases  []PhaseStat  `json:"phases"`
		Recent  []*SpanTrace `json:"recent"`
		Slowest []*SpanTrace `json:"slowest"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, buf.String())
	}
	if dump.Total != 1 || len(dump.Recent) != 1 || len(dump.Slowest) != 1 {
		t.Fatalf("dump = %+v", dump)
	}
	if dump.Recent[0].Labels["epoch"] != "7" {
		t.Fatalf("labels lost: %+v", dump.Recent[0])
	}
}

func TestSpanWriteChromeTrace(t *testing.T) {
	tr := NewSpanTracer(8, 4)
	clk := newFakeClock(0)
	tr.SetClock(clk.Now)
	root := tr.Start("epoch")
	root.Label("epoch", "3")
	c := root.Child("refit")
	clk.Advance(4 * time.Millisecond)
	c.Finish()
	root.Finish()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, 0); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v\n%s", err, buf.String())
	}
	// One thread_name metadata event plus two X events.
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3:\n%s", len(events), buf.String())
	}
	var meta, complete int
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			meta++
			if ev["name"] != "thread_name" {
				t.Fatalf("metadata event = %v", ev)
			}
		case "X":
			complete++
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("X event missing dur: %v", ev)
			}
		default:
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
	}
	if meta != 1 || complete != 2 {
		t.Fatalf("meta=%d complete=%d", meta, complete)
	}
}

// TestSpanConcurrencyHammer exercises concurrent trace construction,
// fork-join children and exports under -race.
func TestSpanConcurrencyHammer(t *testing.T) {
	tr := NewSpanTracer(32, 8)
	reg := NewRegistry()
	tr.Instrument(reg)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})

	// Writers: concurrent traces, each with concurrent children.
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				root := tr.Start("batch")
				root.Label("g", fmt.Sprint(g))
				var cwg sync.WaitGroup
				for w := 0; w < 3; w++ {
					cwg.Add(1)
					go func(w int) {
						defer cwg.Done()
						c := root.Child(fmt.Sprintf("worker-%d", w))
						c.Finish()
					}(w)
				}
				cwg.Wait()
				root.Finish()
			}
		}(g)
	}
	// Readers: exports race the writers.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var buf bytes.Buffer
				tr.WriteJSON(&buf, 8)
				buf.Reset()
				tr.WriteChromeTrace(&buf, 8)
				tr.PhaseStats()
				tr.Slowest()
				buf.Reset()
				reg.WritePrometheus(&buf)
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if got := tr.Total(); got != 800 {
		t.Fatalf("Total = %d, want 800", got)
	}
	if got := tr.Len(); got != 32 {
		t.Fatalf("Len = %d, want full ring", got)
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	RegisterBuildInfo(nil, "x") // nil registry is a no-op
	reg := NewRegistry()
	RegisterBuildInfo(reg, "")
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `elink_build_info{`) || !strings.Contains(out, `version="dev"`) {
		t.Fatalf("build info missing:\n%s", out)
	}
	if !strings.Contains(out, "go_version=") || !strings.Contains(out, "gomaxprocs=") {
		t.Fatalf("build info labels missing:\n%s", out)
	}
	if !strings.Contains(out, "process_start_time_seconds") {
		t.Fatalf("start time missing:\n%s", out)
	}
	// Uptime is a scrape-time function gauge: two scrapes straddling a
	// sleep must move.
	first := scrapeValue(t, reg, "process_uptime_seconds")
	time.Sleep(5 * time.Millisecond)
	second := scrapeValue(t, reg, "process_uptime_seconds")
	if second <= first {
		t.Fatalf("uptime did not advance: %v -> %v", first, second)
	}
}

func scrapeValue(t *testing.T, reg *Registry, metric string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, metric+" ") {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, metric+" "), "%g", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found:\n%s", metric, buf.String())
	return 0
}

func TestGaugeFuncJSONExport(t *testing.T) {
	reg := NewRegistry()
	n := 41.0
	reg.GaugeFunc("live_value", func() float64 { n++; return n })
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"value": 42`) {
		t.Fatalf("GaugeFunc value missing from JSON:\n%s", buf.String())
	}
	// First registration wins; a second function must not replace it.
	reg.GaugeFunc("live_value", func() float64 { return -1 })
	buf.Reset()
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"value": 43`) {
		t.Fatalf("GaugeFunc was replaced:\n%s", buf.String())
	}
}
