package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Kind: "round", Round: i})
	}
	if tr.Total() != 10 || tr.Len() != 4 {
		t.Fatalf("total=%d len=%d, want 10/4", tr.Total(), tr.Len())
	}
	got := tr.Last(0)
	if len(got) != 4 {
		t.Fatalf("Last(0) returned %d events, want all 4", len(got))
	}
	for i, e := range got {
		if want := 6 + i; e.Round != want || e.Seq != int64(want) {
			t.Errorf("event %d = round %d seq %d, want round/seq %d", i, e.Round, e.Seq, want)
		}
	}
	// A window smaller than the buffer returns the newest events.
	if got = tr.Last(2); len(got) != 2 || got[0].Round != 8 || got[1].Round != 9 {
		t.Errorf("Last(2) = %+v, want rounds 8,9", got)
	}
	// Asking for more than buffered clips to what is there.
	if got = tr.Last(100); len(got) != 4 {
		t.Errorf("Last(100) = %d events, want 4", len(got))
	}
}

func TestTracerBeforeWrap(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Event{Kind: "a"})
	tr.Record(Event{Kind: "b"})
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2", tr.Len())
	}
	got := tr.Last(0)
	if len(got) != 2 || got[0].Kind != "a" || got[1].Kind != "b" {
		t.Errorf("Last = %+v, want a,b in order", got)
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	if got := NewTracer(0).Cap(); got != DefaultTraceCapacity {
		t.Errorf("cap = %d, want %d", got, DefaultTraceCapacity)
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(Event{Kind: "round", Round: i})
				_ = tr.Last(8)
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 8*500 {
		t.Errorf("total = %d, want %d", tr.Total(), 8*500)
	}
	// Seqs of the surviving window must be strictly increasing.
	last := tr.Last(0)
	for i := 1; i < len(last); i++ {
		if last[i].Seq != last[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs at %d: %d then %d", i, last[i-1].Seq, last[i].Seq)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Event{Scope: "elink", Kind: "round", Round: 1, Time: 1,
		Active: 3, Msgs: map[string]int64{"expand": 5}})
	tr.Record(Event{Scope: "elink", Kind: "converged", Time: 2,
		Fields: map[string]float64{"clusters": 4}})

	var b strings.Builder
	if err := tr.WriteJSONL(&b, 10); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var lines []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 2 {
		t.Fatalf("%d JSONL lines, want 2", len(lines))
	}
	if lines[0].Kind != "round" || lines[0].Msgs["expand"] != 5 || lines[0].Active != 3 {
		t.Errorf("round line = %+v", lines[0])
	}
	if lines[1].Kind != "converged" || lines[1].Fields["clusters"] != 4 {
		t.Errorf("converged line = %+v", lines[1])
	}
}
