package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestConcurrentWriters hammers one counter, one gauge and one histogram
// from many goroutines; run under -race this is the registry's
// concurrency-safety proof, and the totals check its correctness.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Deliberately re-look-up inside the loop sometimes: handle
			// creation must be race-free too.
			c := r.Counter("msgs_total", "kind", "expand")
			g := r.Gauge("clusters")
			h := r.Histogram("latency_seconds", LatencyBuckets())
			for i := 0; i < perWorker; i++ {
				if i%100 == 0 {
					c = r.Counter("msgs_total", "kind", "expand")
				}
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%10) * 1e-4)
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("msgs_total", "kind", "expand").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("clusters").Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	h := r.Histogram("latency_seconds", LatencyBuckets())
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	cum := h.Cumulative()
	if cum[len(cum)-1] != workers*perWorker {
		t.Errorf("+Inf cumulative = %d, want %d", cum[len(cum)-1], workers*perWorker)
	}
}

// TestConcurrentFirstUse releases all workers through a barrier so that
// the very first lookups of each series race: every worker must get the
// SAME handle, or some increments land on an orphaned duplicate and the
// totals come up short. Regression test for handles being assigned after
// lookup released the registry mutex.
func TestConcurrentFirstUse(t *testing.T) {
	const workers, rounds = 16, 50
	for round := 0; round < rounds; round++ {
		r := NewRegistry()
		start := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				r.Counter("first_use_total", "kind", "x").Inc()
				r.Gauge("first_use_gauge").Add(1)
				r.Histogram("first_use_seconds", LatencyBuckets()).Observe(1e-3)
			}()
		}
		close(start)
		wg.Wait()
		if got := r.Counter("first_use_total", "kind", "x").Value(); got != workers {
			t.Fatalf("round %d: counter = %d, want %d (lost a racing handle)", round, got, workers)
		}
		if got := r.Gauge("first_use_gauge").Value(); got != workers {
			t.Fatalf("round %d: gauge = %v, want %d", round, got, workers)
		}
		if got := r.Histogram("first_use_seconds", LatencyBuckets()).Count(); got != workers {
			t.Fatalf("round %d: histogram count = %d, want %d", round, got, workers)
		}
	}
}

func TestLabelIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", "x", "1", "y", "2")
	b := r.Counter("m", "y", "2", "x", "1") // same set, different order
	if a != b {
		t.Error("label order should not change series identity")
	}
	c := r.Counter("m", "x", "1", "y", "3")
	if a == c {
		t.Error("different label values must be different series")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge over a counter name should panic")
		}
	}()
	r.Gauge("m")
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(3)
	r.Gauge("y").Set(1)
	r.Histogram("z", MessageBuckets()).Observe(1)
	r.Help("x", "nope")
	var c *Counter
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter should read 0")
	}
	var g *Gauge
	g.Set(5)
	if g.Value() != 0 {
		t.Error("nil gauge should read 0")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Cumulative() != nil {
		t.Error("nil histogram should read empty")
	}
	var tr *Tracer
	tr.Record(Event{Kind: "x"})
	if tr.Len() != 0 || tr.Total() != 0 || tr.Last(5) != nil {
		t.Error("nil tracer should read empty")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Error(err)
	}
}

// TestHistogramBuckets pins the bucketing rule: an observation lands in
// the first bucket whose upper bound is >= the value.
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 4.9, 5, 6, 100} {
		h.Observe(v)
	}
	cum := h.Cumulative()
	want := []int64{2, 4, 6, 8} // le=1:2, le=2:4, le=5:6, +Inf:8
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("cumulative[%d] = %d, want %d (full: %v)", i, cum[i], want[i], cum)
		}
	}
	if h.Sum() != 0.5+1+1.5+2+4.9+5+6+100 {
		t.Errorf("sum = %v", h.Sum())
	}
}

// TestPrometheusExpositionGolden pins the exact exposition text for a
// small fixed registry: family ordering, HELP/TYPE lines, label
// rendering and histogram expansion.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Help("elink_messages_total", "Radio transmissions by kind.")
	r.Counter("elink_messages_total", "kind", "expand").Add(40)
	r.Counter("elink_messages_total", "kind", "ack1").Add(2)
	r.Gauge("engine_clusters").Set(7)
	h := r.Histogram("query_latency_seconds", []float64{0.001, 0.01}, "type", "range")
	h.Observe(0.0005)
	h.Observe(0.002)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP elink_messages_total Radio transmissions by kind.
# TYPE elink_messages_total counter
elink_messages_total{kind="ack1"} 2
elink_messages_total{kind="expand"} 40
# TYPE engine_clusters gauge
engine_clusters 7
# TYPE query_latency_seconds histogram
query_latency_seconds_bucket{type="range",le="0.001"} 1
query_latency_seconds_bucket{type="range",le="0.01"} 2
query_latency_seconds_bucket{type="range",le="+Inf"} 3
query_latency_seconds_sum{type="range"} 5.0025
query_latency_seconds_count{type="range"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "k", "v").Add(3)
	r.Histogram("h", []float64{1}).Observe(2)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"a_total"`, `"value": 3`, `"le": "+Inf"`, `"count": 1`} {
		if !strings.Contains(b.String(), frag) {
			t.Errorf("JSON dump missing %s:\n%s", frag, b.String())
		}
	}
}

func TestBucketLayoutsAscending(t *testing.T) {
	for name, bs := range map[string][]float64{
		"latency": LatencyBuckets(), "message": MessageBuckets(), "round": RoundBuckets(),
	} {
		if len(bs) == 0 {
			t.Errorf("%s: empty layout", name)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i] <= bs[i-1] {
				t.Errorf("%s: not ascending at %d: %v", name, i, bs)
			}
		}
	}
	if top := MessageBuckets()[len(MessageBuckets())-1]; top != 1e7 {
		t.Errorf("message top bound = %v, want 1e7", top)
	}
}
