package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Hierarchical span tracing: where the Tracer (trace.go) answers "what
// happened each round/epoch", spans answer "where did this slow epoch's
// TIME go". A SpanTracer hands out root Spans; each span may fork
// children (Child), and finishing the root freezes the whole tree into a
// SpanTrace that the tracer retains two ways — a bounded ring of recent
// traces and a top-K set of the slowest ones — so both "what just
// happened" and "what was ever worst" stay answerable at O(1) memory.
//
// Attribution model: every span's self-time is its duration minus the
// summed durations of its direct children (clamped at zero for parents
// whose children ran concurrently, e.g. fork-join worker spans). Summed
// over a strictly sequential trace, self-times telescope to exactly the
// root's wall time, which is what makes the per-phase tables additive.
// Self-times also feed per-phase reservoirs (PhaseStats: p50/p95/max)
// and, when Instrument attached a registry, span_phase_seconds
// histograms, so scrapes and trace dumps read the same numbers.
//
// The clock is injected (SetClock) so tests can drive spans
// deterministically; span timings never feed figure tables, keeping the
// repo's golden determinism contract untouched. Like the rest of this
// package every method is safe on a nil receiver: an un-instrumented
// call site pays one pointer test per span operation.

// DefaultSpanCapacity is the recent-trace ring size used when
// NewSpanTracer gets a non-positive capacity.
const DefaultSpanCapacity = 256

// DefaultSpanTopK is the slowest-trace set size used when NewSpanTracer
// gets a non-positive k.
const DefaultSpanTopK = 16

// maxPhaseNames bounds the per-phase attribution map; span names beyond
// the cap are lumped into "other" so a buggy call site cannot grow the
// tracer without bound.
const maxPhaseNames = 128

// phaseSampleCap is the per-phase self-time reservoir size the
// percentiles are computed over (the most recent observations win).
const phaseSampleCap = 512

// SpanRecord is one finished span inside a SpanTrace. Times are
// nanosecond offsets from the trace's Start so a trace is
// self-contained and compact.
type SpanRecord struct {
	// ID is the span's index within its trace (0 = root).
	ID int `json:"id"`
	// Parent is the parent span's ID, -1 for the root.
	Parent int `json:"parent"`
	// Name is the phase name ("refit", "journal", ...).
	Name string `json:"name"`
	// StartNs is the span's start, relative to the trace start.
	StartNs int64 `json:"start_ns"`
	// DurNs is the span's wall-clock duration.
	DurNs int64 `json:"dur_ns"`
	// SelfNs is DurNs minus the summed DurNs of direct children,
	// clamped at zero (concurrent children can overlap their parent).
	SelfNs int64 `json:"self_ns"`
}

// SpanTrace is one frozen span tree, produced when a root span finishes.
type SpanTrace struct {
	// Seq is the tracer-wide trace sequence number.
	Seq int64 `json:"seq"`
	// Name is the root span's name ("epoch", "http", ...).
	Name string `json:"name"`
	// Labels carries the root's annotations (epoch number, route,
	// request id, ...).
	Labels map[string]string `json:"labels,omitempty"`
	// Start is the root span's start time (tracer clock).
	Start time.Time `json:"start"`
	// WallNs is the root span's duration.
	WallNs int64 `json:"wall_ns"`
	// Spans holds every finished span of the tree in finish order;
	// Spans[i].ID indexes into start order (0 = root).
	Spans []SpanRecord `json:"spans"`
}

// PhaseStat is one row of the per-phase latency attribution table:
// self-time statistics for every span that carried the phase's name.
// Percentiles are computed over a bounded reservoir of the most recent
// observations; Count, Max and TotalNs are exact over the whole run.
type PhaseStat struct {
	Phase   string  `json:"phase"`
	Count   int64   `json:"count"`
	P50Ns   int64   `json:"p50_ns"`
	P95Ns   int64   `json:"p95_ns"`
	MaxNs   int64   `json:"max_ns"`
	TotalNs int64   `json:"total_ns"`
	P50Us   float64 `json:"p50_us"`
	P95Us   float64 `json:"p95_us"`
	MaxUs   float64 `json:"max_us"`
}

// phaseAgg is the live per-phase accumulator behind PhaseStat.
type phaseAgg struct {
	count   int64
	max     int64
	total   int64
	samples []int64 // ring of the last phaseSampleCap self-times
	next    int
	hist    *Histogram // nil unless Instrument attached a registry
}

// SpanTracer hands out root spans and retains finished traces. All
// methods are safe for concurrent use and on a nil receiver, so call
// sites thread an optional tracer without branching.
type SpanTracer struct {
	// clock is read lock-free on every span start/finish; SetClock swaps
	// the pointer atomically. Nil means time.Now — kept nil rather than
	// pre-stored so the common case is a direct call, not an indirect
	// one through the pointer (spans sit on µs-scale query paths).
	clock atomic.Pointer[func() time.Time]

	// base anchors span timestamps: spans store int64 monotonic
	// nanoseconds since base rather than time.Time, because
	// time.Since(base) reads only the monotonic clock (~half the cost of
	// time.Now) and µs-scale query traces pay 8 clock reads each.
	base time.Time

	mu      sync.Mutex
	origin  time.Time // chrome-trace time zero (construction time)
	ring    []*SpanTrace
	next    int
	wrapped bool
	topK    []*SpanTrace // sorted by WallNs descending, len <= k
	k       int
	seq     int64
	total   int64
	phases  map[string]*phaseAgg
	reg     *Registry
}

// NewSpanTracer returns a tracer retaining the last capacity traces and
// the topK slowest ones (non-positive arguments select the defaults).
func NewSpanTracer(capacity, topK int) *SpanTracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	if topK <= 0 {
		topK = DefaultSpanTopK
	}
	now := time.Now()
	return &SpanTracer{
		base:   now,
		origin: now,
		ring:   make([]*SpanTrace, capacity),
		k:      topK,
		phases: make(map[string]*phaseAgg),
	}
}

// nowNs reads the clock as nanoseconds since the tracer's base.
func (t *SpanTracer) nowNs() int64 {
	if fn := t.clock.Load(); fn != nil {
		return (*fn)().Sub(t.base).Nanoseconds()
	}
	return int64(time.Since(t.base))
}

// SetClock injects the tracer's time source (tests drive spans
// deterministically with it). Passing nil restores time.Now. Set it
// before handing out spans; in-flight spans keep their start times.
func (t *SpanTracer) SetClock(fn func() time.Time) {
	if t == nil {
		return
	}
	if fn == nil {
		t.clock.Store(nil)
		fn = time.Now
	} else {
		t.clock.Store(&fn)
	}
	t.mu.Lock()
	t.origin = fn()
	t.mu.Unlock()
}

// Instrument additionally exports every phase's self-time through reg as
// span_phase_seconds{phase=...} histograms (LatencyBuckets layout). Nil
// detaches. Phases observed before Instrument keep their reservoir
// statistics but start their histogram at the attach point.
func (t *SpanTracer) Instrument(reg *Registry) {
	if t == nil {
		return
	}
	reg.Help("span_phase_seconds", "Span self-time per phase of the traced pipelines.")
	t.mu.Lock()
	t.reg = reg
	for name, agg := range t.phases {
		if reg == nil {
			agg.hist = nil
		} else {
			agg.hist = reg.Histogram("span_phase_seconds", LatencyBuckets(), "phase", name)
		}
	}
	t.mu.Unlock()
}

// Span is one live timed region. Obtain roots from SpanTracer.Start and
// descendants from Child; Finish stamps the end time, and finishing the
// root freezes the tree into a SpanTrace. All methods are safe on a nil
// receiver, and a trace's spans may start/finish from multiple
// goroutines (fork-join worker attribution), though each individual
// span must be finished exactly once.
type Span struct {
	tb     *traceBuilder
	id     int
	parent int
	name   string
	start  int64 // tracer-base-relative nanoseconds
	done   bool
}

// traceBuilder collects a trace's spans while they are live; it is
// shared by every span of one tree and guarded by its own mutex so
// concurrent child spans never contend with other traces.
type traceBuilder struct {
	t      *SpanTracer
	mu     sync.Mutex
	name   string
	labels map[string]string
	start  int64 // tracer-base-relative nanoseconds
	nextID int
	durs   []int64      // per-ID duration, filled at finish
	spans  []SpanRecord // finish order
	keepIf time.Duration
	// pool/npool hand out child Span slots from the rootAlloc block;
	// traceSlot is its pre-reserved SpanTrace. Both save heap allocations
	// on the small traces that dominate the query path.
	pool      []Span
	npool     int
	traceSlot *SpanTrace
}

// rootAlloc fuses the root span, its builder and their small slices into
// one allocation — a trace on the query path is a handful of µs of work,
// so allocator round-trips are a measurable share of its cost.
type rootAlloc struct {
	span  Span
	tb    traceBuilder
	trace SpanTrace
	kids  [7]Span
	durs  [8]int64
	spans [8]SpanRecord
}

// Start opens a root span. Finish it to record the trace.
func (t *SpanTracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	now := t.nowNs()
	ra := &rootAlloc{
		tb: traceBuilder{t: t, name: name, start: now, nextID: 1},
	}
	ra.tb.durs = ra.durs[:1]
	ra.tb.spans = ra.spans[:0]
	ra.tb.pool = ra.kids[:]
	ra.tb.traceSlot = &ra.trace
	ra.span = Span{tb: &ra.tb, id: 0, parent: -1, name: name, start: now}
	return &ra.span
}

// Child opens a sub-span of s. Children may outnumber and outlive
// sibling spans but must finish before their root does.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	tb := s.tb
	tb.mu.Lock()
	id := tb.nextID
	tb.nextID++
	tb.durs = append(tb.durs, 0)
	var c *Span
	if tb.npool < len(tb.pool) {
		c = &tb.pool[tb.npool]
		tb.npool++
	}
	tb.mu.Unlock()
	if c == nil {
		c = new(Span)
	}
	// c is exclusively ours once its slot is claimed under the lock, so
	// the clock read stays outside the critical section.
	*c = Span{tb: tb, id: id, parent: s.id, name: name, start: tb.t.nowNs()}
	return c
}

// Label annotates the span's trace (root labels: epoch number, route,
// request id). Labels are per-trace metadata, not metric labels, so
// values may be unbounded.
func (s *Span) Label(key, value string) {
	if s == nil {
		return
	}
	s.tb.mu.Lock()
	if s.tb.labels == nil {
		s.tb.labels = make(map[string]string, 4)
	}
	s.tb.labels[key] = value
	s.tb.mu.Unlock()
}

// KeepIf drops the finished trace from the ring and top-K store unless
// its wall time reaches min (phase attribution is recorded either way).
// Use it for high-frequency roots — fork-join batches fire thousands of
// times a second and only the slow ones are worth a trace slot.
func (s *Span) KeepIf(min time.Duration) {
	if s == nil {
		return
	}
	s.tb.mu.Lock()
	s.tb.keepIf = min
	s.tb.mu.Unlock()
}

// Finish stamps the span's end. Finishing the root freezes the tree
// into a SpanTrace and hands it to the tracer; spans finished after
// their root are silently dropped (a call-site bug, not worth a panic
// on an observability path).
func (s *Span) Finish() {
	if s == nil || s.done {
		return
	}
	s.done = true
	tb := s.tb
	dur := tb.t.nowNs() - s.start
	if dur < 0 {
		dur = 0
	}
	tb.mu.Lock()
	if s.id < len(tb.durs) {
		tb.durs[s.id] = dur
	}
	tb.spans = append(tb.spans, SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartNs: s.start - tb.start,
		DurNs:   dur,
	})
	if s.id != 0 {
		tb.mu.Unlock()
		return
	}
	// Root finished: compute self-times and freeze the trace.
	var sumBuf [8]int64
	childSum := sumBuf[:0]
	if len(tb.durs) <= len(sumBuf) {
		childSum = sumBuf[:len(tb.durs)]
	} else {
		childSum = make([]int64, len(tb.durs))
	}
	for _, r := range tb.spans {
		if r.Parent >= 0 && r.Parent < len(childSum) {
			childSum[r.Parent] += r.DurNs
		}
	}
	for i := range tb.spans {
		self := tb.spans[i].DurNs - childSum[tb.spans[i].ID]
		if self < 0 {
			self = 0 // concurrent children overlap their parent
		}
		tb.spans[i].SelfNs = self
	}
	trace := tb.traceSlot
	if trace == nil {
		trace = new(SpanTrace)
	}
	*trace = SpanTrace{
		Name:   tb.name,
		Labels: tb.labels,
		Start:  tb.t.base.Add(time.Duration(tb.start)),
		WallNs: dur,
		Spans:  tb.spans,
	}
	keep := tb.keepIf <= 0 || dur >= tb.keepIf.Nanoseconds()
	tb.mu.Unlock()
	tb.t.record(trace, keep)
}

// record files one finished trace: phase attribution always, the ring
// and top-K stores only when keep is set.
func (t *SpanTracer) record(trace *SpanTrace, keep bool) {
	var observe []*Histogram
	var selfs []int64
	t.mu.Lock()
	for _, r := range trace.Spans {
		agg := t.phases[r.Name]
		if agg == nil {
			if len(t.phases) >= maxPhaseNames {
				if agg = t.phases["other"]; agg == nil {
					agg = &phaseAgg{}
					t.phases["other"] = agg
				}
			} else {
				agg = &phaseAgg{}
				if t.reg != nil {
					agg.hist = t.reg.Histogram("span_phase_seconds", LatencyBuckets(), "phase", r.Name)
				}
				t.phases[r.Name] = agg
			}
		}
		agg.count++
		agg.total += r.SelfNs
		if r.SelfNs > agg.max {
			agg.max = r.SelfNs
		}
		if len(agg.samples) < phaseSampleCap {
			agg.samples = append(agg.samples, r.SelfNs)
		} else {
			agg.samples[agg.next] = r.SelfNs
			agg.next = (agg.next + 1) % phaseSampleCap
		}
		if agg.hist != nil {
			observe = append(observe, agg.hist)
			selfs = append(selfs, r.SelfNs)
		}
	}
	t.total++
	if keep {
		trace.Seq = t.seq
		t.seq++
		t.ring[t.next] = trace
		t.next++
		if t.next == len(t.ring) {
			t.next = 0
			t.wrapped = true
		}
		// Top-K: insert by wall time, descending; ties keep the older.
		if len(t.topK) < t.k || trace.WallNs > t.topK[len(t.topK)-1].WallNs {
			i := sort.Search(len(t.topK), func(i int) bool { return t.topK[i].WallNs < trace.WallNs })
			t.topK = append(t.topK, nil)
			copy(t.topK[i+1:], t.topK[i:])
			t.topK[i] = trace
			if len(t.topK) > t.k {
				t.topK = t.topK[:t.k]
			}
		}
	}
	t.mu.Unlock()
	// Histogram observations happen outside the tracer lock; handles are
	// atomic and the slight reorder is invisible to scrapes.
	for i, h := range observe {
		h.Observe(float64(selfs[i]) / 1e9)
	}
}

// Total returns how many traces were ever finished (including dropped
// and evicted ones).
func (t *SpanTracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Len returns how many traces the recent ring currently holds.
func (t *SpanTracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.len()
}

func (t *SpanTracer) len() int {
	if t.wrapped {
		return len(t.ring)
	}
	return t.next
}

// Recent returns the most recent n retained traces, oldest first (n <= 0
// or beyond the buffered count returns everything buffered). Traces are
// frozen at root finish, so the returned pointers are safe to read
// concurrently.
func (t *SpanTracer) Recent(n int) []*SpanTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	have := t.len()
	if n <= 0 || n > have {
		n = have
	}
	out := make([]*SpanTrace, n)
	start := t.next - n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < n; i++ {
		out[i] = t.ring[(start+i)%len(t.ring)]
	}
	return out
}

// Slowest returns the top-K slowest retained traces, slowest first.
func (t *SpanTracer) Slowest() []*SpanTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*SpanTrace(nil), t.topK...)
}

// PhaseStats returns the per-phase latency attribution table, sorted by
// total self-time descending (the biggest consumer first).
func (t *SpanTracer) PhaseStats() []PhaseStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]PhaseStat, 0, len(t.phases))
	for name, agg := range t.phases {
		ps := PhaseStat{Phase: name, Count: agg.count, MaxNs: agg.max, TotalNs: agg.total}
		if n := len(agg.samples); n > 0 {
			sorted := append([]int64(nil), agg.samples...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			ps.P50Ns = sorted[n/2]
			p95 := (n * 95) / 100
			if p95 >= n {
				p95 = n - 1
			}
			ps.P95Ns = sorted[p95]
		}
		ps.P50Us = float64(ps.P50Ns) / 1e3
		ps.P95Us = float64(ps.P95Ns) / 1e3
		ps.MaxUs = float64(ps.MaxNs) / 1e3
		out = append(out, ps)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalNs != out[j].TotalNs {
			return out[i].TotalNs > out[j].TotalNs
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// spansDump is the WriteJSON payload.
type spansDump struct {
	Total   int64        `json:"total"`
	Phases  []PhaseStat  `json:"phases"`
	Recent  []*SpanTrace `json:"recent"`
	Slowest []*SpanTrace `json:"slowest"`
}

// WriteJSON dumps the attribution table, the most recent n retained
// traces (n <= 0: everything buffered) and the top-K slowest ones as one
// JSON object.
func (t *SpanTracer) WriteJSON(w io.Writer, n int) error {
	if t == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spansDump{
		Total:   t.Total(),
		Phases:  t.PhaseStats(),
		Recent:  t.Recent(n),
		Slowest: t.Slowest(),
	})
}

// WriteChromeTrace writes the most recent n retained traces (n <= 0:
// everything buffered) in Chrome trace-event JSON array format, loadable
// in Perfetto or chrome://tracing. Each trace renders as its own named
// track (pid 1, tid = trace seq); timestamps are microseconds since the
// tracer's construction.
func (t *SpanTracer) WriteChromeTrace(w io.Writer, n int) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	t.mu.Lock()
	origin := t.origin
	t.mu.Unlock()
	traces := t.Recent(n)
	bw := bufio.NewWriter(w)
	bw.WriteByte('[')
	first := true
	emit := func(v any) error {
		raw, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if !first {
			bw.WriteByte(',')
		}
		bw.WriteByte('\n')
		first = false
		_, err = bw.Write(raw)
		return err
	}
	type chromeEvent struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur,omitempty"`
		Pid  int            `json:"pid"`
		Tid  int64          `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	}
	for _, tr := range traces {
		tid := tr.Seq
		meta := chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": fmt.Sprintf("%s #%d", tr.Name, tr.Seq)},
		}
		if err := emit(meta); err != nil {
			return err
		}
		base := float64(tr.Start.Sub(origin).Nanoseconds()) / 1e3
		for _, s := range tr.Spans {
			args := map[string]any{"self_us": float64(s.SelfNs) / 1e3}
			if s.Parent == -1 {
				for k, v := range tr.Labels {
					args[k] = v
				}
			}
			ev := chromeEvent{
				Name: s.Name, Ph: "X",
				Ts:  base + float64(s.StartNs)/1e3,
				Dur: float64(s.DurNs) / 1e3,
				Pid: 1, Tid: tid,
				Args: args,
			}
			if err := emit(ev); err != nil {
				return err
			}
		}
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}
