package obs

import "testing"

// BenchmarkQueryShapedTrace times the exact span tree the engine's
// range-query path builds (root + q-backbone/q-clusters/q-aggregate):
// the per-trace cost here, times the query rate, is the tracing
// overhead a deployment pays. The shape matters — small sequential
// trees exercise the rootAlloc pooling, the monotonic clock reads and
// record()'s phase attribution, which together dominate the cost.
func BenchmarkQueryShapedTrace(b *testing.B) {
	t := NewSpanTracer(256, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := t.Start("range-query")
		for _, n := range [3]string{"q-backbone", "q-clusters", "q-aggregate"} {
			c := root.Child(n)
			c.Finish()
		}
		root.Finish()
	}
}

// BenchmarkEpochShapedTrace times the epoch pipeline's span tree
// (root + five sequential phase children plus a label), the other trace
// shape the streaming engine emits on every recluster round.
func BenchmarkEpochShapedTrace(b *testing.B) {
	t := NewSpanTracer(256, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := t.Start("epoch")
		for _, n := range [5]string{"validate", "refit", "maintain", "index", "publish"} {
			c := root.Child(n)
			c.Finish()
		}
		root.Label("epoch", "42")
		root.Finish()
	}
}
