package obs

import (
	"runtime"
	"strconv"
	"time"
)

// RegisterBuildInfo registers the standard process-identity metrics every
// elink daemon exports: an elink_build_info gauge pinned at 1 whose
// labels carry the build version, Go toolchain version and GOMAXPROCS,
// plus process_start_time_seconds and a live process_uptime_seconds
// computed at scrape time. One helper so elink-serve and any future
// daemon expose identical series. Safe on a nil registry; an empty
// version is reported as "dev".
func RegisterBuildInfo(reg *Registry, version string) {
	if reg == nil {
		return
	}
	if version == "" {
		version = "dev"
	}
	reg.Help("elink_build_info", "Build metadata; value is always 1.")
	reg.Gauge("elink_build_info",
		"version", version,
		"go_version", runtime.Version(),
		"gomaxprocs", strconv.Itoa(runtime.GOMAXPROCS(0)),
	).Set(1)

	start := time.Now()
	reg.Help("process_start_time_seconds", "Unix time the process registered its metrics.")
	reg.Gauge("process_start_time_seconds").Set(float64(start.UnixNano()) / 1e9)
	reg.Help("process_uptime_seconds", "Seconds since the process registered its metrics.")
	reg.GaugeFunc("process_uptime_seconds", func() float64 {
		return time.Since(start).Seconds()
	})
}
