// Package obs is the repository's unified observability layer: a
// lightweight, allocation-conscious, concurrency-safe metrics registry
// (counters, gauges, histograms with fixed bucket layouts) plus a
// structured event tracer that records per-round simulator activity into
// a bounded ring buffer (trace.go).
//
// The paper's headline claims are quantitative — O(√N log N) rounds and
// O(N) messages for ELink, amortized maintenance cost under the slack
// protocol — and this package makes those quantities observable live,
// per phase and per algorithm, through the same instrumentation in the
// simulator, the streaming engine and the serving daemon. The registry
// exports itself in Prometheus text format (WritePrometheus) for
// scraping and as JSON (WriteJSON) for the bench/experiments harness, so
// figure regeneration and production monitoring read the same numbers.
//
// Instrumentation is opt-in everywhere: call sites take a *Registry
// and/or *Tracer that may be nil, and every metric method is safe on a
// nil receiver, so the un-instrumented hot paths pay a single pointer
// test. Call sites are expected to cache the *Counter/*Gauge/*Histogram
// handles they use on hot paths; lookups take the registry mutex, but
// updates on a handle are a single atomic operation.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. All methods are safe for
// concurrent use and on a nil receiver (no-op / zero).
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (negative deltas are a caller bug but are not checked on
// the hot path).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down, stored as atomic bits.
// All methods are safe for concurrent use and on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge's value.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into a fixed ascending bucket layout
// (upper bounds; an implicit +Inf bucket catches the rest). All methods
// are safe for concurrent use and on a nil receiver. Snapshot reads are
// not atomic across buckets — scrapes may see an observation's bucket
// before its sum — which is the usual Prometheus-client trade-off.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	owned := append([]float64(nil), bounds...)
	return &Histogram{bounds: owned, buckets: make([]atomic.Int64, len(owned)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// Cumulative returns the cumulative per-bucket counts, one per bound
// plus the final +Inf bucket (== Count modulo scrape races).
func (h *Histogram) Cumulative() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.buckets))
	var c int64
	for i := range h.buckets {
		c += h.buckets[i].Load()
		out[i] = c
	}
	return out
}

// metricKind discriminates what a series holds.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// labelPair is one resolved label.
type labelPair struct{ key, value string }

// series is one labelled instance of a metric family.
type series struct {
	labels []labelPair // sorted by key
	ctr    *Counter
	gauge  *Gauge
	gfn    func() float64 // set by GaugeFunc; read at scrape time
	hist   *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	kind   metricKind
	help   string
	series map[string]*series // keyed by rendered label string
}

// Registry holds metric families and hands out live handles. The zero
// value is not usable; construct with NewRegistry. A nil *Registry is a
// valid "observability off" value for the helper constructors below.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Help sets the family's HELP text (idempotent; the last call wins).
// Creating a metric first and describing it later is fine.
func (r *Registry) Help(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		f.help = text
		return
	}
	r.families[name] = &family{name: name, help: text, series: make(map[string]*series)}
}

// lookup finds or creates the series for name+labels, checking the kind,
// and allocates its typed handle (using buckets for histograms) while
// still holding r.mu so concurrent first users agree on one handle.
// An empty (created-by-Help-only) family adopts the first kind requested.
func (r *Registry) lookup(name string, kind metricKind, buckets []float64, labels []string) *series {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %q: odd label list %v", name, labels))
	}
	pairs := make([]labelPair, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, labelPair{key: labels[i], value: labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].key < pairs[j].key })
	key := renderLabels(pairs)

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else if len(f.series) == 0 {
		f.kind = kind
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: pairs}
		f.series[key] = s
	}
	switch kind {
	case kindCounter:
		if s.ctr == nil {
			s.ctr = &Counter{}
		}
	case kindGauge:
		if s.gauge == nil {
			s.gauge = &Gauge{}
		}
	case kindHistogram:
		if s.hist == nil {
			s.hist = newHistogram(buckets)
		}
	}
	return s
}

// Counter returns the counter for name and the given label key/value
// pairs, creating it on first use. Labels are variadic "key", "value"
// alternations; the same set in any order names the same series.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindCounter, nil, labels).ctr
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindGauge, nil, labels).gauge
}

// GaugeFunc registers a gauge whose value fn computes at scrape time
// (process uptime, queue depths — anything cheaper to derive than to
// maintain). The first registration of a series wins and the function is
// immutable afterwards, so concurrent scrapes never race a swap; calls
// for a series that already exists are ignored.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	if r == nil || fn == nil {
		return
	}
	s := r.lookup(name, kindGauge, nil, labels)
	r.mu.Lock()
	if s.gfn == nil {
		s.gfn = fn
	}
	r.mu.Unlock()
}

// Histogram returns the histogram for name+labels, creating it with the
// given bucket bounds on first use. Later calls for an existing series
// keep the original layout regardless of the buckets argument, so every
// series of a family shares one layout in practice.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindHistogram, buckets, labels).hist
}

// renderLabels formats sorted pairs as `k1="v1",k2="v2"` with Prometheus
// escaping of the values.
func renderLabels(pairs []labelPair) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Fixed bucket layouts shared across the repository, so dashboards can
// aggregate like with like.

// LatencyBuckets is the query-latency layout in seconds: 1µs to 10s in
// roughly 1-2.5-5 decades. Returns a fresh slice.
func LatencyBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// MessageBuckets is the message-count layout: 1 to 10M in 1-2-5 decades.
// Returns a fresh slice.
func MessageBuckets() []float64 {
	out := make([]float64, 0, 22)
	for decade := 1.0; decade <= 1e7; decade *= 10 {
		out = append(out, decade, 2*decade, 5*decade)
	}
	return out[:22] // ..., 1e7
}

// RoundBuckets is the round-count layout: powers of two from 1 to 65536
// (O(√N log N) rounds stay far left of the top for any feasible N).
// Returns a fresh slice.
func RoundBuckets() []float64 {
	out := make([]float64, 17)
	for i := range out {
		out[i] = float64(int64(1) << i)
	}
	return out
}
