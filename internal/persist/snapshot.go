package persist

import (
	"fmt"
	"io"
	"time"

	"elink/internal/ar"
	"elink/internal/cluster"
	"elink/internal/index"
	"elink/internal/metric"
	"elink/internal/obs"
	"elink/internal/topology"
	"elink/internal/update"
)

func topoNode(v int64) topology.NodeID { return topology.NodeID(v) }

// ConfigState is the engine-configuration fingerprint embedded in every
// snapshot. Restore refuses to load state into an engine whose
// configuration differs — replaying a WAL against different δ/slack/seed
// would silently diverge from the pre-crash trajectory instead of
// reproducing it.
type ConfigState struct {
	Nodes               int
	Order               int
	Delta               float64
	Slack               float64
	Seed                int64
	Mode                int
	Policy              int
	FragmentationFactor float64
	Period              int
	WarmupObs           int
}

// EngineState is the complete serializable state of a stream.Engine.
// internal/stream assembles it under the engine lock and applies it on
// restore; this package only encodes and decodes it.
type EngineState struct {
	Config ConfigState

	// Seq is the engine's ingest sequence number — the count of
	// successfully applied batches. WAL records carry the same counter,
	// which is how recovery knows where the snapshot ends and the tail
	// begins.
	Seq            int64
	Epoch          int64
	SinceRecluster int64
	Ready          bool
	Warm           int
	FeatCovered    int

	Models  []ar.State // nil for Order == 0 (feature-push) engines
	Feats   []metric.Feature
	FeatSet []bool

	Maint *update.State // nil before bootstrap
	Index *index.State  // nil before bootstrap

	Readings    int64
	Updates     int64
	Reclusters  int64
	Rebuilds    int64
	RefreshMsgs int64

	Screening      update.Counters
	MaintMsgs      cluster.Stats
	BootstrapStats cluster.Stats
	ReclusterStats cluster.Stats
	RebuildStats   cluster.Stats
}

// SnapshotInfo summarizes one written snapshot.
type SnapshotInfo struct {
	Bytes    int64         `json:"bytes"`
	Seq      int64         `json:"seq"`
	Epoch    int64         `json:"epoch"`
	Duration time.Duration `json:"durationNs"`
}

// WriteSnapshot encodes st to w in the versioned section format and
// returns the number of bytes written.
func WriteSnapshot(w io.Writer, st *EngineState) (int64, error) {
	return WriteSnapshotSpanned(w, st, nil)
}

// WriteSnapshotSpanned is WriteSnapshot with each section's encode+write
// traced as an "enc-<section>" child of parent, so a slow snapshot shows
// which section (models, index, ...) carried the bytes. A nil parent
// disables tracing; span methods are nil-safe.
func WriteSnapshotSpanned(w io.Writer, st *EngineState, parent *obs.Span) (int64, error) {
	var total int64
	hdr := make([]byte, 0, 12)
	hdr = append(hdr, snapMagic...)
	var e enc
	e.b = hdr
	e.u32(SnapshotVersion)
	n, err := w.Write(e.b)
	total += int64(n)
	if err != nil {
		return total, err
	}

	write := func(name string, tag uint8, encode func() []byte) error {
		if err != nil {
			return err
		}
		sp := parent.Child("enc-" + name)
		defer sp.Finish()
		var wn int64
		wn, err = writeSection(w, tag, encode())
		total += wn
		return err
	}

	if err := write("meta", secMeta, func() []byte { return encodeMeta(st) }); err != nil {
		return total, err
	}
	if err := write("models", secModels, func() []byte { return encodeModels(st.Models) }); err != nil {
		return total, err
	}
	if err := write("feats", secFeats, func() []byte { return encodeFeats(st) }); err != nil {
		return total, err
	}
	if st.Maint != nil {
		if err := write("maint", secMaint, func() []byte { return encodeMaint(st.Maint) }); err != nil {
			return total, err
		}
	}
	if st.Index != nil {
		if err := write("index", secIndex, func() []byte { return encodeIndex(st.Index) }); err != nil {
			return total, err
		}
	}
	if err := write("telem", secTelem, func() []byte { return encodeTelem(st) }); err != nil {
		return total, err
	}
	if err := write("end", secEnd, func() []byte { return nil }); err != nil {
		return total, err
	}
	return total, nil
}

// ReadSnapshot decodes a snapshot from r. It returns ErrVersion for
// formats newer than this build and ErrCorrupt (wrapped) for any
// malformed input; it never panics.
func ReadSnapshot(r io.Reader) (*EngineState, error) {
	hdr := make([]byte, len(snapMagic)+4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, corruptf("truncated snapshot header")
	}
	if string(hdr[:len(snapMagic)]) != snapMagic {
		return nil, corruptf("bad magic %q", hdr[:len(snapMagic)])
	}
	ver := dec{b: hdr[len(snapMagic):]}
	if v := ver.u32(); v != SnapshotVersion {
		return nil, fmt.Errorf("%w: snapshot version %d, this build reads %d", ErrVersion, v, SnapshotVersion)
	}

	st := &EngineState{}
	seen := make(map[uint8]bool)
	for {
		tag, payload, err := readSection(r)
		if err != nil {
			return nil, err
		}
		if tag == secEnd {
			break
		}
		if seen[tag] {
			return nil, corruptf("duplicate section %d", tag)
		}
		seen[tag] = true
		d := dec{b: payload}
		switch tag {
		case secMeta:
			decodeMeta(&d, st)
		case secModels:
			st.Models = decodeModels(&d)
		case secFeats:
			decodeFeats(&d, st)
		case secMaint:
			st.Maint = decodeMaint(&d)
		case secIndex:
			st.Index = decodeIndex(&d)
		case secTelem:
			decodeTelem(&d, st)
		default:
			// Unknown (future, additive) section: skip it. Its CRC was
			// already verified.
			continue
		}
		if d.err != nil {
			return nil, fmt.Errorf("section %d: %w", tag, d.err)
		}
	}
	if !seen[secMeta] || !seen[secFeats] {
		return nil, corruptf("missing required sections (meta %v, feats %v)", seen[secMeta], seen[secFeats])
	}
	if st.Ready && (st.Maint == nil || st.Index == nil) {
		return nil, corruptf("ready engine without maintainer/index sections")
	}
	return st, nil
}

func encodeMeta(st *EngineState) []byte {
	var e enc
	e.i64(int64(st.Config.Nodes))
	e.i64(int64(st.Config.Order))
	e.f64(st.Config.Delta)
	e.f64(st.Config.Slack)
	e.i64(st.Config.Seed)
	e.i64(int64(st.Config.Mode))
	e.i64(int64(st.Config.Policy))
	e.f64(st.Config.FragmentationFactor)
	e.i64(int64(st.Config.Period))
	e.i64(int64(st.Config.WarmupObs))
	e.i64(st.Seq)
	e.i64(st.Epoch)
	e.i64(st.SinceRecluster)
	e.bool(st.Ready)
	e.i64(int64(st.Warm))
	e.i64(int64(st.FeatCovered))
	return e.b
}

func decodeMeta(d *dec, st *EngineState) {
	st.Config.Nodes = int(d.i64())
	st.Config.Order = int(d.i64())
	st.Config.Delta = d.f64()
	st.Config.Slack = d.f64()
	st.Config.Seed = d.i64()
	st.Config.Mode = int(d.i64())
	st.Config.Policy = int(d.i64())
	st.Config.FragmentationFactor = d.f64()
	st.Config.Period = int(d.i64())
	st.Config.WarmupObs = int(d.i64())
	st.Seq = d.i64()
	st.Epoch = d.i64()
	st.SinceRecluster = d.i64()
	st.Ready = d.bool()
	st.Warm = int(d.i64())
	st.FeatCovered = int(d.i64())
}

func encodeModels(models []ar.State) []byte {
	var e enc
	e.u32(uint32(len(models)))
	for _, m := range models {
		e.i64(int64(m.Order))
		e.floats(m.Coef)
		e.floats(m.P)
		e.floats(m.Lags)
		e.i64(int64(m.Seen))
	}
	return e.b
}

func decodeModels(d *dec) []ar.State {
	n := d.count(8 + 3*4 + 8) // per model: order + three slice headers + seen
	if d.err != nil || n == 0 {
		return nil
	}
	models := make([]ar.State, n)
	for i := range models {
		models[i] = ar.State{
			Order: int(d.i64()),
			Coef:  d.floats(),
			P:     d.floats(),
			Lags:  d.floats(),
			Seen:  int(d.i64()),
		}
		if d.err != nil {
			return nil
		}
	}
	return models
}

func encodeFeats(st *EngineState) []byte {
	var e enc
	e.features(st.Feats)
	e.u32(uint32(len(st.FeatSet)))
	for _, b := range st.FeatSet {
		e.bool(b)
	}
	return e.b
}

func decodeFeats(d *dec, st *EngineState) {
	st.Feats = d.features()
	n := d.count(1)
	if d.err != nil {
		return
	}
	st.FeatSet = make([]bool, n)
	for i := range st.FeatSet {
		st.FeatSet[i] = d.bool()
	}
}

func encodeMaint(m *update.State) []byte {
	var e enc
	e.features(m.Feats)
	e.u32(uint32(len(m.Clusters)))
	for _, cs := range m.Clusters {
		e.i64(int64(cs.ID))
		e.i64(int64(cs.Root))
		e.nodes(cs.Members)
	}
	e.i64(int64(m.NextID))
	e.nodes(m.Parent)
	ds := make([]int64, len(m.Depth))
	for i, v := range m.Depth {
		ds[i] = int64(v)
	}
	e.ints(ds)
	e.features(m.RootFeatAt)
	e.stats(m.Stats)
	encodeCounters(&e, m.Counters)
	e.i64(int64(m.InitialClusters))
	return e.b
}

func decodeMaint(d *dec) *update.State {
	m := &update.State{Feats: d.features()}
	n := d.count(8 + 8 + 4)
	if d.err != nil {
		return nil
	}
	m.Clusters = make([]update.ClusterState, n)
	for i := range m.Clusters {
		m.Clusters[i].ID = int(d.i64())
		m.Clusters[i].Root = topoNode(d.i64())
		m.Clusters[i].Members = d.nodes()
		if d.err != nil {
			return nil
		}
	}
	m.NextID = int(d.i64())
	m.Parent = d.nodes()
	for _, v := range d.ints() {
		m.Depth = append(m.Depth, int(v))
	}
	m.RootFeatAt = d.features()
	m.Stats = d.stats()
	m.Counters = decodeCounters(d)
	m.InitialClusters = int(d.i64())
	if d.err != nil {
		return nil
	}
	return m
}

func encodeIndex(ix *index.State) []byte {
	var e enc
	e.features(ix.Features)
	co := make([]int64, len(ix.ClusterOf))
	for i, v := range ix.ClusterOf {
		co[i] = int64(v)
	}
	e.ints(co)
	e.u32(uint32(len(ix.Clusters)))
	for _, cl := range ix.Clusters {
		e.i64(int64(cl.Root))
		e.nodes(cl.Members)
		e.u32(uint32(len(cl.Entries)))
		for _, en := range cl.Entries {
			e.i64(int64(en.ID))
			e.i64(int64(en.Parent))
			e.nodes(en.Children)
			e.f64(en.Radius)
			e.i64(int64(en.Depth))
		}
	}
	e.u32(uint32(len(ix.Backbone)))
	for _, be := range ix.Backbone {
		e.i64(int64(be.A))
		e.i64(int64(be.B))
		e.i64(int64(be.Hops))
	}
	e.stats(ix.BuildStats)
	return e.b
}

func decodeIndex(d *dec) *index.State {
	ix := &index.State{Features: d.features()}
	for _, v := range d.ints() {
		ix.ClusterOf = append(ix.ClusterOf, int(v))
	}
	nc := d.count(8 + 4 + 4)
	if d.err != nil {
		return nil
	}
	ix.Clusters = make([]index.ClusterIndexState, nc)
	for i := range ix.Clusters {
		cl := &ix.Clusters[i]
		cl.Root = topoNode(d.i64())
		cl.Members = d.nodes()
		ne := d.count(8 + 8 + 4 + 8 + 8)
		if d.err != nil {
			return nil
		}
		cl.Entries = make([]index.EntryState, ne)
		for j := range cl.Entries {
			en := &cl.Entries[j]
			en.ID = topoNode(d.i64())
			en.Parent = topoNode(d.i64())
			en.Children = d.nodes()
			en.Radius = d.f64()
			en.Depth = int(d.i64())
			if d.err != nil {
				return nil
			}
		}
	}
	nb := d.count(24)
	if d.err != nil {
		return nil
	}
	ix.Backbone = make([]index.BackboneEdge, nb)
	for i := range ix.Backbone {
		ix.Backbone[i].A = topoNode(d.i64())
		ix.Backbone[i].B = topoNode(d.i64())
		ix.Backbone[i].Hops = int(d.i64())
	}
	ix.BuildStats = d.stats()
	if d.err != nil {
		return nil
	}
	return ix
}

func encodeTelem(st *EngineState) []byte {
	var e enc
	e.i64(st.Readings)
	e.i64(st.Updates)
	e.i64(st.Reclusters)
	e.i64(st.Rebuilds)
	e.i64(st.RefreshMsgs)
	encodeCounters(&e, st.Screening)
	e.stats(st.MaintMsgs)
	e.stats(st.BootstrapStats)
	e.stats(st.ReclusterStats)
	e.stats(st.RebuildStats)
	return e.b
}

func decodeTelem(d *dec, st *EngineState) {
	st.Readings = d.i64()
	st.Updates = d.i64()
	st.Reclusters = d.i64()
	st.Rebuilds = d.i64()
	st.RefreshMsgs = d.i64()
	st.Screening = decodeCounters(d)
	st.MaintMsgs = d.stats()
	st.BootstrapStats = d.stats()
	st.ReclusterStats = d.stats()
	st.RebuildStats = d.stats()
}

func encodeCounters(e *enc, c update.Counters) {
	e.i64(int64(c.Updates))
	e.i64(int64(c.ScreenedA1))
	e.i64(int64(c.ScreenedA2))
	e.i64(int64(c.ScreenedA3))
	e.i64(int64(c.RootFetches))
	e.i64(int64(c.Detaches))
	e.i64(int64(c.Rejoins))
	e.i64(int64(c.Singletons))
	e.i64(int64(c.RootDrifts))
}

func decodeCounters(d *dec) update.Counters {
	return update.Counters{
		Updates:     int(d.i64()),
		ScreenedA1:  int(d.i64()),
		ScreenedA2:  int(d.i64()),
		ScreenedA3:  int(d.i64()),
		RootFetches: int(d.i64()),
		Detaches:    int(d.i64()),
		Rejoins:     int(d.i64()),
		Singletons:  int(d.i64()),
		RootDrifts:  int(d.i64()),
	}
}
