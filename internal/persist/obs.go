package persist

import "elink/internal/obs"

// WALMetrics carries the WAL's telemetry handles. The zero value is
// inert — every method is safe on unset handles — so callers without a
// registry pass nothing.
type WALMetrics struct {
	Records  *obs.Counter // persist_wal_records_total
	Bytes    *obs.Counter // persist_wal_bytes_total
	Fsyncs   *obs.Counter // persist_wal_fsyncs_total
	Replayed *obs.Counter // persist_wal_replayed_records_total
}

// NewWALMetrics registers the WAL counter set on reg. A nil registry
// yields the inert zero value.
func NewWALMetrics(reg *obs.Registry) WALMetrics {
	if reg == nil {
		return WALMetrics{}
	}
	reg.Help("persist_wal_records_total", "Epoch-batch records appended to the write-ahead log.")
	reg.Help("persist_wal_bytes_total", "Framed bytes appended to the write-ahead log.")
	reg.Help("persist_wal_fsyncs_total", "fsync calls issued by the write-ahead log.")
	reg.Help("persist_wal_replayed_records_total", "WAL records re-applied during recovery.")
	return WALMetrics{
		Records:  reg.Counter("persist_wal_records_total"),
		Bytes:    reg.Counter("persist_wal_bytes_total"),
		Fsyncs:   reg.Counter("persist_wal_fsyncs_total"),
		Replayed: reg.Counter("persist_wal_replayed_records_total"),
	}
}

func (m WALMetrics) appended(frameBytes int64) {
	if m.Records != nil {
		m.Records.Inc()
	}
	if m.Bytes != nil {
		m.Bytes.Add(frameBytes)
	}
}

func (m WALMetrics) synced() {
	if m.Fsyncs != nil {
		m.Fsyncs.Inc()
	}
}

func (m WALMetrics) replayed() {
	if m.Replayed != nil {
		m.Replayed.Inc()
	}
}
