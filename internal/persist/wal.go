package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"elink/internal/obs"
)

// FsyncPolicy controls when WAL appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs after every append: no committed batch is ever
	// lost, at the cost of one disk flush per ingest. The default.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs at most once per Options.FsyncEvery: a crash
	// loses at most the last interval's batches, which recovery then
	// simply lacks — the recovered state is still exact, just older.
	FsyncInterval
	// FsyncNever leaves flushing to the OS: fastest, loses up to the OS
	// write-back window on a machine crash (a process kill loses nothing
	// because the data is already in the page cache).
	FsyncNever
)

// String implements fmt.Stringer.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return "unknown"
}

// ParseFsyncPolicy parses "always" | "interval" | "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("persist: unknown fsync policy %q (want always | interval | never)", s)
}

// Record kinds.
const (
	RecordReadings = 1 // raw measurements (Engine.Ingest)
	RecordFeatures = 2 // pre-fitted feature vectors (Engine.IngestFeatures)
)

// BatchRecord is one journaled ingest batch. Nodes/Values carry a
// readings batch; Nodes/Features carry a feature batch. Seq is the
// engine's ingest sequence number after applying the batch.
type BatchRecord struct {
	Seq      int64
	Kind     uint8
	Nodes    []int64
	Values   []float64
	Features [][]float64
}

// WALOptions parameterizes OpenWAL. The zero value is FsyncAlways with
// 8 MiB segments.
type WALOptions struct {
	Fsync FsyncPolicy
	// FsyncEvery is FsyncInterval's flush period (default 1s).
	FsyncEvery time.Duration
	// SegmentBytes rotates segments once they exceed this size
	// (default 8 MiB).
	SegmentBytes int64
	// Metrics, when non-zero, receives append/replay/fsync telemetry.
	Metrics WALMetrics
}

func (o WALOptions) withDefaults() WALOptions {
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = time.Second
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	return o
}

// WAL is an append-only, segmented journal of ingest batches. Appends
// are serialized internally; one WAL has a single writer (the engine's
// ingest path) and replay runs before appending begins.
type WAL struct {
	dir  string
	opts WALOptions

	mu       sync.Mutex
	f        *os.File
	size     int64
	seg      int
	lastSeq  int64
	lastSync time.Time
	dirty    bool
}

const walSegPrefix = "wal-"
const walSegSuffix = ".seg"

func segName(idx int) string { return fmt.Sprintf("%s%08d%s", walSegPrefix, idx, walSegSuffix) }

// OpenWAL opens (creating if needed) the journal in dir. Existing
// segments are preserved for replay; appends always start a fresh
// segment, so a torn tail from a previous crash is never appended
// after. Before any of that, the newest segment is repaired: a torn
// tail (the signature of a crash mid-append) is truncated away at the
// last intact record. Repair is what keeps a second crash survivable —
// once appends rotate past the damaged segment it is no longer the
// final one, and replay would otherwise have to treat the tear as
// unrecoverable corruption.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: create WAL dir: %w", err)
	}
	w := &WAL{dir: dir, opts: opts.withDefaults()}
	segs, err := w.segments()
	if err != nil {
		return nil, err
	}
	w.seg = 0
	if len(segs) > 0 {
		if err := repairSegmentTail(filepath.Join(dir, segName(segs[len(segs)-1]))); err != nil {
			return nil, err
		}
		w.seg = segs[len(segs)-1] + 1
	}
	return w, nil
}

// repairSegmentTail truncates a segment at its last intact record,
// sealing a tail torn by a crash mid-append. Truncation drops exactly
// the bytes replay would refuse to deliver anyway (everything after the
// first undecodable frame), so no committed record is ever lost. A
// segment that died before its header finished holds nothing and is
// removed outright. Damage truncation cannot explain — wrong magic or
// version in a complete header — is left in place for replay to report.
func repairSegmentTail(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("persist: repair WAL tail: %w", err)
	}
	hdrLen := len(walMagic) + 4
	if len(data) < hdrLen {
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("persist: repair WAL tail: %w", err)
		}
		return nil
	}
	if string(data[:len(walMagic)]) != walMagic ||
		binary.LittleEndian.Uint32(data[len(walMagic):]) != WALVersion {
		return nil
	}
	intact := hdrLen
	b := data[hdrLen:]
	for len(b) > 0 {
		_, rest, err := decodeRecord(b)
		if err != nil {
			break
		}
		intact += len(b) - len(rest)
		b = rest
	}
	if intact == len(data) {
		return nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("persist: repair WAL tail: %w", err)
	}
	if err := f.Truncate(int64(intact)); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("persist: repair WAL tail: %w", err)
	}
	return nil
}

// segments lists existing segment indices in ascending order.
func (w *WAL) segments() ([]int, error) {
	ents, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: list WAL dir: %w", err)
	}
	var segs []int
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, walSegPrefix) || !strings.HasSuffix(name, walSegSuffix) {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(name, walSegPrefix+"%08d"+walSegSuffix, &idx); err != nil {
			continue
		}
		segs = append(segs, idx)
	}
	sort.Ints(segs)
	return segs, nil
}

// Append journals one batch record and applies the fsync policy. It
// must not be called concurrently with Replay.
func (w *WAL) Append(rec *BatchRecord) error {
	return w.AppendSpanned(rec, nil)
}

// AppendSpanned is Append traced as a "wal-append" child of parent, with
// the fsync (when the policy triggers one) as its own "fsync" child so a
// slow epoch distinguishes encode/write cost from flush stalls. A nil
// parent disables tracing; span methods are nil-safe.
func (w *WAL) AppendSpanned(rec *BatchRecord, parent *obs.Span) error {
	sp := parent.Child("wal-append")
	defer sp.Finish()
	w.mu.Lock()
	defer w.mu.Unlock()
	if rec.Seq <= w.lastSeq && w.lastSeq != 0 {
		return fmt.Errorf("persist: WAL append seq %d not after %d", rec.Seq, w.lastSeq)
	}
	if w.f == nil || w.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	frame := encodeRecord(rec)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("persist: WAL append: %w", err)
	}
	w.size += int64(len(frame))
	w.lastSeq = rec.Seq
	w.dirty = true
	w.opts.Metrics.appended(int64(len(frame)))
	sync := func() error {
		fs := sp.Child("fsync")
		defer fs.Finish()
		return w.syncLocked()
	}
	switch w.opts.Fsync {
	case FsyncAlways:
		return sync()
	case FsyncInterval:
		if time.Since(w.lastSync) >= w.opts.FsyncEvery {
			return sync()
		}
	}
	return nil
}

func (w *WAL) rotateLocked() error {
	if w.f != nil {
		if err := w.syncLocked(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("persist: close WAL segment: %w", err)
		}
		w.f = nil
	}
	path := filepath.Join(w.dir, segName(w.seg))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: create WAL segment: %w", err)
	}
	hdr := make([]byte, 0, 12)
	hdr = append(hdr, walMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, WALVersion)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("persist: write WAL segment header: %w", err)
	}
	w.f = f
	w.size = int64(len(hdr))
	w.seg++
	return nil
}

func (w *WAL) syncLocked() error {
	if !w.dirty || w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("persist: WAL fsync: %w", err)
	}
	w.dirty = false
	w.lastSync = time.Now()
	w.opts.Metrics.synced()
	return nil
}

// Sync flushes any buffered appends to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

// Close syncs and closes the active segment. The WAL can not be
// appended to afterwards.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if err := w.syncLocked(); err != nil {
		return err
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// Replay streams every intact record with Seq > afterSeq, oldest first,
// to fn. A truncated or corrupt tail in the newest segment — the
// expected signature of a crash mid-append — ends replay cleanly at the
// last intact record; the same damage in an older segment is an error,
// because records after it would replay out of order.
func (w *WAL) Replay(afterSeq int64, fn func(*BatchRecord) error) error {
	w.mu.Lock()
	segs, err := w.segments()
	w.mu.Unlock()
	if err != nil {
		return err
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		if err := w.replaySegment(seg, last, afterSeq, fn); err != nil {
			return err
		}
	}
	return nil
}

func (w *WAL) replaySegment(seg int, tolerateTail bool, afterSeq int64, fn func(*BatchRecord) error) error {
	path := filepath.Join(w.dir, segName(seg))
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("persist: read WAL segment: %w", err)
	}
	hdrLen := len(walMagic) + 4
	if len(data) < hdrLen || string(data[:len(walMagic)]) != walMagic {
		if tolerateTail && len(data) < hdrLen {
			return nil // segment died before its header finished
		}
		return corruptf("WAL segment %s has a bad header", segName(seg))
	}
	if v := binary.LittleEndian.Uint32(data[len(walMagic):]); v != WALVersion {
		return fmt.Errorf("%w: WAL segment version %d, this build reads %d", ErrVersion, v, WALVersion)
	}
	b := data[hdrLen:]
	for len(b) > 0 {
		rec, rest, err := decodeRecord(b)
		if err != nil {
			if tolerateTail {
				return nil // torn tail: stop at the last intact record
			}
			return fmt.Errorf("WAL segment %s: %w", segName(seg), err)
		}
		b = rest
		if rec.Seq <= afterSeq {
			continue
		}
		w.opts.Metrics.replayed()
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// TruncateThrough deletes every sealed segment whose records are all
// covered by a snapshot at seq. The active append segment is never
// removed.
func (w *WAL) TruncateThrough(seq int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	segs, err := w.segments()
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if w.f != nil && seg == w.seg-1 {
			continue // active segment
		}
		maxSeq, ok := segmentMaxSeq(filepath.Join(w.dir, segName(seg)))
		if !ok || maxSeq > seq {
			continue
		}
		if err := os.Remove(filepath.Join(w.dir, segName(seg))); err != nil {
			return fmt.Errorf("persist: truncate WAL: %w", err)
		}
	}
	return nil
}

// segmentMaxSeq scans one segment for the largest intact record seq.
func segmentMaxSeq(path string) (int64, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	hdrLen := len(walMagic) + 4
	if len(data) < hdrLen {
		return 0, true // headerless stub: covered by anything
	}
	b := data[hdrLen:]
	var maxSeq int64
	for len(b) > 0 {
		rec, rest, err := decodeRecord(b)
		if err != nil {
			break
		}
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		b = rest
	}
	return maxSeq, true
}

// encodeRecord frames one record: u32 payload length, payload, u32 CRC.
func encodeRecord(rec *BatchRecord) []byte {
	var e enc
	e.i64(rec.Seq)
	e.u8(rec.Kind)
	switch rec.Kind {
	case RecordReadings:
		e.ints(rec.Nodes)
		e.floats(rec.Values)
	case RecordFeatures:
		e.ints(rec.Nodes)
		e.u32(uint32(len(rec.Features)))
		for _, f := range rec.Features {
			e.floats(f)
		}
	}
	payload := e.b
	frame := make([]byte, 0, 8+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	return frame
}

// decodeRecord parses one frame from the front of b, returning the
// record and the remaining bytes. Any truncation or corruption is an
// error (the caller decides whether a tail error is tolerable).
func decodeRecord(b []byte) (*BatchRecord, []byte, error) {
	if len(b) < 4 {
		return nil, nil, corruptf("torn record length")
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n < 9 || n > maxSection || 4+n+4 > len(b) {
		return nil, nil, corruptf("record claims %d bytes, %d remain", n, len(b)-8)
	}
	payload := b[4 : 4+n]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(b[4+n:]); got != want {
		return nil, nil, corruptf("record CRC mismatch")
	}
	d := dec{b: payload}
	rec := &BatchRecord{Seq: d.i64(), Kind: d.u8()}
	switch rec.Kind {
	case RecordReadings:
		rec.Nodes = d.ints()
		rec.Values = d.floats()
		if len(rec.Nodes) != len(rec.Values) {
			d.fail("record has %d nodes, %d values", len(rec.Nodes), len(rec.Values))
		}
	case RecordFeatures:
		rec.Nodes = d.ints()
		nf := d.count(4)
		if d.err == nil {
			if nf != len(rec.Nodes) {
				d.fail("record has %d nodes, %d features", len(rec.Nodes), nf)
			}
			rec.Features = make([][]float64, nf)
			for i := range rec.Features {
				rec.Features[i] = d.floats()
			}
		}
	default:
		d.fail("unknown record kind %d", rec.Kind)
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	return rec, b[4+n+4:], nil
}

// io.EOF is deliberately unused here; readers work over in-memory
// segment bytes so torn-tail detection is purely length-driven.
var _ = io.EOF
