package persist_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"elink/internal/metric"
	"elink/internal/persist"
	"elink/internal/stream"
	"elink/internal/topology"
)

// readyEngineBytes builds a real bootstrapped engine and returns its
// snapshot encoding — the richest state the codec must round-trip
// (models, maintainer, index, telemetry all populated).
func readyEngineBytes(t testing.TB) []byte {
	t.Helper()
	g := topology.NewGrid(3, 4)
	e, err := stream.New(g, stream.Config{
		Order: 2, Delta: 1.0, Slack: 0.1, Metric: metric.Euclidean{}, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 10; batch++ {
		readings := make([]stream.Reading, g.N())
		for u := range readings {
			base := float64(u%4) * 3
			readings[u] = stream.Reading{Node: topology.NodeID(u), Value: base + 0.1*float64(batch)}
		}
		if _, err := e.Ingest(readings); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := e.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// warmupEngineBytes returns a snapshot of an engine still warming up
// (no maintainer/index sections).
func warmupEngineBytes(t testing.TB) []byte {
	t.Helper()
	g := topology.NewGrid(2, 3)
	e, err := stream.New(g, stream.Config{
		Order: 3, Delta: 1.0, Slack: 0.1, Metric: metric.Euclidean{}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest([]stream.Reading{{Node: 0, Value: 1}, {Node: 1, Value: 2}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := e.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotRoundTripDeterministic decodes a real snapshot and
// re-encodes it: the bytes must be identical. This pins both directions
// of the codec at once — every field decoded is every field encoded, in
// a canonical order.
func TestSnapshotRoundTripDeterministic(t *testing.T) {
	for name, raw := range map[string][]byte{
		"ready":  readyEngineBytes(t),
		"warmup": warmupEngineBytes(t),
	} {
		st, err := persist.ReadSnapshot(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		var buf bytes.Buffer
		n, err := persist.WriteSnapshot(&buf, st)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", name, err)
		}
		if n != int64(len(raw)) || !bytes.Equal(buf.Bytes(), raw) {
			t.Errorf("%s: re-encoded snapshot differs (%d bytes vs %d)", name, n, len(raw))
		}
	}
}

// TestSnapshotDecodeRejectsDamage drives the decoder through the
// failure modes recovery must survive: truncation at every prefix
// length, a bit flip in every byte, and a wrong format version. All of
// them must produce an error (never a panic); bit flips that land in
// skippable padding-free sections must be caught by the CRC.
func TestSnapshotDecodeRejectsDamage(t *testing.T) {
	raw := readyEngineBytes(t)

	t.Run("truncations", func(t *testing.T) {
		step := len(raw)/97 + 1 // sample prefixes, ends included
		for n := 0; n < len(raw); n += step {
			if _, err := persist.ReadSnapshot(bytes.NewReader(raw[:n])); err == nil {
				t.Fatalf("truncation to %d of %d bytes decoded successfully", n, len(raw))
			}
		}
		if _, err := persist.ReadSnapshot(bytes.NewReader(raw[:len(raw)-1])); err == nil {
			t.Fatal("dropping the final byte decoded successfully")
		}
	})

	t.Run("bitflips", func(t *testing.T) {
		step := len(raw)/997 + 1
		for off := 0; off < len(raw); off += step {
			mut := append([]byte(nil), raw...)
			mut[off] ^= 0x40
			st, err := persist.ReadSnapshot(bytes.NewReader(mut))
			if err == nil {
				// A flip inside a section payload must fail its CRC; the
				// only way a flip can decode is if it never reached a
				// checked region, which the framing makes impossible.
				t.Fatalf("bit flip at offset %d decoded successfully (%+v)", off, st.Config)
			}
		}
	})

	t.Run("wrong-version", func(t *testing.T) {
		mut := append([]byte(nil), raw...)
		mut[8] = 0xFE // version u32 little-endian starts after the 8-byte magic
		_, err := persist.ReadSnapshot(bytes.NewReader(mut))
		if !errors.Is(err, persist.ErrVersion) {
			t.Fatalf("future version error = %v, want ErrVersion", err)
		}
	})

	t.Run("bad-magic", func(t *testing.T) {
		mut := append([]byte(nil), raw...)
		mut[0] = 'X'
		_, err := persist.ReadSnapshot(bytes.NewReader(mut))
		if !errors.Is(err, persist.ErrCorrupt) {
			t.Fatalf("bad magic error = %v, want ErrCorrupt", err)
		}
	})

	t.Run("empty", func(t *testing.T) {
		if _, err := persist.ReadSnapshot(bytes.NewReader(nil)); err == nil {
			t.Fatal("empty input decoded successfully")
		}
	})
}

// TestSnapshotSkipsUnknownSections pins the additive-evolution contract:
// a snapshot carrying a section tag this build does not know decodes
// fine as long as the section's framing and CRC are intact.
func TestSnapshotSkipsUnknownSections(t *testing.T) {
	raw := warmupEngineBytes(t)
	// Splice an unknown section (tag 0x7E) right before the end marker.
	// Sections are framed [tag u8][len u32][payload][crc u32]; the end
	// marker is the last 10 bytes (tag + len 0 + crc of empty).
	endLen := 1 + 4 + 4
	payload := []byte("future-field")
	section := make([]byte, 0, 9+len(payload))
	section = append(section, 0x7E)
	section = append(section, byte(len(payload)), 0, 0, 0)
	section = append(section, payload...)
	crc := crc32IEEE(payload)
	section = append(section, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))

	spliced := append([]byte(nil), raw[:len(raw)-endLen]...)
	spliced = append(spliced, section...)
	spliced = append(spliced, raw[len(raw)-endLen:]...)

	st, err := persist.ReadSnapshot(bytes.NewReader(spliced))
	if err != nil {
		t.Fatalf("decode with unknown section: %v", err)
	}
	if st.Config.Nodes != 6 {
		t.Errorf("decoded %d nodes, want 6", st.Config.Nodes)
	}
}

func crc32IEEE(b []byte) uint32 {
	const poly = 0xedb88320
	crc := ^uint32(0)
	for _, v := range b {
		crc ^= uint32(v)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}

// FuzzSnapshotDecode proves the decoder never panics: arbitrary bytes
// either decode into a state that re-encodes cleanly or fail with an
// error. Truncations and bit flips of two real snapshots seed the
// corpus so the fuzzer starts deep inside the format.
func FuzzSnapshotDecode(f *testing.F) {
	ready := readyEngineBytes(f)
	warm := warmupEngineBytes(f)
	f.Add(ready)
	f.Add(warm)
	f.Add(ready[:len(ready)/2])
	f.Add([]byte("ELNKSNAP"))
	f.Add([]byte{})
	mut := append([]byte(nil), ready...)
	mut[len(mut)/3] ^= 0xFF
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := persist.ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			if !strings.Contains(err.Error(), "persist:") {
				t.Errorf("error %v does not carry the package prefix", err)
			}
			return
		}
		// Whatever decoded must re-encode without panicking.
		if _, err := persist.WriteSnapshot(&bytes.Buffer{}, st); err != nil {
			t.Errorf("decoded state does not re-encode: %v", err)
		}
	})
}
