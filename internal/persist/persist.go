// Package persist is the durability layer of the streaming engine: a
// versioned binary snapshot codec for the full engine state and an
// epoch-batch write-ahead log, so a restarted process recovers to the
// exact pre-crash state instead of re-centralizing and re-clustering
// from scratch — the expensive path the whole incremental-maintenance
// design (§6) exists to avoid.
//
// # Snapshot format
//
//	+----------------------+
//	| magic  "ELNKSNAP"    |  8 bytes
//	| version uint32       |  little-endian (currently 1)
//	+----------------------+
//	| section              |  repeated
//	|   tag     uint8      |
//	|   length  uint32     |  payload bytes
//	|   payload [length]   |
//	|   crc32   uint32     |  IEEE CRC over the payload
//	+----------------------+
//	| end tag 0xFF, len 0  |
//	+----------------------+
//
// Every component of the engine state (AR models, features, maintainer,
// index, telemetry) is its own length-prefixed, CRC-checked section, so
// future versions can append sections (or extend a section's payload)
// without breaking old decoders: unknown tags are skipped, and decoders
// stop reading a known section at the fields they understand. The
// decoder never panics on malformed input — truncations, bit flips and
// wrong versions all surface as errors (FuzzSnapshotDecode pins this).
//
// # WAL
//
// The write-ahead log journals ingested batches between snapshots.
// Segments are append-only files rotated by size; each record is a
// length-prefixed, CRC-trailed frame carrying the batch's engine
// sequence number. Recovery = load the latest valid snapshot, then
// replay the WAL records with a later sequence number. A truncated or
// torn final record — the normal signature of a crash mid-append — ends
// replay cleanly at the last intact record.
package persist

import (
	"errors"
	"fmt"
)

const (
	// snapMagic opens every snapshot file.
	snapMagic = "ELNKSNAP"
	// SnapshotVersion is the current snapshot format version. Decoders
	// reject anything newer.
	SnapshotVersion = 1

	// walMagic opens every WAL segment.
	walMagic = "ELNKWAL1"
	// WALVersion is the current WAL segment format version.
	WALVersion = 1
)

// Section tags of the snapshot format. New tags are additive.
const (
	secMeta    = 1 // counts, epoch/seq, config fingerprint
	secModels  = 2 // per-node AR/RLS state
	secFeats   = 3 // engine feature vectors + bootstrap coverage
	secMaint   = 4 // slack-Δ maintainer state
	secIndex   = 5 // M-tree + backbone state
	secTelem   = 6 // accumulated stats/counters
	secEnd     = 0xFF
	maxSection = 1 << 30 // defensive cap on one section's payload
)

// ErrCorrupt tags every decode failure caused by the bytes themselves:
// bad magic, CRC mismatches, truncations, impossible lengths. Callers
// match it with errors.Is to distinguish a damaged file from I/O errors.
var ErrCorrupt = errors.New("persist: corrupt data")

// ErrVersion tags decode failures caused by a format version newer than
// this build understands.
var ErrVersion = errors.New("persist: unsupported format version")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}
