package persist_test

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"elink/internal/persist"
)

func readingsRecord(seq int64, n int) *persist.BatchRecord {
	rec := &persist.BatchRecord{Seq: seq, Kind: persist.RecordReadings}
	for i := 0; i < n; i++ {
		rec.Nodes = append(rec.Nodes, int64(i))
		rec.Values = append(rec.Values, float64(seq)+0.25*float64(i))
	}
	return rec
}

func collect(t *testing.T, w *persist.WAL, afterSeq int64) []*persist.BatchRecord {
	t.Helper()
	var got []*persist.BatchRecord
	if err := w.Replay(afterSeq, func(rec *persist.BatchRecord) error {
		got = append(got, rec)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := persist.OpenWAL(dir, persist.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []*persist.BatchRecord{
		readingsRecord(1, 3),
		{Seq: 2, Kind: persist.RecordFeatures, Nodes: []int64{0, 2}, Features: [][]float64{{1.5}, {2.5, -0.125}}},
		readingsRecord(3, 1),
	}
	for _, rec := range want {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh handle over the same dir replays everything, in order.
	r, err := persist.OpenWAL(dir, persist.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, r, 0)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("replayed %+v, want %+v", got, want)
	}
	// afterSeq skips the covered prefix.
	if got := collect(t, r, 2); len(got) != 1 || got[0].Seq != 3 {
		t.Errorf("replay after seq 2 = %+v, want just seq 3", got)
	}
}

func TestWALAppendRejectsStaleSeq(t *testing.T) {
	w, err := persist.OpenWAL(t.TempDir(), persist.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(readingsRecord(5, 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(readingsRecord(5, 1)); err == nil {
		t.Error("append with a non-advancing seq succeeded")
	}
}

// TestWALTruncatedTail is the crash-mid-append scenario: the final
// record of the newest segment is torn, and replay must stop cleanly at
// the last intact record instead of erroring out.
func TestWALTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	w, err := persist.OpenWAL(dir, persist.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 3; seq++ {
		if err := w.Append(readingsRecord(seq, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments %v, err %v; want exactly one", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}

	for _, cut := range []int{1, 5, 17} { // inside CRC, payload, length prefix
		if err := os.WriteFile(segs[0], data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := persist.OpenWAL(dir, persist.WALOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got := collect(t, r, 0)
		if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
			t.Errorf("cut %d: replayed %d records, want the 2 intact ones", cut, len(got))
		}
	}
}

// TestWALTornTailRepairedOnReopen is the double-crash scenario: a crash
// tears the tail of segment N, the restarted process appends (rotating
// into segment N+1), and a second crash forces another replay — with the
// torn segment no longer final. OpenWAL must truncate the tear at the
// first reopen, or the second recovery reads it as unrecoverable
// corruption and the server can never boot again.
func TestWALTornTailRepairedOnReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := persist.OpenWAL(dir, persist.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 3; seq++ {
		if err := w.Append(readingsRecord(seq, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("%d segments, want 1", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Tear seq 3's record mid-frame.
	if err := os.WriteFile(segs[0], data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	// First restart: the two intact records replay, and re-appending seq 3
	// rotates into a fresh segment, so the torn one stops being final.
	r, err := persist.OpenWAL(dir, persist.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, r, 0); len(got) != 2 {
		t.Fatalf("first recovery replayed %d records, want 2", len(got))
	}
	if err := r.Append(readingsRecord(3, 2)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Second restart: every record must replay, repaired segment included.
	r2, err := persist.OpenWAL(dir, persist.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, r2, 0)
	if len(got) != 3 || got[0].Seq != 1 || got[1].Seq != 2 || got[2].Seq != 3 {
		t.Errorf("second recovery replayed %+v, want seqs 1..3", got)
	}
}

// TestWALHeaderlessStubRemovedOnReopen: a segment that died before its
// header finished holds nothing recoverable; OpenWAL removes it so it
// can never be misread as corruption once later segments exist.
func TestWALHeaderlessStubRemovedOnReopen(t *testing.T) {
	dir := t.TempDir()
	stub := filepath.Join(dir, "wal-00000000.seg")
	if err := os.WriteFile(stub, []byte("EL"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := persist.OpenWAL(dir, persist.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stub); !os.IsNotExist(err) {
		t.Errorf("headerless stub still present after OpenWAL (stat err: %v)", err)
	}
	if err := w.Append(readingsRecord(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := persist.OpenWAL(dir, persist.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, r, 0); len(got) != 1 || got[0].Seq != 1 {
		t.Errorf("replay = %+v, want just seq 1", got)
	}
}

// TestWALCorruptMiddleSegmentFails pins the other side of the tail
// tolerance: damage in a non-final segment cannot be skipped, because
// the records after it would replay out of order.
func TestWALCorruptMiddleSegmentFails(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so every record rotates into its own file.
	w, err := persist.OpenWAL(dir, persist.WALOptions{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 3; seq++ {
		if err := w.Append(readingsRecord(seq, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 3 {
		t.Fatalf("%d segments, want 3", len(segs))
	}

	data, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xFF
	if err := os.WriteFile(segs[1], data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := persist.OpenWAL(dir, persist.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	err = r.Replay(0, func(*persist.BatchRecord) error { return nil })
	if !errors.Is(err, persist.ErrCorrupt) {
		t.Errorf("replay over corrupt middle segment = %v, want ErrCorrupt", err)
	}
}

func TestWALRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	w, err := persist.OpenWAL(dir, persist.WALOptions{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 4; seq++ {
		if err := w.Append(readingsRecord(seq, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Everything up to seq 2 is covered by a snapshot: the first two
	// sealed segments go, the rest stay.
	if err := w.TruncateThrough(2); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, w, 0); len(got) != 2 || got[0].Seq != 3 {
		t.Errorf("after truncate, replay = %+v, want seqs 3..4", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: appends land in a fresh segment past the survivors.
	r, err := persist.OpenWAL(dir, persist.WALOptions{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Append(readingsRecord(5, 1)); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, r, 2); len(got) != 3 || got[2].Seq != 5 {
		t.Errorf("after reopen+append, replay = %d records, want 3", len(got))
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for s, want := range map[string]persist.FsyncPolicy{
		"always": persist.FsyncAlways, "INTERVAL": persist.FsyncInterval, "never": persist.FsyncNever,
	} {
		got, err := persist.ParseFsyncPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() == "unknown" {
			t.Errorf("%v renders as unknown", got)
		}
	}
	if _, err := persist.ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("bogus policy parsed successfully")
	}
}
