package persist

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"elink/internal/cluster"
	"elink/internal/metric"
	"elink/internal/topology"
)

// enc builds a section payload in memory. All integers are little-endian
// fixed width; floats are IEEE-754 bit patterns, so round-trips are
// bit-exact.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) i64(v int64)  { e.b = binary.LittleEndian.AppendUint64(e.b, uint64(v)) }
func (e *enc) f64(v float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
}
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) floats(v []float64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}
func (e *enc) ints(v []int64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.i64(x)
	}
}
func (e *enc) nodes(v []topology.NodeID) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.i64(int64(x))
	}
}
func (e *enc) feature(f metric.Feature) { e.b = f.AppendBinary(e.b) }
func (e *enc) features(fs []metric.Feature) {
	e.u32(uint32(len(fs)))
	for _, f := range fs {
		e.feature(f)
	}
}

// stats encodes a cluster.Stats with the breakdown sorted by kind so the
// encoding is deterministic.
func (e *enc) stats(s cluster.Stats) {
	e.i64(s.Messages)
	e.f64(s.Time)
	kinds := make([]string, 0, len(s.Breakdown))
	for k := range s.Breakdown {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	e.u32(uint32(len(kinds)))
	for _, k := range kinds {
		e.str(k)
		e.i64(s.Breakdown[k])
	}
}

// dec consumes a section payload. The error is sticky: after the first
// failure every read returns a zero value, so decode code reads straight
// through and checks err once. Every length is validated against the
// remaining bytes before allocating, so hostile inputs cannot force
// oversized allocations or panics.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = corruptf(format, args...)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail("need %d bytes at offset %d of %d", n, d.off, len(d.b))
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

func (d *dec) u8() uint8 {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (d *dec) u32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (d *dec) i64() int64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(p))
}

func (d *dec) f64() float64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(p))
}

func (d *dec) bool() bool { return d.u8() != 0 }

// count reads a u32 element count and validates it against the bytes
// remaining at elemSize bytes per element.
func (d *dec) count(elemSize int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if n < 0 || (elemSize > 0 && n > (len(d.b)-d.off)/elemSize) {
		d.fail("count %d exceeds remaining %d bytes", n, len(d.b)-d.off)
		return 0
	}
	return n
}

func (d *dec) str() string {
	n := d.count(1)
	p := d.take(n)
	if p == nil {
		return ""
	}
	return string(p)
}

func (d *dec) floats() []float64 {
	n := d.count(8)
	if d.err != nil {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.f64()
	}
	return v
}

func (d *dec) ints() []int64 {
	n := d.count(8)
	if d.err != nil {
		return nil
	}
	v := make([]int64, n)
	for i := range v {
		v[i] = d.i64()
	}
	return v
}

func (d *dec) nodes() []topology.NodeID {
	n := d.count(8)
	if d.err != nil {
		return nil
	}
	v := make([]topology.NodeID, n)
	for i := range v {
		v[i] = topology.NodeID(d.i64())
	}
	return v
}

func (d *dec) feature() metric.Feature {
	if d.err != nil {
		return nil
	}
	f, rest, err := metric.DecodeFeature(d.b[d.off:])
	if err != nil {
		d.fail("%v", err)
		return nil
	}
	d.off = len(d.b) - len(rest)
	return f
}

func (d *dec) features() []metric.Feature {
	n := d.count(4) // each feature is at least a 4-byte length
	if d.err != nil {
		return nil
	}
	fs := make([]metric.Feature, n)
	for i := range fs {
		fs[i] = d.feature()
	}
	return fs
}

func (d *dec) stats() cluster.Stats {
	s := cluster.Stats{Messages: d.i64(), Time: d.f64()}
	n := d.count(13) // str len + 1 byte min + i64
	if d.err != nil {
		return s
	}
	s.Breakdown = make(map[string]int64, n)
	for i := 0; i < n; i++ {
		k := d.str()
		v := d.i64()
		if d.err != nil {
			return s
		}
		s.Breakdown[k] = v
	}
	return s
}

// writeSection frames one payload: tag, length, payload, CRC.
func writeSection(w io.Writer, tag uint8, payload []byte) (int64, error) {
	hdr := make([]byte, 0, 5)
	hdr = append(hdr, tag)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(tail[:]); err != nil {
		return 0, err
	}
	return int64(5 + len(payload) + 4), nil
}

// readSection reads one framed section, verifying length and CRC. An
// secEnd tag returns (secEnd, nil, nil).
func readSection(r io.Reader) (uint8, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, corruptf("truncated section header")
		}
		return 0, nil, err
	}
	tag := hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxSection {
		return 0, nil, corruptf("section %d claims %d bytes", tag, n)
	}
	// Copy progressively instead of pre-allocating n bytes, so a header
	// claiming a huge length on a tiny (fuzzed or truncated) input fails
	// without a giant allocation.
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return 0, nil, corruptf("section %d truncated at %d bytes", tag, n)
	}
	payload := buf.Bytes()
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return 0, nil, corruptf("section %d missing CRC", tag)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(tail[:]); got != want {
		return 0, nil, corruptf("section %d CRC mismatch (got %08x, want %08x)", tag, got, want)
	}
	return tag, payload, nil
}
