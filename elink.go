// Package elink is a complete implementation of distributed spatial
// clustering for sensor networks, reproducing "Distributed Spatial
// Clustering in Sensor Networks" (Meka & Singh, EDBT 2006).
//
// The package partitions a sensor network's communication graph into
// δ-clusters — connected regions whose per-node model features pairwise
// differ by at most δ — using the in-network ELink algorithm, which runs
// in O(√N log N) time and O(N) messages on both synchronous and
// asynchronous networks. On top of the clusters it offers slack-based
// dynamic maintenance, a distributed M-tree index, and communication-
// efficient range and path queries, together with the baselines the
// paper evaluates against (centralized spectral clustering, spanning
// forest, hierarchical agglomeration, TAG and BFS flooding).
//
// # Quick start
//
//	g := elink.NewGrid(8, 8)
//	feats := ...                       // one model feature per node
//	res, err := elink.Cluster(g, elink.Config{
//		Delta:    2.0,
//		Metric:   elink.Scalar(),
//		Features: feats,
//	})
//	// res.Clustering partitions the grid; res.Stats counts messages.
//
// Everything runs on a built-in discrete-event network simulator (or a
// goroutine-per-node asynchronous runtime via ClusterAsync), so results
// are reproducible and message costs are exact.
package elink

import (
	"io"

	"elink/internal/baseline"
	"elink/internal/cluster"
	"elink/internal/data"
	"elink/internal/elink"
	"elink/internal/index"
	"elink/internal/metric"
	"elink/internal/obs"
	"elink/internal/par"
	"elink/internal/persist"
	"elink/internal/query"
	"elink/internal/sim"
	"elink/internal/stream"
	"elink/internal/topology"
	"elink/internal/update"
	"elink/internal/viz"
)

// Core types, aliased from the internal packages so downstream code uses
// one import path.
type (
	// NodeID identifies a sensor node; ids are dense in [0, N).
	NodeID = topology.NodeID
	// Point is a position on the deployment plane.
	Point = topology.Point
	// Graph is the communication graph over positioned nodes.
	Graph = topology.Graph
	// Feature is a node's model-coefficient vector.
	Feature = metric.Feature
	// Metric measures feature dissimilarity; it must satisfy the metric
	// axioms for every pruning rule in this package to be exact.
	Metric = metric.Metric
	// Clustering is a partition of the network into clusters.
	Clustering = cluster.Clustering
	// Quality summarizes a clustering (cluster count, diameters, sizes).
	Quality = cluster.Quality
	// Stats records communication cost (total and per message kind).
	Stats = cluster.Stats
	// Result couples a clustering with the cost of computing it.
	Result = cluster.Result
	// Config parameterizes the ELink clustering run.
	Config = elink.Config
	// Mode selects ELink's signalling technique.
	Mode = elink.Mode
	// DelayModel customizes per-hop delays of the simulator.
	DelayModel = sim.DelayModel
	// Index is the distributed M-tree plus leader backbone.
	Index = index.Index
	// RangeResult is a range query's answer and cost.
	RangeResult = query.RangeResult
	// PathResult is a path query's answer and cost.
	PathResult = query.PathResult
	// Maintainer applies the slack-Δ update protocol to a clustering.
	Maintainer = update.Maintainer
	// MaintainerConfig parameterizes dynamic maintenance.
	MaintainerConfig = update.Config
	// UpdateCounters exposes the maintenance screening telemetry.
	UpdateCounters = update.Counters
	// CentralizedUpdater is the update baseline that ships coefficients
	// to a base station.
	CentralizedUpdater = update.CentralizedUpdater
	// Dataset bundles a generated network with data and features.
	Dataset = data.Dataset
)

// ELink signalling modes.
const (
	// Implicit is the timer-driven technique for synchronous networks
	// (paper §4).
	Implicit = elink.Implicit
	// Explicit is the synchronization-wave technique for asynchronous
	// networks (paper §5).
	Explicit = elink.Explicit
	// Unordered is the compressed-schedule ablation sketched at the end
	// of §5.
	Unordered = elink.Unordered
)

// NewGrid builds a rows x cols grid network with 4-neighbour
// connectivity.
func NewGrid(rows, cols int) *Graph { return topology.NewGrid(rows, cols) }

// NewRandomGeometric places n nodes uniformly on a side x side square and
// connects pairs within the radio radius, stitching stray components so
// the result is connected. Use a math/rand.Rand for reproducibility via
// topology.NewRandomGeometric if finer control is needed.
func NewRandomGeometric(n int, side, radius float64, seed int64) *Graph {
	return topology.NewRandomGeometric(n, side, radius, newRand(seed))
}

// NewRandomNetwork places n nodes at unit density with approximately the
// requested average degree (the paper's synthetic deployments use 4).
func NewRandomNetwork(n int, avgDegree float64, seed int64) *Graph {
	return topology.RandomGeometricForDegree(n, avgDegree, newRand(seed))
}

// Euclidean returns the unweighted L2 metric.
func Euclidean() Metric { return metric.Euclidean{} }

// Manhattan returns the L1 metric.
func Manhattan() Metric { return metric.Manhattan{} }

// Scalar returns |a-b| over 1-dimensional features.
func Scalar() Metric { return metric.Scalar{} }

// WeightedEuclidean returns the weighted L2 metric the paper uses to
// emphasize higher-order model coefficients. Weights must be positive.
func WeightedEuclidean(weights ...float64) Metric {
	return metric.NewWeightedEuclidean(weights...)
}

// SynchronousDelay returns the unit-per-hop delay model (the default).
func SynchronousDelay() DelayModel { return sim.UnitDelay{} }

// AsynchronousDelay returns a per-hop delay drawn uniformly from
// [min, max], modelling an asynchronous network inside the deterministic
// simulator.
func AsynchronousDelay(min, max float64) DelayModel { return sim.UniformDelay{Min: min, Max: max} }

// Cluster runs ELink on the deterministic event-driven simulator and
// returns the δ-clustering with its exact communication cost.
func Cluster(g *Graph, cfg Config) (*Result, error) { return elink.Run(g, cfg) }

// ClusterAsync runs the explicit-signalling ELink on the goroutine-per-
// node asynchronous runtime. The clustering satisfies the same invariants
// as Cluster's, but depends on the scheduler's interleaving.
func ClusterAsync(g *Graph, cfg Config) (*Result, error) { return elink.RunAsync(g, cfg) }

// SpectralConfig parameterizes the centralized baseline.
type SpectralConfig = baseline.SpectralConfig

// SpectralCluster runs the paper's centralized baseline: spectral
// clustering at a base station, searching for the smallest k whose
// clusters all satisfy the δ-condition.
func SpectralCluster(g *Graph, cfg SpectralConfig) (*Result, error) {
	return baseline.Spectral(g, cfg)
}

// ForestConfig parameterizes the spanning-forest baseline.
type ForestConfig = baseline.ForestConfig

// SpanningForestCluster runs the distributed spanning-forest baseline
// (§8.3): greedy parent selection followed by a height sweep that splits
// δ-violating subtrees.
func SpanningForestCluster(g *Graph, cfg ForestConfig) (*Result, error) {
	return baseline.SpanningForest(g, cfg)
}

// HierConfig parameterizes the hierarchical baseline.
type HierConfig = baseline.HierConfig

// HierarchicalCluster runs the distributed agglomerative baseline (§8.3):
// mutually-best adjacent clusters merge while the δ-condition holds.
func HierarchicalCluster(g *Graph, cfg HierConfig) (*Result, error) {
	return baseline.Hierarchical(g, cfg)
}

// BuildIndex constructs the distributed M-tree index and leader backbone
// over an existing clustering (§7.1).
func BuildIndex(g *Graph, c *Clustering, feats []Feature, m Metric) (*Index, error) {
	return index.Build(g, c, feats, m)
}

// RangeQuery finds every node whose feature is within radius r of q,
// pruning whole clusters by their covering radii and descending the
// M-tree only where the boundary cuts through (§7.2).
func RangeQuery(idx *Index, q Feature, r float64, initiator NodeID) *RangeResult {
	return query.Range(idx, q, r, initiator)
}

// PathQuery returns a path from src to dst on which every node's feature
// stays at least gamma away from the danger feature (§7.3).
func PathQuery(idx *Index, danger Feature, gamma float64, src, dst NodeID) *PathResult {
	return query.Path(idx, danger, gamma, src, dst)
}

// TAGCost returns the fixed per-query cost of the TAG aggregation
// baseline on g: twice the overlay spanning tree's edges.
func TAGCost(g *Graph) Stats { return query.TAG(g) }

// BFSFloodPath runs the path-query baseline: flood the safe region from
// the source until the destination is reached.
func BFSFloodPath(g *Graph, feats []Feature, m Metric, danger Feature, gamma float64, src, dst NodeID) *PathResult {
	return query.BFSFlood(g, feats, m, danger, gamma, src, dst)
}

// NewMaintainer wraps a clustering with the slack-Δ update protocol (§6).
// The clustering should have been computed with threshold δ − 2Δ.
func NewMaintainer(g *Graph, c *Clustering, feats []Feature, cfg MaintainerConfig) (*Maintainer, error) {
	return update.NewMaintainer(g, c, feats, cfg)
}

// NewCentralizedUpdater builds the §8.5 update baseline with the base
// station at base; each violation ships coeffs coefficient messages over
// the node's hop distance.
func NewCentralizedUpdater(g *Graph, base NodeID, feats []Feature, cfg MaintainerConfig, coeffs int64) *CentralizedUpdater {
	return update.NewCentralizedUpdater(g, base, feats, cfg, coeffs)
}

// TaoDataset generates the Tao-like sea-surface-temperature dataset
// (spatially correlated, dynamic; see DESIGN.md for the substitution).
func TaoDataset(days int, seed int64) (*Dataset, error) {
	return data.Tao(data.TaoConfig{Days: days, Seed: seed})
}

// DeathValleyDataset generates the terrain elevation dataset (spatially
// correlated, static).
func DeathValleyDataset(nodes int, seed int64) (*Dataset, error) {
	return data.DeathValley(data.DeathValleyConfig{Nodes: nodes, Seed: seed})
}

// SyntheticDataset generates the paper's spatially uncorrelated AR(1)
// dataset.
func SyntheticDataset(nodes, readings int, seed int64) (*Dataset, error) {
	return data.Synthetic(data.SyntheticConfig{Nodes: nodes, Readings: readings, Seed: seed})
}

// SVGOptions controls WriteNetworkSVG rendering.
type SVGOptions = viz.Options

// WriteNetworkSVG renders the network as a standalone SVG plan view,
// coloured by the clustering (nil for a plain network), with optional
// edges, cluster-root rings, node highlights and path overlays — the
// visual counterpart of the paper's figures 1 and 3–5.
func WriteNetworkSVG(w io.Writer, g *Graph, c *Clustering, opts SVGOptions) error {
	return viz.WriteSVG(w, g, c, opts)
}

// KMedoidsConfig parameterizes the distributed k-medoids alternative.
type KMedoidsConfig = baseline.KMedoidsConfig

// KMedoidsCluster runs the distributed k-medoids alternative the paper's
// related-work section dismisses as communication intensive (§9): every
// refinement round broadcasts all medoids network-wide. It exists to
// quantify that cost argument against ELink.
func KMedoidsCluster(g *Graph, cfg KMedoidsConfig) (*Result, error) {
	return baseline.KMedoids(g, cfg)
}

// ClusterTxPerNode runs ELink like Cluster but returns per-node
// transmission counts (each hop charged to its sender) — the input to
// energy and network-lifetime analyses.
func ClusterTxPerNode(g *Graph, cfg Config) ([]int64, error) {
	return elink.TxPerNode(g, cfg)
}

// OptimalCluster computes a minimum δ-clustering exactly by subset DP.
// δ-clustering is NP-complete (paper Theorem 1), so this is exponential
// and limited to small instances (n ≤ 16); it is the ground-truth
// reference the optimality-gap experiment measures the distributed
// algorithms against.
func OptimalCluster(g *Graph, feats []Feature, m Metric, delta float64) (*Clustering, error) {
	return cluster.Optimal(g, feats, m, delta)
}

// Streaming engine types, aliased from internal/stream.
type (
	// Engine is the live streaming engine: it ingests reading batches,
	// maintains the clustering and M-tree index incrementally, and serves
	// range/path queries concurrently against immutable epoch snapshots.
	Engine = stream.Engine
	// EngineConfig parameterizes the streaming engine.
	EngineConfig = stream.Config
	// EngineStats exposes the engine's cumulative counters.
	EngineStats = stream.Stats
	// EngineSnapshot is the immutable per-epoch view queries run against.
	EngineSnapshot = stream.Snapshot
	// IngestResult summarizes what one ingested batch did to the engine.
	IngestResult = stream.IngestResult
	// Reading is one raw measurement at one node.
	Reading = stream.Reading
	// FeatureUpdate is one already-fitted feature vector at one node.
	FeatureUpdate = stream.FeatureUpdate
	// ReclusterPolicy selects when the engine re-runs full ELink.
	ReclusterPolicy = stream.ReclusterPolicy
)

// Re-cluster policies for the streaming engine.
const (
	// PolicyNever maintains forever and never re-clusters.
	PolicyNever = stream.PolicyNever
	// PolicyAdaptive re-clusters when fragmentation exceeds the
	// configured factor (the default policy).
	PolicyAdaptive = stream.PolicyAdaptive
	// PolicyPeriodic re-clusters every Period epochs.
	PolicyPeriodic = stream.PolicyPeriodic
)

// ErrNotReady is returned by engine queries before the first clustering
// has been bootstrapped (AR models still warming up).
var ErrNotReady = stream.ErrNotReady

// ErrInvalidBatch tags engine ingest errors caused by the batch payload
// itself (unknown node, empty feature, wrong ingest mode); match with
// errors.Is to separate caller mistakes from engine failures.
var ErrInvalidBatch = stream.ErrInvalidBatch

// Durability types, aliased from internal/persist. Engine.SaveSnapshot /
// Engine.Restore write and load the full engine state; a WAL attached
// with Engine.AttachWAL journals every ingested batch, and
// Engine.ReplayWAL replays the tail past a restored snapshot — together
// they give crash-exact recovery (see DESIGN.md, "Durability").
type (
	// WAL is the append-only, segmented journal of ingest batches.
	WAL = persist.WAL
	// WALOptions parameterizes OpenWAL (fsync policy, segment size).
	WALOptions = persist.WALOptions
	// FsyncPolicy selects when WAL appends reach stable storage.
	FsyncPolicy = persist.FsyncPolicy
	// SnapshotInfo summarizes one written engine snapshot.
	SnapshotInfo = persist.SnapshotInfo
)

// WAL fsync policies.
const (
	// FsyncAlways flushes after every append (the durable default).
	FsyncAlways = persist.FsyncAlways
	// FsyncInterval flushes at most once per WALOptions.FsyncEvery.
	FsyncInterval = persist.FsyncInterval
	// FsyncNever leaves flushing to the operating system.
	FsyncNever = persist.FsyncNever
)

// ErrCorrupt tags snapshot/WAL decode failures caused by damaged bytes
// (bad magic, CRC mismatch, truncation); match with errors.Is.
var ErrCorrupt = persist.ErrCorrupt

// ErrSnapshotVersion tags decode failures caused by a format version
// newer than this build understands.
var ErrSnapshotVersion = persist.ErrVersion

// ErrConfigMismatch is returned by Engine.Restore when the snapshot was
// taken under a different engine configuration.
var ErrConfigMismatch = stream.ErrConfigMismatch

// ErrWALDiverged tags ingest errors after a WAL append failure left the
// in-memory state ahead of the journal: the engine refuses further
// writes (queries keep working) until the process restarts. Check
// Engine.Diverged for the latched error.
var ErrWALDiverged = stream.ErrWALDiverged

// OpenWAL opens (creating if needed) a write-ahead log in dir. Attach it
// to an engine with Engine.AttachWAL after any restore/replay so
// recovered batches are not re-journaled.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) { return persist.OpenWAL(dir, opts) }

// ParseFsyncPolicy parses "always" | "interval" | "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return persist.ParseFsyncPolicy(s) }

// NewWALMetrics registers the WAL telemetry counters on reg for use as
// WALOptions.Metrics.
func NewWALMetrics(reg *MetricsRegistry) persist.WALMetrics { return persist.NewWALMetrics(reg) }

// Observability types, aliased from internal/obs. Hand a registry and a
// trace buffer to EngineConfig.Obs/Trace (or elink.Config.Obs/Trace for
// batch runs) and every layer — simulator rounds, ELink runs, slack-Δ
// maintenance, index repairs, queries — reports into them.
type (
	// MetricsRegistry is a concurrency-safe registry of counters, gauges
	// and histograms with Prometheus-text and JSON export.
	MetricsRegistry = obs.Registry
	// TraceBuffer is a bounded ring buffer of structured trace events
	// (per-round simulator activity, per-epoch engine summaries) with
	// JSONL export.
	TraceBuffer = obs.Tracer
	// TraceEvent is one structured trace record.
	TraceEvent = obs.Event
)

// Span tracing types, aliased from internal/obs. Hand a SpanTracer to
// EngineConfig.Spans and every epoch, snapshot and query records a
// hierarchical trace whose per-phase self-times telescope to the
// operation's wall time (see DESIGN.md, "Span tracing & latency
// attribution").
type (
	// SpanTracer collects hierarchical span traces into a bounded ring of
	// recent traces plus a top-K slowest set, and aggregates per-phase
	// latency statistics.
	SpanTracer = obs.SpanTracer
	// Span is one timed region inside a trace; Child opens a nested
	// region, Finish closes it.
	Span = obs.Span
	// SpanTrace is one completed trace: a root operation and its tree of
	// phase spans.
	SpanTrace = obs.SpanTrace
	// SpanRecord is one finished span inside a trace.
	SpanRecord = obs.SpanRecord
	// PhaseStat is one row of the per-phase latency attribution table
	// (count, p50/p95/max, total self-time).
	PhaseStat = obs.PhaseStat
)

// NewSpanTracer returns a span tracer keeping the last capacity traces
// and the topK slowest (<= 0 selects the defaults, 256 and 16). All
// methods are nil-receiver safe, so an unset tracer costs one nil test.
func NewSpanTracer(capacity, topK int) *SpanTracer { return obs.NewSpanTracer(capacity, topK) }

// RegisterBuildInfo registers the elink_build_info gauge (version, Go
// version, GOMAXPROCS as labels, value constant 1) plus
// process_start_time_seconds and the scrape-time-computed
// process_uptime_seconds on reg.
func RegisterBuildInfo(reg *MetricsRegistry, version string) { obs.RegisterBuildInfo(reg, version) }

// InstrumentParallelismSpans makes the shared parallel execution layer
// emit "par-batch" span traces (one child per worker) into t; nil
// detaches. Batches faster than 1ms feed only the phase statistics.
func InstrumentParallelismSpans(t *SpanTracer) { par.InstrumentSpans(t) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTraceBuffer returns a trace ring buffer holding the last capacity
// events (capacity <= 0 selects obs.DefaultTraceCapacity).
func NewTraceBuffer(capacity int) *TraceBuffer { return obs.NewTracer(capacity) }

// LatencyBuckets returns the shared latency histogram layout (1µs–10s)
// used by every *_latency_seconds and *_duration_seconds family.
func LatencyBuckets() []float64 { return obs.LatencyBuckets() }

// MessageBuckets returns the shared message-count histogram layout.
func MessageBuckets() []float64 { return obs.MessageBuckets() }

// RoundBuckets returns the shared round-count histogram layout (powers
// of two).
func RoundBuckets() []float64 { return obs.RoundBuckets() }

// SetParallelism pins the worker count of the shared parallel execution
// layer (the Jacobi eigensolver, k-means, AR fitting and query fan-out
// all run on it). n <= 0 restores automatic resolution: the
// ELINK_WORKERS environment variable if set, else GOMAXPROCS. Results
// are bitwise identical for every worker count; only throughput changes.
func SetParallelism(n int) { par.SetWorkers(n) }

// Parallelism reports the worker count the parallel execution layer
// resolves for new work.
func Parallelism() int { return par.Workers() }

// InstrumentParallelism exports the parallel execution layer's
// utilization (par_tasks_total, par_workers, par_batch_latency_seconds)
// through the given registry; nil detaches it again.
func InstrumentParallelism(reg *MetricsRegistry) { par.Instrument(reg) }

// NewEngine builds a streaming engine over the network. Ingest batches
// with Engine.Ingest (raw readings, Order >= 1) or Engine.IngestFeatures
// (pre-fitted features, any Order); query with Engine.RangeQuery and
// Engine.PathQuery; observe costs with Engine.Stats.
func NewEngine(g *Graph, cfg EngineConfig) (*Engine, error) {
	return stream.New(g, cfg)
}

// Dataset generator configurations, aliased so every knob — including
// the Seed that drives all randomness — is settable from the public API.
type (
	// TaoGenConfig parameterizes the Tao-like sea-surface-temperature
	// generator (grid shape, days, noise, Seed).
	TaoGenConfig = data.TaoConfig
	// DeathValleyGenConfig parameterizes the terrain elevation generator.
	DeathValleyGenConfig = data.DeathValleyConfig
	// SyntheticGenConfig parameterizes the uncorrelated AR(1) generator.
	SyntheticGenConfig = data.SyntheticConfig
)

// GenerateTao generates the Tao-like dataset with explicit control of
// every knob; TaoDataset is the common-case shorthand.
func GenerateTao(cfg TaoGenConfig) (*Dataset, error) { return data.Tao(cfg) }

// GenerateDeathValley generates the terrain dataset with explicit knobs;
// DeathValleyDataset is the common-case shorthand.
func GenerateDeathValley(cfg DeathValleyGenConfig) (*Dataset, error) {
	return data.DeathValley(cfg)
}

// GenerateSynthetic generates the uncorrelated AR(1) dataset with
// explicit knobs; SyntheticDataset is the common-case shorthand.
func GenerateSynthetic(cfg SyntheticGenConfig) (*Dataset, error) {
	return data.Synthetic(cfg)
}

// FitTaoFeature fits the Tao mixed-model feature vector (the 4
// coefficients TaoMetric weighs) to a raw temperature series — the
// per-day refit step when replaying Tao data through the streaming
// engine.
func FitTaoFeature(series []float64) (Feature, error) { return data.FitTaoModel(series) }

// TaoMetric returns the weighted distance the paper pairs with Tao
// features.
func TaoMetric() Metric { return data.TaoMetric() }
