// Adaptive maintenance: the paper's slack-parameterized update protocol
// (§6). A clustered network absorbs a drifting data distribution; the
// slack Δ trades clustering quality for communication silence.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"elink/internal/detrand"
	"fmt"
	"log"

	"elink"
)

func main() {
	g := elink.NewRandomNetwork(150, 4, 3)
	rng := detrand.New(3)

	// Initial field: two spatial regimes with mild noise.
	cur := make([]float64, g.N())
	feats := make([]elink.Feature, g.N())
	for u := 0; u < g.N(); u++ {
		if g.Pos[u].X > 6 {
			cur[u] = 4
		}
		cur[u] += rng.Float64() * 0.2
		feats[u] = elink.Feature{cur[u]}
	}

	delta := 2.0
	for _, slack := range []float64{0.1, 0.4, 0.8} {
		// Cluster with the tightened threshold δ − 2Δ so the slack has
		// room to absorb drift (§6).
		res, err := elink.Cluster(g, elink.Config{
			Delta: delta - 2*slack, Metric: elink.Scalar(), Features: feats,
		})
		if err != nil {
			log.Fatal(err)
		}
		m, err := elink.NewMaintainer(g, res.Clustering, feats, elink.MaintainerConfig{
			Delta: delta, Slack: slack, Metric: elink.Scalar(),
		})
		if err != nil {
			log.Fatal(err)
		}
		central := elink.NewCentralizedUpdater(g, 0, feats, elink.MaintainerConfig{
			Delta: delta, Slack: slack, Metric: elink.Scalar(),
		}, 1)

		// Stream 2000 feature drifts through both schemes.
		drift := detrand.New(99)
		vals := append([]float64(nil), cur...)
		for step := 0; step < 2000; step++ {
			u := elink.NodeID(drift.Intn(g.N()))
			vals[u] += drift.NormFloat64() * 0.2
			f := elink.Feature{vals[u]}
			m.Update(u, f)
			central.Update(u, f)
		}

		c := m.CountersSnapshot()
		fmt.Printf("slack Δ=%.1f: initial clusters=%d final=%d\n",
			slack, res.Clustering.NumClusters(), m.NumClusters())
		fmt.Printf("  in-network: %d messages (A1/A2/A3 screens silenced %d/%d/%d of %d updates)\n",
			m.Stats().Messages, c.ScreenedA1, c.ScreenedA2, c.ScreenedA3, c.Updates)
		fmt.Printf("  centralized would ship %d messages for the same stream\n\n",
			central.Stats().Messages)
	}
}
