// Streaming maintenance: replay the Tao-like buoy data day by day
// through the live engine and watch the clustering track the ocean.
//
// Each morning every buoy refits its model on the data so far and ships
// the new coefficients into the engine. The slack-Δ screens silence the
// small overnight drifts, the M-tree repairs itself incrementally, and
// the adaptive policy re-runs full ELink only when fragmentation says
// the maintained clustering has degraded — so the daily update cost is
// a fraction of re-clustering from scratch every day, which is the
// entire argument of the paper's §6.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"elink"
)

const (
	days       = 14
	firstFit   = 5   // days of history before the first stable fit
	perDay     = 144 // 10-minute samples
	delta      = 0.12
	slackRatio = 0.1
)

func main() {
	ds, err := elink.GenerateTao(elink.TaoGenConfig{Days: days, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	n := ds.Graph.N()
	fmt.Printf("replaying %d days over %d buoys (delta %g, slack %g)\n\n",
		days, n, delta, slackRatio*delta)

	// fitDay refits every buoy on its series up to the end of day d.
	fitDay := func(d int) []elink.Feature {
		feats := make([]elink.Feature, n)
		for u := 0; u < n; u++ {
			f, err := elink.FitTaoFeature(ds.Series[u][:(d+1)*perDay])
			if err != nil {
				log.Fatal(err)
			}
			feats[u] = f
		}
		return feats
	}
	batchOf := func(feats []elink.Feature) []elink.FeatureUpdate {
		batch := make([]elink.FeatureUpdate, n)
		for u := range batch {
			batch[u] = elink.FeatureUpdate{Node: elink.NodeID(u), Feature: feats[u]}
		}
		return batch
	}

	engine, err := elink.NewEngine(ds.Graph, elink.EngineConfig{
		Delta:  delta,
		Slack:  slackRatio * delta,
		Metric: ds.Metric,
		Policy: elink.PolicyAdaptive,
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Day firstFit bootstraps the first clustering; every later day is
	// one maintenance epoch. For comparison, also price re-running full
	// ELink (plus index build) on that day's features.
	fmt.Printf("%-5s %9s %9s %12s %12s %s\n",
		"day", "clusters", "detaches", "stream msgs", "full msgs", "")
	var prevSteady, fullTotal int64
	for d := firstFit; d < days; d++ {
		feats := fitDay(d)
		res, err := engine.IngestFeatures(batchOf(feats))
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if res.Reclustered {
			note = "(re-clustered)"
		}
		if d == firstFit {
			fmt.Printf("%-5d %9d %9s %12s %12s bootstrap: %d msgs\n",
				d, res.NumClusters, "-", "-", "-", engine.Stats().BootstrapMsgs)
			continue
		}
		full, err := elink.Cluster(ds.Graph, elink.Config{
			Delta: delta - 2*slackRatio*delta, Metric: ds.Metric, Features: feats, Seed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}
		idx, err := elink.BuildIndex(ds.Graph, full.Clustering, feats, ds.Metric)
		if err != nil {
			log.Fatal(err)
		}
		dayFull := full.Stats.Messages + idx.BuildStats.Messages
		fullTotal += dayFull

		steady := engine.Stats().SteadyStateMsgs()
		fmt.Printf("%-5d %9d %9d %12d %12d %s\n",
			d, res.NumClusters, res.Detaches, steady-prevSteady, dayFull, note)
		prevSteady = steady
	}

	st := engine.Stats()
	fmt.Printf("\nafter %d maintained days:\n", days-firstFit-1)
	fmt.Printf("  screening: %d updates, %d silenced (A1 %d, A2 %d, A3 %d), %d detaches\n",
		st.Screening.Updates,
		st.Screening.ScreenedA1+st.Screening.ScreenedA2+st.Screening.ScreenedA3,
		st.Screening.ScreenedA1, st.Screening.ScreenedA2, st.Screening.ScreenedA3,
		st.Screening.Detaches)
	fmt.Printf("  streaming cost: %d msgs (maintenance %d, index repair %d, rebuilds %d, re-clusters %d)\n",
		st.SteadyStateMsgs(), st.MaintenanceMsgs, st.IndexRepairMsgs, st.IndexRebuildMsgs, st.ReclusterMsgs)
	fmt.Printf("  re-clustering every day instead: %d msgs (%.1fx more)\n",
		fullTotal, float64(fullTotal)/float64(st.SteadyStateMsgs()))

	// The maintained snapshot keeps serving queries throughout; ask it
	// which buoys behave like buoy 0 today.
	snap := engine.Snapshot()
	r, err := engine.RangeQuery(snap.Features[0], 0.8*delta, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  buoys behaving like buoy 0: %v (%d msgs vs %d for TAG flooding)\n",
		r.Matches, r.Stats.Messages, elink.TAGCost(ds.Graph).Messages)
}
