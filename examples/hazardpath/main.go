// Hazard navigation: the paper's path-query scenario (§7.3).
//
// Sensors scattered over fractal terrain report elevation; low ground is
// flooded and dangerous. A rescue mission asks for a path from one corner
// of the deployment to the other that stays at least γ above the flood
// line. The clustered index answers without flooding the network.
//
// Run with:
//
//	go run ./examples/hazardpath
package main

import (
	"fmt"
	"log"
	"math"

	"elink"
)

func main() {
	ds, err := elink.DeathValleyDataset(600, 7)
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph
	fmt.Printf("deployed %d sensors over terrain; elevation range (175, 1996)\n", g.N())

	res, err := elink.Cluster(g, elink.Config{
		Delta:    150, // cluster terrain into ~150m elevation bands
		Metric:   ds.Metric,
		Features: ds.Features,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ELink found %d elevation regions in %d messages\n",
		res.Clustering.NumClusters(), res.Stats.Messages)

	idx, err := elink.BuildIndex(g, res.Clustering, ds.Features, ds.Metric)
	if err != nil {
		log.Fatal(err)
	}

	// Pick endpoints: the highest sensors near opposite corners.
	src := cornerSensor(ds, 0, 0)
	dst := cornerSensor(ds, 1, 1)
	danger := elink.Feature{175} // the flood line at the valley floor

	for _, gamma := range []float64{100, 300, 600} {
		p := elink.PathQuery(idx, danger, gamma, src, dst)
		f := elink.BFSFloodPath(g, ds.Features, ds.Metric, danger, gamma, src, dst)
		if p.Found {
			fmt.Printf("γ=%4.0f: safe path of %d hops for %d messages (flooding: %d messages)\n",
				gamma, len(p.Path)-1, p.Stats.Messages, f.Stats.Messages)
			fmt.Printf("        clusters: %d safe, %d unsafe, %d drilled\n",
				p.ClustersSafe, p.ClustersUnsafe, p.ClustersMixed)
		} else {
			fmt.Printf("γ=%4.0f: no safe path (%d messages to find out; flooding: %d)\n",
				gamma, p.Stats.Messages, f.Stats.Messages)
		}
	}
}

// cornerSensor returns the sensor closest to the given corner (fractions
// of the bounding box) with a safely high elevation.
func cornerSensor(ds *elink.Dataset, fx, fy float64) elink.NodeID {
	min, max := ds.Graph.BoundingBox()
	target := elink.Point{
		X: min.X + fx*(max.X-min.X),
		Y: min.Y + fy*(max.Y-min.Y),
	}
	best, bestScore := elink.NodeID(0), math.Inf(1)
	for u := 0; u < ds.Graph.N(); u++ {
		if ds.Features[u][0] < 800 {
			continue // stay on high ground
		}
		if d := ds.Graph.Pos[u].Dist(target); d < bestScore {
			best, bestScore = elink.NodeID(u), d
		}
	}
	return best
}
