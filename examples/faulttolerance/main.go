// Fault tolerance: how ELink's two signalling techniques behave on lossy
// radios.
//
// The implicit (timer-driven) technique degrades gracefully: every node
// still self-clusters on its own sentinel timer, so the δ-invariant holds
// at any loss rate — only the clustering quality erodes. The explicit
// technique depends on its synchronization wave, so heavy loss makes it
// fail loudly (unclustered nodes reported) rather than return garbage.
//
// Run with:
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"elink"
)

func main() {
	g := elink.NewGrid(10, 10)
	feats := make([]elink.Feature, g.N())
	for u := 0; u < g.N(); u++ {
		feats[u] = elink.Feature{float64(int(g.Pos[u].X) / 3)} // 4 bands
	}
	base := elink.Config{Delta: 0.5, Metric: elink.Scalar(), Features: feats, Seed: 7}

	fmt.Println("implicit signalling under increasing loss:")
	for _, loss := range []float64{0, 0.05, 0.15, 0.3} {
		cfg := base
		cfg.Loss = loss
		res, err := elink.Cluster(g, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Clustering.Validate(g, feats, elink.Scalar(), 0.5, 1e-9); err != nil {
			log.Fatalf("loss %.2f: invalid clustering: %v", loss, err)
		}
		fmt.Printf("  loss=%.2f: %d clusters (optimal 4), %d messages sent, all δ-valid\n",
			loss, res.Clustering.NumClusters(), res.Stats.Messages)
	}

	fmt.Println("explicit signalling under the same loss:")
	for _, loss := range []float64{0, 0.05, 0.3} {
		cfg := base
		cfg.Loss = loss
		cfg.Mode = elink.Explicit
		res, err := elink.Cluster(g, cfg)
		if err != nil {
			fmt.Printf("  loss=%.2f: failed loudly: %v\n", loss, err)
			continue
		}
		fmt.Printf("  loss=%.2f: %d clusters, %d messages\n",
			loss, res.Clustering.NumClusters(), res.Stats.Messages)
	}
}
