// Ocean temperature monitoring: the paper's motivating scenario (§1).
//
// A 6x9 buoy grid observes sea surface temperatures over a month. Each
// buoy models its series with the mixed AR model of §8.1; ELink clusters
// the fleet into zones with similar dynamics (warm pool / transition /
// cold tongue), and range queries find "regions behaving like buoy X"
// at a fraction of the TAG flooding cost.
//
// Run with:
//
//	go run ./examples/oceantemp
package main

import (
	"fmt"
	"log"

	"elink"
)

func main() {
	ds, err := elink.TaoDataset(20, 42) // 20 days of 10-minute samples
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d buoys, %d samples each; features are the 4 AR coefficients\n",
		ds.Graph.N(), len(ds.Series[0]))

	delta := 0.2
	res, err := elink.Cluster(ds.Graph, elink.Config{
		Delta:    delta,
		Metric:   ds.Metric, // weighted euclidean (0.5, 0.3, 0.2, 0.1)
		Features: ds.Features,
		Mode:     elink.Explicit, // asynchronous-network signalling
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ELink (explicit) found %d temperature zones in %d messages\n",
		res.Clustering.NumClusters(), res.Stats.Messages)

	// Render the zone map: rows are latitudes, columns longitudes.
	fmt.Println("zone map (one letter per cluster):")
	fmt.Println(elink.RenderGridClusters(ds.Graph, res.Clustering, 9))

	// Compare against the centralized spectral algorithm.
	central, err := elink.SpectralCluster(ds.Graph, elink.SpectralConfig{
		Delta: delta, Metric: ds.Metric, Features: ds.Features, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("centralized spectral clustering finds %d zones (quality reference)\n",
		central.Clustering.NumClusters())

	// "Which regions behave like buoy 13?"
	idx, err := elink.BuildIndex(ds.Graph, res.Clustering, ds.Features, ds.Metric)
	if err != nil {
		log.Fatal(err)
	}
	probe := elink.NodeID(13)
	q := elink.RangeQuery(idx, ds.Features[probe], 0.7*delta, probe)
	fmt.Printf("buoys behaving like buoy %d (r = 0.7δ): %d matches, %d messages (TAG: %d)\n",
		probe, len(q.Matches), q.Stats.Messages, elink.TAGCost(ds.Graph).Messages)
	fmt.Printf("  cluster pruning: %d excluded, %d fully included, %d searched\n",
		q.ClustersExcluded, q.ClustersIncluded, q.ClustersSearched)
}
