// Quickstart: cluster a small grid network whose sensors observe two
// distinct regimes, then ask a range query against the clusters.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"elink"
)

func main() {
	// An 8x8 sensor grid. The west half of the field observes one
	// phenomenon (feature near 0), the east half another (feature near 5).
	g := elink.NewGrid(8, 8)
	feats := make([]elink.Feature, g.N())
	for u := 0; u < g.N(); u++ {
		base := 0.0
		if g.Pos[u].X >= 4 {
			base = 5.0
		}
		feats[u] = elink.Feature{base + 0.05*float64(u%3)}
	}

	// Partition into δ-clusters: connected regions whose features differ
	// by at most δ pairwise.
	res, err := elink.Cluster(g, elink.Config{
		Delta:    1.0,
		Metric:   elink.Scalar(),
		Features: feats,
		Mode:     elink.Implicit, // synchronous, timer-driven signalling
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustered %d nodes into %d δ-clusters using %d messages (simulated time %.1f)\n",
		g.N(), res.Clustering.NumClusters(), res.Stats.Messages, res.Stats.Time)
	for ci, members := range res.Clustering.Members {
		fmt.Printf("  cluster %d: root=%d size=%d\n", ci, res.Clustering.Roots[ci], len(members))
	}

	// The clustering is a verified δ-clustering.
	if err := res.Clustering.Validate(g, feats, elink.Scalar(), 1.0, 1e-9); err != nil {
		log.Fatalf("invalid clustering: %v", err)
	}

	// Build the distributed index and ask: which sensors behave like
	// feature 5 (within 0.4)?
	idx, err := elink.BuildIndex(g, res.Clustering, feats, elink.Scalar())
	if err != nil {
		log.Fatal(err)
	}
	q := elink.RangeQuery(idx, elink.Feature{5}, 0.4, 0)
	fmt.Printf("range query: %d matches for %d messages (TAG baseline would cost %d)\n",
		len(q.Matches), q.Stats.Messages, elink.TAGCost(g).Messages)
}
