// Randomness policy: this package has no hidden global randomness. Every
// randomized component — dataset generators (TaoGenConfig.Seed, ...),
// clustering runs (Config.Seed drives simulator delays and loss), the
// asynchronous runtime, random topologies (NewRandomGeometric /
// NewRandomNetwork seed parameters) and the streaming engine
// (EngineConfig.Seed) — takes an explicit seed through its public
// configuration, so identical inputs plus identical seeds reproduce
// identical clusterings, message counts and query answers end to end.
// math/rand's global source is never used.
//
// The policy is machine-checked: the seededrand analyzer (internal/lint,
// run by `make lint`) rejects global-source calls everywhere and allows
// rand.New/rand.NewSource only inside internal/detrand, the module's
// single construction point that newRand delegates to.
package elink

import (
	"math/rand"

	"elink/internal/detrand"
)

// newRand is the facade's construction point for seeded generators
// handed to the internal packages.
func newRand(seed int64) *rand.Rand { return detrand.New(seed) }
