// Randomness policy: this package has no hidden global randomness. Every
// randomized component — dataset generators (TaoGenConfig.Seed, ...),
// clustering runs (Config.Seed drives simulator delays and loss), the
// asynchronous runtime, random topologies (NewRandomGeometric /
// NewRandomNetwork seed parameters) and the streaming engine
// (EngineConfig.Seed) — takes an explicit seed through its public
// configuration, so identical inputs plus identical seeds reproduce
// identical clusterings, message counts and query answers end to end.
// math/rand's global source is never used.
package elink

import "math/rand"

// newRand is the single construction point for seeded generators handed
// to the internal packages.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
