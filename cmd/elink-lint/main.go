// Command elink-lint runs the repository's invariant analyzers
// (internal/lint) over the module and fails on any finding.
//
// The rules protect contracts that golden tests can only catch after the
// fact: explicit-seed randomness, wall-clock-free deterministic
// packages, goroutine discipline, order-insensitive map iteration,
// HELP-described metrics and panic-free decode paths. Diagnostics are
// position-accurate `file:line:col: [rule] message` lines; deliberate
// violations are annotated in place with
//
//	//elink:allow <rule> — <reason>
//
// and show up in the summary so they stay visible.
//
// Usage:
//
//	elink-lint [-C dir] [-rules rule1,rule2] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"elink/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "module root to lint (the directory containing go.mod)")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := flag.Bool("list", false, "list the rules and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *rules != "" {
		analyzers = filterRules(analyzers, *rules)
	}

	res, err := lint.Run(*dir, lint.DefaultConfig(), analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "elink-lint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range res.Diags {
		fmt.Println(lint.Render(d, mustAbs(*dir)))
	}
	fmt.Printf("elink-lint: %d packages, %d findings, %s\n",
		res.Packages, len(res.Diags), suppressionSummary(res))
	if len(res.Diags) > 0 {
		fmt.Println("elink-lint: a deliberate violation can be annotated on its line (or the line above) with: //elink:allow <rule> — <reason>")
		os.Exit(1)
	}
}

func filterRules(all []*lint.Analyzer, spec string) []*lint.Analyzer {
	want := make(map[string]bool)
	for _, r := range strings.Split(spec, ",") {
		want[strings.TrimSpace(r)] = true
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	for r := range want {
		fmt.Fprintf(os.Stderr, "elink-lint: unknown rule %q (use -list)\n", r)
		os.Exit(2)
	}
	return out
}

func suppressionSummary(res *lint.Result) string {
	total := res.SuppressionTotal()
	if total == 0 {
		return "0 suppressions"
	}
	parts := make([]string, 0, len(res.Suppressed))
	for _, a := range lint.Analyzers() {
		if n := res.Suppressed[a.Name]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", a.Name, n))
		}
	}
	return fmt.Sprintf("%d suppressions (%s)", total, strings.Join(parts, ", "))
}

func mustAbs(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	return abs
}
