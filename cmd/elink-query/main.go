// Command elink-query clusters one of the built-in datasets, builds the
// distributed index, and answers range or path queries, reporting message
// costs against the TAG / BFS-flood baselines.
//
// Usage:
//
//	elink-query -dataset tao -kind range -r 0.08
//	elink-query -dataset deathvalley -nodes 600 -kind path -gamma 300
package main

import (
	"elink/internal/detrand"
	"flag"
	"fmt"
	"os"

	"elink"
)

func main() {
	var (
		dataset = flag.String("dataset", "tao", "dataset: tao | deathvalley | synthetic")
		kind    = flag.String("kind", "range", "query kind: range | path")
		nodes   = flag.Int("nodes", 0, "node count for deathvalley/synthetic (0 = default)")
		days    = flag.Int("days", 10, "days of Tao data")
		delta   = flag.Float64("delta", 0, "clustering threshold (0 = dataset default)")
		radius  = flag.Float64("r", 0, "range query radius (0 = 0.8*delta)")
		gamma   = flag.Float64("gamma", 0, "path query safety margin (0 = dataset-scaled default)")
		count   = flag.Int("n", 20, "number of random queries to average")
		seed    = flag.Int64("seed", 1, "random seed")
		svgPath = flag.String("svg", "", "for -kind path: draw the last found path as an SVG to this file")
	)
	flag.Parse()

	ds, err := loadDataset(*dataset, *nodes, *days, *seed)
	if err != nil {
		fail(err)
	}
	d := *delta
	if d == 0 {
		d = ds.Deltas[len(ds.Deltas)/2]
	}
	res, err := elink.Cluster(ds.Graph, elink.Config{
		Delta: d, Metric: ds.Metric, Features: ds.Features, Seed: *seed,
	})
	if err != nil {
		fail(err)
	}
	idx, err := elink.BuildIndex(ds.Graph, res.Clustering, ds.Features, ds.Metric)
	if err != nil {
		fail(err)
	}
	fmt.Printf("dataset=%s nodes=%d delta=%g clusters=%d (clustering cost %d msgs, index+backbone %d msgs)\n",
		ds.Name, ds.Graph.N(), d, res.Clustering.NumClusters(),
		res.Stats.Messages, idx.BuildStats.Messages)

	rng := detrand.New(*seed + 77)
	switch *kind {
	case "range":
		r := *radius
		if r == 0 {
			r = 0.8 * d
		}
		var cost, matches int64
		for i := 0; i < *count; i++ {
			q := ds.Features[rng.Intn(ds.Graph.N())]
			init := elink.NodeID(rng.Intn(ds.Graph.N()))
			rr := elink.RangeQuery(idx, q, r, init)
			cost += rr.Stats.Messages
			matches += int64(len(rr.Matches))
		}
		tag := elink.TAGCost(ds.Graph).Messages
		avg := float64(cost) / float64(*count)
		fmt.Printf("range r=%g: avg %.1f msgs/query, avg %.1f matches; TAG costs %d (gain %.1fx)\n",
			r, avg, float64(matches)/float64(*count), tag, float64(tag)/avg)
	case "path":
		gm := *gamma
		if gm == 0 {
			gm = 2 * d
		}
		danger := lowestFeature(ds)
		var cost, floodCost int64
		found := 0
		var lastPath []elink.NodeID
		for i := 0; i < *count; i++ {
			src := elink.NodeID(rng.Intn(ds.Graph.N()))
			dst := elink.NodeID(rng.Intn(ds.Graph.N()))
			p := elink.PathQuery(idx, danger, gm, src, dst)
			f := elink.BFSFloodPath(ds.Graph, ds.Features, ds.Metric, danger, gm, src, dst)
			cost += p.Stats.Messages
			floodCost += f.Stats.Messages
			if p.Found {
				found++
				lastPath = p.Path
			}
		}
		if *svgPath != "" && lastPath != nil {
			f, err := os.Create(*svgPath)
			if err != nil {
				fail(err)
			}
			opts := elink.SVGOptions{
				ShowEdges: true, Highlight: lastPath, PathEdges: lastPath,
				Title: fmt.Sprintf("%s: safe path, gamma=%g", ds.Name, gm),
			}
			if err := elink.WriteNetworkSVG(f, ds.Graph, res.Clustering, opts); err != nil {
				f.Close()
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *svgPath)
		}
		fmt.Printf("path gamma=%g danger=%v: %d/%d found; avg %.1f msgs/query vs BFS flood %.1f (gain %.1fx)\n",
			gm, danger, found, *count,
			float64(cost)/float64(*count), float64(floodCost)/float64(*count),
			float64(floodCost)/float64(cost))
	default:
		fail(fmt.Errorf("unknown query kind %q", *kind))
	}
}

func loadDataset(name string, nodes, days int, seed int64) (*elink.Dataset, error) {
	switch name {
	case "tao":
		return elink.TaoDataset(days, seed)
	case "deathvalley":
		if nodes == 0 {
			nodes = 500
		}
		return elink.DeathValleyDataset(nodes, seed)
	case "synthetic":
		if nodes == 0 {
			nodes = 300
		}
		return elink.SyntheticDataset(nodes, 5000, seed)
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}

// lowestFeature returns the minimum feature value as the danger point
// (for elevation data, the valley floor).
func lowestFeature(ds *elink.Dataset) elink.Feature {
	low := ds.Features[0]
	for _, f := range ds.Features {
		if f[0] < low[0] {
			low = f
		}
	}
	return low.Clone()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "elink-query:", err)
	os.Exit(1)
}
