package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"elink"
)

func newTestServer(t *testing.T) (*server, *http.ServeMux) {
	t.Helper()
	g := elink.NewGrid(1, 6)
	engine, err := elink.NewEngine(g, elink.EngineConfig{
		Order: 0, Delta: 2, Slack: 0.1, Metric: elink.Euclidean(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &server{engine: engine}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.health)
	mux.HandleFunc("POST /v1/ingest", s.ingest)
	mux.HandleFunc("POST /v1/query/range", s.rangeQuery)
	mux.HandleFunc("POST /v1/query/path", s.pathQuery)
	mux.HandleFunc("GET /v1/stats", s.stats)
	mux.HandleFunc("GET /v1/snapshot", s.snapshot)
	return s, mux
}

func do(t *testing.T, mux *http.ServeMux, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	return w
}

func TestServeLifecycle(t *testing.T) {
	_, mux := newTestServer(t)

	// Not ready yet: queries and snapshot are 503, health reports it.
	w := do(t, mux, "GET", "/healthz", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"ready":false`) {
		t.Fatalf("healthz = %d %s", w.Code, w.Body.String())
	}
	if w = do(t, mux, "POST", "/v1/query/range", `{"feature":[0],"radius":1}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("range before bootstrap = %d, want 503", w.Code)
	}
	if w = do(t, mux, "GET", "/v1/snapshot", ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("snapshot before bootstrap = %d, want 503", w.Code)
	}

	// Bootstrap via a feature batch: two plateaus on the 6-node path.
	batch := `{"features":[
		{"node":0,"feature":[0]},{"node":1,"feature":[0.1]},{"node":2,"feature":[0.2]},
		{"node":3,"feature":[9]},{"node":4,"feature":[9.1]},{"node":5,"feature":[9.2]}]}`
	w = do(t, mux, "POST", "/v1/ingest", batch)
	if w.Code != http.StatusOK {
		t.Fatalf("ingest = %d %s", w.Code, w.Body.String())
	}
	var res elink.IngestResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Ready || res.NumClusters != 2 {
		t.Fatalf("ingest result %+v, want ready with 2 clusters", res)
	}

	// Range query finds the low plateau.
	w = do(t, mux, "POST", "/v1/query/range", `{"feature":[0.1],"radius":0.5,"initiator":0}`)
	if w.Code != http.StatusOK {
		t.Fatalf("range = %d %s", w.Code, w.Body.String())
	}
	var rr struct {
		Matches  []elink.NodeID `json:"matches"`
		Messages int64          `json:"messages"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Matches) != 3 {
		t.Errorf("range matched %v, want the 3 low-plateau nodes", rr.Matches)
	}

	// Path query avoiding the high plateau cannot cross the grid.
	w = do(t, mux, "POST", "/v1/query/path", `{"danger":[9.1],"gamma":2,"src":0,"dst":5}`)
	if w.Code != http.StatusOK {
		t.Fatalf("path = %d %s", w.Code, w.Body.String())
	}
	var pr struct {
		Found bool `json:"found"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Found {
		t.Error("path to a node inside the danger region should not exist")
	}

	// Stats and snapshot reflect the traffic.
	w = do(t, mux, "GET", "/v1/stats", "")
	var st elink.EngineStats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Epochs != 1 || st.RangeQueries != 1 || st.PathQueries != 1 {
		t.Errorf("stats = %+v, want 1 epoch, 1 range, 1 path", st)
	}
	w = do(t, mux, "GET", "/v1/snapshot", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"epoch":1`) {
		t.Errorf("snapshot = %d %s", w.Code, w.Body.String())
	}

	// Malformed ingest requests are rejected.
	for _, bad := range []string{
		`{`,
		`{}`,
		`{"readings":[{"node":0,"value":1}],"features":[{"node":0,"feature":[1]}]}`,
		`{"readings":[{"node":0,"value":1}]}`, // Order-0 engine takes features only
		`{"features":[{"node":99,"feature":[1]}]}`,
	} {
		if w = do(t, mux, "POST", "/v1/ingest", bad); w.Code != http.StatusBadRequest {
			t.Errorf("ingest %q = %d, want 400", bad, w.Code)
		}
	}
}
