package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"

	"elink"
)

func newTestServer(t *testing.T) (*server, *http.ServeMux) {
	t.Helper()
	g := elink.NewGrid(1, 6)
	reg := elink.NewMetricsRegistry()
	tracer := elink.NewTraceBuffer(0)
	spans := elink.NewSpanTracer(0, 0)
	spans.Instrument(reg)
	engine, err := elink.NewEngine(g, elink.EngineConfig{
		Order: 0, Delta: 2, Slack: 0.1, Metric: elink.Euclidean(), Seed: 1,
		Obs: reg, Trace: tracer, Spans: spans,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &server{engine: engine, reg: reg, tracer: tracer, spans: spans}
	return s, newMux(s, false)
}

func do(t *testing.T, mux *http.ServeMux, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	return w
}

func TestServeLifecycle(t *testing.T) {
	_, mux := newTestServer(t)

	// Not ready yet: queries and snapshot are 503, and health is a 503
	// "warming" until the engine is actually queryable.
	w := do(t, mux, "GET", "/healthz", "")
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), `"status":"warming"`) {
		t.Fatalf("healthz = %d %s, want 503 warming", w.Code, w.Body.String())
	}
	if w = do(t, mux, "POST", "/v1/query/range", `{"feature":[0],"radius":1}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("range before bootstrap = %d, want 503", w.Code)
	}
	if w = do(t, mux, "GET", "/v1/snapshot", ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("snapshot before bootstrap = %d, want 503", w.Code)
	}

	// Bootstrap via a feature batch: two plateaus on the 6-node path.
	batch := `{"features":[
		{"node":0,"feature":[0]},{"node":1,"feature":[0.1]},{"node":2,"feature":[0.2]},
		{"node":3,"feature":[9]},{"node":4,"feature":[9.1]},{"node":5,"feature":[9.2]}]}`
	w = do(t, mux, "POST", "/v1/ingest", batch)
	if w.Code != http.StatusOK {
		t.Fatalf("ingest = %d %s", w.Code, w.Body.String())
	}
	var res elink.IngestResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Ready || res.NumClusters != 2 {
		t.Fatalf("ingest result %+v, want ready with 2 clusters", res)
	}

	// Health flips to a 200 "ready" once queryable.
	w = do(t, mux, "GET", "/healthz", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"status":"ready"`) {
		t.Fatalf("healthz after bootstrap = %d %s, want 200 ready", w.Code, w.Body.String())
	}

	// Range query finds the low plateau.
	w = do(t, mux, "POST", "/v1/query/range", `{"feature":[0.1],"radius":0.5,"initiator":0}`)
	if w.Code != http.StatusOK {
		t.Fatalf("range = %d %s", w.Code, w.Body.String())
	}
	var rr struct {
		Matches  []elink.NodeID `json:"matches"`
		Messages int64          `json:"messages"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Matches) != 3 {
		t.Errorf("range matched %v, want the 3 low-plateau nodes", rr.Matches)
	}

	// Path query avoiding the high plateau cannot cross the grid.
	w = do(t, mux, "POST", "/v1/query/path", `{"danger":[9.1],"gamma":2,"src":0,"dst":5}`)
	if w.Code != http.StatusOK {
		t.Fatalf("path = %d %s", w.Code, w.Body.String())
	}
	var pr struct {
		Found bool `json:"found"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Found {
		t.Error("path to a node inside the danger region should not exist")
	}

	// Stats and snapshot reflect the traffic.
	w = do(t, mux, "GET", "/v1/stats", "")
	var st elink.EngineStats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Epochs != 1 || st.RangeQueries != 1 || st.PathQueries != 1 {
		t.Errorf("stats = %+v, want 1 epoch, 1 range, 1 path", st)
	}
	w = do(t, mux, "GET", "/v1/snapshot", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"epoch":1`) {
		t.Errorf("snapshot = %d %s", w.Code, w.Body.String())
	}

	// Malformed ingest requests are rejected.
	for _, bad := range []string{
		`{`,
		`{}`,
		`{"readings":[{"node":0,"value":1}],"features":[{"node":0,"feature":[1]}]}`,
		`{"readings":[{"node":0,"value":1}]}`, // Order-0 engine takes features only
		`{"features":[{"node":99,"feature":[1]}]}`,
	} {
		if w = do(t, mux, "POST", "/v1/ingest", bad); w.Code != http.StatusBadRequest {
			t.Errorf("ingest %q = %d, want 400", bad, w.Code)
		}
	}
}

// bootstrapTestServer ingests a two-plateau feature batch so the engine
// is ready.
func bootstrapTestServer(t *testing.T, mux *http.ServeMux) {
	t.Helper()
	batch := `{"features":[
		{"node":0,"feature":[0]},{"node":1,"feature":[0.1]},{"node":2,"feature":[0.2]},
		{"node":3,"feature":[9]},{"node":4,"feature":[9.1]},{"node":5,"feature":[9.2]}]}`
	if w := do(t, mux, "POST", "/v1/ingest", batch); w.Code != http.StatusOK {
		t.Fatalf("bootstrap ingest = %d %s", w.Code, w.Body.String())
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	_, mux := newTestServer(t)
	bootstrapTestServer(t, mux)
	if w := do(t, mux, "POST", "/v1/query/range", `{"feature":[0.1],"radius":0.5,"initiator":0}`); w.Code != http.StatusOK {
		t.Fatalf("range = %d %s", w.Code, w.Body.String())
	}

	w := do(t, mux, "GET", "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		"# TYPE engine_epoch gauge",
		"engine_epoch 1",
		"engine_clusters 2",
		`elink_runs_total{mode="implicit"} 1`,
		`queries_total{type="range"} 1`,
		`sim_messages_total{kind=`,
		`http_requests_total{code="200",path="/v1/ingest"} 1`,
		"query_latency_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestServeTraceEndpoint(t *testing.T) {
	_, mux := newTestServer(t)
	bootstrapTestServer(t, mux)

	w := do(t, mux, "GET", "/debug/trace", "")
	if w.Code != http.StatusOK {
		t.Fatalf("trace = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("trace Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("trace returned %d lines, want the bootstrap rounds plus the epoch event", len(lines))
	}
	var last elink.TraceEvent
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("last trace line %q: %v", lines[len(lines)-1], err)
	}
	if last.Scope != "engine" || last.Kind != "epoch" || last.Epoch != 1 {
		t.Errorf("last event = %+v, want engine/epoch for epoch 1", last)
	}

	// n=1 returns exactly the newest event.
	w = do(t, mux, "GET", "/debug/trace?n=1", "")
	if got := strings.Count(w.Body.String(), "\n"); got != 1 {
		t.Errorf("trace?n=1 returned %d lines", got)
	}
	// Explicit n=0 returns no events, not everything buffered.
	w = do(t, mux, "GET", "/debug/trace?n=0", "")
	if w.Code != http.StatusOK || w.Body.Len() != 0 {
		t.Errorf("trace?n=0 = %d %q, want empty 200", w.Code, w.Body.String())
	}
	// Bad n is a JSON 400.
	w = do(t, mux, "GET", "/debug/trace?n=bogus", "")
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), `"error"`) {
		t.Errorf("trace?n=bogus = %d %s, want JSON 400", w.Code, w.Body.String())
	}
}

// TestServePersistence drives the crash-recovery path end to end at the
// HTTP layer: ingest through a WAL-attached server, snapshot via the
// admin endpoint, ingest more (covered only by the WAL), "crash", then
// boot a second server over the same data dir and check it reports the
// identical epoch, clustering and counters.
func TestServePersistence(t *testing.T) {
	dir := t.TempDir()

	newPersistentServer := func() (*server, *http.ServeMux) {
		t.Helper()
		s, mux := newTestServer(t)
		s.dataDir = dir
		s.walOpts = elink.WALOptions{Fsync: elink.FsyncAlways}
		if err := s.recover(true); err != nil {
			t.Fatalf("recover: %v", err)
		}
		return s, mux
	}

	s1, mux1 := newPersistentServer()
	bootstrapTestServer(t, mux1)

	// Snapshot on demand, then keep ingesting so a WAL tail exists.
	w := do(t, mux1, "POST", "/admin/snapshot", "")
	if w.Code != http.StatusOK {
		t.Fatalf("admin snapshot = %d %s", w.Code, w.Body.String())
	}
	var info elink.SnapshotInfo
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Seq != 1 || info.Bytes <= 0 {
		t.Fatalf("snapshot info = %+v, want seq 1 and a positive size", info)
	}
	drift := `{"features":[{"node":2,"feature":[0.3]},{"node":4,"feature":[9.4]}]}`
	if w = do(t, mux1, "POST", "/v1/ingest", drift); w.Code != http.StatusOK {
		t.Fatalf("post-snapshot ingest = %d %s", w.Code, w.Body.String())
	}
	statsBefore := do(t, mux1, "GET", "/v1/stats", "").Body.String()
	snapBefore := do(t, mux1, "GET", "/v1/snapshot", "").Body.String()
	// Crash: no shutdown snapshot, no WAL close. The fsync-always journal
	// must carry the post-snapshot batch on its own.

	s2, mux2 := newPersistentServer()
	if got := s2.engine.Seq(); got != s1.engine.Seq() {
		t.Fatalf("recovered seq = %d, want %d", got, s1.engine.Seq())
	}
	if w = do(t, mux2, "GET", "/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("healthz after recovery = %d %s", w.Code, w.Body.String())
	}
	snapAfter := do(t, mux2, "GET", "/v1/snapshot", "").Body.String()
	if snapAfter != snapBefore {
		t.Errorf("recovered /v1/snapshot = %s, want %s", snapAfter, snapBefore)
	}
	// Stats match except the wall-clock collection stamp.
	strip := func(s string) string {
		var m map[string]any
		if err := json.Unmarshal([]byte(s), &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "collectedAt")
		delete(m, "phases") // span telemetry is wall-clock, not engine state
		out, _ := json.Marshal(m)
		return string(out)
	}
	if got, want := strip(do(t, mux2, "GET", "/v1/stats", "").Body.String()), strip(statsBefore); got != want {
		t.Errorf("recovered /v1/stats = %s, want %s", got, want)
	}
}

// TestServeSnapshotFallbackSurvivesTruncation pins the retention
// contract: pruning keeps the newest 3 snapshots, and the WAL keeps
// every record past the OLDEST retained one — so when the newest
// snapshot turns out to be damaged, recovery can still fall back to an
// older snapshot and replay the WAL tail across the difference.
// (Truncating through the newest snapshot's seq instead would make every
// retained snapshot but the newest an unusable recovery point.)
func TestServeSnapshotFallbackSurvivesTruncation(t *testing.T) {
	dir := t.TempDir()
	newPersistentServer := func() (*server, *http.ServeMux) {
		t.Helper()
		s, mux := newTestServer(t)
		s.dataDir = dir
		// One-byte segments seal a segment per append, so truncation has
		// real segments to delete — the failure mode under test.
		s.walOpts = elink.WALOptions{Fsync: elink.FsyncAlways, SegmentBytes: 1}
		if err := s.recover(true); err != nil {
			t.Fatalf("recover: %v", err)
		}
		return s, mux
	}

	s1, mux1 := newPersistentServer()
	bootstrapTestServer(t, mux1)
	// Four snapshots with an ingested batch between each: pruning kicks in
	// at the fourth, and WAL records separate every adjacent pair.
	for i := 0; i < 4; i++ {
		if w := do(t, mux1, "POST", "/admin/snapshot", ""); w.Code != http.StatusOK {
			t.Fatalf("snapshot %d = %d %s", i, w.Code, w.Body.String())
		}
		batch := fmt.Sprintf(`{"features":[{"node":2,"feature":[%g]}]}`, 0.3+0.1*float64(i))
		if w := do(t, mux1, "POST", "/v1/ingest", batch); w.Code != http.StatusOK {
			t.Fatalf("ingest %d = %d %s", i, w.Code, w.Body.String())
		}
	}
	statsBefore := do(t, mux1, "GET", "/v1/stats", "").Body.String()
	snaps := s1.listSnapshots()
	if len(snaps) != 3 {
		t.Fatalf("%d retained snapshots, want 3", len(snaps))
	}
	// Damage the two newest snapshots (crash mid-write, disk corruption),
	// then boot over the same data dir: recovery must fall all the way
	// back to the oldest retained snapshot and replay the WAL across the
	// records every newer snapshot covered.
	if err := os.Truncate(snaps[0], 10); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(snaps[1], 10); err != nil {
		t.Fatal(err)
	}

	s2, mux2 := newPersistentServer()
	if got, want := s2.engine.Seq(), s1.engine.Seq(); got != want {
		t.Fatalf("recovered seq = %d, want %d", got, want)
	}
	strip := func(s string) string {
		var m map[string]any
		if err := json.Unmarshal([]byte(s), &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "collectedAt")
		delete(m, "phases") // span telemetry is wall-clock, not engine state
		out, _ := json.Marshal(m)
		return string(out)
	}
	if got, want := strip(do(t, mux2, "GET", "/v1/stats", "").Body.String()), strip(statsBefore); got != want {
		t.Errorf("recovered /v1/stats = %s, want %s", got, want)
	}
}

// TestServeRestoringGate checks that every engine-touching endpoint is a
// 503 while boot recovery is in flight, and that /healthz names the
// state.
func TestServeRestoringGate(t *testing.T) {
	s, mux := newTestServer(t)
	s.restoring.Store(true)

	w := do(t, mux, "GET", "/healthz", "")
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), `"status":"restoring"`) {
		t.Fatalf("healthz while restoring = %d %s, want 503 restoring", w.Code, w.Body.String())
	}
	for _, req := range []struct{ method, path, body string }{
		{"POST", "/v1/ingest", `{"features":[{"node":0,"feature":[1]}]}`},
		{"POST", "/v1/query/range", `{"feature":[0],"radius":1}`},
		{"POST", "/v1/query/path", `{"danger":[0],"gamma":1}`},
		{"GET", "/v1/stats", ""},
		{"GET", "/v1/snapshot", ""},
		{"POST", "/admin/snapshot", ""},
	} {
		if w := do(t, mux, req.method, req.path, req.body); w.Code != http.StatusServiceUnavailable {
			t.Errorf("%s %s while restoring = %d, want 503", req.method, req.path, w.Code)
		}
	}

	s.restoring.Store(false)
	bootstrapTestServer(t, mux)
	if w := do(t, mux, "GET", "/v1/stats", ""); w.Code != http.StatusOK {
		t.Errorf("stats after restore gate lifted = %d", w.Code)
	}
}

// TestServeRequestID checks the request-id plumbing: monotonic ids in
// the X-Request-ID header, the same id stamped into error bodies, and
// the id carried as a label on the request's span trace.
func TestServeRequestID(t *testing.T) {
	s, mux := newTestServer(t)

	w1 := do(t, mux, "GET", "/healthz", "")
	w2 := do(t, mux, "GET", "/healthz", "")
	id1, err1 := strconv.ParseInt(w1.Header().Get("X-Request-ID"), 10, 64)
	id2, err2 := strconv.ParseInt(w2.Header().Get("X-Request-ID"), 10, 64)
	if err1 != nil || err2 != nil || id2 != id1+1 {
		t.Fatalf("X-Request-ID = %q then %q, want consecutive integers",
			w1.Header().Get("X-Request-ID"), w2.Header().Get("X-Request-ID"))
	}

	// An error body carries the id that the header and log line carry.
	w := do(t, mux, "POST", "/v1/ingest", `{}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("empty ingest = %d, want 400", w.Code)
	}
	var body struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.RequestID != w.Header().Get("X-Request-ID") || body.RequestID == "" {
		t.Fatalf("error body request_id = %q, header = %q, want matching non-empty ids",
			body.RequestID, w.Header().Get("X-Request-ID"))
	}

	// Every request trace is labelled with its route and id.
	var found bool
	for _, tr := range s.spans.Recent(0) {
		if tr.Name == "http" && tr.Labels["request_id"] == body.RequestID {
			found = true
			if tr.Labels["route"] != "/v1/ingest" || tr.Labels["status"] != "400" {
				t.Fatalf("request trace labels = %v", tr.Labels)
			}
		}
	}
	if !found {
		t.Fatal("no http span trace carries the failed request's id")
	}
}

// TestServeSpansEndpoint drives traffic through the mux and checks
// /debug/spans: the JSON dump carries the request and engine phases with
// the engine's epoch work nested under the ingest request's trace, and
// ?format=chrome emits a trace-event document Perfetto accepts.
func TestServeSpansEndpoint(t *testing.T) {
	s, mux := newTestServer(t)
	bootstrapTestServer(t, mux)
	if w := do(t, mux, "POST", "/v1/query/range", `{"feature":[0.1],"radius":0.5,"initiator":0}`); w.Code != http.StatusOK {
		t.Fatalf("range = %d %s", w.Code, w.Body.String())
	}

	// The bootstrap epoch nests under the ingest request's http trace.
	var ingestTrace *elink.SpanTrace
	for _, tr := range s.spans.Recent(0) {
		if tr.Name == "http" && tr.Labels["route"] == "/v1/ingest" {
			ingestTrace = tr
		}
	}
	if ingestTrace == nil {
		t.Fatal("no http trace for the ingest request")
	}
	names := map[string]bool{}
	for _, sp := range ingestTrace.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"http", "epoch", "validate", "publish"} {
		if !names[want] {
			t.Fatalf("ingest trace spans = %v, missing %q", names, want)
		}
	}

	w := do(t, mux, "GET", "/debug/spans", "")
	if w.Code != http.StatusOK {
		t.Fatalf("spans = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("spans Content-Type = %q", ct)
	}
	var dump struct {
		Total  int64             `json:"total"`
		Phases []elink.PhaseStat `json:"phases"`
		Recent []elink.SpanTrace `json:"recent"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &dump); err != nil {
		t.Fatalf("spans body %q: %v", w.Body.String(), err)
	}
	if dump.Total == 0 || len(dump.Recent) == 0 {
		t.Fatalf("spans dump empty: %s", w.Body.String())
	}
	phases := map[string]bool{}
	for _, p := range dump.Phases {
		phases[p.Phase] = true
	}
	for _, want := range []string{"http", "epoch", "range-query"} {
		if !phases[want] {
			t.Errorf("phase table missing %q: %v", want, phases)
		}
	}

	// The phase histograms reach /metrics.
	if body := do(t, mux, "GET", "/metrics", "").Body.String(); !strings.Contains(body, `span_phase_seconds_count{phase="http"}`) {
		t.Error("metrics missing span_phase_seconds for the http phase")
	}

	// Chrome trace export: a JSON array of events with the complete-event
	// and thread-name records Perfetto needs.
	w = do(t, mux, "GET", "/debug/spans?format=chrome", "")
	if w.Code != http.StatusOK {
		t.Fatalf("chrome spans = %d", w.Code)
	}
	var events []map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace %q: %v", w.Body.String(), err)
	}
	var complete, meta bool
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			complete = true
		case "M":
			meta = true
		}
	}
	if !complete || !meta {
		t.Fatalf("chrome trace lacks X/M events: complete=%v meta=%v", complete, meta)
	}

	// n limits the recent window; bad n and bad format are JSON 400s.
	w = do(t, mux, "GET", "/debug/spans?n=1", "")
	var limited struct {
		Recent []elink.SpanTrace `json:"recent"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &limited); err != nil || len(limited.Recent) != 1 {
		t.Errorf("spans?n=1 recent = %d traces (%v), want 1", len(limited.Recent), err)
	}
	if w = do(t, mux, "GET", "/debug/spans?n=bogus", ""); w.Code != http.StatusBadRequest {
		t.Errorf("spans?n=bogus = %d, want 400", w.Code)
	}
	if w = do(t, mux, "GET", "/debug/spans?format=bogus", ""); w.Code != http.StatusBadRequest {
		t.Errorf("spans?format=bogus = %d, want 400", w.Code)
	}
}

// TestServeBuildInfoMetrics: the build metadata and uptime gauges land
// on /metrics when main's registration helper runs.
func TestServeBuildInfoMetrics(t *testing.T) {
	s, mux := newTestServer(t)
	elink.RegisterBuildInfo(s.reg, version)
	body := do(t, mux, "GET", "/metrics", "").Body.String()
	if !strings.Contains(body, `elink_build_info{go_version=`) {
		t.Error("metrics missing elink_build_info")
	}
	if !strings.Contains(body, "process_uptime_seconds") {
		t.Error("metrics missing process_uptime_seconds")
	}
}

// TestServeAdminSnapshotWithoutDataDir pins the ephemeral-mode answer.
func TestServeAdminSnapshotWithoutDataDir(t *testing.T) {
	_, mux := newTestServer(t)
	bootstrapTestServer(t, mux)
	if w := do(t, mux, "POST", "/admin/snapshot", ""); w.Code != http.StatusNotImplemented {
		t.Errorf("admin snapshot without -data-dir = %d, want 501", w.Code)
	}
}

func TestServeErrorBodies(t *testing.T) {
	_, mux := newTestServer(t)

	// Payload mistakes are JSON 400s.
	for _, bad := range []string{
		`{"features":[{"node":99,"feature":[1]}]}`,
		`{"readings":[{"node":0,"value":1}]}`, // Order-0 engine takes features only
	} {
		w := do(t, mux, "POST", "/v1/ingest", bad)
		if w.Code != http.StatusBadRequest {
			t.Errorf("ingest %q = %d, want 400", bad, w.Code)
		}
		var body struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body.Error == "" {
			t.Errorf("ingest %q body %q: want JSON {\"error\":...}", bad, w.Body.String())
		}
	}

	// Warming-up engine: 503 with a JSON body.
	w := do(t, mux, "GET", "/v1/snapshot", "")
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), `"error"`) {
		t.Errorf("snapshot before bootstrap = %d %s, want JSON 503", w.Code, w.Body.String())
	}

	// The middleware labels failures by status.
	w = do(t, mux, "GET", "/metrics", "")
	if !strings.Contains(w.Body.String(), `http_requests_total{code="503",path="/v1/snapshot"} 1`) {
		t.Error("metrics missing the 503 snapshot request count")
	}
}
